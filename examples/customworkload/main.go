// Custom workload: the adopter workflow. Describe your own application
// as a phase-based JSON profile, load it, run it on the simulated
// platform, and let PPEP pick its energy-optimal operating point — no
// recompilation, no built-in suite involved.
package main

import (
	"fmt"
	"log"
	"strings"

	"ppep/internal/arch"
	"ppep/internal/dvfs"
	"ppep/internal/experiments"
	"ppep/internal/fxsim"
	"ppep/internal/workload"
)

// profileJSON describes a hypothetical request-processing service: a hot
// parsing loop alternating with a memory-heavy lookup phase.
const profileJSON = `{
  "name": "request-service",
  "class": "balanced",
  "instructions": 6e9,
  "loops": 3,
  "phases": [
    {"name": "parse", "weight": 0.6, "base_cpi": 0.55, "mlp": 1.2,
     "l3_miss_ratio": 0.2, "noise": 0.05,
     "uops_per_inst": 1.35, "ic_per_inst": 0.3, "dc_per_inst": 0.45,
     "l2req_per_inst": 0.012, "branch_per_inst": 0.2,
     "mispred_per_inst": 0.01, "l2miss_per_inst": 0.002},
    {"name": "lookup", "weight": 0.4, "base_cpi": 0.8, "mlp": 2.5,
     "l3_miss_ratio": 0.7, "noise": 0.08,
     "uops_per_inst": 1.25, "ic_per_inst": 0.22, "dc_per_inst": 0.55,
     "l2req_per_inst": 0.06, "branch_per_inst": 0.12,
     "mispred_per_inst": 0.004, "l2miss_per_inst": 0.03}
  ]
}`

func main() {
	bench, err := workload.LoadProfile(strings.NewReader(profileJSON))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %q: %d phases, %.0fG instructions\n",
		bench.Name, len(bench.Phases), bench.Instructions/1e9)

	fmt.Println("training PPEP models...")
	camp, err := experiments.NewFXCampaign(experiments.Options{
		Scale: 0.05, MaxRunsPerSuite: 6,
	})
	if err != nil {
		log.Fatal(err)
	}

	chip := fxsim.New(fxsim.DefaultFX8320Config())
	run := workload.Run{Name: bench.Name, Suite: "custom",
		Members: []workload.Member{{Bench: bench, Threads: 2}}}
	tr, err := chip.Collect(run, fxsim.RunOpts{
		VF: arch.VF5, WarmTempK: 318, Placement: fxsim.PlaceScatter,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran %s ×2 threads at VF5: %.1fs, %.1fW average\n\n",
		bench.Name, tr.DurationS(), tr.AvgMeasPowerW())

	// PPEP's verdict, interval by interval (the phases alternate, so the
	// optimum can move between parse- and lookup-dominated windows).
	counts := map[arch.VFState]int{}
	for _, iv := range tr.Intervals {
		rep, err := camp.Models.Analyze(iv)
		if err != nil {
			continue
		}
		counts[dvfs.EnergyOptimal(rep)]++
	}
	fmt.Println("energy-optimal state per 200ms interval:")
	for _, s := range camp.Table.States() {
		if counts[s] > 0 {
			fmt.Printf("  %v: %d intervals\n", s, counts[s])
		}
	}
}
