// North-bridge DVFS what-if: the Section V-C2 study. Applies the paper's
// assumptions for a hypothetical low NB state (idle −40%, dynamic −36%,
// leading loads +50%) to PPEP's core/NB power split and reports the extra
// energy saving and the speedup achievable at similar energy.
package main

import (
	"fmt"
	"log"

	"ppep/internal/arch"
	"ppep/internal/dvfs"
	"ppep/internal/experiments"
	"ppep/internal/fxsim"
	"ppep/internal/trace"
	"ppep/internal/workload"
)

func main() {
	fmt.Println("training PPEP models (with power-gating decomposition)...")
	camp, err := experiments.NewFXCampaign(experiments.Options{
		Scale: 0.05, MaxRunsPerSuite: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Section V runs with power gating enabled.
	models := *camp.Models
	models.PGEnabled = true

	assume := dvfs.PaperNBAssumptions()
	fmt.Printf("assumptions: NB idle −%.0f%%, NB dynamic −%.0f%%, leading loads ×%.1f\n",
		100*assume.IdleDropFrac, 100*assume.DynDropFrac, assume.LLInflate)

	for _, num := range []string{"433", "458"} {
		for _, instances := range []int{1, 2, 3, 4} {
			run := workload.MultiInstance(num, instances)
			for i := range run.Members {
				b := *run.Members[i].Bench
				b.Instructions = 3e9
				run.Members[i].Bench = &b
			}
			cfg := fxsim.DefaultFX8320Config()
			cfg.PowerGating = true
			chip := fxsim.New(cfg)
			tr, err := chip.Collect(run, fxsim.RunOpts{
				VF: arch.VF5, WarmTempK: 320, Placement: fxsim.PlaceScatter,
			})
			if err != nil {
				log.Fatal(err)
			}
			agg := aggregate(tr)
			rep, err := models.Analyze(agg)
			if err != nil {
				log.Fatal(err)
			}
			pts := dvfs.NBWhatIf(&models, agg, rep, assume)
			saving := dvfs.BestEnergySaving(pts)
			speedup := dvfs.BestSpeedupAtEnergy(pts, 0.05)
			fmt.Printf("%-8s energy saving %5.1f%%   speedup at ~same energy %.2f×\n",
				run.Name, 100*saving, speedup)
		}
	}
	fmt.Println("\npaper: up to 20.4% average saving or 1.37× average speedup")
}

// aggregate folds a trace into one run-average interval.
func aggregate(tr *trace.Trace) trace.Interval {
	first := tr.Intervals[0]
	agg := trace.Interval{
		PerCoreVF: first.PerCoreVF,
		Counters:  make([]arch.EventVec, len(first.Counters)),
		Busy:      make([]bool, len(first.Busy)),
	}
	var tempSum float64
	for _, iv := range tr.Intervals {
		agg.DurS += iv.DurS
		tempSum += iv.TempK * iv.DurS
		for ci := range iv.Counters {
			agg.Counters[ci].Add(iv.Counters[ci])
			if iv.Busy[ci] {
				agg.Busy[ci] = true
			}
		}
	}
	if agg.DurS > 0 {
		agg.TempK = tempSum / agg.DurS
	}
	return agg
}
