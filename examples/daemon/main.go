// Daemon example: PPEP exactly as deployed — sampling the hardware
// through the register-level MSR and hwmon interfaces (not the
// simulator's convenience APIs), rotating the two six-event counter
// groups every 20 ms, and steering the chip to the predicted EDP-optimal
// state each 200 ms interval.
package main

import (
	"fmt"
	"log"

	"ppep/internal/arch"
	"ppep/internal/core"
	"ppep/internal/daemon"
	"ppep/internal/dvfs"
	"ppep/internal/experiments"
	"ppep/internal/fxsim"
	"ppep/internal/trace"
	"ppep/internal/workload"
)

func main() {
	fmt.Println("training PPEP models...")
	camp, err := experiments.NewFXCampaign(experiments.Options{
		Scale: 0.05, MaxRunsPerSuite: 6,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Section IV-D: with power gating enabled, PPEP swaps in the
	// decomposition-based idle model.
	models := *camp.Models
	models.PGEnabled = true

	cfg := fxsim.DefaultFX8320Config()
	cfg.PowerGating = true
	chip := fxsim.New(cfg)
	chip.SetTempK(318)

	// Bind two milc instances; the daemon never touches this directly —
	// it only sees what the MSRs and the diode expose.
	run := workload.MultiInstance("433", 2)
	for i := range run.Members {
		b := *run.Members[i].Bench
		b.Instructions = 1e12
		run.Members[i].Bench = &b
	}
	if _, err := chip.PlaceRun(run, fxsim.PlaceScatter, true); err != nil {
		log.Fatal(err)
	}

	policy := daemon.PolicyFunc(func(ch *fxsim.Chip, iv trace.Interval, rep *core.Report) {
		// a rejected P-state request leaves the previous state; retried next tick
		_ = ch.SetAllPStates(dvfs.EDPOptimal(rep))
	})
	d, err := daemon.Attach(chip, &models, policy)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nrunning the daemon for 20 intervals (4 s) with the EDP policy:")
	if err := d.RunIntervals(20); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-6s %-6s %10s %10s %12s\n", "t(s)", "VF", "meas (W)", "est (W)", "pred EDP-opt")
	records := d.Records()
	for i, rec := range records {
		if i%4 != 0 {
			continue
		}
		fmt.Printf("%-6.1f %-6v %10.1f %10.1f %12v\n",
			rec.Interval.TimeS, rec.Interval.VF(), rec.Interval.MeasPowerW,
			rec.Report.Current().ChipW, dvfs.EDPOptimal(rec.Report))
	}
	last := records[len(records)-1].Interval
	fmt.Printf("\nfinal state: %v at %.1f W", last.VF(), last.MeasPowerW)
	if last.VF() != arch.VF5 {
		fmt.Printf(" — the policy moved the chip off the top state\n")
	} else {
		fmt.Println()
	}
}
