// Quickstart: build a simulated FX-8320, train the PPEP models from a
// small measurement campaign, run a workload, and print the one-step PPE
// projection for every VF state — the core of what PPEP does.
package main

import (
	"fmt"
	"log"

	"ppep/internal/arch"
	"ppep/internal/experiments"
	"ppep/internal/fxsim"
	"ppep/internal/workload"
)

func main() {
	// 1. One-time offline training (Section IV): a reduced campaign for
	// a quick start — scale 0.05 shrinks benchmark lengths 20×.
	fmt.Println("training PPEP models on the simulated FX-8320...")
	camp, err := experiments.NewFXCampaign(experiments.Options{
		Scale: 0.05, MaxRunsPerSuite: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	models := camp.Models
	fmt.Printf("done: α=%.2f, idle(VF5, 320K)=%.1fW\n\n",
		models.Dyn.Alpha, models.Idle.Estimate(1.320, 320))

	// 2. Run two instances of memory-bound 433.milc at VF5.
	chip := fxsim.New(fxsim.DefaultFX8320Config())
	run := workload.MultiInstance("433", 2)
	run.Members[0].Bench = shorten(run.Members[0].Bench)
	run.Members[1].Bench = run.Members[0].Bench
	tr, err := chip.Collect(run, fxsim.RunOpts{
		VF: arch.VF5, WarmTempK: 318, Placement: fxsim.PlaceScatter,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran %s: %.1fs, avg measured power %.1fW\n\n",
		run.Name, tr.DurationS(), tr.AvgMeasPowerW())

	// 3. Analyze one interval: PPEP projects PPE at every VF state from
	// a single 200 ms sample — no state switching needed.
	iv := tr.Intervals[len(tr.Intervals)/2]
	rep, err := models.Analyze(iv)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PPE projection from one interval at %v (measured %.1fW):\n",
		rep.MeasuredVF, iv.MeasPowerW)
	fmt.Printf("%-6s %9s %9s %11s %12s\n", "state", "chip W", "idle W", "IPS", "J/interval")
	for i := len(rep.PerVF) - 1; i >= 0; i-- {
		p := rep.PerVF[i]
		fmt.Printf("%-6v %9.1f %9.1f %11.2e %12.2f\n",
			p.VF, p.ChipW, p.IdleW, p.TotalIPS, p.IntervalEnergyJ)
	}
}

// shorten trims the profile so the example finishes in seconds.
func shorten(b *workload.Benchmark) *workload.Benchmark {
	c := *b
	c.Instructions = 4e9
	return &c
}
