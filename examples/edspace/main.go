// Energy-delay space exploration: the Section V-C1 study. Runs
// memory-bound 433.milc and CPU-bound 458.sjeng with 1–4 concurrent
// instances, and uses PPEP to project per-thread energy and EDP at every
// VF state — showing how background workloads move the optimum.
package main

import (
	"fmt"
	"log"

	"ppep/internal/arch"
	"ppep/internal/dvfs"
	"ppep/internal/experiments"
	"ppep/internal/fxsim"
	"ppep/internal/workload"
)

func main() {
	fmt.Println("training PPEP models...")
	camp, err := experiments.NewFXCampaign(experiments.Options{
		Scale: 0.05, MaxRunsPerSuite: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	models := camp.Models

	for _, num := range []string{"433", "458"} {
		for _, instances := range []int{1, 4} {
			run := workload.MultiInstance(num, instances)
			for i := range run.Members {
				b := *run.Members[i].Bench
				b.Instructions = 4e9
				run.Members[i].Bench = &b
			}
			cfg := fxsim.DefaultFX8320Config()
			cfg.PowerGating = true
			chip := fxsim.New(cfg)
			tr, err := chip.Collect(run, fxsim.RunOpts{
				VF: arch.VF5, WarmTempK: 320, Placement: fxsim.PlaceScatter,
			})
			if err != nil {
				log.Fatal(err)
			}
			iv := tr.Intervals[len(tr.Intervals)/2]
			rep, err := models.Analyze(iv)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\n%s — energy-delay space (from one %v interval):\n", run.Name, rep.MeasuredVF)
			fmt.Printf("%-6s %9s %12s %12s %12s\n", "state", "chip W", "nJ/inst", "ns/inst", "EDP")
			for _, p := range dvfs.EDSpace(rep) {
				fmt.Printf("%-6v %9.1f %12.2f %12.3f %12.3g\n",
					p.VF, p.PowerW, p.JPerInst*1e9, p.SPerInst*1e9, p.EDP)
			}
			fmt.Printf("energy-optimal: %v   EDP-optimal: %v\n",
				dvfs.EnergyOptimal(rep), dvfs.EDPOptimal(rep))
		}
	}
}
