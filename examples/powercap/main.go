// Power capping: the Section V-B demonstration. Runs the paper's
// four-benchmark mix (429.mcf, 458.sjeng, 416.gamess, swaptions — one per
// CU) under a stepped power budget, once with the PPEP one-step
// controller and once with the reactive iterative baseline, and compares
// settling time and budget adherence.
package main

import (
	"fmt"
	"log"

	"ppep/internal/arch"
	"ppep/internal/dvfs"
	"ppep/internal/experiments"
	"ppep/internal/fxsim"
	"ppep/internal/units"
	"ppep/internal/workload"
)

func main() {
	fmt.Println("training PPEP models...")
	camp, err := experiments.NewFXCampaign(experiments.Options{
		Scale: 0.05, MaxRunsPerSuite: 6,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The budget swings hard, as when a laptop loses wall power.
	schedule := dvfs.StepSchedule(
		[]units.Seconds{0, 15, 30},
		[]units.Watts{130, 48, 105},
	)

	runWith := func(name string, ctl fxsim.Controller) []dvfs.CapStep {
		cfg := fxsim.DefaultFX8320Config()
		cfg.PowerGating = true
		cfg.PerCUPlanes = true // Section V-B assumes per-CU power planes
		chip := fxsim.New(cfg)
		_, err := chip.Collect(workload.CappingMix(), fxsim.RunOpts{
			VF: arch.VF5, MaxTimeS: 45, Restart: true, WarmTempK: 325,
			Controller: ctl, Placement: fxsim.PlaceScatter,
		})
		if err != nil {
			log.Fatal(err)
		}
		switch c := ctl.(type) {
		case *dvfs.PPEPCapper:
			return c.History
		case *dvfs.IterativeCapper:
			return c.History
		}
		return nil
	}

	ppep := &dvfs.PPEPCapper{Models: camp.Models, Target: schedule}
	ppepHist := runWith("PPEP", ppep)
	iter := &dvfs.IterativeCapper{Target: schedule, OneCUPerStep: true, UpHysteresis: 0.97}
	iterHist := runWith("iterative", iter)

	fmt.Println("\ntime     budget   PPEP-measured   iterative-measured")
	for i := 0; i < len(ppepHist) && i < len(iterHist); i += 5 {
		p, q := ppepHist[i], iterHist[i]
		fmt.Printf("%5.1fs  %5.0fW  %10.1fW  %14.1fW\n", p.TimeS, p.TargetW, p.MeasW, q.MeasW)
	}

	pm := dvfs.AnalyzeCapping(ppepHist, 0.5)
	im := dvfs.AnalyzeCapping(iterHist, 0.5)
	fmt.Printf("\nPPEP one-step: settle %.2fs, adherence %.1f%%, %d violations\n",
		pm.MeanSettleS, 100*pm.Adherence, pm.Violations)
	fmt.Printf("iterative:     settle %.2fs, adherence %.1f%%, %d violations\n",
		im.MeanSettleS, 100*im.Adherence, im.Violations)
	if pm.MeanSettleS > 0 {
		fmt.Printf("PPEP settles %.1f× faster (paper: 14×)\n", im.MeanSettleS.Per(pm.MeanSettleS))
	}
}
