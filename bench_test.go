// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each BenchmarkFigN wraps the corresponding experiment
// harness; the expensive measurement campaign is built once and shared.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// Headline metrics are reported via b.ReportMetric, so each bench's
// output carries the reproduced number next to its runtime.
package main

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"ppep/internal/experiments"
	"ppep/internal/loadgen"
	"ppep/internal/serve"
)

var (
	benchOnce sync.Once
	benchCamp *experiments.Campaign
	benchErr  error
)

// benchCampaign builds the shared reduced campaign (8 runs per suite at
// 1/12 length — enough to exercise every code path at benchmark speed).
func benchCampaign(b *testing.B) *experiments.Campaign {
	b.Helper()
	benchOnce.Do(func() {
		benchCamp, benchErr = experiments.NewFXCampaign(experiments.Options{
			Scale: 0.08, MaxRunsPerSuite: 8,
		})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchCamp
}

// report copies an experiment's headline metrics onto the benchmark.
func report(b *testing.B, results []*experiments.Result, keys ...string) {
	for _, r := range results {
		for _, k := range keys {
			if v, ok := r.Metrics[k]; ok {
				b.ReportMetric(v, r.ID+"_"+k)
			}
		}
	}
}

// run executes one registered experiment b.N times.
func runExperiment(b *testing.B, id string, keys ...string) {
	c := benchCampaign(b)
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var last []*experiments.Result
	for i := 0; i < b.N; i++ {
		last, err = e.Run(c)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	report(b, last, keys...)
}

// BenchmarkCampaign measures the full measurement-and-training pipeline —
// the one-time offline effort of Section IV.
func BenchmarkCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := experiments.NewFXCampaign(experiments.Options{
			Scale: 0.02, MaxRunsPerSuite: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(c.Models.Dyn.Alpha, "alpha")
	}
}

// cacheBenchOpts is the reduced campaign the cold/warm cache benchmarks
// build: the smallest configuration that still trains the models
// (MaxRunsPerSuite 3 gives the dynamic-power fit enough top-voltage
// samples at Scale 0.01).
func cacheBenchOpts(dir string) experiments.Options {
	return experiments.Options{Scale: 0.01, MaxRunsPerSuite: 3, CacheDir: dir}
}

// reportCacheStats copies the campaign's trace-cache counters onto the
// benchmark so BENCH_fxsim.json records the hit rate next to the
// cold/warm timings.
func reportCacheStats(b *testing.B, c *experiments.Campaign) {
	st, ok := c.CacheStats()
	if !ok {
		b.Fatal("campaign has no cache stats")
	}
	b.ReportMetric(float64(st.Hits), "cache_hits")
	b.ReportMetric(float64(st.Misses), "cache_misses")
	b.ReportMetric(float64(st.BytesRead+st.BytesWritten), "cache_bytes")
	if total := st.Hits + st.Misses; total > 0 {
		b.ReportMetric(float64(st.Hits)/float64(total), "cache_hit_rate")
	}
}

// BenchmarkCampaignColdCache measures the reduced campaign simulating
// every cell into a fresh trace cache — the incremental engine's
// worst case (all misses, encode + write-through on every cell).
func BenchmarkCampaignColdCache(b *testing.B) {
	var last *experiments.Campaign
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir() // fresh per iteration: every cell must miss
		b.StartTimer()
		c, err := experiments.NewFXCampaign(cacheBenchOpts(dir))
		if err != nil {
			b.Fatal(err)
		}
		last = c
	}
	b.StopTimer()
	reportCacheStats(b, last)
}

// BenchmarkCampaignWarmCache measures the same campaign replayed from a
// populated cache — pure decode, zero simulation. The cold/warm ratio is
// the incremental engine's headline speedup (docs/CACHE.md).
func BenchmarkCampaignWarmCache(b *testing.B) {
	dir := b.TempDir()
	if _, err := experiments.NewFXCampaign(cacheBenchOpts(dir)); err != nil {
		b.Fatal(err) // populate outside the timed region
	}
	b.ResetTimer()
	var last *experiments.Campaign
	for i := 0; i < b.N; i++ {
		c, err := experiments.NewFXCampaign(cacheBenchOpts(dir))
		if err != nil {
			b.Fatal(err)
		}
		last = c
	}
	b.StopTimer()
	reportCacheStats(b, last)
}

// BenchmarkSec3CPIPrediction regenerates the Section III result: LL-MAB
// CPI prediction error between VF5 and VF2 (paper: 3.4% / 3.0%).
func BenchmarkSec3CPIPrediction(b *testing.B) {
	runExperiment(b, "sec3-cpi", "down_aae", "up_aae")
}

// BenchmarkFig1IdleTransient regenerates Figure 1: the idle power and
// temperature heat/cool transient.
func BenchmarkFig1IdleTransient(b *testing.B) {
	runExperiment(b, "fig1", "start_temp_k", "end_temp_k")
}

// BenchmarkSec4aIdleModel regenerates the Section IV-A idle power model
// validation (paper: 2–4% AAE per VF state).
func BenchmarkSec4aIdleModel(b *testing.B) {
	runExperiment(b, "sec4a-idle", "avg_aae")
}

// BenchmarkFig2PowerValidation regenerates Figure 2: 4-fold
// cross-validated dynamic (paper: 10.6%) and chip (paper: 4.6%) power
// model errors.
func BenchmarkFig2PowerValidation(b *testing.B) {
	runExperiment(b, "fig2", "avg_aae", "avg_sd")
}

// BenchmarkSec4cObservations regenerates the Observation 1/2 checks
// (paper: 0.6–5.0% per-event, 1.7% gap).
func BenchmarkSec4cObservations(b *testing.B) {
	runExperiment(b, "sec4c-obs", "obs2_gap")
}

// BenchmarkFig3CrossVFPrediction regenerates Figure 3: power prediction
// across all 25 VF-state pairs (paper: 8.3% dynamic, 4.2% chip).
func BenchmarkFig3CrossVFPrediction(b *testing.B) {
	runExperiment(b, "fig3", "avg_aae")
}

// BenchmarkFig4PowerGating regenerates Figure 4: the busy-CU sweep and
// the idle power decomposition.
func BenchmarkFig4PowerGating(b *testing.B) {
	runExperiment(b, "fig4", "pidle_cu_VF5", "pidle_nb_VF5", "pidle_base_VF5")
}

// BenchmarkFig6EnergyPrediction regenerates Figure 6: next-interval
// energy prediction, PPEP vs Green Governors (paper: 3.6% vs ≈7%).
func BenchmarkFig6EnergyPrediction(b *testing.B) {
	runExperiment(b, "fig6", "ppep_avg", "gg_avg")
}

// BenchmarkFig7PowerCapping regenerates Figure 7: one-step capping vs the
// iterative baseline (paper: 14× faster settling, 94% vs 81% adherence).
func BenchmarkFig7PowerCapping(b *testing.B) {
	runExperiment(b, "fig7", "speedup", "ppep_adherence", "iter_adherence")
}

// BenchmarkFig8EnergyExploration regenerates Figure 8: per-thread energy
// across VF states and instance counts.
func BenchmarkFig8EnergyExploration(b *testing.B) {
	runExperiment(b, "fig8")
}

// BenchmarkFig9EDPExploration regenerates Figure 9: per-thread EDP across
// VF states and instance counts.
func BenchmarkFig9EDPExploration(b *testing.B) {
	runExperiment(b, "fig9")
}

// BenchmarkFig10NBShare regenerates Figure 10: the NB's share of
// per-thread energy (paper: ≈60% memory-bound, ≈25% CPU-bound).
func BenchmarkFig10NBShare(b *testing.B) {
	runExperiment(b, "fig10", "avg_share_433", "avg_share_458")
}

// BenchmarkFig11NBDVFS regenerates Figure 11: the NB DVFS what-if
// (paper: up to 20.4% saving or 1.37× speedup).
func BenchmarkFig11NBDVFS(b *testing.B) {
	runExperiment(b, "fig11", "avg_saving", "avg_speedup")
}

// ---- microbenchmarks of the hot paths ----

// BenchmarkAnalyzeInterval measures one PPEP pipeline pass: the per-200ms
// cost of projecting PPE at all five VF states (the paper reports
// negligible daemon overhead).
func BenchmarkAnalyzeInterval(b *testing.B) {
	c := benchCampaign(b)
	iv := c.Runs[0].Trace.Intervals[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Models.Analyze(iv); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChipTick measures the simulator's 1 ms tick with eight busy
// cores — the substrate's unit of work.
func BenchmarkChipTick(b *testing.B) {
	benchmarkTick(b)
}

// BenchmarkTickN measures one full 200-tick decision interval through
// the batched TickN API plus the interval read — the campaign's unit of
// work — on a phase-stable workload the engine fast-forwards.
func BenchmarkTickN(b *testing.B) {
	benchmarkTickN(b)
}

// BenchmarkTickNJittered measures the same interval on a jittered
// workload, i.e. the reference path's cost when quiescence never holds.
func BenchmarkTickNJittered(b *testing.B) {
	benchmarkTickNJittered(b)
}

// BenchmarkFleetTick measures 256 fleet nodes × 1 simulated second each
// on a single worker — the serial reference for the sharded engine.
// Each node runs a deterministically jittered per-node workload
// (internal/fleet MixJittered), so the fleet is not phase-locked.
func BenchmarkFleetTick(b *testing.B) {
	benchmarkFleet(b, 1)
}

// BenchmarkFleetTickParallel is the same fleet advanced by the full
// worker pool (GOMAXPROCS). The ratio to BenchmarkFleetTick is the
// sharded engine's speedup; on a many-core host it tracks the core
// count (the PR 10 target is ≥6× on ≥8 cores).
func BenchmarkFleetTickParallel(b *testing.B) {
	benchmarkFleet(b, 0)
}

// BenchmarkEventPrediction measures one core's cross-VF event-rate
// prediction — the inner loop of step ② of the PPEP pipeline.
func BenchmarkEventPrediction(b *testing.B) {
	ev := benchmarkEventVec()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := predictRates(ev, 3.5, 1.4); !ok {
			b.Fatal("prediction rejected")
		}
	}
}

// BenchmarkServeInterval measures one service-mode decision interval
// end to end — MSR window sampling, diode read, PPEP analysis, history
// push, and the HTTP observer callback — the per-200 ms cost of
// `ppepd -serve` excluding wall-clock pacing.
func BenchmarkServeInterval(b *testing.B) {
	c := benchCampaign(b)
	d, _ := benchmarkServeDaemon(b, c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.RunIntervals(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictServe measures the prediction read path two ways.
// The timed loop is the in-process cost of one /predict/batch request
// through the full mux — the pointer-load-plus-byte-write the published
// table buys (ns/op, B/op). After the loop, a short closed-loop burst
// over a real TCP socket (internal/loadgen, binary encoding, live
// pointer swaps underneath) reports end-to-end throughput and tail
// latency as rps / p50_ns / p99_ns / p999_ns custom metrics, which
// benchjson lands in BENCH_fxsim.json.
func BenchmarkPredictServe(b *testing.B) {
	c := benchCampaign(b)
	d, srv := benchmarkServeDaemon(b, c)
	if err := d.RunIntervals(2); err != nil {
		b.Fatal(err)
	}
	h := srv.Handler()
	req := httptest.NewRequest(http.MethodGet, "/predict/batch", nil)
	req.Header.Set("Accept", serve.BatchContentType)
	w := nullBenchWriter{h: make(http.Header)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ServeHTTP(w, req)
	}
	b.StopTimer()

	// End-to-end burst: real socket, concurrent workers, tables
	// republishing underneath. The loop is paced as in deployment —
	// unpaced it simulates intervals flat out and starves the server's
	// goroutines of CPU, measuring the simulator instead of the serving
	// path.
	d.Throttle = func() { time.Sleep(2 * time.Millisecond) }
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	httpDone := make(chan error, 1)
	loopDone := make(chan error, 1)
	go func() { httpDone <- srv.Serve(ctx, ln) }()
	go func() { loopDone <- d.Run(ctx) }()
	res, err := loadgen.Run(ctx, loadgen.Options{
		URL: "http://" + ln.Addr().String(), Conns: 16,
		Duration: 400 * time.Millisecond, Binary: true,
	})
	cancel()
	<-httpDone
	<-loopDone
	if err != nil {
		b.Fatal(err)
	}
	if res.Requests == 0 || res.Errors == res.Requests {
		b.Fatalf("degenerate burst: %+v", res)
	}
	b.ReportMetric(res.RPS(), "rps")
	b.ReportMetric(float64(res.Hist.Quantile(0.50)), "p50_ns")
	b.ReportMetric(float64(res.Hist.Quantile(0.99)), "p99_ns")
	b.ReportMetric(float64(res.Hist.Quantile(0.999)), "p999_ns")
}

// nullBenchWriter mirrors the serve package's alloc-test writer: body
// discarded, header map reused, so the timed loop sees only the
// handler's own work.
type nullBenchWriter struct{ h http.Header }

func (w nullBenchWriter) Header() http.Header         { return w.h }
func (w nullBenchWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w nullBenchWriter) WriteHeader(int)             {}

// BenchmarkDynEstimate measures one Equation 3 evaluation.
func BenchmarkDynEstimate(b *testing.B) {
	c := benchCampaign(b)
	ev := benchmarkEventVec()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += float64(c.Models.Dyn.EstimateCore(ev, 1.008))
	}
	_ = sink
}

// BenchmarkIdleEstimate measures one Equation 2 evaluation.
func BenchmarkIdleEstimate(b *testing.B) {
	c := benchCampaign(b)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += float64(c.Models.Idle.Estimate(1.128, 320))
	}
	_ = sink
}

// BenchmarkModelTraining measures the regression step alone (idle + dyn
// fits) on the shared campaign's samples.
func BenchmarkModelTraining(b *testing.B) {
	c := benchCampaign(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts := trainingSetOf(c)
		if _, err := trainModels(ts, c.Table); err != nil {
			b.Fatal(err)
		}
	}
}
