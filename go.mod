module ppep

go 1.22
