package main

import (
	"runtime"
	"testing"

	"ppep/internal/arch"
	"ppep/internal/core"
	"ppep/internal/core/eventpred"
	"ppep/internal/daemon"
	"ppep/internal/experiments"
	"ppep/internal/fleet"
	"ppep/internal/fxsim"
	"ppep/internal/serve"
	"ppep/internal/units"
	"ppep/internal/workload"
)

// benchmarkTick drives the chip simulator's tick loop with a full
// complement of busy cores.
func benchmarkTick(b *testing.B) {
	cfg := fxsim.DefaultFX8320Config()
	cfg.IdealSensor = true
	chip := fxsim.New(cfg)
	run := workload.Run{Name: "tick", Suite: "micro",
		Members: []workload.Member{{Bench: workload.BenchA(), Threads: 8}}}
	if _, err := chip.PlaceRun(run, fxsim.PlaceCompact, true); err != nil {
		b.Fatal(err)
	}
	if err := chip.SetAllPStates(arch.VF5); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chip.Tick()
	}
}

// benchmarkTickNWith drives the simulator through whole 200-tick decision
// intervals via the batched API, the granularity Collect and the PG
// sweeps actually use, with eight threads of the given benchmark.
func benchmarkTickNWith(b *testing.B, bench *workload.Benchmark) {
	cfg := fxsim.DefaultFX8320Config()
	cfg.IdealSensor = true
	chip := fxsim.New(cfg)
	run := workload.Run{Name: "tickn", Suite: "micro",
		Members: []workload.Member{{Bench: bench, Threads: 8}}}
	if _, err := chip.PlaceRun(run, fxsim.PlaceCompact, true); err != nil {
		b.Fatal(err)
	}
	if err := chip.SetAllPStates(arch.VF5); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chip.TickN(arch.DecisionIntervalMS)
		chip.ReadInterval()
	}
}

// benchmarkTickN is the phase-stable case: a zero-noise workload the
// batched engine fast-forwards.
func benchmarkTickN(b *testing.B) { benchmarkTickNWith(b, workload.BenchSteady()) }

// benchmarkTickNJittered is the jittered case: BenchA's position-locked
// noise keeps every tick on the reference path.
func benchmarkTickNJittered(b *testing.B) { benchmarkTickNWith(b, workload.BenchA()) }

// benchmarkFleet drives 256 simulated nodes through one second of
// simulation each via the fleet engine — the fleet-scale control-plane
// shape the batched tick engine exists for. The jittered mix derives a
// distinct workload per node from the node index, so the fleet is not
// phase-locked onto the quiescent fast path the way the old
// all-identical-steady-nodes benchmark was. Besides Mticks/s it
// reports allocs/tick: the engine's steady state is alloc-free per
// node, leaving only the immutable per-interval snapshot publish.
func benchmarkFleet(b *testing.B, workers int) {
	const nodes = 256
	e, err := fleet.New(fleet.Config{
		Nodes: nodes, Workers: workers, Mix: fleet.MixJittered, IdealSensor: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	const intervalsPerS = 1000 / arch.DecisionIntervalMS
	e.AdvanceN(1) // warm per-node scratch outside the timed region
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.AdvanceN(intervalsPerS)
	}
	b.StopTimer()
	runtime.ReadMemStats(&ms1)
	ticks := float64(b.N) * nodes * 1000
	b.ReportMetric(ticks/b.Elapsed().Seconds()/1e6, "Mticks/s")
	b.ReportMetric(float64(ms1.Mallocs-ms0.Mallocs)/ticks, "allocs/tick")
}

// benchmarkServeDaemon assembles the service-mode stack on a busy chip:
// a history-bounded daemon with the HTTP observability layer wired
// through OnInterval, exactly as `ppepd -serve` runs it.
func benchmarkServeDaemon(b *testing.B, c *experiments.Campaign) (*daemon.Daemon, *serve.Server) {
	b.Helper()
	cfg := fxsim.DefaultFX8320Config()
	cfg.IdealSensor = true
	chip := fxsim.New(cfg)
	chip.SetTempK(318)
	long := *workload.BenchA()
	long.Instructions = 1e18
	run := workload.Run{Name: "serve", Suite: "micro",
		Members: []workload.Member{{Bench: &long, Threads: 8}}}
	if _, err := chip.PlaceRun(run, fxsim.PlaceCompact, true); err != nil {
		b.Fatal(err)
	}
	if err := chip.SetAllPStates(arch.VF5); err != nil {
		b.Fatal(err)
	}
	d, err := daemon.AttachOpts(chip, c.Models, nil, daemon.Options{HistoryCap: 64})
	if err != nil {
		b.Fatal(err)
	}
	return d, serve.New(d, serve.Options{})
}

// TestBenchHarnessSmoke keeps the benchmark harness correct under plain
// `go test`: it runs the cheapest benchmark body once.
func TestBenchHarnessSmoke(t *testing.T) {
	result := testing.Benchmark(func(b *testing.B) {
		benchmarkTick(b)
	})
	if result.N <= 0 {
		t.Error("tick benchmark did not run")
	}
}

// benchmarkRates builds a busy core's event-rate vector.
func benchmarkRates() arch.EventVec {
	var ev arch.EventVec
	inst := 3e9
	ev.Set(arch.RetiredInstructions, inst)
	ev.Set(arch.RetiredUOP, 1.3*inst)
	ev.Set(arch.FPUPipeAssignment, 0.4*inst)
	ev.Set(arch.InstructionCacheFetches, 0.25*inst)
	ev.Set(arch.DataCacheAccesses, 0.45*inst)
	ev.Set(arch.RequestToL2Cache, 0.02*inst)
	ev.Set(arch.RetiredBranches, 0.15*inst)
	ev.Set(arch.RetiredMispredBranches, 0.004*inst)
	ev.Set(arch.L2CacheMisses, 0.008*inst)
	ev.Set(arch.DispatchStalls, 0.5*inst)
	ev.Set(arch.CPUClocksNotHalted, 1.2*inst)
	ev.Set(arch.MABWaitCycles, 0.3*inst)
	return ev
}

// benchmarkEventVec exposes benchmarkRates under the name bench_test uses.
func benchmarkEventVec() arch.EventVec { return benchmarkRates() }

// predictRates adapts eventpred for the benchmark without a long import
// list in bench_test.go.
func predictRates(ev arch.EventVec, from, to float64) (arch.EventVec, bool) {
	return eventpred.PredictRates(ev, units.GigaHertz(from), units.GigaHertz(to))
}

// trainingSetOf rebuilds a TrainingSet view over a campaign's traces.
func trainingSetOf(c *experiments.Campaign) core.TrainingSet {
	return core.TrainingSet{IdleTraces: c.Idle, Runs: c.Runs, PGSweeps: c.PGSweeps}
}

// trainModels re-runs the regression pipeline.
func trainModels(ts core.TrainingSet, tbl arch.VFTable) (*core.Models, error) {
	return core.Train(ts, tbl)
}
