# PPEP reproduction — common targets.

GO ?= go

.PHONY: all test bench bench-all experiments fmt vet tools

all: test

test:
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/fxsim/... ./internal/experiments/...

# Tick-loop microbenchmarks, summarized into a committable JSON record
# (mean over -count=5 samples; see cmd/benchjson).
bench:
	$(GO) test -run xxx -bench '^(BenchmarkChipTick|BenchmarkTickN|BenchmarkEventPrediction)$$' \
		-benchmem -count=5 . | $(GO) run ./cmd/benchjson > BENCH_fxsim.json
	cat BENCH_fxsim.json

# Every benchmark, including the figure/table regenerations.
bench-all:
	$(GO) test -bench=. -benchmem ./...

# Quick pass over every table/figure (shrunken benchmarks).
experiments:
	$(GO) run ./cmd/ppep-experiments -scale 0.1

# The flagship run behind EXPERIMENTS.md (minutes, full suite list).
flagship:
	$(GO) run ./cmd/ppep-experiments -scale 0.5 -phenom -md docs/RESULTS.md

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

tools:
	$(GO) build ./cmd/...
