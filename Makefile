# PPEP reproduction — common targets.

GO ?= go

.PHONY: all test bench experiments fmt vet tools

all: test

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Quick pass over every table/figure (shrunken benchmarks).
experiments:
	$(GO) run ./cmd/ppep-experiments -scale 0.1

# The flagship run behind EXPERIMENTS.md (minutes, full suite list).
flagship:
	$(GO) run ./cmd/ppep-experiments -scale 0.5 -phenom -md docs/RESULTS.md

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

tools:
	$(GO) build ./cmd/...
