# PPEP reproduction — common targets.

GO ?= go
LINT_STATS := /tmp/ppeplint-stats.json
# perfcheck's raw compiler-transcript cache (ppeplint -gcflags-cache):
# content-hash keyed, so repeat runs over an unchanged tree skip the
# -gcflags='-m -m -d=ssa/check_bce/debug=1' compile. CI persists this
# directory with actions/cache.
GCFLAGS_CACHE ?= .gcflags-cache

.PHONY: all test lint lint-perf fmt-check ci smoke smoke-cache loadgen-smoke fleet-smoke bench bench-guard bench-all experiments flagship fmt vet tools

all: test

test: lint
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./...

# ppeplint: the module's own static-analysis suite (internal/lint).
# Non-zero exit on any unsuppressed finding; see docs/LINTING.md.
lint:
	$(GO) run ./cmd/ppeplint -gcflags-cache $(GCFLAGS_CACHE)

# perfcheck alone: the compiler-diagnostics budgets (hot-path escapes,
# //ppep:inline verdicts, //ppep:nobc residual bounds checks). The
# fastest loop while tuning a hot function — everything else in the
# suite is skipped and the transcript cache absorbs the compile.
lint-perf:
	$(GO) run ./cmd/ppeplint -analyzers=perfcheck -gcflags-cache $(GCFLAGS_CACHE)

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# The full merge gate, mirrored by .github/workflows/ci.yml.
ci: fmt-check
	$(GO) vet ./...
	$(GO) run ./cmd/ppeplint -gcflags-cache $(GCFLAGS_CACHE)
	$(MAKE) lint-perf
	$(GO) test -race ./...
	$(MAKE) smoke
	$(MAKE) smoke-cache
	$(MAKE) loadgen-smoke
	$(MAKE) fleet-smoke
	$(MAKE) bench-guard

# Service-mode smoke test: the httptest endpoint suite plus the
# end-to-end faulted-loop integration test, run fresh (-count=1) so a
# cached `go test ./...` pass can't mask an ppepd -serve regression.
smoke:
	$(GO) test -count=1 -run 'TestServe|TestListenAndServe' ./internal/serve

# Trace-cache smoke test: run a reduced campaign twice into the same
# fresh cache directory; the second run must be pure decode (misses=0
# in the greppable stats line, see docs/CACHE.md). Bit-transparency is
# covered separately by TestCacheEquivalence.
smoke-cache:
	@dir=$$(mktemp -d) && trap 'rm -rf "$$dir"' EXIT && \
	$(GO) run ./cmd/ppep-experiments -scale 0.01 -max 3 -run sec4a-idle -cache-dir "$$dir" >/dev/null && \
	out=$$($(GO) run ./cmd/ppep-experiments -scale 0.01 -max 3 -run sec4a-idle -cache-dir "$$dir") && \
	echo "$$out" | grep 'trace cache' && \
	echo "$$out" | grep -q 'misses=0 ' || { echo "smoke-cache: warm run re-simulated (want misses=0)"; exit 1; }

# Serving-layer smoke test: ppep-loadgen spins up an in-process ppepd
# (slim training, loopback port) and drives a short closed loop against
# /predict/batch; non-trivial throughput and a loose p99 ceiling are
# asserted by the tool itself (exit 1 on violation). The bounds are
# deliberately lax — CI machines are noisy; BENCH_fxsim.json carries
# the real numbers via BenchmarkPredictServe.
loadgen-smoke:
	$(GO) run ./cmd/ppep-loadgen -self -duration 2s -c 16 -binary -min-rps 1000 -max-p99 250ms

# Fleet-engine smoke test: a small sharded fleet on the heterogeneous
# mix, asserting (1) per-node fingerprints bit-identical to a
# workers=1/shard=1 reference rerun — the engine's determinism
# contract — and (2) a deliberately lax throughput floor (CI machines
# are noisy; BENCH_fxsim.json carries the real numbers via
# BenchmarkFleetTick/BenchmarkFleetTickParallel).
fleet-smoke:
	$(GO) run ./cmd/ppep-fleet -nodes 64 -seconds 2 -mix mixed -check-invariance -min-mticks 0.05

# Tick-loop microbenchmarks plus the cold/warm trace-cache campaign
# pair, summarized into a committable JSON record (mean over -count=5
# samples; see cmd/benchjson — the cache benchmarks' hit/miss/bytes
# counters land under each record's "metrics" key). The ppeplint run's
# package count and wall time ride along under the "ppeplint" key.
bench:
	$(GO) run ./cmd/ppeplint -stats $(LINT_STATS) -gcflags-cache $(GCFLAGS_CACHE)
	$(GO) test -run xxx -bench '^(BenchmarkChipTick|BenchmarkTickN|BenchmarkTickNJittered|BenchmarkFleetTick|BenchmarkFleetTickParallel|BenchmarkEventPrediction|BenchmarkServeInterval|BenchmarkPredictServe|BenchmarkCampaignColdCache|BenchmarkCampaignWarmCache)$$' \
		-benchmem -count=5 . | $(GO) run ./cmd/benchjson -lint $(LINT_STATS) > BENCH_fxsim.json
	rm -f $(LINT_STATS)
	cat BENCH_fxsim.json

# Batched-tick-engine guard: a fresh (-count=1) reference-vs-fast
# equivalence smoke — the golden fingerprints, the deterministic and
# fuzzed equivalence scenarios, the fast path's zero-alloc pin — plus
# the lint pins asserting the fast path carries //ppep:hotpath and the
# suppression census gained nothing new.
bench-guard:
	$(GO) test -count=1 -run 'TestGoldenCollectEquivalence|TestEngineEquivalence|TestEngineFuzz|TestFastTickZeroAlloc' ./internal/fxsim
	$(GO) test -count=1 -run 'TestRepoClean|TestHotRootsAnnotated' ./internal/lint

# Every benchmark, including the figure/table regenerations.
bench-all:
	$(GO) test -bench=. -benchmem ./...

# Quick pass over every table/figure (shrunken benchmarks).
experiments:
	$(GO) run ./cmd/ppep-experiments -scale 0.1

# The flagship run behind EXPERIMENTS.md (minutes, full suite list).
flagship:
	$(GO) run ./cmd/ppep-experiments -scale 0.5 -phenom -md docs/RESULTS.md

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

tools:
	$(GO) build ./cmd/...
