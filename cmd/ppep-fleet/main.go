// Command ppep-fleet runs the sharded parallel fleet engine: N
// independent simulated PPEP nodes advancing in lockstep decision
// intervals over a bounded worker pool, with the fleet state published
// as immutable snapshots (internal/fleet, docs/FLEET.md).
//
// Throughput smoke (the shape `make fleet-smoke` uses):
//
//	ppep-fleet -nodes 64 -seconds 2 -mix mixed -check-invariance -min-mticks 0.05
//
// Fleet prediction surface (trains slim models, then reports the
// fleet-total predicted watts at every VF state):
//
//	ppep-fleet -nodes 256 -seconds 5 -mix mixed -models
//
// -min-mticks and -check-invariance turn the run into an assertion:
// the process exits 1 if throughput is below the floor or per-node
// fingerprints differ between the parallel run and a workers=1 rerun,
// so CI can gate on both performance and determinism.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ppep/internal/arch"
	"ppep/internal/core"
	"ppep/internal/fleet"
)

func main() {
	var (
		nodes     = flag.Int("nodes", 256, "fleet size")
		workers   = flag.Int("workers", 0, "pool width (0 = GOMAXPROCS)")
		seconds   = flag.Float64("seconds", 1, "simulated seconds to advance")
		mixName   = flag.String("mix", "mixed", "workload-mix preset (steady|jittered|mixed)")
		seed      = flag.Int64("seed", 42, "fleet identity seed")
		shard     = flag.Int("shard", 0, "nodes per pool job (0 = default)")
		useModels = flag.Bool("models", false, "train slim PPEP models and publish per-VF predictions")
		minMticks = flag.Float64("min-mticks", 0, "exit 1 if throughput is below this many Mticks/s (0 = no assertion)")
		checkInv  = flag.Bool("check-invariance", false, "rerun at workers=1 and exit 1 unless per-node fingerprints match")
	)
	flag.Parse()

	mix, err := fleet.ParseMix(*mixName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppep-fleet:", err)
		os.Exit(2)
	}
	if *nodes < 1 || *seconds <= 0 {
		fmt.Fprintln(os.Stderr, "ppep-fleet: -nodes and -seconds must be positive")
		os.Exit(2)
	}
	intervals := int(*seconds * 1000 / arch.DecisionIntervalMS)
	if intervals < 1 {
		intervals = 1
	}

	var models *core.Models
	if *useModels {
		fmt.Println("training slim models...")
		if models, err = fleet.SlimModels(); err != nil {
			fmt.Fprintln(os.Stderr, "ppep-fleet:", err)
			os.Exit(1)
		}
	}

	cfg := fleet.Config{
		Nodes: *nodes, Workers: *workers, ShardNodes: *shard,
		Seed: *seed, Mix: mix, Models: models, IdealSensor: true,
	}
	e, err := fleet.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppep-fleet:", err)
		os.Exit(1)
	}

	start := time.Now()
	e.AdvanceN(intervals)
	wall := time.Since(start)

	s := e.Snapshot()
	simS := s.TimeS
	ticks := float64(*nodes) * float64(intervals) * arch.DecisionIntervalMS
	mticks := ticks / 1e6 / wall.Seconds()
	xreal := simS / wall.Seconds()

	fmt.Printf("fleet: %d nodes, %d workers, mix=%s, %d intervals (%.1f simulated s)\n",
		e.Nodes(), e.Workers(), mix, intervals, simS)
	fmt.Printf("wall %.3fs  |  %.2f Mticks/s  |  %.1fx real time (fleet lockstep)\n",
		wall.Seconds(), mticks, xreal)
	fmt.Printf("fleet power: measured %.0f W, true %.0f W, %d busy cores\n",
		s.TotalMeasW, s.TotalTrueW, s.BusyCores)
	if models != nil {
		fmt.Printf("predicted fleet watts per VF (%d/%d nodes analyzed):\n", s.AnalyzedNodes, e.Nodes())
		for v := 1; v <= s.NVF; v++ {
			fmt.Printf("  VF%d: %8.0f W\n", v, float64(s.TotalPredAt(arch.VFState(v))))
		}
	}

	failed := false
	if *minMticks > 0 && mticks < *minMticks {
		fmt.Fprintf(os.Stderr, "ppep-fleet: %.2f Mticks/s below floor %.2f\n", mticks, *minMticks)
		failed = true
	}
	if *checkInv {
		refCfg := cfg
		refCfg.Workers = 1
		refCfg.ShardNodes = 1
		ref, err := fleet.New(refCfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ppep-fleet:", err)
			os.Exit(1)
		}
		ref.AdvanceN(intervals)
		mismatch := 0
		for i := 0; i < e.Nodes(); i++ {
			if e.Fingerprint(i) != ref.Fingerprint(i) {
				mismatch++
			}
		}
		if mismatch > 0 {
			fmt.Fprintf(os.Stderr, "ppep-fleet: %d/%d node fingerprints differ from the workers=1 reference\n",
				mismatch, e.Nodes())
			failed = true
		} else {
			fmt.Printf("invariance: all %d node fingerprints match the workers=1 reference\n", e.Nodes())
		}
	}
	if failed {
		os.Exit(1)
	}
}
