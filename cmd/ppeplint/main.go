// Command ppeplint runs the module's custom static-analysis suite
// (internal/lint): hotpath allocation-freedom, simulation determinism,
// worker-pool safety, and dropped-error checks. It is stdlib-only and
// exits non-zero on any unsuppressed finding, so `make lint` / `make ci`
// can gate merges on it. See docs/LINTING.md.
//
// Usage:
//
//	ppeplint [-C dir] [-stats file] [patterns...]
//
// Patterns default to ./... relative to -C (default: current directory).
// -stats writes a small JSON record (analyzed package count, findings,
// suppressions, wall time) consumed by cmd/benchjson.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"ppep/internal/lint"
)

type stats struct {
	AnalyzedPackages int   `json:"analyzed_packages"`
	Findings         int   `json:"findings"`
	Suppressed       int   `json:"suppressed"`
	WallMS           int64 `json:"wall_ms"`
}

func main() {
	dir := flag.String("C", ".", "directory to run in (module root or below)")
	statsPath := flag.String("stats", "", "write run statistics as JSON to this file")
	flag.Parse()

	start := time.Now()
	m, err := lint.Load(*dir, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppeplint:", err)
		os.Exit(2)
	}
	findings := m.Run(lint.DefaultConfig(m.Path))
	wall := time.Since(start)

	cwd, _ := os.Getwd() // best-effort; empty cwd falls back to absolute paths
	for _, f := range findings {
		name := f.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !filepath.IsAbs(rel) {
				name = rel
			}
		}
		fmt.Printf("%s:%d: [%s] %s\n", name, f.Pos.Line, f.Analyzer, f.Message)
	}

	if *statsPath != "" {
		s := stats{
			AnalyzedPackages: len(m.Packages),
			Findings:         len(findings),
			Suppressed:       m.Suppressed(),
			WallMS:           wall.Milliseconds(),
		}
		b, err := json.MarshalIndent(s, "", "  ")
		if err == nil {
			err = os.WriteFile(*statsPath, append(b, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "ppeplint: writing stats:", err)
			os.Exit(2)
		}
	}

	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "ppeplint: %d finding(s) in %d package(s)\n", len(findings), len(m.Packages))
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "ppeplint: ok (%d packages, %d suppression(s), %dms)\n",
		len(m.Packages), m.Suppressed(), wall.Milliseconds())
}
