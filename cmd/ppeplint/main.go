// Command ppeplint runs the module's custom static-analysis suite
// (internal/lint): hotpath allocation-freedom, simulation determinism,
// worker-pool safety, dropped-error checks, unitcheck dimensional
// analysis, the concurrency pack — atomiccheck (consistent atomic
// access, no copied locks), ctxcheck (cancellation-aware service
// loops), and leakcheck (goroutine join/cancel proofs) — and perfcheck,
// which compiles the module with -gcflags='-m -m
// -d=ssa/check_bce/debug=1' and holds the hot paths to the compiler's
// own verdicts (escape analysis, inlining, residual bounds checks). It
// is stdlib-only and exits non-zero on any unsuppressed
// finding, so `make lint` / `make ci` can gate merges on it. See
// docs/LINTING.md and docs/UNITS.md.
//
// Usage:
//
//	ppeplint [-C dir] [-json] [-stats file] [-analyzers a,b|list] [-gcflags-cache dir] [patterns...]
//
// Patterns default to ./... relative to -C (default: current directory).
// -json replaces the plain `file:line: [analyzer] message` lines with a
// JSON array of finding objects on stdout (machine-readable; the CI
// problem matcher consumes the plain format, tooling the JSON one).
// -stats writes a small JSON record (analyzed package count, findings,
// suppressions — total and per analyzer — per-analyzer wall time, and
// perfcheck's compile time) consumed by cmd/benchjson.
// -analyzers runs only the named comma-separated subset (faster local
// iteration; lets CI shard lint from tests); `-analyzers list` prints
// the registry and exits.
// -gcflags-cache caches perfcheck's raw compiler transcript in the
// given directory, keyed by a content hash of the module sources; CI
// restores it so an unchanged tree skips the diagnostics compile.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ppep/internal/lint"
)

// analyzerStats is the per-analyzer slice of a run: how many findings
// survived, how many an //ppep:allow directive absorbed, and how long
// the analyzer itself ran (for perfcheck this includes the diagnostics
// compile; PerfCompileMS in the top-level record isolates that part).
type analyzerStats struct {
	Findings   int   `json:"findings"`
	Suppressed int   `json:"suppressed"`
	WallMS     int64 `json:"wall_ms"`
}

type stats struct {
	AnalyzedPackages int                      `json:"analyzed_packages"`
	Findings         int                      `json:"findings"`
	Suppressed       int                      `json:"suppressed"`
	WallMS           int64                    `json:"wall_ms"`
	PerfCompileMS    int64                    `json:"perf_compile_ms"`
	Analyzers        map[string]analyzerStats `json:"analyzers"`
}

// jsonFinding is the -json output record for one finding.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	dir := flag.String("C", ".", "directory to run in (module root or below)")
	statsPath := flag.String("stats", "", "write run statistics as JSON to this file")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of plain lines")
	analyzers := flag.String("analyzers", "",
		"comma-separated analyzers to run (default: all); 'list' prints the registry and exits")
	gcflagsCache := flag.String("gcflags-cache", "",
		"cache perfcheck's compiler transcript in this directory (keyed by source content hash)")
	flag.Parse()

	if *analyzers == "list" {
		for _, name := range lint.AnalyzerNames {
			fmt.Println(name)
		}
		return
	}
	runNames := lint.AnalyzerNames
	if *analyzers != "" {
		runNames = strings.Split(*analyzers, ",")
		for i, name := range runNames {
			runNames[i] = strings.TrimSpace(name)
		}
	}

	start := time.Now()
	m, err := lint.Load(*dir, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppeplint:", err)
		os.Exit(2)
	}
	cfg := lint.DefaultConfig(m.Path)
	cfg.PerfCacheDir = *gcflagsCache
	findings, err := m.RunAnalyzers(cfg, runNames...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppeplint:", err)
		os.Exit(2)
	}
	wall := time.Since(start)

	cwd, _ := os.Getwd() // best-effort; empty cwd falls back to absolute paths
	relName := func(name string) string {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !filepath.IsAbs(rel) {
				return rel
			}
		}
		return name
	}

	if *jsonOut {
		recs := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			recs = append(recs, jsonFinding{
				File:     relName(f.Pos.Filename),
				Line:     f.Pos.Line,
				Column:   f.Pos.Column,
				Analyzer: f.Analyzer,
				Message:  f.Message,
			})
		}
		b, err := json.MarshalIndent(recs, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "ppeplint:", err)
			os.Exit(2)
		}
		fmt.Println(string(b))
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d: [%s] %s\n", relName(f.Pos.Filename), f.Pos.Line, f.Analyzer, f.Message)
		}
	}

	if *statsPath != "" {
		perAnalyzer := map[string]analyzerStats{}
		for name, n := range m.SuppressedBy() {
			a := perAnalyzer[name]
			a.Suppressed = n
			perAnalyzer[name] = a
		}
		for _, f := range findings {
			a := perAnalyzer[f.Analyzer]
			a.Findings++
			perAnalyzer[f.Analyzer] = a
		}
		// Analyzers with nothing to report still appear — but only the
		// ones that actually ran, so a subset run's record does not
		// claim coverage it did not have.
		for _, name := range runNames {
			if _, ok := perAnalyzer[name]; !ok {
				perAnalyzer[name] = analyzerStats{}
			}
		}
		for name, d := range m.AnalyzerWall() {
			a := perAnalyzer[name]
			a.WallMS = d.Milliseconds()
			perAnalyzer[name] = a
		}
		s := stats{
			AnalyzedPackages: len(m.Packages),
			Findings:         len(findings),
			Suppressed:       m.Suppressed(),
			WallMS:           wall.Milliseconds(),
			PerfCompileMS:    m.PerfCompileWall().Milliseconds(),
			Analyzers:        perAnalyzer,
		}
		b, err := json.MarshalIndent(s, "", "  ")
		if err == nil {
			err = os.WriteFile(*statsPath, append(b, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "ppeplint: writing stats:", err)
			os.Exit(2)
		}
	}

	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "ppeplint: %d finding(s) in %d package(s)\n", len(findings), len(m.Packages))
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "ppeplint: ok (%d packages, %d suppression(s), %dms)\n",
		len(m.Packages), m.Suppressed(), wall.Milliseconds())
}
