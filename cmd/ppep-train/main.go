// Command ppep-train executes the one-time offline training the paper
// describes (Section IV): idle heat/cool transients at every VF state,
// the benchmark measurement campaign, the power-gating sweeps, and the
// regressions — then prints every trained coefficient.
//
// Usage:
//
//	ppep-train [-scale 0.1] [-max 0] [-csv dir]
//
// -csv dumps each run's measurement trace as CSV into the directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ppep/internal/arch"
	"ppep/internal/experiments"
)

func main() {
	var (
		scale  = flag.Float64("scale", 0.1, "benchmark length scale (1.0 = full length)")
		max    = flag.Int("max", 0, "cap runs per suite (0 = all)")
		csvDir = flag.String("csv", "", "directory to dump per-run CSV traces")
		save   = flag.String("save", "", "write the trained model coefficients to this JSON file")
	)
	flag.Parse()

	start := time.Now()
	camp, err := experiments.NewFXCampaign(experiments.Options{Scale: *scale, MaxRunsPerSuite: *max})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("campaign: %d run traces in %.1fs\n\n", len(camp.Runs), time.Since(start).Seconds())

	m := camp.Models
	fmt.Println("== idle power model (Eq. 2): P = W1(V)·T + W0(V) ==")
	fmt.Printf("W1 coefficients (V^0..V^%d): %v\n", m.Idle.W1.Degree(), m.Idle.W1)
	fmt.Printf("W0 coefficients (V^0..V^%d): %v\n", m.Idle.W0.Degree(), m.Idle.W0)
	for _, vf := range camp.Table.States() {
		p := camp.Table.Point(vf)
		fmt.Printf("  %v (%.3f V): P_idle(320K) = %.2f W\n", vf, p.Voltage, m.Idle.Estimate(p.Voltage, 320))
	}

	fmt.Println("\n== dynamic power model (Eq. 3) ==")
	fmt.Printf("alpha = %.3f, VRef = %.3f V\n", m.Dyn.Alpha, m.Dyn.VRef)
	for i, ev := range arch.Events[:arch.NumPowerEvents] {
		fmt.Printf("  W%d (%-42s) = %.4g W per event/s\n", i+1, ev.Name, m.Dyn.W[i])
	}

	fmt.Println("\n== power-gating decomposition (Section IV-D) ==")
	for _, vf := range camp.Table.States() {
		d := m.PG[vf]
		fmt.Printf("  %v: Pidle(CU)=%.2f W  Pidle(NB)=%.2f W  Pidle(Base)=%.2f W\n",
			vf, d.PidleCU, d.PidleNB, d.PidleBase)
	}

	if camp.GG != nil {
		fmt.Println("\n== Green Governors baseline ==")
		fmt.Printf("Ceff = %.4g·nBusy + %.4g·UPC + %.4g·FPC + %.4g·DCPC + %.4g·ICPC (W/(V²·GHz))\n",
			camp.GG.C[0], camp.GG.C[1], camp.GG.C[2], camp.GG.C[3], camp.GG.C[4])
		for _, vf := range camp.Table.States() {
			fmt.Printf("  static[%v] = %.2f W\n", vf, camp.GG.StaticW[vf])
		}
	}

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := camp.Models.Save(f); err != nil {
			_ = f.Close() // already exiting on the write error
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote model coefficients to %s\n", *save)
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		n := 0
		for _, rt := range camp.Runs {
			name := fmt.Sprintf("%s_%v.csv", sanitize(rt.Name), rt.VF)
			f, err := os.Create(filepath.Join(*csvDir, name))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := rt.Trace.WriteCSV(f); err != nil {
				_ = f.Close() // already exiting on the write error
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			n++
		}
		fmt.Printf("\nwrote %d CSV traces to %s\n", n, *csvDir)
	}
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case ' ', '+', '/':
			return '_'
		}
		return r
	}, s)
}
