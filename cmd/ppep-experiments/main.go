// Command ppep-experiments reproduces the paper's evaluation: it executes
// the measurement campaign on the simulated platform, trains the PPEP
// models, and regenerates every table and figure.
//
// Usage:
//
//	ppep-experiments [-run fig2,fig7] [-scale 0.1] [-max 8] [-phenom] [-list]
//	                 [-cache-dir DIR] [-cache-max-mb N]
//
// -scale shrinks benchmark lengths for quick runs (1.0 = the full-length
// campaign); -max caps the per-suite run count; -run selects a
// comma-separated subset of experiments; -phenom additionally runs the
// secondary-platform validation.
//
// -cache-dir enables the persistent simulation-trace cache (docs/CACHE.md):
// every deterministic campaign cell is stored under DIR keyed by its full
// identity, so a repeat invocation with the same configuration decodes
// traces instead of re-simulating them, bit-identically. -cache-max-mb
// bounds the directory size (oldest entries evicted; 0 = unbounded). The
// cache statistics are printed after each campaign in greppable
// key=value form (hits=… misses=…).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ppep/internal/experiments"
)

func main() {
	var (
		runList = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		scale   = flag.Float64("scale", 0.1, "benchmark length scale (1.0 = full length)")
		maxRuns = flag.Int("max", 0, "cap runs per suite (0 = all)")
		phenom  = flag.Bool("phenom", false, "also run the Phenom II validation campaign")
		list    = flag.Bool("list", false, "list experiments and exit")
		md      = flag.String("md", "", "also write all results as a Markdown report to this file")

		cacheDir   = flag.String("cache-dir", "", "persistent simulation-trace cache directory (empty = no cache)")
		cacheMaxMB = flag.Int64("cache-max-mb", 0, "cache size cap in MiB, oldest entries evicted (0 = unbounded)")
		reftick    = flag.Bool("reftick", false, "pin every chip to the reference per-tick path (bit-identical, slower; for engine A/B runs)")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Desc)
		}
		return
	}

	selected := experiments.All()
	if *runList != "" {
		selected = selected[:0]
		for _, id := range strings.Split(*runList, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	opts := experiments.Options{
		Scale: *scale, MaxRunsPerSuite: *maxRuns,
		CacheDir: *cacheDir, CacheMaxBytes: *cacheMaxMB << 20,
		ReferenceTick: *reftick,
	}
	fmt.Printf("building FX-8320 campaign (scale %.2f, max/suite %d)...\n", *scale, *maxRuns)
	start := time.Now()
	camp, err := experiments.NewFXCampaign(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("campaign ready in %.1fs: %d run traces, α=%.2f\n",
		time.Since(start).Seconds(), len(camp.Runs), camp.Models.Dyn.Alpha)
	printCacheStats(camp)
	fmt.Println()

	failed := 0
	var all []*experiments.Result
	for _, e := range selected {
		t0 := time.Now()
		results, err := e.Run(camp)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			failed++
			continue
		}
		for _, r := range results {
			fmt.Println(r)
		}
		all = append(all, results...)
		fmt.Printf("   (%.1fs)\n\n", time.Since(t0).Seconds())
	}

	if *md != "" {
		f, err := os.Create(*md)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		title := fmt.Sprintf("PPEP reproduction results (scale %.2f)", *scale)
		if err := experiments.WriteMarkdown(f, title, all); err != nil {
			_ = f.Close() // already exiting on the write error
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote Markdown report to %s\n", *md)
	}

	if *phenom {
		fmt.Println("building Phenom II validation campaign...")
		ph, err := experiments.NewPhenomCampaign(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res, err := ph.IdleModelAccuracy()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(res)
		a, b, err := ph.Fig2()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(a)
		fmt.Println(b)
		printCacheStats(ph)
	}
	// The main campaign's final counters include the lazily-collected
	// exploration traces, so report them after all experiments ran.
	printCacheStats(camp)
	if failed > 0 {
		os.Exit(1)
	}
}

// printCacheStats emits the trace-cache counters in the greppable
// key=value form the CI warm-cache smoke step matches on.
func printCacheStats(c *experiments.Campaign) {
	if st, ok := c.CacheStats(); ok {
		fmt.Printf("trace cache [%s]: %s\n", c.Platform, st)
	}
}
