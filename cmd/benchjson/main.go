// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON summary on stdout, so benchmark results can be committed
// and diffed across PRs.
//
// Usage:
//
//	go test -run xxx -bench 'BenchmarkChipTick|BenchmarkTickN' -benchmem -count=5 . | benchjson > BENCH_fxsim.json
//
// Repeated samples of the same benchmark (from -count) are averaged; the
// GOMAXPROCS suffix (-8) is stripped so names stay comparable between
// machines.
//
// With -lint <file>, the ppeplint statistics JSON written by
// `ppeplint -stats` is merged into the output under the "ppeplint" key,
// so static-analysis cost (packages analyzed, wall time) is tracked in
// BENCH_fxsim.json alongside the tick-loop numbers.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches one benchmark result row, e.g.
//
//	BenchmarkChipTick-8   569186   2024 ns/op   0 B/op   0 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(.*)$`)

// memField matches every "<value> <unit>" column after ns/op: the
// -benchmem pair (B/op, allocs/op) plus any custom b.ReportMetric units
// (cache_hits, cache_hit_rate, experiment headline metrics, ...).
var memField = regexp.MustCompile(`([0-9.eE+-]+) ([A-Za-z_][A-Za-z0-9_./-]*)`)

// result accumulates samples for one benchmark name.
type result struct {
	ns      []float64
	bytes   []float64
	allocs  []float64
	metrics map[string][]float64
}

// summary is the per-benchmark JSON record.
type summary struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Samples     int     `json:"samples"`
	// Metrics carries custom b.ReportMetric values by unit name — the
	// cache benchmarks report hit/miss counts, bytes moved, and hit rate
	// here so the incremental engine's behavior is diffable across PRs.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func main() {
	lintPath := flag.String("lint", "", "merge a ppeplint -stats JSON file into the output")
	flag.Parse()

	results := map[string]*result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		r := results[name]
		if r == nil {
			r = &result{}
			results[name] = r
		}
		r.ns = append(r.ns, ns)
		for _, f := range memField.FindAllStringSubmatch(m[3], -1) {
			v, err := strconv.ParseFloat(f[1], 64)
			if err != nil {
				continue
			}
			switch f[2] {
			case "B/op":
				r.bytes = append(r.bytes, v)
			case "allocs/op":
				r.allocs = append(r.allocs, v)
			default:
				if r.metrics == nil {
					r.metrics = map[string][]float64{}
				}
				r.metrics[f[2]] = append(r.metrics[f[2]], v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	out := map[string]json.RawMessage{}
	for name, r := range results {
		s := summary{
			NsPerOp:     mean(r.ns),
			BytesPerOp:  mean(r.bytes),
			AllocsPerOp: mean(r.allocs),
			Samples:     len(r.ns),
		}
		if len(r.metrics) > 0 {
			s.Metrics = map[string]float64{}
			for unit, vs := range r.metrics {
				s.Metrics[unit] = mean(vs)
			}
		}
		rec, _ := json.Marshal(s) // records are plain structs; marshal cannot fail
		out[name] = rec
	}
	if *lintPath != "" {
		data, err := os.ReadFile(*lintPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var compact bytes.Buffer
		if err := json.Compact(&compact, data); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *lintPath, err)
			os.Exit(1)
		}
		out["ppeplint"] = compact.Bytes()
	}
	names := make([]string, 0, len(out))
	for n := range out {
		names = append(names, n)
	}
	sort.Strings(names)
	// Emit keys in sorted order for stable diffs.
	var b strings.Builder
	b.WriteString("{\n")
	for i, n := range names {
		fmt.Fprintf(&b, "  %q: %s", n, out[n])
		if i < len(names)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	fmt.Print(b.String())
}
