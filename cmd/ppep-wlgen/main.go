// Command ppep-wlgen inspects the synthetic benchmark suites: per-program
// profiles, counter signatures, and the paper's 152 evaluation
// combinations.
//
// Usage:
//
//	ppep-wlgen                 # summary of all suites
//	ppep-wlgen -suite SPEC     # one suite's profiles
//	ppep-wlgen -runs           # the 152 combinations
//	ppep-wlgen -bench 433.milc # one profile in detail
package main

import (
	"flag"
	"fmt"
	"os"

	"ppep/internal/workload"
)

func main() {
	var (
		suite = flag.String("suite", "", "suite to list: SPEC, PARSEC, NPB")
		runs  = flag.Bool("runs", false, "list the 152 evaluation combinations")
		bench = flag.String("bench", "", "show one benchmark profile in detail")
	)
	flag.Parse()

	switch {
	case *bench != "":
		showBench(*bench)
	case *runs:
		showRuns()
	case *suite != "":
		showSuite(*suite)
	default:
		fmt.Printf("%-8s %3s programs\n", "SPEC", fmt.Sprint(len(workload.SPECBenchmarks())))
		fmt.Printf("%-8s %3s programs\n", "PARSEC", fmt.Sprint(len(workload.PARSECBenchmarks())))
		fmt.Printf("%-8s %3s programs\n", "NPB", fmt.Sprint(len(workload.NPBBenchmarks())))
		fmt.Printf("\ncombinations: %d SPEC + %d PARSEC + %d NPB = %d\n",
			len(workload.SPECRuns()), len(workload.PARSECRuns()), len(workload.NPBRuns()),
			len(workload.AllRuns()))
	}
}

func suiteList(name string) []*workload.Benchmark {
	switch name {
	case "SPEC":
		return workload.SPECBenchmarks()
	case "PARSEC":
		return workload.PARSECBenchmarks()
	case "NPB":
		return workload.NPBBenchmarks()
	default:
		fmt.Fprintf(os.Stderr, "unknown suite %q\n", name)
		os.Exit(2)
		return nil
	}
}

func showSuite(name string) {
	fmt.Printf("%-16s %-10s %3s %8s %8s %9s %7s\n",
		"benchmark", "class", "FP", "G-inst", "phases", "L2miss/ki", "noise")
	for _, b := range suiteList(name) {
		p := b.Phases[0]
		fp := ""
		if b.FP {
			fp = "fp"
		}
		fmt.Printf("%-16s %-10s %3s %8.0f %8d %9.2f %7.2f\n",
			b.Name, b.Class, fp, b.Instructions/1e9, len(b.Phases),
			p.PerInst.L2Miss*1000, p.Noise)
	}
}

func showRuns() {
	for _, r := range workload.AllRuns() {
		fmt.Printf("%-4s %-22s %d threads\n", r.Suite, r.Name, r.TotalThreads())
	}
}

func showBench(name string) {
	var found *workload.Benchmark
	for _, b := range append(append(workload.SPECBenchmarks(),
		workload.PARSECBenchmarks()...), workload.NPBBenchmarks()...) {
		if b.Name == name {
			found = b
			break
		}
	}
	if found == nil {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", name)
		os.Exit(2)
	}
	b := found
	fmt.Printf("%s (%s, %s)\n", b.Name, b.Suite, b.Class)
	fmt.Printf("instructions: %.0fG, loops: %d\n", b.Instructions/1e9, b.Loops)
	fmt.Printf("freq sensitivities: %v\n", b.FreqSens)
	for i, p := range b.Phases {
		fmt.Printf("phase %d %q (weight %.2f):\n", i, p.Name, p.Weight)
		fmt.Printf("  baseCPI %.2f  L3missRatio %.2f  MLP %.2f  noise %.2f\n",
			p.BaseCPI, p.L3MissRatio, p.MLP, p.Noise)
		r := p.PerInst
		fmt.Printf("  per-inst: uops %.2f fpu %.2f ic %.2f dc %.2f l2req %.4f "+
			"br %.3f misp %.4f l2miss %.4f\n",
			r.Uops, r.FPU, r.ICFetch, r.DCAccess, r.L2Req, r.Branch, r.Mispred, r.L2Miss)
	}
}
