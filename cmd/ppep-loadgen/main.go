// Command ppep-loadgen is a closed-loop load harness for ppepd's
// prediction endpoints. It hammers a running daemon (or, with -self, an
// in-process one it spins up itself) with N concurrent keep-alive
// workers and reports throughput plus p50/p90/p99/p999 latency.
//
// Against an external daemon:
//
//	ppepd -serve :8080 &
//	ppep-loadgen -url http://127.0.0.1:8080 -c 32 -duration 10s -binary
//
// Self-contained (trains slim models, binds a busy chip, serves on a
// loopback port, then measures — the shape `make loadgen-smoke` uses):
//
//	ppep-loadgen -self -duration 2s -c 16 -min-rps 1000 -max-p99 250ms
//
// -min-rps and -max-p99 turn the run into an assertion: the process
// exits 1 if the achieved rate is below the floor or the p99 above the
// ceiling, so CI can gate on serving performance.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ppep/internal/daemon"
	"ppep/internal/fleet"
	"ppep/internal/fxsim"
	"ppep/internal/loadgen"
	"ppep/internal/serve"
	"ppep/internal/workload"
)

func main() {
	var (
		url      = flag.String("url", "", "base URL of a running ppepd (e.g. http://127.0.0.1:8080)")
		path     = flag.String("path", loadgen.DefaultPath, "endpoint to load")
		conns    = flag.Int("c", loadgen.DefaultConns, "concurrent closed-loop workers")
		duration = flag.Duration("duration", loadgen.DefaultDuration, "measurement window")
		binary   = flag.Bool("binary", false, "request the binary batch encoding (Accept: application/x-ppep-batch)")
		self     = flag.Bool("self", false, "spin up an in-process ppepd on a loopback port and load that")
		minRPS   = flag.Float64("min-rps", 0, "exit 1 if achieved req/s is below this (0 = no assertion)")
		maxP99   = flag.Duration("max-p99", 0, "exit 1 if p99 latency exceeds this (0 = no assertion)")
	)
	flag.Parse()

	if (*url == "") == !*self {
		fmt.Fprintln(os.Stderr, "ppep-loadgen: need exactly one of -url or -self")
		flag.Usage()
		os.Exit(2)
	}
	if *conns <= 0 || *duration <= 0 {
		fmt.Fprintln(os.Stderr, "ppep-loadgen: -c and -duration must be positive")
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	target := *url
	if *self {
		var shutdown func()
		var err error
		target, shutdown, err = selfServe(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ppep-loadgen:", err)
			os.Exit(1)
		}
		defer shutdown()
		fmt.Printf("self-serving on %s\n", target)
	}

	res, err := loadgen.Run(ctx, loadgen.Options{
		URL: target, Path: *path, Conns: *conns, Duration: *duration, Binary: *binary,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppep-loadgen:", err)
		os.Exit(1)
	}
	fmt.Println(res)

	failed := false
	if res.Requests == 0 || res.Errors == res.Requests {
		fmt.Fprintln(os.Stderr, "ppep-loadgen: no successful requests")
		failed = true
	}
	if *minRPS > 0 && res.RPS() < *minRPS {
		fmt.Fprintf(os.Stderr, "ppep-loadgen: %.0f req/s below floor %.0f\n", res.RPS(), *minRPS)
		failed = true
	}
	if *maxP99 > 0 && res.Hist.Quantile(0.99) > *maxP99 {
		fmt.Fprintf(os.Stderr, "ppep-loadgen: p99 %v above ceiling %v\n", res.Hist.Quantile(0.99), *maxP99)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// selfServe builds the whole serving stack in-process: slim-trained
// models, a busy simulated chip, the sampling daemon (unpaced, so
// tables republish as fast as the simulator runs), and the HTTP layer
// on an ephemeral loopback port. It returns the base URL and a
// shutdown func that joins both goroutines.
func selfServe(ctx context.Context) (string, func(), error) {
	fmt.Println("training slim models for self-serve mode...")
	models, err := fleet.SlimModels()
	if err != nil {
		return "", nil, err
	}

	chip := fxsim.New(fxsim.DefaultFX8320Config())
	chip.SetTempK(318)
	run := workload.MultiInstance("433", 2)
	for i := range run.Members {
		b := *run.Members[i].Bench
		b.Instructions = 1e15 // effectively endless: the chip must stay busy
		run.Members[i].Bench = &b
	}
	if _, err := chip.PlaceRun(run, fxsim.PlaceScatter, true); err != nil {
		return "", nil, err
	}

	d, err := daemon.AttachOpts(chip, models, nil, daemon.Options{HistoryCap: 64})
	if err != nil {
		return "", nil, err
	}
	// Light pacing keeps the sampling loop from monopolizing cores the
	// load workers need, while still republishing tables many times per
	// second — so the measurement covers live pointer swaps.
	d.Throttle = func() { time.Sleep(2 * time.Millisecond) }

	srv := serve.New(d, serve.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}

	srvCtx, cancel := context.WithCancel(ctx)
	loopDone := make(chan error, 1)
	httpDone := make(chan error, 1)
	go func() { loopDone <- d.Run(srvCtx) }()
	go func() { httpDone <- srv.Serve(srvCtx, ln) }()

	// Block until the first interval publishes so the measurement never
	// counts warm-up 404s.
	for d.Predictions() == nil {
		select {
		case <-srvCtx.Done():
			cancel()
			return "", nil, srvCtx.Err()
		case err := <-loopDone:
			cancel()
			return "", nil, fmt.Errorf("sampling loop died during warm-up: %v", err)
		case <-time.After(10 * time.Millisecond):
		}
	}

	shutdown := func() {
		cancel()
		if err := <-httpDone; err != nil {
			fmt.Fprintln(os.Stderr, "ppep-loadgen: http:", err)
		}
		if err := <-loopDone; err != nil && err != context.Canceled {
			fmt.Fprintln(os.Stderr, "ppep-loadgen: loop:", err)
		}
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}
