// Command ppep-replay analyzes recorded measurement traces offline: it
// loads model coefficients saved by `ppep-train -save` and CSV traces
// dumped by `ppep-train -csv`, then replays PPEP's per-interval analysis —
// estimation error against the recorded power, and the full cross-VF
// projection for any interval. This is the workflow for post-hoc analysis
// of traces captured on a live system.
//
// Usage:
//
//	ppep-replay -models models.json trace1.csv [trace2.csv ...]
//	ppep-replay -models models.json -interval 12 trace.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"ppep/internal/core"
	"ppep/internal/stats"
	"ppep/internal/trace"
)

func main() {
	var (
		modelsPath = flag.String("models", "", "model coefficients from ppep-train -save (required)")
		interval   = flag.Int("interval", -1, "print the full cross-VF projection of this interval index")
	)
	flag.Parse()
	if *modelsPath == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: ppep-replay -models models.json trace.csv [...]")
		os.Exit(2)
	}

	mf, err := os.Open(*modelsPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	models, err := core.LoadModels(mf)
	_ = mf.Close() // read-only handle; close errors carry no data
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("models: %d states, α=%.2f\n", len(models.Table), models.Dyn.Alpha)

	for _, path := range flag.Args() {
		tf, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tr, err := trace.ReadCSV(tf)
		_ = tf.Close() // read-only handle; close errors carry no data
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			os.Exit(1)
		}
		replay(models, path, tr, *interval)
	}
}

func replay(models *core.Models, path string, tr *trace.Trace, detail int) {
	var errs []float64
	for i, iv := range tr.Intervals {
		rep, err := models.Analyze(iv)
		if err != nil {
			continue
		}
		if iv.MeasPowerW > 0 {
			errs = append(errs, stats.AbsPctErr(float64(rep.Current().ChipW), iv.MeasPowerW))
		}
		if i == detail {
			fmt.Printf("\n%s interval %d (t=%.1fs, %v, %.1f°K, measured %.1fW):\n",
				path, i, iv.TimeS, iv.VF(), iv.TempK, iv.MeasPowerW)
			fmt.Printf("%-6s %9s %9s %11s\n", "state", "chip W", "idle W", "IPS")
			for j := len(rep.PerVF) - 1; j >= 0; j-- {
				p := rep.PerVF[j]
				fmt.Printf("%-6v %9.1f %9.1f %11.2e\n", p.VF, p.ChipW, p.IdleW, p.TotalIPS)
			}
		}
	}
	s := stats.SummarizeAbsErrors(errs)
	fmt.Printf("%s: %d intervals, estimation AAE %.1f%% (SD %.1f%%, max %.1f%%)\n",
		path, s.N, 100*s.Mean, 100*s.SD, 100*s.Max)
}
