package main

import (
	"strings"
	"testing"
	"time"

	"ppep/internal/arch"
)

// goodFlags is a baseline that must validate.
func goodFlags() flags {
	return flags{vf: 5, seconds: 10, scale: 0.05, capW: 70,
		ring: 512, pace: 200 * time.Millisecond}
}

func TestFlagValidation(t *testing.T) {
	if err := goodFlags().validate(arch.FX8320VFTable); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}

	cases := []struct {
		name string
		mut  func(*flags)
		want string // substring of the usage error
	}{
		{"vf too low", func(f *flags) { f.vf = 0 }, "-vf"},
		{"vf too high", func(f *flags) { f.vf = 6 }, "1..5"},
		{"vf negative", func(f *flags) { f.vf = -3 }, "-vf"},
		{"zero seconds", func(f *flags) { f.seconds = 0 }, "-seconds"},
		{"negative seconds", func(f *flags) { f.seconds = -1 }, "-seconds"},
		{"zero scale", func(f *flags) { f.scale = 0 }, "-scale"},
		{"negative scale", func(f *flags) { f.scale = -0.1 }, "-scale"},
		{"zero cap", func(f *flags) { f.capW = 0 }, "-cap"},
		{"negative ring", func(f *flags) { f.ring = -1 }, "-ring"},
		{"negative pace", func(f *flags) { f.pace = -time.Second }, "-pace"},
		{"msr rate 1", func(f *flags) { f.faultMSR = 1 }, "-fault-msr"},
		{"msr rate negative", func(f *flags) { f.faultMSR = -0.1 }, "-fault-msr"},
		{"hwmon rate 1.5", func(f *flags) { f.faultHwmon = 1.5 }, "-fault-hwmon"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := goodFlags()
			tc.mut(&f)
			err := f.validate(arch.FX8320VFTable)
			if err == nil {
				t.Fatal("invalid flags accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name the offending flag %q", err, tc.want)
			}
		})
	}

	// Boundary values that must be accepted.
	f := goodFlags()
	f.vf, f.ring, f.pace = 1, 0, 0
	f.faultMSR, f.faultHwmon = 0.99, 0
	if err := f.validate(arch.FX8320VFTable); err != nil {
		t.Errorf("boundary values rejected: %v", err)
	}
}
