// Command ppepd runs the PPEP daemon against a simulated chip, the way
// the paper's user-level daemon runs on real silicon: it trains the
// models once, binds a workload, then samples the hardware every 200 ms —
// counters through the MSR interface, temperature through hwmon — and
// prints live per-chip PPE projections for every VF state, applying an
// optional DVFS policy.
//
// With -serve it instead runs as an always-on service (Section IV-E as
// deployed): the sampling/analyze/policy loop becomes a
// context-cancellable goroutine that shuts down cleanly on SIGINT or
// SIGTERM, report history is bounded by a ring buffer, device reads are
// retried with backoff, and an HTTP layer exposes /metrics, /reports,
// /reports/latest, /predict?vf=N, /predict/batch (all VF states in one
// response, JSON or binary via Accept), and /healthz (see
// docs/DAEMON.md). Prediction responses are pre-rendered once per
// interval and served lock-free; cmd/ppep-loadgen measures what that
// sustains.
//
// Usage:
//
//	ppepd [-workload 433x2] [-vf 5] [-seconds 10] [-policy none|energy|edp|cap]
//	      [-cap 70] [-scale 0.05] [-load models.json]
//	      [-serve :8080] [-ring 512] [-pace 200ms]
//	      [-fault-msr 0.1] [-fault-hwmon 0.1]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ppep/internal/arch"
	"ppep/internal/core"
	"ppep/internal/daemon"
	"ppep/internal/dvfs"
	"ppep/internal/experiments"
	"ppep/internal/fxsim"
	"ppep/internal/hwmon"
	"ppep/internal/msr"
	"ppep/internal/serve"
	"ppep/internal/trace"
	"ppep/internal/units"
	"ppep/internal/workload"
)

// flags gathers every command-line knob for validation.
type flags struct {
	vf         int
	seconds    float64
	scale      float64
	capW       float64
	ring       int
	pace       time.Duration
	faultMSR   float64
	faultHwmon float64
}

// validate rejects out-of-range flag values with a usage-style error
// before any expensive work (an invalid -vf previously reached the
// simulator as undefined behaviour).
func (f flags) validate(table arch.VFTable) error {
	if f.vf < 1 || f.vf > len(table) {
		return fmt.Errorf("ppepd: -vf %d out of range: this platform has VF states 1..%d", f.vf, len(table))
	}
	if f.seconds <= 0 {
		return fmt.Errorf("ppepd: -seconds %v must be positive", f.seconds)
	}
	if f.scale <= 0 {
		return fmt.Errorf("ppepd: -scale %v must be positive", f.scale)
	}
	if f.capW <= 0 {
		return fmt.Errorf("ppepd: -cap %v must be positive", f.capW)
	}
	if f.ring < 0 {
		return fmt.Errorf("ppepd: -ring %d must be non-negative (0 keeps all history)", f.ring)
	}
	if f.pace < 0 {
		return fmt.Errorf("ppepd: -pace %v must be non-negative", f.pace)
	}
	if f.faultMSR < 0 || f.faultMSR >= 1 {
		return fmt.Errorf("ppepd: -fault-msr %v must be in [0, 1)", f.faultMSR)
	}
	if f.faultHwmon < 0 || f.faultHwmon >= 1 {
		return fmt.Errorf("ppepd: -fault-hwmon %v must be in [0, 1)", f.faultHwmon)
	}
	return nil
}

func main() {
	var (
		wl      = flag.String("workload", "433x2", "workload: SPEC number with instance count (429x1, 433x4), 'mix' for the capping mix")
		vf      = flag.Int("vf", 5, "initial VF state (1..5)")
		seconds = flag.Float64("seconds", 10, "run length in simulated seconds")
		policy  = flag.String("policy", "none", "DVFS policy: none, energy, edp, cap")
		capW    = flag.Float64("cap", 70, "power budget for -policy cap")
		scale   = flag.Float64("scale", 0.05, "training campaign scale")
		load    = flag.String("load", "", "load model coefficients from a ppep-train -save file instead of training")

		serveAddr  = flag.String("serve", "", "run as an always-on service on this HTTP address (e.g. :8080) instead of a finite batch")
		ring       = flag.Int("ring", 512, "service mode: report history ring capacity (0 = unbounded)")
		pace       = flag.Duration("pace", 200*time.Millisecond, "service mode: wall-clock pacing per simulated 200 ms interval (0 = flat out)")
		faultMSR   = flag.Float64("fault-msr", 0, "service mode: injected transient MSR fault rate in [0, 1)")
		faultHwmon = flag.Float64("fault-hwmon", 0, "service mode: injected transient diode fault rate in [0, 1)")
	)
	flag.Parse()

	fl := flags{vf: *vf, seconds: *seconds, scale: *scale, capW: *capW,
		ring: *ring, pace: *pace, faultMSR: *faultMSR, faultHwmon: *faultHwmon}
	if err := fl.validate(arch.FX8320VFTable); err != nil {
		fmt.Fprintln(os.Stderr, err)
		flag.Usage()
		os.Exit(2)
	}

	var models *core.Models
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		models, err = core.LoadModels(f)
		_ = f.Close() // read-only handle; close errors carry no data
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("loaded models from %s: alpha=%.2f\n\n", *load, models.Dyn.Alpha)
	} else {
		fmt.Println("training PPEP models (one-time offline effort)...")
		camp, err := experiments.NewFXCampaign(experiments.Options{Scale: *scale, MaxRunsPerSuite: 6})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		models = camp.Models
		fmt.Printf("trained: alpha=%.2f\n\n", models.Dyn.Alpha)
	}

	run, err := workload.ParseRunSpec(*wl)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := fxsim.DefaultFX8320Config()
	cfg.PowerGating = true
	if *policy == "cap" {
		cfg.PerCUPlanes = true
	}
	chip := fxsim.New(cfg)
	chip.SetTempK(318)

	if *serveAddr != "" {
		os.Exit(runServe(chip, models, run, *policy, *serveAddr, fl))
	}
	runBatch(chip, models, run, *policy, fl)
}

// ---- batch mode (finite run, live printing) ----

func runBatch(chip *fxsim.Chip, models *core.Models, run workload.Run, policy string, fl flags) {
	// Device-level access, as on the real platform.
	msrDev := msr.Open(chip)
	diode := hwmon.Open(chip)

	var counters daemon.Counters
	rejectLog := newRateLimited(2 * time.Second)

	var ctl fxsim.Controller
	switch policy {
	case "none":
	case "energy":
		ctl = policyFunc(func(ch *fxsim.Chip, iv trace.Interval) {
			if rep, err := models.Analyze(iv); err == nil {
				applyAll(ch, dvfs.EnergyOptimal(rep), &counters, rejectLog)
			}
		})
	case "edp":
		ctl = policyFunc(func(ch *fxsim.Chip, iv trace.Interval) {
			if rep, err := models.Analyze(iv); err == nil {
				applyAll(ch, dvfs.EDPOptimal(rep), &counters, rejectLog)
			}
		})
	case "cap":
		ctl = &dvfs.PPEPCapper{Models: models, Target: func(units.Seconds) units.Watts { return units.Watts(fl.capW) }}
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", policy)
		os.Exit(2)
	}

	printer := &daemonPrinter{models: models, inner: ctl, msr: msrDev, diode: diode,
		counters: &counters, errLog: newRateLimited(2 * time.Second)}
	_, err := chip.Collect(run, fxsim.RunOpts{
		VF: arch.VFState(fl.vf), MaxTimeS: fl.seconds, Restart: true,
		Placement: fxsim.PlaceScatter, WarmTempK: 318, Controller: printer,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if s := counters.Snapshot(); s.AnalyzeErrors > 0 || s.PolicyRejects > 0 {
		fmt.Fprintf(os.Stderr, "ppepd: %d analyze errors, %d rejected policy decisions during the run\n",
			s.AnalyzeErrors, s.PolicyRejects)
	}
}

// applyAll requests one P-state for every CU, counting and (rate-limited)
// logging rejections instead of silently dropping them: a rejected
// request leaves the previous state and is retried next interval.
func applyAll(ch *fxsim.Chip, s arch.VFState, counters *daemon.Counters, rl *rateLimited) {
	if err := ch.SetAllPStates(s); err != nil {
		counters.PolicyRejects.Add(1)
		rl.logf("ppepd: policy request for %v rejected: %v", s, err)
	}
}

// policyFunc adapts a closure into a Controller.
type policyFunc func(*fxsim.Chip, trace.Interval)

func (f policyFunc) Decide(c *fxsim.Chip, iv trace.Interval) { f(c, iv) }

// rateLimited emits through log.Printf at most once per period, counting
// what it suppressed in between.
type rateLimited struct {
	period     time.Duration
	last       time.Time
	suppressed uint64
}

func newRateLimited(period time.Duration) *rateLimited {
	return &rateLimited{period: period}
}

func (r *rateLimited) logf(format string, args ...any) {
	now := time.Now()
	if !r.last.IsZero() && now.Sub(r.last) < r.period {
		r.suppressed++
		return
	}
	if r.suppressed > 0 {
		format += fmt.Sprintf(" (%d similar suppressed)", r.suppressed)
		r.suppressed = 0
	}
	r.last = now
	log.Printf(format, args...)
}

// daemonPrinter prints the live PPE report each interval, then delegates
// to the wrapped policy.
type daemonPrinter struct {
	models   *core.Models
	inner    fxsim.Controller
	msr      *msr.Device
	diode    *hwmon.Sensor
	counters *daemon.Counters
	errLog   *rateLimited
	step     int
}

func (d *daemonPrinter) Decide(chip *fxsim.Chip, iv trace.Interval) {
	d.step++
	rep, err := d.models.Analyze(iv)
	if err != nil {
		// An unanalyzable interval (e.g. a mid-run counter glitch) is an
		// operational event, not a silent skip.
		d.counters.AnalyzeErrors.Add(1)
		d.errLog.logf("ppepd: interval t=%.1fs not analyzable: %v", iv.TimeS, err)
		return
	}
	if d.step%5 == 1 {
		// Demonstrate the device-level read path alongside the interval.
		pstate, _ := d.msr.Rdmsr(0, msr.PStateStatus)
		fmt.Printf("t=%5.1fs  diode=%.1f°C  P-state=P%d  measured=%.1fW\n",
			iv.TimeS, float64(d.diode.Temp1InputMilliC())/1000, pstate, iv.MeasPowerW)
		fmt.Printf("  %-6s %10s %10s %10s %12s\n", "state", "chip W", "idle W", "IPS", "J/interval")
		for i := len(rep.PerVF) - 1; i >= 0; i-- {
			p := rep.PerVF[i]
			marker := " "
			if p.VF == rep.MeasuredVF {
				marker = "*"
			}
			fmt.Printf(" %s%-6v %10.1f %10.1f %10.2e %12.2f\n",
				marker, p.VF, p.ChipW, p.IdleW, p.TotalIPS, p.IntervalEnergyJ)
		}
	}
	if d.inner != nil {
		d.inner.Decide(chip, iv)
	}
}

// ---- service mode (-serve) ----

// runServe runs the always-on daemon: workload bound endlessly, bounded
// history ring, device retries, optional fault injection, HTTP
// observability, and graceful shutdown on SIGINT/SIGTERM.
func runServe(chip *fxsim.Chip, models *core.Models, run workload.Run, policy, addr string, fl flags) int {
	// Service workloads run forever: stretch every instance and re-bind
	// on completion so the chip never idles out.
	for i := range run.Members {
		b := *run.Members[i].Bench
		b.Instructions = 1e15
		run.Members[i].Bench = &b
	}
	if _, err := chip.PlaceRun(run, fxsim.PlaceScatter, true); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	d, err := daemon.AttachOpts(chip, models, nil, daemon.Options{
		HistoryCap: fl.ring,
		Retry:      daemon.Retry{Attempts: 4, Backoff: 100 * time.Microsecond},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	d.Policy = servePolicy(policy, models, fl.capW, d.Counters())
	if fl.vf != 0 {
		if err := chip.SetAllPStates(arch.VFState(fl.vf)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if fl.faultMSR > 0 || fl.faultHwmon > 0 {
		d.InjectFaults(fl.faultMSR, fl.faultHwmon, 1)
		log.Printf("ppepd: fault injection on (msr=%.0f%%, hwmon=%.0f%%)",
			100*fl.faultMSR, 100*fl.faultHwmon)
	}
	if fl.pace > 0 {
		d.Throttle = func() { time.Sleep(fl.pace) }
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := serve.New(d, serve.Options{StaleAfter: staleAfter(fl.pace)})
	loopDone := make(chan error, 1)
	go func() { loopDone <- d.Run(ctx) }()
	log.Printf("ppepd: serving on %s (workload %s, policy %s, ring %d)", addr, run.Name, policy, fl.ring)

	err = srv.ListenAndServe(ctx, addr)
	stop() // a server failure must also stop the sampling loop
	if lerr := <-loopDone; lerr != nil && !isCanceled(lerr) {
		fmt.Fprintln(os.Stderr, "ppepd: sampling loop:", lerr)
		return 1
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppepd:", err)
		return 1
	}
	s := d.Counters().Snapshot()
	log.Printf("ppepd: clean shutdown after %d intervals (%d skipped, %d msr retries, %d hwmon retries)",
		s.Intervals, s.SkippedIntervals, s.MSRRetries, s.HwmonRetries)
	return 0
}

// staleAfter derives a /healthz staleness threshold from the pacing: a
// healthy loop completes an interval every pace (plus epsilon), so 25
// missed intervals is decisively stale. Unpaced loops use the default.
func staleAfter(pace time.Duration) time.Duration {
	if pace <= 0 {
		return 0 // serve.DefaultStaleAfter
	}
	return 25 * pace
}

// isCanceled reports whether the loop exited through context
// cancellation (the clean path).
func isCanceled(err error) bool {
	return err == context.Canceled || err == context.DeadlineExceeded
}

// servePolicy maps the -policy flag onto a daemon.Policy with rejection
// counting (surfaced at /metrics as ppep_policy_rejects_total).
func servePolicy(name string, models *core.Models, capW float64, counters *daemon.Counters) daemon.Policy {
	rl := newRateLimited(2 * time.Second)
	switch name {
	case "none":
		return nil
	case "energy":
		return daemon.PolicyFunc(func(ch *fxsim.Chip, iv trace.Interval, rep *core.Report) {
			applyAll(ch, dvfs.EnergyOptimal(rep), counters, rl)
		})
	case "edp":
		return daemon.PolicyFunc(func(ch *fxsim.Chip, iv trace.Interval, rep *core.Report) {
			applyAll(ch, dvfs.EDPOptimal(rep), counters, rl)
		})
	case "cap":
		capper := &dvfs.PPEPCapper{Models: models, Target: func(units.Seconds) units.Watts { return units.Watts(capW) }}
		return daemon.PolicyFunc(func(ch *fxsim.Chip, iv trace.Interval, rep *core.Report) {
			capper.Decide(ch, iv)
		})
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", name)
		os.Exit(2)
		return nil
	}
}
