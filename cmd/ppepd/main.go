// Command ppepd runs the PPEP daemon against a simulated chip, the way
// the paper's user-level daemon runs on real silicon: it trains the
// models once, binds a workload, then samples the hardware every 200 ms —
// counters through the MSR interface, temperature through hwmon — and
// prints live per-chip PPE projections for every VF state, applying an
// optional DVFS policy.
//
// Usage:
//
//	ppepd [-workload 433x2] [-vf 5] [-seconds 10] [-policy none|energy|edp|cap]
//	      [-cap 70] [-scale 0.05]
package main

import (
	"flag"
	"fmt"
	"os"

	"ppep/internal/arch"
	"ppep/internal/core"
	"ppep/internal/dvfs"
	"ppep/internal/experiments"
	"ppep/internal/fxsim"
	"ppep/internal/hwmon"
	"ppep/internal/msr"
	"ppep/internal/trace"
	"ppep/internal/workload"
)

func main() {
	var (
		wl      = flag.String("workload", "433x2", "workload: SPEC number with instance count (429x1, 433x4), 'mix' for the capping mix")
		vf      = flag.Int("vf", 5, "initial VF state (1..5)")
		seconds = flag.Float64("seconds", 10, "run length in simulated seconds")
		policy  = flag.String("policy", "none", "DVFS policy: none, energy, edp, cap")
		capW    = flag.Float64("cap", 70, "power budget for -policy cap")
		scale   = flag.Float64("scale", 0.05, "training campaign scale")
		load    = flag.String("load", "", "load model coefficients from a ppep-train -save file instead of training")
	)
	flag.Parse()

	var models *core.Models
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		models, err = core.LoadModels(f)
		_ = f.Close() // read-only handle; close errors carry no data
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("loaded models from %s: alpha=%.2f\n\n", *load, models.Dyn.Alpha)
	} else {
		fmt.Println("training PPEP models (one-time offline effort)...")
		camp, err := experiments.NewFXCampaign(experiments.Options{Scale: *scale, MaxRunsPerSuite: 6})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		models = camp.Models
		fmt.Printf("trained: alpha=%.2f\n\n", models.Dyn.Alpha)
	}

	run, err := workload.ParseRunSpec(*wl)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := fxsim.DefaultFX8320Config()
	cfg.PowerGating = true
	if *policy == "cap" {
		cfg.PerCUPlanes = true
	}
	chip := fxsim.New(cfg)
	chip.SetTempK(318)

	// Device-level access, as on the real platform.
	msrDev := msr.Open(chip)
	diode := hwmon.Open(chip)

	var ctl fxsim.Controller
	switch *policy {
	case "none":
	case "energy":
		ctl = policyFunc(func(ch *fxsim.Chip, iv trace.Interval) {
			if rep, err := models.Analyze(iv); err == nil {
				// a rejected P-state request leaves the previous state; retried next tick
				_ = ch.SetAllPStates(dvfs.EnergyOptimal(rep))
			}
		})
	case "edp":
		ctl = policyFunc(func(ch *fxsim.Chip, iv trace.Interval) {
			if rep, err := models.Analyze(iv); err == nil {
				// a rejected P-state request leaves the previous state; retried next tick
				_ = ch.SetAllPStates(dvfs.EDPOptimal(rep))
			}
		})
	case "cap":
		ctl = &dvfs.PPEPCapper{Models: models, Target: func(float64) float64 { return *capW }}
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policy)
		os.Exit(2)
	}

	printer := &daemonPrinter{models: models, inner: ctl, msr: msrDev, diode: diode}
	_, err = chip.Collect(run, fxsim.RunOpts{
		VF: arch.VFState(*vf), MaxTimeS: *seconds, Restart: true,
		Placement: fxsim.PlaceScatter, WarmTempK: 318, Controller: printer,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// policyFunc adapts a closure into a Controller.
type policyFunc func(*fxsim.Chip, trace.Interval)

func (f policyFunc) Decide(c *fxsim.Chip, iv trace.Interval) { f(c, iv) }

// daemonPrinter prints the live PPE report each interval, then delegates
// to the wrapped policy.
type daemonPrinter struct {
	models *core.Models
	inner  fxsim.Controller
	msr    *msr.Device
	diode  *hwmon.Sensor
	step   int
}

func (d *daemonPrinter) Decide(chip *fxsim.Chip, iv trace.Interval) {
	d.step++
	rep, err := d.models.Analyze(iv)
	if err != nil {
		return
	}
	if d.step%5 == 1 {
		// Demonstrate the device-level read path alongside the interval.
		pstate, _ := d.msr.Rdmsr(0, msr.PStateStatus)
		fmt.Printf("t=%5.1fs  diode=%.1f°C  P-state=P%d  measured=%.1fW\n",
			iv.TimeS, float64(d.diode.Temp1InputMilliC())/1000, pstate, iv.MeasPowerW)
		fmt.Printf("  %-6s %10s %10s %10s %12s\n", "state", "chip W", "idle W", "IPS", "J/interval")
		for i := len(rep.PerVF) - 1; i >= 0; i-- {
			p := rep.PerVF[i]
			marker := " "
			if p.VF == rep.MeasuredVF {
				marker = "*"
			}
			fmt.Printf(" %s%-6v %10.1f %10.1f %10.2e %12.2f\n",
				marker, p.VF, p.ChipW, p.IdleW, p.TotalIPS, p.IntervalEnergyJ)
		}
	}
	if d.inner != nil {
		d.inner.Decide(chip, iv)
	}
}
