// Package daemon is the user-level PPEP daemon as the paper deploys it
// (Section IV-E): a sampler that programs and reads the performance
// counters through the MSR interface, rotates the two six-event groups
// every 20 ms to cover all twelve Table I events, reads the thermal diode
// through hwmon, and assembles 200 ms measurement intervals — then feeds
// them to the PPEP models and an optional DVFS policy.
//
// Unlike the simulator's built-in interval collection (which the training
// campaign uses), everything here goes through the register-level device
// emulation, exercising the same code path a real deployment would.
//
// For long-running service deployments (internal/serve, `ppepd -serve`),
// every register and diode access carries a bounded retry-with-backoff
// budget (Retry): transient faults — injected in the emulation via
// msr.Device.InjectFaults / hwmon.Sensor.InjectFaults, real EIO on
// hardware — are retried and counted instead of killing the loop.
package daemon

import (
	"fmt"
	"time"

	"ppep/internal/arch"
	"ppep/internal/msr"
	"ppep/internal/pmc"
	"ppep/internal/trace"
)

// MSR is the register access surface the sampler needs (implemented by
// internal/msr.Device).
type MSR interface {
	Rdmsr(core int, addr uint32) (uint64, error)
	Wrmsr(core int, addr uint32, val uint64) error
}

// Thermometer reads the socket diode (implemented by internal/hwmon).
type Thermometer interface {
	TempK() float64
}

// Retry is a bounded retry-with-backoff budget for device accesses.
type Retry struct {
	// Attempts is the total number of tries per register operation
	// (<= 1 means a single attempt, no retry).
	Attempts int
	// Backoff is the sleep before the first retry; it doubles on every
	// further retry of the same operation. Zero means retry immediately.
	Backoff time.Duration
	// Sleep replaces time.Sleep (tests inject a recorder; nil uses
	// time.Sleep). Never called when Backoff is zero.
	Sleep func(time.Duration)
}

// attempts returns the effective attempt budget (at least one).
func (r Retry) attempts() int {
	if r.Attempts < 1 {
		return 1
	}
	return r.Attempts
}

// sleep blocks for the attempt-th backoff step (attempt counts from 1).
func (r Retry) sleep(attempt int) {
	if r.Backoff <= 0 {
		return
	}
	d := r.Backoff << (attempt - 1)
	if r.Sleep != nil {
		r.Sleep(d)
		return
	}
	time.Sleep(d)
}

// Sampler multiplexes the twelve Table I events onto the six hardware
// counters of every core: group 0 holds E1–E6, group 1 holds E7–E12.
type Sampler struct {
	dev      MSR
	numCores int
	tbl      arch.VFTable

	retry    Retry
	counters *Counters

	groups [2][pmc.CountersPerCore]arch.EventID
	active int
	// counts accumulates raw per-core counts per event this interval.
	counts []arch.EventVec
	// liveMS tracks how long each group has counted this interval.
	liveMS [2]float64
}

// NewSampler programs the initial counter group on every core and
// returns the ready sampler.
func NewSampler(dev MSR, numCores int, tbl arch.VFTable) (*Sampler, error) {
	s := &Sampler{
		dev:      dev,
		numCores: numCores,
		tbl:      tbl,
		counts:   make([]arch.EventVec, numCores),
	}
	for i := 0; i < pmc.CountersPerCore; i++ {
		s.groups[0][i] = arch.EventID(i + 1)
		s.groups[1][i] = arch.EventID(i + 1 + pmc.CountersPerCore)
	}
	if err := s.program(0); err != nil {
		return nil, err
	}
	return s, nil
}

// SetRetry installs the retry budget and the counters retried/failed
// operations are reported to (counters may be nil).
func (s *Sampler) SetRetry(r Retry, c *Counters) {
	s.retry = r
	s.counters = c
}

// count bumps a counter if a Counters sink is installed.
func (s *Sampler) count(f func(*Counters)) {
	if s.counters != nil {
		f(s.counters)
	}
}

// rdmsr reads a register with the retry budget.
func (s *Sampler) rdmsr(core int, addr uint32) (uint64, error) {
	v, err := s.dev.Rdmsr(core, addr)
	for a := 1; err != nil && a < s.retry.attempts(); a++ {
		s.count(func(c *Counters) { c.MSRRetries.Add(1) })
		s.retry.sleep(a)
		v, err = s.dev.Rdmsr(core, addr)
	}
	if err != nil {
		s.count(func(c *Counters) { c.MSRFailures.Add(1) })
	}
	return v, err
}

// wrmsr writes a register with the retry budget.
func (s *Sampler) wrmsr(core int, addr uint32, val uint64) error {
	err := s.dev.Wrmsr(core, addr, val)
	for a := 1; err != nil && a < s.retry.attempts(); a++ {
		s.count(func(c *Counters) { c.MSRRetries.Add(1) })
		s.retry.sleep(a)
		err = s.dev.Wrmsr(core, addr, val)
	}
	if err != nil {
		s.count(func(c *Counters) { c.MSRFailures.Add(1) })
	}
	return err
}

// program writes the PERF_CTL registers of every core for a group and
// zeroes the counters.
func (s *Sampler) program(group int) error {
	for core := 0; core < s.numCores; core++ {
		for slot, ev := range s.groups[group] {
			ctl := msr.EncodeCtl(arch.Info(ev).Code)
			if err := s.wrmsr(core, msr.PerfCtl(slot), ctl); err != nil {
				return fmt.Errorf("daemon: program core %d slot %d: %w", core, slot, err)
			}
			if err := s.wrmsr(core, msr.PerfCtr(slot), 0); err != nil {
				return fmt.Errorf("daemon: zero core %d slot %d: %w", core, slot, err)
			}
		}
	}
	s.active = group
	return nil
}

// Reset abandons the current interval's accumulation and re-programs
// group 0 from scratch — the recovery path after a mid-interval device
// failure in service mode.
func (s *Sampler) Reset() error {
	for i := range s.counts {
		s.counts[i] = arch.EventVec{}
	}
	s.liveMS = [2]float64{}
	return s.program(0)
}

// OnWindow closes one 20 ms multiplexing window: it reads and accumulates
// the active group's counters on every core, then rotates to the other
// group. windowMS is the wall-clock length the group was live.
func (s *Sampler) OnWindow(windowMS float64) error {
	for core := 0; core < s.numCores; core++ {
		for slot, ev := range s.groups[s.active] {
			v, err := s.rdmsr(core, msr.PerfCtr(slot))
			if err != nil {
				return fmt.Errorf("daemon: read core %d slot %d: %w", core, slot, err)
			}
			s.counts[core][int(ev)-1] += float64(v)
		}
	}
	s.liveMS[s.active] += windowMS
	return s.program(1 - s.active)
}

// EndInterval assembles the 200 ms measurement interval: per-core counts
// extrapolated by each group's live share, the VF state read from the
// P-state status MSR, and the given diode temperature. It resets the
// accumulation for the next interval. A group that never completed a
// window this interval (liveMS == 0) contributes zero counts rather than
// a division by zero — its events simply were not observed.
func (s *Sampler) EndInterval(timeS, intervalMS, tempK float64) (trace.Interval, error) {
	iv := trace.Interval{
		TimeS: timeS,
		DurS:  intervalMS / 1000,
		TempK: tempK,
		// Pre-sized so the per-core loop appends without growth
		// reallocations; the interval owns these slices.
		Counters:  make([]arch.EventVec, 0, s.numCores),
		PerCoreVF: make([]arch.VFState, 0, s.numCores),
		Busy:      make([]bool, 0, s.numCores),
	}
	for core := 0; core < s.numCores; core++ {
		var ev arch.EventVec
		for g := 0; g < 2; g++ {
			live := s.liveMS[g]
			for _, id := range s.groups[g] {
				if live > 0 {
					ev[int(id)-1] = s.counts[core][int(id)-1] * intervalMS / live
				}
			}
		}
		pstate, err := s.rdmsr(core, msr.PStateStatus)
		if err != nil {
			return iv, fmt.Errorf("daemon: P-state read core %d: %w", core, err)
		}
		vf := arch.VFState(int(s.tbl.Top()) - int(pstate))
		iv.Counters = append(iv.Counters, ev)
		iv.PerCoreVF = append(iv.PerCoreVF, vf)
		iv.Busy = append(iv.Busy, ev.Get(arch.RetiredInstructions) > 0)
		s.counts[core] = arch.EventVec{}
	}
	s.liveMS = [2]float64{}
	return iv, nil
}
