package daemon

// Ring is a capacity-bounded FIFO over interval records. A long-running
// daemon pushes one record per 200 ms decision interval; once the ring is
// full the oldest record is overwritten, so memory stays bounded by the
// capacity no matter how long the service runs. With keepAll set the ring
// degenerates into an append-only slice — the batch behaviour finite
// experiments (RunIntervals) rely on.
type Ring[T any] struct {
	buf     []T
	head    int // index of the oldest element once the ring is full
	keepAll bool
}

// NewRing returns a ring bounded at cap elements. cap <= 0 keeps
// everything (batch mode).
func NewRing[T any](capacity int) *Ring[T] {
	if capacity <= 0 {
		return &Ring[T]{keepAll: true}
	}
	return &Ring[T]{buf: make([]T, 0, capacity)}
}

// Push appends a record, evicting the oldest when the ring is full.
func (r *Ring[T]) Push(v T) {
	if r.keepAll {
		r.buf = append(r.buf, v)
		return
	}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, v)
		return
	}
	r.buf[r.head] = v
	r.head = (r.head + 1) % len(r.buf)
}

// Len returns the number of live records.
func (r *Ring[T]) Len() int { return len(r.buf) }

// At returns the i-th record, oldest first (0 <= i < Len()).
// keepAll rings never rotate, so head stays 0 and this is a plain index.
func (r *Ring[T]) At(i int) T { return r.buf[(r.head+i)%len(r.buf)] }

// Last returns the newest record and whether one exists.
func (r *Ring[T]) Last() (T, bool) {
	var zero T
	if len(r.buf) == 0 {
		return zero, false
	}
	return r.At(len(r.buf) - 1), true
}

// Snapshot copies out the live records, oldest first.
func (r *Ring[T]) Snapshot() []T {
	out := make([]T, len(r.buf))
	for i := range out {
		out[i] = r.At(i)
	}
	return out
}

// Cap returns the bound (0 = unbounded).
func (r *Ring[T]) Cap() int {
	if r.keepAll {
		return 0
	}
	return cap(r.buf)
}
