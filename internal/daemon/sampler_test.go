package daemon

import (
	"errors"
	"math"
	"testing"
	"time"

	"ppep/internal/arch"
	"ppep/internal/msr"
)

// fakeMSR is a scriptable register device: every counter read returns
// ctrVal, the P-state status reads pstate, and the next failNext
// operations fail with a transient error.
type fakeMSR struct {
	ctrVal   uint64
	pstate   uint64
	failNext int
	ops      int
	failures int
}

var errFakeTransient = errors.New("fake transient fault")

func (f *fakeMSR) gate() error {
	f.ops++
	if f.failNext > 0 {
		f.failNext--
		f.failures++
		return errFakeTransient
	}
	return nil
}

func (f *fakeMSR) Rdmsr(core int, addr uint32) (uint64, error) {
	if err := f.gate(); err != nil {
		return 0, err
	}
	if addr == msr.PStateStatus {
		return f.pstate, nil
	}
	return f.ctrVal, nil
}

func (f *fakeMSR) Wrmsr(core int, addr uint32, val uint64) error {
	return f.gate()
}

func newTestSampler(t *testing.T, dev MSR, cores int) *Sampler {
	t.Helper()
	s, err := NewSampler(dev, cores, arch.FX8320VFTable)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSamplerPartialInterval covers a group with liveMS == 0: when the
// interval closes after only group 0 completed a window, group 1's
// events must come out zero (unobserved) — not NaN or Inf from a
// division by zero live time.
func TestSamplerPartialInterval(t *testing.T) {
	dev := &fakeMSR{ctrVal: 1000}
	s := newTestSampler(t, dev, 2)
	if err := s.OnWindow(20); err != nil {
		t.Fatal(err)
	}
	iv, err := s.EndInterval(1.0, 200, 318)
	if err != nil {
		t.Fatal(err)
	}
	for core := 0; core < 2; core++ {
		for _, id := range s.groups[0] {
			got := iv.Counters[core].Get(id)
			want := 1000.0 * 200 / 20
			if got != want {
				t.Errorf("core %d group-0 event E%d = %v, want %v", core, id, got, want)
			}
		}
		for _, id := range s.groups[1] {
			got := iv.Counters[core].Get(id)
			if got != 0 || math.IsNaN(got) || math.IsInf(got, 0) {
				t.Errorf("core %d unobserved group-1 event E%d = %v, want exactly 0", core, id, got)
			}
		}
		// RetiredInstructions is E11 (group 1): with that group never
		// sampled, the core must read as idle rather than garbage-busy.
		if iv.Busy[core] {
			t.Errorf("core %d busy from an unobserved instruction counter", core)
		}
	}
}

// TestSamplerUnequalLiveTime pins the extrapolation arithmetic when the
// two groups covered different shares of the interval: each group's raw
// counts scale by intervalMS over its own live time.
func TestSamplerUnequalLiveTime(t *testing.T) {
	dev := &fakeMSR{ctrVal: 300}
	s := newTestSampler(t, dev, 1)
	if err := s.OnWindow(30); err != nil { // group 0 live for 30 ms
		t.Fatal(err)
	}
	if err := s.OnWindow(10); err != nil { // group 1 live for 10 ms
		t.Fatal(err)
	}
	iv, err := s.EndInterval(1.0, 200, 318)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range s.groups[0] {
		if got, want := iv.Counters[0].Get(id), 300.0*200/30; math.Abs(got-want) > 1e-9 {
			t.Errorf("group-0 event E%d = %v, want %v", id, got, want)
		}
	}
	for _, id := range s.groups[1] {
		if got, want := iv.Counters[0].Get(id), 300.0*200/10; math.Abs(got-want) > 1e-9 {
			t.Errorf("group-1 event E%d = %v, want %v", id, got, want)
		}
	}
}

// TestSamplerRetryBackoff covers transient read faults mid-window: the
// sampler must retry with doubling backoff, count the retries, and
// succeed without surfacing an error while the budget lasts.
func TestSamplerRetryBackoff(t *testing.T) {
	dev := &fakeMSR{ctrVal: 50}
	s := newTestSampler(t, dev, 1)
	var counters Counters
	var sleeps []time.Duration
	s.SetRetry(Retry{
		Attempts: 4,
		Backoff:  time.Millisecond,
		Sleep:    func(d time.Duration) { sleeps = append(sleeps, d) },
	}, &counters)

	dev.failNext = 2 // first counter read of the window fails twice
	if err := s.OnWindow(20); err != nil {
		t.Fatalf("window with 2 transient faults and 4 attempts failed: %v", err)
	}
	if got := counters.MSRRetries.Load(); got != 2 {
		t.Errorf("MSRRetries = %d, want 2", got)
	}
	if got := counters.MSRFailures.Load(); got != 0 {
		t.Errorf("MSRFailures = %d, want 0", got)
	}
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond}
	if len(sleeps) != len(want) || sleeps[0] != want[0] || sleeps[1] != want[1] {
		t.Errorf("backoff sleeps %v, want %v", sleeps, want)
	}
}

// TestSamplerRetryExhaustion covers a fault burst longer than the retry
// budget: the operation fails, the failure is counted, and Reset
// restores a programmable sampler.
func TestSamplerRetryExhaustion(t *testing.T) {
	dev := &fakeMSR{ctrVal: 50}
	s := newTestSampler(t, dev, 1)
	var counters Counters
	s.SetRetry(Retry{Attempts: 3}, &counters)

	dev.failNext = 10 // outlasts 3 attempts
	if err := s.OnWindow(20); err == nil {
		t.Fatal("window with exhausted retry budget did not fail")
	}
	if got := counters.MSRFailures.Load(); got == 0 {
		t.Error("exhausted retries not counted as a failure")
	}
	if got := counters.MSRRetries.Load(); got != 2 {
		t.Errorf("MSRRetries = %d, want 2 (attempts-1)", got)
	}

	// The fault burst has passed; a reset must leave a clean sampler.
	dev.failNext = 0
	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}
	if s.active != 0 {
		t.Error("Reset did not reprogram group 0")
	}
	if err := s.OnWindow(20); err != nil {
		t.Fatal(err)
	}
	iv, err := s.EndInterval(1.0, 200, 318)
	if err != nil {
		t.Fatal(err)
	}
	// Only the post-reset window may contribute counts.
	for _, id := range s.groups[0] {
		if got, want := iv.Counters[0].Get(id), 50.0*200/20; math.Abs(got-want) > 1e-9 {
			t.Errorf("post-reset event E%d = %v, want %v", id, got, want)
		}
	}
}

// TestRetryDefaults pins the zero-value Retry contract: one attempt, no
// sleeping.
func TestRetryDefaults(t *testing.T) {
	var r Retry
	if r.attempts() != 1 {
		t.Errorf("zero Retry attempts() = %d, want 1", r.attempts())
	}
	r.sleep(1) // must not panic or call time.Sleep for zero backoff
}
