package daemon

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestDaemonConcurrentReaders stresses every read-side API while Run
// mutates the ring and counters, pinning — under -race — that Counters
// snapshots, ring reads, and engine-stat reads are torn-read-free. The
// small HistoryCap keeps the ring evicting while readers snapshot it,
// and the Seq contiguity check catches a renumbering or half-pushed
// record that the race detector alone would miss.
func TestDaemonConcurrentReaders(t *testing.T) {
	d, err := AttachOpts(busyChip(t, false), models(t), nil, Options{HistoryCap: 16})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- d.Run(ctx) }()

	const (
		readers = 4
		iters   = 150
	)
	var wg sync.WaitGroup
	wg.Add(readers)
	for r := 0; r < readers; r++ {
		go func() {
			defer wg.Done()
			var lastSeq, lastIntervals uint64
			for i := 0; i < iters; i++ {
				snap := d.Counters().Snapshot()
				if snap.Intervals < lastIntervals {
					t.Errorf("Intervals went backwards: %d after %d", snap.Intervals, lastIntervals)
					return
				}
				lastIntervals = snap.Intervals

				recs := d.Records()
				for j := 1; j < len(recs); j++ {
					if recs[j].Seq != recs[j-1].Seq+1 {
						t.Errorf("ring snapshot not contiguous: seq %d follows %d", recs[j].Seq, recs[j-1].Seq)
						return
					}
				}
				if rec, ok := d.Latest(); ok {
					if rec.Seq < lastSeq {
						t.Errorf("Latest seq went backwards: %d after %d", rec.Seq, lastSeq)
						return
					}
					lastSeq = rec.Seq
					if rec.Report == nil {
						t.Error("Latest returned a record with nil report")
						return
					}
				}
				_ = d.Intervals()
				_ = d.Reports()
				_ = d.EngineStats()
				_ = d.HistoryCap()
			}
		}()
	}
	wg.Wait()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("loop did not stop after cancellation")
	}
}
