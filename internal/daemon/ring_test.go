package daemon

import "testing"

func TestRingKeepAll(t *testing.T) {
	r := NewRing[int](0)
	for i := 1; i <= 100; i++ {
		r.Push(i)
	}
	if r.Len() != 100 || r.Cap() != 0 {
		t.Fatalf("len %d cap %d, want 100 and unbounded", r.Len(), r.Cap())
	}
	if r.At(0) != 1 || r.At(99) != 100 {
		t.Errorf("order broken: first %d last %d", r.At(0), r.At(99))
	}
}

func TestRingBounded(t *testing.T) {
	r := NewRing[int](4)
	if _, ok := r.Last(); ok {
		t.Error("empty ring reported a last element")
	}
	for i := 1; i <= 3; i++ {
		r.Push(i)
	}
	if r.Len() != 3 {
		t.Fatalf("len %d before wrap, want 3", r.Len())
	}
	for i := 4; i <= 10; i++ {
		r.Push(i)
	}
	if r.Len() != 4 || r.Cap() != 4 {
		t.Fatalf("len %d cap %d after wrap, want 4/4", r.Len(), r.Cap())
	}
	want := []int{7, 8, 9, 10}
	for i, w := range want {
		if r.At(i) != w {
			t.Errorf("At(%d) = %d, want %d", i, r.At(i), w)
		}
	}
	if last, ok := r.Last(); !ok || last != 10 {
		t.Errorf("Last = %d/%v, want 10/true", last, ok)
	}
	snap := r.Snapshot()
	r.Push(11)
	if snap[0] != 7 || len(snap) != 4 {
		t.Errorf("snapshot not isolated from later pushes: %v", snap)
	}
}
