package daemon

import "sync/atomic"

// Counters are the daemon's operational health counters. A long-running
// service must surface transient device faults, dropped analyses, and
// rejected policy decisions as observable counts instead of either
// aborting the loop or silently discarding them; internal/serve renders
// every field at /metrics. All fields are atomics: the sampling loop
// writes them while HTTP handlers read them.
type Counters struct {
	// Intervals counts completed (sampled + analyzed) decision intervals.
	Intervals atomic.Uint64
	// SkippedIntervals counts intervals abandoned after an unrecoverable
	// device error (retries exhausted); the loop resets the sampler and
	// keeps running.
	SkippedIntervals atomic.Uint64
	// AnalyzeErrors counts intervals the PPEP pipeline rejected.
	AnalyzeErrors atomic.Uint64
	// MSRRetries / MSRFailures count transient MSR read/write faults that
	// were retried, and register operations that failed even after the
	// bounded retry budget.
	MSRRetries  atomic.Uint64
	MSRFailures atomic.Uint64
	// HwmonRetries / HwmonFailures are the same for the thermal diode; a
	// failed diode read falls back to the last good temperature.
	HwmonRetries  atomic.Uint64
	HwmonFailures atomic.Uint64
	// PolicyRejects counts DVFS policy decisions the chip rejected
	// (e.g. a P-state request outside the VF table).
	PolicyRejects atomic.Uint64
}

// CounterSnapshot is a plain-value copy of Counters for rendering.
type CounterSnapshot struct {
	Intervals        uint64 `json:"intervals"`
	SkippedIntervals uint64 `json:"skipped_intervals"`
	AnalyzeErrors    uint64 `json:"analyze_errors"`
	MSRRetries       uint64 `json:"msr_retries"`
	MSRFailures      uint64 `json:"msr_failures"`
	HwmonRetries     uint64 `json:"hwmon_retries"`
	HwmonFailures    uint64 `json:"hwmon_failures"`
	PolicyRejects    uint64 `json:"policy_rejects"`
}

// Snapshot copies the current counter values.
func (c *Counters) Snapshot() CounterSnapshot {
	return CounterSnapshot{
		Intervals:        c.Intervals.Load(),
		SkippedIntervals: c.SkippedIntervals.Load(),
		AnalyzeErrors:    c.AnalyzeErrors.Load(),
		MSRRetries:       c.MSRRetries.Load(),
		MSRFailures:      c.MSRFailures.Load(),
		HwmonRetries:     c.HwmonRetries.Load(),
		HwmonFailures:    c.HwmonFailures.Load(),
		PolicyRejects:    c.PolicyRejects.Load(),
	}
}
