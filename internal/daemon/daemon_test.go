package daemon

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"ppep/internal/arch"
	"ppep/internal/core"
	"ppep/internal/dvfs"
	"ppep/internal/fxsim"
	"ppep/internal/stats"
	"ppep/internal/trace"
	"ppep/internal/units"
	"ppep/internal/workload"
)

var (
	trainOnce sync.Once
	trained   *core.Models
	trainErr  error
)

func models(t *testing.T) *core.Models {
	t.Helper()
	trainOnce.Do(func() {
		ts := core.TrainingSet{IdleTraces: map[arch.VFState]*trace.Trace{}}
		for _, vf := range arch.FX8320VFTable.States() {
			chip := fxsim.New(fxsim.DefaultFX8320Config())
			tr, err := chip.HeatCool(vf, 40, 80)
			if err != nil {
				trainErr = err
				return
			}
			ts.IdleTraces[vf] = tr
		}
		for _, num := range []string{"429", "458", "433", "416"} {
			b := *workload.SPECByNumber(num)
			b.Instructions = 8e9
			for _, vf := range arch.FX8320VFTable.States() {
				chip := fxsim.New(fxsim.DefaultFX8320Config())
				r := workload.Run{Name: num, Suite: "SPE",
					Members: []workload.Member{{Bench: &b, Threads: 1}}}
				tr, err := chip.Collect(r, fxsim.RunOpts{VF: vf, WarmTempK: 315})
				if err != nil {
					trainErr = err
					return
				}
				ts.Runs = append(ts.Runs, core.RunTrace{Name: num, Suite: "SPE", VF: vf, Trace: tr})
			}
		}
		trained, trainErr = core.Train(ts, arch.FX8320VFTable)
	})
	if trainErr != nil {
		t.Fatal(trainErr)
	}
	return trained
}

// busyChip builds a chip running milc×2 endlessly.
func busyChip(t *testing.T, perCUPlanes bool) *fxsim.Chip {
	t.Helper()
	cfg := fxsim.DefaultFX8320Config()
	cfg.PerCUPlanes = perCUPlanes
	chip := fxsim.New(cfg)
	chip.SetTempK(318)
	run := workload.MultiInstance("433", 2)
	for i := range run.Members {
		b := *run.Members[i].Bench
		b.Instructions = 1e12 // effectively endless
		run.Members[i].Bench = &b
	}
	if _, err := chip.PlaceRun(run, fxsim.PlaceScatter, true); err != nil {
		t.Fatal(err)
	}
	return chip
}

// attach builds a chip running milc×2 with the daemon on it.
func attach(t *testing.T, policy Policy) (*Daemon, *fxsim.Chip) {
	t.Helper()
	chip := busyChip(t, policy != nil)
	d, err := Attach(chip, models(t), policy)
	if err != nil {
		t.Fatal(err)
	}
	return d, chip
}

func TestDaemonSamplesThroughDevices(t *testing.T) {
	d, _ := attach(t, nil)
	if err := d.RunIntervals(10); err != nil {
		t.Fatal(err)
	}
	if len(d.Intervals()) != 10 || len(d.Reports()) != 10 {
		t.Fatalf("intervals %d reports %d", len(d.Intervals()), len(d.Reports()))
	}
	for _, iv := range d.Intervals() {
		// Cores 0 and 2 run the instances; the rest are idle.
		if !iv.Busy[0] || !iv.Busy[2] {
			t.Error("bound cores not seen busy through the MSR path")
		}
		if iv.Busy[1] || iv.Busy[7] {
			t.Error("idle cores seen busy")
		}
		if iv.VF() != arch.VF5 {
			t.Errorf("VF read %v through P-state MSR", iv.VF())
		}
		if iv.TempK < 300 || iv.TempK > 360 {
			t.Errorf("diode temp %v", iv.TempK)
		}
		// All twelve events present on a busy core.
		for e := 0; e < arch.NumEvents; e++ {
			if iv.Counters[0][e] <= 0 {
				t.Errorf("event E%d missing from device-sampled counters", e+1)
			}
		}
	}
}

func TestDaemonEstimatesTrackMeasuredPower(t *testing.T) {
	d, _ := attach(t, nil)
	if err := d.RunIntervals(10); err != nil {
		t.Fatal(err)
	}
	var errs []float64
	ivs := d.Intervals()
	for i, rep := range d.Reports() {
		errs = append(errs, stats.AbsPctErr(float64(rep.Current().ChipW), ivs[i].MeasPowerW))
	}
	s := stats.SummarizeAbsErrors(errs)
	if s.Mean > 0.15 {
		t.Errorf("device-path estimation error %.1f%%, want <15%%", 100*s.Mean)
	}
}

func TestDaemonMultiplexedCountsMatchOracle(t *testing.T) {
	// Device-sampled, extrapolated counts must agree with the chip's own
	// mux bookkeeping within a few percent for a steady workload.
	d, chip := attach(t, nil)
	_ = chip
	if err := d.RunIntervals(5); err != nil {
		t.Fatal(err)
	}
	iv := d.Intervals()[3]
	inst := iv.Counters[0].Get(arch.RetiredInstructions)
	cyc := iv.Counters[0].Get(arch.CPUClocksNotHalted)
	if inst <= 0 || cyc <= 0 {
		t.Fatal("no activity sampled")
	}
	cpi := cyc / inst
	if cpi < 0.5 || cpi > 6 {
		t.Errorf("device-sampled CPI %v implausible", cpi)
	}
	// Instruction rate should be in the right ballpark for milc at VF5:
	// ~1e9 inst/s per instance.
	rate := inst / iv.DurS
	if rate < 3e8 || rate > 4e9 {
		t.Errorf("instruction rate %v implausible", rate)
	}
}

func TestDaemonPolicyDrivesVF(t *testing.T) {
	policy := PolicyFunc(func(chip *fxsim.Chip, iv trace.Interval, rep *core.Report) {
		_ = chip.SetAllPStates(dvfs.EnergyOptimal(rep))
	})
	d, chip := attach(t, policy)
	if err := d.RunIntervals(6); err != nil {
		t.Fatal(err)
	}
	// The energy policy must have moved the chip off the top state.
	if chip.PState(0) == arch.VF5 {
		t.Error("policy never changed the VF state")
	}
	// And later intervals observe the new state through the MSR path.
	ivs := d.Intervals()
	last := ivs[len(ivs)-1]
	if last.VF() == arch.VF5 {
		t.Error("device-sampled VF did not track the policy")
	}
}

func TestDaemonCappingPolicy(t *testing.T) {
	capper := &dvfs.PPEPCapper{Models: models(t), Target: func(units.Seconds) units.Watts { return 40 }}
	policy := PolicyFunc(func(chip *fxsim.Chip, iv trace.Interval, rep *core.Report) {
		capper.Decide(chip, iv)
	})
	d, _ := attach(t, policy)
	if err := d.RunIntervals(8); err != nil {
		t.Fatal(err)
	}
	// After settling, measured power must respect the 40 W budget.
	for _, iv := range d.Intervals()[2:] {
		if iv.MeasPowerW > 44 {
			t.Errorf("t=%.1f: %0.1fW over the 40W cap", iv.TimeS, iv.MeasPowerW)
		}
	}
}

func TestDaemonRequiresModels(t *testing.T) {
	chip := fxsim.New(fxsim.DefaultFX8320Config())
	d, err := Attach(chip, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RunIntervals(1); err == nil {
		t.Error("daemon without models accepted")
	}
}

// TestDaemonHistoryRing pins the service-mode memory bound: with a
// HistoryCap the daemon retains exactly the newest cap records while
// sequence numbers keep counting every completed interval.
func TestDaemonHistoryRing(t *testing.T) {
	chip := busyChip(t, false)
	d, err := AttachOpts(chip, models(t), nil, Options{HistoryCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RunIntervals(10); err != nil {
		t.Fatal(err)
	}
	if got := d.Counters().Intervals.Load(); got != 10 {
		t.Errorf("interval counter %d, want 10", got)
	}
	recs := d.Records()
	if len(recs) != 4 || len(d.Intervals()) != 4 || len(d.Reports()) != 4 {
		t.Fatalf("retained %d records, want 4", len(recs))
	}
	for i, rec := range recs {
		if want := uint64(7 + i); rec.Seq != want {
			t.Errorf("record %d seq %d, want %d (oldest evicted, numbering preserved)", i, rec.Seq, want)
		}
		if rec.Report == nil || len(rec.Interval.Counters) == 0 {
			t.Errorf("record %d incomplete", i)
		}
	}
	if last, ok := d.Latest(); !ok || last.Seq != 10 {
		t.Errorf("Latest seq %d/%v, want 10/true", last.Seq, ok)
	}
}

// TestDaemonRunCancel covers the context-cancellable service loop: Run
// keeps producing intervals until cancellation and then returns the
// context error promptly.
func TestDaemonRunCancel(t *testing.T) {
	chip := busyChip(t, false)
	d, err := AttachOpts(chip, models(t), nil, Options{HistoryCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	d.OnInterval = func(rec Record) {
		if rec.Seq >= 5 {
			cancel()
		}
	}
	done := make(chan error, 1)
	go func() { done <- d.Run(ctx) }()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run did not stop after cancellation")
	}
	if got := d.Counters().Intervals.Load(); got < 5 {
		t.Errorf("only %d intervals before cancel, want >= 5", got)
	}
}

// TestDaemonSurvivesInjectedFaults is the long-running hardening
// contract: with 10–15% transient fault rates on both device paths and a
// bounded retry budget, the loop must keep completing intervals — faults
// surface as retry/failure/skip counters, never as a crash or abort.
func TestDaemonSurvivesInjectedFaults(t *testing.T) {
	chip := busyChip(t, false)
	d, err := AttachOpts(chip, models(t), nil, Options{
		HistoryCap: 8,
		Retry:      Retry{Attempts: 4, Sleep: func(time.Duration) {}},
	})
	if err != nil {
		t.Fatal(err)
	}
	d.InjectFaults(0.12, 0.15, 7)

	ctx, cancel := context.WithCancel(context.Background())
	d.OnInterval = func(rec Record) {
		if d.Counters().Intervals.Load() >= 25 {
			cancel()
		}
	}
	done := make(chan error, 1)
	go func() { done <- d.Run(ctx) }()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run under faults returned %v, want context.Canceled", err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("faulted loop wedged")
	}

	s := d.Counters().Snapshot()
	if s.Intervals < 25 {
		t.Errorf("completed %d intervals under faults, want >= 25", s.Intervals)
	}
	if s.MSRRetries == 0 {
		t.Error("12%% MSR fault rate produced no retries")
	}
	if s.HwmonRetries == 0 && s.HwmonFailures == 0 {
		t.Error("15%% hwmon fault rate produced no retries or failures")
	}
	if len(d.Records()) > 8 {
		t.Errorf("history grew past the ring cap: %d", len(d.Records()))
	}
	// Intervals that did complete under faults must still be sane.
	if last, ok := d.Latest(); !ok {
		t.Error("no record retained")
	} else if last.Interval.TempK < 300 || last.Interval.TempK > 360 {
		t.Errorf("implausible diode value %v under hwmon faults", last.Interval.TempK)
	}
}

func TestSamplerGroupRotation(t *testing.T) {
	chip := fxsim.New(fxsim.DefaultFX8320Config())
	d, err := Attach(chip, models(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	s := d.sampler
	if s.active != 0 {
		t.Error("sampler must start on group 0")
	}
	if err := s.OnWindow(20); err != nil {
		t.Fatal(err)
	}
	if s.active != 1 {
		t.Error("group did not rotate")
	}
	if err := s.OnWindow(20); err != nil {
		t.Fatal(err)
	}
	if s.active != 0 {
		t.Error("group did not rotate back")
	}
	if math.Abs(s.liveMS[0]-20) > 1e-9 || math.Abs(s.liveMS[1]-20) > 1e-9 {
		t.Errorf("live times %v", s.liveMS)
	}
}

// TestServeIntervalAllocs pins the service-mode per-interval allocation
// ceiling, the same path BenchmarkServeInterval measures: MSR window
// sampling, diode read, PPEP analysis, and the history push, with an
// OnInterval observer attached the way internal/serve chains one. The
// budget is 3 allocs for the interval's owned slices (Counters,
// PerCoreVF, Busy — the history ring retains them, so they cannot be
// pooled), 4 fixed allocs in Models.Analyze (Report + PerVF backing
// plus the two shared projection arrays), the ring's boxed Record, and
// 2 for the published prediction table (the table and its rows — both
// retained by lock-free readers, so they cannot be pooled either);
// everything else must come from pre-sized or reused buffers.
func TestServeIntervalAllocs(t *testing.T) {
	chip := busyChip(t, false)
	d, err := AttachOpts(chip, models(t), nil, Options{HistoryCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	d.OnInterval = func(Record) {} // stand-in for serve.Server.Observe
	// Warm up: fill the history ring so steady state excludes ring growth.
	if err := d.RunIntervals(10); err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(50, func() {
		if err := d.RunIntervals(1); err != nil {
			t.Fatal(err)
		}
	})
	const ceiling = 13 // was 29 before the encode/analyze buffer reuse; +2 for the published table
	if n > ceiling {
		t.Errorf("service interval allocates %.1f times, want <= %d", n, ceiling)
	}
}
