package daemon

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"ppep/internal/arch"
	"ppep/internal/core"
	"ppep/internal/fxsim"
	"ppep/internal/hwmon"
	"ppep/internal/msr"
	"ppep/internal/trace"
)

// Policy decides VF states from a PPEP report. Implementations receive
// the chip so per-CU policies can address individual compute units.
type Policy interface {
	Apply(chip *fxsim.Chip, iv trace.Interval, rep *core.Report)
}

// PolicyFunc adapts a function to Policy.
type PolicyFunc func(*fxsim.Chip, trace.Interval, *core.Report)

// Apply implements Policy.
func (f PolicyFunc) Apply(c *fxsim.Chip, iv trace.Interval, r *core.Report) { f(c, iv, r) }

// Record pairs one measurement interval with its PPEP analysis.
type Record struct {
	// Seq numbers completed intervals from 1, monotonically: ring
	// eviction never renumbers, so consumers can detect gaps.
	Seq      uint64         `json:"seq"`
	Interval trace.Interval `json:"interval"`
	Report   *core.Report   `json:"report"`
}

// Options configures the assembled daemon beyond the required pieces.
type Options struct {
	// HistoryCap bounds the interval/report history ring. 0 keeps
	// everything — the batch behaviour finite RunIntervals experiments
	// expect. A long-running service must set a bound.
	HistoryCap int
	// Retry is the bounded retry-with-backoff budget for device register
	// and diode reads. The zero value means one attempt, no retries.
	Retry Retry
}

// Daemon is the assembled PPEP daemon: device-level sampling plus the
// trained models plus an optional policy.
type Daemon struct {
	Models *core.Models
	Policy Policy
	// OnInterval, when non-nil, is called after every completed interval
	// (after the policy). The service layer hooks observability here.
	OnInterval func(Record)
	// Throttle, when non-nil, is called once per completed or skipped
	// interval by Run. The service mode uses it to pace simulated
	// intervals against the wall clock; tests and batch runs leave it
	// nil and run flat out.
	Throttle func()

	chip    *fxsim.Chip
	sampler *Sampler
	diode   *hwmon.Sensor

	counters  Counters
	lastTempK float64

	// published is the latest per-VF projection table, swapped in whole
	// at every interval end. Readers (the HTTP layer, policies on other
	// goroutines) load it lock-free; each table is immutable once
	// stored, so a loaded pointer stays coherent for as long as the
	// reader holds it.
	published atomic.Pointer[core.PredictionTable]

	mu      sync.Mutex
	history *Ring[Record]
	seq     uint64
}

// Attach wires the daemon onto a simulated chip through the MSR and
// hwmon device paths with default options (unbounded history, no
// retries) — the batch-experiment configuration.
func Attach(chip *fxsim.Chip, models *core.Models, policy Policy) (*Daemon, error) {
	return AttachOpts(chip, models, policy, Options{})
}

// AttachOpts is Attach with explicit service options.
func AttachOpts(chip *fxsim.Chip, models *core.Models, policy Policy, opts Options) (*Daemon, error) {
	dev := msr.Open(chip)
	d := &Daemon{
		Models:  models,
		Policy:  policy,
		chip:    chip,
		diode:   hwmon.Open(chip),
		history: NewRing[Record](opts.HistoryCap),
	}
	sampler, err := NewSampler(dev, chip.Topology().NumCores(), chip.VFTable())
	if err != nil {
		return nil, err
	}
	sampler.SetRetry(opts.Retry, &d.counters)
	d.sampler = sampler
	d.lastTempK = d.diode.TempK()
	return d, nil
}

// Counters returns the daemon's operational counters (live; fields are
// atomics).
func (d *Daemon) Counters() *Counters { return &d.counters }

// EngineStats returns the chip's tick-engine counters. A daemon-attached
// chip runs register-level counter files, which pin it to the reference
// path, so FastTicks stays 0 here — the stats are exported so /metrics
// makes that visible rather than implicit.
func (d *Daemon) EngineStats() fxsim.EngineStats { return d.chip.EngineStats() }

// InjectFaults turns on deterministic transient-fault injection on both
// device read paths (the service-hardening knob; rates in [0, 1)). Only
// meaningful when the daemon was attached through the real msr.Device —
// a custom MSR test double injects its own faults.
func (d *Daemon) InjectFaults(msrRate, hwmonRate float64, seed int64) {
	if dev, ok := d.sampler.dev.(*msr.Device); ok {
		dev.InjectFaults(msrRate, seed)
	}
	d.diode.InjectFaults(hwmonRate, seed+1)
}

// HistoryCap returns the ring bound (0 = unbounded).
func (d *Daemon) HistoryCap() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.history.Cap()
}

// Records returns a copy of the retained history, oldest first.
func (d *Daemon) Records() []Record {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.history.Snapshot()
}

// Latest returns the newest record, if any interval has completed.
func (d *Daemon) Latest() (Record, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.history.Last()
}

// Predictions returns the most recently published per-VF projection
// table, or nil before the first completed interval. The table is
// immutable and the load is lock-free, so it can be read from any
// goroutine at any rate without perturbing sampling.
func (d *Daemon) Predictions() *core.PredictionTable { return d.published.Load() }

// Intervals returns the retained measurement intervals, oldest first.
func (d *Daemon) Intervals() []trace.Interval {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]trace.Interval, d.history.Len())
	for i := range out {
		out[i] = d.history.At(i).Interval
	}
	return out
}

// Reports returns the retained analyses, oldest first.
func (d *Daemon) Reports() []*core.Report {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]*core.Report, d.history.Len())
	for i := range out {
		out[i] = d.history.At(i).Report
	}
	return out
}

// readTempK reads the thermal diode with the retry budget. A diode that
// stays unreadable is not fatal: the previous good reading is reused and
// the failure counted (temperature moves slowly at 200 ms granularity).
func (d *Daemon) readTempK() float64 {
	r := d.sampler.retry
	t, err := d.diode.ReadTempK()
	for a := 1; err != nil && a < r.attempts(); a++ {
		d.counters.HwmonRetries.Add(1)
		r.sleep(a)
		t, err = d.diode.ReadTempK()
	}
	if err != nil {
		d.counters.HwmonFailures.Add(1)
		return d.lastTempK
	}
	d.lastTempK = t
	return t
}

// step drives one 200 ms decision interval through the device path:
// tick the hardware, rotate counter groups every 20 ms, assemble the
// interval, analyze, record, and apply the policy.
func (d *Daemon) step() (Record, error) {
	windows := arch.DecisionIntervalMS / arch.PowerSamplePeriodMS
	for w := 0; w < windows; w++ {
		d.chip.TickN(arch.PowerSamplePeriodMS)
		if err := d.sampler.OnWindow(arch.PowerSamplePeriodMS); err != nil {
			return Record{}, err
		}
	}
	iv, err := d.sampler.EndInterval(d.chip.TimeS(), arch.DecisionIntervalMS, d.readTempK())
	if err != nil {
		return Record{}, err
	}
	// Consume the chip's internal interval bookkeeping so oracle
	// power is available to callers for validation.
	oracle := d.chip.ReadInterval()
	iv.TruePowerW = oracle.TruePowerW
	iv.MeasPowerW = oracle.MeasPowerW

	rep, err := d.Models.Analyze(iv)
	if err != nil {
		d.counters.AnalyzeErrors.Add(1)
		return Record{}, err
	}
	d.mu.Lock()
	d.seq++
	rec := Record{Seq: d.seq, Interval: iv, Report: rep}
	d.history.Push(rec)
	d.mu.Unlock()
	// Publish before the observer hook runs so OnInterval consumers
	// (the HTTP layer's response pre-rendering) see this interval's
	// table, never the previous one.
	d.published.Store(d.Models.PredictionTable(rec.Seq, iv, rep))
	d.counters.Intervals.Add(1)
	if d.Policy != nil {
		d.Policy.Apply(d.chip, iv, rep)
	}
	if d.OnInterval != nil {
		d.OnInterval(rec)
	}
	return rec, nil
}

// RunIntervals drives the chip for n decision intervals: ticking the
// hardware, rotating counter groups every 20 ms, and analyzing at every
// 200 ms boundary. The chip's workload must already be bound. Any device
// or analysis error aborts the batch — the finite-experiment contract.
func (d *Daemon) RunIntervals(n int) error {
	if d.Models == nil {
		return fmt.Errorf("daemon: no models attached")
	}
	for i := 0; i < n; i++ {
		if _, err := d.step(); err != nil {
			return err
		}
	}
	return nil
}

// Run drives the loop until the context is cancelled — the always-on
// service mode (paper Section IV-E). Unlike RunIntervals, errors never
// abort the loop: an interval that fails even after the retry budget is
// counted as skipped, the sampler is re-programmed from scratch, and
// sampling continues. A transient fault during the re-program itself
// just skips further intervals until the reset lands — the loop only
// ever exits with the context's error on cancellation.
func (d *Daemon) Run(ctx context.Context) error {
	if d.Models == nil {
		return fmt.Errorf("daemon: no models attached")
	}
	needReset := false
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		if needReset {
			if err := d.sampler.Reset(); err != nil {
				// Still counted (the sampler's retry path bumps
				// MSRRetries/MSRFailures); pace and try again.
				d.counters.SkippedIntervals.Add(1)
				if d.Throttle != nil {
					d.Throttle()
				}
				continue
			}
			// Drain the chip's interval accumulation the failed interval
			// left behind so the next one starts on a clean boundary.
			d.chip.ReadInterval()
			needReset = false
		}
		if _, err := d.step(); err != nil {
			d.counters.SkippedIntervals.Add(1)
			needReset = true
		}
		if d.Throttle != nil {
			d.Throttle()
		}
	}
}
