package daemon

import (
	"fmt"

	"ppep/internal/arch"
	"ppep/internal/core"
	"ppep/internal/fxsim"
	"ppep/internal/hwmon"
	"ppep/internal/msr"
	"ppep/internal/trace"
)

// Policy decides VF states from a PPEP report. Implementations receive
// the chip so per-CU policies can address individual compute units.
type Policy interface {
	Apply(chip *fxsim.Chip, iv trace.Interval, rep *core.Report)
}

// PolicyFunc adapts a function to Policy.
type PolicyFunc func(*fxsim.Chip, trace.Interval, *core.Report)

// Apply implements Policy.
func (f PolicyFunc) Apply(c *fxsim.Chip, iv trace.Interval, r *core.Report) { f(c, iv, r) }

// Daemon is the assembled PPEP daemon: device-level sampling plus the
// trained models plus an optional policy.
type Daemon struct {
	Models *core.Models
	Policy Policy
	// Reports holds one analysis per completed interval.
	Reports []*core.Report
	// Intervals holds the device-sampled measurement intervals.
	Intervals []trace.Interval

	chip    *fxsim.Chip
	sampler *Sampler
	diode   *hwmon.Sensor
}

// Attach wires the daemon onto a simulated chip through the MSR and
// hwmon device paths.
func Attach(chip *fxsim.Chip, models *core.Models, policy Policy) (*Daemon, error) {
	dev := msr.Open(chip)
	sampler, err := NewSampler(dev, chip.Topology().NumCores(), chip.VFTable())
	if err != nil {
		return nil, err
	}
	return &Daemon{
		Models:  models,
		Policy:  policy,
		chip:    chip,
		sampler: sampler,
		diode:   hwmon.Open(chip),
	}, nil
}

// RunIntervals drives the chip for n decision intervals: ticking the
// hardware, rotating counter groups every 20 ms, and analyzing at every
// 200 ms boundary. The chip's workload must already be bound.
func (d *Daemon) RunIntervals(n int) error {
	if d.Models == nil {
		return fmt.Errorf("daemon: no models attached")
	}
	windows := arch.DecisionIntervalMS / arch.PowerSamplePeriodMS
	for i := 0; i < n; i++ {
		for w := 0; w < windows; w++ {
			d.chip.TickN(arch.PowerSamplePeriodMS)
			if err := d.sampler.OnWindow(arch.PowerSamplePeriodMS); err != nil {
				return err
			}
		}
		iv, err := d.sampler.EndInterval(d.chip.TimeS(), arch.DecisionIntervalMS, d.diode.TempK())
		if err != nil {
			return err
		}
		// Consume the chip's internal interval bookkeeping so oracle
		// power is available to callers for validation.
		oracle := d.chip.ReadInterval()
		iv.TruePowerW = oracle.TruePowerW
		iv.MeasPowerW = oracle.MeasPowerW

		rep, err := d.Models.Analyze(iv)
		if err != nil {
			return err
		}
		d.Intervals = append(d.Intervals, iv)
		d.Reports = append(d.Reports, rep)
		if d.Policy != nil {
			d.Policy.Apply(d.chip, iv, rep)
		}
	}
	return nil
}
