package msr

import (
	"errors"
	"testing"

	"ppep/internal/arch"
	"ppep/internal/fxsim"
	"ppep/internal/workload"
)

func newDevice(t *testing.T) (*Device, *fxsim.Chip) {
	t.Helper()
	cfg := fxsim.DefaultFX8320Config()
	cfg.IdealSensor = true
	chip := fxsim.New(cfg)
	return Open(chip), chip
}

func TestEncodeDecodeCtl(t *testing.T) {
	for _, ev := range arch.Events {
		v := EncodeCtl(ev.Code)
		code, enabled := DecodeCtl(v)
		if !enabled {
			t.Errorf("event %#x: enable bit lost", ev.Code)
		}
		if code != ev.Code {
			t.Errorf("event %#x decoded as %#x", ev.Code, code)
		}
	}
	if _, enabled := DecodeCtl(0); enabled {
		t.Error("zero value must be disabled")
	}
}

func TestRegisterAddresses(t *testing.T) {
	if PerfCtl(0) != 0xC0010200 || PerfCtr(0) != 0xC0010201 {
		t.Error("slot 0 addresses wrong")
	}
	if PerfCtl(5) != 0xC001020A || PerfCtr(5) != 0xC001020B {
		t.Error("slot 5 addresses wrong")
	}
}

func TestPStateControl(t *testing.T) {
	d, chip := newDevice(t)
	// P0 = VF5 initially.
	v, err := d.Rdmsr(0, PStateStatus)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("initial P-state %d, want P0", v)
	}
	// Write P3 on core 2 → CU 1 at VF2.
	if err := d.Wrmsr(2, PStateControl, 3); err != nil {
		t.Fatal(err)
	}
	if chip.PState(1) != arch.VF2 {
		t.Errorf("CU1 at %v, want VF2", chip.PState(1))
	}
	// Status read on the same CU's sibling core agrees.
	v, err = d.Rdmsr(3, PStateStatus)
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 {
		t.Errorf("status %d, want 3", v)
	}
	// Other CUs untouched.
	if chip.PState(0) != arch.VF5 {
		t.Error("CU0 changed unexpectedly")
	}
	// Invalid index rejected.
	if err := d.Wrmsr(0, PStateControl, 9); err == nil {
		t.Error("bad P-state index accepted")
	}
	// Status is read-only.
	if err := d.Wrmsr(0, PStateStatus, 1); err == nil {
		t.Error("status write accepted")
	}
}

func TestCounterProgramAndRead(t *testing.T) {
	d, chip := newDevice(t)
	// Program slot 0 with Retired Instructions on core 0.
	code := arch.Info(arch.RetiredInstructions).Code
	if err := d.Wrmsr(0, PerfCtl(0), EncodeCtl(code)); err != nil {
		t.Fatal(err)
	}
	if err := chip.Bind(0, workload.BenchA(), true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		chip.Tick()
	}
	v, err := d.Rdmsr(0, PerfCtr(0))
	if err != nil {
		t.Fatal(err)
	}
	if v == 0 {
		t.Error("counter did not advance")
	}
	// Zero it, run more, read again.
	if err := d.Wrmsr(0, PerfCtr(0), 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		chip.Tick()
	}
	v2, err := d.Rdmsr(0, PerfCtr(0))
	if err != nil {
		t.Fatal(err)
	}
	if v2 == 0 {
		t.Error("counter did not advance after reset")
	}
	// Rough steadiness: bench_A is steady, so two equal windows should
	// count within a few percent of each other.
	ratio := float64(v2) / float64(v)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("window ratio %v", ratio)
	}
	// Disabled slot stays put.
	if err := d.Wrmsr(0, PerfCtl(1), 0); err != nil {
		t.Fatal(err)
	}
	if v, _ := d.Rdmsr(0, PerfCtr(1)); v != 0 {
		t.Errorf("disabled slot counted %d", v)
	}
}

func TestUnmappedAndBadCore(t *testing.T) {
	d, _ := newDevice(t)
	if _, err := d.Rdmsr(0, 0xDEAD); err == nil {
		t.Error("unmapped read accepted")
	}
	if err := d.Wrmsr(0, 0xDEAD, 1); err == nil {
		t.Error("unmapped write accepted")
	}
	if _, err := d.Rdmsr(99, PStateStatus); err == nil {
		t.Error("bad core read accepted")
	}
	if err := d.Wrmsr(99, PerfCtl(0), 1); err == nil {
		t.Error("bad core write accepted")
	}
	// PERF_CTL reads are tolerated (return zero).
	if _, err := d.Rdmsr(0, PerfCtl(0)); err != nil {
		t.Errorf("ctl read: %v", err)
	}
}

// TestFaultInjection covers the service-hardening knob: at a configured
// rate, register operations fail with ErrTransient; the stream is
// deterministic per seed; rate 0 never faults.
func TestFaultInjection(t *testing.T) {
	dev, _ := newDevice(t)
	const n = 2000
	for i := 0; i < n; i++ {
		if _, err := dev.Rdmsr(0, PerfCtr(0)); err != nil {
			t.Fatalf("fault with injection disabled: %v", err)
		}
	}

	dev.InjectFaults(0.2, 11)
	var faults int
	for i := 0; i < n; i++ {
		_, err := dev.Rdmsr(0, PerfCtr(0))
		if err != nil {
			if !errors.Is(err, ErrTransient) {
				t.Fatalf("injected fault is %v, want ErrTransient", err)
			}
			faults++
		}
	}
	got := float64(faults) / n
	if got < 0.15 || got > 0.25 {
		t.Errorf("observed fault rate %.3f for configured 0.2", got)
	}

	// Same seed, same decisions: the fault stream must reproduce.
	replay := func() []int {
		d2, _ := newDevice(t)
		d2.InjectFaults(0.2, 11)
		var hits []int
		for i := 0; i < 200; i++ {
			if _, err := d2.Rdmsr(0, PerfCtr(0)); err != nil {
				hits = append(hits, i)
			}
		}
		return hits
	}
	a, b := replay(), replay()
	if len(a) == 0 {
		t.Fatal("no faults in 200 draws at rate 0.2")
	}
	for i := range a {
		if i >= len(b) || a[i] != b[i] {
			t.Fatalf("fault stream not deterministic: %v vs %v", a, b)
		}
	}

	// Writes fault from the same stream.
	dev.InjectFaults(1, 3)
	if err := dev.Wrmsr(0, PerfCtr(0), 0); !errors.Is(err, ErrTransient) {
		t.Errorf("write at rate 1 returned %v, want ErrTransient", err)
	}
}
