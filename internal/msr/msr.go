// Package msr emulates the model-specific-register interface the paper
// uses to program performance counters and control P-states (msr-tools,
// Section II). Register addresses follow the AMD family-15h layout:
//
//	0xC0010062          P-state Control (write the target P-state index)
//	0xC0010063          P-state Status (current P-state index)
//	0xC0010200 + 2·i    PERF_CTL[i], i = 0..5 (event select)
//	0xC0010201 + 2·i    PERF_CTR[i], i = 0..5 (counter value)
//
// AMD P-state indices count down from the fastest state: P0 is the top VF
// state, P(n−1) the lowest. The device maps them onto the simulator's
// VF1..VFn numbering.
package msr

import (
	"errors"
	"fmt"

	"ppep/internal/arch"
	"ppep/internal/fxsim"
	"ppep/internal/pmc"
)

// ErrTransient marks an injected transient device fault — the emulation
// of the sporadic EIO a real /dev/cpu/*/msr read can return. Callers
// (the daemon's sampler) treat it as retryable.
var ErrTransient = errors.New("transient device fault (injected)")

// Register addresses.
const (
	PStateControl = 0xC0010062
	PStateStatus  = 0xC0010063
	PerfCtlBase   = 0xC0010200
	PerfCtrBase   = 0xC0010201
)

// PerfCtl returns the event-select register address for a counter slot.
func PerfCtl(slot int) uint32 { return PerfCtlBase + 2*uint32(slot) }

// PerfCtr returns the counter register address for a counter slot.
func PerfCtr(slot int) uint32 { return PerfCtrBase + 2*uint32(slot) }

// The enable bit of a PERF_CTL value (bit 22 on family 15h).
const CtlEnable = 1 << 22

// EncodeCtl builds a PERF_CTL value for a Table I event code with the
// enable bit set. Family 15h splits the event select across bits [7:0]
// and [35:32]; all Table I codes fit in 12 bits.
func EncodeCtl(code uint16) uint64 {
	lo := uint64(code) & 0xFF
	hi := (uint64(code) >> 8) & 0xF
	return lo | hi<<32 | CtlEnable
}

// DecodeCtl extracts the event code and enable flag from a PERF_CTL value.
func DecodeCtl(v uint64) (code uint16, enabled bool) {
	code = uint16(v&0xFF) | uint16((v>>32)&0xF)<<8
	return code, v&CtlEnable != 0
}

// Device is the per-core MSR access surface over a simulated chip. It is
// the software-visible path PPEP's sampler uses; the chip must have
// counter files enabled.
//
// Device is not safe for concurrent use: like the real /dev/cpu/*/msr
// file descriptors, it belongs to the single sampling loop.
type Device struct {
	chip   *fxsim.Chip
	faults faultInjector
}

// Open attaches an MSR device to the chip, enabling its register-level
// counter files.
func Open(chip *fxsim.Chip) *Device {
	chip.EnableCounterFiles()
	return &Device{chip: chip}
}

// InjectFaults makes a fraction rate of subsequent register operations
// fail with ErrTransient, drawn from a deterministic seeded stream —
// the long-running-service hardening knob (`ppepd -fault-msr`). rate 0
// disables injection.
func (d *Device) InjectFaults(rate float64, seed int64) {
	d.faults = newFaultInjector(rate, seed)
}

// faultInjector draws deterministic Bernoulli fault decisions from an
// xorshift64* stream (math/rand's global functions are avoided module-wide
// so seeded runs reproduce bit-for-bit).
type faultInjector struct {
	rate float64
	rng  uint64
}

func newFaultInjector(rate float64, seed int64) faultInjector {
	s := uint64(seed)
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	return faultInjector{rate: rate, rng: s}
}

// hit advances the stream and reports whether this operation faults.
func (f *faultInjector) hit() bool {
	if f.rate <= 0 {
		return false
	}
	f.rng ^= f.rng << 13
	f.rng ^= f.rng >> 7
	f.rng ^= f.rng << 17
	u := f.rng * 0x2545F4914F6CDD1D
	return float64(u>>11)/(1<<53) < f.rate
}

// Rdmsr reads a register on a core.
func (d *Device) Rdmsr(core int, addr uint32) (uint64, error) {
	if d.faults.hit() {
		return 0, fmt.Errorf("msr: rdmsr core %d reg %#x: %w", core, addr, ErrTransient)
	}
	cf := d.chip.CounterFile(core)
	if cf == nil {
		return 0, fmt.Errorf("msr: core %d out of range", core)
	}
	switch {
	case addr == PStateStatus || addr == PStateControl:
		cu := d.chip.Topology().CUOf(core)
		top := d.chip.VFTable().Top()
		return uint64(int(top) - int(d.chip.PState(cu))), nil
	case isCtl(addr):
		// Event selects are write-mostly; reads return zero as a real
		// tool would rarely depend on them. Kept simple deliberately.
		return 0, nil
	case isCtr(addr):
		return cf.Read(ctrSlot(addr))
	default:
		return 0, fmt.Errorf("msr: unmapped register %#x", addr)
	}
}

// Wrmsr writes a register on a core.
func (d *Device) Wrmsr(core int, addr uint32, val uint64) error {
	if d.faults.hit() {
		return fmt.Errorf("msr: wrmsr core %d reg %#x: %w", core, addr, ErrTransient)
	}
	cf := d.chip.CounterFile(core)
	if cf == nil {
		return fmt.Errorf("msr: core %d out of range", core)
	}
	switch {
	case addr == PStateControl:
		tbl := d.chip.VFTable()
		idx := int(val)
		if idx < 0 || idx >= len(tbl) {
			return fmt.Errorf("msr: P-state index %d out of range", idx)
		}
		vf := arch.VFState(int(tbl.Top()) - idx)
		return d.chip.SetPState(d.chip.Topology().CUOf(core), vf)
	case addr == PStateStatus:
		return fmt.Errorf("msr: P-state status is read-only")
	case isCtl(addr):
		code, enabled := DecodeCtl(val)
		if !enabled {
			code = 0xFFFF // disable slot
		}
		return cf.Program(ctlSlot(addr), code)
	case isCtr(addr):
		return cf.Write(ctrSlot(addr), val)
	default:
		return fmt.Errorf("msr: unmapped register %#x", addr)
	}
}

func isCtl(addr uint32) bool {
	return addr >= PerfCtlBase && addr < PerfCtlBase+2*pmc.CountersPerCore && (addr-PerfCtlBase)%2 == 0
}

func isCtr(addr uint32) bool {
	return addr >= PerfCtrBase && addr < PerfCtrBase+2*pmc.CountersPerCore && (addr-PerfCtrBase)%2 == 0
}

func ctlSlot(addr uint32) int { return int(addr-PerfCtlBase) / 2 }
func ctrSlot(addr uint32) int { return int(addr-PerfCtrBase) / 2 }
