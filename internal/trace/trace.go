// Package trace defines the measurement records the simulated platform
// produces and the PPEP models consume: one Interval per 200 ms DVFS
// decision period, carrying extrapolated per-core event counts, the
// averaged 20 ms power-sensor readings, the thermal diode value, and the
// VF state — exactly the information available on the paper's testbed.
//
// Intervals also carry oracle fields (true power, true core/NB split)
// that the models never read; experiments use them to quantify errors.
package trace

import (
	"fmt"
	"math"

	"ppep/internal/arch"
)

// Interval is one DVFS decision period's worth of measurements.
type Interval struct {
	// TimeS is the simulation time at the end of the interval.
	TimeS float64
	// DurS is the interval length in seconds (0.2 in all experiments).
	DurS float64
	// PerCoreVF is each core's VF state during the interval.
	PerCoreVF []arch.VFState
	// Counters holds each core's extrapolated event counts for the
	// interval (counts, not rates).
	Counters []arch.EventVec
	// Busy reports whether a thread was bound and running on each core.
	Busy []bool
	// TempK is the socket thermal diode reading.
	TempK float64
	// MeasPowerW is the mean of the interval's ten 20 ms sensor readings.
	MeasPowerW float64

	// Oracle fields (never visible to the models).
	TruePowerW   float64   // true mean chip power
	TrueCoreW    float64   // true core-side power (cores + CU leakage + housekeeping)
	TrueNBW      float64   // true NB-side power (NB dynamic + leakage + base)
	TrueCoreDynW []float64 // per-core true dynamic power
}

// VF returns the interval's chip-wide VF state, defined as the highest
// per-core state (cores share a voltage rail on the real part).
func (iv *Interval) VF() arch.VFState {
	top := arch.VFState(1)
	for _, s := range iv.PerCoreVF {
		if s > top {
			top = s
		}
	}
	return top
}

// TotalCounts sums one event across all cores.
func (iv *Interval) TotalCounts(id arch.EventID) float64 {
	var sum float64
	for _, c := range iv.Counters {
		sum += c.Get(id)
	}
	return sum
}

// TotalRates returns the per-second chip-wide rates for all events.
// A zero-duration interval has no meaningful rates and returns zeros.
func (iv *Interval) TotalRates() arch.EventVec {
	if iv.DurS <= 0 {
		return arch.EventVec{}
	}
	var sum arch.EventVec
	for _, c := range iv.Counters {
		sum.Add(c)
	}
	return sum.Scale(1 / iv.DurS)
}

// CoreRates returns one core's per-second event rates.
func (iv *Interval) CoreRates(core int) arch.EventVec {
	if iv.DurS <= 0 {
		return arch.EventVec{}
	}
	return iv.Counters[core].Scale(1 / iv.DurS)
}

// Instructions returns the chip-wide retired instructions in the interval.
func (iv *Interval) Instructions() float64 {
	return iv.TotalCounts(arch.RetiredInstructions)
}

// Trace is the full measurement record of one benchmark run.
type Trace struct {
	Run       string // benchmark combination name ("433 x2", "400+401")
	Suite     string // "SPE", "PAR", "NPB", ...
	Platform  string
	Intervals []Interval
}

// DurationS returns the run's wall-clock length.
func (t *Trace) DurationS() float64 {
	var d float64
	for _, iv := range t.Intervals {
		d += iv.DurS
	}
	return d
}

// AvgMeasPowerW returns the run's mean measured power.
func (t *Trace) AvgMeasPowerW() float64 {
	if len(t.Intervals) == 0 {
		return 0
	}
	var sum float64
	for _, iv := range t.Intervals {
		sum += iv.MeasPowerW
	}
	return sum / float64(len(t.Intervals))
}

// MeasEnergyJ returns the run's measured energy (power × time summed).
func (t *Trace) MeasEnergyJ() float64 {
	var e float64
	for _, iv := range t.Intervals {
		e += iv.MeasPowerW * iv.DurS
	}
	return e
}

// TotalInstructions returns the chip-wide instructions retired.
func (t *Trace) TotalInstructions() float64 {
	var n float64
	for _, iv := range t.Intervals {
		n += iv.Instructions()
	}
	return n
}

// Fingerprint returns an order-sensitive FNV-1a hash over every field of
// every interval at full float64 bit precision. Two traces fingerprint
// equal iff they are bit-identical, so the simulator's golden-equivalence
// tests use it to pin down the determinism guarantee: a fixed-seed run
// must reproduce the same fingerprint across refactors of the tick loop.
func (t *Trace) Fingerprint() uint64 {
	h := FingerprintSeed
	for i := range t.Intervals {
		h = t.Intervals[i].fingerprint(h)
	}
	return h
}

// FingerprintSeed is the initial value of an incremental interval
// fingerprint: folding a trace's intervals into it with Fold, in order,
// reproduces Trace.Fingerprint exactly. Consumers that never retain
// whole traces (the fleet engine keeps one running hash per node) start
// from this seed and fold each interval as it closes.
const FingerprintSeed = fnvOffset

// Fold folds the interval into a running order-sensitive FNV-1a
// fingerprint (see FingerprintSeed). It is allocation-free.
func (iv *Interval) Fold(h uint64) uint64 { return iv.fingerprint(h) }

// FNV-1a constants (hash/fnv is avoided so the mixing of non-byte data
// stays explicit and allocation-free).
const (
	fnvOffset = uint64(14695981039346656037)
	fnvPrime  = uint64(1099511628211)
)

func fnvU64(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime
		x >>= 8
	}
	return h
}

func fnvF64(h uint64, x float64) uint64 { return fnvU64(h, math.Float64bits(x)) }

// fingerprint folds one interval into a running FNV-1a hash.
func (iv *Interval) fingerprint(h uint64) uint64 {
	h = fnvF64(h, iv.TimeS)
	h = fnvF64(h, iv.DurS)
	h = fnvF64(h, iv.TempK)
	h = fnvF64(h, iv.MeasPowerW)
	h = fnvF64(h, iv.TruePowerW)
	h = fnvF64(h, iv.TrueCoreW)
	h = fnvF64(h, iv.TrueNBW)
	for _, s := range iv.PerCoreVF {
		h = fnvU64(h, uint64(s))
	}
	for _, b := range iv.Busy {
		x := uint64(0)
		if b {
			x = 1
		}
		h = fnvU64(h, x)
	}
	for _, ev := range iv.Counters {
		for _, x := range ev {
			h = fnvF64(h, x)
		}
	}
	for _, w := range iv.TrueCoreDynW {
		h = fnvF64(h, w)
	}
	return h
}

// Validate checks structural consistency.
func (t *Trace) Validate() error {
	for i, iv := range t.Intervals {
		if iv.DurS <= 0 {
			return fmt.Errorf("trace %s: interval %d non-positive duration", t.Run, i)
		}
		if len(iv.Counters) != len(iv.PerCoreVF) || len(iv.Counters) != len(iv.Busy) {
			return fmt.Errorf("trace %s: interval %d ragged per-core slices", t.Run, i)
		}
		if iv.MeasPowerW < 0 || iv.TempK < 0 {
			return fmt.Errorf("trace %s: interval %d negative measurement", t.Run, i)
		}
	}
	return nil
}
