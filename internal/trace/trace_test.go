package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"ppep/internal/arch"
)

func sampleInterval(timeS float64, vf arch.VFState) Interval {
	iv := Interval{
		TimeS: timeS, DurS: 0.2,
		TempK: 320, MeasPowerW: 75, TruePowerW: 74,
	}
	for c := 0; c < 4; c++ {
		var ev arch.EventVec
		ev.Set(arch.RetiredInstructions, float64(1e8*(c+1)))
		ev.Set(arch.CPUClocksNotHalted, float64(2e8*(c+1)))
		iv.Counters = append(iv.Counters, ev)
		iv.PerCoreVF = append(iv.PerCoreVF, vf)
		iv.Busy = append(iv.Busy, c%2 == 0)
	}
	return iv
}

func sampleTrace() *Trace {
	t := &Trace{Run: "433 x2", Suite: "SPE", Platform: "AMD FX-8320"}
	for i := 0; i < 5; i++ {
		t.Intervals = append(t.Intervals, sampleInterval(0.2*float64(i+1), arch.VF5))
	}
	return t
}

// TestFoldMatchesFingerprint pins the incremental fingerprint contract:
// folding a trace's intervals into FingerprintSeed, in order, must
// reproduce Trace.Fingerprint bit-for-bit (the fleet engine keeps one
// running Fold per node instead of retaining traces).
func TestFoldMatchesFingerprint(t *testing.T) {
	tr := sampleTrace()
	h := uint64(FingerprintSeed)
	for i := range tr.Intervals {
		h = tr.Intervals[i].Fold(h)
	}
	if want := tr.Fingerprint(); h != want {
		t.Errorf("incremental Fold = %#x, Trace.Fingerprint = %#x", h, want)
	}
	if n := testing.AllocsPerRun(100, func() {
		h = tr.Intervals[0].Fold(h)
	}); n != 0 {
		t.Errorf("Fold allocates %.1f times per call, want 0", n)
	}
}

func TestIntervalAggregates(t *testing.T) {
	iv := sampleInterval(0.2, arch.VF3)
	if iv.VF() != arch.VF3 {
		t.Errorf("VF = %v", iv.VF())
	}
	iv.PerCoreVF[2] = arch.VF5
	if iv.VF() != arch.VF5 {
		t.Error("VF must be the max per-core state")
	}
	wantInst := 1e8 * (1 + 2 + 3 + 4)
	if iv.Instructions() != wantInst {
		t.Errorf("instructions = %v", iv.Instructions())
	}
	if iv.TotalCounts(arch.CPUClocksNotHalted) != 2*wantInst {
		t.Errorf("cycles = %v", iv.TotalCounts(arch.CPUClocksNotHalted))
	}
	rates := iv.TotalRates()
	if math.Abs(rates.Get(arch.RetiredInstructions)-wantInst/0.2) > 1 {
		t.Errorf("rate = %v", rates.Get(arch.RetiredInstructions))
	}
	cr := iv.CoreRates(1)
	if math.Abs(cr.Get(arch.RetiredInstructions)-2e8/0.2) > 1 {
		t.Errorf("core rate = %v", cr.Get(arch.RetiredInstructions))
	}
}

func TestZeroDurationRates(t *testing.T) {
	iv := sampleInterval(0.2, arch.VF5)
	iv.DurS = 0
	if iv.TotalRates().Get(arch.RetiredInstructions) != 0 {
		t.Error("zero-duration rates must be zero")
	}
	if iv.CoreRates(0).Get(arch.RetiredInstructions) != 0 {
		t.Error("zero-duration core rates must be zero")
	}
}

func TestTraceAggregates(t *testing.T) {
	tr := sampleTrace()
	if math.Abs(tr.DurationS()-1.0) > 1e-12 {
		t.Errorf("duration = %v", tr.DurationS())
	}
	if tr.AvgMeasPowerW() != 75 {
		t.Errorf("avg power = %v", tr.AvgMeasPowerW())
	}
	if math.Abs(tr.MeasEnergyJ()-75) > 1e-9 {
		t.Errorf("energy = %v", tr.MeasEnergyJ())
	}
	if tr.TotalInstructions() != 5*1e9 {
		t.Errorf("instructions = %v", tr.TotalInstructions())
	}
	empty := &Trace{}
	if empty.AvgMeasPowerW() != 0 || empty.DurationS() != 0 {
		t.Error("empty trace aggregates must be zero")
	}
}

func TestValidate(t *testing.T) {
	tr := sampleTrace()
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	bad := sampleTrace()
	bad.Intervals[0].DurS = 0
	if bad.Validate() == nil {
		t.Error("zero duration accepted")
	}
	bad = sampleTrace()
	bad.Intervals[1].Busy = bad.Intervals[1].Busy[:2]
	if bad.Validate() == nil {
		t.Error("ragged slices accepted")
	}
	bad = sampleTrace()
	bad.Intervals[2].MeasPowerW = -1
	if bad.Validate() == nil {
		t.Error("negative power accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Intervals) != len(tr.Intervals) {
		t.Fatalf("interval count %d, want %d", len(got.Intervals), len(tr.Intervals))
	}
	for i := range tr.Intervals {
		a, b := tr.Intervals[i], got.Intervals[i]
		if a.TimeS != b.TimeS || a.DurS != b.DurS || a.TempK != b.TempK ||
			a.MeasPowerW != b.MeasPowerW || a.TruePowerW != b.TruePowerW {
			t.Errorf("interval %d scalar mismatch", i)
		}
		if len(a.Counters) != len(b.Counters) {
			t.Fatalf("interval %d core count mismatch", i)
		}
		for c := range a.Counters {
			if a.Counters[c] != b.Counters[c] {
				t.Errorf("interval %d core %d counters mismatch", i, c)
			}
			if a.PerCoreVF[c] != b.PerCoreVF[c] || a.Busy[c] != b.Busy[c] {
				t.Errorf("interval %d core %d state mismatch", i, c)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("a,b,c\n1,2,3\n")); err == nil {
		t.Error("wrong column count accepted")
	}
	tr, err := ReadCSV(strings.NewReader(""))
	if err != nil || len(tr.Intervals) != 0 {
		t.Error("empty input should give empty trace")
	}
	// Corrupt a numeric field.
	var buf bytes.Buffer
	if err := sampleTrace().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	corrupted := strings.Replace(buf.String(), "320", "xyz", 1)
	if _, err := ReadCSV(strings.NewReader(corrupted)); err == nil {
		t.Error("corrupt numeric accepted")
	}
}

func TestPhaseChangeScore(t *testing.T) {
	mk := func(perInst []float64) Interval {
		var ev arch.EventVec
		inst := 1e9
		ev.Set(arch.RetiredInstructions, inst)
		for i, p := range perInst {
			ev[i] = p * inst
		}
		return Interval{
			DurS: 0.2, Counters: []arch.EventVec{ev},
			PerCoreVF: []arch.VFState{arch.VF5}, Busy: []bool{true},
		}
	}
	steady := &Trace{}
	for i := 0; i < 6; i++ {
		steady.Intervals = append(steady.Intervals, mk([]float64{1.3, 0.4, 0.25, 0.45, 0.02, 0.15, 0.005, 0.01}))
	}
	if got := PhaseChangeScore(steady); got > 1e-12 {
		t.Errorf("steady trace scored %v", got)
	}
	choppy := &Trace{}
	for i := 0; i < 6; i++ {
		rates := []float64{1.3, 0.4, 0.25, 0.45, 0.02, 0.15, 0.005, 0.01}
		if i%2 == 1 {
			rates[7] *= 5 // L2 misses swing 5×
		}
		choppy.Intervals = append(choppy.Intervals, mk(rates))
	}
	if got := PhaseChangeScore(choppy); got < 0.1 {
		t.Errorf("choppy trace scored only %v", got)
	}
	// Idle intervals break the chain without crashing.
	withIdle := &Trace{Intervals: []Interval{
		mk([]float64{1.3, 0, 0, 0, 0, 0, 0, 0}),
		{DurS: 0.2, Counters: []arch.EventVec{{}}, PerCoreVF: []arch.VFState{arch.VF5}, Busy: []bool{false}},
		mk([]float64{1.3, 0, 0, 0, 0, 0, 0, 0}),
	}}
	if got := PhaseChangeScore(withIdle); got != 0 {
		t.Errorf("idle-broken trace scored %v", got)
	}
	if PhaseChangeScore(&Trace{}) != 0 {
		t.Error("empty trace must score zero")
	}
}
