package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"ppep/internal/arch"
)

// WriteCSV serializes a trace, one row per (interval, core), with chip
// measurements repeated per row. The format is the same shape as the
// paper's logged traces (counter dump + power + temperature per sample).
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"time_s", "dur_s", "core", "vf", "busy", "temp_k", "meas_w", "true_w"}
	for _, ev := range arch.Events {
		header = append(header, fmt.Sprintf("e%d", ev.ID))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }
	for _, iv := range t.Intervals {
		for core := range iv.Counters {
			row := []string{
				f(iv.TimeS), f(iv.DurS), strconv.Itoa(core),
				strconv.Itoa(int(iv.PerCoreVF[core])),
				strconv.FormatBool(iv.Busy[core]),
				f(iv.TempK), f(iv.MeasPowerW), f(iv.TruePowerW),
			}
			for _, c := range iv.Counters[core] {
				row = append(row, f(c))
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV. Oracle split fields that are
// not serialized (core/NB breakdown) come back zero.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return &Trace{}, nil
	}
	wantCols := 8 + arch.NumEvents
	if len(rows[0]) != wantCols {
		return nil, fmt.Errorf("trace: header has %d columns, want %d", len(rows[0]), wantCols)
	}
	t := &Trace{}
	var cur *Interval
	for i, row := range rows[1:] {
		pf := func(s string) (float64, error) { return strconv.ParseFloat(s, 64) }
		timeS, err := pf(row[0])
		if err != nil {
			return nil, fmt.Errorf("trace: row %d: %v", i+1, err)
		}
		if cur == nil || cur.TimeS != timeS {
			t.Intervals = append(t.Intervals, Interval{TimeS: timeS})
			cur = &t.Intervals[len(t.Intervals)-1]
			if cur.DurS, err = pf(row[1]); err != nil {
				return nil, fmt.Errorf("trace: row %d: %v", i+1, err)
			}
			if cur.TempK, err = pf(row[5]); err != nil {
				return nil, fmt.Errorf("trace: row %d: %v", i+1, err)
			}
			if cur.MeasPowerW, err = pf(row[6]); err != nil {
				return nil, fmt.Errorf("trace: row %d: %v", i+1, err)
			}
			if cur.TruePowerW, err = pf(row[7]); err != nil {
				return nil, fmt.Errorf("trace: row %d: %v", i+1, err)
			}
		}
		vf, err := strconv.Atoi(row[3])
		if err != nil {
			return nil, fmt.Errorf("trace: row %d: %v", i+1, err)
		}
		busy, err := strconv.ParseBool(row[4])
		if err != nil {
			return nil, fmt.Errorf("trace: row %d: %v", i+1, err)
		}
		var ev arch.EventVec
		for j := 0; j < arch.NumEvents; j++ {
			if ev[j], err = pf(row[8+j]); err != nil {
				return nil, fmt.Errorf("trace: row %d event %d: %v", i+1, j+1, err)
			}
		}
		cur.PerCoreVF = append(cur.PerCoreVF, arch.VFState(vf))
		cur.Busy = append(cur.Busy, busy)
		cur.Counters = append(cur.Counters, ev)
	}
	return t, nil
}
