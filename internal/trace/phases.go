package trace

import (
	"math"

	"ppep/internal/arch"
)

// PhaseChangeScore quantifies how violently a trace's counter signature
// moves between consecutive intervals: the mean across interval pairs of
// the relative change in per-instruction E1–E8 rates. Steady programs
// score near zero; programs whose phases flip faster than the counter
// multiplexing window (the paper's dedup, IS, DC outliers) score high.
func PhaseChangeScore(t *Trace) float64 {
	var prev [8]float64
	havePrev := false
	var sum float64
	var n int
	for _, iv := range t.Intervals {
		rates := iv.TotalRates()
		inst := rates.Get(arch.RetiredInstructions)
		if inst <= 0 {
			havePrev = false
			continue
		}
		var cur [8]float64
		for i := 0; i < 8; i++ {
			cur[i] = rates[i] / inst
		}
		if havePrev {
			var d float64
			for i := 0; i < 8; i++ {
				ref := math.Abs(prev[i])
				if ref < 1e-12 {
					continue
				}
				d += math.Abs(cur[i]-prev[i]) / ref
			}
			sum += d / 8
			n++
		}
		prev = cur
		havePrev = true
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
