// Package hwmon emulates the sysfs hwmon temperature path the paper reads
// for the socket thermal diode (Section II): values are reported in
// millidegrees Celsius, as `temp1_input` does on Linux.
package hwmon

import (
	"errors"
	"fmt"

	"ppep/internal/fxsim"
)

// KelvinOffset converts between kelvin and Celsius.
const KelvinOffset = 273.15

// ErrTransient marks an injected transient read fault — the emulation of
// a sporadic sysfs read error on a flaky sensor bus. Callers (the
// daemon) treat it as retryable.
var ErrTransient = errors.New("transient sensor fault (injected)")

// Sensor is the socket thermal diode read path.
//
// Sensor is not safe for concurrent use: like a real sysfs file handle,
// it belongs to the single sampling loop.
type Sensor struct {
	chip *fxsim.Chip

	faultRate float64
	faultRNG  uint64
}

// Open attaches to the chip's thermal diode.
func Open(chip *fxsim.Chip) *Sensor { return &Sensor{chip: chip} }

// InjectFaults makes a fraction rate of subsequent Read/ReadTempK calls
// fail with ErrTransient, drawn from a deterministic seeded stream — the
// long-running-service hardening knob (`ppepd -fault-hwmon`). rate 0
// disables injection.
func (s *Sensor) InjectFaults(rate float64, seed int64) {
	s.faultRate = rate
	s.faultRNG = uint64(seed)
	if s.faultRNG == 0 {
		s.faultRNG = 0x9E3779B97F4A7C15
	}
}

// hit advances the xorshift64* fault stream (math/rand's global functions
// are avoided module-wide so seeded runs reproduce bit-for-bit).
func (s *Sensor) hit() bool {
	if s.faultRate <= 0 {
		return false
	}
	s.faultRNG ^= s.faultRNG << 13
	s.faultRNG ^= s.faultRNG >> 7
	s.faultRNG ^= s.faultRNG << 17
	u := s.faultRNG * 0x2545F4914F6CDD1D
	return float64(u>>11)/(1<<53) < s.faultRate
}

// Read returns the diode value in millidegrees Celsius — the raw sysfs
// temp1_input read, including any injected transient fault.
func (s *Sensor) Read() (int64, error) {
	if s.hit() {
		return 0, fmt.Errorf("hwmon: temp1_input: %w", ErrTransient)
	}
	return s.Temp1InputMilliC(), nil
}

// ReadTempK is Read converted to kelvin, as the PPEP daemon consumes it.
func (s *Sensor) ReadTempK() (float64, error) {
	mc, err := s.Read()
	if err != nil {
		return 0, err
	}
	return float64(mc)/1000 + KelvinOffset, nil
}

// Temp1InputMilliC returns the diode value in millidegrees Celsius, the
// raw sysfs representation. It bypasses fault injection (experiment
// setup code uses it; the daemon's read path goes through Read).
func (s *Sensor) Temp1InputMilliC() int64 {
	return int64((s.chip.TempK() - KelvinOffset) * 1000)
}

// TempK returns the diode value converted back to kelvin, bypassing
// fault injection.
func (s *Sensor) TempK() float64 {
	return float64(s.Temp1InputMilliC())/1000 + KelvinOffset
}
