// Package hwmon emulates the sysfs hwmon temperature path the paper reads
// for the socket thermal diode (Section II): values are reported in
// millidegrees Celsius, as `temp1_input` does on Linux.
package hwmon

import "ppep/internal/fxsim"

// KelvinOffset converts between kelvin and Celsius.
const KelvinOffset = 273.15

// Sensor is the socket thermal diode read path.
type Sensor struct {
	chip *fxsim.Chip
}

// Open attaches to the chip's thermal diode.
func Open(chip *fxsim.Chip) *Sensor { return &Sensor{chip: chip} }

// Temp1InputMilliC returns the diode value in millidegrees Celsius, the
// raw sysfs representation.
func (s *Sensor) Temp1InputMilliC() int64 {
	return int64((s.chip.TempK() - KelvinOffset) * 1000)
}

// TempK returns the diode value converted back to kelvin, as the PPEP
// daemon consumes it.
func (s *Sensor) TempK() float64 {
	return float64(s.Temp1InputMilliC())/1000 + KelvinOffset
}
