package hwmon

import (
	"errors"
	"math"
	"testing"

	"ppep/internal/fxsim"
)

func TestTempReadPath(t *testing.T) {
	cfg := fxsim.DefaultFX8320Config()
	chip := fxsim.New(cfg)
	s := Open(chip)

	chip.SetTempK(320.0)
	milli := s.Temp1InputMilliC()
	wantMilli := int64((320.0 - KelvinOffset) * 1000)
	if milli != wantMilli {
		t.Errorf("temp1_input = %d, want %d", milli, wantMilli)
	}
	if math.Abs(s.TempK()-320.0) > 0.001 {
		t.Errorf("TempK = %v", s.TempK())
	}
}

func TestQuantizationMatchesSysfs(t *testing.T) {
	cfg := fxsim.DefaultFX8320Config()
	chip := fxsim.New(cfg)
	s := Open(chip)
	chip.SetTempK(315.6789)
	// The chip's diode path quantizes to millikelvin; the hwmon read
	// must be stable and close.
	if math.Abs(s.TempK()-315.6789) > 0.01 {
		t.Errorf("TempK = %v", s.TempK())
	}
}

// TestFaultInjection covers the service-hardening knob: Read/ReadTempK
// fail with ErrTransient at the configured rate while the setup-path
// readers (TempK, Temp1InputMilliC) stay fault-free, and the stream is
// deterministic per seed.
func TestFaultInjection(t *testing.T) {
	cfg := fxsim.DefaultFX8320Config()
	chip := fxsim.New(cfg)
	chip.SetTempK(320)
	s := Open(chip)

	if _, err := s.ReadTempK(); err != nil {
		t.Fatalf("fault with injection disabled: %v", err)
	}

	s.InjectFaults(0.25, 9)
	const n = 2000
	var faults int
	for i := 0; i < n; i++ {
		v, err := s.ReadTempK()
		if err != nil {
			if !errors.Is(err, ErrTransient) {
				t.Fatalf("injected fault is %v, want ErrTransient", err)
			}
			faults++
			continue
		}
		if math.Abs(v-320) > 0.001 {
			t.Errorf("successful read returned %v, want 320", v)
		}
	}
	got := float64(faults) / n
	if got < 0.2 || got > 0.3 {
		t.Errorf("observed fault rate %.3f for configured 0.25", got)
	}

	// The experiment-setup path must never fault.
	for i := 0; i < 100; i++ {
		if math.Abs(s.TempK()-320) > 0.001 {
			t.Fatal("TempK perturbed by fault injection")
		}
	}

	// Same seed, same decisions.
	replay := func() []int {
		s2 := Open(chip)
		s2.InjectFaults(0.25, 9)
		var hits []int
		for i := 0; i < 200; i++ {
			if _, err := s2.Read(); err != nil {
				hits = append(hits, i)
			}
		}
		return hits
	}
	a, b := replay(), replay()
	if len(a) == 0 {
		t.Fatal("no faults in 200 draws at rate 0.25")
	}
	for i := range a {
		if i >= len(b) || a[i] != b[i] {
			t.Fatalf("fault stream not deterministic: %v vs %v", a, b)
		}
	}
}
