package hwmon

import (
	"math"
	"testing"

	"ppep/internal/fxsim"
)

func TestTempReadPath(t *testing.T) {
	cfg := fxsim.DefaultFX8320Config()
	chip := fxsim.New(cfg)
	s := Open(chip)

	chip.SetTempK(320.0)
	milli := s.Temp1InputMilliC()
	wantMilli := int64((320.0 - KelvinOffset) * 1000)
	if milli != wantMilli {
		t.Errorf("temp1_input = %d, want %d", milli, wantMilli)
	}
	if math.Abs(s.TempK()-320.0) > 0.001 {
		t.Errorf("TempK = %v", s.TempK())
	}
}

func TestQuantizationMatchesSysfs(t *testing.T) {
	cfg := fxsim.DefaultFX8320Config()
	chip := fxsim.New(cfg)
	s := Open(chip)
	chip.SetTempK(315.6789)
	// The chip's diode path quantizes to millikelvin; the hwmon read
	// must be stable and close.
	if math.Abs(s.TempK()-315.6789) > 0.01 {
		t.Errorf("TempK = %v", s.TempK())
	}
}
