package tracecodec

import (
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"ppep/internal/arch"
	"ppep/internal/trace"
)

// campaignTrace builds a trace with the shape the campaign produces:
// 8 cores, full 12-event counter vectors, oracle fields populated, and
// float values spanning magnitudes (including negatives, tiny
// subnormal-ish values, and -0) to exercise the raw-bit round-trip.
func campaignTrace(seed int64, nIntervals int) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	t := &trace.Trace{Run: "433 x2", Suite: "SPE", Platform: "fx8320"}
	cores := 8
	for i := 0; i < nIntervals; i++ {
		iv := trace.Interval{
			TimeS:      float64(i) * 0.2,
			DurS:       0.2,
			TempK:      310 + 10*rng.Float64(),
			MeasPowerW: 60 + 40*rng.Float64(),
			TruePowerW: 60 + 40*rng.Float64(),
			TrueCoreW:  40 * rng.Float64(),
			TrueNBW:    15 * rng.Float64(),
		}
		if i == 0 {
			iv.TimeS = negZero() // -0 must survive
			iv.TrueNBW = 1e-310  // subnormal
		}
		for c := 0; c < cores; c++ {
			iv.PerCoreVF = append(iv.PerCoreVF, arch.VFState(1+rng.Intn(5)))
			iv.Busy = append(iv.Busy, rng.Intn(2) == 1)
			var ev arch.EventVec
			for e := range ev {
				ev[e] = rng.NormFloat64() * 1e9
			}
			iv.Counters = append(iv.Counters, ev)
			iv.TrueCoreDynW = append(iv.TrueCoreDynW, rng.Float64()*8)
		}
		t.Intervals = append(t.Intervals, iv)
	}
	return t
}

func negZero() float64 {
	z := 0.0
	return -z
}

func TestRoundTrip(t *testing.T) {
	var enc Encoder
	for _, n := range []int{0, 1, 7, 40} {
		orig := campaignTrace(int64(n)+1, n)
		b, err := enc.Encode(orig)
		if err != nil {
			t.Fatalf("Encode(%d intervals): %v", n, err)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("Decode(%d intervals): %v", n, err)
		}
		if got.Fingerprint() != orig.Fingerprint() {
			t.Fatalf("%d intervals: fingerprint changed across round-trip", n)
		}
		if !reflect.DeepEqual(got, orig) {
			t.Fatalf("%d intervals: decoded trace differs structurally", n)
		}
	}
}

// TestEncoderReusesBuffer checks the amortization contract: a second
// Encode of a same-shaped trace performs zero allocations.
func TestEncoderReusesBuffer(t *testing.T) {
	var enc Encoder
	tr := campaignTrace(3, 10)
	if _, err := enc.Encode(tr); err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(20, func() {
		if _, err := enc.Encode(tr); err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Fatalf("warm Encode allocates %.0f times per call, want 0", n)
	}
}

func TestSchemaVersionMismatch(t *testing.T) {
	var enc Encoder
	b, err := enc.Encode(campaignTrace(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), b...)
	binary.LittleEndian.PutUint32(bad[4:], SchemaVersion+1)
	if _, err := Decode(bad); !errors.Is(err, ErrSchema) {
		t.Fatalf("future schema version: err = %v, want ErrSchema", err)
	}
	bad = append([]byte(nil), b...)
	binary.LittleEndian.PutUint32(bad[8:], arch.NumEvents+1)
	if _, err := Decode(bad); !errors.Is(err, ErrSchema) {
		t.Fatalf("event width mismatch: err = %v, want ErrSchema", err)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := Decode([]byte("NOPE")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: err = %v, want ErrCorrupt", err)
	}
	if _, err := Decode(nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("empty input: err = %v, want ErrCorrupt", err)
	}
}

// TestEveryTruncationErrors decodes every proper prefix of a valid
// encoding: each must return an error, never a partial trace.
func TestEveryTruncationErrors(t *testing.T) {
	var enc Encoder
	b, err := enc.Encode(campaignTrace(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(b); n++ {
		if tr, err := Decode(b[:n]); err == nil {
			t.Fatalf("Decode of %d/%d-byte prefix succeeded (%d intervals)", n, len(b), len(tr.Intervals))
		}
	}
}

func TestTrailingBytesError(t *testing.T) {
	var enc Encoder
	b, err := enc.Encode(campaignTrace(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(append(append([]byte(nil), b...), 0xAA)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte: err = %v, want ErrCorrupt", err)
	}
}

// TestHugeCountRejectedBeforeAlloc corrupts the interval count to the
// u32 max: Decode must reject it cheaply rather than attempt a
// multi-gigabyte allocation.
func TestHugeCountRejectedBeforeAlloc(t *testing.T) {
	var enc Encoder
	b, err := enc.Encode(campaignTrace(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), b...)
	// nIntervals sits right after the three (empty-prefix-free) names.
	off := 12
	for i := 0; i < 3; i++ {
		off += 2 + int(binary.LittleEndian.Uint16(bad[off:]))
	}
	binary.LittleEndian.PutUint32(bad[off:], math.MaxUint32)
	if _, err := Decode(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("huge interval count: err = %v, want ErrCorrupt", err)
	}
}

func FuzzDecode(f *testing.F) {
	var enc Encoder
	for _, n := range []int{0, 1, 3} {
		b, err := enc.Encode(campaignTrace(int64(n), n))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(append([]byte(nil), b...))
	}
	f.Add([]byte("PPTC"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(data) // must never panic
		if err != nil {
			return
		}
		// Anything that decodes must re-encode and decode to the same
		// fingerprint (no partial/ambiguous parses).
		b2, err := new(Encoder).Encode(tr)
		if err != nil {
			t.Fatalf("re-encode of decoded trace: %v", err)
		}
		tr2, err := Decode(b2)
		if err != nil {
			t.Fatalf("decode of re-encode: %v", err)
		}
		if tr.Fingerprint() != tr2.Fingerprint() {
			t.Fatalf("fingerprint unstable across re-encode")
		}
	})
}
