// Package tracecodec is a compact, versioned binary codec for
// trace.Trace values, used by the on-disk simulation cache
// (internal/simcache). Floats round-trip through their raw IEEE-754
// bits, so a decoded trace is bit-identical to the freshly simulated
// one — Trace.Fingerprint of the decode equals the original, which is
// what lets the cache stay invisible to the golden-equivalence tests.
//
// Layout (all integers little-endian):
//
//	magic "PPTC" | u32 SchemaVersion | u32 arch.NumEvents
//	u16-len Run | u16-len Suite | u16-len Platform
//	u32 nIntervals
//	per interval: u32 frameLen | frame
//
// and each frame is
//
//	f64 ×7 (TimeS DurS TempK MeasPowerW TruePowerW TrueCoreW TrueNBW)
//	u32 nVF   | u64 ×nVF        (two's-complement VFState)
//	u32 nCtr  | f64 ×NumEvents ×nCtr
//	u32 nBusy | byte ×nBusy     (strictly 0 or 1)
//	u32 nDyn  | f64 ×nDyn
//
// Decode never panics on truncated or corrupted input and never
// returns a partial trace: any structural inconsistency yields an
// error wrapping ErrCorrupt (or ErrSchema for a version/event-count
// mismatch), and the caller treats it as a cache miss.
package tracecodec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"ppep/internal/arch"
	"ppep/internal/trace"
)

// SchemaVersion identifies the encoding. Bump it whenever the layout,
// the fingerprint algorithm feeding cache keys, or the semantics of any
// encoded field change; old cache entries then decode as ErrSchema and
// are re-simulated (docs/CACHE.md).
const SchemaVersion = 1

const magic = "PPTC"

var (
	// ErrSchema reports an entry written by a different codec schema or
	// event-vector width. It is a mismatch, not damage.
	ErrSchema = errors.New("tracecodec: schema mismatch")
	// ErrCorrupt reports structurally inconsistent bytes (truncation,
	// bad magic, counts that exceed the data present).
	ErrCorrupt = errors.New("tracecodec: corrupt entry")
	// ErrTooLong reports a trace whose Run/Suite/Platform name exceeds
	// the u16 length prefix; campaign names are all far shorter.
	ErrTooLong = errors.New("tracecodec: name exceeds 64 KiB")
)

const (
	headerFixed = 4 + 4 + 4 + 3*2 + 4 // magic, version, nEvents, 3 name lengths, nIntervals
	frameFixed  = 7*8 + 4*4           // 7 floats + 4 counts
)

// An Encoder carries a reusable scratch buffer across Encode calls; the
// returned slice aliases it and is valid until the next Encode. The
// zero value is ready to use.
type Encoder struct {
	buf []byte
}

func encodedSize(t *trace.Trace) int {
	n := headerFixed + len(t.Run) + len(t.Suite) + len(t.Platform)
	for i := range t.Intervals {
		n += 4 + frameSize(&t.Intervals[i])
	}
	return n
}

func frameSize(iv *trace.Interval) int {
	return frameFixed +
		8*len(iv.PerCoreVF) +
		8*arch.NumEvents*len(iv.Counters) +
		len(iv.Busy) +
		8*len(iv.TrueCoreDynW)
}

// ensure grows the scratch buffer to at least n usable bytes. It is the
// encoder's sanctioned amortized slow path: after the first call at a
// given campaign shape, subsequent Encodes reuse the buffer.
func (e *Encoder) ensure(n int) {
	if cap(e.buf) < n {
		e.buf = make([]byte, n)
	}
	e.buf = e.buf[:cap(e.buf)]
}

// Encode serializes t into the encoder's scratch buffer and returns the
// encoded bytes (aliasing the buffer — copy before the next Encode if
// retained). The error is non-nil only for names longer than 64 KiB.
//
//ppep:hotpath
func (e *Encoder) Encode(t *trace.Trace) ([]byte, error) {
	if len(t.Run) > math.MaxUint16 || len(t.Suite) > math.MaxUint16 || len(t.Platform) > math.MaxUint16 {
		return nil, ErrTooLong
	}
	// Size on its own line: the allow below must cover only ensure's
	// amortized growth, while encodedSize stays hotpath-verified.
	n := encodedSize(t)
	e.ensure(n) //ppep:allow hotpath amortized buffer growth; steady-state Encodes reuse the scratch buffer
	b := e.buf
	off := copy(b, magic)
	binary.LittleEndian.PutUint32(b[off:], SchemaVersion)
	off += 4
	binary.LittleEndian.PutUint32(b[off:], arch.NumEvents)
	off += 4
	off = putName(b, off, t.Run)
	off = putName(b, off, t.Suite)
	off = putName(b, off, t.Platform)
	binary.LittleEndian.PutUint32(b[off:], uint32(len(t.Intervals)))
	off += 4
	for i := range t.Intervals {
		iv := &t.Intervals[i]
		binary.LittleEndian.PutUint32(b[off:], uint32(frameSize(iv)))
		off += 4
		off = putFrame(b, off, iv)
	}
	return b[:off], nil
}

func putName(b []byte, off int, s string) int {
	binary.LittleEndian.PutUint16(b[off:], uint16(len(s)))
	off += 2
	return off + copy(b[off:], s)
}

func putF64(b []byte, off int, x float64) int {
	binary.LittleEndian.PutUint64(b[off:], math.Float64bits(x))
	return off + 8
}

func putFrame(b []byte, off int, iv *trace.Interval) int {
	off = putF64(b, off, iv.TimeS)
	off = putF64(b, off, iv.DurS)
	off = putF64(b, off, iv.TempK)
	off = putF64(b, off, iv.MeasPowerW)
	off = putF64(b, off, iv.TruePowerW)
	off = putF64(b, off, iv.TrueCoreW)
	off = putF64(b, off, iv.TrueNBW)
	binary.LittleEndian.PutUint32(b[off:], uint32(len(iv.PerCoreVF)))
	off += 4
	for _, s := range iv.PerCoreVF {
		binary.LittleEndian.PutUint64(b[off:], uint64(int64(s)))
		off += 8
	}
	binary.LittleEndian.PutUint32(b[off:], uint32(len(iv.Counters)))
	off += 4
	for ci := range iv.Counters {
		for _, x := range iv.Counters[ci] {
			off = putF64(b, off, x)
		}
	}
	binary.LittleEndian.PutUint32(b[off:], uint32(len(iv.Busy)))
	off += 4
	for _, busy := range iv.Busy {
		if busy {
			b[off] = 1
		} else {
			b[off] = 0
		}
		off++
	}
	binary.LittleEndian.PutUint32(b[off:], uint32(len(iv.TrueCoreDynW)))
	off += 4
	for _, w := range iv.TrueCoreDynW {
		off = putF64(b, off, w)
	}
	return off
}

// reader is a bounds-checked cursor; every take sets ok=false instead
// of slicing past the end, so corrupt input degrades to an error.
type reader struct {
	b   []byte
	off int
	ok  bool
}

func (r *reader) take(n int) []byte {
	if !r.ok || n < 0 || len(r.b)-r.off < n {
		r.ok = false
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

func (r *reader) u16() uint16 {
	if s := r.take(2); s != nil {
		return binary.LittleEndian.Uint16(s)
	}
	return 0
}

func (r *reader) u32() uint32 {
	if s := r.take(4); s != nil {
		return binary.LittleEndian.Uint32(s)
	}
	return 0
}

func (r *reader) u64() uint64 {
	if s := r.take(8); s != nil {
		return binary.LittleEndian.Uint64(s)
	}
	return 0
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) name() string { return string(r.take(int(r.u16()))) }

// rem returns the unread byte count.
func (r *reader) rem() int { return len(r.b) - r.off }

// Decode parses an encoded trace. Zero-length per-interval slices
// decode as nil (the codec does not distinguish nil from empty).
func Decode(data []byte) (*trace.Trace, error) {
	r := &reader{b: data, ok: true}
	if string(r.take(4)) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := r.u32(); v != SchemaVersion {
		return nil, fmt.Errorf("%w: schema version %d, want %d", ErrSchema, v, SchemaVersion)
	}
	if ne := r.u32(); ne != arch.NumEvents {
		return nil, fmt.Errorf("%w: event vector width %d, want %d", ErrSchema, ne, arch.NumEvents)
	}
	t := &trace.Trace{}
	t.Run = r.name()
	t.Suite = r.name()
	t.Platform = r.name()
	nIv := int(r.u32())
	if !r.ok {
		return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	// Each interval costs at least 4 (frameLen) + frameFixed bytes, so a
	// count implying more data than present is rejected before allocating.
	if nIv < 0 || nIv > r.rem()/(4+frameFixed) {
		return nil, fmt.Errorf("%w: interval count %d exceeds data", ErrCorrupt, nIv)
	}
	if nIv > 0 {
		t.Intervals = make([]trace.Interval, nIv)
	}
	for i := range t.Intervals {
		frameLen := int(r.u32())
		frame := r.take(frameLen)
		if frame == nil {
			return nil, fmt.Errorf("%w: truncated at interval %d", ErrCorrupt, i)
		}
		if err := decodeFrame(frame, &t.Intervals[i]); err != nil {
			return nil, fmt.Errorf("interval %d: %w", i, err)
		}
	}
	if r.rem() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, r.rem())
	}
	return t, nil
}

func decodeFrame(frame []byte, iv *trace.Interval) error {
	r := &reader{b: frame, ok: true}
	iv.TimeS = r.f64()
	iv.DurS = r.f64()
	iv.TempK = r.f64()
	iv.MeasPowerW = r.f64()
	iv.TruePowerW = r.f64()
	iv.TrueCoreW = r.f64()
	iv.TrueNBW = r.f64()

	nVF := int(r.u32())
	if !r.ok || nVF < 0 || nVF > r.rem()/8 {
		return fmt.Errorf("%w: bad VF count", ErrCorrupt)
	}
	if nVF > 0 {
		iv.PerCoreVF = make([]arch.VFState, nVF)
	}
	for i := range iv.PerCoreVF {
		iv.PerCoreVF[i] = arch.VFState(int64(r.u64()))
	}

	nCtr := int(r.u32())
	if !r.ok || nCtr < 0 || nCtr > r.rem()/(8*arch.NumEvents) {
		return fmt.Errorf("%w: bad counter count", ErrCorrupt)
	}
	if nCtr > 0 {
		iv.Counters = make([]arch.EventVec, nCtr)
	}
	for i := range iv.Counters {
		for j := range iv.Counters[i] {
			iv.Counters[i][j] = r.f64()
		}
	}

	nBusy := int(r.u32())
	if !r.ok || nBusy < 0 || nBusy > r.rem() {
		return fmt.Errorf("%w: bad busy count", ErrCorrupt)
	}
	if nBusy > 0 {
		iv.Busy = make([]bool, nBusy)
	}
	for i := range iv.Busy {
		switch b := r.take(1); {
		case b == nil:
			return fmt.Errorf("%w: truncated busy flags", ErrCorrupt)
		case b[0] == 1:
			iv.Busy[i] = true
		case b[0] != 0:
			return fmt.Errorf("%w: busy flag byte %#x", ErrCorrupt, b[0])
		}
	}

	nDyn := int(r.u32())
	if !r.ok || nDyn < 0 || nDyn > r.rem()/8 {
		return fmt.Errorf("%w: bad dyn-power count", ErrCorrupt)
	}
	if nDyn > 0 {
		iv.TrueCoreDynW = make([]float64, nDyn)
	}
	for i := range iv.TrueCoreDynW {
		iv.TrueCoreDynW[i] = r.f64()
	}

	if !r.ok {
		return fmt.Errorf("%w: truncated frame", ErrCorrupt)
	}
	if r.rem() != 0 {
		return fmt.Errorf("%w: %d trailing frame bytes", ErrCorrupt, r.rem())
	}
	return nil
}
