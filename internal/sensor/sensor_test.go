package sensor

import (
	"math"
	"testing"
)

func TestIdealIsIdentityAboveZero(t *testing.T) {
	s := Ideal()
	for _, w := range []float64{0, 1.5, 42.42, 130} {
		if got := s.Sample(w); got != w {
			t.Errorf("Sample(%v) = %v", w, got)
		}
	}
}

func TestVRMLossScalesUp(t *testing.T) {
	s := New(0.9, 0, 0, 1)
	if got := s.Sample(90); math.Abs(got-100) > 1e-9 {
		t.Errorf("Sample(90) = %v, want 100", got)
	}
}

func TestQuantization(t *testing.T) {
	s := New(1, 0, 0.5, 1)
	if got := s.Sample(10.2); got != 10.0 {
		t.Errorf("Sample(10.2) = %v, want 10.0", got)
	}
	if got := s.Sample(10.3); got != 10.5 {
		t.Errorf("Sample(10.3) = %v, want 10.5", got)
	}
}

func TestNoiseStatistics(t *testing.T) {
	s := New(1, 0.35, 0, 7)
	const n = 20000
	var sum, sq float64
	for i := 0; i < n; i++ {
		r := s.Sample(50)
		sum += r
		sq += (r - 50) * (r - 50)
	}
	mean := sum / n
	sd := math.Sqrt(sq / n)
	if math.Abs(mean-50) > 0.02 {
		t.Errorf("mean %v, want ≈50", mean)
	}
	if math.Abs(sd-0.35) > 0.03 {
		t.Errorf("sd %v, want ≈0.35", sd)
	}
}

func TestNeverNegative(t *testing.T) {
	s := New(1, 5, 0, 3)
	for i := 0; i < 1000; i++ {
		if got := s.Sample(0.1); got < 0 {
			t.Fatalf("negative reading %v", got)
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := Default(99)
	b := Default(99)
	for i := 0; i < 100; i++ {
		if a.Sample(60) != b.Sample(60) {
			t.Fatal("same seed produced different readings")
		}
	}
}

func TestDefaultConfig(t *testing.T) {
	s := Default(1)
	if s.VRMEfficiency != 0.92 || s.NoiseSD != 0.8 || s.QuantW != 0.4 {
		t.Errorf("unexpected default config %+v", s)
	}
}
