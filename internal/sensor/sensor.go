// Package sensor emulates the paper's power measurement apparatus: a
// Pololu ACS711 Hall-effect current sensor clamped on the +12 V ATX line
// of the CPU, sampled by an Arduino AVR microcontroller every 20 ms
// (Section II). What the models train on is this measured signal — VRM
// conversion loss, ADC quantization, and sensor noise included — exactly
// as on the real testbed.
package sensor

import "math/rand"

// PowerSensor produces 20 ms power readings from the true chip power.
type PowerSensor struct {
	// VRMEfficiency is the voltage-regulator efficiency: the 12 V line
	// carries chip power divided by this factor.
	VRMEfficiency float64
	// NoiseSD is the Gaussian noise σ of one reading, in watts.
	NoiseSD float64
	// QuantW is the ADC quantization step in watts (ACS711 through a
	// 10-bit AVR ADC ≈ 0.4 W at 12 V).
	QuantW float64

	rng *rand.Rand
}

// New returns a sensor with the given measurement imperfections. A nil-safe
// deterministic RNG is seeded from `seed`.
func New(vrmEff, noiseSD, quantW float64, seed int64) *PowerSensor {
	return &PowerSensor{
		VRMEfficiency: vrmEff,
		NoiseSD:       noiseSD,
		QuantW:        quantW,
		rng:           rand.New(rand.NewSource(seed)),
	}
}

// Default returns the sensor configuration used across experiments:
// 92% VRM efficiency, 0.8 W reading noise, 0.4 W quantization.
func Default(seed int64) *PowerSensor { return New(0.92, 0.8, 0.4, seed) }

// Sample converts one instantaneous true chip power into a sensor reading.
func (s *PowerSensor) Sample(trueChipW float64) float64 {
	w := trueChipW
	if s.VRMEfficiency > 0 {
		w /= s.VRMEfficiency
	}
	if s.NoiseSD > 0 {
		w += s.rng.NormFloat64() * s.NoiseSD
	}
	if s.QuantW > 0 {
		steps := int(w/s.QuantW + 0.5)
		w = float64(steps) * s.QuantW
	}
	if w < 0 {
		w = 0
	}
	return w
}

// Ideal returns a noiseless, lossless sensor (oracle ablations).
func Ideal() *PowerSensor { return New(1, 0, 0, 1) }
