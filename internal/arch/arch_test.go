package arch

import (
	"testing"
	"testing/quick"
)

func TestVFTableOrdering(t *testing.T) {
	for _, tbl := range []struct {
		name string
		tab  VFTable
	}{
		{"FX8320", FX8320VFTable},
		{"PhenomII", PhenomIIVFTable},
	} {
		t.Run(tbl.name, func(t *testing.T) {
			for i := 1; i < len(tbl.tab); i++ {
				if tbl.tab[i].Freq <= tbl.tab[i-1].Freq {
					t.Errorf("state %d freq %.3f not above state %d freq %.3f",
						i+1, tbl.tab[i].Freq, i, tbl.tab[i-1].Freq)
				}
				if tbl.tab[i].Voltage < tbl.tab[i-1].Voltage {
					t.Errorf("state %d voltage %.3f below state %d voltage %.3f",
						i+1, tbl.tab[i].Voltage, i, tbl.tab[i-1].Voltage)
				}
			}
		})
	}
}

func TestFX8320PaperPoints(t *testing.T) {
	// Section II gives the exact five points.
	want := map[VFState]VFPoint{
		VF5: {1.320, 3.5},
		VF4: {1.242, 2.9},
		VF3: {1.128, 2.3},
		VF2: {1.008, 1.7},
		VF1: {0.888, 1.4},
	}
	for s, p := range want {
		got := FX8320VFTable.Point(s)
		if got != p {
			t.Errorf("%s: got %+v want %+v", s, got, p)
		}
	}
}

func TestVFTableAccessors(t *testing.T) {
	tab := FX8320VFTable
	if tab.Top() != VF5 {
		t.Errorf("Top() = %v, want VF5", tab.Top())
	}
	if tab.Bottom() != VF1 {
		t.Errorf("Bottom() = %v, want VF1", tab.Bottom())
	}
	states := tab.States()
	if len(states) != 5 || states[0] != VF1 || states[4] != VF5 {
		t.Errorf("States() = %v", states)
	}
	if !tab.Contains(VF3) || tab.Contains(0) || tab.Contains(6) {
		t.Error("Contains misclassified states")
	}
	if PhenomIIVFTable.Contains(VF5) {
		t.Error("PhenomII should not contain VF5")
	}
}

func TestVFStateString(t *testing.T) {
	if VF3.String() != "VF3" {
		t.Errorf("got %q", VF3.String())
	}
}

func TestTableIEventCodes(t *testing.T) {
	// Table I verbatim.
	want := map[EventID]uint16{
		RetiredUOP:              0x0c1,
		FPUPipeAssignment:       0x000,
		InstructionCacheFetches: 0x080,
		DataCacheAccesses:       0x040,
		RequestToL2Cache:        0x07d,
		RetiredBranches:         0x0c2,
		RetiredMispredBranches:  0x0c3,
		L2CacheMisses:           0x07e,
		DispatchStalls:          0x0d1,
		CPUClocksNotHalted:      0x076,
		RetiredInstructions:     0x0c0,
		MABWaitCycles:           0x069,
	}
	for id, code := range want {
		if Info(id).Code != code {
			t.Errorf("event %d: code %#x, want %#x", id, Info(id).Code, code)
		}
		if Info(id).ID != id {
			t.Errorf("event %d: mismatched ID %d", id, Info(id).ID)
		}
	}
	if len(want) != NumEvents {
		t.Fatalf("expected %d events in Table I check", NumEvents)
	}
}

func TestEventVecGetSet(t *testing.T) {
	var v EventVec
	v.Set(DispatchStalls, 42)
	if v.Get(DispatchStalls) != 42 {
		t.Errorf("Get after Set = %v", v.Get(DispatchStalls))
	}
	if v.Get(RetiredUOP) != 0 {
		t.Errorf("untouched entry = %v", v.Get(RetiredUOP))
	}
}

func TestEventVecAddScale(t *testing.T) {
	var a, b EventVec
	a.Set(RetiredUOP, 1)
	a.Set(MABWaitCycles, 3)
	b.Set(RetiredUOP, 2)
	a.Add(b)
	if a.Get(RetiredUOP) != 3 || a.Get(MABWaitCycles) != 3 {
		t.Errorf("Add result %+v", a)
	}
	s := a.Scale(2)
	if s.Get(RetiredUOP) != 6 || s.Get(MABWaitCycles) != 6 {
		t.Errorf("Scale result %+v", s)
	}
	// Scale is by-value; a must be unchanged.
	if a.Get(RetiredUOP) != 3 {
		t.Errorf("Scale mutated receiver: %+v", a)
	}
}

func TestEventVecPowerEvents(t *testing.T) {
	var v EventVec
	for i := EventID(1); i <= NumEvents; i++ {
		v.Set(i, float64(i))
	}
	p := v.PowerEvents()
	if len(p) != NumPowerEvents {
		t.Fatalf("len = %d", len(p))
	}
	for i, x := range p {
		if x != float64(i+1) {
			t.Errorf("p[%d] = %v", i, x)
		}
	}
}

func TestEventVecAddCommutes(t *testing.T) {
	f := func(a, b [NumEvents]float64) bool {
		va, vb := EventVec(a), EventVec(b)
		x, y := va, vb
		x.Add(vb)
		y.Add(va)
		return x == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTopology(t *testing.T) {
	if FX8320.NumCores() != 8 {
		t.Errorf("FX cores = %d", FX8320.NumCores())
	}
	if PhenomII.NumCores() != 6 {
		t.Errorf("Phenom cores = %d", PhenomII.NumCores())
	}
	if FX8320.CUOf(0) != 0 || FX8320.CUOf(1) != 0 || FX8320.CUOf(2) != 1 || FX8320.CUOf(7) != 3 {
		t.Error("FX CUOf mapping wrong")
	}
	if PhenomII.CUOf(5) != 5 {
		t.Error("Phenom CUOf mapping wrong")
	}
	if !FX8320.HasPowerGating || PhenomII.HasPowerGating {
		t.Error("power gating flags wrong")
	}
}

func TestNBPoints(t *testing.T) {
	// Section V-C2: VF_lo is a 20% voltage drop and 50% frequency drop.
	if NBLo.Freq != NBHi.Freq/2 {
		t.Errorf("NB low freq %v, want half of %v", NBLo.Freq, NBHi.Freq)
	}
	ratio := NBLo.Voltage / NBHi.Voltage
	if ratio < 0.79 || ratio > 0.81 {
		t.Errorf("NB voltage ratio %.3f, want ~0.80", ratio)
	}
}

func TestMethodologyTiming(t *testing.T) {
	if DecisionIntervalMS/PowerSamplePeriodMS != 10 {
		t.Error("paper uses 10 power readings per decision interval")
	}
}
