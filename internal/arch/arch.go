// Package arch defines the shared architectural vocabulary of the PPEP
// reproduction: voltage-frequency (VF) state tables, hardware event
// identifiers, chip topology descriptions, and the microarchitectural
// constants the paper's models depend on.
//
// Everything in this package mirrors Section II ("Experimental
// Methodology") and Table I of the paper. Both evaluation platforms — the
// AMD FX-8320 (primary) and the AMD Phenom II X6 1090T (secondary) — are
// described here so the simulator and the models can be instantiated for
// either.
package arch

import (
	"fmt"

	"ppep/internal/units"
)

// VFState identifies a software-visible voltage-frequency state. The paper
// numbers states VF1 (lowest) through VF5 (highest); we preserve that
// numbering, so a VFState is 1-based.
type VFState int

// The five FX-8320 states from Section II. Phenom II uses VF1..VF4.
const (
	VF1 VFState = 1
	VF2 VFState = 2
	VF3 VFState = 3
	VF4 VFState = 4
	VF5 VFState = 5
)

// String returns the paper's name for the state ("VF3").
func (s VFState) String() string { return fmt.Sprintf("VF%d", int(s)) }

// VFPoint is one operating point: a core voltage and clock frequency.
type VFPoint struct {
	Voltage units.Volts
	Freq    units.GigaHertz
}

// VFTable is an ordered list of operating points, index 0 holding VF1.
// Higher indices are strictly faster and at equal-or-higher voltage.
type VFTable []VFPoint

// Point returns the operating point for state s.
func (t VFTable) Point(s VFState) VFPoint { return t[int(s)-1] }

// States returns all states in ascending order (VF1 first).
func (t VFTable) States() []VFState {
	out := make([]VFState, len(t))
	for i := range t {
		out[i] = VFState(i + 1)
	}
	return out
}

// Top returns the highest (fastest) state in the table.
func (t VFTable) Top() VFState { return VFState(len(t)) }

// Bottom returns the lowest (slowest) state in the table.
func (t VFTable) Bottom() VFState { return VF1 }

// Contains reports whether s is a valid state of this table.
func (t VFTable) Contains(s VFState) bool { return s >= 1 && int(s) <= len(t) }

// FX8320VFTable is the five-state table measured on the paper's AMD
// FX-8320: VF5 (1.320 V, 3.5 GHz) down to VF1 (0.888 V, 1.4 GHz).
var FX8320VFTable = VFTable{
	{Voltage: 0.888, Freq: 1.4}, // VF1
	{Voltage: 1.008, Freq: 1.7}, // VF2
	{Voltage: 1.128, Freq: 2.3}, // VF3
	{Voltage: 1.242, Freq: 2.9}, // VF4
	{Voltage: 1.320, Freq: 3.5}, // VF5
}

// PhenomIIVFTable is a four-state table for the AMD Phenom II X6 1090T
// secondary platform. The paper does not print the exact points; these are
// the standard 1090T P-states (3.2 GHz nominal, 800 MHz floor).
var PhenomIIVFTable = VFTable{
	{Voltage: 0.950, Freq: 0.8}, // VF1
	{Voltage: 1.100, Freq: 1.6}, // VF2
	{Voltage: 1.250, Freq: 2.4}, // VF3
	{Voltage: 1.350, Freq: 3.2}, // VF4
}

// North-bridge operating points used in the Section V-C2 what-if study:
// the stock NB state and the hypothetical low state (20% voltage drop, 50%
// frequency drop).
var (
	NBHi = VFPoint{Voltage: 1.175, Freq: 2.2}
	NBLo = VFPoint{Voltage: 0.940, Freq: 1.1}
)

// EventID identifies one of the twelve hardware events of Table I.
// E1–E9 feed the dynamic power model; E10–E12 feed the performance model.
type EventID int

const (
	RetiredUOP              EventID = iota + 1 // E1, PMCx0c1
	FPUPipeAssignment                          // E2, PMCx000
	InstructionCacheFetches                    // E3, PMCx080
	DataCacheAccesses                          // E4, PMCx040
	RequestToL2Cache                           // E5, PMCx07d
	RetiredBranches                            // E6, PMCx0c2
	RetiredMispredBranches                     // E7, PMCx0c3
	L2CacheMisses                              // E8, PMCx07e
	DispatchStalls                             // E9, PMCx0d1
	CPUClocksNotHalted                         // E10, PMCx076
	RetiredInstructions                        // E11, PMCx0c0
	MABWaitCycles                              // E12, PMCx069
)

// NumEvents is the number of hardware events PPEP samples (Table I).
const NumEvents = 12

// NumPowerEvents is the number of events feeding the dynamic power model
// (E1–E9).
const NumPowerEvents = 9

// EventInfo describes one Table I row.
type EventInfo struct {
	ID   EventID
	Code uint16 // AMD family-15h PERF_CTL event select code
	Name string
}

// Events is Table I verbatim.
var Events = [NumEvents]EventInfo{
	{RetiredUOP, 0x0c1, "Retired UOP"},
	{FPUPipeAssignment, 0x000, "FPU Pipe Assignment"},
	{InstructionCacheFetches, 0x080, "Instruction Cache Fetches"},
	{DataCacheAccesses, 0x040, "Data Cache Accesses"},
	{RequestToL2Cache, 0x07d, "Request To L2 Cache"},
	{RetiredBranches, 0x0c2, "Retired Branch Instructions"},
	{RetiredMispredBranches, 0x0c3, "Retired Mispredicted Branch Instructions"},
	{L2CacheMisses, 0x07e, "L2 Cache Misses"},
	{DispatchStalls, 0x0d1, "Dispatch Stalls"},
	{CPUClocksNotHalted, 0x076, "CPU Clocks not Halted"},
	{RetiredInstructions, 0x0c0, "Retired Instructions"},
	{MABWaitCycles, 0x069, "MAB Wait Cycles"},
}

// Info returns the Table I row for id.
func Info(id EventID) EventInfo { return Events[int(id)-1] }

// EventVec holds one count (or rate) per Table I event, indexed by
// EventID-1. The zero value is all-zero counts.
type EventVec [NumEvents]float64

// Get returns the entry for id.
func (v EventVec) Get(id EventID) float64 { return v[int(id)-1] }

// Set assigns the entry for id.
func (v *EventVec) Set(id EventID, x float64) { v[int(id)-1] = x }

// Add accumulates o into v element-wise.
func (v *EventVec) Add(o EventVec) {
	for i := range v {
		v[i] += o[i]
	}
}

// Scale multiplies every entry by k and returns the result.
func (v EventVec) Scale(k float64) EventVec {
	for i := range v {
		v[i] *= k
	}
	return v
}

// PowerEvents returns the E1–E9 prefix used by the dynamic power model.
func (v EventVec) PowerEvents() [NumPowerEvents]float64 {
	var out [NumPowerEvents]float64
	copy(out[:], v[:NumPowerEvents])
	return out
}

// Microarchitectural constants used by the paper's interval analysis
// (Equations 5 and 6).
const (
	// IssueWidth is the retire/issue width assumed by the event
	// predictor's interval analysis. AMD family 15h decodes and retires
	// up to four macro-ops per cycle.
	IssueWidth = 4.0

	// MisBranchPen is the branch misprediction penalty in cycles used to
	// approximate discarded cycles (Equation 5).
	MisBranchPen = 20.0
)

// Topology describes the core/compute-unit organization of a platform.
type Topology struct {
	Name         string
	NumCUs       int // compute units (FX: CU = 2 cores sharing L2; Phenom: 1 core per "CU")
	CoresPerCU   int
	L2PerCUBytes int64
	L3Bytes      int64
	VF           VFTable
	// HasPowerGating reports whether CU-level power gating is available
	// (FX-8320 yes, Phenom II no).
	HasPowerGating bool
	// HasPerCUPlanes enables per-CU voltage planes. Real FX hardware has
	// a single voltage rail; the paper's power-capping study (Section
	// V-B) assumes separate per-CU planes, so this is configurable.
	HasPerCUPlanes bool
}

// NumCores returns the total core count.
func (t Topology) NumCores() int { return t.NumCUs * t.CoresPerCU }

// CUOf returns the compute unit that owns core c.
func (t Topology) CUOf(core int) int { return core / t.CoresPerCU }

// FX8320 is the paper's primary platform: 4 CUs × 2 cores, 2 MB L2 per CU,
// 8 MB shared L3.
var FX8320 = Topology{
	Name:           "AMD FX-8320",
	NumCUs:         4,
	CoresPerCU:     2,
	L2PerCUBytes:   2 << 20,
	L3Bytes:        8 << 20,
	VF:             FX8320VFTable,
	HasPowerGating: true,
}

// PhenomII is the secondary platform: 6 cores, 512 KB private L2 each,
// 6 MB L3, no power gating.
var PhenomII = Topology{
	Name:           "AMD Phenom II X6 1090T",
	NumCUs:         6,
	CoresPerCU:     1,
	L2PerCUBytes:   512 << 10,
	L3Bytes:        6 << 20,
	VF:             PhenomIIVFTable,
	HasPowerGating: false,
}

// Timing constants of the measurement methodology (Section II).
const (
	// PowerSamplePeriod is the Hall-effect sensor sampling period.
	PowerSamplePeriodMS = 20
	// DecisionIntervalMS is the DVFS decision interval: ten power
	// samples per decision.
	DecisionIntervalMS = 200
)
