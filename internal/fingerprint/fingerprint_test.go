package fingerprint

import (
	"hash/fnv"
	"testing"
)

// TestPrimitivesMatchStdlibFNV cross-checks the inlined mixing against
// hash/fnv on the same byte stream.
func TestPrimitivesMatchStdlibFNV(t *testing.T) {
	ref := fnv.New64a()
	ref.Write([]byte{0x01, 0x02, 0x03})
	got := New().Byte(0x01).Byte(0x02).Byte(0x03).Sum()
	if got != ref.Sum64() {
		t.Fatalf("Byte mixing = %#x, stdlib fnv = %#x", got, ref.Sum64())
	}

	ref = fnv.New64a()
	ref.Write([]byte{0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11})
	if got := New().U64(0x1122334455667788).Sum(); got != ref.Sum64() {
		t.Fatalf("U64 is not little-endian FNV-1a: %#x vs %#x", got, ref.Sum64())
	}
}

func TestDistinguishesShapes(t *testing.T) {
	cases := [][2]any{
		{"", []string{}},      // empty string vs empty slice
		{nil, ""},             // nil vs empty string
		{int64(1), uint64(1)}, // signed vs unsigned
		{1.0, int64(1)},       // float vs int
		{true, int64(1)},      // bool vs int
		{[]string{"ab", "c"}, []string{"a", "bc"}}, // length prefix
		{0.0, negZero()}, // raw-bit floats: -0 != +0
	}
	for i, c := range cases {
		if Of(c[0]) == Of(c[1]) {
			t.Errorf("case %d: Of(%v) == Of(%v), want distinct", i, c[0], c[1])
		}
	}
}

func negZero() float64 {
	z := 0.0
	return -z
}

type inner struct {
	A float64
	b int // unexported: skipped
}

type outer struct {
	Name string
	In   *inner
	M    map[string]int
}

func TestStructsAndPointers(t *testing.T) {
	x := outer{Name: "x", In: &inner{A: 1.5, b: 7}, M: map[string]int{"k": 1, "j": 2}}
	y := outer{Name: "x", In: &inner{A: 1.5, b: 99}, M: map[string]int{"j": 2, "k": 1}}
	if Of(x) != Of(y) {
		t.Fatalf("equal exported content via distinct pointers must hash equal")
	}
	y.In.A = 1.5000001
	if Of(x) == Of(y) {
		t.Fatalf("field change through pointer must change hash")
	}
	var nilIn outer
	if Of(x) == Of(nilIn) {
		t.Fatalf("nil pointer vs populated must differ")
	}
}

func TestMapOrderIndependent(t *testing.T) {
	// Build maps with different insertion orders; hash must agree.
	a := map[int]string{}
	b := map[int]string{}
	for i := 0; i < 100; i++ {
		a[i] = "v"
	}
	for i := 99; i >= 0; i-- {
		b[i] = "v"
	}
	if Of(a) != Of(b) {
		t.Fatalf("map hashing must be insertion-order independent")
	}
}

func TestStability(t *testing.T) {
	// Pin one composite hash so accidental algorithm changes are caught
	// (changing it invalidates every on-disk cache; see docs/CACHE.md).
	got := Of(uint32(1), "collect", int64(-3), 0.01, []bool{true, false})
	const want = uint64(0x026f113a72f052c1)
	if got != want {
		t.Fatalf("composite fingerprint = %#x, pinned %#x (algorithm changed: bump tracecodec.SchemaVersion)", got, want)
	}
}

func TestPanicsOnFunc(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("hashing a func value must panic")
		}
	}()
	Of(func() {})
}
