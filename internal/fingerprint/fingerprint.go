// Package fingerprint derives stable FNV-1a content hashes from Go
// values. The simulation-trace cache (internal/simcache and the campaign
// layer above it) keys every cached cell by the fingerprint of its full
// identity — platform configuration, run definition, VF state, scale,
// sensor seed — so two cells collide only when every input that could
// influence the simulation is identical.
//
// Hashes are computed by a deterministic reflection walk in declaration
// order: the same value always produces the same hash within one schema
// of the hashed types, across processes and platforms. Renaming or
// reordering struct fields changes the hash — which is exactly the
// desired invalidation behaviour for a cache keyed on it (see
// docs/CACHE.md).
package fingerprint

import (
	"fmt"
	"math"
	"reflect"
	"sort"
)

// FNV-1a constants, shared with internal/trace's explicit mixing.
const (
	offset64 = uint64(14695981039346656037)
	prime64  = uint64(1099511628211)
)

// Hash is a running FNV-1a state. The zero value is NOT a valid state;
// start from New.
type Hash uint64

// New returns the FNV-1a offset basis.
func New() Hash { return Hash(offset64) }

// Byte folds one byte into the hash.
func (h Hash) Byte(b byte) Hash { return Hash((uint64(h) ^ uint64(b)) * prime64) }

// U64 folds a uint64 little-endian byte by byte.
func (h Hash) U64(x uint64) Hash {
	v := uint64(h)
	for i := 0; i < 8; i++ {
		v = (v ^ (x & 0xff)) * prime64
		x >>= 8
	}
	return Hash(v)
}

// I64 folds a signed integer via its two's-complement bits.
func (h Hash) I64(x int64) Hash { return h.U64(uint64(x)) }

// F64 folds a float64 via its raw IEEE-754 bits, so values that differ
// in even one mantissa bit hash differently and -0 differs from +0.
func (h Hash) F64(x float64) Hash { return h.U64(math.Float64bits(x)) }

// Str folds a string's length and bytes (the length prefix keeps
// concatenation ambiguities like "ab","c" vs "a","bc" apart).
func (h Hash) Str(s string) Hash {
	h = h.U64(uint64(len(s)))
	v := uint64(h)
	for i := 0; i < len(s); i++ {
		v = (v ^ uint64(s[i])) * prime64
	}
	return Hash(v)
}

// Sum returns the accumulated hash.
func (h Hash) Sum() uint64 { return uint64(h) }

// Of hashes every value in sequence with Value and returns the sum.
// It is the one-line form used to assemble cache keys.
func Of(vs ...any) uint64 {
	h := New()
	for _, v := range vs {
		h = h.Value(v)
	}
	return h.Sum()
}

// Kind tags keep differently-shaped values from colliding (e.g. the
// empty string vs the empty slice vs nil).
const (
	tagNil    = 0x01
	tagBool   = 0x02
	tagInt    = 0x03
	tagUint   = 0x04
	tagFloat  = 0x05
	tagString = 0x06
	tagSeq    = 0x07
	tagStruct = 0x08
	tagPtr    = 0x09
	tagMap    = 0x0a
)

// Value folds an arbitrary value into the hash by deterministic
// reflection walk: bools, integers, floats (raw bits), strings,
// slices/arrays (length + elements), structs (exported fields with
// their names, in declaration order; unexported fields are skipped),
// pointers and interfaces (nil marker, then the pointee), and maps
// (entry hashes, sorted). Channels and funcs panic: they have no
// content to address, and a cache key containing one is a bug.
func (h Hash) Value(v any) Hash {
	if v == nil {
		return h.Byte(tagNil)
	}
	return h.value(reflect.ValueOf(v))
}

func (h Hash) value(rv reflect.Value) Hash {
	switch rv.Kind() {
	case reflect.Bool:
		h = h.Byte(tagBool)
		if rv.Bool() {
			return h.Byte(1)
		}
		return h.Byte(0)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return h.Byte(tagInt).I64(rv.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return h.Byte(tagUint).U64(rv.Uint())
	case reflect.Float32, reflect.Float64:
		return h.Byte(tagFloat).F64(rv.Float())
	case reflect.String:
		return h.Byte(tagString).Str(rv.String())
	case reflect.Slice, reflect.Array:
		h = h.Byte(tagSeq).U64(uint64(rv.Len()))
		for i := 0; i < rv.Len(); i++ {
			h = h.value(rv.Index(i))
		}
		return h
	case reflect.Struct:
		t := rv.Type()
		h = h.Byte(tagStruct)
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			h = h.Str(f.Name).value(rv.Field(i))
		}
		return h
	case reflect.Pointer, reflect.Interface:
		if rv.IsNil() {
			return h.Byte(tagNil)
		}
		return h.Byte(tagPtr).value(rv.Elem())
	case reflect.Map:
		// Entry hashes are order-independent by construction: hash each
		// (key, value) pair separately, then fold the sorted pair hashes.
		h = h.Byte(tagMap).U64(uint64(rv.Len()))
		entries := make([]uint64, 0, rv.Len())
		it := rv.MapRange()
		for it.Next() {
			e := New().value(it.Key()).value(it.Value())
			entries = append(entries, e.Sum())
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i] < entries[j] })
		for _, e := range entries {
			h = h.U64(e)
		}
		return h
	default:
		panic(fmt.Sprintf("fingerprint: cannot hash %s value", rv.Kind()))
	}
}
