package simcache

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ppep/internal/arch"
	"ppep/internal/trace"
	"ppep/internal/tracecodec"
)

func testTrace(run string, n int) *trace.Trace {
	t := &trace.Trace{Run: run, Suite: "SPE", Platform: "fx8320"}
	for i := 0; i < n; i++ {
		t.Intervals = append(t.Intervals, trace.Interval{
			TimeS: float64(i) * 0.2, DurS: 0.2, TempK: 315, MeasPowerW: 80,
			TruePowerW: 81, TrueCoreW: 60, TrueNBW: 12,
			PerCoreVF:    []arch.VFState{5, 5},
			Counters:     []arch.EventVec{{1e9, 2e8}, {3e9, 4e8}},
			Busy:         []bool{true, false},
			TrueCoreDynW: []float64{7.5, 0.1},
		})
	}
	return t
}

func mustOpen(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMissThenHit(t *testing.T) {
	s := mustOpen(t, Options{})
	want := testTrace("433 x2", 5)
	computes := 0
	get := func() (*trace.Trace, error) {
		tr, err := s.GetOrCompute(42, func() (*trace.Trace, error) {
			computes++
			return want, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr, nil
	}

	tr1, _ := get()
	if computes != 1 || tr1.Fingerprint() != want.Fingerprint() {
		t.Fatalf("cold get: computes=%d", computes)
	}
	tr2, _ := get()
	if computes != 1 {
		t.Fatalf("warm get recomputed (computes=%d)", computes)
	}
	if tr2.Fingerprint() != want.Fingerprint() {
		t.Fatalf("warm get fingerprint differs from original")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Corrupt != 0 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
	if st.BytesWritten == 0 || st.BytesRead != st.BytesWritten {
		t.Fatalf("bytes read/written mismatch: %+v", st)
	}
}

func TestDistinctKeysDistinctEntries(t *testing.T) {
	s := mustOpen(t, Options{})
	a := testTrace("a", 1)
	b := testTrace("b", 2)
	ra, _ := s.GetOrCompute(1, func() (*trace.Trace, error) { return a, nil })
	rb, _ := s.GetOrCompute(2, func() (*trace.Trace, error) { return b, nil })
	if ra.Run != "a" || rb.Run != "b" {
		t.Fatalf("wrong traces back: %q %q", ra.Run, rb.Run)
	}
	ra2, _ := s.GetOrCompute(1, func() (*trace.Trace, error) { t.Fatal("recompute"); return nil, nil })
	if ra2.Fingerprint() != a.Fingerprint() {
		t.Fatalf("key 1 returned wrong trace")
	}
}

func TestCorruptEntryIsMissAndRecovers(t *testing.T) {
	s := mustOpen(t, Options{})
	want := testTrace("x", 3)
	if _, err := s.GetOrCompute(7, func() (*trace.Trace, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}
	// Truncate the entry on disk.
	path := s.path(7)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	computes := 0
	tr, err := s.GetOrCompute(7, func() (*trace.Trace, error) { computes++; return want, nil })
	if err != nil || computes != 1 {
		t.Fatalf("corrupt entry: err=%v computes=%d, want recompute", err, computes)
	}
	if tr.Fingerprint() != want.Fingerprint() {
		t.Fatalf("recomputed trace wrong")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("stats = %+v, want Corrupt=1", st)
	}
	// The rewritten entry must now hit.
	if _, err := s.GetOrCompute(7, func() (*trace.Trace, error) { t.Fatal("recompute"); return nil, nil }); err != nil {
		t.Fatal(err)
	}
}

func TestSchemaMismatchIsMiss(t *testing.T) {
	s := mustOpen(t, Options{})
	want := testTrace("x", 2)
	if _, err := s.GetOrCompute(9, func() (*trace.Trace, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(s.path(9))
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(data[4:], tracecodec.SchemaVersion+1)
	if err := os.WriteFile(s.path(9), data, 0o644); err != nil {
		t.Fatal(err)
	}
	computes := 0
	if _, err := s.GetOrCompute(9, func() (*trace.Trace, error) { computes++; return want, nil }); err != nil || computes != 1 {
		t.Fatalf("schema mismatch: err=%v computes=%d, want miss+recompute", err, computes)
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("stats = %+v, want Corrupt=1 (schema mismatch counts as undecodable)", st)
	}
}

func TestSingleflight(t *testing.T) {
	s := mustOpen(t, Options{})
	var computes atomic.Int64
	release := make(chan struct{})
	want := testTrace("sf", 2)

	const callers = 8
	var wg sync.WaitGroup
	results := make([]*trace.Trace, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := s.GetOrCompute(11, func() (*trace.Trace, error) {
				computes.Add(1)
				<-release
				return want, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = tr
		}(i)
	}
	// Let the goroutines pile up on the flight, then release the leader.
	for s.Stats().Coalesced < callers-1 {
		if computes.Load() > 1 {
			break
		}
	}
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times for one key, want 1", n)
	}
	for i, tr := range results {
		if tr == nil || tr.Fingerprint() != want.Fingerprint() {
			t.Fatalf("caller %d got wrong trace", i)
		}
	}
	if st := s.Stats(); st.Coalesced != callers-1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want Coalesced=%d Misses=1", st, callers-1)
	}
}

func TestComputeErrorNotCached(t *testing.T) {
	s := mustOpen(t, Options{})
	boom := errors.New("boom")
	if _, err := s.GetOrCompute(3, func() (*trace.Trace, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	computes := 0
	want := testTrace("ok", 1)
	tr, err := s.GetOrCompute(3, func() (*trace.Trace, error) { computes++; return want, nil })
	if err != nil || computes != 1 || tr.Fingerprint() != want.Fingerprint() {
		t.Fatalf("failed compute must not poison the key: err=%v computes=%d", err, computes)
	}
}

func TestNoTempFilesLeftBehind(t *testing.T) {
	s := mustOpen(t, Options{})
	for k := uint64(0); k < 5; k++ {
		key := k
		if _, err := s.GetOrCompute(key, func() (*trace.Trace, error) { return testTrace("t", int(key)+1), nil }); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
		if filepath.Ext(e.Name()) != ".pptc" {
			t.Fatalf("unexpected file %s in cache dir", e.Name())
		}
	}
	if len(entries) != 5 {
		t.Fatalf("%d entries, want 5", len(entries))
	}
}

func TestEviction(t *testing.T) {
	dir := t.TempDir()
	// Size the cap to hold roughly two entries.
	probe, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := probe.GetOrCompute(999, func() (*trace.Trace, error) { return testTrace("probe", 4), nil }); err != nil {
		t.Fatal(err)
	}
	entrySize := probe.Stats().BytesWritten
	if err := os.Remove(probe.path(999)); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir, Options{MaxBytes: 2*entrySize + entrySize/2})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 4; k++ {
		key := k
		if _, err := s.GetOrCompute(key, func() (*trace.Trace, error) { return testTrace("e", 4), nil }); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes so the oldest-first order is deterministic.
		tick(t, s.path(key), int(key))
	}
	st := s.Stats()
	if st.Evicted == 0 {
		t.Fatalf("stats = %+v, want evictions under a 2.5-entry cap after 4 writes", st)
	}
	// The newest entry must have survived.
	if _, err := os.Stat(s.path(3)); err != nil {
		t.Fatalf("newest entry evicted: %v", err)
	}
	var total int64
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		info, err := e.Info()
		if err == nil {
			total += info.Size()
		}
	}
	if total > s.opts.MaxBytes {
		t.Fatalf("cache %d bytes, cap %d", total, s.opts.MaxBytes)
	}
}

// tick pushes a file's mtime i seconds into the past-ordered sequence so
// eviction order is stable even on coarse-mtime filesystems.
func tick(t *testing.T, path string, i int) {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	mt := info.ModTime().Add(-time.Hour).Add(time.Duration(i) * 10 * time.Second)
	if err := os.Chtimes(path, mt, mt); err != nil {
		t.Fatal(err)
	}
}

func TestWriteFailureFailsOpen(t *testing.T) {
	if os.Getuid() == 0 {
		t.Skip("running as root: directory permissions are not enforced")
	}
	s := mustOpen(t, Options{})
	if err := os.Chmod(s.Dir(), 0o555); err != nil {
		t.Fatal(err)
	}
	defer func() {
		// best-effort: restore so t.TempDir cleanup can remove the directory
		_ = os.Chmod(s.Dir(), 0o755)
	}()
	want := testTrace("ro", 1)
	tr, err := s.GetOrCompute(5, func() (*trace.Trace, error) { return want, nil })
	if err != nil || tr.Fingerprint() != want.Fingerprint() {
		t.Fatalf("read-only cache must still return the computed trace: err=%v", err)
	}
	if st := s.Stats(); st.WriteErrors == 0 {
		t.Fatalf("stats = %+v, want WriteErrors > 0", st)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open("", Options{}); err == nil {
		t.Fatal("Open(\"\") must error")
	}
}
