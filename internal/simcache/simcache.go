// Package simcache is the persistent, content-addressed store for
// simulation traces. The campaign layer (internal/experiments) keys
// every deterministic simulation cell — benchmark collection, idle
// transients, power-gating sweep cells, Section V exploration runs —
// by a fingerprint of its full identity and asks the store to either
// decode the cached trace or run the simulation and persist the result.
//
// Properties (docs/CACHE.md):
//
//   - Content-addressed: one file per key, dir/<%016x key>.pptc, in the
//     tracecodec binary format. Keys already encode the codec schema
//     version, so a layout change simply misses and re-simulates.
//   - Atomic writes: entries are written to a temp file in the cache
//     directory and renamed into place, so readers (including other
//     processes) never observe a partial entry.
//   - Corruption-tolerant: an entry that fails to decode is counted,
//     best-effort removed, and treated as a miss — the cache can never
//     turn a damaged file into a wrong result.
//   - Singleflight: concurrent GetOrCompute calls for the same key
//     simulate once; followers block and share the leader's trace.
//   - Fail-open: write failures (read-only disk, ENOSPC) are counted
//     but never fail the campaign; the computed trace is returned.
//
// Cached traces are shared and must be treated as immutable by callers.
package simcache

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"ppep/internal/trace"
	"ppep/internal/tracecodec"
)

// Options configures a Store.
type Options struct {
	// MaxBytes caps the total size of cache entries; after each write
	// the oldest entries (by modification time) are evicted until the
	// total is back under the cap. 0 means unbounded.
	MaxBytes int64
}

// Stats is a snapshot of the store's counters.
type Stats struct {
	Hits         int64 // entries served by decoding a cached file
	Misses       int64 // absent entries (simulated and, normally, written)
	Corrupt      int64 // undecodable entries (damage or schema mismatch), treated as misses
	Coalesced    int64 // calls that shared another in-flight computation
	Evicted      int64 // entries removed by the MaxBytes cap
	WriteErrors  int64 // failed entry writes (the campaign proceeds regardless)
	BytesRead    int64 // encoded bytes decoded from cache
	BytesWritten int64 // encoded bytes persisted
}

// Store is an on-disk trace cache. It is safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	mu       sync.Mutex
	inflight map[uint64]*flight

	evictMu sync.Mutex

	encoders sync.Pool

	hits, misses, corrupt, coalesced atomic.Int64
	evicted, writeErrors             atomic.Int64
	bytesRead, bytesWritten          atomic.Int64
}

type flight struct {
	done chan struct{}
	tr   *trace.Trace
	err  error
}

// Open creates the cache directory if needed and returns a Store over it.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, errors.New("simcache: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("simcache: %w", err)
	}
	return &Store{
		dir:      dir,
		opts:     opts,
		inflight: map[uint64]*flight{},
		encoders: sync.Pool{New: func() any { return new(tracecodec.Encoder) }},
	}, nil
}

// Dir returns the cache directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(key uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%016x.pptc", key))
}

// get attempts a disk read. It returns (nil, false) on any miss —
// absent, unreadable, or undecodable — after updating the counters.
func (s *Store) get(key uint64) (*trace.Trace, bool) {
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, false
	}
	tr, err := tracecodec.Decode(data)
	if err != nil {
		s.corrupt.Add(1)
		// best-effort: a corrupt entry would miss forever; campaign correctness does not depend on the remove
		_ = os.Remove(s.path(key))
		return nil, false
	}
	s.hits.Add(1)
	s.bytesRead.Add(int64(len(data)))
	return tr, true
}

// GetOrCompute returns the cached trace for key, or runs compute,
// persists its result, and returns it. Concurrent calls with the same
// key compute once. compute errors are returned verbatim and nothing
// is cached for them.
func (s *Store) GetOrCompute(key uint64, compute func() (*trace.Trace, error)) (*trace.Trace, error) {
	if tr, ok := s.get(key); ok {
		return tr, nil
	}

	s.mu.Lock()
	if f, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		s.coalesced.Add(1)
		<-f.done
		return f.tr, f.err
	}
	f := &flight{done: make(chan struct{})}
	s.inflight[key] = f
	s.mu.Unlock()

	// Leader: re-check the disk (a previous leader in this or another
	// process may have finished between our miss and registration).
	tr, ok := s.get(key)
	if !ok {
		s.misses.Add(1)
		tr, f.err = compute()
		if f.err == nil {
			s.put(key, tr)
		}
	}
	f.tr = tr

	s.mu.Lock()
	delete(s.inflight, key)
	s.mu.Unlock()
	close(f.done)
	return f.tr, f.err
}

// put persists one entry via temp-file + rename. Failures are counted,
// never fatal: the cache fails open.
func (s *Store) put(key uint64, tr *trace.Trace) {
	enc := s.encoders.Get().(*tracecodec.Encoder)
	defer s.encoders.Put(enc)
	data, err := enc.Encode(tr)
	if err != nil {
		s.writeErrors.Add(1)
		return
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		s.writeErrors.Add(1)
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), s.path(key))
	}
	if werr != nil {
		s.writeErrors.Add(1)
		// best-effort: the failed temp file is garbage either way; rename failure already counted
		_ = os.Remove(tmp.Name())
		return
	}
	s.bytesWritten.Add(int64(len(data)))
	if s.opts.MaxBytes > 0 {
		s.evict(s.path(key))
	}
}

// evict removes oldest-first entries until the directory is under
// MaxBytes, never touching keep (the entry just written). Concurrent
// evictions coalesce: if one is running, later writers skip theirs.
func (s *Store) evict(keep string) {
	if !s.evictMu.TryLock() {
		return
	}
	defer s.evictMu.Unlock()

	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	type ent struct {
		path string
		info fs.FileInfo
	}
	var es []ent
	var total int64
	for _, de := range entries {
		if de.IsDir() || filepath.Ext(de.Name()) != ".pptc" {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		total += info.Size()
		es = append(es, ent{path: filepath.Join(s.dir, de.Name()), info: info})
	}
	sort.Slice(es, func(i, j int) bool {
		ti, tj := es[i].info.ModTime(), es[j].info.ModTime()
		if !ti.Equal(tj) {
			return ti.Before(tj)
		}
		return es[i].path < es[j].path
	})
	for _, e := range es {
		if total <= s.opts.MaxBytes {
			return
		}
		if e.path == keep {
			continue
		}
		if os.Remove(e.path) == nil {
			total -= e.info.Size()
			s.evicted.Add(1)
		}
	}
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:         s.hits.Load(),
		Misses:       s.misses.Load(),
		Corrupt:      s.corrupt.Load(),
		Coalesced:    s.coalesced.Load(),
		Evicted:      s.evicted.Load(),
		WriteErrors:  s.writeErrors.Load(),
		BytesRead:    s.bytesRead.Load(),
		BytesWritten: s.bytesWritten.Load(),
	}
}

// String renders the counters in the machine-greppable key=value form
// the CI warm-cache smoke step matches on.
func (st Stats) String() string {
	return fmt.Sprintf("hits=%d misses=%d corrupt=%d coalesced=%d evicted=%d write_errors=%d bytes_read=%d bytes_written=%d",
		st.Hits, st.Misses, st.Corrupt, st.Coalesced, st.Evicted, st.WriteErrors, st.BytesRead, st.BytesWritten)
}
