// Package pmc emulates the per-core performance monitoring hardware of
// the simulated CPU: six programmable counters per core and the
// time-multiplexing scheme PPEP uses to observe all twelve Table I events
// with them (Section IV-B1).
//
// Multiplexing is modelled honestly: events are split into two groups of
// six; each group counts during alternating 20 ms windows; a 200 ms
// interval read extrapolates each event's counts by the fraction of the
// interval its group was live (×2 for an even split). Programs whose
// phases flip faster than the window — the paper names dedup, IS, and DC —
// therefore show genuine multiplexing error, exactly the error source the
// paper blames for its outliers.
package pmc

import (
	"fmt"

	"ppep/internal/arch"
)

// CountersPerCore is the number of hardware counters each core provides
// (AMD family 15h has six).
const CountersPerCore = 6

// MuxWindowMS is the multiplexing rotation window in milliseconds.
const MuxWindowMS = 20

// Mux is the per-core multiplexed counter file. Feed it true per-tick
// event increments with Accumulate; read an extrapolated interval with
// ReadInterval.
type Mux struct {
	// Disabled turns multiplexing off: all twelve events count all the
	// time (an oracle mode used for ablation studies; real hardware
	// cannot do this with six counters).
	Disabled bool

	groupOf [arch.NumEvents]int // event index → group 0 or 1
	counts  arch.EventVec       // accumulated while live
	liveMS  [2]float64          // ms each group has been live this interval
	clockMS float64             // position within the mux rotation
}

// NewMux returns a multiplexer with the default group split:
// group 0 counts E1–E6, group 1 counts E7–E12. The performance-model
// events (E10–E12) share a group so their ratios (CPI, MCPI) stay
// self-consistent; the power-model events are split across both.
func NewMux() *Mux {
	m := &Mux{}
	for i := 0; i < arch.NumEvents; i++ {
		if i < CountersPerCore {
			m.groupOf[i] = 0
		} else {
			m.groupOf[i] = 1
		}
	}
	return m
}

// GroupOf reports the mux group of the given event.
func (m *Mux) GroupOf(id arch.EventID) int { return m.groupOf[int(id)-1] }

// Accumulate feeds the true event increments for a tick of dtMS
// milliseconds. Only the live group's events are recorded (unless the mux
// is disabled). Ticks must not straddle a window boundary; the standard
// 1 ms simulation tick divides the 20 ms window evenly.
//
//ppep:inline
func (m *Mux) Accumulate(inc arch.EventVec, dtMS float64) {
	live := int(m.clockMS/MuxWindowMS) % 2
	for i := 0; i < arch.NumEvents; i++ {
		if m.Disabled || m.groupOf[i] == live {
			m.counts[i] += inc[i]
		}
	}
	if m.Disabled {
		m.liveMS[0] += dtMS
		m.liveMS[1] += dtMS
	} else {
		m.liveMS[live] += dtMS
	}
	m.clockMS += dtMS
	if m.clockMS >= 2*MuxWindowMS {
		m.clockMS -= 2 * MuxWindowMS
	}
}

// ReadInterval returns the extrapolated event counts since the last read
// and resets the accumulation. intervalMS is the elapsed interval length;
// each event is scaled by intervalMS / liveMS(group) to estimate the full
// interval's count, as the msr-tools-based sampler does in the paper.
func (m *Mux) ReadInterval(intervalMS float64) arch.EventVec {
	var out arch.EventVec
	for i := 0; i < arch.NumEvents; i++ {
		g := m.groupOf[i]
		live := m.liveMS[g]
		if m.Disabled {
			live = intervalMS
		}
		if live > 0 {
			out[i] = m.counts[i] * intervalMS / live
		}
	}
	m.counts = arch.EventVec{}
	m.liveMS = [2]float64{}
	return out
}

// CounterFile is the register-level view of one core's counters, as the
// MSR interface exposes them: six event-select registers and six counter
// registers. It is intentionally simple — PPEP's sampler programs selects
// and reads counts — and is backed by the same true event stream as Mux.
type CounterFile struct {
	selects [CountersPerCore]uint16 // event codes; 0xFFFF = disabled
	counts  [CountersPerCore]uint64
}

// NewCounterFile returns a counter file with all counters disabled.
func NewCounterFile() *CounterFile {
	cf := &CounterFile{}
	for i := range cf.selects {
		cf.selects[i] = 0xFFFF
	}
	return cf
}

// Program assigns an event code to a counter slot.
func (cf *CounterFile) Program(slot int, code uint16) error {
	if slot < 0 || slot >= CountersPerCore {
		return fmt.Errorf("pmc: counter slot %d out of range", slot)
	}
	cf.selects[slot] = code
	cf.counts[slot] = 0
	return nil
}

// Read returns the current value of a counter slot.
func (cf *CounterFile) Read(slot int) (uint64, error) {
	if slot < 0 || slot >= CountersPerCore {
		return 0, fmt.Errorf("pmc: counter slot %d out of range", slot)
	}
	return cf.counts[slot], nil
}

// Write sets a counter register (sampling tools zero counters between
// reads).
func (cf *CounterFile) Write(slot int, v uint64) error {
	if slot < 0 || slot >= CountersPerCore {
		return fmt.Errorf("pmc: counter slot %d out of range", slot)
	}
	cf.counts[slot] = v
	return nil
}

// Accumulate advances every programmed counter by the matching event's
// increment. Counters wrap at 48 bits as on AMD hardware.
//
//ppep:inline
func (cf *CounterFile) Accumulate(inc arch.EventVec) {
	const mask = (uint64(1) << 48) - 1
	for slot, code := range cf.selects {
		if code == 0xFFFF {
			continue
		}
		for _, ev := range arch.Events {
			if ev.Code == code {
				cf.counts[slot] = (cf.counts[slot] + uint64(inc[int(ev.ID)-1])) & mask
				break
			}
		}
	}
}
