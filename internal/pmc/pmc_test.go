package pmc

import (
	"math"
	"testing"

	"ppep/internal/arch"
)

// steadyVec returns an increment vector with value v for every event.
func steadyVec(v float64) arch.EventVec {
	var ev arch.EventVec
	for i := range ev {
		ev[i] = v
	}
	return ev
}

func TestMuxGroupSplit(t *testing.T) {
	m := NewMux()
	// Performance events E10–E12 must share a group so CPI and MCPI
	// ratios stay consistent.
	g := m.GroupOf(arch.CPUClocksNotHalted)
	if m.GroupOf(arch.RetiredInstructions) != g || m.GroupOf(arch.MABWaitCycles) != g {
		t.Error("performance events split across mux groups")
	}
	// Exactly six events per group — that is the whole point of
	// multiplexing six counters.
	var n0, n1 int
	for i := arch.EventID(1); i <= arch.NumEvents; i++ {
		if m.GroupOf(i) == 0 {
			n0++
		} else {
			n1++
		}
	}
	if n0 != CountersPerCore || n1 != CountersPerCore {
		t.Errorf("group sizes %d/%d", n0, n1)
	}
}

func TestMuxSteadyWorkloadIsExact(t *testing.T) {
	// For a steady event stream, extrapolation reconstructs the true
	// counts exactly.
	m := NewMux()
	for tick := 0; tick < 200; tick++ { // 200 × 1 ms
		m.Accumulate(steadyVec(10), 1)
	}
	got := m.ReadInterval(200)
	for i, v := range got {
		if math.Abs(v-2000) > 1e-9 {
			t.Errorf("event %d: %v, want 2000", i+1, v)
		}
	}
}

func TestMuxPhaseChangeError(t *testing.T) {
	// A burst confined to one 20 ms window is over- or under-counted
	// depending on which group was live — the multiplexing error the
	// paper describes for rapidly phase-changing programs.
	m := NewMux()
	for tick := 0; tick < 200; tick++ {
		inc := steadyVec(0)
		if tick < 20 { // burst only in the first window (group 0 live)
			inc = steadyVec(100)
		}
		m.Accumulate(inc, 1)
	}
	got := m.ReadInterval(200)
	// True count is 2000 per event. Group 0 saw the burst and
	// extrapolates ×2 → 4000; group 1 never saw it → 0.
	e1 := got.Get(arch.RetiredUOP)          // group 0
	e10 := got.Get(arch.CPUClocksNotHalted) // group 1
	if math.Abs(e1-4000) > 1e-9 {
		t.Errorf("group-0 event = %v, want 4000 (over-extrapolated burst)", e1)
	}
	if e10 != 0 {
		t.Errorf("group-1 event = %v, want 0 (missed burst)", e10)
	}
}

func TestMuxDisabledIsOracle(t *testing.T) {
	m := NewMux()
	m.Disabled = true
	for tick := 0; tick < 200; tick++ {
		inc := steadyVec(0)
		if tick < 20 {
			inc = steadyVec(100)
		}
		m.Accumulate(inc, 1)
	}
	got := m.ReadInterval(200)
	for i, v := range got {
		if math.Abs(v-2000) > 1e-9 {
			t.Errorf("event %d: %v, want exact 2000", i+1, v)
		}
	}
}

func TestMuxReadResets(t *testing.T) {
	m := NewMux()
	for tick := 0; tick < 40; tick++ {
		m.Accumulate(steadyVec(5), 1)
	}
	m.ReadInterval(40)
	got := m.ReadInterval(40)
	for i, v := range got {
		if v != 0 {
			t.Errorf("event %d: %v after double read", i+1, v)
		}
	}
}

func TestMuxRotationContinuesAcrossReads(t *testing.T) {
	// The 20 ms rotation clock is not reset by reads; a read in the
	// middle of a window must not bias the next interval.
	m := NewMux()
	for tick := 0; tick < 30; tick++ {
		m.Accumulate(steadyVec(1), 1)
	}
	m.ReadInterval(30)
	// Now 10 ms into the group-1 window. Run a full balanced interval.
	for tick := 0; tick < 200; tick++ {
		m.Accumulate(steadyVec(1), 1)
	}
	got := m.ReadInterval(200)
	for i, v := range got {
		if math.Abs(v-200) > 1e-9 {
			t.Errorf("event %d: %v, want 200", i+1, v)
		}
	}
}

func TestMuxZeroLiveTime(t *testing.T) {
	m := NewMux()
	got := m.ReadInterval(200) // nothing accumulated
	for i, v := range got {
		if v != 0 {
			t.Errorf("event %d: %v on empty interval", i+1, v)
		}
	}
}

func TestCounterFileProgramReadWrite(t *testing.T) {
	cf := NewCounterFile()
	if err := cf.Program(0, arch.Info(arch.RetiredInstructions).Code); err != nil {
		t.Fatal(err)
	}
	if err := cf.Program(-1, 0); err == nil {
		t.Error("expected range error")
	}
	if err := cf.Program(CountersPerCore, 0); err == nil {
		t.Error("expected range error")
	}
	if _, err := cf.Read(9); err == nil {
		t.Error("expected range error")
	}
	if err := cf.Write(9, 0); err == nil {
		t.Error("expected range error")
	}

	var inc arch.EventVec
	inc.Set(arch.RetiredInstructions, 1234)
	cf.Accumulate(inc)
	v, err := cf.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1234 {
		t.Errorf("count = %d", v)
	}
	// Unprogrammed slots stay zero.
	if v, _ := cf.Read(1); v != 0 {
		t.Errorf("unprogrammed slot = %d", v)
	}
	// Writing resets.
	if err := cf.Write(0, 0); err != nil {
		t.Fatal(err)
	}
	if v, _ := cf.Read(0); v != 0 {
		t.Errorf("after write = %d", v)
	}
}

func TestCounterFileWraps48Bits(t *testing.T) {
	cf := NewCounterFile()
	if err := cf.Program(2, arch.Info(arch.RetiredUOP).Code); err != nil {
		t.Fatal(err)
	}
	if err := cf.Write(2, (1<<48)-1); err != nil {
		t.Fatal(err)
	}
	var inc arch.EventVec
	inc.Set(arch.RetiredUOP, 2)
	cf.Accumulate(inc)
	v, _ := cf.Read(2)
	if v != 1 {
		t.Errorf("wrapped count = %d, want 1", v)
	}
}

func TestMuxRelativeErrorBoundedForSlowPhases(t *testing.T) {
	// Phases slower than the window produce modest error; this guards
	// the extrapolation arithmetic (liveMS bookkeeping) against drift.
	m := NewMux()
	var truth float64
	for tick := 0; tick < 1000; tick++ {
		level := 10.0
		if (tick/200)%2 == 1 { // 200 ms phases
			level = 20.0
		}
		m.Accumulate(steadyVec(level), 1)
		truth += level
	}
	got := m.ReadInterval(1000)
	for i, v := range got {
		rel := math.Abs(v-truth) / truth
		if rel > 0.05 {
			t.Errorf("event %d: relative error %v too large for slow phases", i+1, rel)
		}
	}
}
