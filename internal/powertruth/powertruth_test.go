package powertruth

import (
	"math"
	"testing"
	"testing/quick"

	"ppep/internal/arch"
	"ppep/internal/units"
)

// busyActivity builds a plausible full-load activity at the given
// instructions-per-second rate.
func busyActivity(ips float64) Activity {
	var ev arch.EventVec
	ev.Set(arch.RetiredUOP, 1.3*ips)
	ev.Set(arch.FPUPipeAssignment, 0.5*ips)
	ev.Set(arch.InstructionCacheFetches, 0.25*ips)
	ev.Set(arch.DataCacheAccesses, 0.45*ips)
	ev.Set(arch.RequestToL2Cache, 0.02*ips)
	ev.Set(arch.RetiredBranches, 0.15*ips)
	ev.Set(arch.RetiredMispredBranches, 0.005*ips)
	ev.Set(arch.L2CacheMisses, 0.005*ips)
	ev.Set(arch.DispatchStalls, 0.3*ips)
	ev.Set(arch.CPUClocksNotHalted, 1.1*ips)
	ev.Set(arch.RetiredInstructions, ips)
	return Activity{Events: ev, PrefetchPS: 0.01 * ips, TLBWalkPS: 0.002 * ips}
}

func TestFullLoadChipPowerBallpark(t *testing.T) {
	// Eight busy cores at VF5 plus a loaded NB should land near the
	// FX-8320's real full-load draw (roughly 85–125 W).
	c := DefaultFX8320()
	b := Breakdown{BaseW: c.BaseW}
	for i := 0; i < 8; i++ {
		b.CoreDynW = append(b.CoreDynW, c.CoreDynamicW(busyActivity(4e9), 1.320, 3.5))
	}
	for cu := 0; cu < 4; cu++ {
		b.CULeakW = append(b.CULeakW, c.CULeakageW(1.320, 335, false))
	}
	b.NBDynW = c.NBDynamicW(NBActivity{L3AccessPS: 1.2e8, DRAMPS: 6e7}, 1.175, 2.2)
	b.NBLeakW = c.NBLeakageW(1.175, 335, false)
	b.HousekW = c.HousekeepingDynW(1.320, 3.5, 3.5)
	total := b.TotalW()
	if total < 120 || total > 230 {
		t.Errorf("full-load chip power %v W outside [120,230]", total)
	}
}

func TestIdlePowerBallpark(t *testing.T) {
	// Active idle (not gated) at VF5 should be ~25–45 W; at VF1 ~8–18 W.
	c := DefaultFX8320()
	idleAt := func(v units.Volts, f units.GigaHertz, tK units.Kelvin) units.Watts {
		total := c.BaseW + c.HousekeepingDynW(v, f, 3.5)
		for i := 0; i < 8; i++ {
			total += c.CoreDynamicW(Activity{Halted: true}, v, f)
		}
		for cu := 0; cu < 4; cu++ {
			total += c.CULeakageW(v, tK, false)
		}
		total += c.NBDynamicW(NBActivity{}, 1.175, 2.2)
		total += c.NBLeakageW(1.175, tK, false)
		return total
	}
	vf5 := idleAt(1.320, 3.5, 320)
	vf1 := idleAt(0.888, 1.4, 308)
	if vf5 < 25 || vf5 > 45 {
		t.Errorf("VF5 idle %v W outside [25,45]", vf5)
	}
	if vf1 < 8 || vf1 > 18 {
		t.Errorf("VF1 idle %v W outside [8,18]", vf1)
	}
	if vf1 >= vf5 {
		t.Error("idle power must drop with VF state")
	}
}

func TestDynamicMonotoneInVoltage(t *testing.T) {
	c := DefaultFX8320()
	a := busyActivity(3e9)
	prev := units.Watts(0)
	for _, v := range []units.Volts{0.888, 1.008, 1.128, 1.242, 1.320} {
		w := c.CoreDynamicW(a, v, 2.0)
		if w <= prev {
			t.Errorf("dynamic power not increasing at %v V: %v <= %v", v, w, prev)
		}
		prev = w
	}
}

func TestDynamicScalesWithActivity(t *testing.T) {
	c := DefaultFX8320()
	lo := c.CoreDynamicW(busyActivity(1e9), 1.32, 3.5)
	hi := c.CoreDynamicW(busyActivity(4e9), 1.32, 3.5)
	if hi <= lo {
		t.Error("more activity must burn more power")
	}
	// Clock power is the activity-independent floor.
	clockOnly := c.CoreDynamicW(Activity{}, 1.32, 3.5)
	if clockOnly <= 0 {
		t.Error("active clock power must be positive")
	}
	if lo <= clockOnly {
		t.Error("activity must add power above the clock floor")
	}
}

func TestHaltedCoreBurnsOnlyGatedClock(t *testing.T) {
	c := DefaultFX8320()
	halted := c.CoreDynamicW(Activity{Halted: true}, 1.32, 3.5)
	active := c.CoreDynamicW(Activity{}, 1.32, 3.5)
	if halted >= active {
		t.Error("halted core must burn less than active-idle core")
	}
	want := units.Watts(float64(c.ClockWPerGHz) * 3.5 * c.HaltedClockFrac)
	if math.Abs(float64(halted-want)) > 1e-9 {
		t.Errorf("halted clock %v, want %v", halted, want)
	}
}

func TestLeakageExponentialInTemperature(t *testing.T) {
	c := DefaultFX8320()
	cold := c.CULeakageW(1.32, 300, false)
	hot := c.CULeakageW(1.32, 340, false)
	ratio := hot.Per(cold)
	want := math.Exp(float64(c.LeakTExp) * 40)
	if math.Abs(ratio-want) > 1e-9 {
		t.Errorf("leakage T ratio %v, want %v", ratio, want)
	}
	if ratio < 1.3 || ratio > 2.2 {
		t.Errorf("40 K swing ratio %v implausible", ratio)
	}
}

func TestLeakageExponentialInVoltage(t *testing.T) {
	c := DefaultFX8320()
	lo := c.CULeakageW(0.888, 330, false)
	hi := c.CULeakageW(1.320, 330, false)
	if hi.Per(lo) < 2.5 || hi.Per(lo) > 8 {
		t.Errorf("voltage leakage ratio %v implausible", hi.Per(lo))
	}
}

func TestPowerGatingResidual(t *testing.T) {
	c := DefaultFX8320()
	open := c.CULeakageW(1.32, 330, false)
	gated := c.CULeakageW(1.32, 330, true)
	wantGated := units.Watts(float64(open) * c.GateResid)
	if math.Abs(float64(gated-wantGated)) > 1e-12 {
		t.Errorf("gated leakage %v, want %v", gated, wantGated)
	}
	openNB := c.NBLeakageW(1.175, 330, false)
	gatedNB := c.NBLeakageW(1.175, 330, true)
	if gatedNB >= openNB {
		t.Error("gated NB must leak less")
	}
}

func TestNBDynamicComponents(t *testing.T) {
	c := DefaultFX8320()
	idle := c.NBDynamicW(NBActivity{}, 1.175, 2.2)
	if math.Abs(float64(idle-c.NBClockWPerGHz.Times(2.2))) > 1e-9 {
		t.Errorf("NB idle clock %v", idle)
	}
	busy := c.NBDynamicW(NBActivity{L3AccessPS: 1e8, DRAMPS: 5e7}, 1.175, 2.2)
	if busy <= idle {
		t.Error("NB traffic must add power")
	}
	// The Section V-C2 assumption check: dropping NB voltage 20% cuts
	// dynamic energy per operation by ≈36% (V² scaling).
	opHi := c.NBDynamicW(NBActivity{DRAMPS: 1e8}, 1.175, 2.2) - c.NBDynamicW(NBActivity{}, 1.175, 2.2)
	opLo := c.NBDynamicW(NBActivity{DRAMPS: 1e8}, 0.940, 2.2) - c.NBDynamicW(NBActivity{}, 0.940, 2.2)
	if math.Abs(opLo.Per(opHi)-0.64) > 0.01 {
		t.Errorf("per-op NB energy scale %v, want ≈0.64", opLo.Per(opHi))
	}
}

func TestHousekeepingScales(t *testing.T) {
	c := DefaultFX8320()
	top := c.HousekeepingDynW(1.320, 3.5, 3.5)
	if math.Abs(float64(top-c.HousekeepingW)) > 1e-12 {
		t.Errorf("housekeeping at top = %v", top)
	}
	low := c.HousekeepingDynW(0.888, 1.4, 3.5)
	if low >= top {
		t.Error("housekeeping must scale down with VF")
	}
}

func TestBreakdownSums(t *testing.T) {
	b := Breakdown{
		CoreDynW: []units.Watts{1, 2},
		CULeakW:  []units.Watts{3},
		NBDynW:   4, NBLeakW: 5, BaseW: 6, HousekW: 7,
	}
	if b.TotalW() != 28 {
		t.Errorf("TotalW = %v", b.TotalW())
	}
	if b.CoreTotalW() != 13 {
		t.Errorf("CoreTotalW = %v", b.CoreTotalW())
	}
	if b.NBTotalW() != 15 {
		t.Errorf("NBTotalW = %v", b.NBTotalW())
	}
	if math.Abs(float64(b.TotalW()-(b.CoreTotalW()+b.NBTotalW()))) > 1e-12 {
		t.Error("core+NB split must cover the total")
	}
}

func TestEffectiveAlphaInPlausibleRange(t *testing.T) {
	// The truth's switching scale, fitted as (V/V5)^α over the VF table,
	// should give α ≈ 2–3 — the paper says α is a process constant
	// derived from measurement.
	c := DefaultFX8320()
	num, den := 0.0, 0.0
	for _, v := range []units.Volts{0.888, 1.008, 1.128, 1.242} {
		x := math.Log(v.Per(c.VRef))
		y := math.Log(c.switchScale(v))
		num += x * y
		den += x * x
	}
	alpha := num / den
	if alpha < 2.0 || alpha > 3.2 {
		t.Errorf("effective alpha %v outside [2.0, 3.2]", alpha)
	}
}

func TestSwitchScalePositiveProperty(t *testing.T) {
	c := DefaultFX8320()
	f := func(raw uint16) bool {
		v := 0.7 + units.Volts(raw)/units.Volts(1<<16)*0.8 // 0.7–1.5 V
		return c.switchScale(v) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPhenomConfigDiffers(t *testing.T) {
	fx := DefaultFX8320()
	ph := DefaultPhenomII()
	if ph.VRef == fx.VRef || ph.CULeakW == fx.CULeakW {
		t.Error("Phenom II config should differ from FX-8320")
	}
}
