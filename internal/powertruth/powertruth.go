// Package powertruth is the simulated chip's physical power model — the
// hidden ground truth that PPEP's estimators must learn from measurements.
//
// It is deliberately richer than PPEP's nine-event linear model (Eq. 3):
//
//   - switching energy scales as V²·(1+κ·(V−Vref)), not a clean (V/V5)^α;
//   - clock-tree/pipeline-clocking power is proportional to unhalted
//     cycles, which is not one of PPEP's nine inputs;
//   - prefetch and TLB-walk activity burn power but are invisible to any
//     counter;
//   - leakage is exponential in both voltage and temperature, while
//     PPEP's idle model is linear in T with polynomial-in-V coefficients;
//   - the NB's DRAM energy depends on the L3 miss ratio, which no
//     per-core event separates from L3 hits.
//
// The gap between this truth and PPEP's model structure is what produces
// honest, non-zero validation errors, as on real silicon.
package powertruth

import (
	"math"

	"ppep/internal/arch"
	"ppep/internal/units"
)

// Activity is one core's true activity during a time slice, in events per
// second (not per instruction).
type Activity struct {
	Events     arch.EventVec // true per-second rates for E1..E12
	PrefetchPS float64       //ppep:allow unitcheck EventVec-denominated per-second rate, kept raw like the vector it extends
	TLBWalkPS  float64       // unobservable: table walks per second
	// EPIScale is a hidden per-phase energy-per-event modulation (≈1):
	// real programs exercise different functional-unit mixes that no
	// nine-event model can separate. Zero means 1.
	EPIScale float64 //ppep:allow unitcheck dimensionless energy-per-event modulation around 1
	Halted   bool    // core idle (no workload bound)
}

// NBActivity is the shared north bridge's true activity per second.
type NBActivity struct {
	L3AccessPS float64 //ppep:allow unitcheck EventVec-denominated per-second rates, kept raw like the vector they extend
	DRAMPS     float64 // DRAM accesses per second
}

// Config holds the physical constants of the simulated chip. All switching
// energies are in nanojoules at VRef; leakage parameters are referenced to
// (VRef, T0K).
type Config struct {
	VRef units.Volts // core voltage reference (VF5 voltage)

	// Per-event switching energy for the observable core events
	// E1..E8 (E9, dispatch stalls, burns only clock power).
	EventNJ [8]units.NanoJoules
	// StallNJ is the energy per dispatch-stall cycle (clock+idle pipeline).
	StallNJ units.NanoJoules
	// PrefetchNJ and TLBWalkNJ are the unobservable activities' energies.
	PrefetchNJ, TLBWalkNJ units.NanoJoules
	// ClockWPerGHz is active clock-tree power per core per GHz at VRef.
	ClockWPerGHz units.WattsPerGigaHertz
	// HaltedClockFrac is the fraction of clock power that survives clock
	// gating when a core is halted.
	HaltedClockFrac float64 //ppep:allow unitcheck dimensionless clock-gating survival fraction
	// ShortCircuitK is κ in the V²·(1+κ(V−VRef)) switching-energy scale.
	ShortCircuitK units.PerVolt

	// Leakage.
	CULeakW   units.Watts     // per-CU leakage at (VRef, T0K)
	NBLeakW   units.Watts     // NB leakage at (NBVRef, T0K)
	BaseW     units.Watts     // un-gateable base power (I/O, PLLs); VF-independent
	LeakVExp  units.PerVolt   // exponential slope of leakage vs core voltage
	LeakTExp  units.PerKelvin // exponential slope of leakage vs temperature
	T0K       units.Kelvin
	GateResid float64 //ppep:allow unitcheck dimensionless leakage fraction surviving power gating

	// NB dynamic.
	NBVRef         units.Volts
	L3AccessNJ     units.NanoJoules
	DRAMAccessNJ   units.NanoJoules
	NBClockWPerGHz units.WattsPerGigaHertz

	// HousekeepingW is the OS background dynamic power at (VRef, top
	// frequency); it scales with V²f and exists whenever the chip is not
	// fully gated. It is invisible to the benchmark's counters — exactly
	// the "active idle dynamic power" the paper folds into idle power.
	HousekeepingW units.Watts
}

// DefaultFX8320 returns the physical constants tuned for the FX-8320
// platform: ≈105 W chip power under full FP load at VF5, ≈33 W active
// idle at VF5, ≈11 W active idle at VF1 — in line with the paper's traces.
func DefaultFX8320() *Config {
	return &Config{
		VRef: 1.320,
		// One fully-loaded Piledriver core draws 15–20 W at VF5 — the
		// Figure 7 trace shows ≈100 W with four busy cores. The energies
		// below reproduce that (≈4 nJ per instruction at a typical mix).
		EventNJ: [8]units.NanoJoules{
			1.30, // E1 retired uop: scheduler+ALU+retire
			2.60, // E2 FPU pipe op
			0.90, // E3 icache fetch
			1.45, // E4 dcache access
			6.00, // E5 L2 request
			0.30, // E6 branch
			16.5, // E7 mispredict flush
			8.30, // E8 L2 miss (core-side NB interface)
		},
		StallNJ:         0.19,
		PrefetchNJ:      9.0,
		TLBWalkNJ:       12.0,
		ClockWPerGHz:    1.50,
		HaltedClockFrac: 0.12,
		ShortCircuitK:   0.40,

		CULeakW:   6.0,
		NBLeakW:   3.2,
		BaseW:     1.2,
		LeakVExp:  3.3,
		LeakTExp:  0.011,
		T0K:       330,
		GateResid: 0.04,

		NBVRef:         1.175,
		L3AccessNJ:     10.0,
		DRAMAccessNJ:   90.0,
		NBClockWPerGHz: 1.3,

		HousekeepingW: 0.9,
	}
}

// DefaultPhenomII returns constants for the secondary platform (45 nm,
// higher leakage slope, no power gating, smaller L3).
func DefaultPhenomII() *Config {
	c := DefaultFX8320()
	c.VRef = 1.350
	c.CULeakW = 4.0 // per core (Phenom "CUs" are single cores)
	c.NBLeakW = 3.6
	c.LeakVExp = 3.0
	c.LeakTExp = 0.010
	c.ClockWPerGHz = 1.10
	c.NBVRef = 1.200
	return c
}

// switchScale is the voltage scaling of switching energy.
func (c *Config) switchScale(v units.Volts) float64 {
	r := v.Per(c.VRef)
	return r * r * (1 + c.ShortCircuitK.Times(v-c.VRef))
}

// CoreDynCoeffs are the operating-point factors of the core dynamic power
// model. They depend only on (V, f), so the simulator caches them across
// ticks while a CU's operating point holds.
type CoreDynCoeffs struct {
	Scale  float64     //ppep:allow unitcheck dimensionless switching-energy voltage scale
	ClockW units.Watts // clock-tree power at (V, f)
}

// CoreDynCoeffsAt precomputes the coefficients for one operating point.
func (c *Config) CoreDynCoeffsAt(v units.Volts, fGHz units.GigaHertz) CoreDynCoeffs {
	return CoreDynCoeffs{
		Scale:  c.switchScale(v),
		ClockW: units.Watts(float64(c.ClockWPerGHz.Times(fGHz)) * v.Per(c.VRef) * v.Per(c.VRef)),
	}
}

// CoreDynamicWWith is CoreDynamicW with the operating-point terms hoisted.
//
//ppep:hotpath
func (c *Config) CoreDynamicWWith(k CoreDynCoeffs, a Activity) units.Watts {
	if a.Halted {
		return units.Watts(float64(k.ClockW) * c.HaltedClockFrac)
	}
	var nj float64
	for i := 0; i < 8; i++ {
		nj += float64(c.EventNJ[i]) * a.Events[i]
	}
	nj += float64(c.StallNJ) * a.Events.Get(arch.DispatchStalls)
	nj += float64(c.PrefetchNJ) * a.PrefetchPS
	nj += float64(c.TLBWalkNJ) * a.TLBWalkPS
	epi := a.EPIScale
	if epi == 0 {
		epi = 1
	}
	// nJ/s = nW; convert to W.
	return units.Watts(nj*1e-9*k.Scale*epi) + k.ClockW
}

// CoreDynamicW returns one core's true dynamic power at voltage v and
// frequency fGHz given its activity.
func (c *Config) CoreDynamicW(a Activity, v units.Volts, fGHz units.GigaHertz) units.Watts {
	return c.CoreDynamicWWith(c.CoreDynCoeffsAt(v, fGHz), a)
}

// NBDynCoeffs are the NB-operating-point factors of NBDynamicW, cacheable
// while the NB point holds (it changes only via SetNBPoint).
type NBDynCoeffs struct {
	Scale  float64 //ppep:allow unitcheck dimensionless switching-energy voltage scale
	ClockW units.Watts
}

// NBDynCoeffsAt precomputes the NB coefficients for one operating point.
func (c *Config) NBDynCoeffsAt(nbV units.Volts, nbF units.GigaHertz) NBDynCoeffs {
	r := nbV.Per(c.NBVRef)
	scale := r * r
	return NBDynCoeffs{Scale: scale, ClockW: units.Watts(float64(c.NBClockWPerGHz.Times(nbF)) * scale)}
}

// NBDynamicWWith is NBDynamicW with the operating-point terms hoisted.
//
//ppep:hotpath
func (c *Config) NBDynamicWWith(k NBDynCoeffs, nb NBActivity) units.Watts {
	nj := float64(c.L3AccessNJ)*nb.L3AccessPS + float64(c.DRAMAccessNJ)*nb.DRAMPS
	return units.Watts(nj*1e-9*k.Scale) + k.ClockW
}

// NBDynamicW returns the NB's true dynamic power at NB voltage nbV and
// frequency nbF.
func (c *Config) NBDynamicW(nb NBActivity, nbV units.Volts, nbF units.GigaHertz) units.Watts {
	return c.NBDynamicWWith(c.NBDynCoeffsAt(nbV, nbF), nb)
}

// LeakTempScale returns the temperature factor of the leakage model. The
// CU and NB terms share the same T exponent, so the simulator computes it
// once per tick for all five leakage evaluations.
//
//ppep:allow unitcheck dimensionless exponential scale factors around 1
//ppep:hotpath
//ppep:inline
func (c *Config) LeakTempScale(tK units.Kelvin) float64 {
	return math.Exp(c.LeakTExp.Times(tK - c.T0K))
}

// CULeakVoltScale returns the core-rail voltage factor of CU leakage,
// constant while the rail voltage holds.
//
//ppep:allow unitcheck dimensionless exponential scale factors around 1
//ppep:hotpath
func (c *Config) CULeakVoltScale(v units.Volts) float64 {
	return math.Exp(c.LeakVExp.Times(v - c.VRef))
}

// NBLeakVoltScale returns the NB-rail voltage factor of NB leakage.
//
//ppep:allow unitcheck dimensionless exponential scale factors around 1
//ppep:hotpath
func (c *Config) NBLeakVoltScale(nbV units.Volts) float64 {
	return math.Exp(c.LeakVExp.Times(nbV - c.NBVRef))
}

// CULeakageWWith assembles CU leakage from precomputed factors.
//
//ppep:allow unitcheck dimensionless exponential scale factors around 1
//ppep:hotpath
//ppep:inline
func (c *Config) CULeakageWWith(voltScale, tempScale float64, gated bool) units.Watts {
	w := units.Watts(float64(c.CULeakW) * voltScale * tempScale)
	if gated {
		w = units.Watts(float64(w) * c.GateResid)
	}
	return w
}

// NBLeakageWWith assembles NB leakage from precomputed factors.
//
//ppep:allow unitcheck dimensionless exponential scale factors around 1
//ppep:hotpath
//ppep:inline
func (c *Config) NBLeakageWWith(voltScale, tempScale float64, gated bool) units.Watts {
	w := units.Watts(float64(c.NBLeakW) * voltScale * tempScale)
	if gated {
		w = units.Watts(float64(w) * c.GateResid)
	}
	return w
}

// CULeakageW returns one compute unit's leakage at core voltage v and
// temperature tK. Gated CUs retain GateResid of their leakage.
func (c *Config) CULeakageW(v units.Volts, tK units.Kelvin, gated bool) units.Watts {
	return c.CULeakageWWith(c.CULeakVoltScale(v), c.LeakTempScale(tK), gated)
}

// NBLeakageW returns the NB's leakage at its voltage and temperature.
func (c *Config) NBLeakageW(nbV units.Volts, tK units.Kelvin, gated bool) units.Watts {
	return c.NBLeakageWWith(c.NBLeakVoltScale(nbV), c.LeakTempScale(tK), gated)
}

// HousekeepingDynW returns the OS background power at core voltage v and
// frequency fGHz (relative to the chip's top frequency fTop).
//
//ppep:hotpath
func (c *Config) HousekeepingDynW(v units.Volts, fGHz, fTop units.GigaHertz) units.Watts {
	r := v.Per(c.VRef)
	return units.Watts(float64(c.HousekeepingW) * r * r * fGHz.Per(fTop))
}

// Breakdown is the per-component decomposition of one tick's chip power.
type Breakdown struct {
	CoreDynW []units.Watts // per core
	CULeakW  []units.Watts // per CU
	NBDynW   units.Watts
	NBLeakW  units.Watts
	BaseW    units.Watts
	HousekW  units.Watts
}

// TotalW sums the breakdown. The summation order (NB terms, then per-core
// dynamic, then per-CU leakage) is load-bearing: fxsim's batched tick
// engine replays sealed per-tick power in exactly this order so its
// floating-point totals stay bit-identical to the reference path — see
// DESIGN.md, "The batched tick engine".
//
//ppep:hotpath
//ppep:inline
func (b *Breakdown) TotalW() units.Watts {
	t := b.NBDynW + b.NBLeakW + b.BaseW + b.HousekW
	for _, w := range b.CoreDynW {
		t += w
	}
	for _, w := range b.CULeakW {
		t += w
	}
	return t
}

// CoreTotalW returns the "core side" share: core dynamic + CU leakage +
// housekeeping. Used by the Figure 10/11 core-vs-NB energy split.
//
//ppep:inline
func (b *Breakdown) CoreTotalW() units.Watts {
	t := b.HousekW
	for _, w := range b.CoreDynW {
		t += w
	}
	for _, w := range b.CULeakW {
		t += w
	}
	return t
}

// NBTotalW returns the NB share: NB dynamic + NB leakage + base.
//
//ppep:inline
func (b *Breakdown) NBTotalW() units.Watts { return b.NBDynW + b.NBLeakW + b.BaseW }
