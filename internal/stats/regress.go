package stats

import (
	"errors"
	"fmt"
)

// LinearModel is a fitted linear regression y ≈ Σ wᵢ·xᵢ (+ intercept when
// fitted with one).
type LinearModel struct {
	Weights   []float64
	Intercept float64 // zero when fitted without an intercept
}

// Predict evaluates the model at feature vector x.
func (m *LinearModel) Predict(x []float64) float64 {
	y := m.Intercept
	for i, w := range m.Weights {
		y += w * x[i]
	}
	return y
}

// OLS fits y ≈ X·w by ordinary least squares (no intercept; the paper's
// dynamic power model Eq. 3 has none — zero activity means zero dynamic
// power). X is a slice of feature rows, all the same length. A tiny ridge
// term stabilizes the normal equations when features are nearly collinear.
func OLS(x [][]float64, y []float64) (*LinearModel, error) {
	return olsRidge(x, y, 1e-9, false)
}

// OLSIntercept fits y ≈ X·w + b by ordinary least squares with an
// intercept term.
func OLSIntercept(x [][]float64, y []float64) (*LinearModel, error) {
	return olsRidge(x, y, 1e-9, true)
}

// Ridge fits y ≈ X·w with an L2 penalty lambda on the weights
// (no intercept). lambda is applied relative to each feature's mean
// square, so features of very different scales are penalized evenly.
func Ridge(x [][]float64, y []float64, lambda float64) (*LinearModel, error) {
	return olsRidge(x, y, lambda, false)
}

func olsRidge(x [][]float64, y []float64, lambda float64, intercept bool) (*LinearModel, error) {
	if len(x) == 0 {
		return nil, errors.New("stats: no samples")
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("stats: %d feature rows but %d targets", len(x), len(y))
	}
	p := len(x[0])
	if intercept {
		p++
	}
	if len(x) < p {
		return nil, fmt.Errorf("stats: %d samples insufficient for %d parameters", len(x), p)
	}

	// Normal equations: (XᵀX + λ·diag(meansq))·w = Xᵀy.
	xtx := make([]float64, p*p)
	xty := make([]float64, p)
	row := make([]float64, p)
	for s, feats := range x {
		if len(feats) != len(x[0]) {
			return nil, fmt.Errorf("stats: ragged feature row %d", s)
		}
		copy(row, feats)
		if intercept {
			row[p-1] = 1
		}
		for i := 0; i < p; i++ {
			xty[i] += row[i] * y[s]
			for j := i; j < p; j++ {
				xtx[i*p+j] += row[i] * row[j]
			}
		}
	}
	n := float64(len(x))
	for i := 0; i < p; i++ {
		// Mirror the upper triangle and add the scaled ridge term.
		xtx[i*p+i] += lambda * (xtx[i*p+i]/n + 1e-12) * n
		for j := i + 1; j < p; j++ {
			xtx[j*p+i] = xtx[i*p+j]
		}
	}
	w, err := SolveSPD(xtx, xty)
	if err != nil {
		// Fall back to the pivoting solver for semi-definite systems.
		w, err = Solve(xtx, xty)
		if err != nil {
			return nil, err
		}
	}
	m := &LinearModel{}
	if intercept {
		m.Weights = w[:p-1]
		m.Intercept = w[p-1]
	} else {
		m.Weights = w
	}
	return m, nil
}

// NNLS fits y ≈ X·w subject to w ≥ 0 using projected coordinate descent on
// the normal equations. Physical power weights cannot be negative; the
// paper's regression benefits from the same constraint on noisy data.
func NNLS(x [][]float64, y []float64, iters int) (*LinearModel, error) {
	if len(x) == 0 {
		return nil, errors.New("stats: no samples")
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("stats: %d feature rows but %d targets", len(x), len(y))
	}
	p := len(x[0])
	xtx := make([]float64, p*p)
	xty := make([]float64, p)
	for s, feats := range x {
		for i := 0; i < p; i++ {
			xty[i] += feats[i] * y[s]
			for j := 0; j < p; j++ {
				xtx[i*p+j] += feats[i] * feats[j]
			}
		}
	}
	// A small relative ridge keeps nearly-collinear features (common in
	// hardware-event regressions, where many rates track IPS) from
	// producing wild offsetting weights on small training folds.
	for i := 0; i < p; i++ {
		xtx[i*p+i] *= 1 + 1e-4
	}
	w := make([]float64, p)
	if iters <= 0 {
		iters = 20000
	}
	for it := 0; it < iters; it++ {
		maxRel := 0.0
		for i := 0; i < p; i++ {
			d := xtx[i*p+i]
			if d <= 0 {
				continue
			}
			g := xty[i]
			for j := 0; j < p; j++ {
				if j != i {
					g -= xtx[i*p+j] * w[j]
				}
			}
			next := g / d
			if next < 0 {
				next = 0
			}
			delta := next - w[i]
			if delta < 0 {
				delta = -delta
			}
			// Relative convergence: weights span orders of magnitude
			// (nJ-scale power coefficients), so absolute thresholds
			// stall short of the optimum.
			if ref := next + w[i]; ref > 0 {
				if rel := delta / ref; rel > maxRel {
					maxRel = rel
				}
			}
			w[i] = next
		}
		if maxRel < 1e-12 {
			break
		}
	}
	return &LinearModel{Weights: w}, nil
}
