package stats

import "math"

// ErrorSummary aggregates absolute percentage errors the way the paper
// reports them: the average absolute error (AAE) and the standard
// deviation of the absolute errors.
type ErrorSummary struct {
	N    int
	Mean float64 // average absolute error
	SD   float64 // standard deviation of the absolute errors
	Max  float64
}

// SummarizeAbsErrors computes an ErrorSummary over a slice of absolute
// (non-negative) errors.
func SummarizeAbsErrors(errs []float64) ErrorSummary {
	var s ErrorSummary
	if len(errs) == 0 {
		return s
	}
	s.N = len(errs)
	for _, e := range errs {
		if e < 0 {
			e = -e
		}
		s.Mean += e
		if e > s.Max {
			s.Max = e
		}
	}
	s.Mean /= float64(s.N)
	for _, e := range errs {
		if e < 0 {
			e = -e
		}
		d := e - s.Mean
		s.SD += d * d
	}
	s.SD = math.Sqrt(s.SD / float64(s.N))
	return s
}

// AbsPctErr returns |est-meas|/|meas|. A zero measurement yields zero to
// keep idle-adjacent intervals from polluting summaries.
func AbsPctErr(est, meas float64) float64 {
	if meas == 0 {
		return 0
	}
	e := (est - meas) / meas
	if e < 0 {
		e = -e
	}
	return e
}

// Running accumulates a streaming mean and variance (Welford's
// algorithm). The zero value is ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of samples added.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean (zero before any Add).
func (r *Running) Mean() float64 { return r.mean }

// Var returns the population variance.
func (r *Running) Var() float64 {
	if r.n == 0 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// SD returns the population standard deviation.
func (r *Running) SD() float64 { return math.Sqrt(r.Var()) }

// Min returns the smallest sample (zero before any Add).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest sample (zero before any Add).
func (r *Running) Max() float64 { return r.max }

// Mean returns the arithmetic mean of xs (zero for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// series (zero for degenerate inputs). Used to reproduce the paper's
// event-selection rationale: the nine Table I power events are the ones
// "highly correlated to dynamic power" (Section IV-B1).
func Pearson(xs, ys []float64) float64 {
	n := len(xs)
	if n == 0 || n != len(ys) {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
