package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSolveIdentity(t *testing.T) {
	a := []float64{1, 0, 0, 0, 1, 0, 0, 0, 1}
	b := []float64{3, -1, 7}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if !almost(x[i], b[i], 1e-12) {
			t.Errorf("x[%d] = %v", i, x[i])
		}
	}
}

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10 → x = 1, y = 3.
	a := []float64{2, 1, 1, 3}
	b := []float64{5, 10}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(x[0], 1, 1e-12) || !almost(x[1], 3, 1e-12) {
		t.Errorf("got %v", x)
	}
}

func TestSolveNeedsPivot(t *testing.T) {
	// Leading zero forces a row swap.
	a := []float64{0, 1, 1, 0}
	b := []float64{2, 3}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(x[0], 3, 1e-12) || !almost(x[1], 2, 1e-12) {
		t.Errorf("got %v", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := []float64{1, 2, 2, 4}
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Error("expected singular error")
	}
}

func TestSolveSizeMismatch(t *testing.T) {
	if _, err := Solve([]float64{1, 2, 3}, []float64{1, 2}); err == nil {
		t.Error("expected size error")
	}
	if _, err := SolveSPD([]float64{1, 2, 3}, []float64{1, 2}); err == nil {
		t.Error("expected size error")
	}
}

func TestSolveSPDMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(6)
		// Random SPD matrix: A = MᵀM + I.
		m := make([]float64, n*n)
		for i := range m {
			m[i] = rng.NormFloat64()
		}
		a := make([]float64, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				for k := 0; k < n; k++ {
					a[i*n+j] += m[k*n+i] * m[k*n+j]
				}
			}
			a[i*n+i] += 1
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x1, err := SolveSPD(a, b)
		if err != nil {
			t.Fatal(err)
		}
		x2, err := Solve(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x1 {
			if !almost(x1[i], x2[i], 1e-8) {
				t.Fatalf("trial %d: x1[%d]=%v x2[%d]=%v", trial, i, x1[i], i, x2[i])
			}
		}
	}
}

func TestSolveSPDNotPositive(t *testing.T) {
	a := []float64{-1, 0, 0, -1}
	if _, err := SolveSPD(a, []float64{1, 1}); err == nil {
		t.Error("expected error for negative-definite matrix")
	}
}

func TestOLSRecoversExactWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	trueW := []float64{2.5, -1.0, 0.25}
	var xs [][]float64
	var ys []float64
	for i := 0; i < 200; i++ {
		row := []float64{rng.Float64() * 10, rng.Float64() * 5, rng.Float64()}
		y := 0.0
		for j, w := range trueW {
			y += w * row[j]
		}
		xs = append(xs, row)
		ys = append(ys, y)
	}
	m, err := OLS(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for j, w := range trueW {
		if !almost(m.Weights[j], w, 1e-3) {
			t.Errorf("w[%d] = %v, want %v", j, m.Weights[j], w)
		}
	}
}

func TestOLSInterceptRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 100; i++ {
		x := rng.Float64() * 100
		xs = append(xs, []float64{x})
		ys = append(ys, 3*x+42+rng.NormFloat64()*0.01)
	}
	m, err := OLSIntercept(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(m.Weights[0], 3, 1e-2) {
		t.Errorf("slope %v", m.Weights[0])
	}
	if !almost(m.Intercept, 42, 0.1) {
		t.Errorf("intercept %v", m.Intercept)
	}
}

func TestOLSErrors(t *testing.T) {
	if _, err := OLS(nil, nil); err == nil {
		t.Error("expected no-samples error")
	}
	if _, err := OLS([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("expected length-mismatch error")
	}
	if _, err := OLS([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("expected underdetermined error")
	}
	if _, err := OLS([][]float64{{1, 2}, {3}}, []float64{1, 2}); err == nil {
		t.Error("expected ragged-row error")
	}
}

func TestRidgeShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 50; i++ {
		x := rng.Float64()
		xs = append(xs, []float64{x})
		ys = append(ys, 10*x)
	}
	plain, err := OLS(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := Ridge(xs, ys, 10)
	if err != nil {
		t.Fatal(err)
	}
	if heavy.Weights[0] >= plain.Weights[0] {
		t.Errorf("ridge weight %v not shrunk below OLS %v", heavy.Weights[0], plain.Weights[0])
	}
}

func TestNNLSNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	// True weights include a negative one; NNLS must clamp at zero.
	trueW := []float64{5, -3, 2}
	var xs [][]float64
	var ys []float64
	for i := 0; i < 300; i++ {
		row := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		y := 0.0
		for j, w := range trueW {
			y += w * row[j]
		}
		xs = append(xs, row)
		ys = append(ys, y)
	}
	m, err := NNLS(xs, ys, 0)
	if err != nil {
		t.Fatal(err)
	}
	for j, w := range m.Weights {
		if w < 0 {
			t.Errorf("w[%d] = %v < 0", j, w)
		}
	}
}

func TestNNLSRecoversNonNegativeTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	trueW := []float64{1.5, 0.5}
	var xs [][]float64
	var ys []float64
	for i := 0; i < 200; i++ {
		row := []float64{rng.Float64(), rng.Float64()}
		ys = append(ys, trueW[0]*row[0]+trueW[1]*row[1])
		xs = append(xs, row)
	}
	m, err := NNLS(xs, ys, 0)
	if err != nil {
		t.Fatal(err)
	}
	for j, w := range trueW {
		if !almost(m.Weights[j], w, 1e-3) {
			t.Errorf("w[%d] = %v, want %v", j, m.Weights[j], w)
		}
	}
}

func TestNNLSErrors(t *testing.T) {
	if _, err := NNLS(nil, nil, 0); err == nil {
		t.Error("expected no-samples error")
	}
	if _, err := NNLS([][]float64{{1}}, []float64{1, 2}, 0); err == nil {
		t.Error("expected length-mismatch error")
	}
}

func TestLinearModelPredict(t *testing.T) {
	m := &LinearModel{Weights: []float64{2, 3}, Intercept: 1}
	if got := m.Predict([]float64{10, 100}); got != 321 {
		t.Errorf("Predict = %v", got)
	}
}

func TestPolyEval(t *testing.T) {
	p := Poly{1, 2, 3} // 1 + 2x + 3x²
	if got := p.Eval(2); got != 17 {
		t.Errorf("Eval(2) = %v", got)
	}
	if got := (Poly{}).Eval(5); got != 0 {
		t.Errorf("empty poly Eval = %v", got)
	}
	if (Poly{1, 2, 3}).Degree() != 2 || (Poly{}).Degree() != -1 {
		t.Error("Degree wrong")
	}
}

func TestFitPolyExact(t *testing.T) {
	// Fit y = 2 - x + 0.5x³ at many points.
	truth := Poly{2, -1, 0, 0.5}
	var xs, ys []float64
	for i := -10; i <= 10; i++ {
		x := float64(i) / 3
		xs = append(xs, x)
		ys = append(ys, truth.Eval(x))
	}
	p, err := FitPoly(xs, ys, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		if !almost(p[i], truth[i], 1e-6) {
			t.Errorf("c[%d] = %v, want %v", i, p[i], truth[i])
		}
	}
}

func TestFitPolyCubicThroughVFPoints(t *testing.T) {
	// Five voltage points, cubic fit — the idle model's exact use case.
	xs := []float64{0.888, 1.008, 1.128, 1.242, 1.320}
	ys := make([]float64, len(xs))
	truth := Poly{0.3, -0.5, 0.2, 1.1}
	for i, x := range xs {
		ys[i] = truth.Eval(x)
	}
	p, err := FitPoly(xs, ys, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		if !almost(p.Eval(x), ys[i], 1e-5) {
			t.Errorf("fit misses point %d: %v vs %v", i, p.Eval(x), ys[i])
		}
	}
}

func TestSummarizeAbsErrors(t *testing.T) {
	s := SummarizeAbsErrors([]float64{0.1, 0.2, 0.3})
	if s.N != 3 || !almost(s.Mean, 0.2, 1e-12) {
		t.Errorf("summary %+v", s)
	}
	if !almost(s.SD, math.Sqrt(0.02/3), 1e-12) {
		t.Errorf("SD = %v", s.SD)
	}
	if !almost(s.Max, 0.3, 1e-12) {
		t.Errorf("Max = %v", s.Max)
	}
	z := SummarizeAbsErrors(nil)
	if z.N != 0 || z.Mean != 0 {
		t.Errorf("empty summary %+v", z)
	}
	// Negative inputs are folded to absolute values.
	s = SummarizeAbsErrors([]float64{-0.4})
	if !almost(s.Mean, 0.4, 1e-12) {
		t.Errorf("negative handling: %+v", s)
	}
}

func TestAbsPctErr(t *testing.T) {
	if !almost(AbsPctErr(110, 100), 0.1, 1e-12) {
		t.Error("over-estimate")
	}
	if !almost(AbsPctErr(90, 100), 0.1, 1e-12) {
		t.Error("under-estimate")
	}
	if AbsPctErr(5, 0) != 0 {
		t.Error("zero measurement should yield 0")
	}
}

func TestRunningMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	var r Running
	var xs []float64
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 10
		xs = append(xs, x)
		r.Add(x)
	}
	if r.N() != 1000 {
		t.Fatalf("N = %d", r.N())
	}
	if !almost(r.Mean(), Mean(xs), 1e-9) {
		t.Errorf("mean %v vs %v", r.Mean(), Mean(xs))
	}
	var sq float64
	for _, x := range xs {
		d := x - Mean(xs)
		sq += d * d
	}
	if !almost(r.Var(), sq/1000, 1e-9) {
		t.Errorf("var %v vs %v", r.Var(), sq/1000)
	}
	if r.Min() > r.Mean() || r.Max() < r.Mean() {
		t.Error("min/max bracket violated")
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Var() != 0 || r.SD() != 0 || r.N() != 0 {
		t.Error("zero value should report zeros")
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
}

func TestKFoldPartition(t *testing.T) {
	const n, k = 152, 4
	folds := KFold(n, k, 1)
	if len(folds) != k {
		t.Fatalf("folds = %d", len(folds))
	}
	seen := make(map[int]int)
	for _, f := range folds {
		if len(f.Test)+len(f.Train) != n {
			t.Errorf("fold covers %d items", len(f.Test)+len(f.Train))
		}
		for _, i := range f.Test {
			seen[i]++
		}
		// Test sizes differ by at most one: 152/4 = 38 exactly here.
		if len(f.Test) != n/k {
			t.Errorf("test fold size %d", len(f.Test))
		}
		// No overlap between train and test.
		inTest := make(map[int]bool, len(f.Test))
		for _, i := range f.Test {
			inTest[i] = true
		}
		for _, i := range f.Train {
			if inTest[i] {
				t.Errorf("index %d in both train and test", i)
			}
		}
	}
	// Every item appears in exactly one test fold.
	for i := 0; i < n; i++ {
		if seen[i] != 1 {
			t.Errorf("item %d appears in %d test folds", i, seen[i])
		}
	}
}

func TestKFoldDeterministic(t *testing.T) {
	a := KFold(50, 4, 9)
	b := KFold(50, 4, 9)
	for f := range a {
		for i := range a[f].Test {
			if a[f].Test[i] != b[f].Test[i] {
				t.Fatal("same seed produced different folds")
			}
		}
	}
}

func TestKFoldDegenerate(t *testing.T) {
	folds := KFold(3, 10, 1) // k clamped to n
	if len(folds) != 3 {
		t.Errorf("folds = %d", len(folds))
	}
	folds = KFold(10, 1, 1) // k clamped up to 2
	if len(folds) != 2 {
		t.Errorf("folds = %d", len(folds))
	}
}

func TestGoldenSectionQuadratic(t *testing.T) {
	f := func(x float64) float64 { return (x - 2.3) * (x - 2.3) }
	x := GoldenSection(f, 0, 10, 80)
	if !almost(x, 2.3, 1e-6) {
		t.Errorf("min at %v", x)
	}
}

func TestGoldenSectionAlphaShape(t *testing.T) {
	// Minimizing error of a (V/V5)^α scaling fit, the real use case.
	v5 := 1.32
	truth := 2.4
	f := func(alpha float64) float64 {
		sum := 0.0
		for _, v := range []float64{0.888, 1.008, 1.128, 1.242} {
			d := math.Pow(v/v5, alpha) - math.Pow(v/v5, truth)
			sum += d * d
		}
		return sum
	}
	x := GoldenSection(f, 1, 4, 80)
	if !almost(x, truth, 1e-5) {
		t.Errorf("alpha = %v, want %v", x, truth)
	}
}

func TestOLSResidualOrthogonality(t *testing.T) {
	// Property: OLS residuals are orthogonal to every feature column.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, p := 40, 3
		xs := make([][]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			row := make([]float64, p)
			for j := range row {
				row[j] = rng.NormFloat64()
			}
			xs[i] = row
			ys[i] = rng.NormFloat64()
		}
		m, err := OLS(xs, ys)
		if err != nil {
			return true // skip pathological draws
		}
		for j := 0; j < p; j++ {
			dot := 0.0
			for i := range xs {
				dot += xs[i][j] * (ys[i] - m.Predict(xs[i]))
			}
			if math.Abs(dot) > 1e-6*float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFitPolyErrors(t *testing.T) {
	if _, err := FitPoly(nil, nil, 2); err == nil {
		t.Error("expected error fitting empty data")
	}
	if _, err := FitPoly([]float64{1}, []float64{1}, 3); err == nil {
		t.Error("expected underdetermined error")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if !almost(Pearson(xs, ys), 1, 1e-12) {
		t.Error("perfect positive correlation expected")
	}
	neg := []float64{10, 8, 6, 4, 2}
	if !almost(Pearson(xs, neg), -1, 1e-12) {
		t.Error("perfect negative correlation expected")
	}
	flat := []float64{3, 3, 3, 3, 3}
	if Pearson(xs, flat) != 0 {
		t.Error("degenerate series must give zero")
	}
	if Pearson(nil, nil) != 0 || Pearson(xs, xs[:2]) != 0 {
		t.Error("bad lengths must give zero")
	}
	// Uncorrelated noise stays near zero.
	rng := rand.New(rand.NewSource(31))
	var a, b []float64
	for i := 0; i < 5000; i++ {
		a = append(a, rng.NormFloat64())
		b = append(b, rng.NormFloat64())
	}
	if r := Pearson(a, b); math.Abs(r) > 0.05 {
		t.Errorf("independent noise correlation %v", r)
	}
}
