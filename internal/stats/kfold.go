package stats

import "math/rand"

// Fold is one cross-validation split: indices of training and test items.
type Fold struct {
	Train []int
	Test  []int
}

// KFold splits n items into k folds for cross-validation, shuffled with
// the given seed so splits are reproducible. The paper divides its 152
// benchmark combinations into four equal sets and trains on three
// (Section IV-B2).
func KFold(n, k int, seed int64) []Fold {
	if k < 2 {
		k = 2
	}
	if k > n {
		k = n
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	folds := make([]Fold, k)
	// Deal indices round-robin so fold sizes differ by at most one.
	buckets := make([][]int, k)
	for i, idx := range perm {
		buckets[i%k] = append(buckets[i%k], idx)
	}
	for f := 0; f < k; f++ {
		folds[f].Test = buckets[f]
		for g := 0; g < k; g++ {
			if g != f {
				folds[f].Train = append(folds[f].Train, buckets[g]...)
			}
		}
	}
	return folds
}

// GoldenSection minimizes f over [a, b] by golden-section search and
// returns the minimizing x. Used to calibrate the voltage-scaling exponent
// α of Eq. 3 against measured power.
func GoldenSection(f func(float64) float64, a, b float64, iters int) float64 {
	const phi = 0.6180339887498949 // (√5-1)/2
	if iters <= 0 {
		iters = 60
	}
	x1 := b - phi*(b-a)
	x2 := a + phi*(b-a)
	f1, f2 := f(x1), f(x2)
	for i := 0; i < iters; i++ {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - phi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + phi*(b-a)
			f2 = f(x2)
		}
	}
	return (a + b) / 2
}
