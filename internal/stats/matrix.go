// Package stats provides the from-scratch numerical machinery used to
// train and evaluate the PPEP models: ordinary least squares regression,
// polynomial fitting, k-fold cross-validation splits, absolute-error
// summaries, and scalar minimization. Only the standard library is used.
package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("stats: singular system")

// SolveSPD solves A·x = b for a symmetric positive-definite matrix A using
// Cholesky decomposition. A is given in row-major order (n×n) and is not
// modified. Used for least-squares normal equations.
func SolveSPD(a []float64, b []float64) ([]float64, error) {
	n := len(b)
	if len(a) != n*n {
		return nil, fmt.Errorf("stats: matrix size %d does not match rhs length %d", len(a), n)
	}
	// Cholesky: A = L·Lᵀ.
	l := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i*n+j]
			for k := 0; k < j; k++ {
				sum -= l[i*n+k] * l[j*n+k]
			}
			if i == j {
				if sum <= 0 {
					return nil, ErrSingular
				}
				l[i*n+i] = math.Sqrt(sum)
			} else {
				l[i*n+j] = sum / l[j*n+j]
			}
		}
	}
	// Forward substitution: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i*n+k] * y[k]
		}
		y[i] = sum / l[i*n+i]
	}
	// Back substitution: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l[k*n+i] * x[k]
		}
		x[i] = sum / l[i*n+i]
	}
	return x, nil
}

// Solve solves a general square system A·x = b by Gaussian elimination
// with partial pivoting. A and b are not modified.
func Solve(a []float64, b []float64) ([]float64, error) {
	n := len(b)
	if len(a) != n*n {
		return nil, fmt.Errorf("stats: matrix size %d does not match rhs length %d", len(a), n)
	}
	// Work on copies.
	m := make([]float64, n*n)
	copy(m, a)
	rhs := make([]float64, n)
	copy(rhs, b)

	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(m[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m[r*n+col]); v > best {
				best, pivot = v, r
			}
		}
		if best == 0 {
			return nil, ErrSingular
		}
		if pivot != col {
			for k := 0; k < n; k++ {
				m[col*n+k], m[pivot*n+k] = m[pivot*n+k], m[col*n+k]
			}
			rhs[col], rhs[pivot] = rhs[pivot], rhs[col]
		}
		// Eliminate below.
		inv := 1 / m[col*n+col]
		for r := col + 1; r < n; r++ {
			f := m[r*n+col] * inv
			if f == 0 {
				continue
			}
			for k := col; k < n; k++ {
				m[r*n+k] -= f * m[col*n+k]
			}
			rhs[r] -= f * rhs[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := rhs[i]
		for k := i + 1; k < n; k++ {
			sum -= m[i*n+k] * x[k]
		}
		x[i] = sum / m[i*n+i]
	}
	return x, nil
}
