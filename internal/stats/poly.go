package stats

// Poly is a polynomial c₀ + c₁x + c₂x² + … with coefficients in ascending
// degree order. The paper uses third-order polynomials of voltage for the
// idle power model's temperature coefficients (Eq. 2).
type Poly []float64

// Eval evaluates the polynomial at x using Horner's rule.
func (p Poly) Eval(x float64) float64 {
	y := 0.0
	for i := len(p) - 1; i >= 0; i-- {
		y = y*x + p[i]
	}
	return y
}

// Degree returns the polynomial degree (len-1), or -1 for an empty
// polynomial.
func (p Poly) Degree() int { return len(p) - 1 }

// FitPoly fits a polynomial of the given degree to the points (xs, ys) by
// least squares. degree+1 coefficients are returned.
func FitPoly(xs, ys []float64, degree int) (Poly, error) {
	feats := make([][]float64, len(xs))
	for i, x := range xs {
		row := make([]float64, degree+1)
		v := 1.0
		for d := 0; d <= degree; d++ {
			row[d] = v
			v *= x
		}
		feats[i] = row
	}
	m, err := OLS(feats, ys)
	if err != nil {
		return nil, err
	}
	return Poly(m.Weights), nil
}
