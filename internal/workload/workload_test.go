package workload

import (
	"strings"
	"testing"
	"testing/quick"
)

func allBenchmarks() []*Benchmark {
	var out []*Benchmark
	out = append(out, SPECBenchmarks()...)
	out = append(out, PARSECBenchmarks()...)
	out = append(out, NPBBenchmarks()...)
	out = append(out, BenchA(), OSHousekeeping())
	return out
}

func TestSuiteSizes(t *testing.T) {
	if n := len(SPECBenchmarks()); n != 29 {
		t.Errorf("SPEC programs = %d, want 29", n)
	}
	if n := len(PARSECBenchmarks()); n != 13 {
		t.Errorf("PARSEC programs = %d, want 13", n)
	}
	if n := len(NPBBenchmarks()); n != 10 {
		t.Errorf("NPB programs = %d, want 10", n)
	}
}

func TestPaperCombinationCounts(t *testing.T) {
	// Section II / IV-B1: 61 SPEC (29+15+10+7), 51 PARSEC, 40 NPB = 152.
	if n := len(SPECRuns()); n != 61 {
		t.Errorf("SPEC runs = %d, want 61", n)
	}
	if n := len(PARSECRuns()); n != 51 {
		t.Errorf("PARSEC runs = %d, want 51", n)
	}
	if n := len(NPBRuns()); n != 40 {
		t.Errorf("NPB runs = %d, want 40", n)
	}
	if n := len(AllRuns()); n != 152 {
		t.Errorf("total runs = %d, want 152", n)
	}
}

func TestSPECComboSizes(t *testing.T) {
	var single, double, triple, quad int
	for _, r := range SPECRuns() {
		switch len(r.Members) {
		case 1:
			single++
		case 2:
			double++
		case 3:
			triple++
		case 4:
			quad++
		default:
			t.Errorf("run %s has %d members", r.Name, len(r.Members))
		}
	}
	if single != 29 || double != 15 || triple != 10 || quad != 7 {
		t.Errorf("combo split %d/%d/%d/%d, want 29/15/10/7", single, double, triple, quad)
	}
}

func TestAllProfilesValidate(t *testing.T) {
	for _, b := range allBenchmarks() {
		if err := b.Validate(); err != nil {
			t.Errorf("%s/%s: %v", b.Suite, b.Name, err)
		}
	}
}

func TestProfilesDeterministic(t *testing.T) {
	// Rebuilding from the same specs must reproduce identical profiles.
	a := build(profileSpec{name: "433.milc", suite: "SPEC", class: MemBound, fp: true, phases: 2, gInst: 75, noise: 0.05, tune: tuneMilc})
	b := build(profileSpec{name: "433.milc", suite: "SPEC", class: MemBound, fp: true, phases: 2, gInst: 75, noise: 0.05, tune: tuneMilc})
	if len(a.Phases) != len(b.Phases) {
		t.Fatal("phase counts differ")
	}
	for i := range a.Phases {
		if a.Phases[i] != b.Phases[i] {
			t.Errorf("phase %d differs between rebuilds", i)
		}
	}
	if a.FreqSens != b.FreqSens {
		t.Error("FreqSens differs between rebuilds")
	}
}

func TestFeaturedProfiles(t *testing.T) {
	milc := SPECByNumber("433")
	sjeng := SPECByNumber("458")
	mcf := SPECByNumber("429")
	swap := PARSECByName("swaptions")

	// milc must be much more memory-bound than sjeng.
	if milc.Phases[0].PerInst.L2Miss <= 10*sjeng.Phases[0].PerInst.L2Miss {
		t.Errorf("milc L2Miss %v not ≫ sjeng %v",
			milc.Phases[0].PerInst.L2Miss, sjeng.Phases[0].PerInst.L2Miss)
	}
	// mcf is the most memory-bound SPEC program.
	for _, b := range SPECBenchmarks() {
		if b == mcf {
			continue
		}
		if b.Phases[0].PerInst.L2Miss > mcf.Phases[0].PerInst.L2Miss {
			t.Errorf("%s more memory-bound than mcf", b.Name)
		}
	}
	// swaptions is cache-resident FP compute.
	if swap.Phases[0].PerInst.L2Miss > 0.001 {
		t.Errorf("swaptions L2Miss %v too high", swap.Phases[0].PerInst.L2Miss)
	}
	if swap.Phases[0].PerInst.FPU < 0.5 {
		t.Errorf("swaptions FPU %v too low", swap.Phases[0].PerInst.FPU)
	}
}

func TestBenchAIsL1Resident(t *testing.T) {
	a := BenchA()
	p := a.Phases[0]
	if p.PerInst.L2Miss != 0 {
		t.Error("bench_A must have no NB accesses")
	}
	if p.PerInst.L2Req > 0.01 {
		t.Error("bench_A must be L1-resident")
	}
	if p.Noise > 0.01 {
		t.Error("bench_A must be steady")
	}
	if len(a.Phases) != 1 {
		t.Error("bench_A must have a single phase")
	}
}

func TestPhaseAt(t *testing.T) {
	b := &Benchmark{
		Name:         "x",
		Instructions: 100,
		Phases: []Phase{
			{Name: "a", Weight: 0.25, BaseCPI: 0.5, PerInst: Rates{Uops: 1.2}, MLP: 1},
			{Name: "b", Weight: 0.75, BaseCPI: 0.5, PerInst: Rates{Uops: 1.2}, MLP: 1},
		},
	}
	if got := b.PhaseAt(0).Name; got != "a" {
		t.Errorf("PhaseAt(0) = %s", got)
	}
	if got := b.PhaseAt(24).Name; got != "a" {
		t.Errorf("PhaseAt(24) = %s", got)
	}
	if got := b.PhaseAt(26).Name; got != "b" {
		t.Errorf("PhaseAt(26) = %s", got)
	}
	if got := b.PhaseAt(99).Name; got != "b" {
		t.Errorf("PhaseAt(99) = %s", got)
	}
	// Past the end and negative inputs are clamped.
	if got := b.PhaseAt(1e9).Name; got != "b" {
		t.Errorf("PhaseAt(1e9) = %s", got)
	}
	if got := b.PhaseAt(-5).Name; got != "a" {
		t.Errorf("PhaseAt(-5) = %s", got)
	}
}

func TestPhaseAtLoops(t *testing.T) {
	b := &Benchmark{
		Name:         "loopy",
		Instructions: 100,
		Loops:        2,
		Phases: []Phase{
			{Name: "a", Weight: 0.5, BaseCPI: 0.5, PerInst: Rates{Uops: 1.2}, MLP: 1},
			{Name: "b", Weight: 0.5, BaseCPI: 0.5, PerInst: Rates{Uops: 1.2}, MLP: 1},
		},
	}
	// Loop length 50: a in [0,25), b in [25,50), a again in [50,75)...
	for _, tc := range []struct {
		done float64
		want string
	}{{0, "a"}, {20, "a"}, {30, "b"}, {49, "b"}, {55, "a"}, {80, "b"}} {
		if got := b.PhaseAt(tc.done).Name; got != tc.want {
			t.Errorf("PhaseAt(%v) = %s, want %s", tc.done, got, tc.want)
		}
	}
}

func TestPhaseAtAlwaysReturnsPhase(t *testing.T) {
	benches := allBenchmarks()
	f := func(frac float64, pick uint8) bool {
		b := benches[int(pick)%len(benches)]
		if frac < 0 {
			frac = -frac
		}
		p := b.PhaseAt(frac * b.Instructions * 1.5)
		return p != nil && p.Weight > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesBadProfiles(t *testing.T) {
	good := func() *Benchmark {
		return &Benchmark{
			Name:         "g",
			Instructions: 100,
			Phases: []Phase{{
				Name: "p", Weight: 1, BaseCPI: 0.5, MLP: 1,
				PerInst: Rates{Uops: 1.2, Branch: 0.1, Mispred: 0.01, L2Req: 0.02, L2Miss: 0.01},
			}},
		}
	}
	if err := good().Validate(); err != nil {
		t.Fatalf("baseline profile invalid: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Benchmark)
	}{
		{"empty name", func(b *Benchmark) { b.Name = "" }},
		{"no instructions", func(b *Benchmark) { b.Instructions = 0 }},
		{"no phases", func(b *Benchmark) { b.Phases = nil }},
		{"zero weight", func(b *Benchmark) { b.Phases[0].Weight = 0 }},
		{"weights not 1", func(b *Benchmark) { b.Phases[0].Weight = 0.5 }},
		{"CPI too low", func(b *Benchmark) { b.Phases[0].BaseCPI = 0.1 }},
		{"MLP below 1", func(b *Benchmark) { b.Phases[0].MLP = 0.5 }},
		{"bad L3 ratio", func(b *Benchmark) { b.Phases[0].L3MissRatio = 1.5 }},
		{"uops below 1", func(b *Benchmark) { b.Phases[0].PerInst.Uops = 0.5 }},
		{"mispred > branch", func(b *Benchmark) { b.Phases[0].PerInst.Mispred = 0.5 }},
		{"miss > req", func(b *Benchmark) { b.Phases[0].PerInst.L2Miss = 0.5 }},
		{"negative rate", func(b *Benchmark) { b.Phases[0].PerInst.FPU = -1 }},
	}
	for _, tc := range cases {
		b := good()
		tc.mut(b)
		if err := b.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestSPECByNumberPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	SPECByNumber("999")
}

func TestByNamePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { PARSECByName("nope") },
		func() { NPBByName("nope") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestClassString(t *testing.T) {
	if CPUBound.String() != "cpu-bound" || MemBound.String() != "mem-bound" ||
		Balanced.String() != "balanced" || !strings.HasPrefix(Class(9).String(), "Class(") {
		t.Error("Class.String labels wrong")
	}
}

func TestRunHelpers(t *testing.T) {
	mix := CappingMix()
	if len(mix.Members) != 4 {
		t.Errorf("capping mix has %d members", len(mix.Members))
	}
	if mix.TotalThreads() != 4 {
		t.Errorf("capping mix threads = %d", mix.TotalThreads())
	}
	mi := MultiInstance("433", 3)
	if len(mi.Members) != 3 || mi.TotalThreads() != 3 {
		t.Errorf("multi-instance wrong: %+v", mi)
	}
	for _, m := range mi.Members {
		if m.Bench.Name != "433.milc" {
			t.Errorf("member is %s", m.Bench.Name)
		}
	}
	if mi.String() != "433 x3" {
		t.Errorf("String = %q", mi.String())
	}
}

func TestRunsFitOnChip(t *testing.T) {
	// Every evaluation run must fit the FX-8320's eight cores.
	for _, r := range AllRuns() {
		if r.TotalThreads() > 8 {
			t.Errorf("run %s needs %d threads", r.Name, r.TotalThreads())
		}
		if r.TotalThreads() < 1 {
			t.Errorf("run %s has no threads", r.Name)
		}
	}
}

func TestFreqSensMagnitudes(t *testing.T) {
	// Observation 1 violations must stay in the paper's measured band:
	// |ε·(f2/f5−1)| between roughly 0.5% and 6%.
	for _, b := range allBenchmarks() {
		if b.Suite == "micro" {
			continue
		}
		for i, e := range b.FreqSens {
			mag := e
			if mag < 0 {
				mag = -mag
			}
			if mag > 0.12 {
				t.Errorf("%s FreqSens[%d] = %v too large", b.Name, i, e)
			}
		}
	}
}

func TestSuitesAreDistinctPointers(t *testing.T) {
	// Registry getters return copies of the slice but share the profile
	// pointers, so tuning state is consistent.
	a := SPECBenchmarks()
	b := SPECBenchmarks()
	if &a[0] == &b[0] {
		t.Error("expected distinct slice headers")
	}
	if a[0] != b[0] {
		t.Error("expected shared benchmark pointers")
	}
}

func TestOutliersAreShortAndNoisy(t *testing.T) {
	// The paper's outliers (dedup, IS, DC) are short runs with rapid
	// phase change; our profiles must reflect that.
	for _, name := range []string{"dedup"} {
		b := PARSECByName(name)
		if b.Instructions > 20e9 {
			t.Errorf("%s too long: %v", name, b.Instructions)
		}
		if b.Phases[0].Noise < 0.1 {
			t.Errorf("%s too steady", name)
		}
	}
	for _, name := range []string{"IS", "DC"} {
		b := NPBByName(name)
		if b.Instructions > 20e9 {
			t.Errorf("%s too long: %v", name, b.Instructions)
		}
		if b.Phases[0].Noise < 0.1 {
			t.Errorf("%s too steady", name)
		}
	}
}

func TestParseRunSpec(t *testing.T) {
	r, err := ParseRunSpec("433x2")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Members) != 2 || r.Members[0].Bench.Name != "433.milc" {
		t.Errorf("433x2 parsed as %+v", r)
	}
	r, err = ParseRunSpec("429")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Members) != 1 || r.Members[0].Bench.Name != "429.mcf" {
		t.Errorf("429 parsed as %+v", r)
	}
	r, err = ParseRunSpec("mix")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Members) != 4 {
		t.Errorf("mix parsed as %+v", r)
	}
	for _, bad := range []string{"433x0", "433x9", "433xq", "999", "999x2", ""} {
		if _, err := ParseRunSpec(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}
