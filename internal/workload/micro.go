package workload

import "sync"

var (
	benchAOnce  sync.Once
	benchA      *Benchmark
	steadyOnce  sync.Once
	benchSteady *Benchmark
	idleOnce    sync.Once
	idleBench   *Benchmark
)

// BenchA returns the paper's Section IV-D microbenchmark: an L1-resident
// data set, no dynamic NB accesses, and a perfectly steady phase. Its
// performance and dynamic power are identical across concurrently running
// instances, which is what makes the power-gating decomposition of
// Figure 4 possible.
func BenchA() *Benchmark {
	benchAOnce.Do(func() {
		benchA = &Benchmark{
			Name:         "bench_A",
			Suite:        "micro",
			Class:        CPUBound,
			Instructions: 1e12, // effectively endless; runs are time-bounded
			Phases: []Phase{{
				Name:    "steady",
				Weight:  1,
				BaseCPI: 0.50,
				PerInst: Rates{
					Uops:     1.2,
					FPU:      0.10,
					ICFetch:  0.25,
					DCAccess: 0.45,
					L2Req:    0.001, // L1-resident: essentially no L2 traffic
					Branch:   0.12,
					Mispred:  0.0006,
					L2Miss:   0, // no dynamic NB accesses
				},
				L3MissRatio: 0,
				MLP:         1,
				Noise:       0.001,
			}},
		}
	})
	return benchA
}

// BenchSteady returns BenchA with the rate jitter turned off entirely: a
// single perfectly phase-stable, DRAM-free workload. It is the canonical
// quiescent workload for the batched tick engine — every tick between
// chip events is provably identical, so fxsim fast-forwards it — and the
// phase-stable case the tick benchmarks report.
func BenchSteady() *Benchmark {
	steadyOnce.Do(func() {
		b := *BenchA()
		b.Name = "bench_steady"
		b.Phases = append([]Phase(nil), b.Phases...)
		b.Phases[0].Noise = 0
		benchSteady = &b
	})
	return benchSteady
}

// OSHousekeeping returns a profile for the background OS activity that
// exists whenever a core is awake. The paper folds its power into "active
// idle dynamic power" (Section IV-A); the simulator runs it at a tiny duty
// cycle on core 0 when nothing else is scheduled there.
func OSHousekeeping() *Benchmark {
	idleOnce.Do(func() {
		idleBench = &Benchmark{
			Name:         "os-housekeeping",
			Suite:        "micro",
			Class:        Balanced,
			Instructions: 1e12,
			Phases: []Phase{{
				Name:    "daemon",
				Weight:  1,
				BaseCPI: 1.4,
				PerInst: Rates{
					Uops:     1.3,
					FPU:      0.01,
					ICFetch:  0.30,
					DCAccess: 0.40,
					L2Req:    0.02,
					Branch:   0.18,
					Mispred:  0.008,
					L2Miss:   0.004,
					Prefetch: 0.005,
					TLBWalk:  0.002,
				},
				L3MissRatio: 0.4,
				MLP:         1.2,
				Noise:       0.05,
			}},
		}
	})
	return idleBench
}
