package workload

import "sync"

// The 10 NAS Parallel Benchmarks (OpenMP versions, Section II). DC and IS
// are the paper's named outliers: short runs with rapid phase changes.
var npbSpecs = []profileSpec{
	{name: "BT", class: Balanced, fp: true, phases: 2, gInst: 95, noise: 0.03},
	{name: "CG", class: MemBound, fp: true, phases: 2, gInst: 60, noise: 0.04},
	{name: "DC", class: MemBound, phases: 4, loops: 4, gInst: 12, noise: 0.18, tune: tuneDC},
	{name: "EP", class: CPUBound, fp: true, phases: 1, gInst: 110, noise: 0.01},
	{name: "FT", class: Balanced, fp: true, phases: 3, gInst: 80, noise: 0.05},
	{name: "IS", class: MemBound, phases: 3, loops: 3, gInst: 10, noise: 0.15, tune: tuneIS},
	{name: "LU", class: Balanced, fp: true, phases: 2, gInst: 90, noise: 0.04},
	{name: "MG", class: MemBound, fp: true, phases: 2, gInst: 70, noise: 0.05},
	{name: "SP", class: MemBound, fp: true, phases: 2, gInst: 85, noise: 0.04},
	{name: "UA", class: Balanced, fp: true, phases: 3, gInst: 80, noise: 0.06},
}

// tuneDC gives DC the violent I/O-like phase swings the paper blames for
// its model outliers.
func tuneDC(b *Benchmark) {
	for i := range b.Phases {
		if i%2 == 0 {
			b.Phases[i].PerInst.L2Miss = b.Phases[i].PerInst.L2Req * 0.6
			b.Phases[i].L3MissRatio = 0.85
			b.Phases[i].BaseCPI = 1.1
		} else {
			b.Phases[i].PerInst.L2Miss = b.Phases[i].PerInst.L2Req * 0.08
			b.Phases[i].BaseCPI = 0.55
		}
	}
}

// tuneIS shapes IS as a short bucket-sort: bandwidth-hungry bursts.
func tuneIS(b *Benchmark) {
	setAll(b, func(p *Phase) {
		p.PerInst.DCAccess = 0.58
		p.MLP = 3.2
	})
	if len(b.Phases) >= 2 {
		b.Phases[1].PerInst.L2Miss = b.Phases[1].PerInst.L2Req * 0.55
		b.Phases[1].L3MissRatio = 0.9
	}
}

var (
	npbOnce sync.Once
	npbList []*Benchmark
)

// NPBBenchmarks returns the 10 NPB profiles.
func NPBBenchmarks() []*Benchmark {
	npbOnce.Do(func() {
		for _, s := range npbSpecs {
			s.suite = "NPB"
			npbList = append(npbList, build(s))
		}
	})
	out := make([]*Benchmark, len(npbList))
	copy(out, npbList)
	return out
}

// NPBByName returns the named NPB profile, panicking if unknown.
func NPBByName(name string) *Benchmark {
	for _, b := range NPBBenchmarks() {
		if b.Name == name {
			return b
		}
	}
	panic("workload: unknown NPB benchmark " + name)
}
