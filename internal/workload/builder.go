package workload

import "math/rand"

// profileSpec is the compact description from which a full Benchmark
// profile is generated deterministically.
type profileSpec struct {
	name   string
	suite  string
	class  Class
	fp     bool
	phases int     // number of distinct phases (≥1)
	loops  int     // phase-sequence repetitions
	gInst  float64 // instructions per thread, in billions
	noise  float64 // per-interval jitter σ
	// tune, when non-nil, adjusts the generated profile (used for the
	// paper's featured benchmarks whose behaviour must match the text).
	tune func(*Benchmark)
}

// classBand holds the parameter ranges for one memory-boundedness class.
type classBand struct {
	baseCPI     [2]float64
	uops        [2]float64
	fpu         [2]float64 // only when fp
	icFetch     [2]float64
	dcAccess    [2]float64
	l2Req       [2]float64
	branch      [2]float64
	mispredFrac [2]float64 // mispredicts as a fraction of branches
	l2MissFrac  [2]float64 // L2 misses as a fraction of L2 requests
	l3MissRatio [2]float64
	mlp         [2]float64
	prefetch    [2]float64
	tlbWalk     [2]float64
}

var bands = map[Class]classBand{
	CPUBound: {
		baseCPI:     [2]float64{0.45, 0.90},
		uops:        [2]float64{1.10, 1.45},
		fpu:         [2]float64{0.35, 0.75},
		icFetch:     [2]float64{0.20, 0.30},
		dcAccess:    [2]float64{0.35, 0.50},
		l2Req:       [2]float64{0.004, 0.020},
		branch:      [2]float64{0.10, 0.22},
		mispredFrac: [2]float64{0.01, 0.08},
		l2MissFrac:  [2]float64{0.02, 0.15},
		l3MissRatio: [2]float64{0.10, 0.40},
		mlp:         [2]float64{1.0, 2.0},
		prefetch:    [2]float64{0.001, 0.01},
		tlbWalk:     [2]float64{0.0005, 0.004},
	},
	Balanced: {
		baseCPI:     [2]float64{0.55, 1.05},
		uops:        [2]float64{1.15, 1.50},
		fpu:         [2]float64{0.25, 0.60},
		icFetch:     [2]float64{0.20, 0.32},
		dcAccess:    [2]float64{0.38, 0.55},
		l2Req:       [2]float64{0.015, 0.050},
		branch:      [2]float64{0.10, 0.20},
		mispredFrac: [2]float64{0.01, 0.06},
		l2MissFrac:  [2]float64{0.10, 0.35},
		l3MissRatio: [2]float64{0.25, 0.60},
		mlp:         [2]float64{1.2, 2.8},
		prefetch:    [2]float64{0.005, 0.03},
		tlbWalk:     [2]float64{0.001, 0.008},
	},
	MemBound: {
		baseCPI:     [2]float64{0.60, 1.10},
		uops:        [2]float64{1.15, 1.45},
		fpu:         [2]float64{0.20, 0.55},
		icFetch:     [2]float64{0.18, 0.28},
		dcAccess:    [2]float64{0.40, 0.58},
		l2Req:       [2]float64{0.035, 0.090},
		branch:      [2]float64{0.08, 0.18},
		mispredFrac: [2]float64{0.005, 0.04},
		l2MissFrac:  [2]float64{0.25, 0.60},
		l3MissRatio: [2]float64{0.45, 0.85},
		mlp:         [2]float64{1.3, 3.5},
		prefetch:    [2]float64{0.01, 0.06},
		tlbWalk:     [2]float64{0.002, 0.015},
	},
}

func draw(rng *rand.Rand, r [2]float64) float64 {
	return r[0] + rng.Float64()*(r[1]-r[0])
}

// build generates the full Benchmark for a spec. Generation is a pure
// function of the spec (the RNG is seeded from the name), so every process
// sees identical profiles.
func build(s profileSpec) *Benchmark {
	rng := rngFor(s.suite + "/" + s.name)
	b := &Benchmark{
		Name:         s.name,
		Suite:        s.suite,
		Class:        s.class,
		FP:           s.fp,
		Instructions: s.gInst * 1e9,
		Loops:        s.loops,
	}
	band := bands[s.class]
	n := s.phases
	if n < 1 {
		n = 1
	}
	// Dirichlet-ish weights: positive, normalized.
	weights := make([]float64, n)
	sum := 0.0
	for i := range weights {
		weights[i] = 0.4 + rng.Float64()
		sum += weights[i]
	}
	for i := range weights {
		weights[i] /= sum
	}
	for i := 0; i < n; i++ {
		fpu := 0.0
		if s.fp {
			fpu = draw(rng, band.fpu)
		} else {
			fpu = rng.Float64() * 0.05 // integer code still issues stray FP ops
		}
		l2req := draw(rng, band.l2Req)
		branch := draw(rng, band.branch)
		p := Phase{
			Name:    phaseName(i),
			Weight:  weights[i],
			BaseCPI: draw(rng, band.baseCPI),
			PerInst: Rates{
				Uops:     draw(rng, band.uops),
				FPU:      fpu,
				ICFetch:  draw(rng, band.icFetch),
				DCAccess: draw(rng, band.dcAccess),
				L2Req:    l2req,
				Branch:   branch,
				Mispred:  branch * draw(rng, band.mispredFrac),
				L2Miss:   l2req * draw(rng, band.l2MissFrac),
				Prefetch: draw(rng, band.prefetch),
				TLBWalk:  draw(rng, band.tlbWalk),
			},
			L3MissRatio: draw(rng, band.l3MissRatio),
			MLP:         draw(rng, band.mlp),
			Noise:       s.noise,
		}
		b.Phases = append(b.Phases, p)
	}
	// Frequency sensitivities: the Observation 1 violations. The paper
	// measures 0.6–5.0% VF5↔VF2 differences, with data-cache accesses
	// (E4) and L2 misses (E8) the largest. (f/f5−1) is −0.514 at VF2, so
	// ε of 0.01–0.10 yields that range.
	for i := range b.FreqSens {
		mag := 0.01 + rng.Float64()*0.03
		if i == 3 || i == 7 { // DCAccess, L2Miss
			mag = 0.04 + rng.Float64()*0.06
		}
		if rng.Intn(2) == 0 {
			mag = -mag
		}
		b.FreqSens[i] = mag
	}
	if s.tune != nil {
		s.tune(b)
	}
	return b
}

func phaseName(i int) string {
	names := []string{"init", "main", "compute", "reduce", "finish", "aux"}
	if i < len(names) {
		return names[i]
	}
	return names[len(names)-1]
}

// setAll applies fn to every phase of b — a tuning helper.
func setAll(b *Benchmark, fn func(*Phase)) {
	for i := range b.Phases {
		fn(&b.Phases[i])
	}
}
