package workload

import (
	"fmt"
	"strconv"
	"strings"
)

// Member is one program of a benchmark combination with its thread count.
type Member struct {
	Bench   *Benchmark
	Threads int
}

// Run is one "benchmark combination" in the paper's sense: the unit of the
// 152-entry evaluation set. SPEC combinations are multi-programmed
// (several single-threaded members); PARSEC and NPB runs are one
// multi-threaded member.
type Run struct {
	Name    string
	Suite   string // "SPE", "PAR", "NPB" — the paper's Figure 2 labels
	Members []Member
}

// TotalThreads returns the number of hardware threads the run occupies.
func (r Run) TotalThreads() int {
	n := 0
	for _, m := range r.Members {
		n += m.Threads
	}
	return n
}

// String renders the run like the paper's Figure 6 axis ("400+401").
func (r Run) String() string { return r.Name }

// The SPEC CPU2006 multi-programmed combinations, straight from the
// Figure 6 axis: 29 single, 15 double, 10 triple, and 7 quad runs = 61.
var specComboNumbers = [][]string{
	// 15 doubles
	{"400", "401"}, {"403", "429"}, {"445", "456"}, {"458", "462"},
	{"464", "471"}, {"473", "483"}, {"410", "416"}, {"433", "434"},
	{"435", "436"}, {"437", "444"}, {"447", "450"}, {"453", "454"},
	{"459", "465"}, {"470", "481"}, {"482", "429"},
	// 10 triples
	{"400", "401", "403"}, {"429", "445", "456"}, {"458", "462", "464"},
	{"471", "473", "483"}, {"410", "416", "433"}, {"434", "435", "436"},
	{"437", "444", "447"}, {"450", "453", "454"}, {"459", "465", "470"},
	{"481", "482", "429"},
	// 7 quads
	{"400", "401", "403", "429"}, {"445", "456", "458", "462"},
	{"464", "471", "473", "483"}, {"410", "416", "433", "434"},
	{"435", "436", "437", "444"}, {"447", "450", "453", "454"},
	{"459", "465", "470", "481"},
}

// SPECRuns returns the 61 SPEC combinations (29 single-programmed plus the
// 32 multi-programmed mixes above).
func SPECRuns() []Run {
	var runs []Run
	for _, b := range SPECBenchmarks() {
		runs = append(runs, Run{
			Name:    strings.SplitN(b.Name, ".", 2)[0],
			Suite:   "SPE",
			Members: []Member{{Bench: b, Threads: 1}},
		})
	}
	for _, combo := range specComboNumbers {
		r := Run{Name: strings.Join(combo, "+"), Suite: "SPE"}
		for _, num := range combo {
			r.Members = append(r.Members, Member{Bench: SPECByNumber(num), Threads: 1})
		}
		runs = append(runs, r)
	}
	return runs
}

// threadCounts are the thread sweeps for the multi-threaded suites.
var threadCounts = []int{1, 2, 4, 8}

// PARSECRuns returns 51 multi-threaded PARSEC runs: 13 applications × the
// {1,2,4,8}-thread sweep, minus dedup×8 (dedup's native run is too short
// at 8 threads to produce a usable trace — the paper reports 51 PARSEC
// runs, not 52).
func PARSECRuns() []Run {
	var runs []Run
	for _, b := range PARSECBenchmarks() {
		for _, t := range threadCounts {
			if b.Name == "dedup" && t == 8 {
				continue
			}
			runs = append(runs, Run{
				Name:    fmt.Sprintf("%s x%d", b.Name, t),
				Suite:   "PAR",
				Members: []Member{{Bench: b, Threads: t}},
			})
		}
	}
	return runs
}

// NPBRuns returns the 40 NPB runs: 10 benchmarks × the {1,2,4,8}-thread
// sweep.
func NPBRuns() []Run {
	var runs []Run
	for _, b := range NPBBenchmarks() {
		for _, t := range threadCounts {
			runs = append(runs, Run{
				Name:    fmt.Sprintf("%s x%d", b.Name, t),
				Suite:   "NPB",
				Members: []Member{{Bench: b, Threads: t}},
			})
		}
	}
	return runs
}

// AllRuns returns the paper's full 152-combination evaluation set:
// 61 SPEC + 51 PARSEC + 40 NPB.
func AllRuns() []Run {
	var runs []Run
	runs = append(runs, SPECRuns()...)
	runs = append(runs, PARSECRuns()...)
	runs = append(runs, NPBRuns()...)
	return runs
}

// MultiInstance builds the Section V runs: n concurrent instances of one
// SPEC program ("433 x2"), each instance a separate single-threaded
// member, as in Figures 8–11.
func MultiInstance(num string, n int) Run {
	r := Run{Name: fmt.Sprintf("%s x%d", num, n), Suite: "SPE"}
	b := SPECByNumber(num)
	for i := 0; i < n; i++ {
		r.Members = append(r.Members, Member{Bench: b, Threads: 1})
	}
	return r
}

// CappingMix is the Figure 7 workload: 429.mcf, 458.sjeng, 416.gamess and
// swaptions, one per compute unit.
func CappingMix() Run {
	return Run{
		Name:  "429+458+416+swaptions",
		Suite: "MIX",
		Members: []Member{
			{Bench: SPECByNumber("429"), Threads: 1},
			{Bench: SPECByNumber("458"), Threads: 1},
			{Bench: SPECByNumber("416"), Threads: 1},
			{Bench: PARSECByName("swaptions"), Threads: 1},
		},
	}
}

// ParseRunSpec parses a command-line workload spec: "433x2" runs two
// instances of 433.milc, "mix" is the Figure 7 capping mix, a bare SPEC
// number ("429") runs a single instance.
func ParseRunSpec(s string) (Run, error) {
	if s == "mix" {
		return CappingMix(), nil
	}
	num, count := s, 1
	if i := strings.LastIndexByte(s, 'x'); i > 0 {
		n, err := strconv.Atoi(s[i+1:])
		if err != nil || n < 1 || n > 8 {
			return Run{}, fmt.Errorf("workload %q: bad instance count", s)
		}
		num, count = s[:i], n
	}
	initSPEC()
	if _, ok := specByNum[num]; !ok {
		return Run{}, fmt.Errorf("workload %q: unknown SPEC number %q", s, num)
	}
	return MultiInstance(num, count), nil
}
