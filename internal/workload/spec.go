package workload

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// The 29 SPEC CPU2006 programs the paper runs (Figure 6 axis). Featured
// programs — 429.mcf, 433.milc, 458.sjeng, 416.gamess — carry hand tuning
// so their signatures match the paper's description (433.milc "typical
// memory-bound", 458.sjeng "typical CPU-bound").
var specSpecs = []profileSpec{
	{name: "400.perlbench", class: CPUBound, phases: 3, gInst: 90, noise: 0.06},
	{name: "401.bzip2", class: Balanced, phases: 3, loops: 2, gInst: 80, noise: 0.07},
	{name: "403.gcc", class: Balanced, phases: 4, gInst: 70, noise: 0.10},
	{name: "410.bwaves", class: MemBound, fp: true, phases: 2, gInst: 110, noise: 0.04},
	{name: "416.gamess", class: CPUBound, fp: true, phases: 2, gInst: 120, noise: 0.03, tune: tuneGamess},
	{name: "429.mcf", class: MemBound, phases: 2, gInst: 50, noise: 0.08, tune: tuneMcf},
	{name: "433.milc", class: MemBound, fp: true, phases: 2, gInst: 75, noise: 0.05, tune: tuneMilc},
	{name: "434.zeusmp", class: Balanced, fp: true, phases: 2, gInst: 95, noise: 0.04},
	{name: "435.gromacs", class: CPUBound, fp: true, phases: 2, gInst: 100, noise: 0.03},
	{name: "436.cactusADM", class: MemBound, fp: true, phases: 1, gInst: 90, noise: 0.03},
	{name: "437.leslie3d", class: MemBound, fp: true, phases: 2, gInst: 85, noise: 0.04},
	{name: "444.namd", class: CPUBound, fp: true, phases: 2, gInst: 115, noise: 0.02},
	{name: "445.gobmk", class: CPUBound, phases: 3, gInst: 85, noise: 0.06},
	{name: "447.dealII", class: Balanced, fp: true, phases: 3, gInst: 95, noise: 0.05},
	{name: "450.soplex", class: MemBound, fp: true, phases: 3, gInst: 60, noise: 0.08},
	{name: "453.povray", class: CPUBound, fp: true, phases: 2, gInst: 105, noise: 0.04},
	{name: "454.calculix", class: CPUBound, fp: true, phases: 2, gInst: 110, noise: 0.04},
	{name: "456.hmmer", class: CPUBound, phases: 1, gInst: 120, noise: 0.02},
	{name: "458.sjeng", class: CPUBound, phases: 2, gInst: 95, noise: 0.04, tune: tuneSjeng},
	{name: "459.GemsFDTD", class: MemBound, fp: true, phases: 2, gInst: 80, noise: 0.05},
	{name: "462.libquantum", class: MemBound, phases: 1, gInst: 90, noise: 0.03},
	{name: "464.h264ref", class: CPUBound, phases: 3, gInst: 100, noise: 0.05},
	{name: "465.tonto", class: Balanced, fp: true, phases: 3, gInst: 90, noise: 0.05},
	{name: "470.lbm", class: MemBound, fp: true, phases: 1, gInst: 70, noise: 0.02},
	{name: "471.omnetpp", class: MemBound, phases: 2, gInst: 55, noise: 0.07},
	{name: "473.astar", class: Balanced, phases: 2, gInst: 75, noise: 0.06},
	{name: "481.wrf", class: Balanced, fp: true, phases: 4, loops: 2, gInst: 95, noise: 0.06},
	{name: "482.sphinx3", class: Balanced, fp: true, phases: 2, gInst: 85, noise: 0.05},
	{name: "483.xalancbmk", class: Balanced, phases: 3, gInst: 70, noise: 0.07},
}

// tuneMilc pins 433.milc to the paper's "typical memory-bound" profile.
func tuneMilc(b *Benchmark) {
	setAll(b, func(p *Phase) {
		p.BaseCPI = 0.65
		p.PerInst.L2Req = 0.090
		p.PerInst.L2Miss = 0.055
		p.PerInst.FPU = 0.55
		p.L3MissRatio = 0.75
		p.MLP = 3.0
	})
}

// tuneSjeng pins 458.sjeng to the paper's "typical CPU-bound" profile:
// branchy integer code that fits in cache.
func tuneSjeng(b *Benchmark) {
	setAll(b, func(p *Phase) {
		p.BaseCPI = 0.80
		p.PerInst.L2Req = 0.009
		p.PerInst.L2Miss = 0.0008
		p.PerInst.Branch = 0.20
		p.PerInst.Mispred = 0.013
		p.PerInst.FPU = 0.01
		p.L3MissRatio = 0.25
		p.MLP = 1.2
	})
}

// tuneMcf makes 429.mcf the most memory-bound program in the suite.
func tuneMcf(b *Benchmark) {
	setAll(b, func(p *Phase) {
		p.BaseCPI = 0.85
		p.PerInst.L2Req = 0.105
		p.PerInst.L2Miss = 0.056
		p.PerInst.DCAccess = 0.52
		p.L3MissRatio = 0.62
		p.MLP = 1.5
	})
}

// tuneGamess makes 416.gamess a heavily FP, cache-resident program.
func tuneGamess(b *Benchmark) {
	setAll(b, func(p *Phase) {
		p.BaseCPI = 0.55
		p.PerInst.FPU = 0.70
		p.PerInst.L2Req = 0.006
		p.PerInst.L2Miss = 0.0005
		p.L3MissRatio = 0.20
		p.MLP = 1.1
	})
}

var (
	specOnce  sync.Once
	specList  []*Benchmark
	specByNum map[string]*Benchmark
)

func initSPEC() {
	specOnce.Do(func() {
		specByNum = make(map[string]*Benchmark, len(specSpecs))
		for _, s := range specSpecs {
			s.suite = "SPEC"
			b := build(s)
			specList = append(specList, b)
			num := strings.SplitN(s.name, ".", 2)[0]
			specByNum[num] = b
		}
	})
}

// SPECBenchmarks returns the 29 SPEC CPU2006 profiles in suite order.
func SPECBenchmarks() []*Benchmark {
	initSPEC()
	out := make([]*Benchmark, len(specList))
	copy(out, specList)
	return out
}

// SPECByNumber looks a SPEC program up by its three-digit number
// ("429" → 429.mcf). It panics on an unknown number: combination tables
// are static and a miss is a programming error.
func SPECByNumber(num string) *Benchmark {
	initSPEC()
	b, ok := specByNum[num]
	if !ok {
		known := make([]string, 0, len(specByNum))
		for k := range specByNum {
			known = append(known, k)
		}
		sort.Strings(known)
		panic(fmt.Sprintf("workload: unknown SPEC number %q (known: %v)", num, known))
	}
	return b
}
