package workload

import (
	"encoding/json"
	"fmt"
	"io"
)

// profileJSON is the on-disk form of a benchmark profile, so adopters can
// describe their own workloads without recompiling. Field names mirror
// the Benchmark/Phase structs.
type profileJSON struct {
	Name         string      `json:"name"`
	Suite        string      `json:"suite,omitempty"`
	Class        string      `json:"class,omitempty"`
	FP           bool        `json:"fp,omitempty"`
	Instructions float64     `json:"instructions"`
	Loops        int         `json:"loops,omitempty"`
	FreqSens     []float64   `json:"freq_sens,omitempty"`
	Phases       []phaseJSON `json:"phases"`
}

type phaseJSON struct {
	Name        string  `json:"name,omitempty"`
	Weight      float64 `json:"weight"`
	BaseCPI     float64 `json:"base_cpi"`
	L3MissRatio float64 `json:"l3_miss_ratio"`
	MLP         float64 `json:"mlp"`
	Noise       float64 `json:"noise,omitempty"`

	Uops     float64 `json:"uops_per_inst"`
	FPU      float64 `json:"fpu_per_inst,omitempty"`
	ICFetch  float64 `json:"ic_per_inst"`
	DCAccess float64 `json:"dc_per_inst"`
	L2Req    float64 `json:"l2req_per_inst"`
	Branch   float64 `json:"branch_per_inst"`
	Mispred  float64 `json:"mispred_per_inst"`
	L2Miss   float64 `json:"l2miss_per_inst"`
	Prefetch float64 `json:"prefetch_per_inst,omitempty"`
	TLBWalk  float64 `json:"tlbwalk_per_inst,omitempty"`
}

var classNames = map[string]Class{
	"":          Balanced,
	"cpu-bound": CPUBound,
	"balanced":  Balanced,
	"mem-bound": MemBound,
}

// LoadProfile reads one benchmark profile from JSON and validates it.
func LoadProfile(r io.Reader) (*Benchmark, error) {
	var in profileJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("workload: decode profile: %w", err)
	}
	cls, ok := classNames[in.Class]
	if !ok {
		return nil, fmt.Errorf("workload: unknown class %q", in.Class)
	}
	b := &Benchmark{
		Name:         in.Name,
		Suite:        in.Suite,
		Class:        cls,
		FP:           in.FP,
		Instructions: in.Instructions,
		Loops:        in.Loops,
	}
	if b.Suite == "" {
		b.Suite = "custom"
	}
	if len(in.FreqSens) > len(b.FreqSens) {
		return nil, fmt.Errorf("workload: %d freq_sens entries, max %d", len(in.FreqSens), len(b.FreqSens))
	}
	copy(b.FreqSens[:], in.FreqSens)
	for i, p := range in.Phases {
		name := p.Name
		if name == "" {
			name = phaseName(i)
		}
		b.Phases = append(b.Phases, Phase{
			Name:        name,
			Weight:      p.Weight,
			BaseCPI:     p.BaseCPI,
			L3MissRatio: p.L3MissRatio,
			MLP:         p.MLP,
			Noise:       p.Noise,
			PerInst: Rates{
				Uops: p.Uops, FPU: p.FPU, ICFetch: p.ICFetch,
				DCAccess: p.DCAccess, L2Req: p.L2Req, Branch: p.Branch,
				Mispred: p.Mispred, L2Miss: p.L2Miss,
				Prefetch: p.Prefetch, TLBWalk: p.TLBWalk,
			},
		})
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}

// SaveProfile writes a benchmark profile as indented JSON.
func SaveProfile(w io.Writer, b *Benchmark) error {
	if err := b.Validate(); err != nil {
		return err
	}
	out := profileJSON{
		Name:         b.Name,
		Suite:        b.Suite,
		Class:        b.Class.String(),
		FP:           b.FP,
		Instructions: b.Instructions,
		Loops:        b.Loops,
		FreqSens:     append([]float64(nil), b.FreqSens[:]...),
	}
	for _, p := range b.Phases {
		out.Phases = append(out.Phases, phaseJSON{
			Name: p.Name, Weight: p.Weight, BaseCPI: p.BaseCPI,
			L3MissRatio: p.L3MissRatio, MLP: p.MLP, Noise: p.Noise,
			Uops: p.PerInst.Uops, FPU: p.PerInst.FPU,
			ICFetch: p.PerInst.ICFetch, DCAccess: p.PerInst.DCAccess,
			L2Req: p.PerInst.L2Req, Branch: p.PerInst.Branch,
			Mispred: p.PerInst.Mispred, L2Miss: p.PerInst.L2Miss,
			Prefetch: p.PerInst.Prefetch, TLBWalk: p.PerInst.TLBWalk,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
