package workload

import "sync"

// The 13 PARSEC 2.1 applications, run multi-threaded with the "native"
// inputs (Section II). swaptions is featured in the paper's power-capping
// mix; dedup is one of the named outliers (short run, rapid phases).
var parsecSpecs = []profileSpec{
	{name: "blackscholes", class: CPUBound, fp: true, phases: 1, gInst: 80, noise: 0.02},
	{name: "bodytrack", class: CPUBound, fp: true, phases: 3, gInst: 70, noise: 0.06},
	{name: "canneal", class: MemBound, phases: 2, gInst: 55, noise: 0.07},
	{name: "dedup", class: Balanced, phases: 4, loops: 3, gInst: 14, noise: 0.16, tune: tuneDedup},
	{name: "facesim", class: Balanced, fp: true, phases: 3, gInst: 85, noise: 0.05},
	{name: "ferret", class: Balanced, phases: 4, gInst: 75, noise: 0.08},
	{name: "fluidanimate", class: Balanced, fp: true, phases: 2, gInst: 90, noise: 0.04},
	{name: "freqmine", class: Balanced, phases: 3, gInst: 80, noise: 0.06},
	{name: "raytrace", class: CPUBound, fp: true, phases: 2, gInst: 95, noise: 0.04},
	{name: "streamcluster", class: MemBound, fp: true, phases: 2, gInst: 65, noise: 0.05},
	{name: "swaptions", class: CPUBound, fp: true, phases: 1, gInst: 100, noise: 0.02, tune: tuneSwaptions},
	{name: "vips", class: Balanced, phases: 3, gInst: 75, noise: 0.06},
	{name: "x264", class: Balanced, phases: 4, loops: 2, gInst: 70, noise: 0.09},
}

// tuneSwaptions pins swaptions as pure compute (Monte-Carlo pricing):
// cache-resident, FP-heavy, very steady.
func tuneSwaptions(b *Benchmark) {
	setAll(b, func(p *Phase) {
		p.BaseCPI = 0.50
		p.PerInst.FPU = 0.65
		p.PerInst.L2Req = 0.005
		p.PerInst.L2Miss = 0.0004
		p.L3MissRatio = 0.15
		p.MLP = 1.1
	})
}

// tuneDedup exaggerates phase contrast: dedup's pipeline stages
// (chunk/compress/write) alternate quickly, which the paper identifies as
// a source of counter-multiplexing error.
func tuneDedup(b *Benchmark) {
	if len(b.Phases) >= 4 {
		b.Phases[0].PerInst.L2Miss = b.Phases[0].PerInst.L2Req * 0.55
		b.Phases[0].L3MissRatio = 0.8
		b.Phases[1].PerInst.L2Miss = b.Phases[1].PerInst.L2Req * 0.05
		b.Phases[1].BaseCPI = 0.5
		b.Phases[2].PerInst.L2Miss = b.Phases[2].PerInst.L2Req * 0.45
		b.Phases[3].BaseCPI = 1.0
	}
}

var (
	parsecOnce sync.Once
	parsecList []*Benchmark
)

// PARSECBenchmarks returns the 13 PARSEC profiles.
func PARSECBenchmarks() []*Benchmark {
	parsecOnce.Do(func() {
		for _, s := range parsecSpecs {
			s.suite = "PARSEC"
			parsecList = append(parsecList, build(s))
		}
	})
	out := make([]*Benchmark, len(parsecList))
	copy(out, parsecList)
	return out
}

// PARSECByName returns the named PARSEC profile, panicking if unknown.
func PARSECByName(name string) *Benchmark {
	for _, b := range PARSECBenchmarks() {
		if b.Name == name {
			return b
		}
	}
	panic("workload: unknown PARSEC benchmark " + name)
}
