package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestProfileJSONRoundTrip(t *testing.T) {
	orig := SPECByNumber("433")
	var buf bytes.Buffer
	if err := SaveProfile(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := LoadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.Class != orig.Class || got.FP != orig.FP {
		t.Errorf("identity fields differ: %+v", got)
	}
	if got.Instructions != orig.Instructions || got.Loops != orig.Loops {
		t.Error("length fields differ")
	}
	if got.FreqSens != orig.FreqSens {
		t.Error("freq sensitivities differ")
	}
	if len(got.Phases) != len(orig.Phases) {
		t.Fatalf("phase count %d vs %d", len(got.Phases), len(orig.Phases))
	}
	for i := range got.Phases {
		if got.Phases[i] != orig.Phases[i] {
			t.Errorf("phase %d differs:\n got %+v\nwant %+v", i, got.Phases[i], orig.Phases[i])
		}
	}
}

func TestLoadProfileValidates(t *testing.T) {
	cases := map[string]string{
		"not json":      "{",
		"unknown field": `{"name":"x","instructions":1,"bogus":true,"phases":[]}`,
		"bad class":     `{"name":"x","class":"turbo","instructions":1,"phases":[]}`,
		"no phases":     `{"name":"x","instructions":1,"phases":[]}`,
		"invalid phase": `{"name":"x","instructions":1,"phases":[{"weight":1,"base_cpi":0.1,"mlp":1,"uops_per_inst":1.2}]}`,
		"too many sens": `{"name":"x","instructions":1,"freq_sens":[0,0,0,0,0,0,0,0,0],"phases":[{"weight":1,"base_cpi":0.5,"mlp":1,"uops_per_inst":1.2}]}`,
	}
	for name, body := range cases {
		if _, err := LoadProfile(strings.NewReader(body)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestLoadProfileDefaults(t *testing.T) {
	body := `{
		"name": "mykernel",
		"instructions": 5e9,
		"phases": [
			{"weight": 1, "base_cpi": 0.7, "mlp": 2,
			 "uops_per_inst": 1.4, "ic_per_inst": 0.2, "dc_per_inst": 0.4,
			 "l2req_per_inst": 0.03, "branch_per_inst": 0.1,
			 "mispred_per_inst": 0.002, "l2miss_per_inst": 0.01,
			 "l3_miss_ratio": 0.5}
		]
	}`
	b, err := LoadProfile(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if b.Suite != "custom" {
		t.Errorf("suite default %q", b.Suite)
	}
	if b.Class != Balanced {
		t.Errorf("class default %v", b.Class)
	}
	if b.Phases[0].Name == "" {
		t.Error("phase name not defaulted")
	}
	// A loaded profile runs on the simulator like any built-in one.
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSaveProfileRejectsInvalid(t *testing.T) {
	b := &Benchmark{Name: "bad"}
	if err := SaveProfile(&bytes.Buffer{}, b); err == nil {
		t.Error("invalid profile saved")
	}
}
