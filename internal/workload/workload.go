// Package workload defines the synthetic benchmark profiles standing in
// for SPEC CPU2006, PARSEC, and the NAS Parallel Benchmarks (NPB), and the
// exact 152 benchmark combinations of the paper's evaluation (Section II).
//
// The paper's models never see instructions or data — they see hardware
// event signatures: per-instruction rates for the Table I events, CPI
// decomposition, memory-boundedness, and phase behaviour. A profile
// therefore describes a program as a sequence of phases, each with
// per-instruction event rates and a mechanistic CPI breakdown. The
// simulator (internal/fxsim, internal/uarch) turns profiles into counter
// and power traces.
package workload

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
)

// Class is the coarse memory-boundedness class of a program, used to draw
// its per-instruction rates from a plausible band.
type Class int

const (
	// CPUBound programs fit in cache and are limited by the pipeline
	// (e.g. 458.sjeng, 416.gamess, swaptions, NPB EP).
	CPUBound Class = iota
	// Balanced programs mix compute with moderate cache misses.
	Balanced
	// MemBound programs are dominated by off-core memory time
	// (e.g. 429.mcf, 433.milc, 470.lbm, NPB CG).
	MemBound
)

// String names the class.
func (c Class) String() string {
	switch c {
	case CPUBound:
		return "cpu-bound"
	case Balanced:
		return "balanced"
	case MemBound:
		return "mem-bound"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Rates holds per-instruction rates for the core-private activity the
// Table I events observe, plus activity invisible to any counter (used
// only by the ground-truth power model, as on real silicon).
type Rates struct {
	Uops     float64 // E1: micro-ops per instruction (≥1)
	FPU      float64 // E2: FPU pipe assignments per instruction
	ICFetch  float64 // E3: instruction cache fetches per instruction
	DCAccess float64 // E4: data cache accesses per instruction
	L2Req    float64 // E5: L1 misses / requests to L2 per instruction
	Branch   float64 // E6: branches per instruction
	Mispred  float64 // E7: mispredicted branches per instruction
	L2Miss   float64 // E8: L2 misses per instruction (go to the NB)

	// Unobservable activity: counted by no PMC but it burns power.
	// These are a deliberate gap between the ground truth and PPEP's
	// nine-event model.
	Prefetch float64 // hardware prefetches per instruction
	TLBWalk  float64 // table walks per instruction
}

// Phase is one program phase: a stable region of behaviour covering a
// fraction of the program's instructions.
type Phase struct {
	Name   string
	Weight float64 // fraction of the program's instructions, Σ=1
	// BaseCPI is the core-only CPI excluding branch mispredict penalties
	// and off-core memory stalls: issue constraints plus core-local
	// stalls (dependencies, L2-latency shadows). Must be ≥ 1/IssueWidth.
	BaseCPI float64
	PerInst Rates
	// L3MissRatio is the fraction of L2 misses that also miss L3 and go
	// to DRAM.
	L3MissRatio float64
	// MLP is the memory-level parallelism: how many leading-load
	// latencies overlap, dividing exposed memory time. ≥ 1.
	MLP float64
	// Noise is the relative σ of the slowly-varying AR(1) jitter applied
	// to this phase's rates each interval.
	Noise float64
}

// Benchmark is one program profile.
type Benchmark struct {
	Name  string
	Suite string // "SPEC", "PARSEC", "NPB", or "micro"
	Class Class
	FP    bool // floating-point heavy
	// Instructions is the per-thread instruction count of a full run.
	Instructions float64
	// Loops repeats the phase sequence, creating phase alternation.
	// A value ≤ 1 means the phases run once, in order.
	Loops int
	// Phases in execution order; weights sum to 1 (per loop).
	Phases []Phase
	// FreqSens holds small per-event sensitivities ε such that a rate is
	// multiplied by (1 + ε·(f/fTop − 1)). Real programs violate the
	// paper's Observation 1 by 0.6–5% between VF5 and VF2; this is how
	// the violation enters the simulation. Index order matches Rates
	// field order (Uops..L2Miss).
	FreqSens [8]float64
}

// Validate checks structural invariants of the profile.
func (b *Benchmark) Validate() error {
	if b.Name == "" {
		return fmt.Errorf("workload: benchmark with empty name")
	}
	if b.Instructions <= 0 {
		return fmt.Errorf("workload %s: non-positive instruction count", b.Name)
	}
	if len(b.Phases) == 0 {
		return fmt.Errorf("workload %s: no phases", b.Name)
	}
	total := 0.0
	for i, p := range b.Phases {
		if p.Weight <= 0 {
			return fmt.Errorf("workload %s: phase %d non-positive weight", b.Name, i)
		}
		if p.BaseCPI < 0.25 {
			return fmt.Errorf("workload %s: phase %d BaseCPI %.3f below 1/IssueWidth", b.Name, i, p.BaseCPI)
		}
		if p.MLP < 1 {
			return fmt.Errorf("workload %s: phase %d MLP %.3f < 1", b.Name, i, p.MLP)
		}
		if p.L3MissRatio < 0 || p.L3MissRatio > 1 {
			return fmt.Errorf("workload %s: phase %d L3MissRatio %.3f outside [0,1]", b.Name, i, p.L3MissRatio)
		}
		r := p.PerInst
		if r.Uops < 1 {
			return fmt.Errorf("workload %s: phase %d uops/inst %.3f < 1", b.Name, i, r.Uops)
		}
		if r.Mispred > r.Branch {
			return fmt.Errorf("workload %s: phase %d more mispredicts than branches", b.Name, i)
		}
		if r.L2Miss > r.L2Req {
			return fmt.Errorf("workload %s: phase %d more L2 misses than L2 requests", b.Name, i)
		}
		for _, v := range []float64{r.FPU, r.ICFetch, r.DCAccess, r.L2Req, r.Branch, r.Mispred, r.L2Miss, r.Prefetch, r.TLBWalk} {
			if v < 0 {
				return fmt.Errorf("workload %s: phase %d negative rate", b.Name, i)
			}
		}
		total += p.Weight
	}
	if total < 0.999 || total > 1.001 {
		return fmt.Errorf("workload %s: phase weights sum to %.4f", b.Name, total)
	}
	return nil
}

// loops returns the effective loop count (≥1).
func (b *Benchmark) loops() int {
	if b.Loops < 1 {
		return 1
	}
	return b.Loops
}

// PhaseAt returns the phase in effect after `done` retired instructions
// (of the b.Instructions total), honouring the loop structure. Past the
// end it returns the final phase.
func (b *Benchmark) PhaseAt(done float64) *Phase {
	if done < 0 {
		done = 0
	}
	loops := float64(b.loops())
	perLoop := b.Instructions / loops
	frac := 0.0
	if perLoop > 0 {
		if done >= b.Instructions {
			// Past the end: stay in the final loop iteration.
			frac = 1
		} else {
			frac = math.Mod(done, perLoop) / perLoop
		}
	}
	acc := 0.0
	for i := range b.Phases {
		acc += b.Phases[i].Weight
		if frac < acc {
			return &b.Phases[i]
		}
	}
	return &b.Phases[len(b.Phases)-1]
}

// seedFor derives a stable RNG seed from a benchmark name, so profile
// generation is deterministic across runs and platforms.
func seedFor(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// rngFor returns a deterministic RNG for the named benchmark.
func rngFor(name string) *rand.Rand { return rand.New(rand.NewSource(seedFor(name))) }
