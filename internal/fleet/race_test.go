package fleet

import (
	"sync"
	"testing"
)

// TestFleetConcurrentSnapshotReaders is the fleet mirror of the serve
// package's TestPredictBatchConcurrentSwaps: one goroutine advances the
// fleet while readers hammer Snapshot. Under -race this proves the
// publish is safe; the assertions prove snapshots are never torn — a
// torn read would show aggregates diverging from a node-order
// recomputation over the rows, or a sequence number moving backwards.
func TestFleetConcurrentSnapshotReaders(t *testing.T) {
	e, err := New(Config{Nodes: 16, Workers: 2, Mix: MixJittered, IdealSensor: true})
	if err != nil {
		t.Fatal(err)
	}

	const intervals = 8
	done := make(chan struct{})
	go func() {
		defer close(done)
		e.AdvanceN(intervals)
	}()

	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastSeq uint64
			for {
				s := e.Snapshot()
				if s.Seq < lastSeq {
					t.Errorf("snapshot sequence moved backwards: %d after %d", s.Seq, lastSeq)
					return
				}
				lastSeq = s.Seq
				if len(s.Nodes) != 16 {
					t.Errorf("torn snapshot: %d nodes", len(s.Nodes))
					return
				}
				var meas, truew float64
				busy := 0
				for i := range s.Nodes {
					row := &s.Nodes[i]
					if row.Node != i || row.Intervals != s.Seq {
						t.Errorf("torn snapshot seq %d: row %d has Node=%d Intervals=%d",
							s.Seq, i, row.Node, row.Intervals)
						return
					}
					meas += row.MeasPowerW
					truew += row.TruePowerW
					busy += row.BusyCores
				}
				if meas != s.TotalMeasW || truew != s.TotalTrueW || busy != s.BusyCores {
					t.Errorf("torn snapshot seq %d: aggregates diverge from rows", s.Seq)
					return
				}
				select {
				case <-done:
					return
				default:
				}
			}
		}()
	}
	wg.Wait()
	<-done

	if got := e.Snapshot().Seq; got != intervals {
		t.Errorf("final Seq = %d, want %d", got, intervals)
	}
}
