// Package fleet advances many independent simulated PPEP nodes — one
// fxsim.Chip plus per-node PPEP analysis each — in lockstep decision
// intervals over a bounded worker pool, and publishes the fleet's state
// after every interval as an immutable snapshot behind an atomic
// pointer. It is the engine and snapshot layer of the ROADMAP's
// fleet-scale story; the cluster power-capping controller that will
// consume the snapshots is future work.
//
// Determinism contract: a node's entire identity (workload, jitter,
// thread placement, VF state, sensor seed, thermal environment) is a
// pure function of (mix, fleet seed, node index), and every node owns
// disjoint state, so per-node interval streams — and therefore the
// per-node fingerprints — are bit-identical at any worker or shard
// count. TestFleetShardInvariance pins this the same way the campaign
// and engine golden tests pin theirs.
//
// Concurrency contract: one goroutine calls Advance; any number of
// goroutines call Snapshot concurrently with it. Snapshots are
// immutable once published — readers may retain them indefinitely.
package fleet

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"ppep/internal/arch"
	"ppep/internal/core"
	"ppep/internal/fxsim"
	"ppep/internal/trace"
	"ppep/internal/units"
)

// DefaultShardNodes is the shard granularity when Config.ShardNodes is
// zero: small enough to load-balance heterogeneous mixes across
// workers, large enough that the per-shard dispatch cost is noise
// against ~8 node-intervals of simulation.
const DefaultShardNodes = 8

// Config sizes and seeds a fleet.
type Config struct {
	// Nodes is the fleet size (required, ≥ 1).
	Nodes int
	// Workers bounds the pool advancing the fleet; 0 means GOMAXPROCS.
	// Workers=1 advances inline on the calling goroutine.
	Workers int
	// ShardNodes is the number of consecutive nodes one pool job
	// advances; 0 means DefaultShardNodes. Shard size never affects
	// results, only load balance.
	ShardNodes int
	// Seed is the fleet identity seed; 0 means 42. Every per-node seed
	// and jitter derives from (Seed, node index).
	Seed int64
	// Mix selects the workload-mix preset; empty means MixJittered.
	Mix Mix
	// Models, when non-nil, runs the PPEP analysis on every node's
	// interval and publishes per-VF predicted chip power in the
	// snapshot. Models are read-only at analysis time, so one trained
	// set is safely shared by all workers.
	Models *core.Models
	// IdealSensor replaces each node's noisy power sensor with a
	// perfect one.
	IdealSensor bool
}

// node is one simulated machine plus the scratch its worker reuses
// every interval. Each node is written only by the pool job that owns
// its index (the forEachJob owned-slot discipline), so nodes need no
// locks.
type node struct {
	chip *fxsim.Chip
	// iv and rep are reused across intervals (ReadIntervalInto /
	// AnalyzeInto), which is what makes the steady-state advance
	// allocation-free.
	iv  trace.Interval
	rep core.Report
	// fp is the node's running interval fingerprint (trace.Fold): the
	// bit-exactness witness the invariance tests compare.
	fp         uint64
	intervals  uint64
	analyzeErr uint64
}

// Engine owns the fleet. Construct with New; see the package comment
// for the concurrency contract.
type Engine struct {
	cfg        Config
	workers    int
	shardNodes int
	nShards    int
	nVF        int
	nodes      []node
	// rows is the publish staging buffer: shard jobs write disjoint
	// index ranges, publish copies it into the immutable snapshot.
	rows []NodeStat
	seq  uint64
	snap atomic.Pointer[Snapshot]
}

// New builds a fleet at simulation time zero and publishes an initial
// (interval-zero) snapshot. Construction is sequential: node identity
// derivation is cheap next to simulating even one interval.
func New(cfg Config) (*Engine, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("fleet: Nodes must be ≥ 1, got %d", cfg.Nodes)
	}
	if cfg.Workers < 0 || cfg.ShardNodes < 0 {
		return nil, fmt.Errorf("fleet: negative Workers or ShardNodes")
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	if cfg.Mix == "" {
		cfg.Mix = MixJittered
	}
	e := &Engine{
		cfg:        cfg,
		workers:    cfg.Workers,
		shardNodes: cfg.ShardNodes,
		nodes:      make([]node, cfg.Nodes),
		rows:       make([]NodeStat, cfg.Nodes),
	}
	if e.workers == 0 {
		e.workers = runtime.GOMAXPROCS(0)
	}
	if e.shardNodes == 0 {
		e.shardNodes = DefaultShardNodes
	}
	e.nShards = (cfg.Nodes + e.shardNodes - 1) / e.shardNodes

	chipCfg := fxsim.DefaultFX8320Config()
	chipCfg.IdealSensor = cfg.IdealSensor
	e.nVF = len(chipCfg.Topology.VF)
	if e.nVF > MaxVFStates {
		return nil, fmt.Errorf("fleet: VF table has %d states, snapshot rows hold %d", e.nVF, MaxVFStates)
	}
	if cfg.Models != nil && len(cfg.Models.Table) != e.nVF {
		return nil, fmt.Errorf("fleet: models trained on %d VF states, platform has %d", len(cfg.Models.Table), e.nVF)
	}
	for i := range e.nodes {
		plan, err := planNode(cfg.Mix, cfg.Seed, i)
		if err != nil {
			return nil, err
		}
		nodeCfg := chipCfg
		nodeCfg.SensorSeed = plan.sensorSeed
		chip := fxsim.New(nodeCfg)
		if err := chip.SetAllPStates(plan.vf); err != nil {
			return nil, fmt.Errorf("fleet: node %d: %w", i, err)
		}
		if plan.warmTempK > 0 {
			chip.SetTempK(units.Kelvin(plan.warmTempK))
		}
		for t := 0; t < plan.threads; t++ {
			if err := chip.Bind(t, plan.bench, true); err != nil {
				return nil, fmt.Errorf("fleet: node %d core %d: %w", i, t, err)
			}
		}
		e.nodes[i] = node{chip: chip, fp: trace.FingerprintSeed}
		e.fillRow(i)
	}
	e.publish()
	return e, nil
}

// Nodes returns the fleet size.
func (e *Engine) Nodes() int { return len(e.nodes) }

// Workers returns the effective pool width.
func (e *Engine) Workers() int { return e.workers }

// Advance steps every node by one DVFS decision interval
// (arch.DecisionIntervalMS of 1 ms ticks), closes each node's
// measurement interval, folds it into the node's running fingerprint,
// optionally runs the PPEP analysis, and publishes a new snapshot.
// Steady-state cost is zero allocations per node (per-node scratch is
// reused; TestAdvanceSteadyAllocs pins the budget) — deliberately not a
// //ppep:hotpath zero-alloc root, because the publish allocates the new
// immutable snapshot, which readers may retain. See Snapshot.
func (e *Engine) Advance() {
	forEachJob(e.nShards, e.workers, func(shard int) {
		lo := shard * e.shardNodes
		hi := lo + e.shardNodes
		if hi > len(e.nodes) {
			hi = len(e.nodes)
		}
		for i := lo; i < hi; i++ {
			e.stepNode(i)
		}
	})
	e.seq++
	e.publish()
}

// AdvanceN runs n decision intervals back-to-back.
func (e *Engine) AdvanceN(n int) {
	for i := 0; i < n; i++ {
		e.Advance()
	}
}

// stepNode advances one node by one decision interval and refreshes its
// staging row. It touches only state owned by node i.
func (e *Engine) stepNode(i int) {
	n := &e.nodes[i]
	n.chip.TickN(arch.DecisionIntervalMS)
	n.chip.ReadIntervalInto(&n.iv)
	n.fp = n.iv.Fold(n.fp)
	n.intervals++
	if e.cfg.Models != nil {
		if err := e.cfg.Models.AnalyzeInto(n.iv, &n.rep); err != nil {
			n.analyzeErr++
		}
	}
	e.fillRow(i)
}

// fillRow refreshes node i's staging row from its current state.
func (e *Engine) fillRow(i int) {
	n := &e.nodes[i]
	row := &e.rows[i]
	row.Node = i
	row.TimeS = n.iv.TimeS
	row.VF = n.iv.VF()
	row.BusyCores = 0
	for _, b := range n.iv.Busy {
		if b {
			row.BusyCores++
		}
	}
	row.MeasPowerW = n.iv.MeasPowerW
	row.TruePowerW = n.iv.TruePowerW
	row.TempK = n.iv.TempK
	row.Intervals = n.intervals
	row.Fingerprint = n.fp
	row.AnalyzeErrs = n.analyzeErr
	row.Analyzed = e.cfg.Models != nil && n.intervals > 0 && n.analyzeErr == 0
	for s := 0; s < MaxVFStates; s++ {
		row.PredChipW[s] = 0
	}
	if row.Analyzed {
		for s := 0; s < e.nVF; s++ {
			row.PredChipW[s] = n.rep.PerVF[s].ChipW
		}
	}
}

// Fingerprint returns node i's running interval fingerprint — the
// bit-exactness witness of its whole simulated history. Callers must
// not race it with Advance; tests and the smoke CLI read it between
// intervals (concurrent readers use Snapshot).
func (e *Engine) Fingerprint(i int) uint64 { return e.nodes[i].fp }

// forEachJob runs fn(i) for every i in [0,n) on a bounded pool — the
// same owned-slot shape the experiment campaigns use (and poolsafety
// lints): min(workers, n) goroutines drain an index channel, workers=1
// runs inline, and every job writes only state owned by its index.
func forEachJob(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}
