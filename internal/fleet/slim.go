package fleet

import (
	"ppep/internal/arch"
	"ppep/internal/core"
	"ppep/internal/fxsim"
	"ppep/internal/trace"
	"ppep/internal/workload"
)

// SlimModels trains a reduced but valid PPEP model set in under a
// second: idle heat/cool traces at every VF state plus four SPEC
// benchmarks across the table — the same slimmed campaign the serve
// package's tests train with. The fleet smoke CLI and the loadgen
// self-serve mode both use it where a full Section IV campaign would
// dominate their runtime.
func SlimModels() (*core.Models, error) {
	ts := core.TrainingSet{IdleTraces: map[arch.VFState]*trace.Trace{}}
	for _, vf := range arch.FX8320VFTable.States() {
		chip := fxsim.New(fxsim.DefaultFX8320Config())
		tr, err := chip.HeatCool(vf, 40, 80)
		if err != nil {
			return nil, err
		}
		ts.IdleTraces[vf] = tr
	}
	for _, num := range []string{"429", "433", "458", "416"} {
		b := *workload.SPECByNumber(num)
		b.Instructions = 8e9
		for _, vf := range arch.FX8320VFTable.States() {
			chip := fxsim.New(fxsim.DefaultFX8320Config())
			r := workload.Run{Name: num, Suite: "SPE",
				Members: []workload.Member{{Bench: &b, Threads: 1}}}
			tr, err := chip.Collect(r, fxsim.RunOpts{VF: vf, WarmTempK: 315})
			if err != nil {
				return nil, err
			}
			ts.Runs = append(ts.Runs, core.RunTrace{Name: num, Suite: "SPE", VF: vf, Trace: tr})
		}
	}
	return core.Train(ts, arch.FX8320VFTable)
}
