package fleet

import (
	"ppep/internal/arch"
	"ppep/internal/units"
)

// MaxVFStates bounds the per-row predicted-power array. Keeping the
// per-VF predictions inline (rather than a slice per row) makes
// NodeStat plain data: the publish path copies the whole staging
// buffer with one memcpy and rows share nothing with engine scratch.
// Both simulated platforms have 5 states; 8 leaves headroom.
const MaxVFStates = 8

// NodeStat is one node's published state as of a snapshot. It is plain
// data — copying the struct copies everything.
type NodeStat struct {
	// Node is the node index (stable fleet-wide identity).
	Node int
	// TimeS is the node's simulation time at the end of its last
	// closed interval (0 until the first Advance).
	TimeS float64
	// VF is the chip-wide VF state of the last interval.
	VF arch.VFState
	// BusyCores counts cores with live threads in the last interval.
	BusyCores int
	// MeasPowerW and TruePowerW are the last interval's sensor mean
	// and oracle mean chip power.
	MeasPowerW float64
	TruePowerW float64
	// TempK is the thermal diode reading at the end of the interval.
	TempK float64
	// Intervals counts closed decision intervals.
	Intervals uint64
	// Fingerprint is the node's running interval fingerprint (an
	// incremental trace.Trace.Fingerprint over its whole history); the
	// shard-invariance tests compare these across worker counts.
	Fingerprint uint64
	// Analyzed reports whether PredChipW is populated (models
	// configured and every analysis so far succeeded).
	Analyzed bool
	// AnalyzeErrs counts failed per-interval analyses.
	AnalyzeErrs uint64
	// PredChipW is the PPEP-predicted chip power at each VF state
	// (index 0 = VF1), from the node's last interval. Only the first
	// NVF (see Snapshot) entries are meaningful.
	PredChipW [MaxVFStates]units.Watts
}

// Snapshot is an immutable view of the whole fleet after one decision
// interval. Readers obtain it lock-free from Engine.Snapshot and may
// retain it indefinitely; the engine never mutates a published
// snapshot.
type Snapshot struct {
	// Seq increments by one per Advance; the initial (pre-advance)
	// snapshot is Seq 0.
	Seq uint64
	// TimeS is the fleet-lockstep simulation time (Seq × 0.2 s).
	TimeS float64
	// NVF is the number of meaningful entries in each PredChipW.
	NVF int
	// Nodes holds one row per node, indexed by node id.
	Nodes []NodeStat

	// Fleet aggregates, accumulated in node order (deterministic
	// float64 sums).
	TotalMeasW float64
	TotalTrueW float64
	BusyCores  int
	// TotalPredW is the fleet-total PPEP-predicted power if every node
	// moved to the given VF state — the curve the future capping
	// controller searches. Only the first NVF entries are meaningful,
	// and only nodes with Analyzed=true contribute.
	TotalPredW [MaxVFStates]units.Watts
	// AnalyzedNodes counts the nodes contributing to TotalPredW.
	AnalyzedNodes int
}

// TotalPredAt returns the fleet-total predicted power at a VF state.
func (s *Snapshot) TotalPredAt(vf arch.VFState) units.Watts {
	return s.TotalPredW[int(vf)-1]
}

// Snapshot returns the most recently published fleet snapshot. It is
// safe to call from any goroutine at any time and never blocks
// Advance.
func (e *Engine) Snapshot() *Snapshot {
	return e.snap.Load()
}

// publish assembles an immutable snapshot from the staging rows and
// swaps it in. Runs single-threaded after the shard barrier, so the
// aggregate sums are in node order — worker count cannot perturb
// float64 accumulation. This is the only steady-state allocation site
// of the engine: a published snapshot must outlive the next interval
// in readers' hands, so its row slice cannot be pooled.
func (e *Engine) publish() {
	s := &Snapshot{
		Seq:   e.seq,
		TimeS: float64(e.seq) * float64(arch.DecisionIntervalMS) / 1000,
		NVF:   e.nVF,
		Nodes: make([]NodeStat, len(e.rows)),
	}
	copy(s.Nodes, e.rows)
	for i := range s.Nodes {
		row := &s.Nodes[i]
		s.TotalMeasW += row.MeasPowerW
		s.TotalTrueW += row.TruePowerW
		s.BusyCores += row.BusyCores
		if row.Analyzed {
			s.AnalyzedNodes++
			for v := 0; v < e.nVF; v++ {
				s.TotalPredW[v] += row.PredChipW[v]
			}
		}
	}
	e.snap.Store(s)
}
