package fleet

import (
	"runtime"
	"testing"

	"ppep/internal/arch"
)

// goldenFleetFP is the node-0 fingerprint of the reference fleet
// (seed 42, mixed preset, 8 nodes) after 5 decision intervals — the
// cross-refactor witness that node identity derivation and the
// simulated histories stay bit-exact, the same way golden_test.go pins
// single-chip runs. Any worker or shard count must reproduce it.
const goldenFleetFP = 0x5fbfe6c1c5624a2b

const (
	goldenNodes     = 8
	goldenIntervals = 5
)

func goldenConfig() Config {
	return Config{Nodes: goldenNodes, Mix: MixMixed, IdealSensor: true}
}

// runFleet advances a fleet and returns every node's fingerprint.
func runFleet(t *testing.T, cfg Config, intervals int) []uint64 {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.AdvanceN(intervals)
	fps := make([]uint64, e.Nodes())
	for i := range fps {
		fps[i] = e.Fingerprint(i)
	}
	return fps
}

// TestFleetShardInvariance pins the determinism contract: per-node
// fingerprints are bit-identical at workers ∈ {1, 2, NumCPU} and across
// shard sizes, and node 0 of the reference fleet matches the golden
// constant.
func TestFleetShardInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-configuration fleet run")
	}
	base := goldenConfig()
	base.Workers = 1
	ref := runFleet(t, base, goldenIntervals)
	if ref[0] != goldenFleetFP {
		t.Errorf("golden fleet node-0 fingerprint = %#x, want %#x", ref[0], goldenFleetFP)
	}
	variants := []Config{
		{Nodes: goldenNodes, Mix: MixMixed, IdealSensor: true, Workers: 2},
		{Nodes: goldenNodes, Mix: MixMixed, IdealSensor: true, Workers: runtime.NumCPU()},
		{Nodes: goldenNodes, Mix: MixMixed, IdealSensor: true, Workers: 2, ShardNodes: 1},
		{Nodes: goldenNodes, Mix: MixMixed, IdealSensor: true, Workers: runtime.NumCPU(), ShardNodes: 3},
	}
	for _, cfg := range variants {
		got := runFleet(t, cfg, goldenIntervals)
		for i := range ref {
			if got[i] != ref[i] {
				t.Errorf("workers=%d shard=%d: node %d fingerprint %#x, want %#x",
					cfg.Workers, cfg.ShardNodes, i, got[i], ref[i])
			}
		}
	}
}

// TestFleetNodeIdentity checks that node identity derivation is a pure
// function of (mix, seed, index): same inputs agree, different nodes
// and different seeds diverge, and jitter never mutates the shared
// workload profiles.
func TestFleetNodeIdentity(t *testing.T) {
	a, err := planNode(MixMixed, 42, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := planNode(MixMixed, 42, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.sensorSeed != b.sensorSeed || a.threads != b.threads || a.vf != b.vf ||
		a.warmTempK != b.warmTempK || a.bench.Phases[0].BaseCPI != b.bench.Phases[0].BaseCPI {
		t.Error("planNode not deterministic")
	}
	c, err := planNode(MixMixed, 42, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.sensorSeed == a.sensorSeed {
		t.Error("adjacent nodes share a sensor seed")
	}
	d, err := planNode(MixMixed, 43, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.sensorSeed == a.sensorSeed {
		t.Error("different fleet seeds produce the same node")
	}
	// a and b cloned the same SPEC profile independently; mutating one
	// must not reach the other (shared-profile aliasing guard).
	a.bench.Phases[0].BaseCPI *= 2
	if a.bench.Phases[0].BaseCPI == b.bench.Phases[0].BaseCPI {
		t.Error("node plans alias the shared benchmark profile")
	}
	for _, mix := range Mixes() {
		if _, err := planNode(mix, 1, 0); err != nil {
			t.Errorf("mix %q: %v", mix, err)
		}
	}
}

func TestParseMix(t *testing.T) {
	for _, m := range Mixes() {
		got, err := ParseMix(string(m))
		if err != nil || got != m {
			t.Errorf("ParseMix(%q) = %v, %v", m, got, err)
		}
	}
	if _, err := ParseMix("bogus"); err == nil {
		t.Error("ParseMix accepted an unknown preset")
	}
}

func TestFleetConfigValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 0}); err == nil {
		t.Error("Nodes=0 accepted")
	}
	if _, err := New(Config{Nodes: 1, Workers: -1}); err == nil {
		t.Error("negative Workers accepted")
	}
	if _, err := New(Config{Nodes: 1, Mix: "bogus"}); err == nil {
		t.Error("unknown mix accepted")
	}
}

// TestAdvanceSteadyAllocs pins the engine's steady-state allocation
// budget at workers=1: per Advance, exactly the immutable snapshot
// (struct + row slice) plus the pool closure — every per-node buffer
// (interval scratch, reports, rows, fingerprints) is reused. Amortized
// per simulated tick that is ~0.0002 allocs for even this small fleet.
func TestAdvanceSteadyAllocs(t *testing.T) {
	e, err := New(Config{Nodes: 16, Workers: 1, Mix: MixJittered, IdealSensor: true})
	if err != nil {
		t.Fatal(err)
	}
	e.AdvanceN(2) // warm up scratch and engine memos
	if n := testing.AllocsPerRun(20, e.Advance); n > 3 {
		t.Errorf("Advance allocates %.1f times per interval, want ≤ 3 (snapshot struct, rows, pool closure)", n)
	}
}

// TestFleetSnapshotTotals checks the published aggregates against a
// recomputation from the rows, and the snapshot sequencing/time base.
func TestFleetSnapshotTotals(t *testing.T) {
	e, err := New(Config{Nodes: 12, Workers: 2, Mix: MixMixed, IdealSensor: true})
	if err != nil {
		t.Fatal(err)
	}
	s0 := e.Snapshot()
	if s0 == nil || s0.Seq != 0 || s0.TimeS != 0 {
		t.Fatalf("initial snapshot = %+v", s0)
	}
	e.AdvanceN(3)
	s := e.Snapshot()
	if s.Seq != 3 {
		t.Errorf("Seq = %d, want 3", s.Seq)
	}
	if want := 3 * float64(arch.DecisionIntervalMS) / 1000; s.TimeS != want {
		t.Errorf("TimeS = %v, want %v", s.TimeS, want)
	}
	if len(s.Nodes) != 12 || s.NVF != len(arch.FX8320VFTable) {
		t.Fatalf("snapshot shape: %d nodes, NVF=%d", len(s.Nodes), s.NVF)
	}
	var meas, true_ float64
	busy := 0
	for i, row := range s.Nodes {
		if row.Node != i {
			t.Errorf("row %d has Node=%d", i, row.Node)
		}
		if row.Intervals != 3 {
			t.Errorf("node %d Intervals = %d, want 3", i, row.Intervals)
		}
		if row.TruePowerW <= 0 || row.TempK <= 0 {
			t.Errorf("node %d implausible: true=%v temp=%v", i, row.TruePowerW, row.TempK)
		}
		if row.Analyzed {
			t.Errorf("node %d Analyzed without models", i)
		}
		meas += row.MeasPowerW
		true_ += row.TruePowerW
		busy += row.BusyCores
	}
	if meas != s.TotalMeasW || true_ != s.TotalTrueW || busy != s.BusyCores {
		t.Errorf("aggregates diverge from rows: meas %v/%v true %v/%v busy %d/%d",
			meas, s.TotalMeasW, true_, s.TotalTrueW, busy, s.BusyCores)
	}
	if s.AnalyzedNodes != 0 {
		t.Errorf("AnalyzedNodes = %d without models", s.AnalyzedNodes)
	}
	// Snapshots are immutable: the earlier one must be untouched.
	if s0.Seq != 0 || s0.Nodes[0].Intervals != 0 {
		t.Error("published snapshot mutated by later Advance")
	}
}

// TestFleetAnalyzed runs a small fleet with slim-trained models and
// checks the per-VF prediction surface the capping controller will
// consume: every node analyzed, per-node and fleet-total predicted
// power positive and increasing in VF, totals equal to the node-order
// sum of rows.
func TestFleetAnalyzed(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	models, err := SlimModels()
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Nodes: 6, Workers: 2, Mix: MixMixed, IdealSensor: true, Models: models})
	if err != nil {
		t.Fatal(err)
	}
	e.AdvanceN(2)
	s := e.Snapshot()
	if s.AnalyzedNodes != 6 {
		t.Fatalf("AnalyzedNodes = %d, want 6", s.AnalyzedNodes)
	}
	var wantTotals [MaxVFStates]float64
	for i, row := range s.Nodes {
		if !row.Analyzed || row.AnalyzeErrs != 0 {
			t.Fatalf("node %d not analyzed (errs=%d)", i, row.AnalyzeErrs)
		}
		for v := 0; v < s.NVF; v++ {
			if row.PredChipW[v] <= 0 {
				t.Errorf("node %d PredChipW[%d] = %v", i, v, row.PredChipW[v])
			}
			if v > 0 && row.PredChipW[v] <= row.PredChipW[v-1] {
				t.Errorf("node %d predicted power not increasing at VF%d", i, v+1)
			}
			wantTotals[v] += float64(row.PredChipW[v])
		}
	}
	for v := 0; v < s.NVF; v++ {
		if float64(s.TotalPredW[v]) != wantTotals[v] {
			t.Errorf("TotalPredW[%d] = %v, node-order sum = %v", v, s.TotalPredW[v], wantTotals[v])
		}
	}
	if s.TotalPredAt(arch.VF1) >= s.TotalPredAt(arch.VF5) {
		t.Error("fleet predicted power not increasing VF1→VF5")
	}
}
