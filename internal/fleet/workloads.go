package fleet

import (
	"fmt"

	"ppep/internal/arch"
	"ppep/internal/workload"
)

// Mix names a fleet workload-mix preset. Presets are deterministic
// functions of (fleet seed, node index): the same preset on the same
// seed always hands node i the same workload, regardless of worker or
// shard count — the invariance the golden fingerprint tests pin.
type Mix string

const (
	// MixSteady runs the canonical zero-noise phase-stable workload on
	// every node — all eight cores busy, every tick quiescent. It is
	// the batched engine's best case and exists as a ceiling reference;
	// it deliberately phase-locks the whole fleet.
	MixSteady Mix = "steady"
	// MixJittered runs a per-node perturbation of the Section IV-D
	// microbenchmark: per-node rate/CPI scaling plus a per-node AR(1)
	// noise level, so the quiescent fast path never silently carries
	// the whole fleet. This is the benchmark default.
	MixJittered Mix = "jittered"
	// MixMixed models a heterogeneous fleet: nodes rotate through
	// CPU-bound, balanced, and memory-bound SPEC profiles with per-node
	// rate jitter, thread counts between 4 and 8, per-node initial VF
	// states, and per-node thermal environments.
	MixMixed Mix = "mixed"
)

// Mixes lists the presets in stable order.
func Mixes() []Mix { return []Mix{MixSteady, MixJittered, MixMixed} }

// ParseMix validates a preset name from a flag.
func ParseMix(s string) (Mix, error) {
	for _, m := range Mixes() {
		if s == string(m) {
			return m, nil
		}
	}
	return "", fmt.Errorf("fleet: unknown mix %q (have %v)", s, Mixes())
}

// nodePlan is everything node construction derives from (seed, index):
// the node-owned benchmark, how many threads to bind, the initial VF
// state, the sensor-noise seed, and an optional starting temperature.
type nodePlan struct {
	bench      *workload.Benchmark
	threads    int
	vf         arch.VFState
	sensorSeed int64
	warmTempK  float64 // 0 = thermal model default
}

// prng is a splitmix64 stream. The fleet derives all per-node identity
// from it rather than math/rand so the derivation is a pure function of
// the seed material with no global state (the determinism analyzer's
// contract for simulation packages).
type prng uint64

// next advances the stream (splitmix64 finalizer).
func (p *prng) next() uint64 {
	*p += 0x9e3779b97f4a7c15
	z := uint64(*p)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unit returns a uniform float64 in [0, 1).
func (p *prng) unit() float64 { return float64(p.next()>>11) / (1 << 53) }

// pct returns a uniform scale factor in [1-j, 1+j].
func (p *prng) pct(j float64) float64 { return 1 + j*(2*p.unit()-1) }

// intn returns a uniform int in [0, n).
func (p *prng) intn(n int) int { return int(p.next() % uint64(n)) }

// nodePRNG keys a node's jitter stream off the fleet seed and the node
// index. The index is mixed through splitmix64 first so consecutive
// nodes land far apart in the stream.
func nodePRNG(seed int64, node int) prng {
	p := prng(uint64(seed))
	q := prng(uint64(node) + 0x5851f42d4c957f2d)
	return prng(p.next() ^ q.next())
}

// cloneBench deep-copies a benchmark profile so per-node jitter never
// mutates the shared package-level profiles (BenchA, the SPEC table).
func cloneBench(b *workload.Benchmark) *workload.Benchmark {
	c := *b
	c.Phases = append([]workload.Phase(nil), b.Phases...)
	return &c
}

// endless makes a profile effectively infinite: fleet nodes run
// time-bounded, never work-bounded, so threads must not finish.
const endlessInstructions = 1e18

// mixedPrograms is the rotation the mixed preset draws from: typical
// CPU-bound, balanced, and memory-bound SPEC profiles (Section II's
// suite, the paper's own diversity axis).
var mixedPrograms = []string{"458", "416", "456", "401", "483", "433", "429", "470"}

// planNode derives node i's complete identity. Everything below is a
// pure function of (mix, seed, i); scheduling order can never leak in.
func planNode(mix Mix, seed int64, i int) (nodePlan, error) {
	r := nodePRNG(seed, i)
	plan := nodePlan{
		threads:    8,
		vf:         arch.VF5,
		sensorSeed: int64(r.next() & 0x7fffffffffffffff),
	}
	switch mix {
	case MixSteady:
		b := cloneBench(workload.BenchSteady())
		b.Instructions = endlessInstructions
		plan.bench = b
	case MixJittered:
		b := cloneBench(workload.BenchA())
		b.Instructions = endlessInstructions
		ph := &b.Phases[0]
		ph.BaseCPI *= r.pct(0.10)
		jitterRates(&ph.PerInst, &r, 0.10)
		// A per-node noise floor keeps every node off the pure
		// quiescent fast path some of the time.
		ph.Noise = 0.002 + 0.01*r.unit()
		plan.bench = b
	case MixMixed:
		b := cloneBench(workload.SPECByNumber(mixedPrograms[i%len(mixedPrograms)]))
		b.Instructions = endlessInstructions
		for pi := range b.Phases {
			ph := &b.Phases[pi]
			ph.BaseCPI *= r.pct(0.08)
			jitterRates(&ph.PerInst, &r, 0.08)
			if ph.BaseCPI < 0.25 {
				ph.BaseCPI = 0.25
			}
		}
		plan.threads = 4 + r.intn(5)          // 4..8
		plan.vf = arch.VFState(3 + r.intn(3)) // VF3..VF5
		plan.warmTempK = 305 + 12*r.unit()    // per-node thermal environment
		plan.bench = b
	default:
		return nodePlan{}, fmt.Errorf("fleet: unknown mix %q", mix)
	}
	if err := plan.bench.Validate(); err != nil {
		return nodePlan{}, fmt.Errorf("fleet: node %d workload invalid after jitter: %w", i, err)
	}
	return plan, nil
}

// jitterRates scales the per-instruction event rates by independent
// factors in [1-j, 1+j], clamping the structural floors the profile
// validator enforces (uops/inst ≥ 1).
func jitterRates(rt *workload.Rates, r *prng, j float64) {
	rt.Uops *= r.pct(j)
	if rt.Uops < 1 {
		rt.Uops = 1
	}
	rt.FPU *= r.pct(j)
	rt.ICFetch *= r.pct(j)
	rt.DCAccess *= r.pct(j)
	rt.L2Req *= r.pct(j)
	rt.Branch *= r.pct(j)
	rt.Mispred *= r.pct(j)
	rt.L2Miss *= r.pct(j)
	rt.Prefetch *= r.pct(j)
	rt.TLBWalk *= r.pct(j)
}
