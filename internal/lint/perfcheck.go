package lint

import (
	"go/ast"
	"go/token"
	"sort"
)

// runPerfcheck enforces three compiler-verified performance budgets
// (docs/LINTING.md "perfcheck"):
//
//  1. Escape budget — every //ppep:hotpath root and its transitive
//     module callees must be free of heap allocations *per the
//     compiler's escape analysis*, not just per the hotpath analyzer's
//     AST heuristics. This catches what syntax cannot: interface
//     boxing through type inference, closure captures, append growth,
//     and locals moved to the heap because their address outlives the
//     frame. The walk honors the same //ppep:allow hotpath call-line
//     boundaries as the hotpath analyzer, so sanctioned amortized slow
//     paths stay out of scope.
//  2. Inline budget — every function annotated //ppep:inline must get
//     a positive "can inline" verdict; a negative verdict is reported
//     with the compiler's verbatim cost/reason.
//  3. Bounds-check budget — every statement annotated //ppep:nobc
//     (loops, in practice: the tick SoA sweeps, the histogram bucket
//     math) must contain zero residual IsInBounds/IsSliceInBounds
//     checks after the SSA prove pass.
//
// A transcript with zero diagnostics of a consumed class is reported
// as toolchain-format drift, not silently treated as a clean module.
func runPerfcheck(m *Module, cfg Config) []Finding {
	var fs []Finding
	d, err := m.perfDiagnostics(cfg)
	if err != nil {
		fs = append(fs, Finding{
			Pos:      m.modulePos(),
			Analyzer: "perfcheck",
			Message:  "diagnostics build failed: " + err.Error(),
		})
		return fs
	}

	fs = append(fs, m.perfDriftFindings(d)...)
	fs = append(fs, m.perfEscapeFindings(d)...)
	fs = append(fs, m.perfInlineFindings(d)...)
	fs = append(fs, m.perfBoundsFindings(d)...)
	return fs
}

// modulePos anchors module-level findings (drift, failed build) to the
// go.mod file so they render as real positions in every output mode.
func (m *Module) modulePos() token.Position {
	return token.Position{Filename: m.Dir + "/go.mod", Line: 1}
}

// perfDriftFindings fails loudly when a whole diagnostic class parsed
// to nothing: the compiler's -m / check_bce output format has no
// stability guarantee, and a silent format drift would turn every
// budget into a no-op that always passes.
func (m *Module) perfDriftFindings(d *PerfDiagnostics) []Finding {
	var fs []Finding
	drift := func(class, flag string) {
		fs = append(fs, Finding{
			Pos:      m.modulePos(),
			Analyzer: "perfcheck",
			Message: "no " + class + " diagnostics parsed from `go build -gcflags='" + perfGcflags +
				"'` (" + d.GoVersion + "): the " + flag +
				" output format may have drifted; update the parser in internal/lint/perfdiag.go",
		})
	}
	if d.NumInlineLines == 0 {
		drift("inlining", "-m")
	}
	if d.NumEscapeLines == 0 {
		drift("escape-analysis", "-m")
	}
	if d.NumBoundsLines == 0 {
		drift("bounds-check", "-d=ssa/check_bce")
	}
	return fs
}

// hotClosure returns every //ppep:hotpath root plus the module
// functions they transitively call, stopping — like the hotpath
// analyzer — at call lines carrying //ppep:allow hotpath (the
// sanctioned amortized slow paths). The check is non-mutating so the
// suppression census stays owned by the hotpath analyzer.
func (m *Module) hotClosure() []*FuncNode {
	visited := map[string]*FuncNode{}
	var visit func(fn *FuncNode)
	visit = func(fn *FuncNode) {
		full := fn.Obj.FullName()
		if visited[full] != nil {
			return
		}
		visited[full] = fn
		if fn.Decl.Body == nil {
			return
		}
		info := fn.Pkg.Info
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeOf(info, call)
			if obj == nil || obj.Pkg() == nil || !m.inModule(obj.Pkg().Path()) {
				return true
			}
			if m.hasAllow("hotpath", m.Fset.Position(call.Pos())) {
				return true
			}
			if callee := m.Funcs[obj.FullName()]; callee != nil {
				visit(callee)
			}
			return true
		})
	}
	var roots []*FuncNode
	for _, fn := range m.Funcs {
		if fn.Hot {
			roots = append(roots, fn)
		}
	}
	sort.Slice(roots, func(i, j int) bool {
		return roots[i].Obj.FullName() < roots[j].Obj.FullName()
	})
	for _, r := range roots {
		visit(r)
	}
	out := make([]*FuncNode, 0, len(visited))
	for _, fn := range visited {
		out = append(out, fn)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Obj.FullName() < out[j].Obj.FullName()
	})
	return out
}

// perfEscapeFindings maps the compiler's heap-allocation decisions
// onto the hot closure: any "escapes to heap" / "moved to heap" whose
// position falls inside a hot function's declaration is a finding.
// When the compiler inlines a sanctioned callee, it attributes the
// inlined body's allocations to the call site — so a diagnostic landing
// on an //ppep:allow hotpath call line is the sanctioned slow path seen
// through the inliner, and stays out of scope like the walk boundary.
func (m *Module) perfEscapeFindings(d *PerfDiagnostics) []Finding {
	var fs []Finding
	for _, fn := range m.hotClosure() {
		start := m.Fset.Position(fn.Decl.Pos())
		end := m.Fset.Position(fn.Decl.End())
		for _, diag := range d.Escapes[start.Filename] {
			if diag.Line < start.Line || diag.Line > end.Line {
				continue
			}
			pos := token.Position{Filename: diag.File, Line: diag.Line, Column: diag.Col}
			if m.hasAllow("hotpath", pos) {
				continue
			}
			if m.allowedAt("perfcheck", pos) {
				continue
			}
			fs = append(fs, Finding{
				Pos:      pos,
				Analyzer: "perfcheck",
				Message: "heap allocation on the hot path per escape analysis: " +
					diag.Msg + " (in " + trimModule(fn.Obj.FullName(), m.Path) + ")",
			})
		}
	}
	return fs
}

// perfInlineFindings checks every //ppep:inline function against the
// compiler's verdict at its declaration line. CanInline wins when both
// verdicts exist at one position (generic shape vs instantiations).
func (m *Module) perfInlineFindings(d *PerfDiagnostics) []Finding {
	var fs []Finding
	var marked []*FuncNode
	for _, fn := range m.Funcs {
		if fn.Inline {
			marked = append(marked, fn)
		}
	}
	sort.Slice(marked, func(i, j int) bool {
		return marked[i].Obj.FullName() < marked[j].Obj.FullName()
	})
	for _, fn := range marked {
		declPos := m.Fset.Position(fn.Decl.Pos())
		key := diagKey(declPos.Filename, declPos.Line)
		if _, ok := d.CanInline[key]; ok {
			continue
		}
		pos := declPos
		if m.allowedAt("perfcheck", pos) {
			continue
		}
		name := trimModule(fn.Obj.FullName(), m.Path)
		if neg, ok := d.CannotInline[key]; ok {
			fs = append(fs, Finding{
				Pos:      pos,
				Analyzer: "perfcheck",
				Message:  "//ppep:inline function is not inlined; compiler says: " + neg.Msg,
			})
			continue
		}
		fs = append(fs, Finding{
			Pos:      pos,
			Analyzer: "perfcheck",
			Message: "no inlining verdict for //ppep:inline function " + name +
				" (was its package excluded from the diagnostics build patterns, or did the -m format drift?)",
		})
	}
	return fs
}

// perfBoundsFindings reports every residual bounds check inside an
// //ppep:nobc statement's line range, quoting the compiler's check
// kind verbatim.
func (m *Module) perfBoundsFindings(d *PerfDiagnostics) []Finding {
	var fs []Finding
	for _, r := range m.nobcRanges {
		for _, diag := range d.Bounds[r.file] {
			if diag.Line < r.fromLine || diag.Line > r.toLine {
				continue
			}
			pos := token.Position{Filename: diag.File, Line: diag.Line, Column: diag.Col}
			if m.allowedAt("perfcheck", pos) {
				continue
			}
			fs = append(fs, Finding{
				Pos:      pos,
				Analyzer: "perfcheck",
				Message: "residual bounds check in //ppep:nobc range (" + r.what + "): compiler reports \"" +
					diag.Msg + "\"; restructure so the prove pass can eliminate it",
			})
		}
	}
	return fs
}
