package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// runLeakcheck requires every `go` statement in the module to carry a
// provable join or cancel, so a fleet-scale process cannot accrete
// orphan goroutines. Accepted shapes:
//
//   - WaitGroup pairing: the goroutine body calls wg.Done() and the
//     enclosing function calls Add on the same WaitGroup (the
//     forEachJob pool's shape).
//   - Channel join: the goroutine body sends on a channel the
//     enclosing function receives from or ranges over (the
//     `errc <- srv.ListenAndServe()` shape).
//   - Cancellation: the goroutine body observes ctx.Done(), a quit
//     channel, or ctx.Err() (see ctxcheck's observation rules).
//   - A named callee handed a context.Context argument, or a channel
//     argument the enclosing function receives from.
//
// Anything else needs `//ppep:allow leakcheck <reason>` at the go
// statement: fire-and-forget is an explicit decision, never a default.
// Test files are outside the loader's scope, so test goroutines (whose
// lifetime the testing package bounds) are not checked.
func runLeakcheck(m *Module) []Finding {
	var fs []Finding
	for _, pkg := range m.Packages {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if gs, ok := n.(*ast.GoStmt); ok {
						checkGoStmt(m, pkg, fd, gs, &fs)
					}
					return true
				})
			}
		}
	}
	return fs
}

func checkGoStmt(m *Module, pkg *Package, fd *ast.FuncDecl, gs *ast.GoStmt, fs *[]Finding) {
	info := pkg.Info
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		if nodeObservesCtx(info, lit.Body) {
			return
		}
		if wgPaired(info, fd.Body, lit.Body) {
			return
		}
		if chanJoined(info, fd.Body, lit.Body) {
			return
		}
	} else {
		for _, arg := range gs.Call.Args {
			if isContextType(info.TypeOf(arg)) {
				return
			}
			if obj := chanObjOf(info, arg); obj != nil && receivesFrom(info, fd.Body, obj) {
				return
			}
		}
	}
	m.emit(fs, "leakcheck", gs.Pos(),
		"goroutine has no provable join or cancel: pair a WaitGroup Add/Done, join on a channel, or observe ctx.Done() in the body (or //ppep:allow leakcheck <reason>)")
}

// wgPaired reports whether the goroutine body calls Done on a
// sync.WaitGroup that the enclosing function calls Add on.
func wgPaired(info *types.Info, enclosing, body *ast.BlockStmt) bool {
	var done []types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		if obj := wgCallRecv(info, n, "Done"); obj != nil {
			done = append(done, obj)
		}
		return true
	})
	if len(done) == 0 {
		return false
	}
	paired := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if obj := wgCallRecv(info, n, "Add"); obj != nil {
			for _, d := range done {
				if d == obj {
					paired = true
				}
			}
		}
		return !paired
	})
	return paired
}

// wgCallRecv matches a call to sync.(*WaitGroup).<method> and returns
// the object the receiver expression is rooted at (the wg variable, or
// the struct variable holding it).
func wgCallRecv(info *types.Info, n ast.Node, method string) types.Object {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return nil
	}
	obj := calleeOf(info, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" || obj.Name() != method {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if root := rootIdent(sel.X); root != nil {
		return info.Uses[root]
	}
	return nil
}

// chanJoined reports whether the goroutine body sends on a channel the
// enclosing function receives from (directly, in a select case, or by
// ranging over it).
func chanJoined(info *types.Info, enclosing, body *ast.BlockStmt) bool {
	var sent []types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		if s, ok := n.(*ast.SendStmt); ok {
			if obj := chanObjOf(info, s.Chan); obj != nil {
				sent = append(sent, obj)
			}
		}
		return true
	})
	for _, obj := range sent {
		if receivesFrom(info, enclosing, obj) {
			return true
		}
	}
	return false
}

// chanObjOf resolves a channel expression to the variable or field
// object it names.
func chanObjOf(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// receivesFrom reports whether the function body receives from or
// ranges over the given channel object.
func receivesFrom(info *types.Info, body *ast.BlockStmt, ch types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && chanObjOf(info, n.X) == ch {
				found = true
			}
		case *ast.RangeStmt:
			if chanObjOf(info, n.X) == ch {
				if _, isChan := info.TypeOf(n.X).Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
