package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// runErrcheck flags error returns that are silently dropped:
//
//   - an expression statement calling a function whose (only or last)
//     result is an error
//   - an assignment discarding an error into _ without an adjacent
//     justification comment (same line or the line above; ppep
//     directives and fixture want-comments don't count)
//
// Writers that cannot fail (or whose failure is conventionally ignored)
// are excluded: fmt.Print/Printf/Println, fmt.Fprint* into
// *bytes.Buffer / *strings.Builder / hash writers or to
// os.Stdout/os.Stderr, and methods on those same always-succeed types.
func runErrcheck(m *Module) []Finding {
	var fs []Finding
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			comments := commentLines(m.Fset, f)
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ExprStmt:
					call, ok := ast.Unparen(n.X).(*ast.CallExpr)
					if !ok {
						return true
					}
					if !returnsError(pkg.Info, call) || exempt(pkg.Info, call) {
						return true
					}
					m.emit(&fs, "errcheck", n.Pos(),
						"error return of %s is silently dropped", callName(pkg.Info, call))
				case *ast.AssignStmt:
					checkBlankErr(m, pkg, n, comments, &fs)
				}
				return true
			})
		}
	}
	return fs
}

// checkBlankErr flags `_ = call()` / `v, _ := call()` discarding an error
// without a justification comment on the same line or the line above.
func checkBlankErr(m *Module, pkg *Package, n *ast.AssignStmt, comments map[int]bool, fs *[]Finding) {
	// Single call with multiple results: _ positions map to result types.
	var resultAt func(i int) types.Type
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		tup, ok := pkg.Info.TypeOf(call).(*types.Tuple)
		if !ok || tup.Len() != len(n.Lhs) {
			return
		}
		if exempt(pkg.Info, call) {
			return
		}
		resultAt = func(i int) types.Type { return tup.At(i).Type() }
	} else if len(n.Lhs) == len(n.Rhs) {
		resultAt = func(i int) types.Type {
			if call, ok := ast.Unparen(n.Rhs[i]).(*ast.CallExpr); ok {
				if exempt(pkg.Info, call) {
					return nil
				}
				return pkg.Info.TypeOf(call)
			}
			return nil
		}
	} else {
		return
	}

	for i, lhs := range n.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		t := resultAt(i)
		if t == nil || !isErrorType(t) {
			continue
		}
		line := m.Fset.Position(n.Pos()).Line
		if comments[line] || comments[line-1] {
			continue // justified
		}
		m.emit(fs, "errcheck", n.Pos(),
			"error discarded into _ without a justification comment")
	}
}

// commentLines records lines carrying a justification-capable comment.
// ppep directives and analyzer-test want-comments are excluded so they
// cannot double as justifications.
func commentLines(fset *token.FileSet, f *ast.File) map[int]bool {
	out := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimLeft(c.Text, "/* "))
			if strings.HasPrefix(c.Text, "//ppep:") || strings.HasPrefix(text, "want ") {
				continue
			}
			start := fset.Position(c.Pos()).Line
			end := fset.Position(c.End()).Line
			for l := start; l <= end; l++ {
				out[l] = true
			}
		}
	}
	return out
}

// returnsError reports whether the call's only or last result is error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	switch t := t.(type) {
	case *types.Tuple:
		return t.Len() > 0 && isErrorType(t.At(t.Len()-1).Type())
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return t.String() == "error" && types.IsInterface(t)
}

// alwaysSucceedTypes are receiver / writer types whose Write-family
// methods are documented never to return a non-nil error.
func alwaysSucceedType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "bytes":
		return obj.Name() == "Buffer"
	case "strings":
		return obj.Name() == "Builder"
	case "hash":
		return true
	}
	// hash.Hash implementations (fnv, crc32, ...) embed hash.Hash; their
	// concrete types live in hash/* packages.
	return strings.HasPrefix(obj.Pkg().Path(), "hash/")
}

// isStdStream reports whether the expression is os.Stdout or os.Stderr —
// terminal diagnostics whose write errors are conventionally ignored.
func isStdStream(info *types.Info, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == "os" && (obj.Name() == "Stdout" || obj.Name() == "Stderr")
}

// exempt reports whether a call's dropped error is conventionally safe:
// fmt printing to stdout, fmt.Fprint* into an always-succeeding writer,
// or a method on such a writer (including hash.Hash values).
func exempt(info *types.Info, call *ast.CallExpr) bool {
	obj := calleeOf(info, call)
	if obj == nil || obj.Pkg() == nil {
		// Method calls through interfaces (hash.Hash.Write) resolve via
		// Selections; check the receiver expression type.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if alwaysSucceedType(info.TypeOf(sel.X)) {
				return true
			}
		}
		return false
	}
	if obj.Pkg().Path() == "fmt" {
		switch obj.Name() {
		case "Print", "Printf", "Println":
			return true
		case "Fprint", "Fprintf", "Fprintln":
			if len(call.Args) > 0 && (alwaysSucceedType(info.TypeOf(call.Args[0])) ||
				isStdStream(info, call.Args[0])) {
				return true
			}
		}
	}
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		if alwaysSucceedType(sig.Recv().Type()) {
			return true
		}
		// Receiver may be the hash.Hash interface itself.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if alwaysSucceedType(info.TypeOf(sel.X)) {
				return true
			}
		}
	}
	return false
}

func callName(info *types.Info, call *ast.CallExpr) string {
	if obj := calleeOf(info, call); obj != nil {
		if obj.Pkg() != nil {
			return obj.Pkg().Name() + "." + obj.Name()
		}
		return obj.Name()
	}
	return "call"
}
