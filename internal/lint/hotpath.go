package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// lockMethods are the sync primitives a hot-path function must not call.
var lockMethods = map[string]bool{
	"Lock": true, "Unlock": true, "RLock": true, "RUnlock": true,
	"Do": true, "Wait": true, "TryLock": true, "TryRLock": true,
}

// runHotpath checks every //ppep:hotpath root and, transitively, every
// module function it calls, for constructs that heap-allocate, block, or
// are nondeterministic:
//
//   - make / new / append and slice or map composite literals
//   - &T{...} (composite literals whose address escapes)
//   - non-constant string concatenation and string<->[]byte/[]rune
//     conversions
//   - boxing a non-pointer value into an interface (assignments and
//     call arguments), and variadic calls (they allocate the arg slice)
//   - closures, defer, go, and channel operations
//   - any call into fmt, time.Now/time.Since, and sync lock methods
//   - dynamic calls (interface methods, function values), which the
//     analyzer cannot follow
//
// Plain struct/array value literals are permitted: they are stack
// constructions unless their address escapes, which the &T{...} and
// boxing checks catch. Calls into other standard-library packages (math,
// math/rand methods, hash, ...) are trusted not to allocate; the
// transitive walk covers module code only.
//
// An //ppep:allow hotpath directive on a call line also stops the
// transitive walk into that callee — the sanctioned escape hatch for
// amortized slow paths (constructors on thread completion, per-phase
// memo refreshes).
func runHotpath(m *Module) []Finding {
	h := &hotChecker{m: m, visited: map[string]bool{}}
	var roots []*FuncNode
	for _, fn := range m.Funcs {
		if fn.Hot {
			roots = append(roots, fn)
		}
	}
	sort.Slice(roots, func(i, j int) bool {
		return roots[i].Obj.FullName() < roots[j].Obj.FullName()
	})
	for _, r := range roots {
		h.visit(r, r)
	}
	return h.findings
}

type hotChecker struct {
	m        *Module
	findings []Finding
	visited  map[string]bool
}

// shortName renders a function for messages, without the module prefix.
func (h *hotChecker) shortName(fn *FuncNode) string {
	name := fn.Obj.FullName()
	// Trim "modulepath/" to keep messages readable.
	return trimModule(name, h.m.Path)
}

func trimModule(s, modPath string) string {
	out := ""
	for i := 0; i < len(s); {
		if j := i + len(modPath) + 1; j <= len(s) && s[i:j] == modPath+"/" {
			i = j
			for i < len(s) && s[i] != '.' && s[i] != ')' {
				out += string(s[i])
				i++
			}
			continue
		}
		out += string(s[i])
		i++
	}
	return out
}

func (h *hotChecker) visit(fn, root *FuncNode) {
	full := fn.Obj.FullName()
	if h.visited[full] {
		return
	}
	h.visited[full] = true
	if fn.Decl.Body == nil {
		return
	}
	where := "in " + h.shortName(fn)
	if fn != root {
		where += ", reached from hot-path root " + h.shortName(root)
	}
	info := fn.Pkg.Info

	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			h.emit(n.Pos(), "go statement on the hot path (%s)", where)
		case *ast.DeferStmt:
			h.emit(n.Pos(), "defer on the hot path (may allocate, always costs) (%s)", where)
		case *ast.SendStmt:
			h.emit(n.Pos(), "channel send blocks the hot path (%s)", where)
		case *ast.FuncLit:
			h.emit(n.Pos(), "closure may allocate on the hot path (%s)", where)
		case *ast.UnaryExpr:
			switch n.Op {
			case token.AND:
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					h.emit(n.Pos(), "&composite literal escapes to the heap (%s)", where)
				}
			case token.ARROW:
				h.emit(n.Pos(), "channel receive blocks the hot path (%s)", where)
			}
		case *ast.CompositeLit:
			if t := info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					h.emit(n.Pos(), "slice/map literal allocates (%s)", where)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.TypeOf(n)) && info.Types[n].Value == nil {
				h.emit(n.Pos(), "string concatenation allocates (%s)", where)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(info.TypeOf(n.Lhs[0])) {
				h.emit(n.Pos(), "string concatenation allocates (%s)", where)
			}
			h.checkBoxingAssign(info, n, where)
		case *ast.CallExpr:
			h.checkCall(info, n, root, where)
		}
		return true
	})
}

func (h *hotChecker) emit(pos token.Pos, format string, args ...any) {
	h.m.emit(&h.findings, "hotpath", pos, format, args...)
}

// checkBoxingAssign flags assignments that convert a concrete non-pointer
// value into an interface (runtime boxing allocates).
func (h *hotChecker) checkBoxingAssign(info *types.Info, n *ast.AssignStmt, where string) {
	if n.Tok != token.ASSIGN || len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i := range n.Lhs {
		lt := info.TypeOf(n.Lhs[i])
		rt := info.TypeOf(n.Rhs[i])
		if lt == nil || rt == nil || !types.IsInterface(lt) {
			continue
		}
		if boxes(rt) {
			h.emit(n.Rhs[i].Pos(), "boxing %s into interface %s allocates (%s)", rt, lt, where)
		}
	}
}

// boxes reports whether converting a value of type t to an interface
// requires a heap allocation. Pointer-shaped values (pointers, channels,
// funcs, unsafe.Pointer, and interfaces themselves) do not.
func boxes(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Signature, *types.Interface:
		return false
	case *types.Basic:
		return u.Kind() != types.UnsafePointer && u.Kind() != types.UntypedNil
	default:
		return true
	}
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// calleeOf resolves a call expression to its static *types.Func, or nil
// for indirect calls through function values.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[f].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

func (h *hotChecker) checkCall(info *types.Info, n *ast.CallExpr, root *FuncNode, where string) {
	tv := info.Types[n.Fun]
	switch {
	case tv.IsType(): // conversion
		if len(n.Args) == 1 && convAllocates(tv.Type, info.TypeOf(n.Args[0])) {
			h.emit(n.Pos(), "conversion to %s allocates (%s)", tv.Type, where)
		}
		return
	case tv.IsBuiltin():
		if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
			switch id.Name {
			case "make", "new", "append":
				h.emit(n.Pos(), "%s allocates (%s)", id.Name, where)
			}
		}
		return
	}

	obj := calleeOf(info, n)
	if obj == nil {
		h.emit(n.Pos(), "indirect call cannot be verified allocation-free (%s)", where)
		return
	}
	sig, _ := obj.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
		h.emit(n.Pos(), "dynamic call %s cannot be verified allocation-free (%s)", obj.Name(), where)
		return
	}
	pkg := obj.Pkg()
	if pkg == nil {
		return // universe scope (error.Error on named error types, etc.)
	}
	full := obj.FullName()
	switch {
	case pkg.Path() == "fmt":
		h.emit(n.Pos(), "call to %s formats and allocates (%s)", full, where)
		return
	case full == "time.Now" || full == "time.Since":
		h.emit(n.Pos(), "%s on the hot path is slow and nondeterministic (%s)", full, where)
		return
	case pkg.Path() == "sync" && lockMethods[obj.Name()]:
		h.emit(n.Pos(), "%s takes a lock on the hot path (%s)", full, where)
		return
	}

	if sig != nil {
		h.checkCallArgs(info, n, sig, where)
	}

	if h.m.inModule(pkg.Path()) {
		// An allow on the call line is a sanctioned boundary: the callee
		// is excluded from the transitive walk.
		if h.m.allowedAt("hotpath", h.m.Fset.Position(n.Pos())) {
			return
		}
		callee := h.m.Funcs[full]
		if callee == nil {
			h.emit(n.Pos(), "no source found for %s called on the hot path (%s)", full, where)
			return
		}
		h.visit(callee, root)
	}
}

// checkCallArgs flags variadic calls (the argument slice allocates) and
// arguments boxed into interface parameters.
func (h *hotChecker) checkCallArgs(info *types.Info, n *ast.CallExpr, sig *types.Signature, where string) {
	plen := sig.Params().Len()
	if sig.Variadic() && n.Ellipsis == token.NoPos && len(n.Args) >= plen {
		h.emit(n.Pos(), "variadic call allocates its argument slice (%s)", where)
	}
	for i, arg := range n.Args {
		var pt types.Type
		switch {
		case i < plen-1 || (!sig.Variadic() && i < plen):
			pt = sig.Params().At(i).Type()
		case sig.Variadic() && n.Ellipsis == token.NoPos:
			if sl, ok := sig.Params().At(plen - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case sig.Variadic():
			pt = sig.Params().At(plen - 1).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if boxes(at) {
			h.emit(arg.Pos(), "passing %s as interface %s allocates (%s)", at, pt, where)
		}
	}
}

// convAllocates reports whether the conversion to `to` from `from`
// allocates: string<->[]byte/[]rune both ways, and integer->string.
func convAllocates(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	toStr, fromStr := isStringType(to), isStringType(from)
	if toStr && byteOrRuneSlice(from) {
		return true
	}
	if fromStr && byteOrRuneSlice(to) {
		return true
	}
	if toStr && !fromStr {
		if b, ok := from.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
			return true
		}
	}
	return false
}

func byteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
