package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// runDeterminism enforces reproducibility in the simulation packages
// (cfg.DeterminismPkgs):
//
//   - no time.Now / time.Since / time.Until — campaign results must not
//     depend on the wall clock
//   - no package-level math/rand functions (rand.Float64, rand.Intn,
//     rand.Shuffle, ...): randomness must flow through a seeded
//     *rand.Rand so a fixed seed reproduces the run bit-for-bit
//   - no `range` over a map when the loop body has order-dependent
//     effects — appending to a slice, accumulating into a float, or
//     writing output — unless the keys are collected and sorted first
//     (or the appended slice is itself sorted before use in the same
//     function). Map iteration order is randomized by the runtime, so
//     an unsorted range with such effects silently breaks the golden
//     fingerprint tests.
func runDeterminism(m *Module, cfg Config) []Finding {
	var fs []Finding
	for _, pkg := range m.Packages {
		if !cfg.DeterminismPkgs[pkg.Path] {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				c := &detChecker{m: m, pkg: pkg, fs: &fs}
				c.sortedSlices = sortedSliceNames(pkg.Info, fd.Body)
				ast.Inspect(fd.Body, c.inspect)
			}
		}
	}
	return fs
}

type detChecker struct {
	m   *Module
	pkg *Package
	fs  *[]Finding
	// sortedSlices names slices that are passed to a sort function
	// somewhere in the enclosing function: appending to them inside a
	// map range is order-independent once sorted.
	sortedSlices map[types.Object]bool
}

func (c *detChecker) inspect(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		obj := calleeOf(c.pkg.Info, n)
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		full := obj.FullName()
		switch {
		case full == "time.Now" || full == "time.Since" || full == "time.Until":
			c.m.emit(c.fs, "determinism", n.Pos(),
				"%s makes simulation output depend on the wall clock; inject a deterministic clock", full)
		case obj.Pkg().Path() == "math/rand" && !randConstructor[obj.Name()] && isPackageLevelRand(c.pkg.Info, n):
			c.m.emit(c.fs, "determinism", n.Pos(),
				"global math/rand.%s is seeded from runtime state; use a seeded *rand.Rand", obj.Name())
		}
	case *ast.RangeStmt:
		c.checkMapRange(n)
	}
	return true
}

// randConstructor names the math/rand functions that build explicitly
// seeded generators — the sanctioned pattern, not a use of the global
// source.
var randConstructor = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// isPackageLevelRand distinguishes rand.Float64() (package-level, banned)
// from r.Float64() on a *rand.Rand value (seeded, fine).
func isPackageLevelRand(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
			return true
		}
	}
	return false
}

// checkMapRange flags `for k, v := range m` over a map whose body has
// order-dependent effects, unless the range is over sorted keys (not a
// map at all) or its effects feed slices that are sorted afterwards.
func (c *detChecker) checkMapRange(rs *ast.RangeStmt) {
	t := c.pkg.Info.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if effect := c.orderDependentEffect(rs.Body); effect != "" {
		c.m.emit(c.fs, "determinism", rs.Pos(),
			"map iteration order is random and the loop body %s; collect and sort the keys first", effect)
	}
}

// orderDependentEffect scans a map-range body for effects whose result
// depends on iteration order. Returns a description of the first one
// found, or "" if the body is order-independent.
//
// Keyed writes (m2[k] = v, m2[k] += v, arr[idx] = v) are fine: each
// iteration touches its own slot, as are writes to variables declared
// inside the loop body (reset every iteration). Appends are fine when
// the destination slice is later sorted in the same function. Float
// accumulation into a loop-external variable, unsorted appends, and any
// output call (fmt printing, io writes) are flagged.
func (c *detChecker) orderDependentEffect(body *ast.BlockStmt) string {
	locals := bodyLocals(c.pkg.Info, body)
	effect := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if effect != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isBuiltinAppend(c.pkg.Info, call) {
					if i < len(n.Lhs) && (c.sortedDest(n.Lhs[i]) || c.localDest(n.Lhs[i], locals)) {
						continue
					}
					effect = "appends to a slice (unsorted afterwards)"
					return false
				}
			}
			if n.Tok == token.ADD_ASSIGN || n.Tok == token.SUB_ASSIGN ||
				n.Tok == token.MUL_ASSIGN || n.Tok == token.QUO_ASSIGN {
				for _, lhs := range n.Lhs {
					// Keyed writes are per-slot, order-independent.
					if _, keyed := ast.Unparen(lhs).(*ast.IndexExpr); keyed {
						continue
					}
					if c.localDest(lhs, locals) {
						continue
					}
					if t := c.pkg.Info.TypeOf(lhs); t != nil {
						if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
							effect = "accumulates into a float (FP addition is not associative)"
							return false
						}
					}
				}
			}
		case *ast.CallExpr:
			if obj := calleeOf(c.pkg.Info, n); obj != nil && obj.Pkg() != nil {
				p := obj.Pkg().Path()
				if p == "fmt" && obj.Name() != "Sprintf" && obj.Name() != "Errorf" && obj.Name() != "Sprint" {
					effect = "emits output via fmt." + obj.Name()
					return false
				}
			}
		}
		return true
	})
	return effect
}

// localDest reports whether the write target's root is declared inside
// the range body, making it per-iteration state.
func (c *detChecker) localDest(lhs ast.Expr, locals map[types.Object]bool) bool {
	id := rootIdent(lhs)
	if id == nil {
		return false
	}
	obj := c.pkg.Info.Uses[id]
	if obj == nil {
		obj = c.pkg.Info.Defs[id]
	}
	return obj != nil && locals[obj]
}

// bodyLocals collects every object declared inside the block: :=
// definitions, var specs, and nested range variables.
func bodyLocals(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if o := info.Defs[id]; o != nil {
							out[o] = true
						}
					}
				}
			}
		case *ast.ValueSpec:
			for _, name := range n.Names {
				if o := info.Defs[name]; o != nil {
					out[o] = true
				}
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if id, ok := e.(*ast.Ident); ok {
					if o := info.Defs[id]; o != nil {
						out[o] = true
					}
				}
			}
		}
		return true
	})
	return out
}

// sortedDest reports whether an append destination is a slice that the
// enclosing function sorts.
func (c *detChecker) sortedDest(lhs ast.Expr) bool {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return false
	}
	obj := c.pkg.Info.Defs[id]
	if obj == nil {
		obj = c.pkg.Info.Uses[id]
	}
	return obj != nil && c.sortedSlices[obj]
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	return info.Types[call.Fun].IsBuiltin()
}

// sortFuncs are the stdlib entry points that make a slice's final order
// independent of how it was filled.
var sortFuncs = map[string]bool{
	"sort.Strings": true, "sort.Ints": true, "sort.Float64s": true,
	"sort.Slice": true, "sort.SliceStable": true, "sort.Sort": true,
	"sort.Stable": true,
	"slices.Sort": true, "slices.SortFunc": true, "slices.SortStableFunc": true,
}

// sortedSliceNames collects every object passed as the first argument to
// a stdlib sort call anywhere in the function body.
func sortedSliceNames(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		obj := calleeOf(info, call)
		if obj == nil || obj.Pkg() == nil || !sortFuncs[obj.Pkg().Path()+"."+obj.Name()] {
			return true
		}
		arg := ast.Unparen(call.Args[0])
		// sort.Sort/Stable take an Interface wrapping the slice; look
		// through a conversion like sort.Float64Slice(xs).
		if conv, ok := arg.(*ast.CallExpr); ok && len(conv.Args) == 1 && info.Types[conv.Fun].IsType() {
			arg = ast.Unparen(conv.Args[0])
		}
		if id, ok := arg.(*ast.Ident); ok {
			if o := info.Uses[id]; o != nil {
				out[o] = true
			}
		}
		return true
	})
	return out
}
