package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The fixture module under testdata/src has its own go.mod so the parent
// module's build, vet, and test sweeps ignore it; it is loaded here
// exactly as ppeplint loads the real module. Expectations live in the
// fixtures as `want "regex"` comments: a trailing comment anchors to its
// own line, a standalone comment line to the line below. Several quoted
// regexes on one line expect several findings there.

var (
	fixtureOnce sync.Once
	fixtureMod  *Module
	fixtureErr  error
)

func fixtureModule(t *testing.T) *Module {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureMod, fixtureErr = Load(filepath.Join("testdata", "src"))
	})
	if fixtureErr != nil {
		t.Fatalf("loading fixture module: %v", fixtureErr)
	}
	return fixtureMod
}

func fixtureConfig() Config {
	return Config{
		DeterminismPkgs: map[string]bool{"fixture/determinism": true},
		PoolFuncNames:   map[string]bool{"forEachJob": true},
		UnitsPkg:        "fixture/units",
		UnitPkgs:        map[string]bool{"fixture/unitcheck": true},
		CtxPkgs:         map[string]bool{"fixture/ctxcheck": true},
	}
}

type wantEntry struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// wantRE matches one double-quoted regex, allowing \" escapes inside.
var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// parseWants extracts want expectations from every fixture file in dir.
func parseWants(t *testing.T, dir string) []*wantEntry {
	t.Helper()
	var wants []*wantEntry
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		abs, err := filepath.Abs(path)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(string(data), "\n")
		for i, line := range lines {
			idx := strings.Index(line, "want \"")
			if idx < 0 {
				continue
			}
			target := i + 1 // 1-based line of the comment itself
			if strings.HasPrefix(strings.TrimSpace(line), "//") {
				// Standalone comment: the expectation is the next
				// substantive line (gofmt may interpose an empty //
				// separator before a directive).
				for target < len(lines) {
					next := strings.TrimSpace(lines[target])
					if next != "" && next != "//" {
						break
					}
					target++
				}
				target++
			}
			for _, qm := range wantRE.FindAllStringSubmatch(line[idx:], -1) {
				raw := strings.NewReplacer(`\"`, `"`, `\\`, `\`).Replace(qm[1])
				re, err := regexp.Compile(raw)
				if err != nil {
					t.Fatalf("%s:%d: bad want regex %q: %v", path, i+1, raw, err)
				}
				wants = append(wants, &wantEntry{file: abs, line: target, re: re, raw: raw})
			}
		}
	}
	return wants
}

// checkFixture runs one analyzer and verifies its findings inside the
// given fixture package against that package's want comments, both ways:
// every want must be hit and every finding must be wanted.
func checkFixture(t *testing.T, analyzer, pkg string) {
	t.Helper()
	m := fixtureModule(t)
	dir := filepath.Join("testdata", "src", pkg)
	absDir, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	wants := parseWants(t, dir)

	var findings []Finding
	for _, f := range m.RunAnalyzer(analyzer, fixtureConfig()) {
		if filepath.Dir(f.Pos.Filename) == absDir {
			findings = append(findings, f)
		}
	}

	for _, f := range findings {
		hit := false
		for _, w := range wants {
			if !w.matched && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.matched = true
				hit = true
				break
			}
		}
		if !hit {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected a finding matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

func TestHotpathFixtures(t *testing.T)     { checkFixture(t, "hotpath", "hotpath") }
func TestDeterminismFixtures(t *testing.T) { checkFixture(t, "determinism", "determinism") }
func TestPoolSafetyFixtures(t *testing.T)  { checkFixture(t, "poolsafety", "poolsafety") }
func TestErrcheckFixtures(t *testing.T)    { checkFixture(t, "errcheck", "errcheck") }
func TestDirectiveFixtures(t *testing.T)   { checkFixture(t, "directive", "directives") }
func TestUnitcheckFixtures(t *testing.T)   { checkFixture(t, "unitcheck", "unitcheck") }
func TestAtomiccheckFixtures(t *testing.T) { checkFixture(t, "atomiccheck", "atomiccheck") }
func TestCtxcheckFixtures(t *testing.T)    { checkFixture(t, "ctxcheck", "ctxcheck") }
func TestLeakcheckFixtures(t *testing.T)   { checkFixture(t, "leakcheck", "leakcheck") }

// TestPerfcheckFixtures compiles the fixture module with the
// diagnostics flags and checks the three budgets against seeded
// regressions: an address-of-local escape on a hot root, an over-budget
// //ppep:inline function, and a //ppep:nobc loop with a free bound.
func TestPerfcheckFixtures(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the fixture module")
	}
	checkFixture(t, "perfcheck", "perfcheck")
}

// TestRunAnalyzersSubset pins the -analyzers plumbing: a subset run
// executes only the named analyzers, scopes the unused-suppression
// check to them, and rejects unknown names.
func TestRunAnalyzersSubset(t *testing.T) {
	m := fixtureModule(t)
	fs, err := m.RunAnalyzers(fixtureConfig(), "leakcheck")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		if f.Analyzer != "leakcheck" {
			t.Errorf("subset run of leakcheck produced a %s finding: %s", f.Analyzer, f)
		}
	}
	if len(fs) == 0 {
		t.Error("subset run of leakcheck found nothing; the fixture guarantees findings")
	}
	if _, err := m.RunAnalyzers(fixtureConfig(), "leakcheck", "nosuch"); err == nil {
		t.Error("RunAnalyzers accepted unknown analyzer name")
	}
}

// TestFindingString pins the report format the Makefile and CI grep for.
func TestFindingString(t *testing.T) {
	f := Finding{Analyzer: "hotpath", Message: "append allocates"}
	f.Pos.Filename = "chip.go"
	f.Pos.Line = 42
	if got, want := f.String(), "chip.go:42: [hotpath] append allocates"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// TestRepoClean runs the full suite over the real module: the tree must
// stay free of unsuppressed findings, which is exactly what `make lint`
// enforces. A finding here means either new code broke an invariant or
// it needs a visible //ppep:allow with a reason.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	m, err := Load(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	findings := m.Run(DefaultConfig(m.Path))
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Log("fix the findings above or add //ppep:allow <analyzer> <reason> at the site")
	}
	// The tree's sanctioned exceptions stay visible here: update this
	// count deliberately when adding or removing an //ppep:allow.
	if got := m.Suppressed(); got != 35 {
		t.Errorf("suppressed findings = %d, want 35 (did an //ppep:allow come or go?)", got)
	}
	// Per-analyzer: the hotpath exceptions are the EPI-scale interface
	// call in uarch and the trace encoder's amortized buffer growth (the
	// old thread-restart allocation is gone — restarts reuse the slot via
	// Core.Reset); the rest are the sanctioned dimensionless sites
	// (docs/UNITS.md). The concurrency analyzers rolled out with zero
	// suppressions: every goroutine joins or cancels, the service loop
	// observes ctx, and all shared counters are typed atomics behind
	// pointer receivers — keep it that way. perfcheck also rolled out
	// clean: zero compiler-verified hot-path escapes, every
	// //ppep:inline site inlined, zero residual bounds checks in
	// //ppep:nobc ranges — new exceptions need a reason the compiler
	// can't argue with.
	by := m.SuppressedBy()
	if by["hotpath"] != 2 || by["unitcheck"] != 33 ||
		by["atomiccheck"] != 0 || by["ctxcheck"] != 0 || by["leakcheck"] != 0 ||
		by["perfcheck"] != 0 {
		t.Errorf("suppressed by analyzer = %v, want hotpath:2 unitcheck:33 and no concurrency- or perf-analyzer suppressions", by)
	}
}

// TestHotRootsAnnotated pins the annotation plumbing: the tick-path
// entry points must carry //ppep:hotpath so the analyzer actually covers
// the paths the 200 ms budget depends on.
func TestHotRootsAnnotated(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	m, err := Load(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	for _, name := range []string{
		"(*ppep/internal/fxsim.Chip).Tick",
		"(*ppep/internal/fxsim.Chip).TickN",
		"(*ppep/internal/fxsim.Chip).fastTick",
		"(*ppep/internal/fxsim.Chip).probeTick",
		"(*ppep/internal/uarch.Core).Step",
		"(*ppep/internal/uarch.Core).StepUntilEvent",
		"(*ppep/internal/uarch.Core).Reset",
		"ppep/internal/mem.LeadingLoadNSPerInst",
		"(*ppep/internal/tracecodec.Encoder).Encode",
	} {
		fn := m.Funcs[name]
		if fn == nil {
			t.Errorf("%s: not found in the function index", name)
			continue
		}
		if !fn.Hot {
			t.Errorf("%s: missing //ppep:hotpath annotation", name)
		}
	}
}

func ExampleFinding_String() {
	f := Finding{Analyzer: "determinism", Message: "map iteration order is random"}
	f.Pos.Filename = "campaign.go"
	f.Pos.Line = 7
	fmt.Println(f)
	// Output: campaign.go:7: [determinism] map iteration order is random
}
