package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// runUnitcheck enforces dimensional discipline around the internal/units
// types (cfg.UnitsPkg):
//
//   - API (cfg.UnitPkgs only): exported functions, methods, and struct
//     fields in the model packages must not traffic in bare float64 —
//     every physical quantity carries its unit type, and genuinely
//     dimensionless values (fractions, ratios, model exponents) carry a
//     //ppep:allow unitcheck <reason> justification instead.
//   - conversions (module-wide): a direct conversion between two distinct
//     unit types — units.Kelvin(c) on a Celsius value, including the
//     laundered form units.Kelvin(float64(c)) — silently reinterprets a
//     number in the wrong dimension. Cross-dimension moves must go
//     through a named helper in the units package (c.Kelvin()).
//   - arithmetic (module-wide): float64(v) * float64(t) with two
//     unit-typed operands annihilates both dimensions at once, and
//     w1 * w2 / w1 / w2 on the same unit type silently changes dimension
//     (watts × watts is not watts). Same-type + and − are fine, as is
//     scaling by a constant or a one-sided float64 cast against a plain
//     scalar; dimension-changing math goes through units helpers
//     (.Per, .Over, .PerRate, ...).
//
// The units package itself is exempt: it is where the escape hatches are
// allowed to live.
func runUnitcheck(m *Module, cfg Config) []Finding {
	var fs []Finding
	if cfg.UnitsPkg == "" {
		return fs
	}
	for _, pkg := range m.Packages {
		if pkg.Path == cfg.UnitsPkg {
			continue
		}
		c := &unitChecker{m: m, pkg: pkg, cfg: cfg, fs: &fs}
		if cfg.UnitPkgs[pkg.Path] {
			c.checkAPI()
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, c.inspect)
		}
	}
	return fs
}

type unitChecker struct {
	m   *Module
	pkg *Package
	cfg Config
	fs  *[]Finding
}

// unitType returns the named unit type behind t (a defined type from
// cfg.UnitsPkg whose underlying type is a float), or nil.
func (c *unitChecker) unitType(t types.Type) *types.Named {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != c.cfg.UnitsPkg {
		return nil
	}
	if b, ok := named.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
		return named
	}
	return nil
}

// bareFloatCarrier reports whether t is an unnamed float, or a slice /
// array / map / pointer carrying one. Defined types (units.Watts, but
// also module types like stats.Poly) are deliberate and pass.
func bareFloatCarrier(t types.Type) bool {
	switch t := t.(type) {
	case *types.Basic:
		return t.Info()&types.IsFloat != 0
	case *types.Slice:
		return bareFloatCarrier(t.Elem())
	case *types.Array:
		return bareFloatCarrier(t.Elem())
	case *types.Map:
		return bareFloatCarrier(t.Elem())
	case *types.Pointer:
		return bareFloatCarrier(t.Elem())
	}
	return false
}

// checkAPI walks the package's exported surface: function signatures and
// struct fields whose type is a bare float carrier are findings unless a
// //ppep:allow unitcheck directive justifies them as dimensionless.
func (c *unitChecker) checkAPI() {
	for _, f := range c.pkg.Files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || !c.exportedRecv(d) {
					continue
				}
				c.checkSignature(d.Name.Name, d.Type)
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || !ts.Name.IsExported() {
						continue
					}
					c.checkTypeSpec(ts)
				}
			}
		}
	}
}

// exportedRecv reports whether a method's receiver type is itself
// exported (a method on an unexported type is not exported API).
func (c *unitChecker) exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := ast.Unparen(t).(*ast.Ident); ok {
		return id.IsExported()
	}
	return true
}

func (c *unitChecker) checkSignature(name string, ft *ast.FuncType) {
	for _, fl := range []*ast.FieldList{ft.Params, ft.Results} {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			if t := c.pkg.Info.TypeOf(field.Type); t != nil && bareFloatCarrier(t) {
				c.m.emit(c.fs, "unitcheck", field.Type.Pos(),
					"exported %s uses bare %s; give the quantity a units type or justify the dimensionless value with //ppep:allow unitcheck <reason>",
					name, t)
			}
		}
	}
}

func (c *unitChecker) checkTypeSpec(ts *ast.TypeSpec) {
	switch t := ts.Type.(type) {
	case *ast.StructType:
		for _, field := range t.Fields.List {
			exported := len(field.Names) == 0 // embedded
			for _, n := range field.Names {
				if n.IsExported() {
					exported = true
				}
			}
			if !exported {
				continue
			}
			if ft := c.pkg.Info.TypeOf(field.Type); ft != nil && bareFloatCarrier(ft) {
				c.m.emit(c.fs, "unitcheck", field.Type.Pos(),
					"exported field %s.%s uses bare %s; give the quantity a units type or justify the dimensionless value with //ppep:allow unitcheck <reason>",
					ts.Name.Name, fieldLabel(field), ft)
			}
		}
	case *ast.FuncType:
		c.checkSignature(ts.Name.Name, t)
	}
}

func fieldLabel(f *ast.Field) string {
	if len(f.Names) > 0 {
		return f.Names[0].Name
	}
	return "(embedded)"
}

func (c *unitChecker) inspect(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		c.checkConversion(n)
	case *ast.BinaryExpr:
		c.checkArith(n)
	}
	return true
}

// checkConversion flags T2(x) — and the laundered T2(float64(x)) — where
// x already carries a distinct unit type: reinterpreting kelvin as
// celsius (or MHz as GHz) is a silent dimension error; the units package
// has (or should grow) a named helper for every legitimate move.
func (c *unitChecker) checkConversion(call *ast.CallExpr) {
	if !c.pkg.Info.Types[call.Fun].IsType() || len(call.Args) != 1 {
		return
	}
	dst := c.unitType(c.pkg.Info.TypeOf(call.Fun))
	if dst == nil {
		return
	}
	arg := ast.Unparen(call.Args[0])
	src := c.unitType(c.pkg.Info.TypeOf(arg))
	if src == nil {
		// Laundered form: T2(float64(x)).
		if inner, ok := arg.(*ast.CallExpr); ok && len(inner.Args) == 1 &&
			c.pkg.Info.Types[inner.Fun].IsType() {
			if b, ok := c.pkg.Info.TypeOf(inner.Fun).(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
				src = c.unitType(c.pkg.Info.TypeOf(ast.Unparen(inner.Args[0])))
			}
		}
	}
	if src != nil && src.Obj() != dst.Obj() {
		c.m.emit(c.fs, "unitcheck", call.Pos(),
			"conversion from %s to %s crosses dimensions; use a named conversion helper from the units package",
			src.Obj().Name(), dst.Obj().Name())
	}
}

// checkArith flags unit-annihilating double casts and same-unit
// dimension-changing multiplication/division.
func (c *unitChecker) checkArith(b *ast.BinaryExpr) {
	switch b.Op {
	case token.ADD, token.SUB, token.MUL, token.QUO:
	default:
		return
	}
	sx := c.castOfUnit(ast.Unparen(b.X))
	sy := c.castOfUnit(ast.Unparen(b.Y))
	if sx != nil && sy != nil && (sx.Obj() != sy.Obj() || b.Op == token.MUL || b.Op == token.QUO) {
		c.m.emit(c.fs, "unitcheck", b.OpPos,
			"float64 casts of %s and %s annihilate both dimensions in one expression; use a units conversion helper (or a one-sided cast against a plain scalar)",
			sx.Obj().Name(), sy.Obj().Name())
		return
	}
	if b.Op != token.MUL && b.Op != token.QUO {
		return
	}
	if c.isConst(b.X) || c.isConst(b.Y) {
		return // scaling by a dimensionless constant
	}
	tx := c.unitType(c.pkg.Info.TypeOf(b.X))
	ty := c.unitType(c.pkg.Info.TypeOf(b.Y))
	if tx != nil && ty != nil && tx.Obj() == ty.Obj() {
		c.m.emit(c.fs, "unitcheck", b.OpPos,
			"%q on two %s values silently changes dimension; use a units helper (.Per for ratios, a typed product helper otherwise)",
			b.Op, tx.Obj().Name())
	}
}

// castOfUnit returns the unit type behind a direct float64(x)/float32(x)
// conversion of a unit-typed expression, or nil. Provenance is shallow on
// purpose: float64(w) * scalar is the sanctioned one-sided idiom, and a
// cast wrapping a larger expression already resolved its dimensions.
func (c *unitChecker) castOfUnit(e ast.Expr) *types.Named {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 || !c.pkg.Info.Types[call.Fun].IsType() {
		return nil
	}
	b, ok := c.pkg.Info.TypeOf(call.Fun).(*types.Basic)
	if !ok || b.Info()&types.IsFloat == 0 {
		return nil
	}
	return c.unitType(c.pkg.Info.TypeOf(ast.Unparen(call.Args[0])))
}

func (c *unitChecker) isConst(e ast.Expr) bool {
	return c.pkg.Info.Types[ast.Unparen(e)].Value != nil
}
