// Package lint implements ppeplint, the module's custom static-analysis
// suite. It is built only on the standard library (go/parser, go/ast,
// go/types, go/importer and the go command for export data) and enforces
// the properties the simulator's runtime tests (TestTickZeroAlloc, the
// golden fingerprints, the -race runs) can only spot-check:
//
//   - hotpath: functions annotated //ppep:hotpath — and everything they
//     transitively call inside the module — must not allocate, call fmt,
//     read the wall clock, or take locks. This is the compile-time form
//     of the 200 ms online-prediction budget (PAPER.md §1).
//   - determinism: the simulation packages must not use time.Now or the
//     globally-seeded math/rand, and must not iterate maps when the loop
//     body has order-dependent effects, so fixed seeds keep producing
//     bit-identical campaigns.
//   - poolsafety: bodies dispatched onto the bounded worker pool
//     (forEachJob) may write only their own index of pre-sized slices,
//     package-level or shared captured state only under a lock.
//   - errcheck: no silently dropped error returns; discarding via `_ =`
//     requires an adjacent justification comment.
//   - unitcheck: dimensional analysis over the internal/units types —
//     exported model APIs must not traffic in bare float64, and
//     cross-unit conversions or unit-annihilating float64 casts must go
//     through named conversion helpers (docs/UNITS.md).
//   - atomiccheck: a location accessed via sync/atomic anywhere is
//     accessed atomically everywhere, and values containing locks,
//     typed atomics, or such fields are never copied.
//   - ctxcheck: service loops in the long-running packages observe
//     cancellation unconditionally each iteration, blocking exported
//     APIs there take a leading context.Context, and contexts are not
//     stored in struct fields.
//   - leakcheck: every go statement has a provable join (WaitGroup
//     pairing, channel send/receive) or cancel (ctx/quit observation);
//     fire-and-forget requires an explicit //ppep:allow.
//   - perfcheck: the compiler's own diagnostics (-m -m escape analysis
//     and inlining verdicts, -d=ssa/check_bce residual bounds checks)
//     as a lintable contract: hot-path closures stay heap-allocation
//     free per the compiler, //ppep:inline functions stay inlined, and
//     //ppep:nobc loops keep zero residual bounds checks.
//
// Exceptions are declared in the source as
//
//	//ppep:allow <analyzer> <reason>
//
// which suppresses findings on the directive's line (trailing form), the
// following line (standalone form), or the whole function (doc-comment
// form). Unused suppressions are themselves findings, so stale
// exceptions cannot linger. See docs/LINTING.md.
package lint

import (
	"fmt"
	"go/token"
	"path"
	"sort"
	"strings"
	"time"
)

// Finding is one analyzer report.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding as "file:line: [analyzer] message".
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Config selects analyzer scopes. The zero value runs hotpath and
// errcheck only; DefaultConfig covers the full suite for this module.
type Config struct {
	// DeterminismPkgs is the set of import paths the determinism
	// analyzer covers.
	DeterminismPkgs map[string]bool
	// PoolFuncNames are the module functions treated as worker-pool
	// dispatchers: the poolsafety analyzer checks the func literal
	// passed as their last argument.
	PoolFuncNames map[string]bool
	// UnitsPkg is the import path of the physical-units package; empty
	// disables the unitcheck analyzer.
	UnitsPkg string
	// UnitPkgs are the model packages whose exported API surfaces must
	// not traffic in bare float64 (unitcheck's API rule). The
	// conversion and arithmetic rules run module-wide regardless.
	UnitPkgs map[string]bool
	// CtxPkgs are the long-running service packages the ctxcheck
	// analyzer covers: their conditionless loops must observe
	// cancellation and their exported blocking APIs must take a
	// context. atomiccheck and leakcheck run module-wide regardless.
	CtxPkgs map[string]bool
	// PerfPatterns are the package patterns perfcheck compiles for
	// diagnostics (go build -gcflags='-m -m -d=ssa/check_bce/debug=1');
	// empty means ./... — the whole module.
	PerfPatterns []string
	// PerfCacheDir, when set, caches perfcheck's raw compiler
	// transcript keyed by a content hash of the module sources, so a
	// rerun over unchanged sources skips the compile entirely
	// (ppeplint -gcflags-cache).
	PerfCacheDir string
}

// DefaultConfig returns the analyzer scope for this repository: the
// simulation and campaign packages are determinism-checked (including the
// sensor/stats/workload RNG users, which must stay on seeded *rand.Rand),
// and forEachJob is the worker-pool dispatcher.
func DefaultConfig(modulePath string) Config {
	pkgs := map[string]bool{}
	for _, p := range []string{
		"internal/fxsim",
		"internal/fleet",
		"internal/experiments",
		"internal/powertruth",
		"internal/uarch",
		"internal/mem",
		"internal/sensor",
		"internal/stats",
		"internal/workload",
		"internal/fingerprint",
		"internal/tracecodec",
		"internal/simcache",
	} {
		pkgs[path.Join(modulePath, p)] = true
	}
	unitPkgs := map[string]bool{}
	for _, p := range []string{
		"internal/thermal",
		"internal/powertruth",
		"internal/core",
		"internal/core/cpimodel",
		"internal/core/dynpower",
		"internal/core/energy",
		"internal/core/eventpred",
		"internal/core/idlepower",
		"internal/core/pgidle",
		"internal/dvfs",
	} {
		unitPkgs[path.Join(modulePath, p)] = true
	}
	ctxPkgs := map[string]bool{}
	for _, p := range []string{
		"internal/daemon",
		"internal/serve",
		"internal/experiments",
	} {
		ctxPkgs[path.Join(modulePath, p)] = true
	}
	return Config{
		DeterminismPkgs: pkgs,
		PoolFuncNames:   map[string]bool{"forEachJob": true},
		UnitsPkg:        path.Join(modulePath, "internal/units"),
		UnitPkgs:        unitPkgs,
		CtxPkgs:         ctxPkgs,
	}
}

// AnalyzerNames lists every analyzer, in report order. "directive" covers
// the directive parser's own findings (malformed or unknown directives).
var AnalyzerNames = []string{
	"hotpath", "determinism", "poolsafety", "errcheck", "unitcheck",
	"atomiccheck", "ctxcheck", "leakcheck", "perfcheck", "directive",
}

var knownAnalyzer = map[string]bool{
	"hotpath":     true,
	"determinism": true,
	"poolsafety":  true,
	"errcheck":    true,
	"unitcheck":   true,
	"atomiccheck": true,
	"ctxcheck":    true,
	"leakcheck":   true,
	"perfcheck":   true,
	"directive":   true,
}

// runOne dispatches a single analyzer by name. Callers validate the
// name against knownAnalyzer.
func (m *Module) runOne(name string, cfg Config) []Finding {
	switch name {
	case "hotpath":
		return runHotpath(m)
	case "determinism":
		return runDeterminism(m, cfg)
	case "poolsafety":
		return runPoolSafety(m, cfg)
	case "errcheck":
		return runErrcheck(m)
	case "unitcheck":
		return runUnitcheck(m, cfg)
	case "atomiccheck":
		return runAtomiccheck(m)
	case "ctxcheck":
		return runCtxcheck(m, cfg)
	case "leakcheck":
		return runLeakcheck(m)
	case "perfcheck":
		return runPerfcheck(m, cfg)
	case "directive":
		return append([]Finding(nil), m.directiveFindings...)
	}
	return nil
}

// Run executes the full suite and returns the surviving findings sorted
// by position. Suppressed findings count toward Suppressed(); allow
// directives that suppressed nothing are reported as findings.
func (m *Module) Run(cfg Config) []Finding {
	fs, err := m.RunAnalyzers(cfg, AnalyzerNames...)
	if err != nil {
		// AnalyzerNames are all known; unreachable by construction.
		panic(err)
	}
	return fs
}

// RunAnalyzers executes the named subset of analyzers (ppeplint
// -analyzers). The unused-suppression check covers only the named
// analyzers, so a subset run cannot flag allows owned by analyzers it
// did not run. An unknown name is an error, not a silent no-op.
func (m *Module) RunAnalyzers(cfg Config, names ...string) ([]Finding, error) {
	var fs []Finding
	var ran []string
	seen := map[string]bool{}
	m.analyzerWall = map[string]time.Duration{}
	for _, name := range names {
		if !knownAnalyzer[name] {
			return nil, fmt.Errorf("lint: unknown analyzer %q (known: %s)", name, strings.Join(AnalyzerNames, ", "))
		}
		if seen[name] {
			continue
		}
		seen[name] = true
		start := time.Now()
		fs = append(fs, m.runOne(name, cfg)...)
		m.analyzerWall[name] = time.Since(start)
		if name != "directive" {
			ran = append(ran, name)
		}
	}
	fs = append(fs, m.unusedAllows(ran...)...)
	sortFindings(fs)
	return fs, nil
}

// RunAnalyzer executes a single analyzer (plus its unused-suppression
// check), used by the fixture tests to exercise analyzers in isolation.
func (m *Module) RunAnalyzer(name string, cfg Config) []Finding {
	fs := m.runOne(name, cfg)
	if name != "directive" {
		fs = append(fs, m.unusedAllows(name)...)
	}
	sortFindings(fs)
	return fs
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
