// Package lint implements ppeplint, the module's custom static-analysis
// suite. It is built only on the standard library (go/parser, go/ast,
// go/types, go/importer and the go command for export data) and enforces
// the properties the simulator's runtime tests (TestTickZeroAlloc, the
// golden fingerprints, the -race runs) can only spot-check:
//
//   - hotpath: functions annotated //ppep:hotpath — and everything they
//     transitively call inside the module — must not allocate, call fmt,
//     read the wall clock, or take locks. This is the compile-time form
//     of the 200 ms online-prediction budget (PAPER.md §1).
//   - determinism: the simulation packages must not use time.Now or the
//     globally-seeded math/rand, and must not iterate maps when the loop
//     body has order-dependent effects, so fixed seeds keep producing
//     bit-identical campaigns.
//   - poolsafety: bodies dispatched onto the bounded worker pool
//     (forEachJob) may write only their own index of pre-sized slices,
//     package-level or shared captured state only under a lock.
//   - errcheck: no silently dropped error returns; discarding via `_ =`
//     requires an adjacent justification comment.
//   - unitcheck: dimensional analysis over the internal/units types —
//     exported model APIs must not traffic in bare float64, and
//     cross-unit conversions or unit-annihilating float64 casts must go
//     through named conversion helpers (docs/UNITS.md).
//
// Exceptions are declared in the source as
//
//	//ppep:allow <analyzer> <reason>
//
// which suppresses findings on the directive's line (trailing form), the
// following line (standalone form), or the whole function (doc-comment
// form). Unused suppressions are themselves findings, so stale
// exceptions cannot linger. See docs/LINTING.md.
package lint

import (
	"fmt"
	"go/token"
	"path"
	"sort"
)

// Finding is one analyzer report.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding as "file:line: [analyzer] message".
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Config selects analyzer scopes. The zero value runs hotpath and
// errcheck only; DefaultConfig covers the full suite for this module.
type Config struct {
	// DeterminismPkgs is the set of import paths the determinism
	// analyzer covers.
	DeterminismPkgs map[string]bool
	// PoolFuncNames are the module functions treated as worker-pool
	// dispatchers: the poolsafety analyzer checks the func literal
	// passed as their last argument.
	PoolFuncNames map[string]bool
	// UnitsPkg is the import path of the physical-units package; empty
	// disables the unitcheck analyzer.
	UnitsPkg string
	// UnitPkgs are the model packages whose exported API surfaces must
	// not traffic in bare float64 (unitcheck's API rule). The
	// conversion and arithmetic rules run module-wide regardless.
	UnitPkgs map[string]bool
}

// DefaultConfig returns the analyzer scope for this repository: the
// simulation and campaign packages are determinism-checked (including the
// sensor/stats/workload RNG users, which must stay on seeded *rand.Rand),
// and forEachJob is the worker-pool dispatcher.
func DefaultConfig(modulePath string) Config {
	pkgs := map[string]bool{}
	for _, p := range []string{
		"internal/fxsim",
		"internal/experiments",
		"internal/powertruth",
		"internal/uarch",
		"internal/mem",
		"internal/sensor",
		"internal/stats",
		"internal/workload",
		"internal/fingerprint",
		"internal/tracecodec",
		"internal/simcache",
	} {
		pkgs[path.Join(modulePath, p)] = true
	}
	unitPkgs := map[string]bool{}
	for _, p := range []string{
		"internal/thermal",
		"internal/powertruth",
		"internal/core",
		"internal/core/cpimodel",
		"internal/core/dynpower",
		"internal/core/energy",
		"internal/core/eventpred",
		"internal/core/idlepower",
		"internal/core/pgidle",
		"internal/dvfs",
	} {
		unitPkgs[path.Join(modulePath, p)] = true
	}
	return Config{
		DeterminismPkgs: pkgs,
		PoolFuncNames:   map[string]bool{"forEachJob": true},
		UnitsPkg:        path.Join(modulePath, "internal/units"),
		UnitPkgs:        unitPkgs,
	}
}

// AnalyzerNames lists every analyzer, in report order. "directive" covers
// the directive parser's own findings (malformed or unknown directives).
var AnalyzerNames = []string{"hotpath", "determinism", "poolsafety", "errcheck", "unitcheck", "directive"}

var knownAnalyzer = map[string]bool{
	"hotpath":     true,
	"determinism": true,
	"poolsafety":  true,
	"errcheck":    true,
	"unitcheck":   true,
	"directive":   true,
}

// Run executes the full suite and returns the surviving findings sorted
// by position. Suppressed findings count toward Suppressed(); allow
// directives that suppressed nothing are reported as findings.
func (m *Module) Run(cfg Config) []Finding {
	var fs []Finding
	fs = append(fs, m.directiveFindings...)
	fs = append(fs, runHotpath(m)...)
	fs = append(fs, runDeterminism(m, cfg)...)
	fs = append(fs, runPoolSafety(m, cfg)...)
	fs = append(fs, runErrcheck(m)...)
	fs = append(fs, runUnitcheck(m, cfg)...)
	fs = append(fs, m.unusedAllows("hotpath", "determinism", "poolsafety", "errcheck", "unitcheck")...)
	sortFindings(fs)
	return fs
}

// RunAnalyzer executes a single analyzer (plus its unused-suppression
// check), used by the fixture tests to exercise analyzers in isolation.
func (m *Module) RunAnalyzer(name string, cfg Config) []Finding {
	var fs []Finding
	switch name {
	case "hotpath":
		fs = runHotpath(m)
	case "determinism":
		fs = runDeterminism(m, cfg)
	case "poolsafety":
		fs = runPoolSafety(m, cfg)
	case "errcheck":
		fs = runErrcheck(m)
	case "unitcheck":
		fs = runUnitcheck(m, cfg)
	case "directive":
		fs = append(fs, m.directiveFindings...)
	}
	if name != "directive" {
		fs = append(fs, m.unusedAllows(name)...)
	}
	sortFindings(fs)
	return fs
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
