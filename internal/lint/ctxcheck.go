package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// runCtxcheck enforces context discipline in the long-running service
// packages (cfg.CtxPkgs — the daemon loop, the HTTP layer, and the
// campaign driver):
//
//   - Conditionless `for {}` loops with no break are the service
//     loops; each must observe cancellation — a ctx.Done()/quit-channel
//     receive, a select carrying one, or a ctx.Err() check — as an
//     unconditional statement of the loop body, so every iteration
//     sees a cancelled context. Observation buried under a condition
//     is reported separately from no observation at all.
//   - Exported functions whose bodies block directly (channel send or
//     receive, select without default, sync.WaitGroup.Wait,
//     sync.Cond.Wait, time.Sleep) must accept a context.Context, and
//     it must be the first parameter. Goroutine bodies launched inside
//     are the goroutine's problem (leakcheck's, in fact), not the
//     caller's.
//   - context.Context must not be stored in struct fields; contexts
//     are call-scoped (this is the contract package context itself
//     documents).
func runCtxcheck(m *Module, cfg Config) []Finding {
	var fs []Finding
	for _, pkg := range m.Packages {
		if !cfg.CtxPkgs[pkg.Path] {
			continue
		}
		for _, f := range pkg.Files {
			checkCtxFile(m, pkg, f, &fs)
		}
	}
	return fs
}

func checkCtxFile(m *Module, pkg *Package, f *ast.File, fs *[]Finding) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.StructType:
			for _, field := range n.Fields.List {
				if isContextType(pkg.Info.TypeOf(field.Type)) {
					m.emit(fs, "ctxcheck", field.Pos(),
						"context.Context stored in a struct field; pass it as a call parameter instead")
				}
			}
		case *ast.ForStmt:
			checkServiceLoop(m, pkg, n, fs)
		case *ast.FuncDecl:
			checkExportedBlocking(m, pkg, n, fs)
		}
		return true
	})
}

// checkServiceLoop applies the cancellation rule to one conditionless
// loop. A loop with a break (targeting it) terminates on its own and is
// exempt; `return` is not an exemption — in the service loops returns
// are the cancellation exit itself or an error path, neither of which
// bounds the loop.
func checkServiceLoop(m *Module, pkg *Package, loop *ast.ForStmt, fs *[]Finding) {
	if loop.Cond != nil || hasLoopBreak(loop.Body) {
		return
	}
	for _, s := range loop.Body.List {
		if stmtObservesCtx(pkg.Info, s) {
			return
		}
	}
	if nodeObservesCtx(pkg.Info, loop.Body) {
		m.emit(fs, "ctxcheck", loop.Pos(),
			"conditionless loop observes ctx.Done() only on some iteration paths; hoist the check to the top of the loop body")
		return
	}
	m.emit(fs, "ctxcheck", loop.Pos(),
		"conditionless loop never observes ctx.Done(); cancellation cannot stop it")
}

// hasLoopBreak reports whether body contains a break that exits the
// enclosing loop: an unlabeled break not absorbed by a nested loop,
// switch, or select — or, conservatively, any labeled break.
func hasLoopBreak(body *ast.BlockStmt) bool {
	found := false
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.BranchStmt:
			if n.Tok == token.BREAK {
				found = true
			}
			return false
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			// Unlabeled breaks inside bind to n, not our loop. Labeled
			// breaks still count; scan for just those.
			ast.Inspect(n, func(inner ast.Node) bool {
				if b, ok := inner.(*ast.BranchStmt); ok && b.Tok == token.BREAK && b.Label != nil {
					found = true
				}
				return !found
			})
			return false
		case *ast.FuncLit:
			return false // a break in a closure cannot target our loop
		}
		return true
	}
	ast.Inspect(body, walk)
	return found
}

// stmtObservesCtx reports whether s, as a direct (unconditionally
// executed) statement of a loop body, observes cancellation: a select
// with a done-channel case, an if whose condition checks ctx.Err(), or
// a statement evaluating a done-channel receive or ctx.Err() call.
func stmtObservesCtx(info *types.Info, s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			if nodeObservesCtx(info, cc.Comm) {
				return true
			}
		}
	case *ast.IfStmt:
		return exprObservesCtx(info, s.Cond)
	case *ast.ExprStmt:
		return exprObservesCtx(info, s.X)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			if exprObservesCtx(info, r) {
				return true
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if exprObservesCtx(info, r) {
				return true
			}
		}
	}
	return false
}

// nodeObservesCtx reports whether any expression under n observes
// cancellation.
func nodeObservesCtx(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(inner ast.Node) bool {
		if e, ok := inner.(ast.Expr); ok && exprObservesCtx(info, e) {
			found = true
		}
		return !found
	})
	return found
}

// exprObservesCtx reports whether e itself is a cancellation
// observation: a receive from a done channel (<-chan struct{}, which
// covers ctx.Done() and hand-rolled quit channels) or a ctx.Err()
// call.
func exprObservesCtx(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.UnaryExpr:
		return e.Op == token.ARROW && isDoneChan(info.TypeOf(e.X))
	case *ast.CallExpr:
		if obj := calleeOf(info, e); obj != nil && obj.Pkg() != nil &&
			obj.Pkg().Path() == "context" && (obj.Name() == "Err" || obj.Name() == "Done") {
			return true
		}
	case *ast.BinaryExpr:
		return exprObservesCtx(info, e.X) || exprObservesCtx(info, e.Y)
	}
	return false
}

// isDoneChan reports whether t is a receivable channel of struct{}.
func isDoneChan(t types.Type) bool {
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok || ch.Dir() == types.SendOnly {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	t = types.Unalias(t)
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkExportedBlocking applies the exported-API rules: a context
// parameter anywhere must be first, and a directly-blocking body
// requires one.
func checkExportedBlocking(m *Module, pkg *Package, fd *ast.FuncDecl, fs *[]Finding) {
	if !fd.Name.IsExported() || fd.Body == nil || fd.Type.Params == nil {
		return
	}
	pos := 0
	hasCtx := false
	for _, field := range fd.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(pkg.Info.TypeOf(field.Type)) {
			hasCtx = true
			if pos != 0 {
				m.emit(fs, "ctxcheck", field.Pos(),
					"context.Context must be the first parameter of exported %s", fd.Name.Name)
			}
		}
		pos += n
	}
	if hasCtx {
		return
	}
	if op := firstBlockingOp(pkg.Info, fd.Body); op != "" {
		m.emit(fs, "ctxcheck", fd.Name.Pos(),
			"exported %s blocks (%s) but accepts no context.Context", fd.Name.Name, op)
	}
}

// firstBlockingOp finds a blocking operation executed directly by
// body (goroutine bodies excluded), returning a description or "".
func firstBlockingOp(info *types.Info, body *ast.BlockStmt) string {
	op := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if op != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			op = "channel send"
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				op = "channel receive"
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, clause := range n.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				op = "select"
				return false
			}
			// Non-blocking poll: its comm operations cannot block, but
			// the chosen case's body still runs — walk only the bodies.
			for _, clause := range n.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && op == "" {
					for _, s := range cc.Body {
						if o := firstBlockingOp(info, &ast.BlockStmt{List: []ast.Stmt{s}}); o != "" {
							op = o
							break
						}
					}
				}
			}
			return false
		case *ast.CallExpr:
			obj := calleeOf(info, n)
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch {
			case obj.Pkg().Path() == "sync" && obj.Name() == "Wait":
				op = obj.FullName()
			case obj.FullName() == "time.Sleep":
				op = "time.Sleep"
			}
		}
		return op == ""
	})
	return op
}
