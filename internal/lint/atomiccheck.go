package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// runAtomiccheck enforces the module's atomic-access discipline, the
// static form of what the -race stress tests check probabilistically:
//
//   - Mixed access: a struct field or package-level variable that is
//     accessed through a sync/atomic package function (&x.f passed to
//     atomic.AddUint64 and friends) anywhere in the module must be
//     accessed atomically everywhere. A plain load or store of such a
//     location can tear against the atomic writer, and the race
//     detector only catches the interleavings a given run happens to
//     produce.
//   - No copy: a value whose type contains a sync lock (Mutex,
//     RWMutex, WaitGroup, Cond, Once, Pool, Map), a typed atomic
//     (atomic.Uint64 and friends), or a mixed-access field from the
//     first rule must never be copied — not by assignment, not by
//     range-by-value, not by pass-by-value, not by returning a
//     dereference. A copy silently forks the lock or counter state.
//
// Fresh construction is not a copy: composite literals and call
// results on the right-hand side are accepted (the callee's signature
// is checked where it is declared).
//
// Fields are matched by a stable "pkgpath.Type.field" key rather than
// object identity: the defining package is type-checked from source
// while its importers see it through export data, so the *types.Var
// for one field differs between the two views.
func runAtomiccheck(m *Module) []Finding {
	c := &atomicChecker{
		m:          m,
		mixed:      map[string]bool{},
		atomicSite: map[ast.Expr]bool{},
		memo:       map[types.Type]string{},
	}
	for _, pkg := range m.Packages {
		c.collect(pkg)
	}
	var fs []Finding
	for _, pkg := range m.Packages {
		c.checkPackage(pkg, &fs)
	}
	return fs
}

type atomicChecker struct {
	m *Module
	// mixed keys locations accessed via sync/atomic package functions:
	// "pkgpath.Type.field" for struct fields, "pkgpath.var" for
	// package-level variables.
	mixed map[string]bool
	// atomicSite marks the exact selector/ident nodes used inside
	// sync/atomic calls, so the atomic accesses themselves pass.
	atomicSite map[ast.Expr]bool
	memo       map[types.Type]string
}

// syncNoCopy are the sync types whose zero-value-in-place contract a
// copy breaks.
var syncNoCopy = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Cond": true, "Once": true, "Pool": true, "Map": true,
}

// atomicTypes are the sync/atomic typed wrappers.
var atomicTypes = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

// collect records every &x.f / &pkgVar passed as the first argument of
// a sync/atomic package-level function.
func (c *atomicChecker) collect(pkg *Package) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeOf(pkg.Info, call)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
				return true
			}
			if sig, _ := obj.Type().(*types.Signature); sig == nil || sig.Recv() != nil {
				return true // typed-atomic method, not an addr-taking function
			}
			if len(call.Args) == 0 {
				return true
			}
			un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				return true
			}
			switch target := ast.Unparen(un.X).(type) {
			case *ast.SelectorExpr:
				if sel := pkg.Info.Selections[target]; sel != nil && sel.Kind() == types.FieldVal {
					if key := fieldKeyOf(sel); key != "" {
						c.mixed[key] = true
						c.atomicSite[target] = true
					}
				}
			case *ast.Ident:
				if v, ok := pkg.Info.Uses[target].(*types.Var); ok && isPackageLevel(v) {
					c.mixed[varKeyOf(v)] = true
					c.atomicSite[target] = true
				}
			}
			return true
		})
	}
}

// fieldKeyOf derives the stable "pkgpath.Type.field" key of a selected
// struct field by following the selection's index path to the type
// that declares it (which, with embedding, may be an embedded type,
// not the selection's receiver).
func fieldKeyOf(sel *types.Selection) string {
	t := sel.Recv()
	idx := sel.Index()
	for i, fi := range idx {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		named, _ := t.(*types.Named)
		st, ok := t.Underlying().(*types.Struct)
		if !ok || fi >= st.NumFields() {
			return ""
		}
		f := st.Field(fi)
		if i == len(idx)-1 {
			if named == nil || named.Obj().Pkg() == nil {
				return "" // field of an anonymous struct: unkeyable
			}
			return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + f.Name()
		}
		t = f.Type()
	}
	return ""
}

func varKeyOf(v *types.Var) string {
	if v.Pkg() == nil {
		return ""
	}
	return v.Pkg().Path() + "." + v.Name()
}

// noCopyReason reports why a value of type t must not be copied, or ""
// if copying is fine. It descends into struct fields and array
// elements only: a pointer, slice, map, or channel to a no-copy value
// copies the reference, which is the correct usage.
func (c *atomicChecker) noCopyReason(t types.Type) string {
	if t == nil {
		return ""
	}
	if r, ok := c.memo[t]; ok {
		return r
	}
	c.memo[t] = "" // breaks (impossible in valid Go, but cheap) cycles
	r := c.computeNoCopy(t)
	c.memo[t] = r
	return r
}

func (c *atomicChecker) computeNoCopy(t types.Type) string {
	switch tt := t.(type) {
	case *types.Alias:
		return c.noCopyReason(types.Unalias(tt))
	case *types.Named:
		obj := tt.Obj()
		if obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync":
				if syncNoCopy[obj.Name()] {
					return "sync." + obj.Name()
				}
			case "sync/atomic":
				if atomicTypes[obj.Name()] {
					return "atomic." + obj.Name()
				}
			}
			if st, ok := tt.Underlying().(*types.Struct); ok {
				owner := obj.Pkg().Path() + "." + obj.Name()
				for i := 0; i < st.NumFields(); i++ {
					if c.mixed[owner+"."+st.Field(i).Name()] {
						return "atomically-accessed field " + st.Field(i).Name()
					}
				}
			}
		}
		return c.noCopyReason(tt.Underlying())
	case *types.Struct:
		for i := 0; i < tt.NumFields(); i++ {
			if r := c.noCopyReason(tt.Field(i).Type()); r != "" {
				return r
			}
		}
	case *types.Array:
		return c.noCopyReason(tt.Elem())
	}
	return ""
}

// copiedValue reports whether e reads an existing value (so assigning,
// passing, or returning it copies state), as opposed to constructing a
// fresh one (composite literal, call result, conversion, &expr).
func copiedValue(info *types.Info, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		_, isVar := info.Uses[x].(*types.Var)
		return isVar
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

func (c *atomicChecker) checkPackage(pkg *Package, fs *[]Finding) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				c.checkMixedSelector(pkg, n, fs)
			case *ast.Ident:
				c.checkMixedIdent(pkg, n, fs)
			case *ast.FuncDecl:
				c.checkSignature(pkg, n.Recv, n.Type, fs)
			case *ast.FuncLit:
				c.checkSignature(pkg, nil, n.Type, fs)
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					c.checkCopyExpr(pkg, rhs, "assignment copies", fs)
				}
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					c.checkCopyExpr(pkg, r, "return copies", fs)
				}
			case *ast.CallExpr:
				if pkg.Info.Types[n.Fun].IsType() {
					return true // conversion: checked as its context's copy
				}
				for _, a := range n.Args {
					c.checkCopyExpr(pkg, a, "call passes", fs)
				}
			case *ast.RangeStmt:
				for _, e := range []ast.Expr{n.Key, n.Value} {
					if e == nil {
						continue
					}
					if r := c.noCopyReason(pkg.Info.TypeOf(e)); r != "" {
						c.m.emit(fs, "atomiccheck", e.Pos(),
							"range copies a %s value (contains %s); iterate by index or over pointers",
							typeName(pkg.Info.TypeOf(e)), r)
					}
				}
			}
			return true
		})
	}
}

func (c *atomicChecker) checkMixedSelector(pkg *Package, n *ast.SelectorExpr, fs *[]Finding) {
	if c.atomicSite[n] {
		return
	}
	sel := pkg.Info.Selections[n]
	if sel == nil || sel.Kind() != types.FieldVal {
		return
	}
	key := fieldKeyOf(sel)
	if key == "" || !c.mixed[key] {
		return
	}
	c.m.emit(fs, "atomiccheck", n.Sel.Pos(),
		"%s is accessed with sync/atomic elsewhere in the module; this plain access can tear", key)
}

func (c *atomicChecker) checkMixedIdent(pkg *Package, n *ast.Ident, fs *[]Finding) {
	if c.atomicSite[n] {
		return
	}
	v, ok := pkg.Info.Uses[n].(*types.Var)
	if !ok || !isPackageLevel(v) || !c.mixed[varKeyOf(v)] {
		return
	}
	c.m.emit(fs, "atomiccheck", n.Pos(),
		"%s is accessed with sync/atomic elsewhere in the module; this plain access can tear", varKeyOf(v))
}

func (c *atomicChecker) checkSignature(pkg *Package, recv *ast.FieldList, ft *ast.FuncType, fs *[]Finding) {
	if recv != nil && len(recv.List) == 1 {
		f := recv.List[0]
		if _, ptr := ast.Unparen(f.Type).(*ast.StarExpr); !ptr {
			if r := c.noCopyReason(pkg.Info.TypeOf(f.Type)); r != "" {
				c.m.emit(fs, "atomiccheck", f.Type.Pos(),
					"value receiver copies a %s (contains %s); use a pointer receiver",
					typeName(pkg.Info.TypeOf(f.Type)), r)
			}
		}
	}
	if ft.Params == nil {
		return
	}
	for _, f := range ft.Params.List {
		t := pkg.Info.TypeOf(f.Type)
		if _, variadic := f.Type.(*ast.Ellipsis); variadic {
			continue // the slice carries pointers to nothing; elems are caller copies, flagged there
		}
		if r := c.noCopyReason(t); r != "" {
			c.m.emit(fs, "atomiccheck", f.Type.Pos(),
				"parameter passes a %s by value (contains %s); use a pointer", typeName(t), r)
		}
	}
}

func (c *atomicChecker) checkCopyExpr(pkg *Package, e ast.Expr, verb string, fs *[]Finding) {
	if !copiedValue(pkg.Info, e) {
		return
	}
	t := pkg.Info.TypeOf(e)
	if r := c.noCopyReason(t); r != "" {
		c.m.emit(fs, "atomiccheck", e.Pos(),
			"%s a %s value (contains %s); use a pointer", verb, typeName(t), r)
	}
}

// typeName renders a type for messages without the module prefix.
func typeName(t types.Type) string {
	if t == nil {
		return "<unknown>"
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
