package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// allowDirective is one parsed //ppep:allow comment.
type allowDirective struct {
	analyzer string
	reason   string
	pos      token.Position
	// fromLine..toLine is the suppression range: the directive's own
	// line and the next (trailing and standalone forms), or the whole
	// function when the directive sits in a doc comment.
	fromLine, toLine int
	used             bool
}

// nobcRange is one resolved //ppep:nobc directive: the source range of
// the statement (in practice a loop) that must carry zero residual
// bounds checks per the compiler's check_bce output.
type nobcRange struct {
	file             string
	fromLine, toLine int
	what             string // statement kind, for the finding message
}

// scanDirectives parses //ppep:hotpath, //ppep:inline, //ppep:nobc and
// //ppep:allow comments in one package, marking analysis roots,
// registering suppressions, and reporting malformed directives as
// findings.
func (m *Module) scanDirectives(pkg *Package) {
	for _, f := range pkg.Files {
		docOf := map[*ast.CommentGroup]*ast.FuncDecl{}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Doc != nil {
				docOf[fd.Doc] = fd
			}
		}
		for _, cg := range f.Comments {
			fd := docOf[cg]
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, "//ppep:") {
					continue
				}
				pos := m.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(text, "//ppep:")
				switch {
				case rest == "hotpath" || strings.HasPrefix(rest, "hotpath "):
					m.markHotpath(pkg, fd, pos)
				case rest == "inline" || strings.HasPrefix(rest, "inline "):
					m.markInline(pkg, fd, pos)
				case rest == "nobc" || strings.HasPrefix(rest, "nobc "):
					m.addNobc(f, fd, c, pos)
				case rest == "allow" || strings.HasPrefix(rest, "allow "):
					m.addAllow(fd, pos, strings.TrimPrefix(rest, "allow"))
				default:
					m.directiveFindings = append(m.directiveFindings, Finding{
						Pos: pos, Analyzer: "directive",
						Message: fmt.Sprintf("unknown directive %q (known: //ppep:hotpath, //ppep:inline, //ppep:nobc, //ppep:allow)", text),
					})
				}
			}
		}
	}
}

func (m *Module) markHotpath(pkg *Package, fd *ast.FuncDecl, pos token.Position) {
	if fd == nil {
		m.directiveFindings = append(m.directiveFindings, Finding{
			Pos: pos, Analyzer: "directive",
			Message: "//ppep:hotpath must appear in a function's doc comment",
		})
		return
	}
	if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
		if node := m.Funcs[obj.FullName()]; node != nil {
			node.Hot = true
		}
	}
}

// markInline flags a //ppep:inline root: the perfcheck analyzer
// requires a positive compiler inlining verdict for the function.
func (m *Module) markInline(pkg *Package, fd *ast.FuncDecl, pos token.Position) {
	if fd == nil {
		m.directiveFindings = append(m.directiveFindings, Finding{
			Pos: pos, Analyzer: "directive",
			Message: "//ppep:inline must appear in a function's doc comment",
		})
		return
	}
	if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
		if node := m.Funcs[obj.FullName()]; node != nil {
			node.Inline = true
		}
	}
}

// addNobc resolves a //ppep:nobc directive to the statement it
// precedes — the standalone comment form, immediately above a loop —
// and records that statement's line range for perfcheck's residual
// bounds-check budget.
func (m *Module) addNobc(f *ast.File, fd *ast.FuncDecl, c *ast.Comment, pos token.Position) {
	if fd != nil {
		m.directiveFindings = append(m.directiveFindings, Finding{
			Pos: pos, Analyzer: "directive",
			Message: "//ppep:nobc marks a statement, not a function; place it on the line above the loop",
		})
		return
	}
	// The covered statement is the smallest-position statement that
	// starts after the directive, within a two-line window (gofmt may
	// interpose an empty // separator).
	var best ast.Stmt
	ast.Inspect(f, func(n ast.Node) bool {
		s, ok := n.(ast.Stmt)
		if !ok {
			return true
		}
		if _, isBlock := s.(*ast.BlockStmt); isBlock {
			return true // blocks wrap their first statement; keep the statement
		}
		if s.Pos() > c.End() && (best == nil || s.Pos() < best.Pos()) {
			best = s
		}
		return true
	})
	if best == nil || m.Fset.Position(best.Pos()).Line > pos.Line+2 {
		m.directiveFindings = append(m.directiveFindings, Finding{
			Pos: pos, Analyzer: "directive",
			Message: "//ppep:nobc must immediately precede the statement it covers",
		})
		return
	}
	what := "statement"
	switch best.(type) {
	case *ast.ForStmt:
		what = "for loop"
	case *ast.RangeStmt:
		what = "range loop"
	}
	m.nobcRanges = append(m.nobcRanges, nobcRange{
		file:     pos.Filename,
		fromLine: m.Fset.Position(best.Pos()).Line,
		toLine:   m.Fset.Position(best.End()).Line,
		what:     what,
	})
}

func (m *Module) addAllow(fd *ast.FuncDecl, pos token.Position, rest string) {
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		m.directiveFindings = append(m.directiveFindings, Finding{
			Pos: pos, Analyzer: "directive",
			Message: "//ppep:allow needs an analyzer name and a reason: //ppep:allow <analyzer> <reason>",
		})
		return
	}
	if !knownAnalyzer[fields[0]] {
		m.directiveFindings = append(m.directiveFindings, Finding{
			Pos: pos, Analyzer: "directive",
			Message: fmt.Sprintf("//ppep:allow names unknown analyzer %q", fields[0]),
		})
		return
	}
	a := &allowDirective{
		analyzer: fields[0],
		reason:   strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0])),
		pos:      pos,
		fromLine: pos.Line,
		toLine:   pos.Line + 1,
	}
	if fd != nil {
		a.fromLine = m.Fset.Position(fd.Pos()).Line
		a.toLine = m.Fset.Position(fd.End()).Line
	}
	m.allows[pos.Filename] = append(m.allows[pos.Filename], a)
}

// allowedAt reports whether a finding by the analyzer at pos is
// suppressed, marking the matching directive as used.
func (m *Module) allowedAt(analyzer string, pos token.Position) bool {
	for _, a := range m.allows[pos.Filename] {
		if a.analyzer == analyzer && pos.Line >= a.fromLine && pos.Line <= a.toLine {
			a.used = true
			m.suppressed++
			m.suppressedBy[analyzer]++
			return true
		}
	}
	return false
}

// hasAllow reports whether a directive covers the position WITHOUT
// marking it used or counting a suppression — for walk-boundary
// decisions (perfcheck's hot closure) that must not perturb the
// suppression census the owning analyzer maintains.
func (m *Module) hasAllow(analyzer string, pos token.Position) bool {
	for _, a := range m.allows[pos.Filename] {
		if a.analyzer == analyzer && pos.Line >= a.fromLine && pos.Line <= a.toLine {
			return true
		}
	}
	return false
}

// emit appends a finding unless an //ppep:allow directive covers it.
func (m *Module) emit(fs *[]Finding, analyzer string, pos token.Pos, format string, args ...any) {
	p := m.Fset.Position(pos)
	if m.allowedAt(analyzer, p) {
		return
	}
	*fs = append(*fs, Finding{Pos: p, Analyzer: analyzer, Message: fmt.Sprintf(format, args...)})
}

// unusedAllows reports //ppep:allow directives for the given analyzers
// that suppressed nothing, so stale exceptions are cleaned up rather
// than silently accumulating.
func (m *Module) unusedAllows(analyzers ...string) []Finding {
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a] = true
	}
	var fs []Finding
	for _, as := range m.allows {
		for _, a := range as {
			if !a.used && ran[a.analyzer] {
				fs = append(fs, Finding{
					Pos: a.pos, Analyzer: a.analyzer,
					Message: "unused //ppep:allow suppression (no finding here; delete it)",
				})
			}
		}
	}
	return fs
}
