package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Package is one loaded, type-checked module package.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// FuncNode is one module function with source, used to walk the hot-path
// call graph across packages.
type FuncNode struct {
	Pkg  *Package
	Decl *ast.FuncDecl
	Obj  *types.Func
	// Hot marks a //ppep:hotpath root.
	Hot bool
	// Inline marks a //ppep:inline root: perfcheck requires a positive
	// compiler inlining verdict at the declaration.
	Inline bool
}

// Module is the loaded module: every package matched by the load
// patterns, a cross-package function index, and the parsed directives.
type Module struct {
	Path     string // module path (go.mod)
	Dir      string // module root directory
	Fset     *token.FileSet
	Packages []*Package
	// Funcs indexes every module function declaration by
	// (*types.Func).FullName, which is stable between source-checked and
	// export-data views of a package.
	Funcs map[string]*FuncNode

	allows            map[string][]*allowDirective // by filename
	directiveFindings []Finding
	suppressed        int
	suppressedBy      map[string]int

	// nobcRanges are the resolved //ppep:nobc statement ranges the
	// perfcheck analyzer holds to zero residual bounds checks.
	nobcRanges []nobcRange

	// perfOnce memoizes the perfcheck diagnostics build: Run and
	// RunAnalyzer pay for at most one compile per loaded Module.
	perfOnce  sync.Once
	perfDiags *PerfDiagnostics
	perfErr   error

	// analyzerWall records each analyzer's wall time from the most
	// recent RunAnalyzers call, for ppeplint -stats.
	analyzerWall map[string]time.Duration
}

// Suppressed reports how many findings //ppep:allow directives absorbed.
func (m *Module) Suppressed() int { return m.suppressed }

// SuppressedBy reports the absorbed-finding count per analyzer, for the
// per-analyzer statistics ppeplint -stats records.
func (m *Module) SuppressedBy() map[string]int {
	out := make(map[string]int, len(m.suppressedBy))
	for k, v := range m.suppressedBy {
		out[k] = v
	}
	return out
}

// AnalyzerWall reports each analyzer's wall time from the most recent
// RunAnalyzers call, so ppeplint -stats can expose per-analyzer cost
// and lint-time creep shows up in BENCH_fxsim.json.
func (m *Module) AnalyzerWall() map[string]time.Duration {
	out := make(map[string]time.Duration, len(m.analyzerWall))
	for k, v := range m.analyzerWall {
		out[k] = v
	}
	return out
}

// PerfCompileWall reports how long perfcheck's diagnostics build took
// (zero when the analyzer did not run or the transcript cache hit).
func (m *Module) PerfCompileWall() time.Duration {
	if m.perfDiags == nil {
		return 0
	}
	return m.perfDiags.CompileWall
}

// inModule reports whether an import path belongs to this module.
func (m *Module) inModule(importPath string) bool {
	return importPath == m.Path || strings.HasPrefix(importPath, m.Path+"/")
}

// listPkg is the subset of `go list -json` fields the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path, Dir string }
	Error      *struct{ Err string }
}

// Load parses and type-checks every package matched by the patterns
// (default ./...) under dir. It shells out to `go list -export -deps` so
// imports — standard library and module-internal alike — resolve from
// compiler export data; the matched packages themselves are re-checked
// from source to get ASTs with full type information.
func Load(dir string, patterns ...string) (*Module, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Module,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = absDir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list: %w\n%s", err, stderr.String())
	}

	var metas []listPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listPkg
		if err := dec.Decode(&p); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		metas = append(metas, p)
	}

	exports := map[string]string{}
	var targets []listPkg
	for _, p := range metas {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Standard || p.DepOnly || p.Module == nil {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.GoFiles) == 0 {
			continue // test-only packages (e.g. the module root)
		}
		targets = append(targets, p)
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("lint: no packages matched %v under %s", patterns, absDir)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	m := &Module{
		Path:         targets[0].Module.Path,
		Dir:          targets[0].Module.Dir,
		Fset:         token.NewFileSet(),
		Funcs:        map[string]*FuncNode{},
		allows:       map[string][]*allowDirective{},
		suppressedBy: map[string]int{},
	}

	lookup := func(importPath string) (io.ReadCloser, error) {
		f, ok := exports[importPath]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", importPath)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(m.Fset, "gc", lookup)

	for _, t := range targets {
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(m.Fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: %w", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, m.Fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", t.ImportPath, err)
		}
		pkg := &Package{Path: t.ImportPath, Dir: t.Dir, Files: files, Pkg: tpkg, Info: info}
		m.Packages = append(m.Packages, pkg)
	}

	for _, pkg := range m.Packages {
		m.indexFuncs(pkg)
	}
	for _, pkg := range m.Packages {
		m.scanDirectives(pkg)
	}
	return m, nil
}

// indexFuncs records every function declaration under its FullName.
func (m *Module) indexFuncs(pkg *Package) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			m.Funcs[obj.FullName()] = &FuncNode{Pkg: pkg, Decl: fd, Obj: obj}
		}
	}
}
