// Package atomiccheck is an analyzer fixture: fields accessed both
// through sync/atomic and with plain loads/stores, and copies of
// values carrying locks or atomics, next to the clean pointer-based
// shapes the analyzer must accept.
package atomiccheck

import (
	"sync"
	"sync/atomic"
)

// counters mixes an address-based atomic field with a typed one.
type counters struct {
	hits  uint64 // atomic: see bump
	total atomic.Uint64
}

func (c *counters) bump() {
	atomic.AddUint64(&c.hits, 1)
	c.total.Add(1)
}

func (c *counters) readPlain() uint64 {
	return c.hits // want "accessed with sync/atomic elsewhere"
}

func (c *counters) resetPlain() {
	c.hits = 0 // want "accessed with sync/atomic elsewhere"
}

func (c *counters) readAtomic() uint64 {
	return atomic.LoadUint64(&c.hits)
}

func snapshotCounters(c *counters) counters {
	return *c // want "return copies a atomiccheck.counters value \\(contains atomically-accessed field hits\\)"
}

var pkgHits uint64

func bumpPkg() { atomic.AddUint64(&pkgHits, 1) }

func readPkgPlain() uint64 {
	return pkgHits // want "accessed with sync/atomic elsewhere"
}

// guarded carries a mutex; copying it forks the lock state.
type guarded struct {
	mu sync.Mutex
	n  int
}

func byValueParam(g guarded) int { // want "parameter passes a atomiccheck.guarded by value \\(contains sync.Mutex\\)"
	return g.n
}

func byPointerParam(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func (g guarded) valueReceiver() int { // want "value receiver copies a atomiccheck.guarded"
	return g.n
}

func assignCopy(g *guarded) {
	h := *g // want "assignment copies a atomiccheck.guarded value"
	_ = h.n
}

func rangeCopy(gs []guarded) int {
	n := 0
	for _, g := range gs { // want "range copies a atomiccheck.guarded value"
		n += g.n
	}
	return n
}

func rangeByIndex(gs []guarded) int {
	n := 0
	for i := range gs {
		n += gs[i].n
	}
	return n
}

func passesWaitGroup(wg sync.WaitGroup) { // want "parameter passes a sync.WaitGroup by value"
	wg.Wait()
}

// stats embeds a typed atomic; passing it along copies the counter.
type stats struct {
	n atomic.Int64
}

func observe(s *stats, sink func(stats)) {
	sink(*s) // want "call passes a atomiccheck.stats value \\(contains atomic.Int64\\)"
}

func fresh() guarded {
	return guarded{n: 1} // composite literal: construction, not a copy
}

func aggregate() int {
	// The allow form: a deliberate copy of a never-shared value.
	var g guarded
	//ppep:allow atomiccheck g is function-local and never shared
	h := g
	return h.n
}

// want "unused //ppep:allow suppression"
//
//ppep:allow atomiccheck nothing here copies a lock
func noCopyHere() int { return 7 }
