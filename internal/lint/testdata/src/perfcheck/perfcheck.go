// Package perfcheck is an analyzer fixture for the compiler-diagnostics
// budgets. Each seeded regression is one the AST analyzers cannot see:
// an address-of-local heap escape on a hot root (no composite literal,
// no append, no make — only escape analysis catches it), a function
// whose body outgrew the inliner's cost budget, and a loop whose bounds
// check the prove pass cannot eliminate because the bound is a free
// parameter. The want expectations quote the verbatim compiler messages
// perfcheck embeds in its findings.
package perfcheck

// escapeRoot returns the address of a local, so the compiler moves v to
// the heap. Syntactically this allocates nothing; the AST hotpath
// analyzer passes it, and only the compiler's verdict fails it.
//
//ppep:hotpath
func escapeRoot(n int) *int {
	v := n + 1 // want "escape analysis: v escapes to heap \\(in perfcheck.escapeRoot\\)" "escape analysis: moved to heap: v \\(in perfcheck.escapeRoot\\)"
	return &v
}

// escapeAllowed seeds the same regression behind a suppression: the
// //ppep:allow perfcheck covers the compiler's position, so no finding
// survives and the directive counts as used (an unused one would be its
// own finding).
//
//ppep:hotpath
func escapeAllowed(n int) *int {
	v := n + 2 //ppep:allow perfcheck fixture: sanctioned escape, returns a handle created once
	return &v
}

// heavy is annotated //ppep:inline but its body costs more than the
// inliner's budget, so the compiler refuses — the seeded inline-cost
// regression.
//
//ppep:inline
func heavy(a, b, c, d float64) float64 { // want "//ppep:inline function is not inlined; compiler says: cannot inline heavy: function too complex: cost \\d+ exceeds budget \\d+"
	x := a*b + c*d
	for i := 0; i < 8; i++ {
		x = x*a + b
		x = x/c + d
		x = x*x - a*b
		x = x + a - b + c - d
		x = x * 1.000001
	}
	if x > 0 {
		x = -x
	}
	for i := 0; i < 4; i++ {
		x += a * b
		x -= c * d
		x *= 1.5
		x /= 2.5
	}
	return x
}

// light is comfortably under the budget: the positive verdict satisfies
// the annotation and produces no finding.
//
//ppep:inline
func light(a, b float64) float64 {
	return a*b + a/b
}

// sweep's loop bound is a free parameter, so the prove pass cannot
// discharge the s[i] check — the seeded bounds-check regression.
func sweep(s []int, n int) {
	//ppep:nobc
	for i := 0; i < n; i++ {
		s[i]++ // want "residual bounds check in //ppep:nobc range \\(for loop\\): compiler reports \"Found IsInBounds\""
	}
}

// sweepOK ranges over the slice itself: the check is eliminated and the
// //ppep:nobc budget holds.
func sweepOK(s []int) {
	//ppep:nobc
	for i := range s {
		s[i]++
	}
}
