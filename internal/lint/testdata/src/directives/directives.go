// Package directives is an analyzer fixture for the directive parser
// itself: malformed and misplaced //ppep: comments are findings.
package directives

// want "unknown directive"
//ppep:frobnicate

// want "needs an analyzer name and a reason"
//ppep:allow

// want "unknown analyzer \"nosuch\""
//ppep:allow nosuch the analyzer name is misspelled

func Misplaced() {
	// want "must appear in a function's doc comment"
	//ppep:hotpath
	_ = 1
}

func MisplacedInline() {
	// want "//ppep:inline must appear in a function's doc comment"
	//ppep:inline
	_ = 1
}

// want "//ppep:nobc marks a statement, not a function"
//
//ppep:nobc
func NobcOnFunc() {
	_ = 1
}

func NobcDangling() {
	_ = 1
	// want "//ppep:nobc must immediately precede the statement it covers"
	//ppep:nobc
}
