// Package unitcheck is an analyzer fixture: bare-float64 API surfaces,
// cross-unit conversions, annihilating double casts, and same-unit
// products, next to the typed and one-sided shapes the analyzer must
// accept.
package unitcheck

import "fixture/units"

// --- API rule: exported surfaces must carry unit types ---

// Coefficients is an exported model struct. Typed fields pass; bare
// floats are findings unless justified.
type Coefficients struct {
	Supply units.Volts
	Alpha  float64   // want "bare float64"
	Gains  []float64 // want "bare \\[\\]float64"
	scale  float64   // unexported: not API
}

// Estimate mixes typed and bare parameters: only the bare ones are
// findings, at the signature.
func Estimate(v units.Volts, headroom float64) units.Watts { // want "bare float64"
	return units.Watts(float64(v) * headroom * Coefficients{}.scale)
}

// Utilization is justified dimensionless API: the allow suppresses the
// whole signature.
//
//ppep:allow unitcheck utilization is a dimensionless fraction
func Utilization(busy, total float64) float64 {
	return busy / total
}

// helperRatio is unexported: bare float64 is fine outside the exported
// surface.
func helperRatio(a, b float64) float64 { return a / b }

// --- conversion rule: no cross-unit reinterpretation ---

// Reinterpret converts across dimensions directly and through a
// float64 laundering cast; both are findings. Converting a plain
// float64 into a unit type (the measurement boundary) is fine.
func Reinterpret(c units.Celsius, raw float64) units.Kelvin { // want "bare float64"
	k := units.Kelvin(c)          // want "crosses dimensions"
	k += units.Kelvin(float64(c)) // want "crosses dimensions"
	k += units.Kelvin(raw)        // boundary cast: accepted
	k += c.Kelvin()               // named helper: accepted
	return k
}

// --- arithmetic rule: annihilating casts and same-unit products ---

// Annihilate multiplies two stripped unit values: both dimensions
// vanish in one expression.
func Annihilate(v units.Volts, t units.Kelvin) float64 { // want "bare float64"
	return float64(v) * float64(t) // want "annihilate both dimensions"
}

// SquareAndRatio changes dimension with same-type products and
// quotients; Go's type system is satisfied, the physics is not.
func SquareAndRatio(w, ref units.Watts) units.Watts {
	sq := w * w // want "silently changes dimension"
	_ = w / ref // want "silently changes dimension"
	return sq
}

// Sanctioned shows the accepted shapes: same-unit sums, constant
// scaling, one-sided casts against plain scalars, and the .Per helper.
func Sanctioned(w, ref units.Watts, scale float64) float64 { // want "bare float64" "bare float64"
	total := w + ref    // same-dimension sum
	half := total * 0.5 // constant scaling keeps the dimension
	scaled := float64(half) * scale
	return scaled + w.Per(ref)
}

// stale suppression: nothing here for unitcheck to find.
func stale(x float64) float64 {
	return x + 1 //ppep:allow unitcheck nothing suppressed here // want "unused //ppep:allow suppression"
}
