// Package ctxcheck is an analyzer fixture: service loops that ignore
// cancellation, exported blocking APIs without a context, and stored
// contexts, next to the observing shapes the analyzer must accept.
package ctxcheck

import (
	"context"
	"sync"
	"time"
)

func work() {}

func step() bool { return true }

func spinNever() {
	for { // want "never observes ctx.Done"
		work()
	}
}

func spinConditional(ctx context.Context, needReset bool) {
	for { // want "observes ctx.Done\\(\\) only on some iteration paths"
		if needReset {
			select {
			case <-ctx.Done():
				return
			default:
			}
		}
		work()
	}
}

func runClean(ctx context.Context) error {
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		work()
	}
}

func errClean(ctx context.Context) error {
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		work()
	}
}

func quitClean(quit chan struct{}) {
	for {
		select {
		case <-quit:
			return
		default:
		}
		work()
	}
}

func boundedByBreak() {
	for {
		if step() {
			break
		}
	}
}

func WaitAll(wg *sync.WaitGroup) { // want "blocks .* but accepts no context.Context"
	wg.Wait()
}

func Pace() { // want "blocks \\(time.Sleep\\) but accepts no context.Context"
	time.Sleep(time.Millisecond)
}

func Drain(ch chan int) int { // want "blocks \\(channel receive\\) but accepts no context.Context"
	return <-ch
}

func DrainCtx(ctx context.Context, ch chan int) int {
	select {
	case <-ctx.Done():
		return 0
	case v := <-ch:
		return v
	}
}

func Poll(ch chan int) int { // non-blocking select: accepted
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}

func Misplaced(n int, ctx context.Context) { // want "context.Context must be the first parameter"
	_ = n
	_ = ctx
}

type held struct {
	ctx context.Context // want "context.Context stored in a struct field"
	n   int
}

func (h *held) N() int { return h.n }

// Launch's blocking send lives in the goroutine it launches; the
// launcher itself does not block (that goroutine is leakcheck's beat).
func Launch(ctx context.Context, done chan struct{}) {
	go func() {
		work()
		select {
		case done <- struct{}{}:
		case <-ctx.Done():
		}
	}()
}
