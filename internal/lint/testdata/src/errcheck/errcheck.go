// Package errcheck is an analyzer fixture: dropped and blank-discarded
// error returns, next to the justified and always-succeeding shapes the
// analyzer must accept.
package errcheck

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

func fallible() error { return errors.New("boom") }

func pair() (int, error) { return 0, errors.New("boom") }

func Dropped() {
	fallible() // want "error return of errcheck.fallible is silently dropped"
}

func BlankNoComment() {
	_ = fallible() // want "without a justification comment"
}

func BlankJustified() {
	// best-effort cleanup; the result is unused either way
	_ = fallible()
}

func PairBlank() int {
	v, _ := pair() // want "without a justification comment"
	return v
}

func PairHandled() int {
	v, err := pair()
	if err != nil {
		return -1
	}
	return v
}

// Writers documented never to fail, and terminal diagnostics: accepted.
func Exempt() string {
	var b strings.Builder
	fmt.Fprintf(&b, "x=%d", 1)
	b.WriteString("!")
	fmt.Fprintln(os.Stderr, "progress")
	fmt.Println("done")
	return b.String()
}

// want "unused //ppep:allow suppression"
//
//ppep:allow errcheck nothing here actually drops an error
func NoDropHere() int { return 42 }
