// Package hotpath is an analyzer fixture: every construct the hotpath
// analyzer must flag, plus the shapes it must accept (plain value
// literals, indexed writes, allow-suppressed amortized calls).
package hotpath

import (
	"fmt"
	"sync"
	"time"
)

var sink []float64
var mu sync.Mutex

type point struct{ x, y float64 }

// Tick is the fixture hot loop.
//
//ppep:hotpath
func Tick(xs []float64, name string) float64 {
	total := 0.0
	for i, x := range xs {
		xs[i] = x // indexed write: fine
		total += x
	}
	pt := point{total, total} // plain value literal: fine
	total += pt.x

	sink = append(sink, total) // want "append allocates"
	s := make([]float64, 4)    // want "make allocates"
	s[0] = total
	lit := []float64{total} // want "slice/map literal allocates"
	_ = lit
	p := &point{total, total} // want "escapes to the heap"
	_ = p
	label := name + "!" // want "string concatenation allocates"
	_ = label
	bs := []byte(name) // want "conversion to \[\]byte allocates"
	_ = bs
	f := func() float64 { return 0 } // want "closure may allocate"
	total += f()                     // want "indirect call"
	fmt.Println(total)               // want "formats and allocates"
	t := time.Now()                  // want "time.Now on the hot path"
	_ = t
	mu.Lock()         // want "takes a lock"
	defer mu.Unlock() // want "defer on the hot path" "takes a lock"

	go helper(xs) // want "go statement on the hot path"

	helper(xs)               // transitive walk: helper's own findings are reported
	box(total)               // want "passing float64 as interface"
	vararg(1, 2)             // want "variadic call allocates"
	total += amortized(name) //ppep:allow hotpath memoized; runs once per phase transition
	return total
}

func helper(xs []float64) {
	extra := new(float64) // want "new allocates"
	_ = extra
}

func box(v any) {}

func vararg(vs ...int) {}

// amortized would be flagged (Sprintf), but the allow at its only hot
// call site stops the traversal before reaching it.
func amortized(name string) float64 {
	return float64(len(fmt.Sprintf("%s-suffix", name)))
}

// Cold is not annotated, so nothing in it is checked.
func Cold() []float64 {
	return make([]float64, 128)
}
