// Package units is the fixture counterpart of the real module's
// internal/units: a handful of defined float64 quantity types plus the
// named conversion helpers the unitcheck analyzer steers code toward.
// The package itself is exempt from unitcheck — it is where dimension
// moves are allowed to be spelled out.
package units

// Volts is an electrical potential.
type Volts float64

// Kelvin is an absolute temperature.
type Kelvin float64

// Celsius is a temperature on the Celsius scale.
type Celsius float64

// Watts is a power.
type Watts float64

// Seconds is a duration.
type Seconds float64

// Joules is an energy.
type Joules float64

// Kelvin converts a Celsius temperature to the absolute scale.
func (c Celsius) Kelvin() Kelvin { return Kelvin(float64(c) + 273.15) }

// Celsius converts an absolute temperature to the Celsius scale.
func (k Kelvin) Celsius() Celsius { return Celsius(float64(k) - 273.15) }

// Over integrates a power over a duration.
func (w Watts) Over(d Seconds) Joules { return Joules(float64(w) * float64(d)) }

// Per returns the dimensionless power ratio w/ref.
func (w Watts) Per(ref Watts) float64 { return float64(w) / float64(ref) }
