// Package leakcheck is an analyzer fixture: goroutines launched with
// and without a provable join or cancel.
package leakcheck

import (
	"context"
	"errors"
	"sync"
)

func work() {}

func run() error { return errors.New("boom") }

func pump(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
		work()
	}
}

func fireNamed() {
	go work() // want "no provable join or cancel"
}

func fireLit() {
	go func() { // want "no provable join or cancel"
		work()
	}()
}

func joinedByWaitGroup(n int) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

func doneWithoutAdd() {
	var wg sync.WaitGroup
	go func() { // want "no provable join or cancel"
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func joinedByChannel() error {
	errc := make(chan error, 1)
	go func() { errc <- run() }()
	return <-errc
}

func joinedInSelect(ctx context.Context) error {
	errc := make(chan error, 1)
	go func() { errc <- run() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

func sendWithoutReceive() {
	errc := make(chan error, 1)
	go func() { // want "no provable join or cancel"
		errc <- run()
	}()
}

func cancelledBody(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
			}
			work()
		}
	}()
}

func namedWithCtx(ctx context.Context) {
	go pump(ctx)
}

func monitor() {
	//ppep:allow leakcheck process-lifetime watcher, exits with main
	go work()
}

// want "unused //ppep:allow suppression"
//
//ppep:allow leakcheck nothing launched here
func noGoroutineHere() { work() }
