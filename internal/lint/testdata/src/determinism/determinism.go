// Package determinism is an analyzer fixture: wall-clock reads, global
// math/rand use, and order-dependent map iteration, next to the sorted
// and seeded shapes the analyzer must accept.
package determinism

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Seeded draws from an explicitly seeded generator: accepted.
func Seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

func Clocked() float64 {
	t := time.Now() // want "wall clock"
	return float64(t.Unix())
}

// Elapsed reads the wall clock through the Since/Until arithmetic
// helpers — the same nondeterminism as time.Now, just indirected.
func Elapsed(start, deadline time.Time) float64 {
	d := time.Since(start)    // want "wall clock"
	u := time.Until(deadline) // want "wall clock"
	return d.Seconds() + u.Seconds()
}

func GlobalRand() float64 {
	return rand.Float64() // want "global math/rand.Float64"
}

// SumMap accumulates floats in map order: the total's low bits change
// run to run.
func SumMap(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want "accumulates into a float"
		total += v
	}
	return total
}

// CollectUnsorted emits values in map order.
func CollectUnsorted(m map[string]int) []int {
	var out []int
	for _, v := range m { // want "appends to a slice"
		out = append(out, v)
	}
	return out
}

// CollectSorted gathers keys and sorts before use: accepted.
func CollectSorted(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// KeyedWrites copies map-to-map: every iteration writes its own slot, so
// order cannot matter.
func KeyedWrites(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] += v
	}
	return out
}

// PerIterationLocals resets its accumulator each iteration: accepted.
func PerIterationLocals(m map[string][]float64) int {
	n := 0
	for _, vs := range m {
		s := 0.0
		for _, v := range vs {
			s += v
		}
		if s > 1 {
			n++
		}
	}
	return n
}

// DebugDump is order-dependent on purpose; the allow keeps it visible.
func DebugDump(m map[string]int) {
	//ppep:allow determinism debug dump; ordering is cosmetic
	for k, v := range m {
		fmt.Println(k, v)
	}
}
