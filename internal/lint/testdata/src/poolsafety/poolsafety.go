// Package poolsafety is an analyzer fixture: worker bodies handed to the
// pool dispatcher writing shared state, next to the owned-slot and
// mutex-guarded shapes the analyzer must accept.
package poolsafety

import "sync"

var hits int

// forEachJob stands in for the module's bounded worker pool: the last
// argument is the worker body, invoked concurrently with job indices.
func forEachJob(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// OwnedSlots writes only the worker's own index: accepted.
func OwnedSlots(n int) []int {
	out := make([]int, n)
	forEachJob(n, func(i int) {
		x := i * i // worker-private local: accepted
		out[i] = x
	})
	return out
}

func Races(n int) int {
	total := 0
	first := 0
	forEachJob(n, func(i int) {
		hits++     // want "package-level hits"
		total += i // want "captured variable total"
		first = i  // want "captured variable first"
	})
	return total + first
}

func SharedSlot(n int) []int {
	out := make([]int, 1)
	forEachJob(n, func(i int) {
		out[0] = i // want "index not derived from the worker's parameter"
	})
	return out
}

// Locked serializes its shared writes: accepted.
func Locked(n int) int {
	var mu sync.Mutex
	total := 0
	forEachJob(n, func(i int) {
		mu.Lock()
		total += i
		mu.Unlock()
	})
	return total
}

// Sampled writes a shared cell on purpose (last writer wins is fine for
// a progress sample); the allow keeps the exception visible.
func Sampled(n int) int {
	latest := 0
	forEachJob(n, func(i int) {
		//ppep:allow poolsafety progress sample; any worker's value is acceptable
		latest = i
	})
	return latest
}
