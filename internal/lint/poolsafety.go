package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// runPoolSafety checks func literals dispatched onto the bounded worker
// pool (calls to the functions named in cfg.PoolFuncNames, e.g.
// forEachJob). Worker bodies run concurrently, so they may only:
//
//   - write through an index expression that mentions the worker's own
//     index parameter (the owned-slot pattern: results[i] = ...), or
//   - write shared state under a mutex taken inside the body.
//
// Writes to package-level variables or to captured variables (including
// append, which reads and writes the captured slice header) outside
// those two shapes are data races the -race runs may only catch
// probabilistically; the analyzer flags them deterministically.
func runPoolSafety(m *Module, cfg Config) []Finding {
	var fs []Finding
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				obj := calleeOf(pkg.Info, call)
				if obj == nil || !cfg.PoolFuncNames[obj.Name()] || !m.inModule(obj.Pkg().Path()) {
					return true
				}
				if len(call.Args) == 0 {
					return true
				}
				lit, ok := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.FuncLit)
				if !ok {
					return true
				}
				checkWorkerBody(m, pkg, lit, &fs)
				return true
			})
		}
	}
	return fs
}

func checkWorkerBody(m *Module, pkg *Package, lit *ast.FuncLit, fs *[]Finding) {
	params := map[types.Object]bool{}
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			if o := pkg.Info.Defs[name]; o != nil {
				params[o] = true
			}
		}
	}
	// Locals declared inside the body are worker-private.
	locals := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if o := pkg.Info.Defs[id]; o != nil {
							locals[o] = true
						}
					}
				}
			}
		case *ast.ValueSpec:
			for _, name := range n.Names {
				if o := pkg.Info.Defs[name]; o != nil {
					locals[o] = true
				}
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if id, ok := e.(*ast.Ident); ok {
					if o := pkg.Info.Defs[id]; o != nil {
						locals[o] = true
					}
				}
			}
		}
		return true
	})

	if bodyTakesLock(pkg.Info, lit.Body) {
		return // synchronized; trust the mutex discipline
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				checkWorkerWrite(m, pkg, lhs, params, locals, fs)
			}
		case *ast.IncDecStmt:
			checkWorkerWrite(m, pkg, n.X, params, locals, fs)
		}
		return true
	})
}

// bodyTakesLock reports whether the worker body calls a sync lock method,
// in which case its shared writes are presumed guarded.
func bodyTakesLock(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj := calleeOf(info, call); obj != nil && obj.Pkg() != nil &&
			obj.Pkg().Path() == "sync" && lockMethods[obj.Name()] {
			found = true
		}
		return !found
	})
	return found
}

func checkWorkerWrite(m *Module, pkg *Package, lhs ast.Expr, params, locals map[types.Object]bool, fs *[]Finding) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		obj := pkg.Info.Uses[lhs]
		if obj == nil || locals[obj] || params[obj] {
			return
		}
		if isPackageLevel(obj) {
			m.emit(fs, "poolsafety", lhs.Pos(),
				"worker body writes package-level %s without synchronization", lhs.Name)
			return
		}
		m.emit(fs, "poolsafety", lhs.Pos(),
			"worker body writes captured variable %s without synchronization", lhs.Name)
	case *ast.IndexExpr:
		base := rootIdent(lhs.X)
		if base == nil {
			return
		}
		obj := pkg.Info.Uses[base]
		if obj == nil || locals[obj] || params[obj] {
			return
		}
		// Owned-slot pattern: the index mentions a worker parameter, so
		// each worker touches a disjoint element.
		if mentionsAny(pkg.Info, lhs.Index, params) {
			return
		}
		m.emit(fs, "poolsafety", lhs.Pos(),
			"worker body writes shared %s at an index not derived from the worker's parameter", base.Name)
	case *ast.SelectorExpr:
		base := rootIdent(lhs)
		if base == nil {
			return
		}
		obj := pkg.Info.Uses[base]
		if obj == nil || locals[obj] || params[obj] {
			return
		}
		m.emit(fs, "poolsafety", lhs.Pos(),
			"worker body writes field of shared %s without synchronization", base.Name)
	}
}

// rootIdent returns the leftmost identifier of a selector/index chain.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// mentionsAny reports whether expr references any of the given objects.
func mentionsAny(info *types.Info, expr ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if o := info.Uses[id]; o != nil && objs[o] {
				found = true
			}
		}
		return !found
	})
	return found
}

// isPackageLevel reports whether obj is declared at package scope.
func isPackageLevel(obj types.Object) bool {
	return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}
