package lint

import (
	"bufio"
	"bytes"
	"fmt"
	"hash/fnv"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// perfcheck treats the Go compiler as the oracle: `go build` with
//
//	-gcflags='-m -m -d=ssa/check_bce/debug=1'
//
// prints, per position, every escape-analysis decision, every inlining
// verdict (with cost and reason), and every bounds check the SSA
// backend could not eliminate. This file runs that build, parses the
// position-tagged diagnostics into PerfDiagnostics, and caches the raw
// transcript keyed by a content hash so CI pays for one compile.

// perfGcflags is the exact flag set perfcheck compiles with. It is a
// package-level constant so the golden-transcript tests and the docs
// quote the same invocation.
const perfGcflags = "-m -m -d=ssa/check_bce/debug=1"

// PerfDiagKind classifies one parsed compiler diagnostic.
type PerfDiagKind int

const (
	// PerfEscape is a heap allocation decision: "<expr> escapes to
	// heap" or "moved to heap: <var>".
	PerfEscape PerfDiagKind = iota
	// PerfCanInline is a positive inlining verdict, with the cost.
	PerfCanInline
	// PerfCannotInline is a negative inlining verdict, with the
	// compiler's reason.
	PerfCannotInline
	// PerfBoundsCheck is a residual bounds check ("Found IsInBounds" /
	// "Found IsSliceInBounds") the SSA prove pass could not eliminate.
	PerfBoundsCheck
)

// PerfDiag is one parsed compiler diagnostic. File is absolute, Msg is
// the verbatim compiler message after the position prefix.
type PerfDiag struct {
	Kind PerfDiagKind
	File string
	Line int
	Col  int
	Msg  string
	// Func is the function name the compiler printed for inlining
	// verdicts ("(*Histogram).Record", "queryValue", ...).
	Func string
	// Cost is the inlining cost for PerfCanInline verdicts.
	Cost int
}

// PerfDiagnostics is the parsed output of one diagnostics build.
type PerfDiagnostics struct {
	// GoVersion is runtime.Version() of the toolchain that produced
	// the transcript (informational; quoted in drift findings).
	GoVersion string
	// Escapes and Bounds index allocation and bounds-check diagnostics
	// by absolute file path, each slice sorted by line.
	Escapes map[string][]PerfDiag
	Bounds  map[string][]PerfDiag
	// CanInline and CannotInline index verdicts by "file:line" of the
	// func declaration. A position can carry both (generic shapes vs
	// instantiations); CanInline wins.
	CanInline    map[string]PerfDiag
	CannotInline map[string]PerfDiag
	// Evidence counters for toolchain-drift detection: a transcript
	// with zero parsed lines of a class means the format moved, not
	// that the module is clean.
	NumEscapeLines int // escapes + "does not escape" + "leaking param"
	NumInlineLines int // can/cannot inline + "inlining call to"
	NumBoundsLines int
	// CompileWall is how long the go build took (zero on a transcript
	// cache hit).
	CompileWall time.Duration
	// CacheHit reports whether the transcript came from -gcflags-cache.
	CacheHit bool
}

// diagKey renders the "file:line" index key for inlining verdicts.
func diagKey(file string, line int) string {
	return file + ":" + strconv.Itoa(line)
}

// diagLine matches one position-tagged compiler line. Continuation
// lines of -m -m escape traces ("flow:", "from ...") carry the same
// prefix but indent the message; the parser skips those.
var diagLine = regexp.MustCompile(`^(.+?):(\d+):(\d+): (.*)$`)

// canInlineRE captures the function name and cost from a positive
// verdict: `can inline F with cost N as: ...` (the "with cost" clause
// needs -m -m; plain -m omits it, so cost stays zero).
var canInlineRE = regexp.MustCompile(`^can inline (.+?)(?: with cost (\d+) as: .*)?$`)

// cannotInlineRE captures the name and reason from a negative verdict:
// `cannot inline F: function too complex: cost 213 exceeds budget 80`.
var cannotInlineRE = regexp.MustCompile(`^cannot inline (.+?): (.+)$`)

// ParsePerfTranscript parses a raw `go build -gcflags='-m -m
// -d=ssa/check_bce/debug=1'` transcript. Relative file positions are
// resolved against dir. Unknown lines are skipped: the compiler prints
// many diagnostic shapes and perfcheck consumes exactly three classes;
// the evidence counters let callers detect when a class vanished
// wholesale (format drift) rather than thinned out.
func ParsePerfTranscript(transcript []byte, dir string) *PerfDiagnostics {
	d := &PerfDiagnostics{
		GoVersion:    runtime.Version(),
		Escapes:      map[string][]PerfDiag{},
		Bounds:       map[string][]PerfDiag{},
		CanInline:    map[string]PerfDiag{},
		CannotInline: map[string]PerfDiag{},
	}
	// -m -m prints one escape decision several times (once with its
	// flow trace, once in the summary pass, again per inlined copy);
	// collapse exact duplicates so a single decision is one diagnostic.
	seen := map[string]bool{}
	sc := bufio.NewScanner(bytes.NewReader(transcript))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue // package headers and blanks
		}
		m := diagLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		file, msg := m[1], m[4]
		if strings.HasPrefix(msg, " ") || strings.HasPrefix(msg, "\t") {
			continue // -m -m flow continuation ("  flow:", "    from ...")
		}
		if strings.HasPrefix(file, "<") {
			continue // <autogenerated> wrappers have no source to lint
		}
		if !filepath.IsAbs(file) {
			file = filepath.Join(dir, file)
		}
		lineNo, _ := strconv.Atoi(m[2]) // diagLine guarantees digits
		col, _ := strconv.Atoi(m[3])    // diagLine guarantees digits
		pd := PerfDiag{File: file, Line: lineNo, Col: col, Msg: msg}

		switch {
		case strings.HasPrefix(msg, "moved to heap: "),
			strings.HasSuffix(msg, " escapes to heap"),
			strings.HasSuffix(msg, " escapes to heap:"):
			d.NumEscapeLines++
			pd.Kind = PerfEscape
			pd.Msg = strings.TrimSuffix(msg, ":")
			if key := "e\x00" + file + "\x00" + m[2] + "\x00" + m[3] + "\x00" + pd.Msg; !seen[key] {
				seen[key] = true
				d.Escapes[file] = append(d.Escapes[file], pd)
			}
		case strings.HasSuffix(msg, " does not escape"),
			strings.HasPrefix(msg, "leaking param"):
			d.NumEscapeLines++ // drift evidence only
		case strings.HasPrefix(msg, "can inline "):
			d.NumInlineLines++
			cm := canInlineRE.FindStringSubmatch(msg)
			if cm == nil {
				continue
			}
			pd.Kind = PerfCanInline
			pd.Func = cm[1]
			if cm[2] != "" {
				pd.Cost, _ = strconv.Atoi(cm[2]) // canInlineRE guarantees digits
			}
			// Strip the (potentially huge) "as: ..." body; the verdict
			// and cost are what budgets quote.
			pd.Msg = fmt.Sprintf("can inline %s with cost %d", pd.Func, pd.Cost)
			d.CanInline[diagKey(file, lineNo)] = pd
		case strings.HasPrefix(msg, "cannot inline "):
			d.NumInlineLines++
			cm := cannotInlineRE.FindStringSubmatch(msg)
			if cm == nil {
				continue
			}
			pd.Kind = PerfCannotInline
			pd.Func = cm[1]
			d.CannotInline[diagKey(file, lineNo)] = pd
		case strings.HasPrefix(msg, "inlining call to "):
			d.NumInlineLines++ // drift evidence only
		case msg == "Found IsInBounds", msg == "Found IsSliceInBounds":
			d.NumBoundsLines++
			pd.Kind = PerfBoundsCheck
			if key := "b\x00" + file + "\x00" + m[2] + "\x00" + m[3] + "\x00" + msg; !seen[key] {
				seen[key] = true
				d.Bounds[file] = append(d.Bounds[file], pd)
			}
		}
	}
	// Stable, so diagnostics sharing a position (the escapes/moved pair)
	// keep transcript order.
	for _, byFile := range []map[string][]PerfDiag{d.Escapes, d.Bounds} {
		for _, ds := range byFile {
			sort.SliceStable(ds, func(i, j int) bool {
				if ds[i].Line != ds[j].Line {
					return ds[i].Line < ds[j].Line
				}
				return ds[i].Col < ds[j].Col
			})
		}
	}
	return d
}

// perfTranscriptHash fingerprints everything that determines the
// compiler's diagnostics: the toolchain, the flag set, the build
// patterns, and the content of every non-test Go file the loader
// matched. Any change misses the transcript cache and recompiles.
func (m *Module) perfTranscriptHash(patterns []string) string {
	h := fnv.New64a()
	put := func(s string) {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	put(runtime.Version())
	put(perfGcflags)
	put(strings.Join(patterns, " "))
	put(m.Path)
	type src struct{ rel, abs string }
	var files []src
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			abs := m.Fset.Position(f.Pos()).Filename
			rel, err := filepath.Rel(m.Dir, abs)
			if err != nil {
				rel = abs
			}
			files = append(files, src{rel, abs})
		}
	}
	sort.Slice(files, func(i, j int) bool { return files[i].rel < files[j].rel })
	for _, f := range files {
		put(f.rel)
		data, err := os.ReadFile(f.abs)
		if err != nil {
			put("unreadable: " + err.Error())
			continue
		}
		h.Write(data)
		h.Write([]byte{0})
	}
	// go.mod participates: a toolchain or module-path edit changes
	// what the compiler sees.
	if data, err := os.ReadFile(filepath.Join(m.Dir, "go.mod")); err == nil {
		h.Write(data)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// runPerfBuild shells out to the diagnostics build and returns the
// combined transcript. The -gcflags set applies to the named patterns
// only (not dependencies), which is exactly the lintable surface.
func runPerfBuild(dir string, patterns []string) ([]byte, error) {
	args := append([]string{"build", "-gcflags=" + perfGcflags}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("lint: go %s: %w\n%s", strings.Join(args, " "), err, out)
	}
	return out, nil
}

// perfDiagnostics runs (or replays) the diagnostics build for this
// module, memoized per Module so Run and RunAnalyzer pay at most one
// compile. With cfg.PerfCacheDir set, the raw transcript is cached on
// disk keyed by perfTranscriptHash — CI restores the directory and a
// no-op change costs a hash instead of a compile.
func (m *Module) perfDiagnostics(cfg Config) (*PerfDiagnostics, error) {
	m.perfOnce.Do(func() {
		patterns := cfg.PerfPatterns
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		var cachePath string
		if cfg.PerfCacheDir != "" {
			cachePath = filepath.Join(cfg.PerfCacheDir, "perfcheck-"+m.perfTranscriptHash(patterns)+".txt")
			if data, err := os.ReadFile(cachePath); err == nil {
				m.perfDiags = ParsePerfTranscript(data, m.Dir)
				m.perfDiags.CacheHit = true
				return
			}
		}
		start := time.Now()
		out, err := runPerfBuild(m.Dir, patterns)
		if err != nil {
			m.perfErr = err
			return
		}
		wall := time.Since(start)
		if cachePath != "" {
			if err := os.MkdirAll(cfg.PerfCacheDir, 0o755); err == nil {
				// Best-effort: a read-only cache dir degrades to
				// recompiling, never to failing the lint run.
				_ = os.WriteFile(cachePath, out, 0o644)
			}
		}
		m.perfDiags = ParsePerfTranscript(out, m.Dir)
		m.perfDiags.CompileWall = wall
	})
	return m.perfDiags, m.perfErr
}
