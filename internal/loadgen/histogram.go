// Package loadgen is a closed-loop HTTP load harness for ppepd's
// prediction endpoints: N workers each issue requests back-to-back over
// keep-alive connections, recording per-request latency into
// log-bucketed histograms that merge into p50/p99/p999 summaries.
//
// It exists to back the serving layer's throughput claim with numbers:
// the published-table architecture makes /predict and /predict/batch a
// pointer load plus a byte write, and this package measures what that
// buys end to end — tens of thousands of requests per second from a
// single box, with tail latencies recorded into BENCH_fxsim.json by the
// root BenchmarkPredictServe.
package loadgen

import (
	"math/bits"
	"time"
)

// The histogram is HDR-style: values below 2^subBucketBits are exact,
// and every power-of-two octave above that is split into subBuckets
// sub-ranges, giving a constant relative error of at most
// 1/subBuckets ≈ 6% — plenty for latency percentiles — in a fixed,
// allocation-free array.
const (
	subBucketBits = 4
	subBuckets    = 1 << subBucketBits // 16 sub-buckets per octave

	// 64-bit values need (64 - subBucketBits - 1) shifted octaves plus
	// the exact low range; one extra row keeps the index math branchless
	// at the top edge.
	numBuckets = (64 - subBucketBits) * subBuckets

	// The counts array is padded to the next power of two so Record can
	// mask the index instead of carrying a bounds check on the hottest
	// store (perfcheck pins this via //ppep:nobc). Buckets past
	// numBuckets are unreachable — bucketIndex of a non-negative int64
	// tops out at numBuckets-1 — and stay zero.
	bucketSlots = 1 << (subBucketBits + 6) // 1024 ≥ numBuckets
	bucketMask  = bucketSlots - 1
)

// Histogram counts nanosecond latencies in log-spaced buckets. The
// zero value is ready to use. It is not safe for concurrent use: give
// each worker its own and Merge them afterwards.
type Histogram struct {
	counts [bucketSlots]uint64
	total  uint64
	max    int64
}

// bucketIndex maps a non-negative nanosecond value to its bucket.
//
//ppep:inline
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < subBuckets {
		return int(u)
	}
	// Shift the value down until it fits in [subBuckets, 2*subBuckets);
	// each shift is one octave.
	exp := bits.Len64(u) - subBucketBits - 1
	return exp*subBuckets + int(u>>uint(exp))
}

// bucketHigh is the largest value a bucket can hold — quantiles report
// this upper edge, so they err on the conservative (slower) side.
//
//ppep:inline
func bucketHigh(idx int) int64 {
	if idx < subBuckets {
		return int64(idx)
	}
	exp := idx/subBuckets - 1
	sub := int64(idx%subBuckets + subBuckets)
	return (sub+1)<<uint(exp) - 1
}

// Record adds one observation. Negative durations (clock steps) count
// as zero rather than corrupting the index math. It sits on the
// load-generator's per-request path, so the whole body must inline and
// the bucket store must carry no bounds check: the mask is a no-op for
// every reachable index but lets the prove pass discharge the check.
//
//ppep:inline
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	//ppep:nobc
	h.counts[bucketIndex(v)&bucketMask]++
	h.total++
	if v > h.max {
		h.max = v
	}
}

// Merge folds another histogram into this one.
func (h *Histogram) Merge(o *Histogram) {
	//ppep:nobc
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	if o.max > h.max {
		h.max = o.max
	}
}

// Count is the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.total }

// Max is the largest recorded observation, exact (not bucketed).
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Quantile returns the latency at quantile q in [0, 1]: the upper edge
// of the bucket holding the q-th observation, clamped to the recorded
// maximum. An empty histogram returns 0.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation, 1-based; q=0 means the first.
	rank := uint64(q * float64(h.total))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			v := bucketHigh(i)
			if v > h.max {
				v = h.max
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max)
}
