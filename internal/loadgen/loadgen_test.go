package loadgen

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestBucketIndexMonotone pins the index math: indices never decrease
// with the value, and every bucket's upper edge lands back in the same
// bucket (the round-trip that quantile reporting relies on).
func TestBucketIndexMonotone(t *testing.T) {
	last := -1
	for _, v := range []int64{0, 1, 15, 16, 17, 31, 32, 63, 64, 1000,
		1e6, 1e9, 1e12, math.MaxInt64 / 2} {
		idx := bucketIndex(v)
		if idx < last {
			t.Fatalf("bucketIndex(%d) = %d < previous %d", v, idx, last)
		}
		if idx >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, idx)
		}
		if back := bucketIndex(bucketHigh(idx)); back != idx {
			t.Errorf("bucketHigh(%d) = %d maps back to bucket %d", idx, bucketHigh(idx), back)
		}
		last = idx
	}
}

// TestHistogramQuantiles records a known distribution and checks the
// percentiles land within the histogram's ~6% relative error.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1000 observations: 1..1000 µs, uniformly.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Max() != 1000*time.Microsecond {
		t.Errorf("max %v", h.Max())
	}
	for _, c := range []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Microsecond},
		{0.90, 900 * time.Microsecond},
		{0.99, 990 * time.Microsecond},
		{0.999, 999 * time.Microsecond},
		{1.0, 1000 * time.Microsecond},
	} {
		got := h.Quantile(c.q)
		// Upper-edge reporting: got must be >= the true quantile and
		// within one bucket width (6.25%) above it.
		if got < c.want || float64(got) > float64(c.want)*1.07 {
			t.Errorf("p%g = %v, want within [%v, %v]", 100*c.q, got, c.want, time.Duration(float64(c.want)*1.07))
		}
	}

	var empty Histogram
	if empty.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile not 0")
	}
}

// TestHistogramQuantileEdges pins the defined values at the
// distribution's edges: an empty histogram answers 0 for every
// quantile, and a single-sample histogram answers that sample exactly
// (the bucket's upper edge clamps to the recorded max) — including at
// q=0, q=1, and out-of-range q, which clamp rather than misindex.
func TestHistogramQuantileEdges(t *testing.T) {
	single := func(d time.Duration) *Histogram {
		var h Histogram
		h.Record(d)
		return &h
	}
	for _, tc := range []struct {
		name string
		h    *Histogram
		q    float64
		want time.Duration
	}{
		{"empty q0", &Histogram{}, 0, 0},
		{"empty q0.5", &Histogram{}, 0.5, 0},
		{"empty q1", &Histogram{}, 1, 0},
		{"empty q>1", &Histogram{}, 2, 0},
		{"single q0", single(time.Millisecond), 0, time.Millisecond},
		{"single q0.5", single(time.Millisecond), 0.5, time.Millisecond},
		{"single q0.999", single(time.Millisecond), 0.999, time.Millisecond},
		{"single q1", single(time.Millisecond), 1, time.Millisecond},
		{"single q<0", single(time.Millisecond), -1, time.Millisecond},
		{"single q>1", single(time.Millisecond), 2, time.Millisecond},
		{"single zero-value sample", single(0), 1, 0},
		{"single negative clamps to 0", single(-time.Second), 1, 0},
	} {
		if got := tc.h.Quantile(tc.q); got != tc.want {
			t.Errorf("%s: Quantile(%g) = %v, want %v", tc.name, tc.q, got, tc.want)
		}
	}
}

// TestHistogramMergeDisjoint merges histograms covering disjoint value
// ranges and checks the combined quantiles pick from the correct half:
// the low histogram owns everything up to its share of the mass, the
// high one owns the tail, and max is the global max regardless of merge
// direction.
func TestHistogramMergeDisjoint(t *testing.T) {
	fill := func(lo, hi int) *Histogram {
		var h Histogram
		for i := lo; i <= hi; i++ {
			h.Record(time.Duration(i) * time.Microsecond)
		}
		return &h
	}
	for _, tc := range []struct {
		name     string
		dst, src *Histogram
	}{
		// 100 low samples (1..100 µs) + 100 high samples (10..11 ms):
		// two decades apart, so no bucket overlaps.
		{"low into high", fill(10000, 10099), fill(1, 100)},
		{"high into low", fill(1, 100), fill(10000, 10099)},
	} {
		tc.dst.Merge(tc.src)
		if got, want := tc.dst.Count(), uint64(200); got != want {
			t.Fatalf("%s: merged count = %d, want %d", tc.name, got, want)
		}
		if got, want := tc.dst.Max(), 10099*time.Microsecond; got != want {
			t.Errorf("%s: merged max = %v, want %v", tc.name, got, want)
		}
		// q=0.25 is the 50th of the 100 low observations: must come from
		// the low range, not be dragged up by the high half.
		if got := tc.dst.Quantile(0.25); got < 50*time.Microsecond || got > 54*time.Microsecond {
			t.Errorf("%s: p25 = %v, want ~50µs (low half)", tc.name, got)
		}
		// q=0.75 is the 50th of the high observations.
		if got := tc.dst.Quantile(0.75); got < 10049*time.Microsecond || got > 10750*time.Microsecond {
			t.Errorf("%s: p75 = %v, want ~10.05ms (high half)", tc.name, got)
		}
		// The crossover: q=0.5 is still the last low observation.
		if got := tc.dst.Quantile(0.5); got < 100*time.Microsecond || got > 107*time.Microsecond {
			t.Errorf("%s: p50 = %v, want ~100µs (last low observation)", tc.name, got)
		}
	}
}

// TestHistogramMerge pins that merging equals recording into one.
func TestHistogramMerge(t *testing.T) {
	var a, b, whole Histogram
	for i := 1; i <= 100; i++ {
		d := time.Duration(i*i) * time.Microsecond
		whole.Record(d)
		if i%2 == 0 {
			a.Record(d)
		} else {
			b.Record(d)
		}
	}
	a.Merge(&b)
	if a.Count() != whole.Count() || a.Max() != whole.Max() {
		t.Fatalf("merged count/max %d/%v, want %d/%v", a.Count(), a.Max(), whole.Count(), whole.Max())
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 1} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Errorf("p%g diverges after merge: %v vs %v", 100*q, a.Quantile(q), whole.Quantile(q))
		}
	}
}

// TestRunAgainstServer drives a short closed loop against a local
// server and checks the accounting: every worker contributes, errors
// are zero, and the negotiated Accept header arrives.
func TestRunAgainstServer(t *testing.T) {
	var sawBinary atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Accept") == batchContentType {
			sawBinary.Store(true)
		}
		_, _ = w.Write([]byte(`{"ok":true}`))
	}))
	defer srv.Close()

	res, err := Run(context.Background(), Options{
		URL: srv.URL, Conns: 4, Duration: 300 * time.Millisecond, Binary: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if res.Errors != 0 {
		t.Errorf("%d errors against a healthy server", res.Errors)
	}
	if res.Hist.Count() != res.Requests {
		t.Errorf("histogram count %d != requests %d", res.Hist.Count(), res.Requests)
	}
	if res.RPS() <= 0 || res.Hist.Quantile(0.5) <= 0 {
		t.Errorf("degenerate result: %+v", res)
	}
	if !sawBinary.Load() {
		t.Error("Binary option did not set the Accept header")
	}

	// Error accounting: a 500-only server yields Requests == Errors.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer bad.Close()
	res, err = Run(context.Background(), Options{URL: bad.URL, Conns: 2, Duration: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 || res.Errors != res.Requests {
		t.Errorf("bad server: %d errors of %d requests, want all", res.Errors, res.Requests)
	}

	if _, err := Run(context.Background(), Options{}); err == nil {
		t.Error("missing URL not rejected")
	}
}

// TestRunHonoursCancel pins that an early cancel stops the loop well
// before the configured duration.
func TestRunHonoursCancel(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("ok"))
	}))
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := Run(ctx, Options{URL: srv.URL, Conns: 2, Duration: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("cancel took %v to stop the loop", took)
	}
	if res.Requests == 0 {
		t.Error("no requests before cancel")
	}
}
