package loadgen

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Defaults for zero-valued Options fields.
const (
	DefaultPath     = "/predict/batch"
	DefaultConns    = 8
	DefaultDuration = 2 * time.Second
)

// batchContentType mirrors serve.BatchContentType without importing the
// server package — the generator is a client and should stay one.
const batchContentType = "application/x-ppep-batch"

// Options configures one load run.
type Options struct {
	// URL is the server base, e.g. "http://127.0.0.1:8080". Required.
	URL string
	// Path is the endpoint to hammer (DefaultPath if empty).
	Path string
	// Conns is the number of closed-loop workers, each with its own
	// keep-alive connection (DefaultConns if zero).
	Conns int
	// Duration bounds the run (DefaultDuration if zero).
	Duration time.Duration
	// Binary asks /predict/batch for the binary frame instead of JSON.
	Binary bool
}

// Result is the outcome of one load run.
type Result struct {
	// Requests counts completed request/response cycles, successful or
	// not; Errors counts the subset that failed (transport error or
	// non-200 status).
	Requests uint64
	Errors   uint64
	// Elapsed is the measured wall time the workers were running.
	Elapsed time.Duration
	// Hist holds every per-request latency, merged across workers.
	Hist Histogram
}

// RPS is the achieved request rate over the measured window.
func (r *Result) RPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Elapsed.Seconds()
}

// String renders the one-paragraph human summary the CLI prints.
func (r *Result) String() string {
	return fmt.Sprintf(
		"%d requests in %v (%.0f req/s, %d errors)\n"+
			"latency p50=%v p90=%v p99=%v p999=%v max=%v",
		r.Requests, r.Elapsed.Round(time.Millisecond), r.RPS(), r.Errors,
		r.Hist.Quantile(0.50), r.Hist.Quantile(0.90),
		r.Hist.Quantile(0.99), r.Hist.Quantile(0.999), r.Hist.Max())
}

// Run drives a closed loop against opts.URL+opts.Path until the
// duration elapses or ctx is cancelled, whichever is first. Each worker
// measures every request round trip (including reading the body) into
// its own histogram; Run merges them. Individual request failures are
// counted, not fatal — the server disappearing entirely shows up as
// Requests == Errors, which callers should treat as a failed run.
func Run(ctx context.Context, opts Options) (*Result, error) {
	if opts.URL == "" {
		return nil, errors.New("loadgen: Options.URL is required")
	}
	if opts.Path == "" {
		opts.Path = DefaultPath
	}
	if opts.Conns <= 0 {
		opts.Conns = DefaultConns
	}
	if opts.Duration <= 0 {
		opts.Duration = DefaultDuration
	}
	url := strings.TrimSuffix(opts.URL, "/") + opts.Path

	// One transport shared by all workers, sized so every worker keeps
	// its connection alive between requests — connection churn would
	// measure the TCP stack, not the server.
	transport := &http.Transport{
		MaxIdleConns:        opts.Conns,
		MaxIdleConnsPerHost: opts.Conns,
		IdleConnTimeout:     opts.Duration + time.Minute,
	}
	client := &http.Client{Transport: transport}
	defer transport.CloseIdleConnections()

	runCtx, cancel := context.WithTimeout(ctx, opts.Duration)
	defer cancel()

	type workerResult struct {
		hist     Histogram
		requests uint64
		errors   uint64
	}
	results := make([]workerResult, opts.Conns)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < opts.Conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res := &results[w]
			for runCtx.Err() == nil {
				req, err := http.NewRequestWithContext(runCtx, http.MethodGet, url, nil)
				if err != nil {
					res.requests++
					res.errors++
					return // a malformed URL will not improve with retries
				}
				if opts.Binary {
					req.Header.Set("Accept", batchContentType)
				}
				t0 := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					if runCtx.Err() != nil {
						return // cancelled mid-request: not the server's fault
					}
					res.requests++
					res.errors++
					continue
				}
				_, cerr := io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close() // drain error already captured in cerr
				res.hist.Record(time.Since(t0))
				res.requests++
				if resp.StatusCode != http.StatusOK || cerr != nil {
					res.errors++
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	out := &Result{Elapsed: elapsed}
	for i := range results {
		out.Requests += results[i].requests
		out.Errors += results[i].errors
		out.Hist.Merge(&results[i].hist)
	}
	return out, nil
}
