// Package uarch is the interval-mechanistic core model of the simulated
// CPU. Each simulation tick it converts a workload phase's per-instruction
// rates into instructions retired, cycles consumed, and true hardware
// event counts, using the same CPI decomposition the paper's performance
// model assumes (Section III):
//
//	CPI(f) = CCPI + MCPI(f)
//	CCPI   = BaseCPI + Mispred/inst · MisBranchPen       (f-invariant)
//	MCPI   = leading-load ns/inst · f                    (∝ f)
//
// Dispatch stalls (E9) are generated as memory stall cycles plus a fixed
// share of core-local stalls, which makes the paper's Observation 2 hold
// structurally; small per-benchmark frequency sensitivities and
// instruction-position-locked jitter provide the measured imperfections.
//
// All stochastic variation is keyed to *instruction position*, not wall
// time, so two runs of the same program at different frequencies see the
// same behaviour at the same point of execution — the property both of
// the paper's observations rely on, and the property real programs have.
package uarch

import (
	"math"

	"ppep/internal/arch"
	"ppep/internal/mem"
	"ppep/internal/workload"
)

// StallShare is the fraction of core-local (non-memory) stall cycles that
// the Dispatch Stalls event observes. The remainder are decode/retire
// inefficiencies invisible to E9.
const StallShare = 0.7

// Core is the execution state of one simulated core running one thread.
type Core struct {
	Bench *workload.Benchmark
	// Done is the count of retired instructions so far.
	Done float64
	// segLen is the instruction length of one jitter segment.
	segLen float64
	// fTop is the platform's top frequency, the reference for the
	// frequency-sensitivity terms.
	fTop float64

	finished bool

	// Tick-loop memos. The position-locked jitter draws are constant
	// within one jitter segment and the EPI scale within one phase, so
	// both are cached between ticks; every refresh recomputes exactly
	// the value the uncached path produced (the simulator's fixed-seed
	// golden tests pin this bit-for-bit).
	jitSeg   int64
	jitOK    bool
	jitG0    [numJitterDims]float64 // hashGauss at the segment start
	jitG1    [numJitterDims]float64 // hashGauss at the segment end
	epiPhase *workload.Phase
	epiVal   float64
}

// NewCore binds a thread of the benchmark to a fresh core context.
// fTopGHz is the platform's highest core frequency.
func NewCore(b *workload.Benchmark, fTopGHz float64) *Core {
	c := &Core{}
	c.Reset(b, fTopGHz)
	return c
}

// Reset rebinds the core context to a fresh thread of the benchmark,
// reusing the existing allocation. The simulator's thread-restart path
// runs inside the tick loop, which must stay allocation-free, so
// restarts reset the core slot in place instead of replacing it.
//
//ppep:hotpath
//ppep:inline
func (c *Core) Reset(b *workload.Benchmark, fTopGHz float64) {
	*c = Core{
		Bench:  b,
		segLen: b.Instructions / 200,
		fTop:   fTopGHz,
	}
}

// Finished reports whether the thread has retired all its instructions.
//
//ppep:inline
func (c *Core) Finished() bool { return c.finished }

// Progress returns the fraction of instructions retired (0..1).
func (c *Core) Progress() float64 {
	if c.Bench.Instructions <= 0 {
		return 1
	}
	p := c.Done / c.Bench.Instructions
	if p > 1 {
		p = 1
	}
	return p
}

// TickResult is the outcome of one simulation tick on one core.
type TickResult struct {
	Instructions float64
	Cycles       float64
	CPI          float64
	// Events holds true counts for all twelve Table I events this tick.
	Events arch.EventVec
	// Unobservable activity counts.
	Prefetches float64
	TLBWalks   float64
	// EPIScale is the phase's hidden energy-per-event modulation, a
	// property of the code the core is executing (see powertruth).
	EPIScale float64
	// Memory-system traffic generated this tick.
	L3Accesses   float64 // L2 misses: all reach the NB/L3
	DRAMAccesses float64
	Finished     bool
}

// Step advances the core by dtS seconds at frequency fGHz with the given
// memory latency snapshot, returning the true activity of the tick.
//
//ppep:hotpath
func (c *Core) Step(fGHz, dtS float64, lat mem.Latencies) TickResult {
	if c.finished || dtS <= 0 {
		return TickResult{Finished: c.finished}
	}
	phase := c.Bench.PhaseAt(c.Done)
	r := c.jitteredRates(phase, fGHz)
	baseCPI := phase.BaseCPI * c.jitterMul(dimBaseCPI, phase.Noise)
	// Shared-L2 contention: an active sibling core stretches every L2
	// request (the FX module's paired-core design).
	baseCPI += r.L2Req * lat.L2ContentionCycles

	mispredCPI := r.Mispred * arch.MisBranchPen
	llNS := mem.LeadingLoadNSPerInst(r.L2Miss, phase.L3MissRatio, phase.MLP, lat)
	mcpi := llNS * fGHz // ns/inst × GHz = cycles/inst
	cpi := baseCPI + mispredCPI + mcpi

	inst := fGHz * 1e9 * dtS / cpi
	if remaining := c.Bench.Instructions - c.Done; inst >= remaining {
		inst = remaining
		c.finished = true
	}
	c.Done += inst

	coreStall := StallShare * (baseCPI - 1/arch.IssueWidth)
	var ev arch.EventVec
	ev.Set(arch.RetiredUOP, r.Uops*inst)
	ev.Set(arch.FPUPipeAssignment, r.FPU*inst)
	ev.Set(arch.InstructionCacheFetches, r.ICFetch*inst)
	ev.Set(arch.DataCacheAccesses, r.DCAccess*inst)
	ev.Set(arch.RequestToL2Cache, r.L2Req*inst)
	ev.Set(arch.RetiredBranches, r.Branch*inst)
	ev.Set(arch.RetiredMispredBranches, r.Mispred*inst)
	ev.Set(arch.L2CacheMisses, r.L2Miss*inst)
	ev.Set(arch.DispatchStalls, (mcpi+coreStall)*inst)
	ev.Set(arch.CPUClocksNotHalted, cpi*inst)
	ev.Set(arch.RetiredInstructions, inst)
	ev.Set(arch.MABWaitCycles, mcpi*inst)

	return TickResult{
		Instructions: inst,
		Cycles:       cpi * inst,
		CPI:          cpi,
		Events:       ev,
		Prefetches:   r.Prefetch * inst,
		TLBWalks:     r.TLBWalk * inst,
		EPIScale:     c.epiFor(phase),
		L3Accesses:   r.L2Miss * inst,
		DRAMAccesses: r.L2Miss * phase.L3MissRatio * inst,
		Finished:     c.finished,
	}
}

// Lookahead describes how far a thread can run before its per-tick
// behaviour could change — the contract the batched tick engine
// (internal/fxsim) builds quiescent runs on.
type Lookahead struct {
	// Phase is the phase in effect at the thread's current position.
	// Per-tick rates are a pure function of this pointer (plus the
	// operating point) whenever Steady holds, so the engine's run
	// invariant is pointer identity: PhaseAt(Done) == Phase.
	Phase *workload.Phase
	// Steady reports that the phase draws no position-locked jitter
	// (Noise ≤ 0): every tick inside the phase retires the same
	// instruction count and event mix, bit-for-bit.
	Steady bool
	// DoneBound is a retired-instruction count strictly before the
	// phase's end: for every position d with Done ≤ d < DoneBound,
	// PhaseAt(d) returns Phase. It deliberately under-approximates the
	// true boundary (by a 1e-9 relative guard band that dwarfs the
	// rounding error of PhaseAt's arithmetic), so a caller crossing it
	// must re-confirm with PhaseAt rather than assume the phase ended.
	// +Inf when the phase provably extends to the end of the run;
	// degenerate (== Done) within the guard band of a boundary.
	DoneBound float64
}

// StepUntilEvent reports how far the thread can run before its next
// phase transition, without advancing it. A finished thread returns the
// zero Lookahead.
//
//ppep:hotpath
func (c *Core) StepUntilEvent() Lookahead {
	if c.finished {
		return Lookahead{}
	}
	phase := c.Bench.PhaseAt(c.Done)
	la := Lookahead{
		Phase:  phase,
		Steady: phase.Noise <= 0 || c.segLen <= 0,
	}
	if len(c.Bench.Phases) == 1 {
		// PhaseAt returns &Phases[0] at every position, loop wraps
		// included.
		la.DoneBound = math.Inf(1)
		return la
	}
	loops := c.Bench.Loops
	if loops < 1 {
		loops = 1
	}
	perLoop := c.Bench.Instructions / float64(loops)
	if perLoop <= 0 {
		la.DoneBound = c.Done
		return la
	}
	// The phase ends where the within-loop fraction reaches its
	// cumulative weight (summed in PhaseAt's order), or at the loop
	// wrap for the final phase. Computed in real arithmetic and shrunk
	// by a relative guard band so DoneBound can never overshoot the
	// boundary PhaseAt actually honours.
	li := math.Floor(c.Done / perLoop)
	acc := 0.0
	for i := range c.Bench.Phases {
		acc += c.Bench.Phases[i].Weight
		if phase == &c.Bench.Phases[i] {
			break
		}
	}
	bound := (li*perLoop + acc*perLoop) * (1 - 1e-9)
	if bound < c.Done {
		bound = c.Done
	}
	la.DoneBound = bound
	return la
}

// Jitter dimension indices: 0–7 are the Rates event fields, 8 modulates
// BaseCPI.
const (
	dimUops = iota
	dimFPU
	dimICFetch
	dimDCAccess
	dimL2Req
	dimBranch
	dimMispred
	dimL2Miss
	dimBaseCPI

	numJitterDims = dimBaseCPI + 1
)

// jitteredRates applies position-locked jitter and the frequency
// sensitivities to the phase's per-instruction rates.
func (c *Core) jitteredRates(p *workload.Phase, fGHz float64) workload.Rates {
	fs := c.Bench.FreqSens
	df := 0.0
	if c.fTop > 0 {
		df = fGHz/c.fTop - 1
	}
	r := p.PerInst
	out := workload.Rates{
		Uops:     r.Uops * c.jitterMul(dimUops, p.Noise) * (1 + fs[dimUops]*df),
		FPU:      r.FPU * c.jitterMul(dimFPU, p.Noise) * (1 + fs[dimFPU]*df),
		ICFetch:  r.ICFetch * c.jitterMul(dimICFetch, p.Noise) * (1 + fs[dimICFetch]*df),
		DCAccess: r.DCAccess * c.jitterMul(dimDCAccess, p.Noise) * (1 + fs[dimDCAccess]*df),
		L2Req:    r.L2Req * c.jitterMul(dimL2Req, p.Noise) * (1 + fs[dimL2Req]*df),
		Branch:   r.Branch * c.jitterMul(dimBranch, p.Noise) * (1 + fs[dimBranch]*df),
		Mispred:  r.Mispred * c.jitterMul(dimMispred, p.Noise) * (1 + fs[dimMispred]*df),
		L2Miss:   r.L2Miss * c.jitterMul(dimL2Miss, p.Noise) * (1 + fs[dimL2Miss]*df),
		Prefetch: r.Prefetch,
		TLBWalk:  r.TLBWalk,
	}
	// Physical floors/relations the jitter must not violate.
	if out.Uops < 1 {
		out.Uops = 1
	}
	if out.Mispred > out.Branch {
		out.Mispred = out.Branch
	}
	if out.L2Miss > out.L2Req {
		out.L2Miss = out.L2Req
	}
	return out
}

// jitterMul returns the smooth position-locked jitter multiplier for one
// dimension: exp(σ·g(position)), with g a piecewise-linear interpolation
// of per-segment Gaussian draws keyed by (benchmark, dimension, segment).
// The draws bounding the current segment are cached on the core — a
// segment spans many ticks, so the hashing cost amortizes to near zero.
func (c *Core) jitterMul(dim int, sigma float64) float64 {
	if sigma <= 0 || c.segLen <= 0 {
		return 1
	}
	pos := c.Done / c.segLen
	seg := int64(pos)
	frac := pos - float64(seg)
	if !c.jitOK || seg != c.jitSeg {
		c.refreshJitter(seg)
	}
	g := c.jitG0[dim]*(1-frac) + c.jitG1[dim]*frac
	return math.Exp(sigma * g)
}

// refreshJitter recomputes the Gaussian draws bounding the given segment
// for every jitter dimension. Advancing by exactly one segment — the
// common case — reuses the trailing draws as the new leading ones.
func (c *Core) refreshJitter(seg int64) {
	if c.jitOK && seg == c.jitSeg+1 {
		c.jitG0 = c.jitG1
		for d := 0; d < numJitterDims; d++ {
			c.jitG1[d] = hashGauss(c.Bench.Name, d, seg+1)
		}
	} else {
		for d := 0; d < numJitterDims; d++ {
			c.jitG0[d] = hashGauss(c.Bench.Name, d, seg)
			c.jitG1[d] = hashGauss(c.Bench.Name, d, seg+1)
		}
	}
	c.jitSeg = seg
	c.jitOK = true
}

// epiFor memoises epiScale per phase: the phase pointer is stable for the
// benchmark's lifetime and epiScale depends only on the two names, so the
// string concatenation and hashing run once per phase transition instead
// of every tick.
//
//ppep:inline
func (c *Core) epiFor(p *workload.Phase) float64 {
	if c.epiPhase != p {
		c.epiVal = epiScale(c.Bench.Name, p.Name) //ppep:allow hotpath memoized per phase transition, amortized over the phase's ticks
		c.epiPhase = p
	}
	return c.epiVal
}

// epiScale returns the hidden per-phase energy modulation: a stable
// property of (benchmark, phase) in roughly [0.88, 1.12]. It exists only
// in the ground truth — no counter observes it — and is the irreducible
// model error a nine-event regression cannot remove.
func epiScale(bench, phase string) float64 {
	g := hashGauss(bench+"/"+phase+"/epi", 0, 0)
	s := 1 + 0.05*g
	if s < 0.85 {
		s = 0.85
	}
	if s > 1.15 {
		s = 1.15
	}
	return s
}

// hashGauss produces a deterministic ≈N(0,1) draw from (name, dim, seg)
// using three hashed uniforms and the central limit theorem.
func hashGauss(name string, dim int, seg int64) float64 {
	// Inline FNV-1a over (name, dim, seg-LE): byte-identical to feeding
	// fnv.New64a the same sequence, without the hash.Hash64 allocation.
	const (
		fnvOffset64 = 14695981039346656037
		fnvPrime64  = 1099511628211
	)
	x := uint64(fnvOffset64)
	for i := 0; i < len(name); i++ {
		x ^= uint64(name[i])
		x *= fnvPrime64
	}
	x ^= uint64(byte(dim))
	x *= fnvPrime64
	for i := 0; i < 8; i++ {
		x ^= uint64(byte(seg >> (8 * i)))
		x *= fnvPrime64
	}
	var sum float64
	for salt := 0; salt < 3; salt++ {
		// splitmix64 finalizer: decorrelates the draws fully even though
		// the FNV inputs differ by a single counter.
		z := x + 0x9e3779b97f4a7c15*uint64(salt+1)
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		sum += float64(z>>11) / float64(1<<53) // [0,1)
	}
	// Sum of 3 uniforms: mean 1.5, variance 3/12 = 0.25 → σ = 0.5.
	return (sum - 1.5) / 0.5
}
