package uarch

import (
	"math"
	"testing"

	"ppep/internal/arch"
	"ppep/internal/mem"
	"ppep/internal/workload"
)

var testLat = mem.Latencies{L3NS: 20, DRAMNS: 80}

func steadyBench() *workload.Benchmark {
	return &workload.Benchmark{
		Name:         "steady-test",
		Suite:        "micro",
		Instructions: 50e9,
		Phases: []workload.Phase{{
			Name:    "p",
			Weight:  1,
			BaseCPI: 0.6,
			PerInst: workload.Rates{
				Uops: 1.3, FPU: 0.4, ICFetch: 0.25, DCAccess: 0.45,
				L2Req: 0.02, Branch: 0.15, Mispred: 0.004, L2Miss: 0.008,
				Prefetch: 0.01, TLBWalk: 0.002,
			},
			L3MissRatio: 0.5,
			MLP:         2,
			Noise:       0, // exact arithmetic checks below
		}},
	}
}

func TestStepArithmetic(t *testing.T) {
	c := NewCore(steadyBench(), 3.5)
	r := c.Step(3.5, 0.001, testLat)

	// Expected CPI: base 0.6 + mispred 0.004·20 + MCPI.
	llNS := (0.008*0.5*20 + 0.008*0.5*80) / 2
	wantMCPI := llNS * 3.5
	wantCPI := 0.6 + 0.08 + wantMCPI
	if math.Abs(r.CPI-wantCPI) > 1e-12 {
		t.Errorf("CPI = %v, want %v", r.CPI, wantCPI)
	}
	wantInst := 3.5e9 * 0.001 / wantCPI
	if math.Abs(r.Instructions-wantInst) > 1 {
		t.Errorf("instructions = %v, want %v", r.Instructions, wantInst)
	}
	if math.Abs(r.Cycles-r.CPI*r.Instructions) > 1e-3 {
		t.Error("cycles ≠ CPI × instructions")
	}
	// Event identities.
	if math.Abs(r.Events.Get(arch.RetiredInstructions)-r.Instructions) > 1e-9 {
		t.Error("E11 must equal instructions")
	}
	if math.Abs(r.Events.Get(arch.CPUClocksNotHalted)-r.Cycles) > 1e-6 {
		t.Error("E10 must equal cycles")
	}
	wantMAB := wantMCPI * r.Instructions
	if math.Abs(r.Events.Get(arch.MABWaitCycles)-wantMAB) > 1e-6 {
		t.Errorf("E12 = %v, want %v", r.Events.Get(arch.MABWaitCycles), wantMAB)
	}
	// DRAM traffic = L2 misses × L3 miss ratio.
	if math.Abs(r.DRAMAccesses-r.Events.Get(arch.L2CacheMisses)*0.5) > 1e-6 {
		t.Error("DRAM accesses inconsistent with L2 misses")
	}
	if math.Abs(r.L3Accesses-r.Events.Get(arch.L2CacheMisses)) > 1e-6 {
		t.Error("L3 accesses must equal L2 misses")
	}
}

func TestObservation2Structural(t *testing.T) {
	// CPI − DispatchStalls/inst must be identical across frequencies for
	// a noise-free benchmark with zero frequency sensitivity.
	b := steadyBench()
	gap := func(f float64) float64 {
		c := NewCore(b, 3.5)
		r := c.Step(f, 0.001, testLat)
		return r.CPI - r.Events.Get(arch.DispatchStalls)/r.Instructions
	}
	g35 := gap(3.5)
	g14 := gap(1.4)
	if math.Abs(g35-g14) > 1e-12 {
		t.Errorf("Observation 2 violated structurally: %v vs %v", g35, g14)
	}
	// And the gap has the Eq. 6 form: 1/W·(1−s·…) — just check it's
	// positive and frequency-free.
	if g35 <= 0 {
		t.Errorf("gap %v must be positive", g35)
	}
}

func TestObservation1Structural(t *testing.T) {
	// Per-instruction core-private event counts are VF-independent when
	// FreqSens is zero.
	b := steadyBench()
	perInst := func(f float64) [8]float64 {
		c := NewCore(b, 3.5)
		r := c.Step(f, 0.001, testLat)
		var out [8]float64
		for i := 0; i < 8; i++ {
			out[i] = r.Events[i] / r.Instructions
		}
		return out
	}
	a := perInst(3.5)
	z := perInst(1.7)
	for i := range a {
		if math.Abs(a[i]-z[i]) > 1e-12 {
			t.Errorf("event %d per-inst differs across f: %v vs %v", i+1, a[i], z[i])
		}
	}
}

func TestFreqSensViolatesObservation1Slightly(t *testing.T) {
	b := steadyBench()
	b.FreqSens[3] = 0.08 // DCAccess sensitivity
	perInst := func(f float64) float64 {
		c := NewCore(b, 3.5)
		r := c.Step(f, 0.001, testLat)
		return r.Events.Get(arch.DataCacheAccesses) / r.Instructions
	}
	hi := perInst(3.5)
	lo := perInst(1.7)
	diff := math.Abs(lo-hi) / hi
	// (1.7/3.5−1)·0.08 ≈ 4.1%.
	if diff < 0.02 || diff > 0.06 {
		t.Errorf("Observation 1 violation %v, want ≈4%%", diff)
	}
}

func TestMCPIScalesWithFrequency(t *testing.T) {
	b := steadyBench()
	mcpi := func(f float64) float64 {
		c := NewCore(b, 3.5)
		r := c.Step(f, 0.001, testLat)
		return r.Events.Get(arch.MABWaitCycles) / r.Instructions
	}
	m35 := mcpi(3.5)
	m17 := mcpi(1.7)
	if math.Abs(m35/m17-3.5/1.7) > 1e-9 {
		t.Errorf("MCPI ratio %v, want %v", m35/m17, 3.5/1.7)
	}
}

func TestRunsToCompletion(t *testing.T) {
	b := steadyBench()
	b.Instructions = 1e7 // tiny run
	c := NewCore(b, 3.5)
	var total float64
	ticks := 0
	for !c.Finished() {
		r := c.Step(3.5, 0.001, testLat)
		total += r.Instructions
		ticks++
		if ticks > 100000 {
			t.Fatal("did not finish")
		}
	}
	if math.Abs(total-1e7) > 1 {
		t.Errorf("retired %v instructions, want 1e7", total)
	}
	if c.Progress() != 1 {
		t.Errorf("progress = %v", c.Progress())
	}
	// Further steps are no-ops.
	r := c.Step(3.5, 0.001, testLat)
	if r.Instructions != 0 || !r.Finished {
		t.Error("finished core must not retire more instructions")
	}
}

func TestJitterIsPositionLocked(t *testing.T) {
	// Two cores running the same noisy benchmark at different
	// frequencies must see identical jitter at the same instruction
	// position (compare per-instruction rates at matched positions).
	b := steadyBench()
	b.Phases[0].Noise = 0.15

	ratesAt := func(f float64, targetDone float64) float64 {
		c := NewCore(b, 3.5)
		for c.Done < targetDone && !c.Finished() {
			c.Step(f, 0.001, testLat)
		}
		r := c.Step(f, 0.0001, testLat)
		return r.Events.Get(arch.DataCacheAccesses) / r.Instructions
	}
	target := 5e9
	hi := ratesAt(3.5, target)
	lo := ratesAt(1.4, target)
	// Positions won't match exactly (tick granularity) but the smooth
	// segment interpolation keeps the difference well under the jitter σ.
	if math.Abs(hi-lo)/hi > 0.02 {
		t.Errorf("jitter not position-locked: %v vs %v", hi, lo)
	}
	// And jitter actually varies along the run.
	early := ratesAt(3.5, 1e9)
	late := ratesAt(3.5, 40e9)
	if math.Abs(early-late)/early < 1e-4 {
		t.Error("jitter appears inert along the run")
	}
}

func TestJitterRespectsPhysicalBounds(t *testing.T) {
	b := steadyBench()
	b.Phases[0].Noise = 0.5 // extreme
	b.Phases[0].PerInst.Mispred = b.Phases[0].PerInst.Branch * 0.9
	b.Phases[0].PerInst.L2Miss = b.Phases[0].PerInst.L2Req * 0.9
	c := NewCore(b, 3.5)
	for i := 0; i < 2000 && !c.Finished(); i++ {
		r := c.Step(3.5, 0.001, testLat)
		if r.Events.Get(arch.RetiredMispredBranches) > r.Events.Get(arch.RetiredBranches)+1e-9 {
			t.Fatal("mispredicts exceeded branches")
		}
		if r.Events.Get(arch.L2CacheMisses) > r.Events.Get(arch.RequestToL2Cache)+1e-9 {
			t.Fatal("L2 misses exceeded requests")
		}
		if r.Events.Get(arch.RetiredUOP) < r.Instructions-1e-9 {
			t.Fatal("uops fell below instructions")
		}
	}
}

func TestHigherDRAMLatencySlowsMemBound(t *testing.T) {
	b := steadyBench()
	fast := NewCore(b, 3.5)
	slow := NewCore(b, 3.5)
	rf := fast.Step(3.5, 0.001, mem.Latencies{L3NS: 20, DRAMNS: 80})
	rs := slow.Step(3.5, 0.001, mem.Latencies{L3NS: 20, DRAMNS: 200})
	if rs.Instructions >= rf.Instructions {
		t.Error("higher memory latency must reduce throughput")
	}
}

func TestHashGaussStatistics(t *testing.T) {
	var sum, sq float64
	const n = 5000
	for i := 0; i < n; i++ {
		g := hashGauss("bench", 3, int64(i))
		sum += g
		sq += g * g
	}
	mean := sum / n
	sd := math.Sqrt(sq/n - mean*mean)
	if math.Abs(mean) > 0.05 {
		t.Errorf("mean %v", mean)
	}
	if math.Abs(sd-1) > 0.1 {
		t.Errorf("sd %v", sd)
	}
	// Different dims decorrelate.
	var dot float64
	for i := 0; i < n; i++ {
		dot += hashGauss("bench", 0, int64(i)) * hashGauss("bench", 1, int64(i))
	}
	if math.Abs(dot/n) > 0.05 {
		t.Errorf("cross-dim correlation %v", dot/n)
	}
}

func TestZeroDtIsNoop(t *testing.T) {
	c := NewCore(steadyBench(), 3.5)
	r := c.Step(3.5, 0, testLat)
	if r.Instructions != 0 {
		t.Error("zero dt must retire nothing")
	}
}

func TestProgressMonotone(t *testing.T) {
	c := NewCore(steadyBench(), 3.5)
	prev := 0.0
	for i := 0; i < 1000; i++ {
		c.Step(3.5, 0.001, testLat)
		if p := c.Progress(); p < prev {
			t.Fatalf("progress went backwards: %v < %v", p, prev)
		} else {
			prev = p
		}
	}
}
