package mem

import (
	"math"
	"testing"
	"testing/quick"
)

func TestL3LatencyScalesWithNBFreq(t *testing.T) {
	nb := DefaultFX8320NB()
	hi := nb.L3HitLatencyNS()
	nb.FreqGHz /= 2
	lo := nb.L3HitLatencyNS()
	if math.Abs(lo-2*hi) > 1e-9 {
		t.Errorf("halving NB clock should double L3 latency: %v vs %v", lo, hi)
	}
}

func TestDRAMLatencyComponents(t *testing.T) {
	nb := DefaultFX8320NB()
	base := nb.DRAMLatencyNS(0)
	want := nb.CtrlCycles/nb.FreqGHz + nb.DRAMFixedNS
	if math.Abs(base-want) > 1e-9 {
		t.Errorf("zero-util latency %v, want %v", base, want)
	}
	// Halving NB frequency only stretches the controller part.
	nb.FreqGHz /= 2
	lo := nb.DRAMLatencyNS(0)
	wantLo := 2*nb.CtrlCycles/2.2 + nb.DRAMFixedNS
	if math.Abs(lo-wantLo) > 1e-9 {
		t.Errorf("half-clock latency %v, want %v", lo, wantLo)
	}
}

func TestQueueingMonotone(t *testing.T) {
	nb := DefaultFX8320NB()
	prev := nb.DRAMLatencyNS(0)
	for u := 0.05; u <= 1.2; u += 0.05 {
		cur := nb.DRAMLatencyNS(u)
		if cur < prev-1e-12 {
			t.Errorf("latency decreased at util %v: %v < %v", u, cur, prev)
		}
		prev = cur
	}
}

func TestQueueingBounded(t *testing.T) {
	nb := DefaultFX8320NB()
	over := nb.DRAMLatencyNS(5) // overload clamps at MaxUtil
	atMax := nb.DRAMLatencyNS(nb.MaxUtil)
	if over != atMax {
		t.Errorf("overload latency %v, want clamp at %v", over, atMax)
	}
	if math.IsInf(over, 0) || math.IsNaN(over) {
		t.Error("latency must stay finite")
	}
}

func TestUtilization(t *testing.T) {
	nb := DefaultFX8320NB()
	// 18 GB/s ÷ 64 B = 281.25 M req/s saturates.
	sat := nb.BandwidthGBs * 1e9 / nb.LineBytes
	if got := nb.Utilization(sat); math.Abs(got-1) > 1e-9 {
		t.Errorf("util at saturation = %v", got)
	}
	if got := nb.Utilization(sat / 2); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("util at half = %v", got)
	}
	if nb.Utilization(0) != 0 || nb.Utilization(-5) != 0 {
		t.Error("non-positive rates must give zero util")
	}
}

func TestSnapshot(t *testing.T) {
	nb := DefaultFX8320NB()
	s := nb.Snapshot(0.3)
	if s.L3NS != nb.L3HitLatencyNS() {
		t.Error("snapshot L3 mismatch")
	}
	if s.DRAMNS != nb.DRAMLatencyNS(0.3) {
		t.Error("snapshot DRAM mismatch")
	}
}

func TestLeadingLoadPerInst(t *testing.T) {
	lat := Latencies{L3NS: 20, DRAMNS: 100}
	// 0.02 misses/inst, 50% to DRAM, MLP 2:
	// (0.01·20 + 0.01·100)/2 = 0.6 ns/inst.
	got := LeadingLoadNSPerInst(0.02, 0.5, 2, lat)
	if math.Abs(got-0.6) > 1e-12 {
		t.Errorf("LL time %v, want 0.6", got)
	}
	// MLP below 1 clamps to 1.
	if LeadingLoadNSPerInst(0.02, 0.5, 0.1, lat) != LeadingLoadNSPerInst(0.02, 0.5, 1, lat) {
		t.Error("MLP clamp missing")
	}
	// No misses → no memory time.
	if LeadingLoadNSPerInst(0, 0.5, 2, lat) != 0 {
		t.Error("zero misses must give zero")
	}
}

func TestLeadingLoadProperties(t *testing.T) {
	lat := Latencies{L3NS: 20, DRAMNS: 100}
	f := func(missRaw, ratioRaw, mlpRaw uint16) bool {
		miss := float64(missRaw) / float64(1<<16) * 0.1
		ratio := float64(ratioRaw) / float64(1<<16)
		mlp := 1 + float64(mlpRaw)/float64(1<<16)*3
		ll := LeadingLoadNSPerInst(miss, ratio, mlp, lat)
		if ll < 0 {
			return false
		}
		// More DRAM traffic (higher ratio) can only increase time.
		ll2 := LeadingLoadNSPerInst(miss, ratio*0.5, mlp, lat)
		return ll2 <= ll+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNBDVFSLatencyShape(t *testing.T) {
	// Sanity for the Section V-C2 what-if: halving the NB clock should
	// increase leading-load time substantially but less than 2×, because
	// the DRAM core latency is fixed.
	nb := DefaultFX8320NB()
	hi := nb.Snapshot(0.2)
	nb.FreqGHz, nb.VoltageV = 1.1, 0.940
	lo := nb.Snapshot(0.2)
	llHi := LeadingLoadNSPerInst(0.02, 0.6, 1.5, hi)
	llLo := LeadingLoadNSPerInst(0.02, 0.6, 1.5, lo)
	ratio := llLo / llHi
	if ratio <= 1.1 || ratio >= 2.0 {
		t.Errorf("LL inflation at NB-low = %v, want within (1.1, 2.0)", ratio)
	}
}
