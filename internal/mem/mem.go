// Package mem models the north bridge (NB) memory system of the simulated
// processor: the shared L3 cache, the DRAM controller, and the
// bandwidth-dependent queueing that creates memory contention between
// cores. Leading-load latencies produced here are what the MAB Wait Cycles
// event (E12) observes, so the LL-MAB performance model's "memory time"
// (Section III) comes from this package.
package mem

// NB describes the shared north bridge: clocks and latency parameters.
// The L3 and the controller front-end run at the NB clock, so their
// contribution to memory latency scales with NB frequency; the DRAM core
// latency is fixed in wall-clock terms.
type NB struct {
	// FreqGHz is the NB clock (2.2 GHz stock on the FX-8320).
	FreqGHz float64
	// VoltageV is the NB voltage rail (1.175 V stock).
	VoltageV float64

	// L3Cycles is the L3 hit latency in NB cycles.
	L3Cycles float64
	// CtrlCycles is the memory-controller overhead in NB cycles paid by
	// every DRAM access.
	CtrlCycles float64
	// DRAMFixedNS is the DRAM device latency in nanoseconds (row
	// activation + CAS + transfer), independent of any chip clock.
	DRAMFixedNS float64

	// BandwidthGBs is the peak DRAM bandwidth (dual-channel DDR3-1600 ≈
	// 25.6 GB/s; the paper's two DIMMs deliver less in practice).
	BandwidthGBs float64
	// LineBytes is the transfer size per DRAM access.
	LineBytes float64
	// QueueKnee controls how sharply latency inflates as utilization
	// approaches 1 (M/M/1-like: extra = base·k·U/(1−U)).
	QueueKnee float64
	// MaxUtil caps the utilization used in the queueing term so the
	// model stays finite under overload.
	MaxUtil float64
}

// DefaultFX8320NB returns the stock NB configuration.
func DefaultFX8320NB() *NB {
	return &NB{
		FreqGHz:      2.2,
		VoltageV:     1.175,
		L3Cycles:     45,
		CtrlCycles:   40,
		DRAMFixedNS:  52,
		BandwidthGBs: 10.0, // achievable with 2×DDR3 under random-access patterns
		LineBytes:    64,
		QueueKnee:    1.10,
		MaxUtil:      0.94,
	}
}

// L3HitLatencyNS returns the wall-clock latency of an L3 hit.
func (nb *NB) L3HitLatencyNS() float64 {
	return nb.L3Cycles / nb.FreqGHz
}

// DRAMLatencyNS returns the wall-clock latency of a DRAM access at the
// given bandwidth utilization (0..1): controller cycles at the NB clock,
// the fixed DRAM core latency, and queueing delay.
func (nb *NB) DRAMLatencyNS(util float64) float64 {
	base := nb.CtrlCycles/nb.FreqGHz + nb.DRAMFixedNS
	if util < 0 {
		util = 0
	}
	if util > nb.MaxUtil {
		util = nb.MaxUtil
	}
	return base * (1 + nb.QueueKnee*util/(1-util))
}

// Utilization converts an aggregate DRAM request rate (requests/second,
// all cores) into bandwidth utilization.
//
//ppep:hotpath
func (nb *NB) Utilization(dramReqPerSec float64) float64 {
	if dramReqPerSec <= 0 {
		return 0
	}
	bytes := dramReqPerSec * nb.LineBytes
	return bytes / (nb.BandwidthGBs * 1e9)
}

// Latencies is the snapshot of memory latencies a core sees during one
// simulation tick.
type Latencies struct {
	L3NS   float64
	DRAMNS float64
	// L2ContentionCycles is the extra core cycles each L2 request costs
	// when the sibling core of the same compute unit is busy (the FX
	// module design shares the L2 between paired cores). Zero when the
	// sibling is idle.
	L2ContentionCycles float64
}

// L2SiblingPenaltyCycles is the per-L2-request cost of sharing the CU's
// L2 with an active sibling core.
const L2SiblingPenaltyCycles = 7.0

// LatencyParams captures the NB-clock-derived latency terms that are
// invariant while the NB operating point holds, so the simulator's tick
// loop can derive per-tick Latencies without re-dividing by the NB clock
// tens of millions of times per campaign. Recompute after any change to
// the NB's frequency or latency fields.
type LatencyParams struct {
	L3NS       float64 // L3 hit latency at the current NB clock
	DRAMBaseNS float64 // controller + DRAM core latency, unqueued
	QueueKnee  float64
	MaxUtil    float64
}

// LatencyParams returns the hoisted snapshot terms for the current point.
func (nb *NB) LatencyParams() LatencyParams {
	return LatencyParams{
		L3NS:       nb.L3Cycles / nb.FreqGHz,
		DRAMBaseNS: nb.CtrlCycles/nb.FreqGHz + nb.DRAMFixedNS,
		QueueKnee:  nb.QueueKnee,
		MaxUtil:    nb.MaxUtil,
	}
}

// Snapshot computes the per-tick latency pair from the hoisted params; it
// applies exactly the clamping and queueing formula of NB.DRAMLatencyNS.
//
//ppep:hotpath
func (p LatencyParams) Snapshot(util float64) Latencies {
	if util < 0 {
		util = 0
	}
	if util > p.MaxUtil {
		util = p.MaxUtil
	}
	return Latencies{
		L3NS:   p.L3NS,
		DRAMNS: p.DRAMBaseNS * (1 + p.QueueKnee*util/(1-util)),
	}
}

// Snapshot computes the latency pair for the given utilization.
func (nb *NB) Snapshot(util float64) Latencies {
	return nb.LatencyParams().Snapshot(util)
}

// LeadingLoadNSPerInst returns the per-instruction leading-load (exposed
// memory) time for a phase with the given per-instruction L2 miss rate,
// L3 miss ratio, and MLP. This is the quantity whose core-cycle equivalent
// the MAB Wait Cycles counter measures.
//
//ppep:hotpath
func LeadingLoadNSPerInst(l2MissPerInst, l3MissRatio, mlp float64, lat Latencies) float64 {
	if mlp < 1 {
		mlp = 1
	}
	l3Hits := l2MissPerInst * (1 - l3MissRatio)
	dram := l2MissPerInst * l3MissRatio
	return (l3Hits*lat.L3NS + dram*lat.DRAMNS) / mlp
}
