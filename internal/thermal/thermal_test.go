package thermal

import (
	"math"
	"testing"
	"testing/quick"

	"ppep/internal/units"
)

func TestStartsAtAmbient(t *testing.T) {
	m := New(200, 0.3, 298)
	if m.TempK() != 298 {
		t.Errorf("initial temp %v", m.TempK())
	}
}

func TestHeatsTowardSteadyState(t *testing.T) {
	m := New(200, 0.3, 300)
	want := m.SteadyTempK(100) // 330 K
	if want != 330 {
		t.Fatalf("steady temp %v", want)
	}
	for i := 0; i < 100000; i++ {
		m.Step(100, 0.01)
	}
	if math.Abs(float64(m.TempK()-want)) > 0.01 {
		t.Errorf("temp %v after long heating, want %v", m.TempK(), want)
	}
}

func TestCoolsToAmbient(t *testing.T) {
	m := New(200, 0.3, 300)
	m.SetTempK(340)
	for i := 0; i < 100000; i++ {
		m.Step(0, 0.01)
	}
	if math.Abs(float64(m.TempK()-300)) > 0.01 {
		t.Errorf("temp %v after cooling, want 300", m.TempK())
	}
}

func TestTimeConstant(t *testing.T) {
	m := New(200, 0.3, 300)
	if m.TimeConstantS() != 60 {
		t.Errorf("tau = %v", m.TimeConstantS())
	}
	// After one time constant of heating from ambient, the node should be
	// at 1−1/e ≈ 63.2% of the way to steady state.
	steps := 60000
	for i := 0; i < steps; i++ {
		m.Step(100, 0.001)
	}
	frac := float64(m.TempK()-300) / float64(m.SteadyTempK(100)-300)
	if math.Abs(frac-(1-1/math.E)) > 0.005 {
		t.Errorf("fraction after tau = %v, want %v", frac, 1-1/math.E)
	}
}

func TestStepSizeIndependence(t *testing.T) {
	// The exponential update must give the same trajectory for different
	// step sizes (property of the exact ODE solution).
	a := New(200, 0.3, 300)
	b := New(200, 0.3, 300)
	for i := 0; i < 1000; i++ {
		a.Step(80, 0.01)
	}
	for i := 0; i < 10; i++ {
		b.Step(80, 1.0)
	}
	if math.Abs(float64(a.TempK()-b.TempK())) > 0.05 {
		t.Errorf("step-size dependence: %v vs %v", a.TempK(), b.TempK())
	}
}

func TestZeroOrNegativeDtIsNoop(t *testing.T) {
	m := New(200, 0.3, 300)
	m.SetTempK(320)
	m.Step(100, 0)
	m.Step(100, -1)
	if m.TempK() != 320 {
		t.Errorf("temp changed on no-op step: %v", m.TempK())
	}
}

func TestExpNegAccuracy(t *testing.T) {
	for _, x := range []float64{0, 1e-6, 0.001, 0.1, 0.5, 1, 2, 5, 10, 29} {
		got := expNeg(x)
		want := math.Exp(-x)
		if math.Abs(got-want) > 1e-12*want+1e-300 {
			t.Errorf("expNeg(%v) = %v, want %v", x, got, want)
		}
	}
	if expNeg(100) > 1e-40 {
		t.Error("large x should be ~0")
	}
	if expNeg(-1) != 1 {
		t.Error("negative x clamps to 1")
	}
}

func TestMonotoneApproach(t *testing.T) {
	// Property: temperature approaches steady state monotonically.
	f := func(power, start uint8) bool {
		p := units.Watts(power%150) + 1
		m := New(190, 0.32, 300)
		m.SetTempK(280 + units.Kelvin(start%120))
		tss := m.SteadyTempK(p)
		prev := m.TempK()
		for i := 0; i < 100; i++ {
			m.Step(p, 0.5)
			cur := m.TempK()
			if prev < tss && (cur < prev-1e-9 || cur > tss+1e-9) {
				return false
			}
			if prev > tss && (cur > prev+1e-9 || cur < tss-1e-9) {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDefaultFX8320Shape(t *testing.T) {
	m := DefaultFX8320()
	// Figure 1 shows roughly a 300→335 K swing under heavy load.
	hot := m.SteadyTempK(110)
	if hot < 325 || hot > 345 {
		t.Errorf("steady hot temp %v outside Figure 1's plausible band", hot)
	}
	tau := m.TimeConstantS()
	if tau < 30 || tau > 120 {
		t.Errorf("time constant %v s implausible for a desktop cooler", tau)
	}
}
