// Package thermal models the package/heatsink thermal path of the
// simulated processor as a lumped RC node. The paper's idle power model
// (Section IV-A) is trained on exactly the transient this model produces:
// heat the chip under load, cut the load, and record power and the socket
// thermal diode while it cools (Figure 1).
package thermal

import (
	"math"

	"ppep/internal/units"
)

// Model is a single-node RC thermal model: a heat capacity Cth coupled to
// ambient through resistance Rth. dT/dt = (P − (T−Tamb)/Rth) / Cth.
type Model struct {
	// CthJPerK is the lumped heat capacity of die + spreader + sink.
	CthJPerK units.JoulesPerKelvin
	// RthKPerW is the junction-to-ambient thermal resistance.
	RthKPerW units.KelvinPerWatt
	// AmbientK is the ambient (intake air) temperature.
	AmbientK units.Kelvin

	tempK units.Kelvin
}

// DefaultFX8320 returns the thermal model used for the FX-8320 platform:
// a tower-cooler class sink with a ~60 s time constant, reaching roughly
// +35 K over ambient at ~110 W — consistent with the 300→335 K swing in
// Figure 1.
func DefaultFX8320() *Model {
	return New(190, 0.32, 300)
}

// New builds a model at thermal equilibrium with ambient.
func New(cth units.JoulesPerKelvin, rth units.KelvinPerWatt, ambientK units.Kelvin) *Model {
	return &Model{CthJPerK: cth, RthKPerW: rth, AmbientK: ambientK, tempK: ambientK}
}

// Step advances the node by dt under powerW of dissipation. It uses the
// exact exponential solution of the linear ODE over the step, so large
// steps remain stable.
func (m *Model) Step(powerW units.Watts, dt units.Seconds) {
	if dt <= 0 {
		return
	}
	// Steady state for this power level.
	tss := m.AmbientK + m.RthKPerW.Times(powerW)
	tau := m.RthKPerW.TimesHeatCap(m.CthJPerK)
	// T(t+dt) = Tss + (T−Tss)·e^(−dt/τ)
	m.tempK = tss + units.Kelvin(float64(m.tempK-tss)*expNeg(dt.Per(tau)))
}

// TempK returns the current junction temperature.
func (m *Model) TempK() units.Kelvin { return m.tempK }

// SetTempK forces the node temperature (used to start experiments from a
// known thermal state).
func (m *Model) SetTempK(t units.Kelvin) { m.tempK = t }

// SteadyTempK returns the equilibrium temperature at the given power.
func (m *Model) SteadyTempK(powerW units.Watts) units.Kelvin {
	return m.AmbientK + m.RthKPerW.Times(powerW)
}

// TimeConstantS returns the RC time constant.
func (m *Model) TimeConstantS() units.Seconds {
	return m.RthKPerW.TimesHeatCap(m.CthJPerK)
}

// expNeg computes e^(−x) for x ≥ 0, clamping negative inputs to zero so
// Step never amplifies the distance to steady state.
func expNeg(x float64) float64 {
	if x < 0 {
		x = 0
	}
	return math.Exp(-x)
}
