// Package energy implements the paper's energy prediction (Section V-A)
// and the Green Governors comparison baseline.
//
// PPEP predicts the next interval's energy as the current interval's
// estimated chip power times the interval length; errors combine model
// error with phase-change error, exactly as evaluated in Figure 6.
//
// Green Governors (Spiliopoulos et al. [27]) is reimplemented as the
// paper characterizes it: a theoretical CV²f dynamic power model — an
// activity-derived effective capacitance scaled by V²f — plus a static
// power table per VF state, with no north bridge contribution and no
// temperature term. Its structural gaps (NB power varies per workload;
// leakage varies with temperature) are what make it less accurate.
package energy

import (
	"fmt"

	"ppep/internal/arch"
	"ppep/internal/stats"
	"ppep/internal/trace"
	"ppep/internal/units"
)

// PredictNextIntervalJ is PPEP's energy prediction: current estimated
// power carried forward one interval.
func PredictNextIntervalJ(estPowerW units.Watts, intervalS units.Seconds) units.Joules {
	return estPowerW.Over(intervalS)
}

// EDP returns the energy-delay product for an energy and a delay.
func EDP(energyJ units.Joules, delayS units.Seconds) units.JouleSeconds {
	return energyJ.Times(delayS)
}

// NumGGFeatures is the size of the Green Governors activity vector.
const NumGGFeatures = 5

// GreenGovernors is the baseline chip power model.
type GreenGovernors struct {
	// StaticW is the per-VF static power table (measured once, no
	// temperature dependence).
	StaticW map[arch.VFState]units.Watts
	// C maps per-cycle core activity to effective capacitance:
	// Ceff = C0 + C1·UPC + C2·FPC + C3·DCPC + C4·ICPC (uops, FPU ops,
	// data-cache and icache accesses per unhalted cycle). NB-related
	// events and temperature are deliberately absent — the design gap
	// the paper identifies. Units fold the 1e9 cycles/GHz factor so
	// that P_dyn = Ceff·V²·f(GHz).
	C [NumGGFeatures]float64 //ppep:allow unitcheck folded effective-capacitance coefficients (cycles/GHz factor baked in)
}

// ceffFeatures extracts the Green Governors activity features: the model
// is per-core (each active core contributes Ceff(activity)·V²f), so the
// chip-level feature vector sums each busy core's per-cycle activity,
// with the constant term counting busy cores.
func ceffFeatures(iv trace.Interval) [NumGGFeatures]float64 {
	var out [NumGGFeatures]float64
	for c := range iv.Counters {
		rates := iv.CoreRates(c)
		cyc := rates.Get(arch.CPUClocksNotHalted)
		if cyc <= 0 {
			continue
		}
		out[0] += 1
		out[1] += rates.Get(arch.RetiredUOP) / cyc
		out[2] += rates.Get(arch.FPUPipeAssignment) / cyc
		out[3] += rates.Get(arch.DataCacheAccesses) / cyc
		out[4] += rates.Get(arch.InstructionCacheFetches) / cyc
	}
	return out
}

// EstimateChipW estimates chip power for an interval at its measured VF.
func (g *GreenGovernors) EstimateChipW(iv trace.Interval, tbl arch.VFTable) units.Watts {
	vf := iv.VF()
	p := tbl.Point(vf)
	f := ceffFeatures(iv)
	var ceff float64
	for i := range f {
		ceff += g.C[i] * f[i]
	}
	if ceff < 0 {
		ceff = 0
	}
	return g.StaticW[vf] + units.Watts(ceff*float64(p.Voltage)*float64(p.Voltage)*float64(p.Freq))
}

// TrainGG fits the baseline from run traces and a per-VF idle table.
// Training uses the same measurements PPEP's models see, minus what the
// Green Governors design does not use (temperature, NB events). The
// effective capacitance is fitted at the top VF state — the same
// reference-state discipline PPEP's dynamic model uses — so the baseline
// is not additionally penalized by its CV²f scaling assumption when
// evaluated there.
func TrainGG(staticW map[arch.VFState]units.Watts, traces []*trace.Trace, tbl arch.VFTable) (*GreenGovernors, error) {
	var feats [][]float64
	var targets []float64
	top := tbl.Top()
	for _, tr := range traces {
		n := len(tr.Intervals)
		for i, iv := range tr.Intervals {
			if i == n-1 && n > 1 {
				continue // trailing partial interval
			}
			vf := iv.VF()
			if vf != top {
				continue
			}
			p := tbl.Point(vf)
			s, ok := staticW[vf]
			if !ok {
				return nil, fmt.Errorf("energy: no static power entry for %v", vf)
			}
			f := ceffFeatures(iv)
			vvf := p.Voltage.V2F(p.Freq)
			row := make([]float64, NumGGFeatures)
			for i := range f {
				row[i] = f[i] * vvf
			}
			feats = append(feats, row)
			targets = append(targets, iv.MeasPowerW-float64(s))
		}
	}
	if len(feats) < NumGGFeatures {
		return nil, fmt.Errorf("energy: %d training intervals insufficient", len(feats))
	}
	lin, err := stats.NNLS(feats, targets, 0)
	if err != nil {
		return nil, fmt.Errorf("energy: regression: %w", err)
	}
	g := &GreenGovernors{StaticW: staticW}
	copy(g.C[:], lin.Weights)
	return g, nil
}

// NextIntervalErrors evaluates next-interval energy prediction over a
// trace, given an estimator of the current interval's chip power. It
// returns one absolute relative error per interval pair — the Figure 6
// metric.
//
//ppep:allow unitcheck relative errors are dimensionless
func NextIntervalErrors(tr *trace.Trace, estimate func(trace.Interval) units.Watts) []float64 {
	var errs []float64
	for i := 0; i+1 < len(tr.Intervals); i++ {
		cur := tr.Intervals[i]
		next := tr.Intervals[i+1]
		pred := PredictNextIntervalJ(estimate(cur), units.Seconds(next.DurS))
		meas := next.MeasPowerW * next.DurS
		errs = append(errs, stats.AbsPctErr(float64(pred), meas))
	}
	return errs
}
