package energy

import (
	"math"
	"testing"

	"ppep/internal/arch"
	"ppep/internal/trace"
	"ppep/internal/units"
)

func TestPredictNextIntervalJ(t *testing.T) {
	if got := PredictNextIntervalJ(75, 0.2); math.Abs(float64(got-15)) > 1e-12 {
		t.Errorf("energy = %v", got)
	}
}

func TestEDP(t *testing.T) {
	if EDP(10, 2) != 20 {
		t.Error("EDP wrong")
	}
}

// mkInterval builds an interval with the given chip activity.
func mkInterval(vf arch.VFState, upc, fpc, measW float64) trace.Interval {
	var ev arch.EventVec
	cyc := 3e9
	ev.Set(arch.CPUClocksNotHalted, cyc)
	ev.Set(arch.RetiredUOP, upc*cyc)
	ev.Set(arch.FPUPipeAssignment, fpc*cyc)
	ev.Set(arch.RetiredInstructions, cyc/1.2)
	return trace.Interval{
		DurS:       0.2,
		Counters:   []arch.EventVec{ev.Scale(0.2)}, // counts for 0.2 s
		PerCoreVF:  []arch.VFState{vf},
		Busy:       []bool{true},
		MeasPowerW: measW,
		TempK:      320,
	}
}

func staticTable() map[arch.VFState]units.Watts {
	return map[arch.VFState]units.Watts{
		arch.VF1: 12, arch.VF2: 16, arch.VF3: 22, arch.VF4: 28, arch.VF5: 35,
	}
}

func TestTrainGGRecoversCV2F(t *testing.T) {
	// Generate data from an exact Ceff model (constant + UPC + FPC
	// terms; the cache-access features are held constant by mkInterval's
	// zero entries) and verify the fit reproduces the generating law.
	static := staticTable()
	tbl := arch.FX8320VFTable
	c0, c1, c2 := 1.0, 2.0, 3.0
	var traces []*trace.Trace
	for _, vf := range tbl.States() {
		p := tbl.Point(vf)
		tr := &trace.Trace{}
		for i := 0; i < 20; i++ {
			upc := 0.5 + 0.1*float64(i%4)
			fpc := 0.07 * float64(i/4%3)
			ceff := c0 + c1*upc + c2*fpc
			iv := mkInterval(vf, upc, fpc, float64(static[vf])+ceff*p.Voltage.V2F(p.Freq))
			tr.Intervals = append(tr.Intervals, iv)
		}
		traces = append(traces, tr)
	}
	g, err := TrainGG(static, traces, tbl)
	if err != nil {
		t.Fatal(err)
	}
	// Estimates reproduce the generating law on held-out activity.
	iv := mkInterval(arch.VF3, 0.8, 0.2, 0)
	p := tbl.Point(arch.VF3)
	want := float64(static[arch.VF3]) + (c0+c1*0.8+c2*0.2)*p.Voltage.V2F(p.Freq)
	if got := g.EstimateChipW(iv, tbl); math.Abs(float64(got)-want)/want > 1e-3 {
		t.Errorf("estimate %v, want %v", got, want)
	}
}

func TestTrainGGValidation(t *testing.T) {
	if _, err := TrainGG(staticTable(), nil, arch.FX8320VFTable); err == nil {
		t.Error("no data accepted")
	}
	tr := &trace.Trace{Intervals: []trace.Interval{mkInterval(arch.VF5, 0.5, 0.1, 50)}}
	missing := map[arch.VFState]units.Watts{arch.VF1: 10}
	if _, err := TrainGG(missing, []*trace.Trace{tr}, arch.FX8320VFTable); err == nil {
		t.Error("missing static entry accepted")
	}
}

func TestGGIdleCycleFallback(t *testing.T) {
	g := &GreenGovernors{StaticW: staticTable(), C: [NumGGFeatures]float64{1, 1, 1, 1, 1}}
	iv := trace.Interval{
		DurS:      0.2,
		Counters:  []arch.EventVec{{}},
		PerCoreVF: []arch.VFState{arch.VF5},
		Busy:      []bool{false},
	}
	got := g.EstimateChipW(iv, arch.FX8320VFTable)
	// No core retired cycles → no per-core Ceff terms → static only.
	if math.Abs(float64(got-35)) > 1e-9 {
		t.Errorf("idle estimate %v, want static-only 35", got)
	}
}

func TestNextIntervalErrors(t *testing.T) {
	tr := &trace.Trace{}
	for i := 0; i < 4; i++ {
		iv := mkInterval(arch.VF5, 0.5, 0.1, 100)
		tr.Intervals = append(tr.Intervals, iv)
	}
	// Perfect estimator (always 100 W) on constant-power trace → 0 error.
	errs := NextIntervalErrors(tr, func(trace.Interval) units.Watts { return 100 })
	if len(errs) != 3 {
		t.Fatalf("errs = %d", len(errs))
	}
	for _, e := range errs {
		if e != 0 {
			t.Errorf("error %v", e)
		}
	}
	// 10% biased estimator → 10% everywhere.
	errs = NextIntervalErrors(tr, func(trace.Interval) units.Watts { return 110 })
	for _, e := range errs {
		if math.Abs(e-0.1) > 1e-12 {
			t.Errorf("error %v, want 0.1", e)
		}
	}
	// Phase change: estimator perfect per interval, but power moves.
	tr.Intervals[2].MeasPowerW = 150
	errs = NextIntervalErrors(tr, func(iv trace.Interval) units.Watts { return units.Watts(iv.MeasPowerW) })
	if errs[1] == 0 {
		t.Error("phase-change error should be non-zero")
	}
}

func TestCeffNegativeClamp(t *testing.T) {
	g := &GreenGovernors{StaticW: staticTable(), C: [NumGGFeatures]float64{}}
	g.C[0] = -5 // pathological fit
	iv := mkInterval(arch.VF5, 0, 0, 0)
	got := g.EstimateChipW(iv, arch.FX8320VFTable)
	if got != 35 {
		t.Errorf("estimate %v, want static only", got)
	}
}
