package core

import (
	"encoding/json"
	"fmt"
	"io"

	"ppep/internal/arch"
	"ppep/internal/core/dynpower"
	"ppep/internal/core/idlepower"
	"ppep/internal/core/pgidle"
	"ppep/internal/stats"
	"ppep/internal/units"
)

// modelsJSON is the serialized form of a trained model set. Training is a
// one-time offline effort (Section IV-B1); persisting the coefficients
// lets deployments ship them the way firmware would.
type modelsJSON struct {
	Version  int          `json:"version"`
	Platform platformJSON `json:"platform"`
	Idle     idleJSON     `json:"idle"`
	Dyn      dynJSON      `json:"dynamic"`
	PG       []pgJSON     `json:"power_gating,omitempty"`
	PGOn     bool         `json:"pg_enabled"`
	Thermal  *thermalJSON `json:"thermal,omitempty"`
}

type thermalJSON struct {
	AmbientK float64 `json:"ambient_k"`
	RthKPerW float64 `json:"rth_k_per_w"`
}

type platformJSON struct {
	Voltages []float64 `json:"voltages"`
	Freqs    []float64 `json:"freqs_ghz"`
}

type idleJSON struct {
	W1 []float64 `json:"w1"`
	W0 []float64 `json:"w0"`
}

type dynJSON struct {
	W     []float64 `json:"weights"`
	Alpha float64   `json:"alpha"`
	VRef  float64   `json:"vref"`
}

type pgJSON struct {
	State int     `json:"state"`
	CU    float64 `json:"pidle_cu"`
	NB    float64 `json:"pidle_nb"`
	Base  float64 `json:"pidle_base"`
}

const modelsVersion = 1

// Save serializes the trained models as JSON.
func (m *Models) Save(w io.Writer) error {
	if m.Idle == nil || m.Dyn == nil {
		return fmt.Errorf("core: cannot save untrained models")
	}
	ws := make([]float64, len(m.Dyn.W))
	for i, w := range m.Dyn.W {
		ws[i] = float64(w)
	}
	out := modelsJSON{
		Version: modelsVersion,
		Idle:    idleJSON{W1: m.Idle.W1, W0: m.Idle.W0},
		Dyn:     dynJSON{W: ws, Alpha: m.Dyn.Alpha, VRef: float64(m.Dyn.VRef)},
		PGOn:    m.PGEnabled,
	}
	if m.Thermal != nil {
		out.Thermal = &thermalJSON{AmbientK: float64(m.Thermal.AmbientK), RthKPerW: float64(m.Thermal.RthKPerW)}
	}
	for _, p := range m.Table {
		out.Platform.Voltages = append(out.Platform.Voltages, float64(p.Voltage))
		out.Platform.Freqs = append(out.Platform.Freqs, float64(p.Freq))
	}
	for _, s := range m.Table.States() {
		if d, ok := m.PG[s]; ok {
			out.PG = append(out.PG, pgJSON{State: int(s), CU: float64(d.PidleCU), NB: float64(d.PidleNB), Base: float64(d.PidleBase)})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// LoadModels deserializes a model set saved with Save.
func LoadModels(r io.Reader) (*Models, error) {
	var in modelsJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("core: decode models: %w", err)
	}
	if in.Version != modelsVersion {
		return nil, fmt.Errorf("core: unsupported models version %d", in.Version)
	}
	if len(in.Platform.Voltages) == 0 || len(in.Platform.Voltages) != len(in.Platform.Freqs) {
		return nil, fmt.Errorf("core: malformed platform table")
	}
	if len(in.Dyn.W) != arch.NumPowerEvents {
		return nil, fmt.Errorf("core: dynamic model has %d weights, want %d", len(in.Dyn.W), arch.NumPowerEvents)
	}
	m := &Models{
		Idle:      &idlepower.Model{W1: stats.Poly(in.Idle.W1), W0: stats.Poly(in.Idle.W0)},
		Dyn:       &dynpower.Model{Alpha: in.Dyn.Alpha, VRef: units.Volts(in.Dyn.VRef)},
		PGEnabled: in.PGOn,
	}
	if in.Thermal != nil {
		m.Thermal = &ThermalFeedback{AmbientK: units.Kelvin(in.Thermal.AmbientK), RthKPerW: units.KelvinPerWatt(in.Thermal.RthKPerW)}
	}
	for i, w := range in.Dyn.W {
		m.Dyn.W[i] = units.JoulesPerEvent(w)
	}
	for i := range in.Platform.Voltages {
		m.Table = append(m.Table, arch.VFPoint{
			Voltage: units.Volts(in.Platform.Voltages[i]), Freq: units.GigaHertz(in.Platform.Freqs[i]),
		})
	}
	if len(in.PG) > 0 {
		m.PG = map[arch.VFState]pgidle.Decomposition{}
		for _, p := range in.PG {
			s := arch.VFState(p.State)
			if !m.Table.Contains(s) {
				return nil, fmt.Errorf("core: PG entry for unknown state %d", p.State)
			}
			m.PG[s] = pgidle.Decomposition{PidleCU: units.Watts(p.CU), PidleNB: units.Watts(p.NB), PidleBase: units.Watts(p.Base)}
		}
	}
	return m, nil
}
