package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"ppep/internal/arch"
	"ppep/internal/core/pgidle"
	"ppep/internal/trace"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	m, ts := miniCampaign(t)
	// Attach a PG decomposition so that branch round-trips too.
	m2 := *m
	m2.PG = map[arch.VFState]pgidle.Decomposition{
		arch.VF5: {PidleCU: 6.5, PidleNB: 7.1, PidleBase: 2.2},
		arch.VF1: {PidleCU: 1.5, PidleNB: 6.0, PidleBase: 1.4},
	}
	m2.PGEnabled = true
	m2.Thermal = &ThermalFeedback{AmbientK: 301, RthKPerW: 0.12}

	var buf bytes.Buffer
	if err := m2.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModels(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dyn.Alpha != m2.Dyn.Alpha || got.Dyn.VRef != m2.Dyn.VRef {
		t.Error("dynamic scalars differ")
	}
	if got.Dyn.W != m2.Dyn.W {
		t.Error("weights differ")
	}
	if len(got.Table) != len(m2.Table) || got.Table.Point(arch.VF5) != m2.Table.Point(arch.VF5) {
		t.Error("platform table differs")
	}
	if got.PG[arch.VF5] != m2.PG[arch.VF5] || got.PG[arch.VF1] != m2.PG[arch.VF1] {
		t.Error("PG decomposition differs")
	}
	if !got.PGEnabled {
		t.Error("PGEnabled lost")
	}
	if got.Thermal == nil || *got.Thermal != *m2.Thermal {
		t.Error("thermal feedback lost")
	}
	// The loaded models must produce identical analyses.
	iv := ts.Runs[0].Trace.Intervals[1]
	a, err := m2.Analyze(iv)
	if err != nil {
		t.Fatal(err)
	}
	b, err := got.Analyze(iv)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.PerVF {
		if math.Abs(float64(a.PerVF[i].ChipW-b.PerVF[i].ChipW)) > 1e-9 {
			t.Errorf("%v: loaded models predict %v, original %v",
				a.PerVF[i].VF, b.PerVF[i].ChipW, a.PerVF[i].ChipW)
		}
	}
}

func TestSaveUntrained(t *testing.T) {
	var m Models
	if err := m.Save(&bytes.Buffer{}); err == nil {
		t.Error("untrained save accepted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":        "{",
		"bad version":     `{"version": 99}`,
		"no platform":     `{"version": 1, "platform": {"voltages": [], "freqs_ghz": []}, "dynamic": {"weights": [1,2,3,4,5,6,7,8,9]}}`,
		"ragged platform": `{"version": 1, "platform": {"voltages": [1.0], "freqs_ghz": []}, "dynamic": {"weights": [1,2,3,4,5,6,7,8,9]}}`,
		"bad weights":     `{"version": 1, "platform": {"voltages": [1.0], "freqs_ghz": [2.0]}, "dynamic": {"weights": [1,2]}}`,
		"bad pg state":    `{"version": 1, "platform": {"voltages": [1.0], "freqs_ghz": [2.0]}, "dynamic": {"weights": [1,2,3,4,5,6,7,8,9]}, "power_gating": [{"state": 7}]}`,
	}
	for name, body := range cases {
		if _, err := LoadModels(strings.NewReader(body)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestSteadyIntervals(t *testing.T) {
	tr := &trace.Trace{Intervals: []trace.Interval{
		{DurS: 0.2}, {DurS: 0.2}, {DurS: 0.2},
	}}
	if got := len(SteadyIntervals(tr)); got != 2 {
		t.Errorf("steady intervals = %d, want 2", got)
	}
	one := &trace.Trace{Intervals: []trace.Interval{{DurS: 0.2}}}
	if got := len(SteadyIntervals(one)); got != 1 {
		t.Errorf("single interval trimmed to %d", got)
	}
	if got := len(SteadyIntervals(&trace.Trace{})); got != 0 {
		t.Errorf("empty trace gave %d", got)
	}
}
