// Package cpimodel implements the paper's online LL-MAB CPI predictor
// (Section III). CPI is split into core CPI (CCPI), which is invariant
// across VF states, and memory CPI (MCPI), which scales proportionally
// with core frequency because memory latency is fixed in wall-clock terms:
//
//	CPI(f') = CCPI(f) + MCPI(f)·f'/f            (Equation 1)
//
// Three performance counters implement it: CPI = CPU Clocks not Halted /
// Retired Instructions (E10/E11), MCPI = MAB Wait Cycles / Retired
// Instructions (E12/E11), CCPI = CPI − MCPI.
package cpimodel

import (
	"fmt"

	"ppep/internal/arch"
	"ppep/internal/trace"
	"ppep/internal/units"
)

// Sample is one interval's performance measurement at a known frequency.
type Sample struct {
	CPI     units.CPI
	MCPI    units.CPI
	FreqGHz units.GigaHertz
}

// CCPI returns the frequency-invariant core component.
func (s Sample) CCPI() units.CPI { return s.CPI - s.MCPI }

// Predict applies Equation 1: the CPI this workload would show at
// targetGHz.
func (s Sample) Predict(targetGHz units.GigaHertz) units.CPI {
	return s.CCPI() + s.MCPI.ScaleFreq(targetGHz, s.FreqGHz)
}

// PredictIPS returns the instructions-per-second rate at targetGHz.
func (s Sample) PredictIPS(targetGHz units.GigaHertz) units.InstPerSec {
	cpi := s.Predict(targetGHz)
	if cpi <= 0 {
		return 0
	}
	return targetGHz.OverCPI(cpi)
}

// FromCounters extracts a Sample from one core's interval event counts.
// It returns ok=false when the core retired no instructions (idle core) —
// there is no CPI to speak of.
func FromCounters(ev arch.EventVec, fGHz units.GigaHertz) (Sample, bool) {
	inst := ev.Get(arch.RetiredInstructions)
	if inst <= 0 {
		return Sample{}, false
	}
	return Sample{
		CPI:     units.CPI(ev.Get(arch.CPUClocksNotHalted) / inst),
		MCPI:    units.CPI(ev.Get(arch.MABWaitCycles) / inst),
		FreqGHz: fGHz,
	}, true
}

// segTrace is a trace reduced to cumulative-instruction coordinates for
// one core: cumInst[i] is the instruction count at the end of interval i.
type segTrace struct {
	cumInst []float64
	cycles  []float64 // cycles in interval i
	mab     []float64 // MAB wait cycles in interval i
	inst    []float64 // instructions in interval i
}

func newSegTrace(t *trace.Trace, core int) segTrace {
	var s segTrace
	var cum float64
	for _, iv := range t.Intervals {
		ev := iv.Counters[core]
		in := ev.Get(arch.RetiredInstructions)
		if in <= 0 {
			continue
		}
		cum += in
		s.cumInst = append(s.cumInst, cum)
		s.cycles = append(s.cycles, ev.Get(arch.CPUClocksNotHalted))
		s.mab = append(s.mab, ev.Get(arch.MABWaitCycles))
		s.inst = append(s.inst, in)
	}
	return s
}

// total returns the total instructions covered.
func (s segTrace) total() float64 {
	if len(s.cumInst) == 0 {
		return 0
	}
	return s.cumInst[len(s.cumInst)-1]
}

// cyclesIn integrates actual cycles over the instruction range [a, b],
// prorating partially covered intervals.
func (s segTrace) cyclesIn(a, b float64) float64 {
	return s.integrate(a, b, s.cycles)
}

// predictedCyclesIn integrates Equation-1-predicted cycles over [a, b]:
// each overlapped interval contributes overlapInst × CPIpred(interval).
func (s segTrace) predictedCyclesIn(a, b, fFrom, fTo float64) float64 {
	var sum float64
	lo := 0.0
	for i, hi := range s.cumInst {
		if hi <= a {
			lo = hi
			continue
		}
		if lo >= b {
			break
		}
		oa, ob := lo, hi
		if oa < a {
			oa = a
		}
		if ob > b {
			ob = b
		}
		overlap := ob - oa
		if overlap > 0 && s.inst[i] > 0 {
			cpi := s.cycles[i] / s.inst[i]
			mcpi := s.mab[i] / s.inst[i]
			pred := (cpi - mcpi) + mcpi*fTo/fFrom
			sum += overlap * pred
		}
		lo = hi
	}
	return sum
}

func (s segTrace) integrate(a, b float64, vals []float64) float64 {
	var sum float64
	lo := 0.0
	for i, hi := range s.cumInst {
		if hi <= a {
			lo = hi
			continue
		}
		if lo >= b {
			break
		}
		oa, ob := lo, hi
		if oa < a {
			oa = a
		}
		if ob > b {
			ob = b
		}
		if span := hi - lo; span > 0 && ob > oa {
			sum += vals[i] * (ob - oa) / span
		}
		lo = hi
	}
	return sum
}

// SegmentErrors evaluates the predictor exactly as the paper does
// (Section III): it divides two traces of the same program — run at
// frequencies fFrom and fTo — into segments of segInst instructions,
// predicts each segment's cycle count at fTo from the fFrom trace, and
// returns the per-segment absolute relative errors versus the measured
// fTo cycles.
//
//ppep:allow unitcheck instruction counts and relative errors are dimensionless
func SegmentErrors(from, to *trace.Trace, core int, fFrom, fTo units.GigaHertz, segInst float64) ([]float64, error) {
	if segInst <= 0 {
		return nil, fmt.Errorf("cpimodel: non-positive segment size")
	}
	sf := newSegTrace(from, core)
	st := newSegTrace(to, core)
	total := sf.total()
	if t2 := st.total(); t2 < total {
		total = t2
	}
	if total <= 0 {
		return nil, fmt.Errorf("cpimodel: traces retire no instructions on core %d", core)
	}
	var errs []float64
	for a := 0.0; a+segInst <= total; a += segInst {
		b := a + segInst
		actual := st.cyclesIn(a, b)
		pred := sf.predictedCyclesIn(a, b, float64(fFrom), float64(fTo))
		if actual <= 0 {
			continue
		}
		e := (pred - actual) / actual
		if e < 0 {
			e = -e
		}
		errs = append(errs, e)
	}
	if len(errs) == 0 {
		return nil, fmt.Errorf("cpimodel: no full segments (total %.3g instructions, segment %.3g)", total, segInst)
	}
	return errs, nil
}
