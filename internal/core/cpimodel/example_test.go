package cpimodel_test

import (
	"fmt"

	"ppep/internal/arch"
	"ppep/internal/core/cpimodel"
)

// The heart of the performance model: one interval's CPI and MCPI at the
// current frequency predict the CPI at any other frequency (Equation 1).
func ExampleSample_Predict() {
	// Measured at 3.5 GHz: CPI 1.0, of which 0.4 cycles/inst were spent
	// waiting on leading loads (MAB wait cycles).
	s := cpimodel.Sample{CPI: 1.0, MCPI: 0.4, FreqGHz: 3.5}
	// At 1.4 GHz, the memory time costs proportionally fewer cycles.
	fmt.Printf("CPI(1.4 GHz) = %.2f\n", s.Predict(1.4))
	fmt.Printf("CPI(3.5 GHz) = %.2f\n", s.Predict(3.5))
	// Output:
	// CPI(1.4 GHz) = 0.76
	// CPI(3.5 GHz) = 1.00
}

// Samples come straight from three performance counters.
func ExampleFromCounters() {
	var ev arch.EventVec
	ev.Set(arch.RetiredInstructions, 2e9)
	ev.Set(arch.CPUClocksNotHalted, 3e9)
	ev.Set(arch.MABWaitCycles, 1e9)
	s, ok := cpimodel.FromCounters(ev, 2.9)
	fmt.Println(ok, s.CPI, s.MCPI, s.CCPI())
	// Output:
	// true 1.5 0.5 1
}
