package cpimodel

import (
	"math"
	"testing"

	"ppep/internal/arch"
	"ppep/internal/fxsim"
	"ppep/internal/stats"
	"ppep/internal/trace"
	"ppep/internal/workload"
)

func TestPredictEquation1(t *testing.T) {
	s := Sample{CPI: 1.0, MCPI: 0.4, FreqGHz: 3.5}
	if got := s.CCPI(); math.Abs(float64(got-0.6)) > 1e-12 {
		t.Errorf("CCPI = %v", got)
	}
	// At 1.75 GHz, MCPI halves: 0.6 + 0.4·0.5 = 0.8.
	if got := s.Predict(1.75); math.Abs(float64(got-0.8)) > 1e-12 {
		t.Errorf("Predict = %v", got)
	}
	// Same frequency round-trips.
	if got := s.Predict(3.5); math.Abs(float64(got-1.0)) > 1e-12 {
		t.Errorf("identity Predict = %v", got)
	}
}

func TestPredictIPS(t *testing.T) {
	s := Sample{CPI: 1.0, MCPI: 0.4, FreqGHz: 3.5}
	ips := s.PredictIPS(1.75)
	want := 1.75e9 / 0.8
	if math.Abs(float64(ips)-want) > 1 {
		t.Errorf("IPS = %v, want %v", ips, want)
	}
	bad := Sample{CPI: 0, MCPI: 0, FreqGHz: 3.5}
	if bad.PredictIPS(0) != 0 {
		t.Error("degenerate sample must predict zero IPS")
	}
}

func TestFromCounters(t *testing.T) {
	var ev arch.EventVec
	ev.Set(arch.RetiredInstructions, 1e9)
	ev.Set(arch.CPUClocksNotHalted, 1.2e9)
	ev.Set(arch.MABWaitCycles, 3e8)
	s, ok := FromCounters(ev, 2.9)
	if !ok {
		t.Fatal("rejected valid counters")
	}
	if math.Abs(float64(s.CPI-1.2)) > 1e-12 || math.Abs(float64(s.MCPI-0.3)) > 1e-12 || s.FreqGHz != 2.9 {
		t.Errorf("sample %+v", s)
	}
	if _, ok := FromCounters(arch.EventVec{}, 2.9); ok {
		t.Error("idle core accepted")
	}
}

// collect runs one single-threaded benchmark on a fresh chip at vf.
func collect(t *testing.T, b *workload.Benchmark, vf arch.VFState) *trace.Trace {
	t.Helper()
	cfg := fxsim.DefaultFX8320Config()
	cfg.IdealSensor = true
	chip := fxsim.New(cfg)
	r := workload.Run{Name: b.Name, Suite: "test",
		Members: []workload.Member{{Bench: b, Threads: 1}}}
	tr, err := chip.Collect(r, fxsim.RunOpts{VF: vf})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// shortened returns a copy of the benchmark trimmed to n instructions so
// tests stay fast.
func shortened(b *workload.Benchmark, n float64) *workload.Benchmark {
	c := *b
	c.Instructions = n
	return &c
}

func TestSegmentErrorsOnSimulator(t *testing.T) {
	// The paper reports ~3–4% average CPI prediction error between VF5
	// and VF2. Run two representative programs through the simulator and
	// check the same evaluation lands in a sane band (<8%).
	fx := arch.FX8320VFTable
	f5 := fx.Point(arch.VF5).Freq
	f2 := fx.Point(arch.VF2).Freq
	for _, name := range []string{"433", "458"} {
		b := shortened(workload.SPECByNumber(name), 8e9)
		tr5 := collect(t, b, arch.VF5)
		tr2 := collect(t, b, arch.VF2)

		down, err := SegmentErrors(tr5, tr2, 0, f5, f2, 5e8)
		if err != nil {
			t.Fatalf("%s down: %v", name, err)
		}
		up, err := SegmentErrors(tr2, tr5, 0, f2, f5, 5e8)
		if err != nil {
			t.Fatalf("%s up: %v", name, err)
		}
		d := stats.SummarizeAbsErrors(down)
		u := stats.SummarizeAbsErrors(up)
		if d.Mean > 0.08 {
			t.Errorf("%s VF5→VF2 error %.1f%% too large", name, 100*d.Mean)
		}
		if u.Mean > 0.08 {
			t.Errorf("%s VF2→VF5 error %.1f%% too large", name, 100*u.Mean)
		}
	}
}

func TestSegmentErrorsPerfectOnSyntheticTrace(t *testing.T) {
	// Hand-built traces that obey Equation 1 exactly must give ~zero
	// error.
	mkTrace := func(f float64) *trace.Trace {
		tr := &trace.Trace{}
		for i := 0; i < 10; i++ {
			var ev arch.EventVec
			inst := 1e8
			ccpi := 0.7
			memNSPerInst := 0.1
			mcpi := memNSPerInst * f
			ev.Set(arch.RetiredInstructions, inst)
			ev.Set(arch.CPUClocksNotHalted, (ccpi+mcpi)*inst)
			ev.Set(arch.MABWaitCycles, mcpi*inst)
			tr.Intervals = append(tr.Intervals, trace.Interval{
				DurS:      0.2,
				Counters:  []arch.EventVec{ev},
				PerCoreVF: []arch.VFState{arch.VF5},
				Busy:      []bool{true},
			})
		}
		return tr
	}
	errs, err := SegmentErrors(mkTrace(3.5), mkTrace(1.7), 0, 3.5, 1.7, 2e8)
	if err != nil {
		t.Fatal(err)
	}
	s := stats.SummarizeAbsErrors(errs)
	if s.Mean > 1e-9 {
		t.Errorf("synthetic error %v, want ~0", s.Mean)
	}
}

func TestSegmentErrorsValidation(t *testing.T) {
	empty := &trace.Trace{}
	if _, err := SegmentErrors(empty, empty, 0, 3.5, 1.7, 1e8); err == nil {
		t.Error("empty traces accepted")
	}
	tr := &trace.Trace{Intervals: []trace.Interval{{
		DurS:      0.2,
		Counters:  []arch.EventVec{{}},
		PerCoreVF: []arch.VFState{arch.VF5},
		Busy:      []bool{false},
	}}}
	if _, err := SegmentErrors(tr, tr, 0, 3.5, 1.7, 1e8); err == nil {
		t.Error("idle traces accepted")
	}
	if _, err := SegmentErrors(tr, tr, 0, 3.5, 1.7, 0); err == nil {
		t.Error("zero segment size accepted")
	}
}

func TestSegTraceIntegration(t *testing.T) {
	s := segTrace{
		cumInst: []float64{100, 300},
		cycles:  []float64{200, 400},
		mab:     []float64{0, 0},
		inst:    []float64{100, 200},
	}
	// Whole range.
	if got := s.cyclesIn(0, 300); math.Abs(got-600) > 1e-9 {
		t.Errorf("full integral %v", got)
	}
	// Half of the first interval.
	if got := s.cyclesIn(0, 50); math.Abs(got-100) > 1e-9 {
		t.Errorf("half first %v", got)
	}
	// Straddling.
	if got := s.cyclesIn(50, 200); math.Abs(got-100-200) > 1e-9 {
		t.Errorf("straddle %v", got)
	}
}
