package core

import (
	"ppep/internal/arch"
	"ppep/internal/trace"
	"ppep/internal/units"
)

// PredictionRow is one VF state's scalar projection summary — the
// serving-layer view of a Projection with the per-core detail folded
// into chip-level aggregates. The JSON field names are the wire
// contract of /predict and /predict/batch.
type PredictionRow struct {
	VF arch.VFState `json:"vf"`
	// CPI is the chip-effective CPI: total cycles issued by busy cores
	// over total retired instructions (0 when the chip is idle).
	CPI units.CPI `json:"cpi"`
	// TotalIPS is the chip-wide predicted instruction throughput.
	TotalIPS units.InstPerSec `json:"ips"`
	// IdleW, DynW, and ChipW decompose the predicted chip power.
	ChipW units.Watts `json:"chip_w"`
	IdleW units.Watts `json:"idle_w"`
	DynW  units.Watts `json:"dyn_w"`
	// IntervalEnergyJ is the predicted energy of one decision interval.
	IntervalEnergyJ units.Joules `json:"interval_energy_j"`
	// JPerInst and EDP are the energy-delay-space coordinates
	// (Section V). Both are 0 — not +Inf, which JSON cannot carry —
	// when the predicted throughput is zero.
	JPerInst units.JoulesPerInst `json:"j_per_inst"`
	EDP      units.EDP           `json:"edp"`
}

// PredictionTable is the published cross-VF summary of one analyzed
// interval: one row per VF state plus the measured context. It is
// immutable once built — the daemon publishes a fresh table behind an
// atomic pointer at every interval end, so any number of concurrent
// readers share it without locks (the paper's central property, made
// operational: one observed interval prices every VF state at once).
type PredictionTable struct {
	// Seq is the monotonic sequence number of the source interval.
	Seq uint64 `json:"seq"`
	// TimeS and DurS locate the interval on the simulation clock.
	TimeS units.Seconds `json:"time_s"`
	DurS  units.Seconds `json:"dur_s"`
	// MeasuredVF is the state the interval actually ran at.
	MeasuredVF arch.VFState `json:"measured_vf"`
	// MeasPowerW and TempK are the sensor readings behind the analysis.
	MeasPowerW units.Watts  `json:"measured_power_w"`
	TempK      units.Kelvin `json:"temp_k"`
	// Rows holds one summary per VF state, index 0 = VF1.
	Rows []PredictionRow `json:"rows"`
}

// Row returns the summary for a state.
func (t *PredictionTable) Row(s arch.VFState) PredictionRow { return t.Rows[int(s)-1] }

// PredictionTable flattens a Report into the immutable per-VF table the
// serving layer publishes. It performs no model evaluation — every
// number is either copied from the report or derived from it by plain
// arithmetic — and allocates exactly twice (the table and its rows).
func (m *Models) PredictionTable(seq uint64, iv trace.Interval, rep *Report) *PredictionTable {
	t := &PredictionTable{
		Seq:        seq,
		TimeS:      units.Seconds(iv.TimeS),
		DurS:       units.Seconds(iv.DurS),
		MeasuredVF: rep.MeasuredVF,
		MeasPowerW: units.Watts(iv.MeasPowerW),
		TempK:      rep.TempK,
		Rows:       make([]PredictionRow, len(rep.PerVF)),
	}
	for i := range rep.PerVF {
		p := &rep.PerVF[i]
		row := PredictionRow{
			VF:              p.VF,
			TotalIPS:        p.TotalIPS,
			ChipW:           p.ChipW,
			IdleW:           p.IdleW,
			DynW:            p.DynW,
			IntervalEnergyJ: p.IntervalEnergyJ,
		}
		if p.TotalIPS > 0 {
			// Busy cores are those the predictor attributed a CPI to.
			busy := 0
			for _, c := range p.PerCoreCPI {
				if c > 0 {
					busy++
				}
			}
			row.CPI = m.Table.Point(p.VF).Freq.AggregateCPI(busy, p.TotalIPS)
			row.JPerInst = p.ChipW.PerRate(p.TotalIPS)
			row.EDP = row.JPerInst.TimesDelay(p.TotalIPS.Invert())
		}
		t.Rows[i] = row
	}
	return t
}
