package eventpred_test

import (
	"fmt"

	"ppep/internal/arch"
	"ppep/internal/core/eventpred"
)

// Event rates measured at one frequency predict the rates at another:
// per-instruction counts carry over (Observation 1) and dispatch stalls
// follow the CPI prediction (Observation 2).
func ExamplePredictRates() {
	var ev arch.EventVec
	instRate := 2e9 // instructions/second at 3.5 GHz
	ev.Set(arch.RetiredInstructions, instRate)
	ev.Set(arch.RetiredUOP, 1.3*instRate)
	ev.Set(arch.CPUClocksNotHalted, 1.75*instRate) // CPI 1.75
	ev.Set(arch.MABWaitCycles, 0.7*instRate)       // MCPI 0.7
	ev.Set(arch.DispatchStalls, 0.9*instRate)

	pred, ok := eventpred.PredictRates(ev, 3.5, 1.75)
	inst := pred.Get(arch.RetiredInstructions)
	fmt.Println(ok)
	// Memory cycles halve at half the clock: CPI 1.05+0.35 = 1.40.
	fmt.Printf("CPI at 1.75 GHz: %.2f\n", pred.Get(arch.CPUClocksNotHalted)/inst)
	// Per-instruction uops are invariant (Observation 1).
	fmt.Printf("uops/inst: %.2f\n", pred.Get(arch.RetiredUOP)/inst)
	// The CPI−DS/inst gap is invariant (Observation 2): 1.75−0.90 = 0.85.
	fmt.Printf("gap: %.2f\n", pred.Get(arch.CPUClocksNotHalted)/inst-pred.Get(arch.DispatchStalls)/inst)
	// Output:
	// true
	// CPI at 1.75 GHz: 1.40
	// uops/inst: 1.30
	// gap: 0.85
}
