// Package eventpred implements the paper's hardware event predictor
// (Section IV-C): given one core's event rates measured at frequency f,
// it predicts what every Table I event's rate would be at frequency f',
// without ever running there. Two empirical observations make this
// possible:
//
//   - Observation 1: core-private event counts per instruction (E1–E8)
//     are independent of the VF state at a given point of execution.
//   - Observation 2: CPI − DispatchStalls/instruction is independent of
//     the VF state at a given point of execution (Equations 4–6).
//
// Combined with the LL-MAB CPI predictor, per-instruction rates plus a
// predicted instruction rate yield full event-rate vectors at any target
// frequency — the input the dynamic power model needs to predict power
// across VF states.
package eventpred

import (
	"ppep/internal/arch"
	"ppep/internal/core/cpimodel"
	"ppep/internal/units"
)

// PredictRates converts one core's event rates (events/second) at fFrom
// into predicted rates at fTo. ok is false for an idle core (no retired
// instructions — nothing to predict).
func PredictRates(ev arch.EventVec, fFrom, fTo units.GigaHertz) (arch.EventVec, bool) {
	instRate := ev.Get(arch.RetiredInstructions)
	if instRate <= 0 || fFrom <= 0 || fTo <= 0 {
		return arch.EventVec{}, false
	}
	s := cpimodel.Sample{
		CPI:     units.CPI(ev.Get(arch.CPUClocksNotHalted) / instRate),
		MCPI:    units.CPI(ev.Get(arch.MABWaitCycles) / instRate),
		FreqGHz: fFrom,
	}
	cpiTo := s.Predict(fTo)
	if cpiTo <= 0 {
		return arch.EventVec{}, false
	}
	instRateTo := float64(fTo.OverCPI(cpiTo))

	var out arch.EventVec
	// Observation 1: E1–E8 per instruction carry over unchanged.
	for i := 0; i < 8; i++ {
		perInst := ev[i] / instRate
		out[i] = perInst * instRateTo
	}
	// Observation 2: the gap CPI − DS/inst is VF-invariant, so
	// DS/inst(f') = CPI(f') − gap.
	dsPerInst := ev.Get(arch.DispatchStalls) / instRate
	gap := float64(s.CPI) - dsPerInst
	dsTo := float64(cpiTo) - gap
	if dsTo < 0 {
		dsTo = 0
	}
	out.Set(arch.DispatchStalls, dsTo*instRateTo)
	// Performance events follow from the CPI prediction directly.
	out.Set(arch.CPUClocksNotHalted, float64(cpiTo)*instRateTo)
	out.Set(arch.RetiredInstructions, instRateTo)
	out.Set(arch.MABWaitCycles, float64(s.MCPI)*fTo.Per(fFrom)*instRateTo)
	return out, true
}

// Gap returns the Observation 2 invariant, CPI − DispatchStalls/inst, for
// a core's rates, and ok=false for an idle core. Experiments use it to
// verify the observation on simulator traces.
func Gap(ev arch.EventVec) (units.CPI, bool) {
	inst := ev.Get(arch.RetiredInstructions)
	if inst <= 0 {
		return 0, false
	}
	cpi := ev.Get(arch.CPUClocksNotHalted) / inst
	ds := ev.Get(arch.DispatchStalls) / inst
	return units.CPI(cpi - ds), true
}

// PerInstruction returns the E1–E8 per-instruction rates (the
// Observation 1 fingerprint), and ok=false for an idle core.
func PerInstruction(ev arch.EventVec) ([8]units.EventsPerInst, bool) {
	var out [8]units.EventsPerInst
	inst := ev.Get(arch.RetiredInstructions)
	if inst <= 0 {
		return out, false
	}
	for i := range out {
		out[i] = units.EventsPerInst(ev[i] / inst)
	}
	return out, true
}
