package eventpred

import (
	"math"
	"testing"
	"testing/quick"

	"ppep/internal/arch"
	"ppep/internal/units"
)

// mkRates builds a consistent event-rate vector for a synthetic workload
// at frequency f: ccpi core cycles/inst, memNS leading-load ns/inst.
func mkRates(f, ccpi, memNS, dsCore float64) arch.EventVec {
	mcpi := memNS * f
	cpi := ccpi + mcpi
	instRate := f * 1e9 / cpi
	var ev arch.EventVec
	perInst := []float64{1.3, 0.4, 0.25, 0.45, 0.02, 0.15, 0.005, 0.008}
	for i, p := range perInst {
		ev[i] = p * instRate
	}
	ev.Set(arch.DispatchStalls, (mcpi+dsCore)*instRate)
	ev.Set(arch.CPUClocksNotHalted, cpi*instRate)
	ev.Set(arch.RetiredInstructions, instRate)
	ev.Set(arch.MABWaitCycles, mcpi*instRate)
	return ev
}

func TestPredictIdentity(t *testing.T) {
	ev := mkRates(3.5, 0.7, 0.1, 0.2)
	got, ok := PredictRates(ev, 3.5, 3.5)
	if !ok {
		t.Fatal("rejected valid rates")
	}
	for i := range ev {
		if math.Abs(got[i]-ev[i])/math.Max(ev[i], 1) > 1e-9 {
			t.Errorf("event %d: %v vs %v", i+1, got[i], ev[i])
		}
	}
}

func TestPredictMatchesGroundTruth(t *testing.T) {
	// The same synthetic workload evaluated directly at the target
	// frequency must equal the prediction from the source frequency.
	for _, pair := range [][2]float64{{3.5, 1.4}, {1.4, 3.5}, {2.9, 1.7}, {1.7, 2.3}} {
		from, to := pair[0], pair[1]
		src := mkRates(from, 0.7, 0.1, 0.2)
		want := mkRates(to, 0.7, 0.1, 0.2)
		got, ok := PredictRates(src, units.GigaHertz(from), units.GigaHertz(to))
		if !ok {
			t.Fatalf("%v→%v rejected", from, to)
		}
		for i := range want {
			rel := math.Abs(got[i]-want[i]) / math.Max(want[i], 1)
			if rel > 1e-9 {
				t.Errorf("%v→%v event %d: %v vs %v", from, to, i+1, got[i], want[i])
			}
		}
	}
}

func TestPredictIdleCore(t *testing.T) {
	if _, ok := PredictRates(arch.EventVec{}, 3.5, 1.4); ok {
		t.Error("idle core accepted")
	}
	ev := mkRates(3.5, 0.7, 0.1, 0.2)
	if _, ok := PredictRates(ev, 0, 1.4); ok {
		t.Error("zero source frequency accepted")
	}
	if _, ok := PredictRates(ev, 3.5, 0); ok {
		t.Error("zero target frequency accepted")
	}
}

func TestMemoryBoundRatesDropLessAtLowFreq(t *testing.T) {
	// Scaling a memory-bound workload down in frequency loses little
	// throughput; a CPU-bound one scales almost linearly. The event
	// predictor must reproduce that.
	cpu := mkRates(3.5, 0.9, 0.005, 0.2)
	mem := mkRates(3.5, 0.5, 0.35, 0.1)
	cpuTo, _ := PredictRates(cpu, 3.5, 1.4)
	memTo, _ := PredictRates(mem, 3.5, 1.4)
	cpuRatio := cpuTo.Get(arch.RetiredInstructions) / cpu.Get(arch.RetiredInstructions)
	memRatio := memTo.Get(arch.RetiredInstructions) / mem.Get(arch.RetiredInstructions)
	if memRatio <= cpuRatio {
		t.Errorf("mem-bound IPS ratio %v should beat cpu-bound %v", memRatio, cpuRatio)
	}
	if cpuRatio < 0.38 || cpuRatio > 0.45 {
		t.Errorf("cpu-bound ratio %v, want ≈1.4/3.5", cpuRatio)
	}
}

func TestGapInvariantAcrossPredictions(t *testing.T) {
	ev := mkRates(3.5, 0.7, 0.1, 0.2)
	g0, ok := Gap(ev)
	if !ok {
		t.Fatal("gap rejected")
	}
	for _, f := range []float64{1.4, 1.7, 2.3, 2.9} {
		pred, _ := PredictRates(ev, 3.5, units.GigaHertz(f))
		g, ok := Gap(pred)
		if !ok {
			t.Fatalf("gap at %v rejected", f)
		}
		if math.Abs(float64(g-g0)) > 1e-9 {
			t.Errorf("gap at %v GHz: %v, want invariant %v", f, g, g0)
		}
	}
}

func TestGapIdle(t *testing.T) {
	if _, ok := Gap(arch.EventVec{}); ok {
		t.Error("idle gap accepted")
	}
}

func TestPerInstructionFingerprint(t *testing.T) {
	ev := mkRates(2.9, 0.7, 0.1, 0.2)
	fp, ok := PerInstruction(ev)
	if !ok {
		t.Fatal("rejected")
	}
	want := []float64{1.3, 0.4, 0.25, 0.45, 0.02, 0.15, 0.005, 0.008}
	for i := range fp {
		if math.Abs(float64(fp[i])-want[i]) > 1e-12 {
			t.Errorf("fingerprint[%d] = %v, want %v", i, fp[i], want[i])
		}
	}
	if _, ok := PerInstruction(arch.EventVec{}); ok {
		t.Error("idle fingerprint accepted")
	}
}

func TestPredictRoundTripProperty(t *testing.T) {
	// Predicting f→f'→f must return the original rates.
	f := func(ccpiRaw, memRaw uint8, fi, fj uint8) bool {
		ccpi := 0.3 + float64(ccpiRaw)/255*1.2
		memNS := float64(memRaw) / 255 * 0.4
		freqs := []float64{1.4, 1.7, 2.3, 2.9, 3.5}
		from := freqs[int(fi)%len(freqs)]
		to := freqs[int(fj)%len(freqs)]
		ev := mkRates(from, ccpi, memNS, 0.15)
		fwd, ok := PredictRates(ev, units.GigaHertz(from), units.GigaHertz(to))
		if !ok {
			return false
		}
		back, ok := PredictRates(fwd, units.GigaHertz(to), units.GigaHertz(from))
		if !ok {
			return false
		}
		for i := range ev {
			if math.Abs(back[i]-ev[i]) > 1e-6*math.Max(ev[i], 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDispatchStallsClampedNonNegative(t *testing.T) {
	// A pathological vector where the gap exceeds the predicted CPI must
	// not produce negative stall rates.
	var ev arch.EventVec
	ev.Set(arch.RetiredInstructions, 1e9)
	ev.Set(arch.CPUClocksNotHalted, 2e9) // CPI 2
	ev.Set(arch.MABWaitCycles, 1.9e9)    // almost all memory
	ev.Set(arch.DispatchStalls, 0)       // gap = 2.0
	pred, ok := PredictRates(ev, 3.5, 1.4)
	if !ok {
		t.Fatal("rejected")
	}
	if pred.Get(arch.DispatchStalls) < 0 {
		t.Error("negative dispatch stalls predicted")
	}
}
