package core

import (
	"math"
	"sync"
	"testing"

	"ppep/internal/arch"
	"ppep/internal/core/pgidle"
	"ppep/internal/fxsim"
	"ppep/internal/stats"
	"ppep/internal/trace"
	"ppep/internal/workload"
)

// ---- shared mini training campaign (expensive; built once) ----

var (
	campaignOnce sync.Once
	campaign     TrainingSet
	models       *Models
	campaignErr  error
)

// trainBenches is a small but diverse slice of the suite: memory-bound,
// CPU-bound, and balanced programs.
var trainBenchNums = []string{"429", "433", "458", "416", "403", "470", "456", "483"}

func miniCampaign(t *testing.T) (*Models, TrainingSet) {
	t.Helper()
	campaignOnce.Do(func() {
		ts := TrainingSet{IdleTraces: map[arch.VFState]*trace.Trace{}}
		for _, vf := range arch.FX8320VFTable.States() {
			chip := fxsim.New(fxsim.DefaultFX8320Config())
			tr, err := chip.HeatCool(vf, 40, 80)
			if err != nil {
				campaignErr = err
				return
			}
			ts.IdleTraces[vf] = tr
		}
		for _, num := range trainBenchNums {
			b := workload.SPECByNumber(num)
			short := *b
			short.Instructions = 10e9
			for _, vf := range arch.FX8320VFTable.States() {
				chip := fxsim.New(fxsim.DefaultFX8320Config())
				r := workload.Run{Name: num, Suite: "SPE",
					Members: []workload.Member{{Bench: &short, Threads: 1}}}
				tr, err := chip.Collect(r, fxsim.RunOpts{VF: vf, WarmTempK: 315})
				if err != nil {
					campaignErr = err
					return
				}
				ts.Runs = append(ts.Runs, RunTrace{Name: num, Suite: "SPE", VF: vf, Trace: tr})
			}
		}
		campaign = ts
		models, campaignErr = Train(ts, arch.FX8320VFTable)
	})
	if campaignErr != nil {
		t.Fatal(campaignErr)
	}
	return models, campaign
}

func TestTrainProducesModels(t *testing.T) {
	m, _ := miniCampaign(t)
	if m.Idle == nil || m.Dyn == nil {
		t.Fatal("missing component models")
	}
	if m.Dyn.VRef != 1.320 {
		t.Errorf("VRef = %v", m.Dyn.VRef)
	}
	if m.Dyn.Alpha < 1.2 || m.Dyn.Alpha > 4.8 {
		t.Errorf("alpha = %v outside plausible band", m.Dyn.Alpha)
	}
}

func TestChipPowerEstimationAccuracy(t *testing.T) {
	// Figure 2(b): full-chip power model AAE ≈ 4.6% on the real part.
	// Demand <10% on the training runs here (a small training set).
	m, ts := miniCampaign(t)
	var errs []float64
	for _, rt := range ts.Runs {
		for _, iv := range rt.Trace.Intervals {
			est, err := m.EstimateChipW(iv)
			if err != nil {
				t.Fatal(err)
			}
			errs = append(errs, stats.AbsPctErr(float64(est), iv.MeasPowerW))
		}
	}
	s := stats.SummarizeAbsErrors(errs)
	if s.Mean > 0.10 {
		t.Errorf("chip power AAE %.1f%%, want <10%%", 100*s.Mean)
	}
	t.Logf("chip power AAE %.2f%% (SD %.2f%%)", 100*s.Mean, 100*s.SD)
}

func TestCrossVFPowerPrediction(t *testing.T) {
	// Figure 3(b): predict each run's average chip power at VFj from the
	// VFi trace. The paper sees 2.7–6.3% per pair; allow <12% here.
	m, ts := miniCampaign(t)
	byRun := map[string]map[arch.VFState]*trace.Trace{}
	for _, rt := range ts.Runs {
		if byRun[rt.Name] == nil {
			byRun[rt.Name] = map[arch.VFState]*trace.Trace{}
		}
		byRun[rt.Name][rt.VF] = rt.Trace
	}
	var errs []float64
	for _, traces := range byRun {
		for _, from := range arch.FX8320VFTable.States() {
			for _, to := range arch.FX8320VFTable.States() {
				src, dst := traces[from], traces[to]
				if src == nil || dst == nil {
					continue
				}
				var predSum float64
				var n int
				for _, iv := range src.Intervals {
					rep, err := m.Analyze(iv)
					if err != nil {
						t.Fatal(err)
					}
					predSum += float64(rep.At(to).ChipW)
					n++
				}
				if n == 0 {
					continue
				}
				errs = append(errs, stats.AbsPctErr(predSum/float64(n), dst.AvgMeasPowerW()))
			}
		}
	}
	s := stats.SummarizeAbsErrors(errs)
	if s.Mean > 0.12 {
		t.Errorf("cross-VF chip power error %.1f%%, want <12%%", 100*s.Mean)
	}
	t.Logf("cross-VF chip power error %.2f%% (SD %.2f%%, max %.1f%%)", 100*s.Mean, 100*s.SD, 100*s.Max)
}

func TestAnalyzeStructure(t *testing.T) {
	m, ts := miniCampaign(t)
	iv := ts.Runs[0].Trace.Intervals[1]
	rep, err := m.Analyze(iv)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerVF) != 5 {
		t.Fatalf("projections = %d", len(rep.PerVF))
	}
	for i, proj := range rep.PerVF {
		if proj.VF != arch.VFState(i+1) {
			t.Errorf("projection %d is %v", i, proj.VF)
		}
		if proj.ChipW <= 0 || proj.IdleW <= 0 {
			t.Errorf("%v: non-positive power", proj.VF)
		}
		if math.Abs(float64(proj.ChipW-(proj.IdleW+proj.DynW))) > 1e-9 {
			t.Errorf("%v: power decomposition broken", proj.VF)
		}
		if math.Abs(float64(proj.IntervalEnergyJ)-float64(proj.ChipW)*iv.DurS) > 1e-9 {
			t.Errorf("%v: energy inconsistent", proj.VF)
		}
	}
	// Monotonicity: higher VF → more power, more throughput.
	for i := 1; i < len(rep.PerVF); i++ {
		if rep.PerVF[i].ChipW <= rep.PerVF[i-1].ChipW {
			t.Errorf("power not increasing at %v", rep.PerVF[i].VF)
		}
		if rep.PerVF[i].TotalIPS <= rep.PerVF[i-1].TotalIPS {
			t.Errorf("IPS not increasing at %v", rep.PerVF[i].VF)
		}
	}
	if rep.Current().VF != iv.VF() {
		t.Error("Current() mismatched")
	}
}

// TestAnalyzeIntoReuseMatchesAnalyze pins the reuse contract: a report
// handed back interval after interval (the fleet engine's per-node
// scratch) must produce exactly what a fresh Analyze produces, even
// after analyzing a different interval in between.
func TestAnalyzeIntoReuseMatchesAnalyze(t *testing.T) {
	m, ts := miniCampaign(t)
	var reused Report
	for _, k := range []int{1, 2, 3, 1} {
		iv := ts.Runs[k].Trace.Intervals[1]
		want, err := m.Analyze(iv)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.AnalyzeInto(iv, &reused); err != nil {
			t.Fatal(err)
		}
		if reused.TempK != want.TempK || reused.MeasuredVF != want.MeasuredVF {
			t.Fatalf("run %d: header mismatch", k)
		}
		for si := range want.PerVF {
			w, g := want.PerVF[si], reused.PerVF[si]
			if w.ChipW != g.ChipW || w.TotalIPS != g.TotalIPS || w.IntervalEnergyJ != g.IntervalEnergyJ {
				t.Fatalf("run %d state %d: aggregate mismatch", k, si)
			}
			for c := range w.PerCoreCPI {
				if w.PerCoreCPI[c] != g.PerCoreCPI[c] || w.PerCoreDynW[c] != g.PerCoreDynW[c] {
					t.Fatalf("run %d state %d core %d: per-core mismatch", k, si, c)
				}
			}
		}
	}
}

// TestAnalyzeIntoAllocs pins the zero-alloc reuse path: once a report
// has the right shape, analyzing a stream of intervals through it
// allocates nothing.
func TestAnalyzeIntoAllocs(t *testing.T) {
	m, ts := miniCampaign(t)
	ivs := ts.Runs[0].Trace.Intervals
	var rep Report
	if err := m.AnalyzeInto(ivs[0], &rep); err != nil {
		t.Fatal(err)
	}
	i := 0
	n := testing.AllocsPerRun(100, func() {
		i++
		if err := m.AnalyzeInto(ivs[i%len(ivs)], &rep); err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Errorf("AnalyzeInto allocates %.1f times per interval on reuse, want 0", n)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	var m Models
	if _, err := m.Analyze(trace.Interval{}); err == nil {
		t.Error("untrained models accepted")
	}
	tm, _ := miniCampaign(t)
	if _, err := tm.Analyze(trace.Interval{}); err == nil {
		t.Error("empty interval accepted")
	}
}

func TestPredictChipWPerCU(t *testing.T) {
	m, ts := miniCampaign(t)
	iv := ts.Runs[0].Trace.Intervals[1]
	topo := arch.FX8320
	all5 := []arch.VFState{arch.VF5, arch.VF5, arch.VF5, arch.VF5}
	all1 := []arch.VFState{arch.VF1, arch.VF1, arch.VF1, arch.VF1}
	hi, err := m.PredictChipW(iv, topo, all5)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := m.PredictChipW(iv, topo, all1)
	if err != nil {
		t.Fatal(err)
	}
	if lo >= hi {
		t.Errorf("per-CU prediction not monotone: %v vs %v", lo, hi)
	}
	// Uniform assignment must agree with the Analyze projection.
	rep, err := m.Analyze(iv)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(hi-rep.At(arch.VF5).ChipW)) > 1e-6 {
		t.Errorf("uniform per-CU %v vs Analyze %v", hi, rep.At(arch.VF5).ChipW)
	}
	// Validation errors.
	if _, err := m.PredictChipW(iv, topo, all5[:2]); err == nil {
		t.Error("short assignment accepted")
	}
	bad := []arch.VFState{arch.VF5, arch.VF5, arch.VF5, arch.VFState(9)}
	if _, err := m.PredictChipW(iv, topo, bad); err == nil {
		t.Error("invalid state accepted")
	}
}

func TestSplitCoreNBShapes(t *testing.T) {
	m, ts := miniCampaign(t)
	m.PG = map[arch.VFState]pgidle.Decomposition{}
	for _, vf := range arch.FX8320VFTable.States() {
		m.PG[vf] = pgidle.Decomposition{PidleCU: 4, PidleNB: 6, PidleBase: 3}
	}
	// Memory-bound milc should show a larger NB share than CPU-bound
	// sjeng (Figure 10: ~60% vs ~25%).
	share := func(name string) float64 {
		for _, rt := range ts.Runs {
			if rt.Name == name && rt.VF == arch.VF5 {
				iv := rt.Trace.Intervals[len(rt.Trace.Intervals)/2]
				rep, err := m.Analyze(iv)
				if err != nil {
					t.Fatal(err)
				}
				coreW, nbW := m.SplitCoreNB(iv, rep.At(arch.VF5))
				return nbW.Per(coreW + nbW)
			}
		}
		t.Fatalf("run %s not found", name)
		return 0
	}
	milc := share("433")
	sjeng := share("458")
	if milc <= sjeng {
		t.Errorf("NB share: milc %.2f should exceed sjeng %.2f", milc, sjeng)
	}
	if milc < 0.2 || milc > 0.9 {
		t.Errorf("milc NB share %.2f implausible", milc)
	}
}

func TestDynSampleNeverNegative(t *testing.T) {
	m, ts := miniCampaign(t)
	for _, rt := range ts.Runs[:5] {
		for _, iv := range rt.Trace.Intervals {
			s := DynSample(iv, m.Idle, arch.FX8320VFTable)
			if s.DynW < 0 {
				t.Fatal("negative dynamic power sample")
			}
		}
	}
}
