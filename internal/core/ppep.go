// Package core is the PPEP framework itself (Figure 5): it consumes one
// measurement interval — per-core performance counters, the VF state, and
// the temperature diode — and produces performance, power, and energy
// projections for every VF state of the platform, in one step.
//
// The pipeline per interval is the paper's ①–⑥ flow:
//
//	① the CPI predictor estimates each core's CPI at all VF states;
//	② the hardware event predictor converts current counter rates into
//	   rates at every VF state;
//	③ the dynamic power model prices those rates at each state's voltage;
//	④ the (optionally PG-aware) idle power model adds the rest;
//	⑤⑥ the projections feed DVFS decisions (internal/dvfs).
package core

import (
	"fmt"

	"ppep/internal/arch"
	"ppep/internal/core/dynpower"
	"ppep/internal/core/eventpred"
	"ppep/internal/core/idlepower"
	"ppep/internal/core/pgidle"
	"ppep/internal/trace"
	"ppep/internal/units"
)

// Models bundles the trained PPEP component models for one platform.
type Models struct {
	Table arch.VFTable
	Idle  *idlepower.Model
	Dyn   *dynpower.Model
	// PG holds the per-VF power-gating decomposition (Section IV-D).
	// Optional: required only for per-core attribution and core/NB
	// splits on a PG-enabled platform.
	PG map[arch.VFState]pgidle.Decomposition
	// PGEnabled records the BIOS power-gating setting the models were
	// trained under.
	PGEnabled bool
	// Thermal, when non-nil, closes the temperature loop on cross-VF
	// predictions: moving to a different VF state changes power, which
	// moves the steady-state temperature, which moves leakage. The paper
	// uses the current temperature for all states; this extension
	// iterates the prediction once against a fitted thermal line
	// T ≈ Ambient + Rth·P (see Train).
	Thermal *ThermalFeedback
}

// ThermalFeedback is the fitted steady-state thermal line.
type ThermalFeedback struct {
	AmbientK units.Kelvin
	RthKPerW units.KelvinPerWatt
}

// SteadyTempK returns the predicted steady-state temperature at a power.
func (t *ThermalFeedback) SteadyTempK(powerW units.Watts) units.Kelvin {
	return t.AmbientK + t.RthKPerW.Times(powerW)
}

// Projection is the predicted state of the chip at one VF state.
type Projection struct {
	VF arch.VFState
	// PerCoreCPI is each core's predicted CPI (0 for idle cores).
	PerCoreCPI []units.CPI
	// PerCoreDynW is each core's attributed dynamic power.
	PerCoreDynW []units.Watts
	// TotalIPS is the chip-wide predicted instruction throughput.
	TotalIPS units.InstPerSec
	// IdleW, DynW, and ChipW decompose the predicted chip power.
	IdleW, DynW, ChipW units.Watts
	// IntervalEnergyJ is the predicted energy of one decision interval
	// at this state.
	IntervalEnergyJ units.Joules
}

// Report is the full PPE analysis of one interval.
type Report struct {
	TempK units.Kelvin
	// MeasuredVF is the state the interval actually ran at.
	MeasuredVF arch.VFState
	// PerVF holds one projection per VF state, index 0 = VF1.
	PerVF []Projection
}

// At returns the projection for a state.
func (r *Report) At(s arch.VFState) Projection { return r.PerVF[int(s)-1] }

// Current returns the projection at the measured VF state — PPEP's
// estimate of what the chip is doing right now.
func (r *Report) Current() Projection { return r.At(r.MeasuredVF) }

// Analyze runs the PPEP pipeline on one interval.
func (m *Models) Analyze(iv trace.Interval) (*Report, error) {
	rep := &Report{}
	if err := m.AnalyzeInto(iv, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// AnalyzeInto runs the PPEP pipeline on one interval into a
// caller-owned report. When the report's projection slices already have
// the right shape (same table size, same core count — the steady state
// of any caller analyzing a stream of intervals from one chip) they are
// reused and the analysis performs zero allocations; otherwise the
// report is (re)sized exactly as Analyze sizes a fresh one. The
// computed values are bit-identical to Analyze's — Analyze is this
// function applied to a zero report. A reused report is overwritten in
// place, so callers that retain reports must hand each interval a fresh
// one (that is Analyze). The fleet engine's per-node report scratch is
// the intended consumer; TestAnalyzeIntoAllocs pins the zero-alloc
// reuse path.
func (m *Models) AnalyzeInto(iv trace.Interval, rep *Report) error {
	if m.Idle == nil || m.Dyn == nil {
		return fmt.Errorf("core: models not trained")
	}
	if len(iv.Counters) == 0 {
		return fmt.Errorf("core: interval has no per-core counters")
	}
	rep.TempK = units.Kelvin(iv.TempK)
	rep.MeasuredVF = iv.VF()
	fFrom := m.Table.Point(rep.MeasuredVF).Freq

	// One backing array per field serves every state's per-core slice
	// (full-capacity sub-slices, so no state can append into the next
	// one's cells): the report owns them, and the whole analysis performs
	// a fixed number of allocations regardless of the table size — this
	// is the per-interval path of the service daemon
	// (TestServeIntervalAllocs).
	nCores := len(iv.Counters)
	nStates := len(m.Table)
	if !reportFits(rep, nStates, nCores) {
		rep.PerVF = make([]Projection, nStates)
		cpiBuf := make([]units.CPI, nStates*nCores)
		dynBuf := make([]units.Watts, nStates*nCores)
		for si := range rep.PerVF {
			off := si * nCores
			rep.PerVF[si].PerCoreCPI = cpiBuf[off : off+nCores : off+nCores]
			rep.PerVF[si].PerCoreDynW = dynBuf[off : off+nCores : off+nCores]
		}
	}
	for si := 0; si < nStates; si++ {
		s := arch.VFState(si + 1)
		pt := m.Table.Point(s)
		cpiCol := rep.PerVF[si].PerCoreCPI
		dynCol := rep.PerVF[si].PerCoreDynW
		for i := range cpiCol {
			cpiCol[i] = 0
			dynCol[i] = 0
		}
		proj := Projection{
			VF:          s,
			PerCoreCPI:  cpiCol,
			PerCoreDynW: dynCol,
		}
		for c := range iv.Counters {
			rates := iv.CoreRates(c)
			pred, ok := eventpred.PredictRates(rates, fFrom, pt.Freq)
			if !ok {
				continue // idle core
			}
			inst := pred.Get(arch.RetiredInstructions)
			if inst > 0 {
				proj.PerCoreCPI[c] = units.CPI(pred.Get(arch.CPUClocksNotHalted) / inst)
			}
			proj.TotalIPS += units.InstPerSec(inst)
			dynW := m.Dyn.EstimateCore(pred, pt.Voltage)
			proj.PerCoreDynW[c] = dynW
			proj.DynW += dynW
		}
		proj.IdleW = m.idleAt(s, pt.Voltage, iv)
		proj.ChipW = proj.IdleW + proj.DynW
		// Thermal feedback: for states other than the measured one,
		// re-evaluate the idle model at the temperature the predicted
		// power would settle at (two fixed-point iterations converge to
		// well under the model's own error).
		if m.Thermal != nil && s != rep.MeasuredVF && !m.PGEnabled {
			adj := iv
			for it := 0; it < 2; it++ {
				adj.TempK = float64(m.Thermal.SteadyTempK(proj.ChipW))
				proj.IdleW = m.Idle.Estimate(pt.Voltage, units.Kelvin(adj.TempK))
				proj.ChipW = proj.IdleW + proj.DynW
			}
		}
		proj.IntervalEnergyJ = proj.ChipW.Over(units.Seconds(iv.DurS))
		rep.PerVF[si] = proj
	}
	return nil
}

// reportFits reports whether a report's projection slices can be reused
// for an analysis of nStates VF states over nCores cores.
func reportFits(rep *Report, nStates, nCores int) bool {
	if len(rep.PerVF) != nStates {
		return false
	}
	for i := range rep.PerVF {
		if len(rep.PerVF[i].PerCoreCPI) != nCores || len(rep.PerVF[i].PerCoreDynW) != nCores {
			return false
		}
	}
	return true
}

// idleAt estimates the chip idle power at a target state. With power
// gating enabled and a Figure 4 decomposition available, gated compute
// units are excluded (the Section IV-D "new power model"); otherwise the
// temperature-aware Equation 2 model applies.
func (m *Models) idleAt(s arch.VFState, v units.Volts, iv trace.Interval) units.Watts {
	if m.PGEnabled {
		if d, ok := m.PG[s]; ok {
			return d.ChipIdleW(true, cusOf(m, iv), busyCUCount(iv, m))
		}
	}
	return m.Idle.Estimate(v, units.Kelvin(iv.TempK))
}

// EstimateChipW is the one-state shortcut: PPEP's estimate of the chip
// power for an interval at its measured VF state.
func (m *Models) EstimateChipW(iv trace.Interval) (units.Watts, error) {
	rep, err := m.Analyze(iv)
	if err != nil {
		return 0, err
	}
	return rep.Current().ChipW, nil
}

// PredictChipW predicts chip power for a per-CU state assignment (used by
// the per-CU power-capping policy of Section V-B, which assumes separate
// per-CU power planes). topo maps cores to CUs; assign holds one state
// per CU.
func (m *Models) PredictChipW(iv trace.Interval, topo arch.Topology, assign []arch.VFState) (units.Watts, error) {
	if len(assign) != topo.NumCUs {
		return 0, fmt.Errorf("core: %d assignments for %d CUs", len(assign), topo.NumCUs)
	}
	fFrom := m.Table.Point(iv.VF()).Freq
	var dyn units.Watts
	maxV := units.Volts(0)
	for cu, s := range assign {
		if !m.Table.Contains(s) {
			return 0, fmt.Errorf("core: invalid state %v for CU %d", s, cu)
		}
		if v := m.Table.Point(s).Voltage; v > maxV {
			maxV = v
		}
	}
	for c := range iv.Counters {
		st := assign[topo.CUOf(c)]
		pt := m.Table.Point(st)
		// Predictions are made from each core's own measured state, so a
		// mixed-assignment interval still predicts coherently.
		from := fFrom
		if len(iv.PerCoreVF) == len(iv.Counters) {
			from = m.Table.Point(iv.PerCoreVF[c]).Freq
		}
		pred, ok := eventpred.PredictRates(iv.CoreRates(c), from, pt.Freq)
		if !ok {
			continue
		}
		dyn += m.Dyn.EstimateCore(pred, pt.Voltage)
	}
	// Idle at the highest assigned state; PG-aware when applicable.
	topState := assign[0]
	for _, s := range assign[1:] {
		if s > topState {
			topState = s
		}
	}
	idle := m.idleAt(topState, maxV, iv)
	total := idle + dyn
	// Mirror Analyze's thermal feedback so uniform assignments agree
	// with the corresponding projection exactly.
	if m.Thermal != nil && !m.PGEnabled && topState != iv.VF() {
		for it := 0; it < 2; it++ {
			idle = m.Idle.Estimate(maxV, m.Thermal.SteadyTempK(total))
			total = idle + dyn
		}
	}
	return total, nil
}

// SplitPower is the detailed core/NB decomposition of a projection's
// power estimate (Section V-C).
type SplitPower struct {
	CoreDynW  units.Watts // E1–E7 terms of Eq. 3
	NBDynW    units.Watts // E8–E9 terms of Eq. 3 (the NB activity proxy)
	CoreIdleW units.Watts // CU idle power share
	NBIdleW   units.Watts // NB idle power
	BaseW     units.Watts // un-gateable base power
}

// CoreW returns the core-side total (Figure 10's Energy(Core) basis).
func (s SplitPower) CoreW() units.Watts { return s.CoreDynW + s.CoreIdleW }

// NBW returns the NB-side total, with the base power accounted on the NB
// side as on the paper's measurement boundary.
func (s SplitPower) NBW() units.Watts { return s.NBDynW + s.NBIdleW + s.BaseW }

// TotalW sums both sides.
func (s SplitPower) TotalW() units.Watts { return s.CoreW() + s.NBW() }

// SplitDetail splits a projection's power estimate into core and NB
// components. The dynamic split follows Equation 3's structure (E1–E7
// terms are core, E8–E9 terms proxy the NB); the idle split uses the PG
// decomposition when available, else the whole idle power is attributed
// to the core side.
func (m *Models) SplitDetail(iv trace.Interval, proj Projection) SplitPower {
	var s SplitPower
	pt := m.Table.Point(proj.VF)
	fFrom := m.Table.Point(iv.VF()).Freq
	for c := range iv.Counters {
		pred, ok := eventpred.PredictRates(iv.CoreRates(c), fFrom, pt.Freq)
		if !ok {
			continue
		}
		total := m.Dyn.EstimateCore(pred, pt.Voltage)
		var nbOnly arch.EventVec
		nbOnly.Set(arch.L2CacheMisses, pred.Get(arch.L2CacheMisses))
		nbOnly.Set(arch.DispatchStalls, pred.Get(arch.DispatchStalls))
		nb := m.Dyn.EstimateCore(nbOnly, pt.Voltage)
		s.CoreDynW += total - nb
		s.NBDynW += nb
	}
	if d, ok := m.PG[proj.VF]; ok {
		busyCUs := busyCUCount(iv, m)
		s.CoreIdleW = d.ChipIdleW(m.PGEnabled, cusOf(m, iv), busyCUs) - d.PidleNB - d.PidleBase
		s.NBIdleW = d.PidleNB
		s.BaseW = d.PidleBase
	} else {
		s.CoreIdleW = proj.IdleW
	}
	return s
}

// SplitCoreNB is the two-way shortcut over SplitDetail.
func (m *Models) SplitCoreNB(iv trace.Interval, proj Projection) (coreW, nbW units.Watts) {
	s := m.SplitDetail(iv, proj)
	return s.CoreW(), s.NBW()
}

// cusOf infers the CU count from the interval size assuming the FX
// two-cores-per-CU pairing when the counter count is even, else 1:1.
func cusOf(m *Models, iv trace.Interval) int {
	n := len(iv.Counters)
	if n%2 == 0 {
		return n / 2
	}
	return n
}

// busyCUCount counts CUs with at least one busy core.
func busyCUCount(iv trace.Interval, m *Models) int {
	per := 2
	if len(iv.Busy)%2 != 0 {
		per = 1
	}
	busy := 0
	for cu := 0; cu*per < len(iv.Busy); cu++ {
		for l := 0; l < per && cu*per+l < len(iv.Busy); l++ {
			if iv.Busy[cu*per+l] {
				busy++
				break
			}
		}
	}
	return busy
}
