// Package dynpower implements the paper's chip dynamic power model
// (Section IV-B, Equation 3): a linear regression over nine hardware
// events (Table I, E1–E9), trained once at VF5 and scaled to other VF
// states by voltage:
//
//	P_dyn = Σ_cores ( Σ_{i=1..7} (V/V5)^α · W_i · E_i  +  Σ_{i=8,9} W_i · E_i )
//
// E1–E7 are core-private activity scaled by the voltage factor; E8 (L2
// Cache Misses) and E9 (Dispatch Stalls) proxy the core's share of north
// bridge activity, whose voltage rail is fixed, so their weights are not
// scaled. The exponent α is a process constant calibrated from measured
// power across voltages.
package dynpower

import (
	"fmt"
	"math"

	"ppep/internal/arch"
	"ppep/internal/stats"
	"ppep/internal/units"
)

// NumScaled is the number of leading events whose weights scale with core
// voltage (E1–E7).
const NumScaled = 7

// Model is the trained dynamic power model.
type Model struct {
	// W holds the Equation 3 weights for E1–E9: watts per
	// (event/second), i.e. joules per event.
	W [arch.NumPowerEvents]units.JoulesPerEvent
	// Alpha is the voltage-scaling exponent.
	Alpha float64 //ppep:allow unitcheck dimensionless process exponent of the (V/V5)^α scale
	// VRef is the training voltage (V5).
	VRef units.Volts
}

// scale returns the (V/V5)^α factor.
func (m *Model) scale(v units.Volts) float64 {
	if v == m.VRef {
		return 1
	}
	return math.Pow(v.Per(m.VRef), m.Alpha)
}

// EstimateRates returns the dynamic power for chip-wide summed event
// rates (events/second) with all cores at voltage v.
//
//ppep:allow unitcheck EventVec-denominated per-second rates stay raw float64
func (m *Model) EstimateRates(rates [arch.NumPowerEvents]float64, v units.Volts) units.Watts {
	s := m.scale(v)
	var w float64
	for i := 0; i < NumScaled; i++ {
		w += s * float64(m.W[i]) * rates[i]
	}
	for i := NumScaled; i < arch.NumPowerEvents; i++ {
		w += float64(m.W[i]) * rates[i]
	}
	return units.Watts(w)
}

// EstimateCore returns one core's attributed dynamic power from its event
// rates at its voltage. Equation 3 uses the same weights for every core,
// so the chip estimate is the sum of per-core estimates.
func (m *Model) EstimateCore(ev arch.EventVec, v units.Volts) units.Watts {
	return m.EstimateRates(ev.PowerEvents(), v)
}

// Sample is one training observation: chip-wide summed event rates, the
// rail voltage, and the measured dynamic power (measured chip power minus
// the idle model's estimate).
type Sample struct {
	Rates   [arch.NumPowerEvents]float64 //ppep:allow unitcheck EventVec-denominated per-second rates stay raw float64
	Voltage units.Volts
	DynW    units.Watts
}

// Train fits the weights by least squares on samples taken at the
// reference voltage vRef (the paper trains at VF5 only), then calibrates
// α on the full multi-voltage sample set by golden-section search.
// Weights are constrained non-negative: a hardware event cannot remove
// power, and the constraint keeps noisy regressions physical.
func Train(samples []Sample, vRef units.Volts) (*Model, error) {
	var feats [][]float64
	var targets []float64
	for _, s := range samples {
		if s.Voltage != vRef {
			continue
		}
		feats = append(feats, append([]float64(nil), s.Rates[:]...))
		targets = append(targets, float64(s.DynW))
	}
	if len(feats) < arch.NumPowerEvents {
		return nil, fmt.Errorf("dynpower: %d reference-voltage samples insufficient", len(feats))
	}
	lin, err := stats.NNLS(feats, targets, 0)
	if err != nil {
		return nil, fmt.Errorf("dynpower: regression: %w", err)
	}
	m := &Model{VRef: vRef, Alpha: 2}
	for i := 0; i < len(lin.Weights) && i < len(m.W); i++ {
		m.W[i] = units.JoulesPerEvent(lin.Weights[i])
	}

	// Calibrate α on every sample not at the reference voltage.
	var offRef []Sample
	for _, s := range samples {
		if s.Voltage != vRef {
			offRef = append(offRef, s)
		}
	}
	if len(offRef) > 0 {
		loss := func(alpha float64) float64 {
			m.Alpha = alpha
			var sum float64
			for _, s := range offRef {
				d := float64(m.EstimateRates(s.Rates, s.Voltage) - s.DynW)
				sum += d * d
			}
			return sum
		}
		m.Alpha = stats.GoldenSection(loss, 1.0, 5.0, 60)
	}
	return m, nil
}

// Validate returns the per-sample absolute relative errors of the model
// on a sample set.
func (m *Model) Validate(samples []Sample) stats.ErrorSummary {
	var errs []float64
	for _, s := range samples {
		errs = append(errs, stats.AbsPctErr(float64(m.EstimateRates(s.Rates, s.Voltage)), float64(s.DynW)))
	}
	return stats.SummarizeAbsErrors(errs)
}
