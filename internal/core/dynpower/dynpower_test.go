package dynpower

import (
	"math"
	"math/rand"
	"testing"

	"ppep/internal/arch"
	"ppep/internal/units"
)

// synthSamples draws samples from a known Equation-3-form truth.
func synthSamples(trueW [arch.NumPowerEvents]float64, alpha, vRef float64, voltages []float64, n int, noise float64, seed int64) []Sample {
	rng := rand.New(rand.NewSource(seed))
	var out []Sample
	for i := 0; i < n; i++ {
		v := voltages[i%len(voltages)]
		var s Sample
		s.Voltage = units.Volts(v)
		scale := math.Pow(v/vRef, alpha)
		for j := range s.Rates {
			s.Rates[j] = rng.Float64() * 1e9
			w := trueW[j]
			if j < NumScaled {
				s.DynW += units.Watts(scale * w * s.Rates[j])
			} else {
				s.DynW += units.Watts(w * s.Rates[j])
			}
		}
		s.DynW += units.Watts(rng.NormFloat64() * noise)
		if s.DynW < 0 {
			s.DynW = 0
		}
		out = append(out, s)
	}
	return out
}

var testW = [arch.NumPowerEvents]float64{
	5e-10, 9e-10, 3e-10, 5e-10, 2e-9, 1e-10, 6e-9, 3e-9, 5e-11,
}

func TestTrainRecoversWeights(t *testing.T) {
	samples := synthSamples(testW, 2.3, 1.32, []float64{1.32}, 400, 0, 1)
	m, err := Train(samples, 1.32)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range testW {
		if math.Abs(float64(m.W[i])-w)/w > 1e-2 {
			t.Errorf("W[%d] = %v, want %v", i, m.W[i], w)
		}
	}
}

func TestTrainCalibratesAlpha(t *testing.T) {
	voltages := []float64{1.32, 1.242, 1.128, 1.008, 0.888}
	samples := synthSamples(testW, 2.3, 1.32, voltages, 1000, 0, 2)
	m, err := Train(samples, 1.32)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Alpha-2.3) > 0.01 {
		t.Errorf("alpha = %v, want 2.3", m.Alpha)
	}
}

func TestTrainAlphaDefaultsWithoutOffRefSamples(t *testing.T) {
	samples := synthSamples(testW, 2.3, 1.32, []float64{1.32}, 100, 0, 3)
	m, err := Train(samples, 1.32)
	if err != nil {
		t.Fatal(err)
	}
	if m.Alpha != 2 {
		t.Errorf("alpha = %v, want default 2", m.Alpha)
	}
}

func TestTrainInsufficientSamples(t *testing.T) {
	samples := synthSamples(testW, 2.3, 1.32, []float64{1.32}, 5, 0, 4)
	if _, err := Train(samples, 1.32); err == nil {
		t.Error("5 samples accepted for 9 weights")
	}
	// Samples at the wrong voltage don't count as reference samples.
	samples = synthSamples(testW, 2.3, 1.32, []float64{1.1}, 100, 0, 5)
	if _, err := Train(samples, 1.32); err == nil {
		t.Error("no reference-voltage samples accepted")
	}
}

func TestWeightsNonNegative(t *testing.T) {
	// Heavy noise would push plain OLS weights negative; NNLS must not.
	samples := synthSamples(testW, 2.3, 1.32, []float64{1.32}, 300, 5, 6)
	m, err := Train(samples, 1.32)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range m.W {
		if w < 0 {
			t.Errorf("W[%d] = %v < 0", i, w)
		}
	}
}

func TestEstimateScalesOnlyCoreEvents(t *testing.T) {
	m := &Model{Alpha: 2, VRef: 1.32}
	for i := range m.W {
		m.W[i] = 1e-9
	}
	var coreOnly, nbOnly [arch.NumPowerEvents]float64
	coreOnly[0] = 1e9 // E1
	nbOnly[8] = 1e9   // E9
	vLow := units.Volts(0.888)
	scale := math.Pow(float64(vLow)/1.32, 2)
	if got := m.EstimateRates(coreOnly, vLow); math.Abs(float64(got)-scale) > 1e-12 {
		t.Errorf("core event at low V: %v, want %v", got, scale)
	}
	if got := m.EstimateRates(nbOnly, vLow); math.Abs(float64(got-1.0)) > 1e-12 {
		t.Errorf("NB event must not scale: %v, want 1", got)
	}
}

func TestEstimateCoreMatchesRates(t *testing.T) {
	m := &Model{Alpha: 2, VRef: 1.32}
	for i := range m.W {
		m.W[i] = units.JoulesPerEvent(i+1) * 1e-10
	}
	var ev arch.EventVec
	for i := 0; i < arch.NumPowerEvents; i++ {
		ev[i] = float64(i) * 1e8
	}
	if m.EstimateCore(ev, 1.1) != m.EstimateRates(ev.PowerEvents(), 1.1) {
		t.Error("EstimateCore and EstimateRates disagree")
	}
}

func TestValidateSummary(t *testing.T) {
	samples := synthSamples(testW, 2.3, 1.32, []float64{1.32, 1.008}, 500, 0, 7)
	m, err := Train(samples, 1.32)
	if err != nil {
		t.Fatal(err)
	}
	s := m.Validate(samples)
	if s.Mean > 1e-2 {
		t.Errorf("noiseless validation error %v", s.Mean)
	}
	if s.N != 500 {
		t.Errorf("N = %d", s.N)
	}
}

func TestValidationErrorGrowsWithNoise(t *testing.T) {
	clean := synthSamples(testW, 2.3, 1.32, []float64{1.32}, 300, 0.5, 8)
	noisy := synthSamples(testW, 2.3, 1.32, []float64{1.32}, 300, 5, 9)
	mc, err := Train(clean, 1.32)
	if err != nil {
		t.Fatal(err)
	}
	mn, err := Train(noisy, 1.32)
	if err != nil {
		t.Fatal(err)
	}
	if mn.Validate(noisy).Mean <= mc.Validate(clean).Mean {
		t.Error("noisier data should validate worse")
	}
}

func TestScaleIdentityAtVRef(t *testing.T) {
	m := &Model{Alpha: 2.7, VRef: 1.32}
	if m.scale(1.32) != 1 {
		t.Error("scale at VRef must be exactly 1")
	}
	if m.scale(0.888) >= 1 {
		t.Error("scale below VRef must shrink")
	}
}
