package core

import (
	"math"
	"testing"

	"ppep/internal/arch"
	"ppep/internal/units"
)

// TestPredictionTable pins the Report → PredictionTable flattening: the
// rows mirror the projections exactly, the derived E/D-space numbers
// follow their definitions, and the measured context rides along.
func TestPredictionTable(t *testing.T) {
	m, ts := miniCampaign(t)
	iv := ts.Runs[0].Trace.Intervals[1]
	rep, err := m.Analyze(iv)
	if err != nil {
		t.Fatal(err)
	}
	tab := m.PredictionTable(42, iv, rep)

	if tab.Seq != 42 {
		t.Errorf("seq %d, want 42", tab.Seq)
	}
	if float64(tab.TimeS) != iv.TimeS || float64(tab.DurS) != iv.DurS {
		t.Errorf("interval clock %v/%v, want %v/%v", tab.TimeS, tab.DurS, iv.TimeS, iv.DurS)
	}
	if tab.MeasuredVF != rep.MeasuredVF {
		t.Errorf("measured VF %v, want %v", tab.MeasuredVF, rep.MeasuredVF)
	}
	if float64(tab.MeasPowerW) != iv.MeasPowerW || tab.TempK != rep.TempK {
		t.Error("measured power/temperature not carried over")
	}
	if len(tab.Rows) != len(rep.PerVF) {
		t.Fatalf("%d rows, want %d", len(tab.Rows), len(rep.PerVF))
	}
	for i, row := range tab.Rows {
		proj := rep.PerVF[i]
		if row.VF != arch.VFState(i+1) {
			t.Errorf("row %d is %v", i, row.VF)
		}
		if row.ChipW != proj.ChipW || row.IdleW != proj.IdleW || row.DynW != proj.DynW ||
			row.TotalIPS != proj.TotalIPS || row.IntervalEnergyJ != proj.IntervalEnergyJ {
			t.Errorf("%v: row diverges from projection", row.VF)
		}
		if proj.TotalIPS <= 0 {
			t.Fatalf("%v: training interval unexpectedly idle", row.VF)
		}
		if want := proj.ChipW.PerRate(proj.TotalIPS); row.JPerInst != want {
			t.Errorf("%v: J/inst %v, want %v", row.VF, row.JPerInst, want)
		}
		if want := row.JPerInst.TimesDelay(proj.TotalIPS.Invert()); row.EDP != want {
			t.Errorf("%v: EDP %v, want %v", row.VF, row.EDP, want)
		}
		// One busy core retiring TotalIPS at this state's clock.
		busy := 0
		for _, c := range proj.PerCoreCPI {
			if c > 0 {
				busy++
			}
		}
		want := m.Table.Point(row.VF).Freq.AggregateCPI(busy, proj.TotalIPS)
		if math.Abs(float64(row.CPI-want)) > 1e-12 {
			t.Errorf("%v: CPI %v, want %v", row.VF, row.CPI, want)
		}
		if row.CPI <= 0 {
			t.Errorf("%v: non-positive CPI for a busy interval", row.VF)
		}
	}
	if tab.Row(arch.VF3) != tab.Rows[2] {
		t.Error("Row accessor misindexed")
	}
}

// TestPredictionTableIdle pins the zero-throughput convention: E/D-space
// coordinates are 0 (JSON-encodable), never +Inf.
func TestPredictionTableIdle(t *testing.T) {
	m, ts := miniCampaign(t)
	idle := ts.IdleTraces[arch.VF3].Intervals
	iv := idle[len(idle)-1]
	rep, err := m.Analyze(iv)
	if err != nil {
		t.Fatal(err)
	}
	tab := m.PredictionTable(1, iv, rep)
	for _, row := range tab.Rows {
		if row.TotalIPS != 0 {
			// The idle trace keeps cores unbound; any throughput means
			// the fixture changed, not that the convention broke.
			t.Skipf("idle interval reports IPS %v", row.TotalIPS)
		}
		if row.CPI != 0 || row.JPerInst != 0 || row.EDP != units.EDP(0) {
			t.Errorf("%v: idle row carries non-zero derived values: %+v", row.VF, row)
		}
		if math.IsInf(float64(row.EDP), 0) || math.IsNaN(float64(row.EDP)) {
			t.Errorf("%v: EDP not finite", row.VF)
		}
	}
}
