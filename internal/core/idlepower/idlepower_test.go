package idlepower

import (
	"math"
	"testing"

	"ppep/internal/arch"
	"ppep/internal/fxsim"
	"ppep/internal/stats"
	"ppep/internal/trace"
	"ppep/internal/units"
)

// syntheticObs builds observations from a known linear law
// P = w1(V)·T + w0(V).
func syntheticObs(w1, w0 func(v float64) float64) []VFObservations {
	var obs []VFObservations
	for _, p := range arch.FX8320VFTable {
		o := VFObservations{Voltage: p.Voltage}
		v := float64(p.Voltage)
		for tk := 300.0; tk <= 340; tk += 2 {
			o.TempK = append(o.TempK, units.Kelvin(tk))
			o.PowerW = append(o.PowerW, units.Watts(w1(v)*tk+w0(v)))
		}
		obs = append(obs, o)
	}
	return obs
}

func TestTrainRecoversLinearLaw(t *testing.T) {
	w1 := func(v float64) float64 { return 0.05 + 0.1*v + 0.02*v*v }
	w0 := func(v float64) float64 { return -10 + 18*v - 2*v*v*v }
	m, err := Train(syntheticObs(w1, w0))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range arch.FX8320VFTable {
		v := float64(p.Voltage)
		for tk := 302.0; tk <= 338; tk += 7 {
			want := w1(v)*tk + w0(v)
			got := m.Estimate(p.Voltage, units.Kelvin(tk))
			if math.Abs(float64(got)-want)/want > 1e-4 {
				t.Errorf("V=%.3f T=%.0f: %v vs %v", p.Voltage, tk, got, want)
			}
		}
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil); err == nil {
		t.Error("no observations accepted")
	}
	if _, err := Train([]VFObservations{{Voltage: 1}}); err == nil {
		t.Error("single VF accepted")
	}
	bad := []VFObservations{
		{Voltage: 1.0, TempK: []units.Kelvin{300}, PowerW: []units.Watts{20, 21}},
		{Voltage: 1.1, TempK: []units.Kelvin{300, 310}, PowerW: []units.Watts{20, 21}},
	}
	if _, err := Train(bad); err == nil {
		t.Error("ragged observations accepted")
	}
	short := []VFObservations{
		{Voltage: 1.0, TempK: []units.Kelvin{300}, PowerW: []units.Watts{20}},
		{Voltage: 1.1, TempK: []units.Kelvin{300, 310}, PowerW: []units.Watts{20, 21}},
	}
	if _, err := Train(short); err == nil {
		t.Error("single-sample VF accepted")
	}
}

func TestTrainTwoStatesReducesDegree(t *testing.T) {
	obs := []VFObservations{
		{Voltage: 1.0, TempK: []units.Kelvin{300, 320, 340}, PowerW: []units.Watts{10, 11, 12}},
		{Voltage: 1.3, TempK: []units.Kelvin{300, 320, 340}, PowerW: []units.Watts{25, 27, 29}},
	}
	m, err := Train(obs)
	if err != nil {
		t.Fatal(err)
	}
	if m.W1.Degree() > 1 || m.W0.Degree() > 1 {
		t.Errorf("degrees %d/%d with two voltage points", m.W1.Degree(), m.W0.Degree())
	}
	// Interpolates the training points.
	if got := m.Estimate(1.0, 320); math.Abs(float64(got-11)) > 1e-6 {
		t.Errorf("estimate %v, want 11", got)
	}
}

// coolingTraces runs the simulator's heat/cool experiment for every VF
// state, as the paper's training procedure does.
func coolingTraces(t *testing.T) map[arch.VFState]*trace.Trace {
	t.Helper()
	out := map[arch.VFState]*trace.Trace{}
	for _, vf := range arch.FX8320VFTable.States() {
		cfg := fxsim.DefaultFX8320Config()
		chip := fxsim.New(cfg)
		tr, err := chip.HeatCool(vf, 40, 80)
		if err != nil {
			t.Fatal(err)
		}
		out[vf] = tr
	}
	return out
}

func TestTrainOnSimulatorMatchesPaperAccuracy(t *testing.T) {
	// Section IV-A: idle model AAE per VF state is 2–4% on the FX-8320.
	// Demand <6% here (the truth is exponential in T and V, the sensor
	// is noisy, and the model is a linear/cubic approximation).
	traces := coolingTraces(t)
	m, err := TrainFromTraces(traces, arch.FX8320VFTable)
	if err != nil {
		t.Fatal(err)
	}
	for vf, tr := range traces {
		s := m.Validate(tr, arch.FX8320VFTable)
		if s.Mean > 0.06 {
			t.Errorf("%v: idle model AAE %.1f%%, want <6%%", vf, 100*s.Mean)
		}
	}
}

func TestModelMonotoneInTemperature(t *testing.T) {
	traces := coolingTraces(t)
	m, err := TrainFromTraces(traces, arch.FX8320VFTable)
	if err != nil {
		t.Fatal(err)
	}
	// Leakage grows with temperature; W1 must be positive in the
	// operating range.
	for _, p := range arch.FX8320VFTable {
		if m.W1.Eval(float64(p.Voltage)) <= 0 {
			t.Errorf("W1(%.3f V) = %v, want positive", p.Voltage, m.W1.Eval(float64(p.Voltage)))
		}
	}
	// And idle power must rise with voltage at fixed temperature.
	prev := units.Watts(0)
	for _, p := range arch.FX8320VFTable {
		cur := m.Estimate(p.Voltage, 320)
		if cur <= prev {
			t.Errorf("idle power not increasing at %.3f V: %v <= %v", p.Voltage, cur, prev)
		}
		prev = cur
	}
}

func TestObservationsFromTrace(t *testing.T) {
	tr := &trace.Trace{Intervals: []trace.Interval{
		{DurS: 0.2, TempK: 320, MeasPowerW: 30,
			PerCoreVF: []arch.VFState{arch.VF3}, Busy: []bool{false},
			Counters: []arch.EventVec{{}}},
	}}
	o := ObservationsFromTrace(tr, arch.FX8320VFTable)
	if len(o.TempK) != 1 || o.TempK[0] != 320 || o.PowerW[0] != 30 {
		t.Errorf("observations %+v", o)
	}
	if o.Voltage != 1.128 {
		t.Errorf("voltage %v, want VF3's 1.128", o.Voltage)
	}
}

func TestValidateSummary(t *testing.T) {
	m := &Model{W1: stats.Poly{0}, W0: stats.Poly{50}} // constant 50 W
	tr := &trace.Trace{Intervals: []trace.Interval{
		{DurS: 0.2, TempK: 320, MeasPowerW: 100,
			PerCoreVF: []arch.VFState{arch.VF5}, Busy: []bool{false},
			Counters: []arch.EventVec{{}}},
	}}
	s := m.Validate(tr, arch.FX8320VFTable)
	if math.Abs(s.Mean-0.5) > 1e-12 {
		t.Errorf("error %v, want 0.5", s.Mean)
	}
}
