// Package idlepower implements the paper's temperature-aware chip idle
// power model (Section IV-A, Equation 2):
//
//	P_idle(V, T) = W_idle1(V)·T + W_idle0(V)
//
// where W_idle1 and W_idle0 are third-order polynomials of voltage. The
// model is trained from heat/cool transients: run heavy load until the
// package reaches steady temperature, stop the work, and record (power,
// temperature) pairs at the VF state under study while it cools
// (Figure 1). A linear fit per VF state gives one (W1, W0) pair; cubic
// fits across the VF table's voltages generalize them to any voltage.
package idlepower

import (
	"fmt"

	"ppep/internal/arch"
	"ppep/internal/stats"
	"ppep/internal/trace"
	"ppep/internal/units"
)

// Model is a trained idle power model.
type Model struct {
	// W1 and W0 are the Equation 2 coefficient polynomials in voltage.
	W1, W0 stats.Poly
}

// Estimate returns the chip idle power at core voltage vV and package
// temperature tK. W1 evaluates to the Equation 2 slope in W/K, W0 to the
// offset in W.
func (m *Model) Estimate(vV units.Volts, tK units.Kelvin) units.Watts {
	return units.WattsPerKelvin(m.W1.Eval(float64(vV))).Times(tK) + units.Watts(m.W0.Eval(float64(vV)))
}

// VFObservations is the cooling-trace data for one VF state.
type VFObservations struct {
	Voltage units.Volts
	TempK   []units.Kelvin
	PowerW  []units.Watts
}

// Train fits the model from per-VF cooling observations. At least two VF
// states are required for the voltage polynomials; with fewer than four,
// the polynomial degree is reduced to keep the fit determined.
func Train(obs []VFObservations) (*Model, error) {
	if len(obs) < 2 {
		return nil, fmt.Errorf("idlepower: need ≥2 VF states, have %d", len(obs))
	}
	var volts, w1s, w0s []float64
	for _, o := range obs {
		if len(o.TempK) != len(o.PowerW) {
			return nil, fmt.Errorf("idlepower: ragged observations at %.3f V", o.Voltage)
		}
		if len(o.TempK) < 2 {
			return nil, fmt.Errorf("idlepower: need ≥2 samples at %.3f V, have %d", o.Voltage, len(o.TempK))
		}
		feats := make([][]float64, len(o.TempK))
		for i, tk := range o.TempK {
			feats[i] = []float64{float64(tk)}
		}
		targets := make([]float64, len(o.PowerW))
		for i, p := range o.PowerW {
			targets[i] = float64(p)
		}
		lin, err := stats.OLSIntercept(feats, targets)
		if err != nil {
			return nil, fmt.Errorf("idlepower: linear fit at %.3f V: %w", o.Voltage, err)
		}
		volts = append(volts, float64(o.Voltage))
		w1s = append(w1s, lin.Weights[0])
		w0s = append(w0s, lin.Intercept)
	}
	deg := 3
	if len(volts) <= deg {
		deg = len(volts) - 1
	}
	w1p, err := stats.FitPoly(volts, w1s, deg)
	if err != nil {
		return nil, fmt.Errorf("idlepower: W1 polynomial: %w", err)
	}
	w0p, err := stats.FitPoly(volts, w0s, deg)
	if err != nil {
		return nil, fmt.Errorf("idlepower: W0 polynomial: %w", err)
	}
	return &Model{W1: w1p, W0: w0p}, nil
}

// ObservationsFromTrace converts a cooling trace (chip idle at one VF
// state) into training observations.
func ObservationsFromTrace(t *trace.Trace, tbl arch.VFTable) VFObservations {
	var o VFObservations
	for _, iv := range t.Intervals {
		o.TempK = append(o.TempK, units.Kelvin(iv.TempK))
		o.PowerW = append(o.PowerW, units.Watts(iv.MeasPowerW))
		o.Voltage = tbl.Point(iv.VF()).Voltage
	}
	return o
}

// TrainFromTraces trains from one cooling trace per VF state.
func TrainFromTraces(traces map[arch.VFState]*trace.Trace, tbl arch.VFTable) (*Model, error) {
	var obs []VFObservations
	for _, vf := range tbl.States() {
		t, ok := traces[vf]
		if !ok {
			continue
		}
		obs = append(obs, ObservationsFromTrace(t, tbl))
	}
	return Train(obs)
}

// Validate computes the per-sample absolute relative errors of the model
// against a cooling trace.
func (m *Model) Validate(t *trace.Trace, tbl arch.VFTable) stats.ErrorSummary {
	var errs []float64
	for _, iv := range t.Intervals {
		v := tbl.Point(iv.VF()).Voltage
		errs = append(errs, stats.AbsPctErr(float64(m.Estimate(v, units.Kelvin(iv.TempK))), iv.MeasPowerW))
	}
	return stats.SummarizeAbsErrors(errs)
}
