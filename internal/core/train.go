package core

import (
	"fmt"

	"ppep/internal/arch"
	"ppep/internal/core/dynpower"
	"ppep/internal/core/idlepower"
	"ppep/internal/core/pgidle"
	"ppep/internal/stats"
	"ppep/internal/trace"
	"ppep/internal/units"
)

// RunTrace is one benchmark combination's measurement trace at one VF
// state.
type RunTrace struct {
	Name  string
	Suite string
	VF    arch.VFState
	Trace *trace.Trace
}

// TrainingSet is the full measurement campaign the paper performs: idle
// heat/cool transients per VF state, benchmark traces at every VF state,
// and (optionally) the power-gating CU sweeps of Figure 4.
type TrainingSet struct {
	IdleTraces map[arch.VFState]*trace.Trace
	Runs       []RunTrace
	// PGSweeps maps each VF state to its Figure 4 busy-CU sweep.
	PGSweeps  map[arch.VFState]pgidle.Sweep
	PGEnabled bool
}

// Train builds the complete PPEP model set from a training campaign.
// The dynamic model's weights come from the reference (top) VF state only;
// α is calibrated on the remaining states — the paper's one-time offline
// effort (Section IV-B1).
func Train(ts TrainingSet, tbl arch.VFTable) (*Models, error) {
	idle, err := idlepower.TrainFromTraces(ts.IdleTraces, tbl)
	if err != nil {
		return nil, fmt.Errorf("core: idle model: %w", err)
	}
	samples := DynSamples(ts.Runs, idle, tbl)
	vRef := tbl.Point(tbl.Top()).Voltage
	dyn, err := dynpower.Train(samples, vRef)
	if err != nil {
		return nil, fmt.Errorf("core: dynamic model: %w", err)
	}
	m := &Models{Table: tbl, Idle: idle, Dyn: dyn, PGEnabled: ts.PGEnabled}
	m.Thermal = FitThermal(ts.Runs)
	if len(ts.PGSweeps) > 0 {
		m.PG = make(map[arch.VFState]pgidle.Decomposition, len(ts.PGSweeps))
		for vf, sweep := range ts.PGSweeps {
			d, err := pgidle.Decompose(sweep)
			if err != nil {
				return nil, fmt.Errorf("core: PG decomposition at %v: %w", vf, err)
			}
			m.PG[vf] = d
		}
	}
	return m, nil
}

// FitThermal fits the steady-state thermal line T ≈ Ambient + Rth·P from
// the campaign's run intervals (long runs sit near thermal equilibrium).
// Returns nil when the fit is degenerate.
func FitThermal(runs []RunTrace) *ThermalFeedback {
	var feats [][]float64
	var temps []float64
	for _, rt := range runs {
		ivs := SteadyIntervals(rt.Trace)
		// Skip the warm-up front half: early intervals are far from
		// equilibrium and would flatten the slope.
		for i := len(ivs) / 2; i < len(ivs); i++ {
			feats = append(feats, []float64{ivs[i].MeasPowerW})
			temps = append(temps, ivs[i].TempK)
		}
	}
	if len(feats) < 10 {
		return nil
	}
	lin, err := stats.OLSIntercept(feats, temps)
	if err != nil || lin.Weights[0] <= 0 {
		return nil
	}
	return &ThermalFeedback{AmbientK: units.Kelvin(lin.Intercept), RthKPerW: units.KelvinPerWatt(lin.Weights[0])}
}

// DynSamples converts run traces into dynamic power training samples:
// chip-summed E1–E9 rates, the rail voltage, and measured-minus-idle
// power. Exposed so cross-validation can re-fit on fold subsets.
func DynSamples(runs []RunTrace, idle *idlepower.Model, tbl arch.VFTable) []dynpower.Sample {
	var out []dynpower.Sample
	for _, rt := range runs {
		for _, iv := range SteadyIntervals(rt.Trace) {
			out = append(out, DynSample(iv, idle, tbl))
		}
	}
	return out
}

// SteadyIntervals returns a trace's intervals without the trailing one.
// A run's final interval is a measurement artifact: threads finish mid
// multiplexing window, so extrapolated counts describe a sliver of
// activity while the power sensor already sees a mostly idle chip.
func SteadyIntervals(tr *trace.Trace) []trace.Interval {
	n := len(tr.Intervals)
	if n <= 1 {
		return tr.Intervals
	}
	return tr.Intervals[:n-1]
}

// DynSample converts one interval into a dynamic power training sample.
func DynSample(iv trace.Interval, idle *idlepower.Model, tbl arch.VFTable) dynpower.Sample {
	v := tbl.Point(iv.VF()).Voltage
	rates := iv.TotalRates()
	dynW := units.Watts(iv.MeasPowerW) - idle.Estimate(v, units.Kelvin(iv.TempK))
	if dynW < 0 {
		dynW = 0
	}
	return dynpower.Sample{Rates: rates.PowerEvents(), Voltage: v, DynW: dynW}
}
