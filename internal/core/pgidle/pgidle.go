// Package pgidle implements the paper's power-gating-aware idle power
// decomposition and per-core idle attribution (Section IV-D).
//
// The Figure 4 experiment fixes the VF state and sweeps the number of
// busy compute units from 0 to N running the steady bench_A
// microbenchmark, with power gating disabled and enabled. The pairwise
// gaps isolate the components:
//
//	gap(k busy CUs)  = (N−k)·P_idle(CU)          for k ≥ 1
//	gap(idle)        = N·P_idle(CU) + P_idle(NB)
//	P_idle(Base)     = gated-idle power (always-on remainder)
//
// Per-core idle attribution then follows Equations 7 (PG enabled) and 8
// (PG disabled).
package pgidle

import (
	"fmt"

	"ppep/internal/units"
)

// Decomposition is the extracted idle power structure at one VF state.
type Decomposition struct {
	PidleCU   units.Watts // one compute unit's idle power
	PidleNB   units.Watts // the north bridge's idle power
	PidleBase units.Watts // un-gateable base power
}

// Sweep is the Figure 4 measurement at one VF state: measured chip power
// with k busy CUs (index k, 0..N) for both PG settings.
type Sweep struct {
	PGOff []units.Watts // len N+1
	PGOn  []units.Watts // len N+1
}

// Decompose extracts the idle power components from a sweep.
func Decompose(s Sweep) (Decomposition, error) {
	n := len(s.PGOff) - 1
	if n < 1 || len(s.PGOn) != len(s.PGOff) {
		return Decomposition{}, fmt.Errorf("pgidle: sweep needs matching PGOff/PGOn arrays over 0..N busy CUs")
	}
	var d Decomposition
	// Average the per-CU estimate over the k = 1..N−1 cases (the k=N
	// case has zero gap by construction and carries no information).
	var sum float64
	var cnt int
	for k := 1; k < n; k++ {
		gap := s.PGOff[k] - s.PGOn[k]
		idleCUs := float64(n - k)
		if idleCUs > 0 {
			sum += float64(gap) / idleCUs
			cnt++
		}
	}
	if cnt == 0 {
		return Decomposition{}, fmt.Errorf("pgidle: sweep too small to isolate P_idle(CU)")
	}
	d.PidleCU = units.Watts(sum / float64(cnt))
	idleGap := s.PGOff[0] - s.PGOn[0]
	d.PidleNB = idleGap - units.Watts(float64(n)*float64(d.PidleCU))
	if d.PidleNB < 0 {
		d.PidleNB = 0
	}
	d.PidleBase = s.PGOn[0]
	return d, nil
}

// PerCoreIdleW returns the idle power attributed to one busy core
// (Equations 7 and 8). numCUs is the chip's CU count, busyInCU the busy
// cores sharing the core's CU (m), busyInChip the busy cores chip-wide
// (n). Zero busy cores attribute nothing.
func (d Decomposition) PerCoreIdleW(pgEnabled bool, numCUs, busyInCU, busyInChip int) units.Watts {
	if busyInChip <= 0 || busyInCU <= 0 {
		return 0
	}
	if pgEnabled {
		// Equation 7: busy cores in a CU share that CU's idle power; all
		// busy cores share NB + base.
		return units.Watts(float64(d.PidleCU)/float64(busyInCU)) +
			units.Watts(float64(d.PidleNB+d.PidleBase)/float64(busyInChip))
	}
	// Equation 8: nothing is gated; all busy cores share everything.
	return units.Watts((float64(numCUs)*float64(d.PidleCU) + float64(d.PidleNB) + float64(d.PidleBase)) / float64(busyInChip))
}

// ChipIdleW returns the chip-level idle power implied by the
// decomposition for a given number of busy CUs.
func (d Decomposition) ChipIdleW(pgEnabled bool, numCUs, busyCUs int) units.Watts {
	if !pgEnabled {
		return units.Watts(float64(numCUs)*float64(d.PidleCU)) + d.PidleNB + d.PidleBase
	}
	if busyCUs <= 0 {
		return d.PidleBase
	}
	return units.Watts(float64(busyCUs)*float64(d.PidleCU)) + d.PidleNB + d.PidleBase
}
