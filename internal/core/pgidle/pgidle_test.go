package pgidle

import (
	"math"
	"testing"

	"ppep/internal/units"
)

// synthSweep constructs a Figure 4 sweep from known components: each busy
// CU adds dynW of dynamic power; idle CUs are gated when PG is on.
func synthSweep(n int, pidleCU, pidleNB, pidleBase, dynW float64) Sweep {
	var s Sweep
	for k := 0; k <= n; k++ {
		off := float64(n)*pidleCU + pidleNB + pidleBase + float64(k)*dynW
		var on float64
		if k == 0 {
			on = pidleBase
		} else {
			on = float64(k)*pidleCU + pidleNB + pidleBase + float64(k)*dynW
		}
		s.PGOff = append(s.PGOff, units.Watts(off))
		s.PGOn = append(s.PGOn, units.Watts(on))
	}
	return s
}

func TestDecomposeExact(t *testing.T) {
	s := synthSweep(4, 4.2, 6.0, 3.0, 9.5)
	d, err := Decompose(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(d.PidleCU-4.2)) > 1e-9 {
		t.Errorf("PidleCU = %v", d.PidleCU)
	}
	if math.Abs(float64(d.PidleNB-6.0)) > 1e-9 {
		t.Errorf("PidleNB = %v", d.PidleNB)
	}
	if math.Abs(float64(d.PidleBase-3.0)) > 1e-9 {
		t.Errorf("PidleBase = %v", d.PidleBase)
	}
}

func TestDecomposeValidation(t *testing.T) {
	if _, err := Decompose(Sweep{PGOff: []units.Watts{1}, PGOn: []units.Watts{1}}); err == nil {
		t.Error("degenerate sweep accepted")
	}
	if _, err := Decompose(Sweep{PGOff: []units.Watts{1, 2, 3}, PGOn: []units.Watts{1, 2}}); err == nil {
		t.Error("mismatched arrays accepted")
	}
	// Two entries (N=1) has no informative middle case.
	if _, err := Decompose(Sweep{PGOff: []units.Watts{5, 9}, PGOn: []units.Watts{2, 9}}); err == nil {
		t.Error("N=1 sweep accepted")
	}
}

func TestDecomposeClampsNegativeNB(t *testing.T) {
	// Measurement noise can push the NB estimate negative; it must clamp.
	s := synthSweep(4, 4.0, 0.0, 3.0, 9.0)
	s.PGOff[0] -= 2 // noise
	d, err := Decompose(s)
	if err != nil {
		t.Fatal(err)
	}
	if d.PidleNB < 0 {
		t.Errorf("PidleNB = %v", d.PidleNB)
	}
}

func TestPerCoreIdleEquation7(t *testing.T) {
	d := Decomposition{PidleCU: 4, PidleNB: 6, PidleBase: 2}
	// PG on, 2 busy cores in the CU, 4 busy chip-wide:
	// 4/2 + (6+2)/4 = 2 + 2 = 4.
	got := d.PerCoreIdleW(true, 4, 2, 4)
	if math.Abs(float64(got-4)) > 1e-12 {
		t.Errorf("Eq7 = %v, want 4", got)
	}
}

func TestPerCoreIdleEquation8(t *testing.T) {
	d := Decomposition{PidleCU: 4, PidleNB: 6, PidleBase: 2}
	// PG off, 4 CUs, 4 busy cores: (4·4+6+2)/4 = 6.
	got := d.PerCoreIdleW(false, 4, 1, 4)
	if math.Abs(float64(got-6)) > 1e-12 {
		t.Errorf("Eq8 = %v, want 6", got)
	}
}

func TestPerCoreIdleNoBusyCores(t *testing.T) {
	d := Decomposition{PidleCU: 4, PidleNB: 6, PidleBase: 2}
	if d.PerCoreIdleW(true, 4, 0, 0) != 0 {
		t.Error("no busy cores must attribute nothing")
	}
}

func TestPerCoreSumsToChipIdle(t *testing.T) {
	// Attribution is conservative: summing per-core shares over all busy
	// cores recovers the chip idle power.
	d := Decomposition{PidleCU: 4.2, PidleNB: 6.0, PidleBase: 3.0}
	const numCUs = 4
	// 3 busy CUs with 2, 1, 1 busy cores respectively → n = 4.
	busyPerCU := []int{2, 1, 1, 0}
	n := 0
	busyCUs := 0
	for _, m := range busyPerCU {
		n += m
		if m > 0 {
			busyCUs++
		}
	}
	for _, pg := range []bool{true, false} {
		var sum units.Watts
		for _, m := range busyPerCU {
			for c := 0; c < m; c++ {
				sum += d.PerCoreIdleW(pg, numCUs, m, n)
			}
		}
		want := d.ChipIdleW(pg, numCUs, busyCUs)
		if math.Abs(float64(sum-want)) > 1e-9 {
			t.Errorf("pg=%v: per-core sum %v, chip idle %v", pg, sum, want)
		}
	}
}

func TestChipIdle(t *testing.T) {
	d := Decomposition{PidleCU: 4, PidleNB: 6, PidleBase: 2}
	if got := d.ChipIdleW(true, 4, 0); got != 2 {
		t.Errorf("fully gated = %v, want base only", got)
	}
	if got := d.ChipIdleW(true, 4, 2); got != 2*4+6+2 {
		t.Errorf("2 busy CUs = %v", got)
	}
	if got := d.ChipIdleW(false, 4, 0); got != 4*4+6+2 {
		t.Errorf("PG off = %v", got)
	}
	// PG off ignores busyCUs.
	if d.ChipIdleW(false, 4, 3) != d.ChipIdleW(false, 4, 0) {
		t.Error("PG-off idle must not depend on busy CUs")
	}
}
