package fxsim

import (
	"sync/atomic"

	"ppep/internal/arch"
	"ppep/internal/powertruth"
	"ppep/internal/uarch"
	"ppep/internal/units"
	"ppep/internal/workload"
)

// The batched tick engine: fast-forward over quiescent runs.
//
// PPEP's interval-mechanistic model makes per-tick deltas constant between
// event boundaries: while no thread finishes, no phase boundary is
// crossed, no operating point changes, and the memory-utilization feedback
// is inert, every tick of the reference path computes exactly the numbers
// it computed the tick before. The engine exploits that by running ONE
// reference tick with capture hooks enabled (probeTick), checking a set of
// sufficient quiescence conditions, and then replaying the captured
// per-tick deltas (fastTick) until a guard trips or a mutator invalidates
// the run.
//
// The fast path is bit-exact, not approximately equal: it replays the
// identical floating-point additions in the identical order the reference
// path would have performed (thread Done accumulation, mux accumulation,
// interval sums, the utilization EMA), and it re-runs per tick the pieces
// that genuinely change every tick — the leakage/thermal loop and the
// sensor sampling — using the same cached coefficients the reference path
// reads. See DESIGN.md ("The batched tick engine") for the event-boundary
// taxonomy and the proof obligations.
const probeBackoff = 16

// engine holds the memoized per-tick deltas of a sealed quiescent run plus
// the probe/backoff state machine. All slices are allocated once in init;
// the tick-rate paths are allocation-free.
type engine struct {
	// disabled pins the chip to the reference path for its whole life
	// (Config.ReferenceTick or the ppep_reftick build tag).
	disabled bool
	// neverFast marks configurations whose per-tick state can change
	// without any Chip mutator running: hardware boost reevaluates the
	// operating point from temperature every tick, and register-level
	// counter files must observe every individual Step.
	neverFast bool
	// valid marks a sealed run: fastTick replays it until a guard trips.
	valid bool
	// capturing arms the capture hooks inside the reference tick().
	capturing bool
	// backoff counts reference ticks to run before the next probe, so a
	// workload that never quiesces pays one failed probe every
	// probeBackoff ticks rather than one per tick.
	backoff int

	// Busy set at seal time. busyList[:nBusy] holds the core indices; the
	// per-core capture slices below are indexed by core number.
	nBusy    int
	busyList []int

	// Per-core lookahead and captured per-tick deltas.
	phase       []*workload.Phase
	doneBound   []float64
	inst        []float64
	events      []arch.EventVec
	dram        []float64
	finishedCap []bool

	// Chip-level captured per-tick values.
	dynW       []units.Watts // copy of the sealed tick's CoreDynW
	cuLeakVolt []float64     // per-CU leakage voltage factor
	cuGatedM   []bool        // per-CU gating at seal
	nbGatedM   bool
	nbDynW     units.Watts
	housekW    units.Watts
	utilX      float64 // per-tick utilization sample feeding the EMA

	stats engineCounters
}

// engineCounters are the live tick-execution counters. The fields are
// atomics because the service mode reads them from HTTP handlers
// (/metrics via Daemon.EngineStats) while the sampling goroutine ticks
// the chip; a plain uint64 increment here is a torn-read data race.
type engineCounters struct {
	fastTicks      atomic.Uint64
	referenceTicks atomic.Uint64
	probes         atomic.Uint64
	seals          atomic.Uint64
}

// EngineStats is a plain-value snapshot of how the chip's ticks were
// executed. FastTicks + ReferenceTicks equals the total tick count;
// Probes counts capture ticks (a subset of ReferenceTicks) and Seals the
// probes that produced a valid run.
type EngineStats struct {
	FastTicks      uint64
	ReferenceTicks uint64
	Probes         uint64
	Seals          uint64
}

// EngineStats snapshots the chip's tick-engine counters. Safe to call
// concurrently with a goroutine ticking the chip.
func (c *Chip) EngineStats() EngineStats {
	return EngineStats{
		FastTicks:      c.eng.stats.fastTicks.Load(),
		ReferenceTicks: c.eng.stats.referenceTicks.Load(),
		Probes:         c.eng.stats.probes.Load(),
		Seals:          c.eng.stats.seals.Load(),
	}
}

// init sizes the engine for the chip's topology and latches the
// structural disqualifiers.
func (e *engine) init(cfg *Config, nCores, nCUs int) {
	e.disabled = cfg.ReferenceTick || buildReferenceTick
	e.neverFast = cfg.BoostEnabled
	e.busyList = make([]int, nCores)
	e.phase = make([]*workload.Phase, nCores)
	e.doneBound = make([]float64, nCores)
	e.inst = make([]float64, nCores)
	e.events = make([]arch.EventVec, nCores)
	e.dram = make([]float64, nCores)
	e.finishedCap = make([]bool, nCores)
	e.dynW = make([]units.Watts, nCores)
	e.cuLeakVolt = make([]float64, nCUs)
	e.cuGatedM = make([]bool, nCUs)
}

// invalidate drops any sealed run and clears the probe backoff: every
// chip mutation is an event boundary, and the state right after one is as
// good a probe point as any.
//
//ppep:hotpath
//ppep:inline
func (e *engine) invalidate() {
	e.valid = false
	e.backoff = 0
}

// armed reports whether the next tick should probe for a quiescent run.
//
//ppep:hotpath
//ppep:inline
func (e *engine) armed() bool {
	return !e.disabled && !e.neverFast && e.backoff == 0
}

// capture records one busy core's tick result during a probe tick.
//
//ppep:hotpath
//ppep:inline
func (e *engine) capture(i int, r uarch.TickResult) {
	e.inst[i] = r.Instructions
	e.events[i] = r.Events
	e.dram[i] = r.DRAMAccesses
	e.finishedCap[i] = r.Finished
}

// captureChip records the chip-level per-tick values during a probe tick.
//
//ppep:hotpath
//ppep:inline
func (e *engine) captureChip(nbDynW, housekW units.Watts, utilX float64) {
	e.nbDynW = nbDynW
	e.housekW = housekW
	e.utilX = utilX
}

// probeTick runs one reference tick with capture hooks armed and seals a
// quiescent run when the sufficient conditions hold:
//
//  1. Every busy thread is in a zero-noise phase with a known lower bound
//     on the phase boundary (uarch.Core.StepUntilEvent).
//  2. No thread finished during the capture tick.
//  3. The utilization feedback is inert: either the EMA is at an exact
//     floating-point fixed point, or no busy thread touches DRAM (then
//     CPI is exactly independent of the utilization, because the DRAM
//     latency term is multiplied by the same product that produced the
//     captured zero).
//
// On failure the engine backs off for probeBackoff reference ticks.
//
//ppep:hotpath
func (c *Chip) probeTick() {
	e := &c.eng
	e.nBusy = 0
	for i := range c.threads {
		if !c.Busy(i) {
			continue
		}
		la := c.threads[i].StepUntilEvent()
		if !la.Steady || c.threads[i].Done >= la.DoneBound {
			e.backoff = probeBackoff
			c.tick()
			return
		}
		e.busyList[e.nBusy] = i
		e.nBusy++
		e.phase[i] = la.Phase
		e.doneBound[i] = la.DoneBound
	}

	u0 := c.lastUtil
	e.capturing = true
	c.tick()
	e.capturing = false
	e.stats.probes.Add(1)

	dramZero := true
	for k := 0; k < e.nBusy; k++ {
		i := e.busyList[k]
		if e.finishedCap[i] {
			e.backoff = probeBackoff
			return
		}
		if e.dram[i] != 0 {
			dramZero = false
		}
	}
	if c.lastUtil != u0 && !(e.utilX == 0 && dramZero) {
		e.backoff = probeBackoff
		return
	}

	// Seal: memoize the chip-level per-tick deltas. The coefficient memo
	// is warm (tick just read it), so cuCoeffs is a pure lookup here.
	copy(e.dynW, c.scratchDyn)
	for cu := 0; cu < c.cfg.Topology.NumCUs; cu++ {
		e.cuLeakVolt[cu] = c.cuCoeffs(cu, c.railVoltage(cu), c.cuFreq(cu)).leakVolt
		e.cuGatedM[cu] = c.cuGated(cu)
	}
	e.nbGatedM = c.nbGated()
	e.valid = true
	e.stats.seals.Add(1)
}

// fastTick replays one tick of a sealed quiescent run. The guard pass
// runs over every busy thread BEFORE any state is applied, so a trip
// falls back to the reference path with no half-applied tick. The replay
// performs exactly the floating-point operations the reference tick would
// have: identical mux accumulation calls, identical breakdown summation
// order, identical EMA expression, identical sensor-sampling cadence.
//
//ppep:hotpath
func (c *Chip) fastTick() {
	e := &c.eng
	for k := 0; k < e.nBusy; k++ {
		i := e.busyList[k]
		th := &c.threads[i]
		if th.Done >= e.doneBound[i] {
			// The cheap bound is a deliberate under-approximation; the
			// exact condition is pointer identity of the current phase.
			// Re-derive it, and either extend the bound or trip.
			la := th.StepUntilEvent()
			if la.Phase != e.phase[i] || !la.Steady || th.Done >= la.DoneBound {
				e.valid = false
				c.tick()
				return
			}
			e.doneBound[i] = la.DoneBound
		}
		// Mirror of the reference finish clamp in uarch.Core.Step: same
		// expression, same values, so the trip decision is exact.
		if e.inst[i] >= th.Bench.Instructions-th.Done {
			e.valid = false
			c.tick()
			return
		}
	}

	if c.tickCount == 0 {
		c.snapshotVF()
	}
	for k := 0; k < e.nBusy; k++ {
		i := e.busyList[k]
		c.threads[i].Done += e.inst[i]
		c.mux[i].Accumulate(e.events[i], TickS*1000)
	}

	// Leakage and thermals genuinely change every tick; recompute them
	// from the same cached inputs the reference path reads. The slice
	// re-headers give the prove pass a common length (all three are
	// sized to NumCUs in init), so the sweep carries no bounds checks —
	// same calls, same order, bit-identical results.
	tempScale := c.cfg.Power.LeakTempScale(c.therm.TempK())
	leak := c.scratchLeak[:len(e.cuLeakVolt)]
	gated := e.cuGatedM[:len(e.cuLeakVolt)]
	//ppep:nobc
	for cu, lv := range e.cuLeakVolt {
		leak[cu] = c.cfg.Power.CULeakageWWith(lv, tempScale, gated[cu])
	}
	b := powertruth.Breakdown{
		CoreDynW: e.dynW,
		CULeakW:  c.scratchLeak,
		NBDynW:   e.nbDynW,
		NBLeakW:  c.cfg.Power.NBLeakageWWith(c.nbLeakVolt, tempScale, e.nbGatedM),
		BaseW:    c.cfg.Power.BaseW,
		HousekW:  e.housekW,
	}
	totalW := b.TotalW()
	c.therm.Step(totalW, TickS)
	c.lastUtil = 0.6*c.lastUtil + 0.4*e.utilX

	c.trueSum += float64(totalW)
	c.trueCoreSum += float64(b.CoreTotalW())
	c.trueNBSum += float64(b.NBTotalW())
	dynSum := c.coreDynSum[:len(e.dynW)]
	//ppep:nobc
	for i, w := range e.dynW {
		dynSum[i] += w
	}
	c.tickCount++
	c.tickIdx++
	c.timeS += TickS
	if c.tickIdx%int64(arch.PowerSamplePeriodMS) == 0 {
		c.sensorSum += c.sensor.Sample(float64(totalW))
		c.sensorN++
	}
	e.stats.fastTicks.Add(1)
}
