package fxsim

import (
	"fmt"

	"ppep/internal/arch"
	"ppep/internal/trace"
	"ppep/internal/units"
	"ppep/internal/workload"
)

// Placement decides which hardware cores a run's threads occupy.
type Placement int

const (
	// PlaceScatter spreads threads one-per-CU first (the paper pins one
	// benchmark instance per compute unit in Section V).
	PlaceScatter Placement = iota
	// PlaceCompact fills CUs fully before moving to the next.
	PlaceCompact
)

// PlaceRun binds every thread of the run onto the chip. It returns the
// chosen core indices in binding order.
func (c *Chip) PlaceRun(r workload.Run, p Placement, restart bool) ([]int, error) {
	order := c.coreOrder(p)
	need := r.TotalThreads()
	if need > len(order) {
		return nil, fmt.Errorf("fxsim: run %s needs %d threads, chip has %d cores", r.Name, need, len(order))
	}
	var used []int
	next := 0
	for _, m := range r.Members {
		for t := 0; t < m.Threads; t++ {
			core := order[next]
			next++
			if err := c.Bind(core, m.Bench, restart); err != nil {
				return nil, err
			}
			used = append(used, core)
		}
	}
	return used, nil
}

// coreOrder returns core indices in placement order.
func (c *Chip) coreOrder(p Placement) []int {
	n := len(c.threads)
	if p == PlaceCompact {
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		return order
	}
	// Scatter: first core of each CU, then second, ...
	var order []int
	per := c.cfg.Topology.CoresPerCU
	for lane := 0; lane < per; lane++ {
		for cu := 0; cu < c.cfg.Topology.NumCUs; cu++ {
			order = append(order, cu*per+lane)
		}
	}
	return order
}

// Controller receives each closed interval and may adjust the chip's
// P-states before the next one. The PPEP daemon and the baseline iterative
// governor both plug in here.
type Controller interface {
	Decide(chip *Chip, iv trace.Interval)
}

// RunOpts configures one measured run.
type RunOpts struct {
	// VF is the initial P-state for every CU.
	VF arch.VFState
	// MaxTimeS bounds the run's simulated duration (0 = until all
	// threads finish; required to be >0 when Restart is set).
	MaxTimeS float64
	// Restart re-binds threads when they finish, making the run
	// time-bounded rather than work-bounded.
	Restart bool
	// Placement for the run's threads.
	Placement Placement
	// WarmTempK starts the package at the given temperature (0 = start
	// from the thermal model's current state).
	WarmTempK units.Kelvin
	// Controller, when non-nil, is consulted after every interval.
	Controller Controller
}

// Collect runs the workload to completion (or MaxTimeS) and returns the
// full measurement trace at the paper's 200 ms interval cadence.
func (c *Chip) Collect(r workload.Run, opts RunOpts) (*trace.Trace, error) {
	if opts.Restart && opts.MaxTimeS <= 0 {
		return nil, fmt.Errorf("fxsim: Restart requires MaxTimeS")
	}
	if opts.VF != 0 {
		if err := c.SetAllPStates(opts.VF); err != nil {
			return nil, err
		}
	}
	if opts.WarmTempK > 0 {
		c.SetTempK(opts.WarmTempK)
	}
	c.UnbindAll()
	// Align interval boundaries with run start.
	c.ReadInterval()
	if _, err := c.PlaceRun(r, opts.Placement, opts.Restart); err != nil {
		return nil, err
	}

	tr := &trace.Trace{Run: r.Name, Suite: r.Suite, Platform: c.cfg.Topology.Name}
	ticksPerInterval := arch.DecisionIntervalMS
	start := c.timeS
	for {
		c.TickN(ticksPerInterval)
		iv := c.ReadInterval()
		tr.Intervals = append(tr.Intervals, iv)
		if opts.Controller != nil {
			opts.Controller.Decide(c, iv)
		}
		if !opts.Restart && c.AllIdle() {
			break
		}
		if opts.MaxTimeS > 0 && c.timeS-start >= opts.MaxTimeS {
			break
		}
	}
	c.UnbindAll()
	return tr, nil
}

// HeatCool performs the Figure 1 experiment: heat the chip under full
// load for heatS seconds at the given VF state, then idle for coolS
// seconds, returning only the cooling-phase trace (idle power vs
// temperature at that state).
func (c *Chip) HeatCool(vf arch.VFState, heatS, coolS float64) (*trace.Trace, error) {
	if err := c.SetAllPStates(c.cfg.Topology.VF.Top()); err != nil {
		return nil, err
	}
	c.UnbindAll()
	// Heat with a steady all-core load.
	heater := workload.Run{Name: "heater", Suite: "micro"}
	heater.Members = append(heater.Members, workload.Member{
		Bench: workload.BenchA(), Threads: c.cfg.Topology.NumCores(),
	})
	if _, err := c.PlaceRun(heater, PlaceCompact, true); err != nil {
		return nil, err
	}
	// The float accumulation decides the tick count (kept for bit-exact
	// compatibility with recorded traces), but the ticks themselves run
	// batched.
	heatTicks := 0
	for t := 0.0; t < heatS; t += TickS {
		heatTicks++
	}
	c.TickN(heatTicks)
	c.UnbindAll()
	c.ReadInterval() // discard the heating interval

	// Cool while idle at the requested state.
	if err := c.SetAllPStates(vf); err != nil {
		return nil, err
	}
	tr := &trace.Trace{Run: fmt.Sprintf("heatcool-%v", vf), Suite: "micro", Platform: c.cfg.Topology.Name}
	ticks := int(coolS / TickS)
	for done := 0; done < ticks; {
		n := arch.DecisionIntervalMS
		if rem := ticks - done; rem < n {
			n = rem
		}
		c.TickN(n)
		done += n
		if n == arch.DecisionIntervalMS {
			tr.Intervals = append(tr.Intervals, c.ReadInterval())
		}
	}
	return tr, nil
}
