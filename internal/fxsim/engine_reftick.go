//go:build ppep_reftick

package fxsim

// buildReferenceTick reports whether the ppep_reftick build tag pins the
// whole module to the reference per-tick path (it does here).
const buildReferenceTick = true
