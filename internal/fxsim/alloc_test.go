package fxsim

import (
	"sync"
	"testing"

	"ppep/internal/arch"
	"ppep/internal/trace"
	"ppep/internal/workload"
)

// busyChip builds a chip with every core running a thread long enough
// never to finish during an alloc measurement.
func busyChip(t testing.TB) *Chip {
	t.Helper()
	cfg := DefaultFX8320Config()
	cfg.IdealSensor = true
	c := New(cfg)
	b := workload.BenchA()
	long := *b
	long.Instructions = 1e18
	for i := 0; i < cfg.Topology.NumCores(); i++ {
		if err := c.Bind(i, &long, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.SetAllPStates(arch.VF5); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestTickZeroAlloc pins the tick loop's allocation-free guarantee: the
// power breakdown, VF snapshot, and all model coefficients must come
// from chip-owned buffers and caches, busy or idle.
func TestTickZeroAlloc(t *testing.T) {
	t.Run("busy", func(t *testing.T) {
		c := busyChip(t)
		if n := testing.AllocsPerRun(200, c.Tick); n != 0 {
			t.Errorf("busy Tick allocates %.1f times per call, want 0", n)
		}
	})
	t.Run("idle", func(t *testing.T) {
		cfg := DefaultFX8320Config()
		cfg.IdealSensor = true
		c := New(cfg)
		if n := testing.AllocsPerRun(200, c.Tick); n != 0 {
			t.Errorf("idle Tick allocates %.1f times per call, want 0", n)
		}
	})
	t.Run("gated", func(t *testing.T) {
		cfg := DefaultFX8320Config()
		cfg.IdealSensor = true
		cfg.PowerGating = true
		c := New(cfg)
		if n := testing.AllocsPerRun(200, c.Tick); n != 0 {
			t.Errorf("gated Tick allocates %.1f times per call, want 0", n)
		}
	})
}

// TestReadIntervalAllocs pins the interval-collection allocation budget:
// exactly one exact-capacity allocation per handed-out slice (PerCoreVF,
// Counters, Busy, TrueCoreDynW) and nothing from append growth. The
// record must own its slices — the daemon retains intervals in its
// history ring long after the chip has moved on — so these four cannot
// be pooled away; the former append-growth path cost 10 allocs and
// ~1.6 KB per interval (visible in BenchmarkTickN before this budget).
func TestReadIntervalAllocs(t *testing.T) {
	c := busyChip(t)
	n := testing.AllocsPerRun(100, func() {
		c.TickN(arch.DecisionIntervalMS)
		c.ReadInterval()
	})
	if n != 4 {
		t.Errorf("TickN+ReadInterval allocates %.1f times per interval, want exactly 4", n)
	}
}

// TestReadIntervalIntoAllocs pins the reuse path: handing the same
// record back every interval reuses its four slices, so the steady
// state allocates nothing at all — the contract the fleet engine's
// per-node scratch depends on. The values must also be bit-identical
// to ReadInterval's (checked against a parallel chip with the same
// seed and workload).
func TestReadIntervalIntoAllocs(t *testing.T) {
	c := busyChip(t)
	var iv trace.Interval
	c.TickN(arch.DecisionIntervalMS)
	c.ReadIntervalInto(&iv) // warm-up: first call sizes the slices
	n := testing.AllocsPerRun(100, func() {
		c.TickN(arch.DecisionIntervalMS)
		c.ReadIntervalInto(&iv)
	})
	if n != 0 {
		t.Errorf("TickN+ReadIntervalInto allocates %.1f times per interval on reuse, want 0", n)
	}
}

// TestReadIntervalIntoMatchesReadInterval pins bit-exact equivalence of
// the two collection paths across a run with VF changes and idle cores.
func TestReadIntervalIntoMatchesReadInterval(t *testing.T) {
	a := busyChip(t)
	b := busyChip(t)
	var reused trace.Interval
	states := []arch.VFState{arch.VF5, arch.VF2, arch.VF4}
	for k := 0; k < 6; k++ {
		s := states[k%len(states)]
		if err := a.SetAllPStates(s); err != nil {
			t.Fatal(err)
		}
		if err := b.SetAllPStates(s); err != nil {
			t.Fatal(err)
		}
		if k == 4 {
			a.Unbind(3)
			b.Unbind(3)
		}
		a.TickN(arch.DecisionIntervalMS)
		b.TickN(arch.DecisionIntervalMS)
		want := a.ReadInterval()
		b.ReadIntervalInto(&reused)
		if want.Fold(trace.FingerprintSeed) != reused.Fold(trace.FingerprintSeed) {
			t.Fatalf("interval %d: ReadIntervalInto diverges from ReadInterval", k)
		}
	}
}

// TestConfigNBNotShared guards the NB deep copy in New: two chips built
// from the same Config value must not share mutable NB state, and
// SetNBPoint must never write through to the caller's Config. Run under
// -race this doubles as a concurrent-aliasing regression test — before
// the deep copy, one chip's SetNBPoint raced another chip's tick loop.
func TestConfigNBNotShared(t *testing.T) {
	cfg := DefaultFX8320Config()
	origFreq := cfg.NB.FreqGHz
	origVolt := cfg.NB.VoltageV

	a := New(cfg)
	b := New(cfg)
	bindOne := func(c *Chip) {
		bench := *workload.BenchA()
		bench.Instructions = 1e18
		if err := c.Bind(0, &bench, false); err != nil {
			t.Fatal(err)
		}
	}
	bindOne(a)
	bindOne(b)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		a.TickN(400)
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			b.SetNBPoint(arch.VFPoint{Voltage: 1.0875, Freq: 1.8})
			b.TickN(8)
			b.SetNBPoint(arch.VFPoint{Voltage: 1.175, Freq: 2.2})
		}
	}()
	wg.Wait()

	if cfg.NB.FreqGHz != origFreq || cfg.NB.VoltageV != origVolt {
		t.Errorf("caller's Config.NB mutated to (%.4f V, %.2f GHz), want (%.4f V, %.2f GHz)",
			cfg.NB.VoltageV, cfg.NB.FreqGHz, origVolt, origFreq)
	}
	if a.cfg.NB == b.cfg.NB || a.cfg.NB == cfg.NB {
		t.Error("chips share an NB instance with each other or the caller")
	}
}
