package fxsim

import (
	"sync"
	"testing"

	"ppep/internal/arch"
	"ppep/internal/workload"
)

// busyChip builds a chip with every core running a thread long enough
// never to finish during an alloc measurement.
func busyChip(t testing.TB) *Chip {
	t.Helper()
	cfg := DefaultFX8320Config()
	cfg.IdealSensor = true
	c := New(cfg)
	b := workload.BenchA()
	long := *b
	long.Instructions = 1e18
	for i := 0; i < cfg.Topology.NumCores(); i++ {
		if err := c.Bind(i, &long, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.SetAllPStates(arch.VF5); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestTickZeroAlloc pins the tick loop's allocation-free guarantee: the
// power breakdown, VF snapshot, and all model coefficients must come
// from chip-owned buffers and caches, busy or idle.
func TestTickZeroAlloc(t *testing.T) {
	t.Run("busy", func(t *testing.T) {
		c := busyChip(t)
		if n := testing.AllocsPerRun(200, c.Tick); n != 0 {
			t.Errorf("busy Tick allocates %.1f times per call, want 0", n)
		}
	})
	t.Run("idle", func(t *testing.T) {
		cfg := DefaultFX8320Config()
		cfg.IdealSensor = true
		c := New(cfg)
		if n := testing.AllocsPerRun(200, c.Tick); n != 0 {
			t.Errorf("idle Tick allocates %.1f times per call, want 0", n)
		}
	})
	t.Run("gated", func(t *testing.T) {
		cfg := DefaultFX8320Config()
		cfg.IdealSensor = true
		cfg.PowerGating = true
		c := New(cfg)
		if n := testing.AllocsPerRun(200, c.Tick); n != 0 {
			t.Errorf("gated Tick allocates %.1f times per call, want 0", n)
		}
	})
}

// TestReadIntervalAllocs pins the interval-collection allocation budget:
// exactly one exact-capacity allocation per handed-out slice (PerCoreVF,
// Counters, Busy, TrueCoreDynW) and nothing from append growth. The
// record must own its slices — the daemon retains intervals in its
// history ring long after the chip has moved on — so these four cannot
// be pooled away; the former append-growth path cost 10 allocs and
// ~1.6 KB per interval (visible in BenchmarkTickN before this budget).
func TestReadIntervalAllocs(t *testing.T) {
	c := busyChip(t)
	n := testing.AllocsPerRun(100, func() {
		c.TickN(arch.DecisionIntervalMS)
		c.ReadInterval()
	})
	if n != 4 {
		t.Errorf("TickN+ReadInterval allocates %.1f times per interval, want exactly 4", n)
	}
}

// TestConfigNBNotShared guards the NB deep copy in New: two chips built
// from the same Config value must not share mutable NB state, and
// SetNBPoint must never write through to the caller's Config. Run under
// -race this doubles as a concurrent-aliasing regression test — before
// the deep copy, one chip's SetNBPoint raced another chip's tick loop.
func TestConfigNBNotShared(t *testing.T) {
	cfg := DefaultFX8320Config()
	origFreq := cfg.NB.FreqGHz
	origVolt := cfg.NB.VoltageV

	a := New(cfg)
	b := New(cfg)
	bindOne := func(c *Chip) {
		bench := *workload.BenchA()
		bench.Instructions = 1e18
		if err := c.Bind(0, &bench, false); err != nil {
			t.Fatal(err)
		}
	}
	bindOne(a)
	bindOne(b)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		a.TickN(400)
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			b.SetNBPoint(arch.VFPoint{Voltage: 1.0875, Freq: 1.8})
			b.TickN(8)
			b.SetNBPoint(arch.VFPoint{Voltage: 1.175, Freq: 2.2})
		}
	}()
	wg.Wait()

	if cfg.NB.FreqGHz != origFreq || cfg.NB.VoltageV != origVolt {
		t.Errorf("caller's Config.NB mutated to (%.4f V, %.2f GHz), want (%.4f V, %.2f GHz)",
			cfg.NB.VoltageV, cfg.NB.FreqGHz, origVolt, origFreq)
	}
	if a.cfg.NB == b.cfg.NB || a.cfg.NB == cfg.NB {
		t.Error("chips share an NB instance with each other or the caller")
	}
}
