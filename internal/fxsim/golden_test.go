package fxsim

import (
	"testing"

	"ppep/internal/arch"
	"ppep/internal/trace"
	"ppep/internal/workload"
)

// The golden fingerprints below were recorded from the straightforward
// (allocation-per-tick, uncached) tick-loop implementation. They pin the
// simulator's determinism guarantee: for a fixed SensorSeed, every
// optimization of the tick loop must reproduce bit-identical
// trace.Interval sequences — counters, powers, temperatures, VF
// snapshots — across all operating modes (shared rail, power gating,
// boost, per-CU planes, restart, idle transients).
//
// If one of these fails after an intentional *behavioural* change to the
// simulator physics, re-record it and say so in the commit; a failure
// after a performance-only change is a regression.
var goldenCollect = []struct {
	name string
	want uint64
	run  func(t *testing.T) *trace.Trace
}{
	{
		name: "shared-rail 433x4 @VF3",
		want: 0x3fa780921d47346b,
		run: func(t *testing.T) *trace.Trace {
			cfg := DefaultFX8320Config()
			chip := New(cfg)
			tr, err := chip.Collect(workload.MultiInstance("433", 4),
				RunOpts{VF: arch.VF3, WarmTempK: 315, Placement: PlaceScatter})
			if err != nil {
				t.Fatal(err)
			}
			return tr
		},
	},
	{
		name: "power-gated 433x1 @VF2",
		want: 0xa921e1427fb03389,
		run: func(t *testing.T) *trace.Trace {
			cfg := DefaultFX8320Config()
			cfg.PowerGating = true
			cfg.SensorSeed = 7
			chip := New(cfg)
			tr, err := chip.Collect(workload.MultiInstance("433", 1),
				RunOpts{VF: arch.VF2, Placement: PlaceScatter})
			if err != nil {
				t.Fatal(err)
			}
			return tr
		},
	},
	{
		name: "boost 458x1 @VF5",
		want: 0x5b920da60a1b14fe,
		run: func(t *testing.T) *trace.Trace {
			cfg := DefaultFX8320Config()
			cfg.BoostEnabled = true
			cfg.SensorSeed = 11
			chip := New(cfg)
			tr, err := chip.Collect(workload.MultiInstance("458", 1),
				RunOpts{VF: arch.VF5, WarmTempK: 310, Placement: PlaceScatter})
			if err != nil {
				t.Fatal(err)
			}
			return tr
		},
	},
	{
		name: "per-CU planes restart 433x2 @VF4",
		want: 0x545e68a8edbbb47b,
		run: func(t *testing.T) *trace.Trace {
			cfg := DefaultFX8320Config()
			cfg.PerCUPlanes = true
			cfg.SensorSeed = 13
			chip := New(cfg)
			tr, err := chip.Collect(workload.MultiInstance("433", 2),
				RunOpts{VF: arch.VF4, Restart: true, MaxTimeS: 2, Placement: PlaceCompact})
			if err != nil {
				t.Fatal(err)
			}
			return tr
		},
	},
	{
		name: "heatcool transient @VF4",
		want: 0xcf31f202c61e7994,
		run: func(t *testing.T) *trace.Trace {
			cfg := DefaultFX8320Config()
			cfg.SensorSeed = 17
			chip := New(cfg)
			tr, err := chip.HeatCool(arch.VF4, 40, 90)
			if err != nil {
				t.Fatal(err)
			}
			return tr
		},
	},
}

// TestGoldenCollectEquivalence verifies that fixed-seed runs reproduce the
// recorded interval fingerprints exactly (see goldenCollect).
func TestGoldenCollectEquivalence(t *testing.T) {
	for _, tc := range goldenCollect {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			tr := tc.run(t)
			if got := tr.Fingerprint(); got != tc.want {
				t.Errorf("fingerprint %#x, want %#x: fixed-seed run diverged from the golden interval sequence", got, tc.want)
			}
		})
	}
}
