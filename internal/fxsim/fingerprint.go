package fxsim

import "ppep/internal/fingerprint"

// Fingerprint returns a content hash of the complete platform
// configuration — topology, power truth, NB parameters, gating/boost
// switches, and the sensor seed. Two Configs fingerprint equal iff every
// exported field (followed through the Power and NB pointers) is equal,
// so the simulation-trace cache can use it as the platform component of
// a cell's identity: any config change invalidates the cell.
func (c Config) Fingerprint() uint64 {
	return fingerprint.Of(c)
}
