package fxsim

import "ppep/internal/fingerprint"

// Fingerprint returns a content hash of the complete platform
// configuration — topology, power truth, NB parameters, gating/boost
// switches, and the sensor seed. Two Configs fingerprint equal iff every
// exported field (followed through the Power and NB pointers) is equal,
// so the simulation-trace cache can use it as the platform component of
// a cell's identity: any config change invalidates the cell.
//
// ReferenceTick is excluded: the reference and batched engines produce
// bit-identical traces (the equivalence harness pins this), so both may
// share cached cells.
func (c Config) Fingerprint() uint64 {
	c.ReferenceTick = false
	return fingerprint.Of(c)
}
