package fxsim

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"ppep/internal/arch"
	"ppep/internal/trace"
	"ppep/internal/units"
	"ppep/internal/workload"
)

// The tests here pin the batched engine's core contract: for any sequence
// of chip operations, the fast path and the reference path produce
// bit-identical interval sequences and final chip state. Test files are
// outside the determinism lint's scope, so the fuzz harness may use a
// seeded math/rand directly.

// longSteady returns a BenchSteady clone too long to finish in a test.
func longSteady() *workload.Benchmark {
	b := *workload.BenchSteady()
	b.Instructions = 1e18
	return &b
}

// shortSteady returns a BenchSteady clone that finishes after roughly
// 300 ticks at the top state, so completions land mid-run.
func shortSteady() *workload.Benchmark {
	b := *workload.BenchSteady()
	b.Instructions = 2e9
	return &b
}

// steadyPhased is a zero-noise multi-phase looping benchmark: phase
// boundaries and the final completion land inside quiescent runs, so the
// engine's lookahead bound and guard logic are exercised for real.
func steadyPhased() *workload.Benchmark {
	return &workload.Benchmark{
		Name:         "steady_phased",
		Suite:        "micro",
		Class:        workload.Balanced,
		Instructions: 4e9,
		Loops:        3,
		Phases: []workload.Phase{
			{
				Name: "a", Weight: 0.5, BaseCPI: 0.6,
				PerInst: workload.Rates{Uops: 1.2, ICFetch: 0.25, DCAccess: 0.40, L2Req: 0.010, Branch: 0.10, Mispred: 0.0010},
				MLP:     1,
			},
			{
				Name: "b", Weight: 0.5, BaseCPI: 1.1,
				PerInst: workload.Rates{Uops: 1.4, ICFetch: 0.30, DCAccess: 0.45, L2Req: 0.020, Branch: 0.15, Mispred: 0.0020, L2Miss: 0.001},
				MLP:     1.1,
			},
		},
	}
}

// steadyDRAM is zero-noise but DRAM-active: the utilization EMA keeps
// moving, so the engine must refuse to seal (or seal only at an exact
// floating-point fixed point) — either way the output must not budge.
func steadyDRAM() *workload.Benchmark {
	return &workload.Benchmark{
		Name:         "steady_dram",
		Suite:        "micro",
		Class:        workload.MemBound,
		Instructions: 1e18,
		Phases: []workload.Phase{{
			Name: "stream", Weight: 1, BaseCPI: 0.9,
			PerInst:     workload.Rates{Uops: 1.3, ICFetch: 0.25, DCAccess: 0.50, L2Req: 0.030, Branch: 0.08, Mispred: 0.0015, L2Miss: 0.0080},
			L3MissRatio: 0.6,
			MLP:         2,
		}},
	}
}

// checkEquivalent drives the same operation sequence through a
// reference-pinned chip and a batched-engine chip and requires identical
// intervals and final observable state.
func checkEquivalent(t *testing.T, cfg Config, drive func(c *Chip) []trace.Interval) EngineStats {
	t.Helper()
	rc := cfg
	rc.ReferenceTick = true
	fc := cfg
	fc.ReferenceTick = false
	ref, fast := New(rc), New(fc)

	rIvs := drive(ref)
	fIvs := drive(fast)
	if len(rIvs) != len(fIvs) {
		t.Fatalf("interval count: reference %d, fast %d", len(rIvs), len(fIvs))
	}
	for i := range rIvs {
		if !reflect.DeepEqual(rIvs[i], fIvs[i]) {
			t.Fatalf("interval %d diverged:\nreference: %+v\nfast:      %+v", i, rIvs[i], fIvs[i])
		}
	}
	if ref.TimeS() != fast.TimeS() {
		t.Fatalf("TimeS diverged: reference %v, fast %v", ref.TimeS(), fast.TimeS())
	}
	if ref.TempK() != fast.TempK() {
		t.Fatalf("TempK diverged: reference %v, fast %v", ref.TempK(), fast.TempK())
	}
	if st := ref.EngineStats(); st.FastTicks != 0 || st.Probes != 0 {
		t.Fatalf("reference chip ran the fast engine: %+v", st)
	}
	return fast.EngineStats()
}

// bindAll binds n threads of b starting at core 0.
func bindAll(t testing.TB, c *Chip, b *workload.Benchmark, n int, restart bool) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := c.Bind(i, b, restart); err != nil {
			t.Fatal(err)
		}
	}
}

// intervals advances n decision intervals, reading each.
func intervals(c *Chip, n int) []trace.Interval {
	out := make([]trace.Interval, 0, n)
	for i := 0; i < n; i++ {
		c.TickN(arch.DecisionIntervalMS)
		out = append(out, c.ReadInterval())
	}
	return out
}

func TestEngineEquivalence(t *testing.T) {
	long := longSteady()
	short := shortSteady()
	phased := steadyPhased()
	dram := steadyDRAM()

	ideal := func(mut func(*Config)) Config {
		cfg := DefaultFX8320Config()
		cfg.IdealSensor = true
		if mut != nil {
			mut(&cfg)
		}
		return cfg
	}

	t.Run("steady-saturated", func(t *testing.T) {
		st := checkEquivalent(t, ideal(nil), func(c *Chip) []trace.Interval {
			bindAll(t, c, long, c.Topology().NumCores(), false)
			return intervals(c, 10)
		})
		if !buildReferenceTick && st.FastTicks < 1500 {
			t.Errorf("fast path barely engaged on the canonical steady workload: %+v", st)
		}
	})

	t.Run("noisy-sensor", func(t *testing.T) {
		cfg := DefaultFX8320Config()
		cfg.SensorSeed = 5
		st := checkEquivalent(t, cfg, func(c *Chip) []trace.Interval {
			bindAll(t, c, long, 4, false)
			return intervals(c, 6)
		})
		if !buildReferenceTick && st.FastTicks == 0 {
			t.Errorf("fast path never engaged: %+v", st)
		}
	})

	t.Run("finish-and-restart", func(t *testing.T) {
		st := checkEquivalent(t, ideal(nil), func(c *Chip) []trace.Interval {
			bindAll(t, c, short, 4, false)
			if err := c.Bind(6, short, true); err != nil {
				t.Fatal(err)
			}
			if err := c.Bind(7, short, true); err != nil {
				t.Fatal(err)
			}
			return intervals(c, 5)
		})
		if !buildReferenceTick && st.FastTicks == 0 {
			t.Errorf("fast path never engaged: %+v", st)
		}
	})

	t.Run("phase-crossings", func(t *testing.T) {
		st := checkEquivalent(t, ideal(nil), func(c *Chip) []trace.Interval {
			bindAll(t, c, phased, c.Topology().NumCores(), false)
			if err := c.SetAllPStates(arch.VF3); err != nil {
				t.Fatal(err)
			}
			return intervals(c, 8)
		})
		if !buildReferenceTick && st.FastTicks == 0 {
			t.Errorf("fast path never engaged: %+v", st)
		}
	})

	t.Run("pg-idle-and-exit", func(t *testing.T) {
		st := checkEquivalent(t, ideal(func(cfg *Config) { cfg.PowerGating = true }), func(c *Chip) []trace.Interval {
			out := intervals(c, 2) // fully gated
			bindAll(t, c, long, 2, false)
			out = append(out, intervals(c, 2)...)
			c.UnbindAll()
			return append(out, intervals(c, 2)...)
		})
		if !buildReferenceTick && st.FastTicks == 0 {
			t.Errorf("fast path never engaged while gated idle: %+v", st)
		}
	})

	t.Run("mutators-mid-interval", func(t *testing.T) {
		checkEquivalent(t, ideal(func(cfg *Config) { cfg.PerCUPlanes = true }), func(c *Chip) []trace.Interval {
			bindAll(t, c, long, 3, false)
			var out []trace.Interval
			c.TickN(137)
			if err := c.SetPState(0, arch.VF2); err != nil {
				t.Fatal(err)
			}
			c.TickN(63)
			out = append(out, c.ReadInterval())
			c.SetNBPoint(arch.VFPoint{Voltage: 1.0875, Freq: 1.8})
			c.TickN(200)
			out = append(out, c.ReadInterval())
			c.SetTempK(330)
			c.TickN(200)
			return append(out, c.ReadInterval())
		})
	})

	t.Run("dram-feedback", func(t *testing.T) {
		checkEquivalent(t, ideal(nil), func(c *Chip) []trace.Interval {
			bindAll(t, c, dram, c.Topology().NumCores(), false)
			return intervals(c, 5)
		})
	})

	t.Run("boost-never-fast", func(t *testing.T) {
		st := checkEquivalent(t, ideal(func(cfg *Config) { cfg.BoostEnabled = true }), func(c *Chip) []trace.Interval {
			bindAll(t, c, long, 2, false)
			return intervals(c, 4)
		})
		if st.FastTicks != 0 || st.Probes != 0 {
			t.Errorf("boost-enabled chip must stay on the reference path: %+v", st)
		}
	})

	t.Run("mux-disabled", func(t *testing.T) {
		checkEquivalent(t, ideal(func(cfg *Config) { cfg.MuxDisabled = true }), func(c *Chip) []trace.Interval {
			bindAll(t, c, long, 5, false)
			return intervals(c, 4)
		})
	})
}

// TestEngineFuzz drives randomized operation schedules — random
// configurations, benchmarks with and without jitter, loops and short
// instruction counts so finishes and phase wraps land mid-run, mutators
// at arbitrary tick offsets — through both engines and requires identical
// output. The schedule is generated once per seed and applied to both
// chips verbatim.
func TestEngineFuzz(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		rng := rand.New(rand.NewSource(seed))

		cfg := DefaultFX8320Config()
		cfg.PowerGating = rng.Float64() < 0.3
		cfg.PerCUPlanes = rng.Float64() < 0.3
		cfg.MuxDisabled = rng.Float64() < 0.2
		cfg.IdealSensor = rng.Float64() < 0.5
		cfg.BoostEnabled = rng.Float64() < 0.15
		cfg.SensorSeed = seed

		benches := make([]*workload.Benchmark, 1+rng.Intn(3))
		for bi := range benches {
			nPhases := 1 + rng.Intn(3)
			phases := make([]workload.Phase, nPhases)
			w := 0.0
			for pi := range phases {
				branch := 0.05 + 0.2*rng.Float64()
				l2req := 0.03 * rng.Float64()
				noise := 0.0
				if rng.Float64() < 0.5 {
					noise = 0.05 * rng.Float64()
				}
				l3miss := 0.0
				if rng.Float64() < 0.5 {
					l3miss = rng.Float64()
				}
				phases[pi] = workload.Phase{
					Name:    "p",
					Weight:  0.2 + rng.Float64(),
					BaseCPI: 0.3 + 1.5*rng.Float64(),
					PerInst: workload.Rates{
						Uops:     1 + rng.Float64(),
						FPU:      0.2 * rng.Float64(),
						ICFetch:  0.1 + 0.3*rng.Float64(),
						DCAccess: 0.2 + 0.4*rng.Float64(),
						L2Req:    l2req,
						Branch:   branch,
						Mispred:  branch * 0.02 * rng.Float64(),
						L2Miss:   l2req * rng.Float64(),
						Prefetch: 0.01 * rng.Float64(),
						TLBWalk:  0.005 * rng.Float64(),
					},
					L3MissRatio: l3miss,
					MLP:         1 + 2*rng.Float64(),
					Noise:       noise,
				}
				w += phases[pi].Weight
			}
			for pi := range phases {
				phases[pi].Weight /= w
			}
			benches[bi] = &workload.Benchmark{
				Name:         "fuzz",
				Suite:        "micro",
				Class:        workload.Balanced,
				Instructions: math.Pow(10, 8+2.5*rng.Float64()),
				Loops:        1 + rng.Intn(4),
				Phases:       phases,
			}
		}

		vf := []arch.VFState{arch.VF1, arch.VF2, arch.VF3, arch.VF4, arch.VF5}
		nbPts := []arch.VFPoint{
			{Voltage: 1.175, Freq: 2.2},
			{Voltage: 1.0875, Freq: 1.8},
		}
		nCores := cfg.Topology.NumCores()
		nCUs := cfg.Topology.NumCUs
		var ops []func(c *Chip, out *[]trace.Interval)
		for o := 0; o < 40; o++ {
			switch p := rng.Float64(); {
			case p < 0.50:
				n := 1 + rng.Intn(300)
				ops = append(ops, func(c *Chip, out *[]trace.Interval) { c.TickN(n) })
			case p < 0.65:
				ops = append(ops, func(c *Chip, out *[]trace.Interval) { *out = append(*out, c.ReadInterval()) })
			case p < 0.80:
				core := rng.Intn(nCores)
				b := benches[rng.Intn(len(benches))]
				restart := rng.Float64() < 0.3
				ops = append(ops, func(c *Chip, out *[]trace.Interval) {
					// Binding a busy core fails identically on both chips.
					_ = c.Bind(core, b, restart)
				})
			case p < 0.88:
				core := rng.Intn(nCores)
				ops = append(ops, func(c *Chip, out *[]trace.Interval) { c.Unbind(core) })
			case p < 0.95:
				cu := rng.Intn(nCUs)
				s := vf[rng.Intn(len(vf))]
				ops = append(ops, func(c *Chip, out *[]trace.Interval) {
					if err := c.SetPState(cu, s); err != nil {
						t.Fatal(err)
					}
				})
			case p < 0.97:
				pt := nbPts[rng.Intn(len(nbPts))]
				ops = append(ops, func(c *Chip, out *[]trace.Interval) { c.SetNBPoint(pt) })
			default:
				tk := units.Kelvin(300 + 40*rng.Float64())
				ops = append(ops, func(c *Chip, out *[]trace.Interval) { c.SetTempK(tk) })
			}
		}

		drive := func(c *Chip) []trace.Interval {
			var out []trace.Interval
			for _, op := range ops {
				op(c, &out)
			}
			out = append(out, c.ReadInterval())
			return out
		}

		rc := cfg
		rc.ReferenceTick = true
		ref, fast := New(rc), New(cfg)
		rIvs := drive(ref)
		fIvs := drive(fast)
		if len(rIvs) != len(fIvs) {
			t.Fatalf("seed %d: interval count %d vs %d", seed, len(rIvs), len(fIvs))
		}
		for i := range rIvs {
			if !reflect.DeepEqual(rIvs[i], fIvs[i]) {
				t.Errorf("seed %d: interval %d diverged:\nreference: %+v\nfast:      %+v", seed, i, rIvs[i], fIvs[i])
				break
			}
		}
		if ref.TimeS() != fast.TimeS() || ref.TempK() != fast.TempK() {
			t.Errorf("seed %d: final state diverged: TimeS %v vs %v, TempK %v vs %v",
				seed, ref.TimeS(), fast.TimeS(), ref.TempK(), fast.TempK())
		}
	}
}

// steadyChip mirrors busyChip with the zero-noise workload, so the
// batched engine can seal a quiescent run.
func steadyChip(t testing.TB) *Chip {
	t.Helper()
	cfg := DefaultFX8320Config()
	cfg.IdealSensor = true
	c := New(cfg)
	long := longSteady()
	for i := 0; i < cfg.Topology.NumCores(); i++ {
		if err := c.Bind(i, long, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.SetAllPStates(arch.VF5); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestFastTickZeroAlloc pins the fast path's allocation-free guarantee,
// mirroring TestTickZeroAlloc for the reference path.
func TestFastTickZeroAlloc(t *testing.T) {
	if buildReferenceTick {
		t.Skip("ppep_reftick build: every chip is pinned to the reference path")
	}
	t.Run("busy", func(t *testing.T) {
		c := steadyChip(t)
		c.TickN(64)
		if st := c.EngineStats(); st.FastTicks == 0 {
			t.Fatalf("engine never sealed a run on the steady workload: %+v", st)
		}
		if n := testing.AllocsPerRun(200, func() { c.TickN(20) }); n != 0 {
			t.Errorf("fast TickN allocates %.1f times per call, want 0", n)
		}
	})
	t.Run("idle", func(t *testing.T) {
		cfg := DefaultFX8320Config()
		cfg.IdealSensor = true
		c := New(cfg)
		c.TickN(64)
		if st := c.EngineStats(); st.FastTicks == 0 {
			t.Fatalf("engine never sealed the idle run: %+v", st)
		}
		if n := testing.AllocsPerRun(200, func() { c.TickN(20) }); n != 0 {
			t.Errorf("idle fast TickN allocates %.1f times per call, want 0", n)
		}
	})
}
