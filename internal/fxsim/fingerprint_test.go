package fxsim

import "testing"

func TestConfigFingerprint(t *testing.T) {
	a := DefaultFX8320Config()
	b := DefaultFX8320Config()
	// Default constructors allocate fresh Power/NB structs; equal content
	// behind distinct pointers must fingerprint equal.
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical configs fingerprint differently")
	}
	if a.Fingerprint() == DefaultPhenomIIConfig().Fingerprint() {
		t.Fatal("FX and Phenom configs fingerprint equal")
	}

	b.SensorSeed++
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("sensor seed change not reflected in fingerprint")
	}

	b = DefaultFX8320Config()
	b.PowerGating = true
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("PowerGating change not reflected in fingerprint")
	}

	// A change behind the shared Power pointer must change the hash.
	b = DefaultFX8320Config()
	b.Power.BaseW += 0.001
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("power-truth change behind pointer not reflected in fingerprint")
	}

	b = DefaultFX8320Config()
	b.NB.BandwidthGBs *= 2
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("NB change behind pointer not reflected in fingerprint")
	}
}
