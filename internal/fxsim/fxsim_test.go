package fxsim

import (
	"math"
	"testing"

	"ppep/internal/arch"
	"ppep/internal/trace"
	"ppep/internal/workload"
)

func newChip(t *testing.T, mut func(*Config)) *Chip {
	t.Helper()
	cfg := DefaultFX8320Config()
	cfg.IdealSensor = true // most tests want exact power
	if mut != nil {
		mut(&cfg)
	}
	return New(cfg)
}

func TestChipInitialState(t *testing.T) {
	c := newChip(t, nil)
	if c.TimeS() != 0 {
		t.Error("time must start at zero")
	}
	for cu := 0; cu < 4; cu++ {
		if c.PState(cu) != arch.VF5 {
			t.Errorf("CU %d starts at %v", cu, c.PState(cu))
		}
	}
	if !c.AllIdle() {
		t.Error("chip must start idle")
	}
	if c.TempK() < 295 || c.TempK() > 305 {
		t.Errorf("start temp %v", c.TempK())
	}
}

func TestSetPStateValidation(t *testing.T) {
	c := newChip(t, nil)
	if err := c.SetPState(0, arch.VF2); err != nil {
		t.Fatal(err)
	}
	if c.PState(0) != arch.VF2 {
		t.Error("P-state not applied")
	}
	if err := c.SetPState(9, arch.VF2); err == nil {
		t.Error("bad CU accepted")
	}
	if err := c.SetPState(0, arch.VFState(9)); err == nil {
		t.Error("bad state accepted")
	}
}

func TestBindValidation(t *testing.T) {
	c := newChip(t, nil)
	b := workload.BenchA()
	if err := c.Bind(0, b, false); err != nil {
		t.Fatal(err)
	}
	if err := c.Bind(0, b, false); err == nil {
		t.Error("double bind accepted")
	}
	if err := c.Bind(-1, b, false); err == nil {
		t.Error("bad core accepted")
	}
	if !c.Busy(0) || c.Busy(1) {
		t.Error("busy flags wrong")
	}
	c.Unbind(0)
	if c.Busy(0) {
		t.Error("unbind failed")
	}
}

func TestScatterPlacement(t *testing.T) {
	c := newChip(t, nil)
	r := workload.MultiInstance("433", 4)
	used, err := c.PlaceRun(r, PlaceScatter, false)
	if err != nil {
		t.Fatal(err)
	}
	// One instance per CU: cores 0, 2, 4, 6.
	want := []int{0, 2, 4, 6}
	for i, core := range used {
		if core != want[i] {
			t.Errorf("thread %d on core %d, want %d", i, core, want[i])
		}
	}
}

func TestCompactPlacement(t *testing.T) {
	c := newChip(t, nil)
	r := workload.Run{Name: "x", Members: []workload.Member{{Bench: workload.BenchA(), Threads: 3}}}
	used, err := c.PlaceRun(r, PlaceCompact, false)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2}
	for i, core := range used {
		if core != want[i] {
			t.Errorf("thread %d on core %d, want %d", i, core, want[i])
		}
	}
}

func TestPlacementOverflow(t *testing.T) {
	c := newChip(t, nil)
	r := workload.Run{Name: "x", Members: []workload.Member{{Bench: workload.BenchA(), Threads: 9}}}
	if _, err := c.PlaceRun(r, PlaceScatter, false); err == nil {
		t.Error("9 threads on 8 cores accepted")
	}
}

func TestCollectProducesIntervals(t *testing.T) {
	c := newChip(t, nil)
	r := shortRun("quick", 2e9, 1)
	tr, err := c.Collect(r, RunOpts{VF: arch.VF5})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Intervals) == 0 {
		t.Fatal("no intervals")
	}
	for _, iv := range tr.Intervals {
		if math.Abs(iv.DurS-0.2) > 1e-9 {
			t.Errorf("interval duration %v", iv.DurS)
		}
		if len(iv.Counters) != 8 {
			t.Errorf("counter slices %d", len(iv.Counters))
		}
		if iv.MeasPowerW <= 0 || iv.TruePowerW <= 0 {
			t.Error("power missing")
		}
		if iv.TempK < 295 {
			t.Errorf("temp %v", iv.TempK)
		}
	}
	// All instructions retired exactly once.
	got := tr.TotalInstructions()
	if math.Abs(got-2e9)/2e9 > 0.05 {
		t.Errorf("instructions %v, want ≈2e9 (multiplexing extrapolation)", got)
	}
}

func TestLowerVFRunsSlower(t *testing.T) {
	r := shortRun("speed", 12e9, 1)
	c5 := newChip(t, nil)
	tr5, err := c5.Collect(r, RunOpts{VF: arch.VF5})
	if err != nil {
		t.Fatal(err)
	}
	c1 := newChip(t, nil)
	tr1, err := c1.Collect(r, RunOpts{VF: arch.VF1})
	if err != nil {
		t.Fatal(err)
	}
	if tr1.DurationS() <= tr5.DurationS() {
		t.Errorf("VF1 %vs not slower than VF5 %vs", tr1.DurationS(), tr5.DurationS())
	}
	// CPU-bound work scales nearly linearly with frequency (3.5/1.4 = 2.5).
	ratio := tr1.DurationS() / tr5.DurationS()
	if ratio < 2.0 || ratio > 2.7 {
		t.Errorf("slowdown %v, want near 2.5 for CPU-bound work", ratio)
	}
}

func TestLowerVFUsesLessPower(t *testing.T) {
	r := shortRun("power", 3e9, 4)
	p := map[arch.VFState]float64{}
	for _, vf := range []arch.VFState{arch.VF1, arch.VF3, arch.VF5} {
		c := newChip(t, nil)
		tr, err := c.Collect(r, RunOpts{VF: vf})
		if err != nil {
			t.Fatal(err)
		}
		p[vf] = tr.AvgMeasPowerW()
	}
	if !(p[arch.VF1] < p[arch.VF3] && p[arch.VF3] < p[arch.VF5]) {
		t.Errorf("power not monotone in VF: %v", p)
	}
}

func TestMemoryContentionSlowsDown(t *testing.T) {
	// Four milc instances contend in the NB; per-instance throughput
	// must drop versus running alone (the Figure 8 observation).
	solo := newChip(t, nil)
	trSolo, err := solo.Collect(workload.MultiInstance("433", 1), RunOpts{VF: arch.VF5})
	if err != nil {
		t.Fatal(err)
	}
	quad := newChip(t, nil)
	trQuad, err := quad.Collect(workload.MultiInstance("433", 4), RunOpts{VF: arch.VF5})
	if err != nil {
		t.Fatal(err)
	}
	if trQuad.DurationS() <= trSolo.DurationS()*1.02 {
		t.Errorf("4-up milc %vs vs solo %vs: no visible contention",
			trQuad.DurationS(), trSolo.DurationS())
	}
}

func TestCPUBoundNoContention(t *testing.T) {
	solo := newChip(t, nil)
	trSolo, err := solo.Collect(workload.MultiInstance("458", 1), RunOpts{VF: arch.VF5})
	if err != nil {
		t.Fatal(err)
	}
	quad := newChip(t, nil)
	trQuad, err := quad.Collect(workload.MultiInstance("458", 4), RunOpts{VF: arch.VF5})
	if err != nil {
		t.Fatal(err)
	}
	ratio := trQuad.DurationS() / trSolo.DurationS()
	if ratio > 1.05 {
		t.Errorf("CPU-bound sjeng slowed %v× by neighbours", ratio)
	}
}

func TestPowerGatingReducesIdlePower(t *testing.T) {
	idlePower := func(pg bool) float64 {
		c := newChip(t, func(cfg *Config) { cfg.PowerGating = pg })
		for i := 0; i < 400; i++ {
			c.Tick()
		}
		iv := c.ReadInterval()
		return iv.TruePowerW
	}
	open := idlePower(false)
	gated := idlePower(true)
	if gated >= open {
		t.Errorf("gated idle %v not below open idle %v", gated, open)
	}
	// Figure 4: the idle gap is 4×Pidle(CU)+Pidle(NB) — substantial.
	if (open-gated)/open < 0.3 {
		t.Errorf("gating saves only %v%%", 100*(open-gated)/open)
	}
}

func TestPowerGatingPerCUSteps(t *testing.T) {
	// Busy-CU sweep at VF5 (the Figure 4 experiment): each idle CU adds
	// a visible power step when PG is enabled.
	power := func(busyCUs int) float64 {
		c := newChip(t, func(cfg *Config) { cfg.PowerGating = true })
		for cu := 0; cu < busyCUs; cu++ {
			if err := c.Bind(cu*2, workload.BenchA(), true); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 400; i++ {
			c.Tick()
		}
		return c.ReadInterval().TruePowerW
	}
	prev := power(0)
	for n := 1; n <= 4; n++ {
		cur := power(n)
		if cur <= prev {
			t.Errorf("%d busy CUs: power %v not above %v", n, cur, prev)
		}
		prev = cur
	}
}

func TestRestartKeepsRunAlive(t *testing.T) {
	c := newChip(t, nil)
	r := shortRun("restart", 5e8, 1) // finishes in well under a second
	tr, err := c.Collect(r, RunOpts{VF: arch.VF5, MaxTimeS: 3, Restart: true})
	if err != nil {
		t.Fatal(err)
	}
	if tr.DurationS() < 2.9 {
		t.Errorf("restart run ended early at %vs", tr.DurationS())
	}
	// Work kept flowing to the end.
	last := tr.Intervals[len(tr.Intervals)-1]
	if last.Instructions() <= 0 {
		t.Error("no instructions in final interval")
	}
}

func TestRestartRequiresMaxTime(t *testing.T) {
	c := newChip(t, nil)
	if _, err := c.Collect(shortRun("x", 1e9, 1), RunOpts{Restart: true}); err == nil {
		t.Error("restart without MaxTimeS accepted")
	}
}

func TestHeatCoolTransient(t *testing.T) {
	c := newChip(t, nil)
	tr, err := c.HeatCool(arch.VF5, 30, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Intervals) < 100 {
		t.Fatalf("cooling trace too short: %d intervals", len(tr.Intervals))
	}
	first := tr.Intervals[0]
	last := tr.Intervals[len(tr.Intervals)-1]
	if first.TempK <= last.TempK {
		t.Errorf("chip did not cool: %v → %v", first.TempK, last.TempK)
	}
	if first.TruePowerW <= last.TruePowerW {
		t.Errorf("idle power did not fall with temperature: %v → %v",
			first.TruePowerW, last.TruePowerW)
	}
	// Temperature must have actually risen during heating.
	if first.TempK < 310 {
		t.Errorf("heating too weak: start of cooling at %v K", first.TempK)
	}
}

func TestControllerIsInvoked(t *testing.T) {
	c := newChip(t, nil)
	ctl := &countingController{}
	tr, err := c.Collect(shortRun("ctl", 3e9, 1), RunOpts{VF: arch.VF5, Controller: ctl})
	if err != nil {
		t.Fatal(err)
	}
	if ctl.calls != len(tr.Intervals) {
		t.Errorf("controller called %d times for %d intervals", ctl.calls, len(tr.Intervals))
	}
}

func TestControllerCanChangeVF(t *testing.T) {
	c := newChip(t, nil)
	ctl := &downshiftController{target: arch.VF2}
	tr, err := c.Collect(shortRun("shift", 6e9, 1), RunOpts{VF: arch.VF5, Controller: ctl})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Intervals) < 3 {
		t.Fatal("trace too short to observe shift")
	}
	first := tr.Intervals[0]
	last := tr.Intervals[len(tr.Intervals)-1]
	if first.VF() != arch.VF5 {
		t.Errorf("first interval at %v", first.VF())
	}
	if last.VF() != arch.VF2 {
		t.Errorf("last interval at %v, want VF2", last.VF())
	}
}

func TestPerCUPlanesVoltage(t *testing.T) {
	shared := newChip(t, nil)
	if err := shared.SetPState(0, arch.VF5); err != nil {
		t.Fatal(err)
	}
	for cu := 1; cu < 4; cu++ {
		if err := shared.SetPState(cu, arch.VF1); err != nil {
			t.Fatal(err)
		}
	}
	// Shared rail: every CU at the VF5 voltage.
	if v := shared.railVoltage(3); v != 1.320 {
		t.Errorf("shared rail voltage %v, want 1.320", v)
	}
	planes := newChip(t, func(cfg *Config) { cfg.PerCUPlanes = true })
	if err := planes.SetPState(0, arch.VF5); err != nil {
		t.Fatal(err)
	}
	if err := planes.SetPState(3, arch.VF1); err != nil {
		t.Fatal(err)
	}
	if v := planes.railVoltage(3); v != 0.888 {
		t.Errorf("per-CU voltage %v, want 0.888", v)
	}
}

func TestPhenomPlatform(t *testing.T) {
	cfg := DefaultPhenomIIConfig()
	cfg.IdealSensor = true
	c := New(cfg)
	if got := c.Topology().NumCores(); got != 6 {
		t.Fatalf("cores = %d", got)
	}
	r := shortRun("phenom", 2e9, 1)
	tr, err := c.Collect(r, RunOpts{VF: arch.VF4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Intervals) == 0 || tr.AvgMeasPowerW() <= 0 {
		t.Error("Phenom run produced no usable trace")
	}
}

func TestNBPointOverride(t *testing.T) {
	c := newChip(t, nil)
	c.SetNBPoint(arch.NBLo)
	r := workload.MultiInstance("433", 1)
	trLo, err := c.Collect(r, RunOpts{VF: arch.VF5})
	if err != nil {
		t.Fatal(err)
	}
	c2 := newChip(t, nil)
	trHi, err := c2.Collect(r, RunOpts{VF: arch.VF5})
	if err != nil {
		t.Fatal(err)
	}
	if trLo.DurationS() <= trHi.DurationS() {
		t.Error("NB low state should slow memory-bound work")
	}
}

// ---- helpers ----

func shortRun(name string, instructions float64, threads int) workload.Run {
	b := &workload.Benchmark{
		Name:         name,
		Suite:        "micro",
		Instructions: instructions,
		Phases: []workload.Phase{{
			Name: "p", Weight: 1, BaseCPI: 0.6,
			PerInst: workload.Rates{
				Uops: 1.3, FPU: 0.3, ICFetch: 0.25, DCAccess: 0.45,
				L2Req: 0.01, Branch: 0.15, Mispred: 0.004, L2Miss: 0.0005,
			},
			L3MissRatio: 0.4, MLP: 1.5, Noise: 0.02,
		}},
	}
	return workload.Run{
		Name:    name,
		Suite:   "micro",
		Members: []workload.Member{{Bench: b, Threads: threads}},
	}
}

type countingController struct{ calls int }

func (c *countingController) Decide(*Chip, trace.Interval) { c.calls++ }

type downshiftController struct{ target arch.VFState }

func (d *downshiftController) Decide(chip *Chip, _ trace.Interval) {
	_ = chip.SetAllPStates(d.target)
}

func TestBoostRaisesThroughputWhenCool(t *testing.T) {
	run := shortRun("boost", 8e9, 1)
	base := newChip(t, nil)
	trBase, err := base.Collect(run, RunOpts{VF: arch.VF5, WarmTempK: 310})
	if err != nil {
		t.Fatal(err)
	}
	boosted := newChip(t, func(cfg *Config) { cfg.BoostEnabled = true })
	trBoost, err := boosted.Collect(run, RunOpts{VF: arch.VF5, WarmTempK: 310})
	if err != nil {
		t.Fatal(err)
	}
	if trBoost.DurationS() >= trBase.DurationS() {
		t.Errorf("boost did not speed up the run: %vs vs %vs",
			trBoost.DurationS(), trBase.DurationS())
	}
	if trBoost.AvgMeasPowerW() <= trBase.AvgMeasPowerW() {
		t.Error("boost should raise power")
	}
}

func TestBoostSuppressedWhenBusyOrHot(t *testing.T) {
	// Four busy CUs: over the busy ceiling, no boost → same duration as
	// the non-boost chip.
	run := shortRun("boost4", 4e9, 8)
	base := newChip(t, nil)
	trBase, err := base.Collect(run, RunOpts{VF: arch.VF5, WarmTempK: 310})
	if err != nil {
		t.Fatal(err)
	}
	boosted := newChip(t, func(cfg *Config) { cfg.BoostEnabled = true })
	trBoost, err := boosted.Collect(run, RunOpts{VF: arch.VF5, WarmTempK: 310})
	if err != nil {
		t.Fatal(err)
	}
	if trBoost.DurationS() != trBase.DurationS() {
		t.Errorf("boost engaged with all CUs busy: %vs vs %vs",
			trBoost.DurationS(), trBase.DurationS())
	}
	// Hot package: boost also suppressed.
	hot := newChip(t, func(cfg *Config) { cfg.BoostEnabled = true })
	trHot, err := hot.Collect(shortRun("boosthot", 4e9, 1), RunOpts{VF: arch.VF5, WarmTempK: 340})
	if err != nil {
		t.Fatal(err)
	}
	cool := newChip(t, nil)
	trCool, err := cool.Collect(shortRun("boosthot", 4e9, 1), RunOpts{VF: arch.VF5, WarmTempK: 340})
	if err != nil {
		t.Fatal(err)
	}
	if trHot.DurationS() < trCool.DurationS() {
		t.Error("boost engaged on a hot package")
	}
}

func TestBoostOnlyFromTopPState(t *testing.T) {
	boosted := newChip(t, func(cfg *Config) { cfg.BoostEnabled = true })
	tr2, err := boosted.Collect(shortRun("boostp2", 4e9, 1), RunOpts{VF: arch.VF2, WarmTempK: 310})
	if err != nil {
		t.Fatal(err)
	}
	plain := newChip(t, nil)
	tr2base, err := plain.Collect(shortRun("boostp2", 4e9, 1), RunOpts{VF: arch.VF2, WarmTempK: 310})
	if err != nil {
		t.Fatal(err)
	}
	if tr2.DurationS() != tr2base.DurationS() {
		t.Error("boost engaged below the top P-state")
	}
}

func TestSharedL2ContentionFavoursScatter(t *testing.T) {
	// Two threads on one CU (compact) share the L2; on separate CUs
	// (scatter) they do not — compact must run measurably slower for a
	// cache-active workload.
	b := &workload.Benchmark{
		Name: "l2heavy", Suite: "micro", Instructions: 4e9,
		Phases: []workload.Phase{{
			Name: "p", Weight: 1, BaseCPI: 0.6,
			PerInst: workload.Rates{
				Uops: 1.3, ICFetch: 0.25, DCAccess: 0.5,
				L2Req: 0.06, Branch: 0.12, Mispred: 0.002, L2Miss: 0.002,
			},
			L3MissRatio: 0.3, MLP: 1.5,
		}},
	}
	run := workload.Run{Name: "l2", Suite: "micro",
		Members: []workload.Member{{Bench: b, Threads: 2}}}
	scatter := newChip(t, nil)
	trS, err := scatter.Collect(run, RunOpts{VF: arch.VF5, Placement: PlaceScatter})
	if err != nil {
		t.Fatal(err)
	}
	compact := newChip(t, nil)
	trC, err := compact.Collect(run, RunOpts{VF: arch.VF5, Placement: PlaceCompact})
	if err != nil {
		t.Fatal(err)
	}
	if trC.DurationS() <= trS.DurationS() {
		t.Errorf("compact (%vs) not slower than scatter (%vs) under L2 sharing",
			trC.DurationS(), trS.DurationS())
	}
}
