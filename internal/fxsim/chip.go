// Package fxsim is the simulated evaluation platform: an AMD FX-8320-class
// chip with compute units, per-CU P-states, CU-level power gating, a
// shared north bridge, package thermals, the Hall-effect power sensor, and
// per-core multiplexed performance counters. It binds workload profiles to
// cores, advances in 1 ms ticks, and emits the 200 ms measurement
// intervals (trace.Interval) the PPEP models consume — the same
// observables the paper's testbed exposes.
package fxsim

import (
	"fmt"

	"ppep/internal/arch"
	"ppep/internal/mem"
	"ppep/internal/pmc"
	"ppep/internal/powertruth"
	"ppep/internal/sensor"
	"ppep/internal/thermal"
	"ppep/internal/trace"
	"ppep/internal/uarch"
	"ppep/internal/units"
	"ppep/internal/workload"
)

// TickS is the simulation tick: 1 ms, twenty ticks per sensor sample
// window would be wrong — it is 20 ticks per mux window and one sensor
// sample every PowerSamplePeriodMS ticks.
const TickS = 0.001

// Config selects the platform and its measurement behaviour.
type Config struct {
	Topology arch.Topology
	Power    *powertruth.Config
	NB       *mem.NB
	// PowerGating is the BIOS PG switch (Section IV-D): when true, a CU
	// with both cores idle is gated, and the NB gates when all CUs are.
	PowerGating bool
	// PerCUPlanes allows per-CU voltage (the Section V-B assumption).
	// Without it, all CUs share the voltage of the highest P-state.
	PerCUPlanes bool
	// MuxDisabled switches the counter multiplexer into oracle mode.
	MuxDisabled bool
	// BoostEnabled turns on the hardware-controlled boost states the
	// paper disables (Section II): a CU at the top P-state boosts when
	// few CUs are busy and the package is cool. Boost is invisible to
	// software — exactly why the paper turns it off for measurements.
	BoostEnabled bool
	// BoostPoint is the boosted operating point (default 3.9 GHz,
	// 1.40 V when zero).
	BoostPoint arch.VFPoint
	// BoostMaxBusyCUs is the busy-CU ceiling for boosting (default 2).
	BoostMaxBusyCUs int
	// BoostTempMaxK is the thermal ceiling for boosting (default 331 K).
	BoostTempMaxK units.Kelvin
	// SensorSeed seeds the power sensor's noise.
	SensorSeed int64
	// IdealSensor replaces the noisy sensor with a perfect one.
	IdealSensor bool
	// ReferenceTick disables the batched quiescent-run engine and runs
	// every tick through the reference per-tick path. The two paths are
	// bit-identical (the equivalence harness in engine_test.go pins
	// this), so the switch exists for debugging and for the harness
	// itself, not for correctness. The `ppep_reftick` build tag forces
	// the same behaviour module-wide.
	ReferenceTick bool
}

// DefaultFX8320Config returns the paper's primary platform with power
// gating disabled, the Section IV-A..C configuration.
func DefaultFX8320Config() Config {
	return Config{
		Topology:   arch.FX8320,
		Power:      powertruth.DefaultFX8320(),
		NB:         mem.DefaultFX8320NB(),
		SensorSeed: 42,
	}
}

// DefaultPhenomIIConfig returns the secondary validation platform.
func DefaultPhenomIIConfig() Config {
	return Config{
		Topology:   arch.PhenomII,
		Power:      powertruth.DefaultPhenomII(),
		NB:         mem.DefaultFX8320NB(),
		SensorSeed: 43,
	}
}

// Chip is the live simulated processor.
//
// Per-core runtime state is struct-of-arrays: the tick loop sweeps
// contiguous parallel slices (threads, mux, bound flags) instead of
// chasing per-core slot pointers, so the hot sweep touches a handful of
// cache lines laid out in iteration order.
type Chip struct {
	cfg Config
	// threads holds every core's execution context as a value slot;
	// bound[i] reports whether a thread is bound there (a bound thread
	// may have finished — Busy distinguishes). benches/restart carry the
	// re-bind behaviour for time-bounded experiments like power capping.
	threads []uarch.Core
	bound   []bool
	restart []bool
	benches []*workload.Benchmark
	// mux is the per-core multiplexed counter file, again as contiguous
	// value slots. counters[i], when non-nil, is the register-level
	// counter file the MSR device exposes (EnableCounterFiles).
	mux      []pmc.Mux
	counters []*pmc.CounterFile

	pstates []arch.VFState // per CU
	nbPoint arch.VFPoint

	therm  *thermal.Model
	sensor *sensor.PowerSensor

	timeS    float64
	tickIdx  int64
	lastUtil float64 // DRAM utilization of the previous tick

	// Interval accumulation.
	sensorSum   float64
	sensorN     int
	trueSum     float64
	trueCoreSum float64
	trueNBSum   float64
	coreDynSum  []units.Watts
	tickCount   int
	intervalVF  []arch.VFState // reused buffer; ReadInterval copies it out

	// Tick-loop caches (see the "simulator performance" section of
	// DESIGN.md). The busy counters are maintained incrementally by
	// Bind/Unbind and thread completion; the VF-derived values are
	// refreshed by SetPState/SetNBPoint. Every cached value is exactly
	// what the uncached path recomputed per tick, so a fixed SensorSeed
	// still produces bit-identical interval sequences (golden_test.go).
	fTopGHz     units.GigaHertz // top-state core frequency
	cuBusyCores []int           // busy cores per CU
	busyCUs     int             // CUs with ≥1 busy core
	topBusyCUs  int             // busy CUs sitting at the top P-state
	cuPoints    []arch.VFPoint  // per-CU VF point (P-state table lookup)
	sharedV     units.Volts     // shared-rail voltage (highest requested state)
	nbLat       mem.LatencyParams
	nbDyn       powertruth.NBDynCoeffs
	nbLeakVolt  float64       // NB leakage voltage factor
	cuOp        []cuOpCache   // per-CU operating-point coefficient memo
	scratchDyn  []units.Watts // Breakdown.CoreDynW backing store
	scratchLeak []units.Watts // Breakdown.CULeakW backing store

	// eng is the batched tick engine: it memoizes per-tick deltas over
	// quiescent runs and fast-forwards them without re-running the full
	// per-core model (engine.go). Chip mutators invalidate it.
	eng engine
}

// cuOpCache memoises the power-model coefficients for one CU's current
// (voltage, frequency). Boost can flip a CU's operating point from one
// tick to the next, so the memo is keyed by value rather than invalidated
// explicitly.
type cuOpCache struct {
	v        units.Volts
	f        units.GigaHertz
	dyn      powertruth.CoreDynCoeffs
	leakVolt float64
	ok       bool
}

// New builds a chip at the top VF state, thermally at ambient.
func New(cfg Config) *Chip {
	// The NB is mutable chip state (SetNBPoint rewrites its clock and
	// voltage), so deep-copy it: two chips built from one Config value
	// must never share it.
	nb := *cfg.NB
	cfg.NB = &nb
	nCores := cfg.Topology.NumCores()
	c := &Chip{
		cfg:         cfg,
		threads:     make([]uarch.Core, nCores),
		bound:       make([]bool, nCores),
		restart:     make([]bool, nCores),
		benches:     make([]*workload.Benchmark, nCores),
		mux:         make([]pmc.Mux, nCores),
		counters:    make([]*pmc.CounterFile, nCores),
		pstates:     make([]arch.VFState, cfg.Topology.NumCUs),
		nbPoint:     arch.VFPoint{Voltage: units.Volts(cfg.NB.VoltageV), Freq: units.GigaHertz(cfg.NB.FreqGHz)},
		therm:       thermal.DefaultFX8320(),
		coreDynSum:  make([]units.Watts, nCores),
		intervalVF:  make([]arch.VFState, nCores),
		cuBusyCores: make([]int, cfg.Topology.NumCUs),
		cuPoints:    make([]arch.VFPoint, cfg.Topology.NumCUs),
		cuOp:        make([]cuOpCache, cfg.Topology.NumCUs),
		scratchDyn:  make([]units.Watts, nCores),
		scratchLeak: make([]units.Watts, cfg.Topology.NumCUs),
	}
	c.eng.init(&cfg, nCores, cfg.Topology.NumCUs)
	if cfg.IdealSensor {
		c.sensor = sensor.Ideal()
	} else {
		c.sensor = sensor.Default(cfg.SensorSeed)
	}
	for i := range c.mux {
		m := pmc.NewMux()
		m.Disabled = cfg.MuxDisabled
		c.mux[i] = *m
	}
	top := cfg.Topology.VF.Top()
	topPoint := cfg.Topology.VF.Point(top)
	for cu := range c.pstates {
		c.pstates[cu] = top
		c.cuPoints[cu] = topPoint
	}
	c.fTopGHz = topPoint.Freq
	c.sharedV = topPoint.Voltage
	c.refreshNBCaches()
	c.snapshotVF()
	return c
}

// refreshNBCaches re-derives every NB-operating-point-dependent cache.
func (c *Chip) refreshNBCaches() {
	c.nbLat = c.cfg.NB.LatencyParams()
	c.nbDyn = c.cfg.Power.NBDynCoeffsAt(c.nbPoint.Voltage, c.nbPoint.Freq)
	c.nbLeakVolt = c.cfg.Power.NBLeakVoltScale(c.nbPoint.Voltage)
}

// Topology returns the platform topology.
func (c *Chip) Topology() arch.Topology { return c.cfg.Topology }

// VFTable returns the platform's VF table.
func (c *Chip) VFTable() arch.VFTable { return c.cfg.Topology.VF }

// TimeS returns the current simulation time.
func (c *Chip) TimeS() float64 { return c.timeS }

// TempK returns the thermal diode reading (millikelvin quantization, as
// the hwmon sysfs path reports).
func (c *Chip) TempK() units.Kelvin {
	return units.Kelvin(float64(int64(c.therm.TempK()*1000)) / 1000)
}

// SetTempK forces the package temperature (experiment setup). The
// batched engine reads temperature fresh every tick, but a forced jump
// is a state discontinuity, so the active run is conservatively
// invalidated.
func (c *Chip) SetTempK(t units.Kelvin) {
	c.therm.SetTempK(t)
	c.eng.invalidate()
}

// Thermal returns the thermal model (used by heat/cool experiments).
func (c *Chip) Thermal() *thermal.Model { return c.therm }

// SetPState requests a P-state for one CU.
func (c *Chip) SetPState(cu int, s arch.VFState) error {
	if cu < 0 || cu >= len(c.pstates) {
		return fmt.Errorf("fxsim: CU %d out of range", cu)
	}
	if !c.cfg.Topology.VF.Contains(s) {
		return fmt.Errorf("fxsim: %v not in VF table", s)
	}
	old := c.pstates[cu]
	if old == s {
		return nil
	}
	if top := c.cfg.Topology.VF.Top(); c.cuBusyCores[cu] > 0 {
		if old == top {
			c.topBusyCUs--
		}
		if s == top {
			c.topBusyCUs++
		}
	}
	c.pstates[cu] = s
	c.cuPoints[cu] = c.cfg.Topology.VF.Point(s)
	c.refreshSharedRail()
	c.eng.invalidate()
	return nil
}

// refreshSharedRail re-derives the shared-rail voltage: the voltage of
// the highest requested P-state.
//
//ppep:inline
func (c *Chip) refreshSharedRail() {
	top := c.pstates[0]
	for _, s := range c.pstates[1:] {
		if s > top {
			top = s
		}
	}
	c.sharedV = c.cfg.Topology.VF.Point(top).Voltage
}

// markBusy records a core's idle→busy transition in the CU busy counters.
//
//ppep:inline
func (c *Chip) markBusy(core int) {
	cu := c.cfg.Topology.CUOf(core)
	c.cuBusyCores[cu]++
	if c.cuBusyCores[cu] == 1 {
		c.busyCUs++
		if c.pstates[cu] == c.cfg.Topology.VF.Top() {
			c.topBusyCUs++
		}
	}
}

// markIdle records a core's busy→idle transition (unbind or completion).
//
//ppep:inline
func (c *Chip) markIdle(core int) {
	cu := c.cfg.Topology.CUOf(core)
	c.cuBusyCores[cu]--
	if c.cuBusyCores[cu] == 0 {
		c.busyCUs--
		if c.pstates[cu] == c.cfg.Topology.VF.Top() {
			c.topBusyCUs--
		}
	}
}

// SetAllPStates sets every CU to the same P-state.
func (c *Chip) SetAllPStates(s arch.VFState) error {
	for cu := range c.pstates {
		if err := c.SetPState(cu, s); err != nil {
			return err
		}
	}
	return nil
}

// PState returns a CU's current P-state.
func (c *Chip) PState(cu int) arch.VFState { return c.pstates[cu] }

// SetNBPoint overrides the NB operating point (Section V-C2 what-if).
// The chip owns its NB (deep-copied in New), so this never mutates the
// Config the caller built the chip from.
func (c *Chip) SetNBPoint(p arch.VFPoint) {
	c.nbPoint = p
	c.cfg.NB.FreqGHz = float64(p.Freq)
	c.cfg.NB.VoltageV = float64(p.Voltage)
	c.refreshNBCaches()
	c.eng.invalidate()
}

// railVoltage returns the voltage a CU runs at: its own point with per-CU
// planes, otherwise the shared rail at the highest requested state.
// A boosting CU pulls the rail to the boost voltage.
func (c *Chip) railVoltage(cu int) units.Volts {
	if c.cfg.PerCUPlanes {
		if c.boosting(cu) {
			return c.boostPoint().Voltage
		}
		return c.cuPoints[cu].Voltage
	}
	v := c.sharedV
	if c.anyBoosting() {
		if bv := c.boostPoint().Voltage; bv > v {
			v = bv
		}
	}
	return v
}

// cuFreq returns a CU's clock in GHz, including any active boost.
func (c *Chip) cuFreq(cu int) units.GigaHertz {
	if c.boosting(cu) {
		return c.boostPoint().Freq
	}
	return c.cuPoints[cu].Freq
}

// boostPoint returns the configured boost operating point.
func (c *Chip) boostPoint() arch.VFPoint {
	if c.cfg.BoostPoint.Freq > 0 {
		return c.cfg.BoostPoint
	}
	return arch.VFPoint{Voltage: 1.40, Freq: 3.9}
}

// boostLimits returns the effective boost ceilings (defaults applied).
func (c *Chip) boostLimits() (maxBusy int, tMaxK units.Kelvin) {
	maxBusy = c.cfg.BoostMaxBusyCUs
	if maxBusy == 0 {
		maxBusy = 2
	}
	tMaxK = c.cfg.BoostTempMaxK
	if tMaxK == 0 {
		tMaxK = 331
	}
	return maxBusy, tMaxK
}

// boosting reports whether a CU is in a hardware boost state this tick:
// boost is enabled, the CU sits at the top P-state with work, few CUs
// are busy, and the package is cool. Software cannot observe or control
// this — the measurement hazard the paper avoids by disabling boost.
// The busy conditions read the incrementally-maintained CU counters, so
// the check is O(1).
func (c *Chip) boosting(cu int) bool {
	if !c.cfg.BoostEnabled {
		return false
	}
	if c.pstates[cu] != c.cfg.Topology.VF.Top() {
		return false
	}
	maxBusy, tMax := c.boostLimits()
	if c.therm.TempK() >= tMax {
		return false
	}
	return c.cuBusyCores[cu] > 0 && c.busyCUs <= maxBusy
}

// anyBoosting reports whether at least one CU is boosting this tick (the
// shared-rail voltage pull). Equivalent to ∃u: boosting(u).
func (c *Chip) anyBoosting() bool {
	if !c.cfg.BoostEnabled || c.topBusyCUs == 0 {
		return false
	}
	maxBusy, tMax := c.boostLimits()
	return c.therm.TempK() < tMax && c.busyCUs <= maxBusy
}

// Bind places a thread of the benchmark on a hardware core (the taskset
// equivalent). restart re-binds on completion.
func (c *Chip) Bind(core int, b *workload.Benchmark, restart bool) error {
	if core < 0 || core >= len(c.threads) {
		return fmt.Errorf("fxsim: core %d out of range", core)
	}
	if c.bound[core] {
		return fmt.Errorf("fxsim: core %d already busy", core)
	}
	c.threads[core].Reset(b, float64(c.fTopGHz))
	c.bound[core] = true
	c.benches[core] = b
	c.restart[core] = restart
	c.markBusy(core)
	c.eng.invalidate()
	return nil
}

// Unbind removes any thread from a core.
func (c *Chip) Unbind(core int) {
	if c.Busy(core) {
		c.markIdle(core)
	}
	c.threads[core] = uarch.Core{}
	c.bound[core] = false
	c.benches[core] = nil
	c.restart[core] = false
	c.eng.invalidate()
}

// UnbindAll idles the whole chip.
func (c *Chip) UnbindAll() {
	for i := range c.threads {
		c.Unbind(i)
	}
}

// Busy reports whether a thread is bound and unfinished on the core.
//
//ppep:inline
func (c *Chip) Busy(core int) bool {
	return c.bound[core] && !c.threads[core].Finished()
}

// AllIdle reports whether no core has active work.
func (c *Chip) AllIdle() bool { return c.busyCUs == 0 }

// siblingBusy reports whether the other core of this core's CU is busy.
func (c *Chip) siblingBusy(core int) bool {
	if c.cfg.Topology.CoresPerCU < 2 {
		return false
	}
	n := c.cuBusyCores[c.cfg.Topology.CUOf(core)]
	if c.Busy(core) {
		n--
	}
	return n > 0
}

// cuGated reports whether a CU is power gated this tick.
//
//ppep:inline
func (c *Chip) cuGated(cu int) bool {
	return c.cfg.PowerGating && c.cuBusyCores[cu] == 0
}

// nbGated reports whether the NB is gated (all CUs gated).
//
//ppep:inline
func (c *Chip) nbGated() bool {
	return c.cfg.PowerGating && c.busyCUs == 0
}

// snapshotVF records the per-core VF states for the current interval into
// the chip's reusable buffer (ReadInterval copies it out, so handed-out
// intervals never alias it).
//
//ppep:inline
func (c *Chip) snapshotVF() {
	for i := range c.intervalVF {
		c.intervalVF[i] = c.pstates[c.cfg.Topology.CUOf(i)]
	}
}

// cuCoeffs returns the memoised power-model coefficients for a CU at the
// given operating point, refreshing the entry when the point moved
// (P-state change, rail change, or boost entry/exit). The memo is keyed
// by value because boost can flip a CU's point between consecutive ticks
// without any Set* call.
func (c *Chip) cuCoeffs(cu int, v units.Volts, f units.GigaHertz) *cuOpCache {
	m := &c.cuOp[cu]
	if !m.ok || m.v != v || m.f != f {
		m.v, m.f = v, f
		m.dyn = c.cfg.Power.CoreDynCoeffsAt(v, f)
		m.leakVolt = c.cfg.Power.CULeakVoltScale(v)
		m.ok = true
	}
	return m
}

// Tick advances the chip by one 1 ms step: runs every bound thread,
// accumulates counters, computes true power, advances thermals, and takes
// a sensor sample every 20 ms. The tick loop is allocation-free: the
// power breakdown lives in chip-owned scratch buffers and all
// operating-point coefficients come from caches that Set*/Bind/Unbind
// keep current.
//
//ppep:hotpath
func (c *Chip) Tick() { c.TickN(1) }

// TickN advances the chip by n ticks through the batched engine: ticks
// inside a sealed quiescent run replay memoized per-tick deltas
// (fastTick), every other tick runs the reference path, and runs are
// probed for whenever the engine is armed (engine.go). The per-tick
// loop invariants (NB latency params, operating-point coefficients,
// busy counters) are persistent caches on the chip rather than per-call
// hoists, so batched ticking costs exactly n times one tick with no
// warm-up; TickN exists so hot callers (Collect, HeatCool, the PG
// sweeps, the daemon) express "advance one measurement window" as a
// single call.
//
//ppep:hotpath
func (c *Chip) TickN(n int) {
	for i := 0; i < n; i++ {
		e := &c.eng
		switch {
		case e.valid:
			c.fastTick()
		case e.armed():
			c.probeTick()
		default:
			if e.backoff > 0 {
				e.backoff--
			}
			c.tick()
		}
	}
}

// tick is the reference per-tick path: the full per-core model sweep.
// The batched engine's fast path must replay its results bit-for-bit,
// so every floating-point accumulation below is order-pinned — see
// DESIGN.md ("The batched tick engine") before reordering anything.
func (c *Chip) tick() {
	if c.tickCount == 0 {
		// First tick of a fresh interval: record the P-states it runs
		// under (controllers change states at interval boundaries).
		c.snapshotVF()
	}
	lat := c.nbLat.Snapshot(c.lastUtil)
	var nbAct powertruth.NBActivity
	breakdown := powertruth.Breakdown{
		CoreDynW: c.scratchDyn,
		CULeakW:  c.scratchLeak,
	}

	anyAwake := !c.nbGated()
	maxFreq := units.GigaHertz(0)

	for i := range c.threads {
		cu := c.cfg.Topology.CUOf(i)
		f := c.cuFreq(cu)
		v := c.railVoltage(cu)
		if f > maxFreq {
			maxFreq = f
		}
		var act powertruth.Activity
		if c.Busy(i) {
			coreLat := lat
			if c.siblingBusy(i) {
				coreLat.L2ContentionCycles = mem.L2SiblingPenaltyCycles
			}
			r := c.threads[i].Step(float64(f), TickS, coreLat)
			c.mux[i].Accumulate(r.Events, TickS*1000)
			if c.counters[i] != nil {
				c.counters[i].Accumulate(r.Events)
			}
			nbAct.L3AccessPS += r.L3Accesses / TickS
			nbAct.DRAMPS += r.DRAMAccesses / TickS
			act = powertruth.Activity{
				Events:     r.Events.Scale(1 / TickS),
				PrefetchPS: r.Prefetches / TickS,
				TLBWalkPS:  r.TLBWalks / TickS,
				EPIScale:   r.EPIScale,
			}
			if c.eng.capturing {
				c.eng.capture(i, r)
			}
			if r.Finished {
				if c.restart[i] {
					c.threads[i].Reset(c.benches[i], float64(c.fTopGHz))
				} else {
					// Later cores this same tick must observe the finished
					// thread as idle (sibling/boost/gating checks), exactly
					// as the per-core Busy() scans used to report it.
					c.markIdle(i)
				}
			}
		} else {
			act = powertruth.Activity{Halted: true}
			if c.cuGated(cu) {
				// Gated: no clock power at all.
				breakdown.CoreDynW[i] = 0
				continue
			}
		}
		breakdown.CoreDynW[i] = c.cfg.Power.CoreDynamicWWith(c.cuCoeffs(cu, v, f).dyn, act)
	}

	tK := c.therm.TempK()
	tempScale := c.cfg.Power.LeakTempScale(tK)
	for cu := 0; cu < c.cfg.Topology.NumCUs; cu++ {
		// cuCoeffs is the single source of truth for operating-point
		// coefficients: on a memo miss it derives CULeakVoltScale(v)
		// itself, so going through it is value-identical to the old
		// open-coded fallback while also warming the memo for the next
		// tick.
		voltScale := c.cuCoeffs(cu, c.railVoltage(cu), c.cuFreq(cu)).leakVolt
		breakdown.CULeakW[cu] = c.cfg.Power.CULeakageWWith(voltScale, tempScale, c.cuGated(cu))
	}
	gatedNB := c.nbGated()
	if gatedNB {
		breakdown.NBDynW = 0
	} else {
		breakdown.NBDynW = c.cfg.Power.NBDynamicWWith(c.nbDyn, nbAct)
	}
	breakdown.NBLeakW = c.cfg.Power.NBLeakageWWith(c.nbLeakVolt, tempScale, gatedNB)
	breakdown.BaseW = c.cfg.Power.BaseW
	if anyAwake {
		breakdown.HousekW = c.cfg.Power.HousekeepingDynW(c.railVoltage(0), maxFreq, c.fTopGHz)
	}

	totalW := breakdown.TotalW()
	c.therm.Step(totalW, TickS)
	// Damped utilization feedback: raw per-tick utilization oscillates
	// (high latency → low demand → low latency → ...); an EMA mirrors
	// the averaging a real memory controller's queues perform.
	utilX := c.cfg.NB.Utilization(nbAct.DRAMPS)
	c.lastUtil = 0.6*c.lastUtil + 0.4*utilX

	// Interval accumulation.
	c.trueSum += float64(totalW)
	c.trueCoreSum += float64(breakdown.CoreTotalW())
	c.trueNBSum += float64(breakdown.NBTotalW())
	for i, w := range breakdown.CoreDynW {
		c.coreDynSum[i] += w
	}
	c.tickCount++
	c.tickIdx++
	c.timeS += TickS
	if c.tickIdx%int64(arch.PowerSamplePeriodMS) == 0 {
		c.sensorSum += c.sensor.Sample(float64(totalW))
		c.sensorN++
	}
	if c.eng.capturing {
		c.eng.captureChip(breakdown.NBDynW, breakdown.HousekW, utilX)
	}
	c.eng.stats.referenceTicks.Add(1)
}

// EnableCounterFiles attaches a register-level counter file to every core
// so the MSR device (internal/msr) can expose PERF_CTL/PERF_CTR access.
// Counter files observe every individual tick, so the batched engine is
// permanently disabled for this chip (the daemon's tradeoff: register
// fidelity over batching).
func (c *Chip) EnableCounterFiles() {
	for i := range c.counters {
		if c.counters[i] == nil {
			c.counters[i] = pmc.NewCounterFile()
		}
	}
	c.eng.neverFast = true
	c.eng.invalidate()
}

// CounterFile returns core i's register-level counter file, or nil when
// EnableCounterFiles has not been called.
func (c *Chip) CounterFile(core int) *pmc.CounterFile {
	if core < 0 || core >= len(c.counters) {
		return nil
	}
	return c.counters[core]
}

// ReadInterval closes the current measurement interval: it reads and
// resets every core's multiplexed counters, averages the sensor samples,
// and returns the assembled record. Call every 200 ticks for the paper's
// 200 ms cadence.
//
// The handed-out record owns all four per-core slices (callers retain
// intervals long after the chip has moved on), so one exact-capacity
// allocation per slice is inherent; what the append-growth path used to
// add on top (10 allocs, ~1.6 KB per interval) is avoided by pre-sizing.
// TestReadIntervalAllocs pins the budget. Callers that do NOT retain the
// record past the next interval should use ReadIntervalInto, which
// reuses the caller's slices and is allocation-free in steady state.
func (c *Chip) ReadInterval() trace.Interval {
	var iv trace.Interval
	c.ReadIntervalInto(&iv)
	return iv
}

// ReadIntervalInto closes the current measurement interval into a
// caller-owned record, reusing its slices whenever their capacity
// allows (a record handed back on every call allocates only on the
// first). The assembled values are bit-identical to ReadInterval's —
// ReadInterval is this function applied to a zero record. The record
// must not be read concurrently with the chip's tick loop, and a record
// retained across the next ReadIntervalInto call on the same record is
// overwritten — callers that keep history must copy it out (or use
// ReadInterval). TestReadIntervalIntoAllocs pins the zero-alloc reuse
// path; the fleet engine's per-node scratch records are the intended
// consumer.
func (c *Chip) ReadIntervalInto(iv *trace.Interval) {
	dur := float64(c.tickCount) * TickS
	iv.TimeS = c.timeS
	iv.DurS = dur
	iv.TempK = float64(c.TempK())
	// The chip reuses intervalVF across intervals; the handed-out
	// record must own its snapshot.
	if cap(iv.PerCoreVF) < len(c.intervalVF) {
		iv.PerCoreVF = make([]arch.VFState, 0, len(c.intervalVF))
	}
	iv.PerCoreVF = append(iv.PerCoreVF[:0], c.intervalVF...)
	if cap(iv.Counters) < len(c.threads) {
		iv.Counters = make([]arch.EventVec, 0, len(c.threads))
	}
	iv.Counters = iv.Counters[:0]
	if cap(iv.Busy) < len(c.threads) {
		iv.Busy = make([]bool, 0, len(c.threads))
	}
	iv.Busy = iv.Busy[:0]
	for i := range c.threads {
		iv.Counters = append(iv.Counters, c.mux[i].ReadInterval(dur*1000))
		iv.Busy = append(iv.Busy, c.Busy(i))
	}
	iv.MeasPowerW = 0
	if c.sensorN > 0 {
		iv.MeasPowerW = c.sensorSum / float64(c.sensorN)
	}
	iv.TruePowerW, iv.TrueCoreW, iv.TrueNBW = 0, 0, 0
	iv.TrueCoreDynW = iv.TrueCoreDynW[:0]
	if c.tickCount > 0 {
		n := float64(c.tickCount)
		iv.TruePowerW = c.trueSum / n
		iv.TrueCoreW = c.trueCoreSum / n
		iv.TrueNBW = c.trueNBSum / n
		if cap(iv.TrueCoreDynW) < len(c.coreDynSum) {
			iv.TrueCoreDynW = make([]float64, 0, len(c.coreDynSum))
		}
		for _, w := range c.coreDynSum {
			iv.TrueCoreDynW = append(iv.TrueCoreDynW, float64(w)/n)
		}
	}
	c.sensorSum, c.sensorN = 0, 0
	c.trueSum, c.trueCoreSum, c.trueNBSum = 0, 0, 0
	for i := range c.coreDynSum {
		c.coreDynSum[i] = 0
	}
	c.tickCount = 0
}
