package dvfs

import (
	"math"
	"sync"
	"testing"

	"ppep/internal/arch"
	"ppep/internal/core"
	"ppep/internal/core/pgidle"
	"ppep/internal/fxsim"
	"ppep/internal/trace"
	"ppep/internal/units"
	"ppep/internal/workload"
)

// ---- shared trained models (built once; ~seconds) ----

var (
	trainOnce sync.Once
	trained   *core.Models
	trainErr  error
)

func trainedModels(t *testing.T) *core.Models {
	t.Helper()
	trainOnce.Do(func() {
		ts := core.TrainingSet{IdleTraces: map[arch.VFState]*trace.Trace{}}
		for _, vf := range arch.FX8320VFTable.States() {
			chip := fxsim.New(fxsim.DefaultFX8320Config())
			tr, err := chip.HeatCool(vf, 40, 80)
			if err != nil {
				trainErr = err
				return
			}
			ts.IdleTraces[vf] = tr
		}
		for _, num := range []string{"429", "458", "416", "433"} {
			b := workload.SPECByNumber(num)
			short := *b
			short.Instructions = 8e9
			for _, vf := range arch.FX8320VFTable.States() {
				chip := fxsim.New(fxsim.DefaultFX8320Config())
				r := workload.Run{Name: num, Suite: "SPE",
					Members: []workload.Member{{Bench: &short, Threads: 1}}}
				tr, err := chip.Collect(r, fxsim.RunOpts{VF: vf, WarmTempK: 315})
				if err != nil {
					trainErr = err
					return
				}
				ts.Runs = append(ts.Runs, core.RunTrace{Name: num, Suite: "SPE", VF: vf, Trace: tr})
			}
		}
		trained, trainErr = core.Train(ts, arch.FX8320VFTable)
	})
	if trainErr != nil {
		t.Fatal(trainErr)
	}
	return trained
}

func TestStepSchedule(t *testing.T) {
	s := StepSchedule([]units.Seconds{0, 10, 20}, []units.Watts{100, 60, 90})
	cases := []struct {
		t    units.Seconds
		want units.Watts
	}{
		{0, 100}, {5, 100}, {10, 60}, {15, 60}, {20, 90}, {99, 90},
	}
	for _, c := range cases {
		if got := s(c.t); got != c.want {
			t.Errorf("s(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestAnalyzeCapping(t *testing.T) {
	hist := []CapStep{
		{TimeS: 0.2, TargetW: 100, MeasW: 90},
		{TimeS: 0.4, TargetW: 60, MeasW: 95}, // budget dropped, violating
		{TimeS: 0.6, TargetW: 60, MeasW: 70}, // still violating
		{TimeS: 0.8, TargetW: 60, MeasW: 58}, // settled: 0.8−0.2 = 0.6 s
		{TimeS: 1.0, TargetW: 60, MeasW: 59},
	}
	m := AnalyzeCapping(hist, 0)
	if m.Violations != 2 {
		t.Errorf("violations = %d", m.Violations)
	}
	if math.Abs(m.Adherence-3.0/5.0) > 1e-12 {
		t.Errorf("adherence = %v", m.Adherence)
	}
	if math.Abs(float64(m.MeanSettleS-0.6)) > 1e-12 {
		t.Errorf("settle = %v", m.MeanSettleS)
	}
	empty := AnalyzeCapping(nil, 0)
	if empty.Adherence != 0 {
		t.Error("empty history should be zeroes")
	}
}

// runCapping executes the Figure 7 experiment with the given controller.
func runCapping(t *testing.T, ctl fxsim.Controller) *trace.Trace {
	t.Helper()
	cfg := fxsim.DefaultFX8320Config()
	cfg.PowerGating = true
	cfg.PerCUPlanes = true // the Section V-B assumption
	chip := fxsim.New(cfg)
	tr, err := chip.Collect(workload.CappingMix(), fxsim.RunOpts{
		VF: arch.VF5, MaxTimeS: 36, Restart: true, WarmTempK: 325,
		Controller: ctl, Placement: fxsim.PlaceScatter,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// figure7Schedule swings the budget the way the paper's experiment does.
func figure7Schedule() CapSchedule {
	return StepSchedule(
		[]units.Seconds{0, 12, 24},
		[]units.Watts{130, 48, 105},
	)
}

func TestPPEPCappingOneStep(t *testing.T) {
	m := trainedModels(t)
	ppep := &PPEPCapper{Models: m, Target: figure7Schedule()}
	runCapping(t, ppep)
	met := AnalyzeCapping(ppep.History, 0.5)
	// The paper: single-interval settling, 94% adherence.
	if met.MeanSettleS > 0.5 {
		t.Errorf("PPEP settle time %.2f s, want ≤ one or two intervals", met.MeanSettleS)
	}
	if met.Adherence < 0.85 {
		t.Errorf("PPEP adherence %.2f, want ≥0.85", met.Adherence)
	}
}

func TestIterativeCappingIsSlower(t *testing.T) {
	m := trainedModels(t)
	ppep := &PPEPCapper{Models: m, Target: figure7Schedule()}
	runCapping(t, ppep)
	iter := &IterativeCapper{Target: figure7Schedule(), OneCUPerStep: true, UpHysteresis: 0.97}
	runCapping(t, iter)
	pm := AnalyzeCapping(ppep.History, 0.5)
	im := AnalyzeCapping(iter.History, 0.5)
	if im.MeanSettleS <= pm.MeanSettleS {
		t.Errorf("iterative settle %.2fs should exceed PPEP %.2fs", im.MeanSettleS, pm.MeanSettleS)
	}
	if im.Adherence >= pm.Adherence {
		t.Errorf("iterative adherence %.2f should trail PPEP %.2f", im.Adherence, pm.Adherence)
	}
	t.Logf("PPEP: settle %.2fs adherence %.1f%%; iterative: settle %.2fs adherence %.1f%%",
		pm.MeanSettleS, 100*pm.Adherence, im.MeanSettleS, 100*im.Adherence)
}

func TestEDSpaceShape(t *testing.T) {
	m := trainedModels(t)
	// A CPU-bound interval: energy-optimal should be the lowest state
	// (Figure 8 observation 1).
	chip := fxsim.New(fxsim.DefaultFX8320Config())
	b := *workload.SPECByNumber("458")
	b.Instructions = 3e9
	tr, err := chip.Collect(workload.Run{Name: "458", Suite: "SPE",
		Members: []workload.Member{{Bench: &b, Threads: 1}}},
		fxsim.RunOpts{VF: arch.VF5, WarmTempK: 320})
	if err != nil {
		t.Fatal(err)
	}
	iv := tr.Intervals[len(tr.Intervals)/2]
	rep, err := m.Analyze(iv)
	if err != nil {
		t.Fatal(err)
	}
	pts := EDSpace(rep)
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	// Delay per instruction must shrink with VF state.
	for i := 1; i < len(pts); i++ {
		if pts[i].SPerInst >= pts[i-1].SPerInst {
			t.Errorf("delay not decreasing at %v", pts[i].VF)
		}
	}
	if got := EnergyOptimal(rep); got != arch.VF1 {
		t.Errorf("energy-optimal %v, want VF1 (paper observation 1)", got)
	}
	// EDP-optimal is above the energy-optimal state for CPU-bound work.
	if got := EDPOptimal(rep); got < EnergyOptimal(rep) {
		t.Errorf("EDP-optimal %v below energy-optimal", got)
	}
}

func TestNBWhatIfSavesEnergy(t *testing.T) {
	m := trainedModels(t)
	// Memory-bound milc: NB scaling should show clear energy savings
	// (Figure 11a: 20–26%).
	chip := fxsim.New(fxsim.DefaultFX8320Config())
	b := *workload.SPECByNumber("433")
	b.Instructions = 3e9
	tr, err := chip.Collect(workload.Run{Name: "433", Suite: "SPE",
		Members: []workload.Member{{Bench: &b, Threads: 1}}},
		fxsim.RunOpts{VF: arch.VF5, WarmTempK: 320})
	if err != nil {
		t.Fatal(err)
	}
	iv := tr.Intervals[len(tr.Intervals)/2]
	rep, err := m.Analyze(iv)
	if err != nil {
		t.Fatal(err)
	}
	// Attach a PG decomposition (a copy, to keep the shared models
	// pristine): the NB what-if needs the NB idle component to scale.
	mm := *m
	mm.PG = map[arch.VFState]pgidle.Decomposition{}
	mm.PGEnabled = true
	for _, vf := range arch.FX8320VFTable.States() {
		mm.PG[vf] = pgidle.Decomposition{PidleCU: 4, PidleNB: 7, PidleBase: 3}
	}
	pts := NBWhatIf(&mm, iv, rep, PaperNBAssumptions())
	if len(pts) != 10 { // 5 states × {hi, lo}
		t.Fatalf("points = %d", len(pts))
	}
	saving := BestEnergySaving(pts)
	if saving <= 0.02 || saving >= 0.6 {
		t.Errorf("energy saving %.1f%% outside plausible band", 100*saving)
	}
	speedup := BestSpeedupAtEnergy(pts, 0.05)
	if speedup < 1.0 {
		t.Errorf("speedup %v below 1", speedup)
	}
	t.Logf("milc: NB-DVFS saving %.1f%%, speedup %.2f×", 100*saving, speedup)
}

func TestBestEnergySavingNeverNegative(t *testing.T) {
	pts := []NBPoint{
		{CoreVF: arch.VF1, NBLow: false, JPerInst: 1.0, SPerInst: 1},
		{CoreVF: arch.VF1, NBLow: true, JPerInst: 2.0, SPerInst: 1}, // worse
	}
	if s := BestEnergySaving(pts); s != 0 {
		t.Errorf("saving %v, want 0 (scaling is optional)", s)
	}
}

func TestBestSpeedupNoBaseline(t *testing.T) {
	pts := []NBPoint{{CoreVF: arch.VF5, NBLow: true, JPerInst: 1, SPerInst: 1}}
	if sp := BestSpeedupAtEnergy(pts, 0.05); sp != 1 {
		t.Errorf("speedup without baseline = %v, want 1", sp)
	}
}

func TestUniformCappingTrailsPerCU(t *testing.T) {
	// The Section V-B per-CU assumption should buy throughput under a
	// tight cap versus the shared-rail uniform controller: mixed
	// workloads let the greedy policy keep CPU-bound CUs fast.
	m := trainedModels(t)
	sched := func(units.Seconds) units.Watts { return 55 }
	perCU := &PPEPCapper{Models: m, Target: sched}
	runCapping(t, perCU)
	uniform := &PPEPCapper{Models: m, Target: sched, Uniform: true}
	runCapping(t, uniform)

	work := func(hist []CapStep) float64 {
		var mx float64
		for _, st := range hist {
			for _, s := range st.States {
				mx += float64(s)
			}
		}
		return mx
	}
	pm := AnalyzeCapping(perCU.History, 1.5)
	um := AnalyzeCapping(uniform.History, 1.5)
	if pm.Adherence < 0.7 || um.Adherence < 0.7 {
		t.Fatalf("capping broken: adherence %.2f / %.2f", pm.Adherence, um.Adherence)
	}
	// The per-CU controller should hold at least as much aggregate
	// frequency headroom as the uniform one.
	if work(perCU.History) < work(uniform.History) {
		t.Errorf("per-CU states %v below uniform %v under the same cap",
			work(perCU.History), work(uniform.History))
	}
}
