package dvfs

import (
	"math"

	"ppep/internal/arch"
	"ppep/internal/core"
	"ppep/internal/trace"
	"ppep/internal/units"
)

// EDPoint is one VF state's position in the energy-delay space for the
// workload of one interval, normalized to fixed work (per instruction).
type EDPoint struct {
	VF arch.VFState
	// PowerW is the predicted chip power at this state.
	PowerW units.Watts
	// JPerInst is the predicted energy per retired instruction.
	JPerInst units.JoulesPerInst
	// SPerInst is the predicted delay per instruction (1/IPS).
	SPerInst units.SecondsPerInst
	// EDP is JPerInst × SPerInst (per-instruction energy-delay product).
	EDP units.EDP
}

// EDSpace converts a PPEP report into the energy-delay space the
// Section V explorations search.
func EDSpace(rep *core.Report) []EDPoint {
	var out []EDPoint
	for _, proj := range rep.PerVF {
		p := EDPoint{VF: proj.VF, PowerW: proj.ChipW}
		if proj.TotalIPS > 0 {
			p.JPerInst = proj.ChipW.PerRate(proj.TotalIPS)
			p.SPerInst = proj.TotalIPS.Invert()
			p.EDP = p.JPerInst.TimesDelay(p.SPerInst)
		} else {
			p.JPerInst = units.JoulesPerInst(math.Inf(1))
			p.SPerInst = units.SecondsPerInst(math.Inf(1))
			p.EDP = units.EDP(math.Inf(1))
		}
		out = append(out, p)
	}
	return out
}

// EnergyOptimal returns the state minimizing predicted energy per
// instruction.
func EnergyOptimal(rep *core.Report) arch.VFState {
	return argmin(EDSpace(rep), func(p EDPoint) float64 { return float64(p.JPerInst) })
}

// EDPOptimal returns the state minimizing the predicted energy-delay
// product.
func EDPOptimal(rep *core.Report) arch.VFState {
	return argmin(EDSpace(rep), func(p EDPoint) float64 { return float64(p.EDP) })
}

func argmin(pts []EDPoint, key func(EDPoint) float64) arch.VFState {
	best := pts[0].VF
	bestV := key(pts[0])
	for _, p := range pts[1:] {
		if v := key(p); v < bestV {
			best, bestV = p.VF, v
		}
	}
	return best
}

// NBAssumptions are the Section V-C2 what-if parameters for a
// hypothetical low NB state.
type NBAssumptions struct {
	// IdleDropFrac is the NB idle power reduction at NB-low (paper: 0.40).
	IdleDropFrac float64 //ppep:allow unitcheck dimensionless reduction fraction
	// DynDropFrac is the NB dynamic energy-per-operation reduction
	// (paper: 0.36, the V² factor of a 20% voltage drop).
	DynDropFrac float64 //ppep:allow unitcheck dimensionless reduction fraction
	// LLInflate is the leading-load cycle inflation at NB-low
	// (paper: 1.5).
	LLInflate float64 //ppep:allow unitcheck dimensionless inflation factor
}

// PaperNBAssumptions returns the paper's exact Section V-C2 values.
func PaperNBAssumptions() NBAssumptions {
	return NBAssumptions{IdleDropFrac: 0.40, DynDropFrac: 0.36, LLInflate: 1.5}
}

// NBPoint is one (core VF, NB state) combination's predicted operating
// point, per unit work.
type NBPoint struct {
	CoreVF   arch.VFState
	NBLow    bool
	PowerW   units.Watts
	JPerInst units.JoulesPerInst
	SPerInst units.SecondsPerInst
}

// NBWhatIf evaluates the full (core VF × NB hi/lo) grid for one interval
// using PPEP's estimates: the paper's exact methodology of applying the
// assumed NB scaling factors to PPEP's core/NB power split and to the
// LL-MAB performance model, rather than measuring an NB-DVFS part that
// does not exist.
func NBWhatIf(m *core.Models, iv trace.Interval, rep *core.Report, a NBAssumptions) []NBPoint {
	var out []NBPoint
	for _, proj := range rep.PerVF {
		split := m.SplitDetail(iv, proj)
		// NB high: the measured configuration.
		hi := NBPoint{CoreVF: proj.VF, PowerW: split.TotalW()}
		if proj.TotalIPS > 0 {
			hi.JPerInst = hi.PowerW.PerRate(proj.TotalIPS)
			hi.SPerInst = proj.TotalIPS.Invert()
		} else {
			hi.JPerInst = units.JoulesPerInst(math.Inf(1))
			hi.SPerInst = units.SecondsPerInst(math.Inf(1))
		}
		out = append(out, hi)

		// NB low: inflate memory time, deflate NB power.
		ipsLo := ipsWithLLInflation(m, iv, proj.VF, a.LLInflate)
		scaleIPS := 0.0
		if proj.TotalIPS > 0 {
			scaleIPS = ipsLo.Per(proj.TotalIPS)
		}
		lo := NBPoint{CoreVF: proj.VF, NBLow: true}
		// Dynamic power scales with throughput (same operations per
		// instruction); NB dynamic is additionally cheaper per op.
		coreDyn := units.Watts(float64(split.CoreDynW) * scaleIPS)
		nbDyn := units.Watts(float64(split.NBDynW) * scaleIPS * (1 - a.DynDropFrac))
		nbIdle := units.Watts(float64(split.NBIdleW) * (1 - a.IdleDropFrac))
		lo.PowerW = coreDyn + nbDyn + split.CoreIdleW + nbIdle + split.BaseW
		if ipsLo > 0 {
			lo.JPerInst = lo.PowerW.PerRate(ipsLo)
			lo.SPerInst = ipsLo.Invert()
		} else {
			lo.JPerInst = units.JoulesPerInst(math.Inf(1))
			lo.SPerInst = units.SecondsPerInst(math.Inf(1))
		}
		out = append(out, lo)
	}
	return out
}

// ipsWithLLInflation recomputes the chip's predicted IPS at a core VF
// state with leading-load (memory) cycles inflated by the given factor.
func ipsWithLLInflation(m *core.Models, iv trace.Interval, s arch.VFState, inflate float64) units.InstPerSec {
	fFrom := m.Table.Point(iv.VF()).Freq
	fTo := m.Table.Point(s).Freq
	var total float64
	for c := range iv.Counters {
		rates := iv.CoreRates(c)
		inst := rates.Get(arch.RetiredInstructions)
		if inst <= 0 {
			continue
		}
		cpi := rates.Get(arch.CPUClocksNotHalted) / inst
		mcpi := rates.Get(arch.MABWaitCycles) / inst
		ccpi := cpi - mcpi
		cpiTo := ccpi + mcpi*fTo.Per(fFrom)*inflate
		if cpiTo > 0 {
			total += float64(fTo) * 1e9 / cpiTo
		}
	}
	return units.InstPerSec(total)
}

// BestEnergySaving returns the energy saving of the NB-scaled best point
// versus the NB-high best point (Figure 11a's per-mode metric): both
// sides may choose their core VF freely; only the NB capability differs.
//
//ppep:allow unitcheck saving is a dimensionless fraction of baseline energy
func BestEnergySaving(points []NBPoint) float64 {
	bestHi := units.JoulesPerInst(math.Inf(1))
	bestLo := units.JoulesPerInst(math.Inf(1))
	for _, p := range points {
		if p.NBLow {
			if p.JPerInst < bestLo {
				bestLo = p.JPerInst
			}
		} else {
			if p.JPerInst < bestHi {
				bestHi = p.JPerInst
			}
		}
	}
	if bestLo > bestHi {
		bestLo = bestHi // scaling is optional; never forced to be worse
	}
	if bestHi <= 0 || math.IsInf(float64(bestHi), 1) {
		return 0
	}
	return 1 - bestLo.Per(bestHi)
}

// BestSpeedupAtEnergy returns the speedup achievable with NB scaling at
// similar energy (Figure 11b): the baseline is core-VF1 with NB high; the
// candidate is the fastest point (any NB state) whose energy does not
// exceed the baseline's by more than slack (e.g. 0.05 = 5%).
//
//ppep:allow unitcheck slack and speedup are dimensionless ratios
func BestSpeedupAtEnergy(points []NBPoint, slack float64) float64 {
	var base *NBPoint
	for i := range points {
		p := &points[i]
		if p.CoreVF == arch.VF1 && !p.NBLow {
			base = p
			break
		}
	}
	if base == nil || math.IsInf(float64(base.SPerInst), 1) {
		return 1
	}
	best := 1.0
	for _, p := range points {
		if float64(p.JPerInst) <= float64(base.JPerInst)*(1+slack) && p.SPerInst > 0 {
			if sp := base.SPerInst.Per(p.SPerInst); sp > best {
				best = sp
			}
		}
	}
	return best
}
