// Package dvfs is PPEP's decision layer (Figure 5, steps ⑤–⑥): the
// one-step power-capping controller of Section V-B, the reactive
// iterative baseline it is compared against, energy/EDP-optimal state
// selection (Section V-C1), and the north-bridge DVFS what-if evaluator
// (Section V-C2).
package dvfs

import (
	"ppep/internal/arch"
	"ppep/internal/core"
	"ppep/internal/fxsim"
	"ppep/internal/trace"
	"ppep/internal/units"
)

// CapSchedule maps time to the active power budget (the stepped target of
// Figure 7).
type CapSchedule func(timeS units.Seconds) units.Watts

// StepSchedule builds a schedule from breakpoints: targets[i] applies
// from times[i] (sorted) onward.
func StepSchedule(times []units.Seconds, targets []units.Watts) CapSchedule {
	return func(t units.Seconds) units.Watts {
		cap := targets[0]
		for i, start := range times {
			if t >= start {
				cap = targets[i]
			}
		}
		return cap
	}
}

// CapStep records one interval of a capping run.
type CapStep struct {
	TimeS   units.Seconds
	TargetW units.Watts
	MeasW   units.Watts
	States  []arch.VFState // per CU after the decision
}

// PPEPCapper is the proactive one-step controller: each interval it uses
// PPEP's cross-VF power predictions to pick, in a single step, the per-CU
// state assignment that maximizes predicted performance under the cap.
type PPEPCapper struct {
	Models *core.Models
	Target CapSchedule
	// MarginFrac backs the effective budget off the cap to absorb
	// prediction error and sensor noise (default 4% when zero).
	MarginFrac float64 //ppep:allow unitcheck dimensionless backoff fraction
	// Uniform restricts the controller to a single chip-wide state (the
	// real FX's shared voltage rail) instead of per-CU assignments —
	// the ablation counterpart of the Section V-B per-CU assumption.
	Uniform bool
	// History records the controller's trajectory for analysis.
	History []CapStep
}

// Decide implements fxsim.Controller.
func (p *PPEPCapper) Decide(chip *fxsim.Chip, iv trace.Interval) {
	topo := chip.Topology()
	capW := p.Target(units.Seconds(iv.TimeS))
	margin := p.MarginFrac
	if margin == 0 {
		margin = 0.04
	}
	budget := units.Watts(float64(capW) * (1 - margin))
	var assign []arch.VFState
	if p.Uniform {
		assign = p.chooseUniform(iv, topo, budget)
	} else {
		assign = p.chooseAssignment(iv, topo, budget)
	}
	for cu, s := range assign {
		// out-of-range requests are clamped by the chip; nothing to handle
		_ = chip.SetPState(cu, s)
	}
	p.History = append(p.History, CapStep{
		TimeS:   units.Seconds(iv.TimeS),
		TargetW: capW,
		MeasW:   units.Watts(iv.MeasPowerW),
		States:  assign,
	})
}

// chooseUniform picks the highest single chip-wide state whose predicted
// power fits the budget.
func (p *PPEPCapper) chooseUniform(iv trace.Interval, topo arch.Topology, capW units.Watts) []arch.VFState {
	tbl := p.Models.Table
	assign := make([]arch.VFState, topo.NumCUs)
	for s := tbl.Top(); s >= tbl.Bottom(); s-- {
		for cu := range assign {
			assign[cu] = s
		}
		w, err := p.Models.PredictChipW(iv, topo, assign)
		if err == nil && w <= capW {
			return assign
		}
	}
	for cu := range assign {
		assign[cu] = tbl.Bottom()
	}
	return assign
}

// chooseAssignment greedily maximizes total predicted throughput under
// the cap: start with every CU at the top state, and while the predicted
// power exceeds the budget, lower the CU whose downstep costs the least
// predicted throughput per watt saved.
func (p *PPEPCapper) chooseAssignment(iv trace.Interval, topo arch.Topology, capW units.Watts) []arch.VFState {
	tbl := p.Models.Table
	assign := make([]arch.VFState, topo.NumCUs)
	for cu := range assign {
		assign[cu] = tbl.Top()
	}
	power := func(a []arch.VFState) units.Watts {
		w, err := p.Models.PredictChipW(iv, topo, a)
		if err != nil {
			return 0
		}
		return w
	}
	cur := power(assign)
	for cur > capW {
		bestCU := -1
		bestScore := 0.0
		var bestPower units.Watts
		for cu := range assign {
			if assign[cu] <= tbl.Bottom() {
				continue
			}
			trial := append([]arch.VFState(nil), assign...)
			trial[cu]--
			w := power(trial)
			saved := cur - w
			if saved <= 0 {
				saved = 1e-9
			}
			// Performance loss proxy: frequency drop weighted by the
			// CU's current instruction rate share.
			dropGHz := tbl.Point(assign[cu]).Freq - tbl.Point(trial[cu]).Freq
			lost := p.cuIPSShare(iv, topo, cu) * float64(dropGHz)
			score := float64(saved) / (lost + 1e-9)
			if bestCU == -1 || score > bestScore {
				bestCU, bestScore, bestPower = cu, score, w
			}
		}
		if bestCU == -1 {
			break // everything at the floor; cap unreachable
		}
		assign[bestCU]--
		cur = bestPower
	}
	return assign
}

// cuIPSShare returns the fraction of chip instructions retired by a CU's
// cores in the interval.
func (p *PPEPCapper) cuIPSShare(iv trace.Interval, topo arch.Topology, cu int) float64 {
	var cuInst, total float64
	for c := range iv.Counters {
		in := iv.Counters[c].Get(arch.RetiredInstructions)
		total += in
		if topo.CUOf(c) == cu {
			cuInst += in
		}
	}
	if total <= 0 {
		return 1.0 / float64(topo.NumCUs)
	}
	return cuInst / total
}

// IterativeCapper is the reactive baseline: VF steps driven only by the
// measured power, one decision per interval. Over budget → step down;
// under budget with headroom → step up. This is the "simple iterative
// policy" of Figure 7.
type IterativeCapper struct {
	Target CapSchedule
	// UpHysteresis is the fraction of the cap below which the controller
	// tries stepping back up (default 0.92 when zero).
	UpHysteresis float64 //ppep:allow unitcheck dimensionless hysteresis fraction
	// OneCUPerStep makes each interval adjust a single CU by one state —
	// the finest-grained reactive search, and the configuration whose
	// convergence the paper's 2.8 s settling time reflects. When false,
	// every CU steps together.
	OneCUPerStep bool
	History      []CapStep
}

// Decide implements fxsim.Controller.
func (c *IterativeCapper) Decide(chip *fxsim.Chip, iv trace.Interval) {
	topo := chip.Topology()
	tbl := chip.VFTable()
	capW := c.Target(units.Seconds(iv.TimeS))
	hys := c.UpHysteresis
	if hys == 0 {
		hys = 0.92
	}
	states := make([]arch.VFState, topo.NumCUs)
	for cu := range states {
		states[cu] = chip.PState(cu)
	}
	if units.Watts(iv.MeasPowerW) > capW {
		if c.OneCUPerStep {
			// Lower the highest-state CU one notch.
			best := -1
			for cu, s := range states {
				if s > tbl.Bottom() && (best == -1 || s > states[best]) {
					best = cu
				}
			}
			if best >= 0 {
				states[best]--
			}
		} else {
			for cu := range states {
				if states[cu] > tbl.Bottom() {
					states[cu]--
				}
			}
		}
	} else if iv.MeasPowerW < float64(capW)*hys {
		if c.OneCUPerStep {
			// Raise the lowest-state CU one notch.
			best := -1
			for cu, s := range states {
				if s < tbl.Top() && (best == -1 || s < states[best]) {
					best = cu
				}
			}
			if best >= 0 {
				states[best]++
			}
		} else {
			for cu := range states {
				if states[cu] < tbl.Top() {
					states[cu]++
				}
			}
		}
	}
	for cu, s := range states {
		// out-of-range requests are clamped by the chip; nothing to handle
		_ = chip.SetPState(cu, s)
	}
	c.History = append(c.History, CapStep{
		TimeS:   units.Seconds(iv.TimeS),
		TargetW: capW,
		MeasW:   units.Watts(iv.MeasPowerW),
		States:  states,
	})
}

// CapMetrics summarizes a capping run the way Section V-B reports it.
type CapMetrics struct {
	// Adherence is the fraction of intervals whose measured power was
	// within the budget (with a small tolerance for sensor noise).
	Adherence float64 //ppep:allow unitcheck dimensionless compliance fraction
	// MeanSettleS is the average time from a budget drop to the first
	// compliant interval.
	MeanSettleS units.Seconds
	// Violations counts over-budget intervals.
	Violations int
}

// AnalyzeCapping computes metrics from a controller history. tolW is the
// compliance tolerance in watts (sensor noise allowance).
func AnalyzeCapping(hist []CapStep, tolW units.Watts) CapMetrics {
	var m CapMetrics
	if len(hist) == 0 {
		return m
	}
	compliant := 0
	var settleSum units.Seconds
	var settles int
	pendingDrop := units.Seconds(-1) // time of an unresolved budget drop
	for i, st := range hist {
		ok := st.MeasW <= st.TargetW+tolW
		if ok {
			compliant++
		} else {
			m.Violations++
		}
		if i > 0 && st.TargetW < hist[i-1].TargetW-tolW {
			pendingDrop = hist[i-1].TimeS
		}
		if pendingDrop >= 0 && ok {
			settleSum += st.TimeS - pendingDrop
			settles++
			pendingDrop = -1
		}
	}
	m.Adherence = float64(compliant) / float64(len(hist))
	if settles > 0 {
		m.MeanSettleS = units.Seconds(float64(settleSum) / float64(settles))
	}
	return m
}
