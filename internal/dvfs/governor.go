package dvfs

import (
	"ppep/internal/arch"
	"ppep/internal/core"
	"ppep/internal/fxsim"
	"ppep/internal/trace"
	"ppep/internal/units"
)

// GovStep records one interval of a governor run for later analysis.
type GovStep struct {
	TimeS        units.Seconds
	VF           arch.VFState
	MeasW        units.Watts
	Instructions float64 //ppep:allow unitcheck instruction counts are dimensionless
}

// recorder is the shared bookkeeping of the governors below.
type recorder struct {
	History []GovStep
}

func (r *recorder) record(chip *fxsim.Chip, iv trace.Interval) {
	r.History = append(r.History, GovStep{
		TimeS:        units.Seconds(iv.TimeS),
		VF:           iv.VF(),
		MeasW:        units.Watts(iv.MeasPowerW),
		Instructions: iv.Instructions(),
	})
}

// EnergyJ integrates measured energy over a history.
func EnergyJ(hist []GovStep, intervalS units.Seconds) units.Joules {
	var e units.Joules
	for _, st := range hist {
		e += st.MeasW.Over(intervalS)
	}
	return e
}

// Instructions sums retired instructions over a history.
//
//ppep:allow unitcheck instruction counts are dimensionless
func Instructions(hist []GovStep) float64 {
	var n float64
	for _, st := range hist {
		n += st.Instructions
	}
	return n
}

// StaticGovernor pins a single state — the paper's observation that
// static policies suffice for pure energy optimization (Section V-C1:
// "adopting dynamic DVFS policies improves the results by less than 2%").
type StaticGovernor struct {
	State arch.VFState
	recorder
}

// Decide implements fxsim.Controller.
func (g *StaticGovernor) Decide(chip *fxsim.Chip, iv trace.Interval) {
	// a rejected request leaves the previous state; retried next interval
	_ = chip.SetAllPStates(g.State)
	g.record(chip, iv)
}

// OnDemandGovernor is the Linux-ondemand-style reactive baseline: it
// watches core utilization (unhalted cycles over wall clock) and jumps to
// the top state above the up-threshold, stepping down one state at a time
// below the down-threshold. No prediction involved.
type OnDemandGovernor struct {
	// UpThreshold and DownThreshold bound the utilization band
	// (defaults 0.80 / 0.30 when zero).
	UpThreshold, DownThreshold float64 //ppep:allow unitcheck dimensionless utilization thresholds
	recorder
}

// Decide implements fxsim.Controller.
func (g *OnDemandGovernor) Decide(chip *fxsim.Chip, iv trace.Interval) {
	up, down := g.UpThreshold, g.DownThreshold
	if up == 0 {
		up = 0.80
	}
	if down == 0 {
		down = 0.30
	}
	tbl := chip.VFTable()
	// Utilization: the busiest core's unhalted-cycle share of its clock.
	util := 0.0
	for c := range iv.Counters {
		f := tbl.Point(iv.PerCoreVF[c]).Freq
		if f <= 0 || iv.DurS <= 0 {
			continue
		}
		u := iv.Counters[c].Get(arch.CPUClocksNotHalted) / (f.CyclesPerSec() * iv.DurS)
		if u > util {
			util = u
		}
	}
	cur := chip.PState(0)
	switch {
	case util >= up:
		// a rejected request leaves the previous state; retried next interval
		_ = chip.SetAllPStates(tbl.Top())
	case util <= down && cur > tbl.Bottom():
		// a rejected request leaves the previous state; retried next interval
		_ = chip.SetAllPStates(cur - 1)
	}
	g.record(chip, iv)
}

// PPEPEnergyGovernor picks the predicted energy-optimal state each
// interval — the proactive policy Section V-C1 envisions.
type PPEPEnergyGovernor struct {
	Models *core.Models
	recorder
}

// Decide implements fxsim.Controller.
func (g *PPEPEnergyGovernor) Decide(chip *fxsim.Chip, iv trace.Interval) {
	if rep, err := g.Models.Analyze(iv); err == nil {
		// a rejected request leaves the previous state; retried next interval
		_ = chip.SetAllPStates(EnergyOptimal(rep))
	}
	g.record(chip, iv)
}

// PPEPEDPGovernor picks the predicted EDP-optimal state each interval.
type PPEPEDPGovernor struct {
	Models *core.Models
	recorder
}

// Decide implements fxsim.Controller.
func (g *PPEPEDPGovernor) Decide(chip *fxsim.Chip, iv trace.Interval) {
	if rep, err := g.Models.Analyze(iv); err == nil {
		// a rejected request leaves the previous state; retried next interval
		_ = chip.SetAllPStates(EDPOptimal(rep))
	}
	g.record(chip, iv)
}
