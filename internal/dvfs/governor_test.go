package dvfs

import (
	"testing"

	"ppep/internal/arch"
	"ppep/internal/fxsim"
	"ppep/internal/workload"
)

// runGovernor executes a time-bounded mixed run under the given governor.
func runGovernor(t *testing.T, ctl fxsim.Controller, seconds float64) {
	t.Helper()
	cfg := fxsim.DefaultFX8320Config()
	cfg.PowerGating = true
	chip := fxsim.New(cfg)
	b := *workload.SPECByNumber("458")
	b.Instructions = 1e12
	run := workload.Run{Name: "gov", Suite: "SPE",
		Members: []workload.Member{{Bench: &b, Threads: 2}}}
	if _, err := chip.Collect(run, fxsim.RunOpts{
		VF: arch.VF5, MaxTimeS: seconds, Restart: true, WarmTempK: 318,
		Controller: ctl, Placement: fxsim.PlaceScatter,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestStaticGovernorPins(t *testing.T) {
	g := &StaticGovernor{State: arch.VF2}
	runGovernor(t, g, 3)
	if len(g.History) == 0 {
		t.Fatal("no history")
	}
	for _, st := range g.History[1:] { // first interval ran at VF5
		if st.VF != arch.VF2 {
			t.Errorf("t=%.1f at %v, want VF2", st.TimeS, st.VF)
		}
	}
}

func TestOnDemandRaisesUnderLoad(t *testing.T) {
	g := &OnDemandGovernor{}
	// Start low: a busy chip must be driven up to the top state.
	cfg := fxsim.DefaultFX8320Config()
	chip := fxsim.New(cfg)
	b := *workload.SPECByNumber("458")
	b.Instructions = 1e12
	run := workload.Run{Name: "od", Suite: "SPE",
		Members: []workload.Member{{Bench: &b, Threads: 2}}}
	if _, err := chip.Collect(run, fxsim.RunOpts{
		VF: arch.VF1, MaxTimeS: 2, Restart: true, WarmTempK: 318,
		Controller: g, Placement: fxsim.PlaceScatter,
	}); err != nil {
		t.Fatal(err)
	}
	last := g.History[len(g.History)-1]
	if last.VF != arch.VF5 {
		t.Errorf("ondemand stayed at %v under full load", last.VF)
	}
}

func TestOnDemandDropsWhenIdle(t *testing.T) {
	g := &OnDemandGovernor{}
	cfg := fxsim.DefaultFX8320Config()
	chip := fxsim.New(cfg)
	// No workload at all: utilization zero, must walk down to VF1.
	for i := 0; i < 6; i++ {
		for k := 0; k < 200; k++ {
			chip.Tick()
		}
		iv := chip.ReadInterval()
		g.Decide(chip, iv)
	}
	if chip.PState(0) != arch.VF1 {
		t.Errorf("idle chip at %v, want VF1", chip.PState(0))
	}
}

func TestEnergyHelpers(t *testing.T) {
	hist := []GovStep{{MeasW: 50, Instructions: 1e9}, {MeasW: 70, Instructions: 2e9}}
	if got := EnergyJ(hist, 0.2); got != 24 {
		t.Errorf("EnergyJ = %v", got)
	}
	if got := Instructions(hist); got != 3e9 {
		t.Errorf("Instructions = %v", got)
	}
}

func TestPPEPGovernorsSteer(t *testing.T) {
	m := trainedModels(t)
	eg := &PPEPEnergyGovernor{Models: m}
	runGovernor(t, eg, 3)
	lastE := eg.History[len(eg.History)-1]
	if lastE.VF > arch.VF2 {
		t.Errorf("energy governor parked at %v, want a low state", lastE.VF)
	}
	pg := &PPEPEDPGovernor{Models: m}
	runGovernor(t, pg, 3)
	lastP := pg.History[len(pg.History)-1]
	if lastP.VF < arch.VF3 {
		t.Errorf("EDP governor parked at %v, want a high state for CPU-bound work", lastP.VF)
	}
	// The energy governor must spend less energy per instruction than
	// the EDP governor; the EDP governor must retire instructions faster.
	eJPI := float64(EnergyJ(eg.History, 0.2)) / Instructions(eg.History)
	pJPI := float64(EnergyJ(pg.History, 0.2)) / Instructions(pg.History)
	if eJPI >= pJPI {
		t.Errorf("energy governor %.3g J/inst not below EDP governor %.3g", eJPI, pJPI)
	}
	if Instructions(pg.History) <= Instructions(eg.History) {
		t.Error("EDP governor should retire more instructions")
	}
}
