package experiments

import (
	"fmt"

	"ppep/internal/arch"
	"ppep/internal/dvfs"
	"ppep/internal/fxsim"
	"ppep/internal/units"
	"ppep/internal/workload"
)

// Fig7 reproduces Figure 7: power capping responsiveness of the
// PPEP-based one-step policy versus the simple iterative policy, running
// 429.mcf + 458.sjeng + 416.gamess + swaptions on four CUs with per-CU
// power planes, under a stepped power budget.
func (c *Campaign) Fig7() (*Result, error) {
	if c.Models == nil {
		return nil, fmt.Errorf("experiments: campaign has no trained models")
	}
	schedule := dvfs.StepSchedule(
		[]units.Seconds{0, 20, 40},
		[]units.Watts{130, 48, 105},
	)
	const runS = 60

	runWith := func(ctl fxsim.Controller, seed int64) error {
		cfg := c.ChipConfig()
		cfg.PowerGating = true
		cfg.PerCUPlanes = true
		cfg.SensorSeed = seed
		chip := fxsim.New(cfg)
		_, err := chip.Collect(workload.CappingMix(), fxsim.RunOpts{
			VF: arch.VF5, MaxTimeS: runS, Restart: true, WarmTempK: 325,
			Controller: ctl, Placement: fxsim.PlaceScatter,
		})
		return err
	}

	ppep := &dvfs.PPEPCapper{Models: c.Models, Target: schedule}
	if err := runWith(ppep, 71); err != nil {
		return nil, err
	}
	iter := &dvfs.IterativeCapper{Target: schedule, OneCUPerStep: true, UpHysteresis: 0.97}
	if err := runWith(iter, 72); err != nil {
		return nil, err
	}

	pm := dvfs.AnalyzeCapping(ppep.History, 0.5)
	im := dvfs.AnalyzeCapping(iter.History, 0.5)

	res := &Result{
		ID:     "fig7",
		Title:  "One-step power capping vs iterative policy",
		Header: []string{"policy", "settle (s)", "adherence", "violations"},
	}
	res.AddRow("PPEP one-step", f2(float64(pm.MeanSettleS)), pct(pm.Adherence), fmt.Sprint(pm.Violations))
	res.AddRow("iterative", f2(float64(im.MeanSettleS)), pct(im.Adherence), fmt.Sprint(im.Violations))
	speed := 0.0
	if pm.MeanSettleS > 0 {
		speed = im.MeanSettleS.Per(pm.MeanSettleS)
	}
	res.AddRow("speedup", fmt.Sprintf("%.1f×", speed), "", "")
	res.Metric("ppep_settle_s", float64(pm.MeanSettleS))
	res.Metric("iter_settle_s", float64(im.MeanSettleS))
	res.Metric("ppep_adherence", pm.Adherence)
	res.Metric("iter_adherence", im.Adherence)
	res.Metric("speedup", speed)
	// Downsampled trajectory rows for the two time series.
	res.Notes = append(res.Notes,
		"paper: PPEP settles within one 0.2 s interval vs 2.8 s iterative (14×); adherence 94% vs 81%")
	appendTrajectory(res, "ppep", ppep.History)
	appendTrajectory(res, "iter", iter.History)
	return res, nil
}

// appendTrajectory adds a downsampled (time, target, measured) series.
func appendTrajectory(res *Result, label string, hist []dvfs.CapStep) {
	stride := len(hist) / 15
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < len(hist); i += stride {
		st := hist[i]
		res.AddRow(fmt.Sprintf("%s t=%.1fs", label, st.TimeS),
			fmt.Sprintf("cap %.0fW", st.TargetW),
			fmt.Sprintf("meas %.1fW", st.MeasW), "")
	}
}
