package experiments

import (
	"fmt"
	"math"

	"ppep/internal/arch"
	"ppep/internal/core/cpimodel"
	"ppep/internal/core/eventpred"
	"ppep/internal/stats"
	"ppep/internal/trace"
	"ppep/internal/units"
)

// CPIAccuracy reproduces the Section III evaluation: the LL-MAB CPI
// predictor's segment-aligned error on the 52 single-threaded benchmarks
// between VF5 and VF2 (the paper: 3.4% down / 3.0% up).
func (c *Campaign) CPIAccuracy() (*Result, error) {
	res := &Result{
		ID:     "sec3-cpi",
		Title:  "LL-MAB CPI predictor error (single-threaded, VF5 ↔ VF2)",
		Header: []string{"direction", "AAE", "SD", "benchmarks"},
	}
	hi, lo := c.Table.Top(), arch.VF2
	if !c.Table.Contains(lo) {
		lo = c.Table.Bottom()
	}
	fHi := c.Table.Point(hi).Freq
	fLo := c.Table.Point(lo).Freq

	var down, up []float64
	names := c.SingleThreadedNames()
	used := 0
	for _, name := range names {
		trHi := c.ByName[name][hi]
		trLo := c.ByName[name][lo]
		if trHi == nil || trLo == nil {
			continue
		}
		seg := segmentSize(trHi)
		d, err := cpimodel.SegmentErrors(trHi, trLo, 0, fHi, fLo, seg)
		if err != nil {
			continue
		}
		u, err := cpimodel.SegmentErrors(trLo, trHi, 0, fLo, fHi, seg)
		if err != nil {
			continue
		}
		down = append(down, stats.Mean(d))
		up = append(up, stats.Mean(u))
		used++
	}
	if used == 0 {
		return nil, fmt.Errorf("experiments: no single-threaded traces for CPI accuracy")
	}
	ds := stats.SummarizeAbsErrors(down)
	us := stats.SummarizeAbsErrors(up)
	res.AddRow(fmt.Sprintf("%v→%v", hi, lo), pct(ds.Mean), pct(ds.SD), fmt.Sprint(used))
	res.AddRow(fmt.Sprintf("%v→%v", lo, hi), pct(us.Mean), pct(us.SD), fmt.Sprint(used))
	res.Metric("down_aae", ds.Mean)
	res.Metric("up_aae", us.Mean)
	res.Notes = append(res.Notes, "paper: 3.4% (SD 4.6%) down, 3.0% (SD 3.2%) up")
	return res, nil
}

// segmentSize picks an instruction segment ~5% of the run.
func segmentSize(tr *trace.Trace) float64 {
	total := 0.0
	for _, iv := range tr.Intervals {
		total += iv.Counters[0].Get(arch.RetiredInstructions)
	}
	seg := total / 20
	if seg <= 0 {
		seg = 1e8
	}
	return seg
}

// Observations verifies the Section IV-C observations on the campaign
// traces: per-instruction core-private event invariance (Obs. 1) and the
// CPI − DispatchStalls/inst gap invariance (Obs. 2) between VF5 and VF2.
func (c *Campaign) Observations() (*Result, error) {
	res := &Result{
		ID:     "sec4c-obs",
		Title:  "Observation 1 & 2 checks (VF5 vs VF2, single-threaded)",
		Header: []string{"quantity", "mean |diff|", "paper"},
	}
	hi, lo := c.Table.Top(), arch.VF2
	paper := []string{"0.6%", "0.9%", "0.7%", "5.0%", "0.7%", "1.3%", "—", "4.0%"}

	var evDiffs [8][]float64
	var gapDiffs []float64
	for _, name := range c.SingleThreadedNames() {
		trHi := c.ByName[name][hi]
		trLo := c.ByName[name][lo]
		if trHi == nil || trLo == nil {
			continue
		}
		hiPI, hiGap, ok1 := runFingerprint(trHi)
		loPI, loGap, ok2 := runFingerprint(trLo)
		if !ok1 || !ok2 {
			continue
		}
		for i := 0; i < 8; i++ {
			if hiPI[i] > 0 {
				evDiffs[i] = append(evDiffs[i], math.Abs(float64(loPI[i]-hiPI[i]))/float64(hiPI[i]))
			}
		}
		if hiGap > 0 {
			gapDiffs = append(gapDiffs, math.Abs(float64(loGap-hiGap))/float64(hiGap))
		}
	}
	if len(gapDiffs) == 0 {
		return nil, fmt.Errorf("experiments: no traces for observation checks")
	}
	for i := 0; i < 8; i++ {
		res.AddRow(fmt.Sprintf("E%d/inst", i+1), pct(stats.Mean(evDiffs[i])), paper[i])
		res.Metric(fmt.Sprintf("obs1_e%d", i+1), stats.Mean(evDiffs[i]))
	}
	gap := stats.Mean(gapDiffs)
	res.AddRow("CPI − DS/inst (Obs.2)", pct(gap), "1.7%")
	res.Metric("obs2_gap", gap)
	return res, nil
}

// runFingerprint computes a run's average per-instruction E1–E8 rates and
// the Observation 2 gap, weighted by instructions.
func runFingerprint(tr *trace.Trace) ([8]units.EventsPerInst, units.CPI, bool) {
	var sums arch.EventVec
	for _, iv := range tr.Intervals {
		for _, ev := range iv.Counters {
			sums.Add(ev)
		}
	}
	pi, ok := eventpred.PerInstruction(sums)
	if !ok {
		return pi, 0, false
	}
	gap, ok := eventpred.Gap(sums)
	return pi, gap, ok
}
