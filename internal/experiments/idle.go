package experiments

import (
	"fmt"

	"ppep/internal/core/idlepower"
)

// Fig1 reproduces Figure 1: the idle power and temperature transient at
// VF5 as the chip heats under load and cools while idle. Rows are a
// downsampled trace of the cooling phase.
func (c *Campaign) Fig1() (*Result, error) {
	res := &Result{
		ID:     "fig1",
		Title:  "Idle power and temperature during cool-down at top VF",
		Header: []string{"step(200ms)", "power(W)", "temp(K)"},
	}
	tr, ok := c.Idle[c.Table.Top()]
	if !ok {
		return nil, fmt.Errorf("experiments: no idle transient at top VF")
	}
	stride := len(tr.Intervals) / 20
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < len(tr.Intervals); i += stride {
		iv := tr.Intervals[i]
		res.AddRow(fmt.Sprint(i+1), f2(iv.MeasPowerW), f2(iv.TempK))
	}
	first, last := tr.Intervals[0], tr.Intervals[len(tr.Intervals)-1]
	res.Metric("start_temp_k", first.TempK)
	res.Metric("end_temp_k", last.TempK)
	res.Metric("start_power_w", first.MeasPowerW)
	res.Metric("end_power_w", last.MeasPowerW)
	res.Notes = append(res.Notes,
		"paper: power and temperature fall together during cooling; leakage ≈ linear in T over the operating range")
	return res, nil
}

// IdleModelAccuracy reproduces the Section IV-A validation: the idle
// power model's AAE per VF state (paper: 2/3/4/3/3% on the FX-8320,
// 3/2/2/2% on the Phenom II).
func (c *Campaign) IdleModelAccuracy() (*Result, error) {
	res := &Result{
		ID:     "sec4a-idle",
		Title:  "Chip idle power model validation (" + c.Platform + ")",
		Header: []string{"state", "AAE", "SD"},
	}
	model, err := idlepower.TrainFromTraces(c.Idle, c.Table)
	if err != nil {
		return nil, err
	}
	// Highest state first, as the paper lists "VF5 down to VF1".
	states := c.Table.States()
	var sumAAE float64
	for i := len(states) - 1; i >= 0; i-- {
		vf := states[i]
		tr, ok := c.Idle[vf]
		if !ok {
			continue
		}
		s := model.Validate(tr, c.Table)
		res.AddRow(vf.String(), pct(s.Mean), pct(s.SD))
		res.Metric("aae_"+vf.String(), s.Mean)
		sumAAE += s.Mean
	}
	res.Metric("avg_aae", sumAAE/float64(len(states)))
	res.Notes = append(res.Notes, "paper (FX-8320): 2%, 3%, 4%, 3%, 3% for VF5..VF1")
	return res, nil
}
