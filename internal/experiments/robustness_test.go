package experiments

import (
	"testing"

	"ppep/internal/arch"
	"ppep/internal/core"
	"ppep/internal/trace"
)

// Robustness tests: the models and harnesses must degrade gracefully on
// damaged measurement data — sensor dropouts, idle intervals, truncated
// traces — rather than produce NaNs or panics.

func TestPhenomCampaignSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign too heavy for -short")
	}
	c, err := NewPhenomCampaign(Options{Scale: 0.04, MaxRunsPerSuite: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Idle) != 4 {
		t.Errorf("Phenom idle traces = %d, want 4", len(c.Idle))
	}
	if c.Models == nil {
		t.Fatal("Phenom models not trained")
	}
	// Its analyses stay well-formed on its own intervals.
	iv := c.Runs[0].Trace.Intervals[0]
	rep, err := c.Models.Analyze(iv)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerVF) != 4 {
		t.Errorf("Phenom projections = %d, want 4", len(rep.PerVF))
	}
	res, err := c.IdleModelAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["avg_aae"] > 0.08 {
		t.Errorf("Phenom idle AAE %.1f%%", 100*res.Metrics["avg_aae"])
	}
}

func TestAnalyzeSurvivesSensorDropout(t *testing.T) {
	c := testCampaign(t)
	iv := c.Runs[0].Trace.Intervals[1]
	iv.MeasPowerW = 0 // the Arduino hiccuped; estimates don't use it
	rep, err := c.Models.Analyze(iv)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.PerVF {
		if p.ChipW <= 0 {
			t.Errorf("%v: non-positive estimate under dropout", p.VF)
		}
	}
}

func TestTrainingSurvivesDropoutIntervals(t *testing.T) {
	c := testCampaign(t)
	// Damage a copy of the training runs: zero every fifth measurement.
	runs := make([]core.RunTrace, 0, len(c.Runs))
	for _, rt := range c.Runs {
		cp := *rt.Trace
		cp.Intervals = append([]trace.Interval(nil), rt.Trace.Intervals...)
		for i := range cp.Intervals {
			if i%5 == 0 {
				cp.Intervals[i].MeasPowerW = 0
			}
		}
		runs = append(runs, core.RunTrace{Name: rt.Name, Suite: rt.Suite, VF: rt.VF, Trace: &cp})
	}
	ts := core.TrainingSet{IdleTraces: c.Idle, Runs: runs}
	m, err := core.Train(ts, c.Table)
	if err != nil {
		t.Fatal(err)
	}
	// Dropout samples clamp dynamic power at zero; weights must remain
	// finite and non-negative.
	for i, w := range m.Dyn.W {
		if w < 0 || w != w {
			t.Errorf("W[%d] = %v after dropout training", i, w)
		}
	}
}

func TestAnalyzeAllIdleInterval(t *testing.T) {
	c := testCampaign(t)
	iv := trace.Interval{
		DurS:      0.2,
		TempK:     318,
		Counters:  make([]arch.EventVec, 8),
		PerCoreVF: make([]arch.VFState, 8),
		Busy:      make([]bool, 8),
	}
	for i := range iv.PerCoreVF {
		iv.PerCoreVF[i] = arch.VF3
	}
	rep, err := c.Models.Analyze(iv)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.PerVF {
		if p.DynW != 0 {
			t.Errorf("%v: idle chip predicted %v W dynamic", p.VF, p.DynW)
		}
		if p.IdleW <= 0 {
			t.Errorf("%v: idle power missing", p.VF)
		}
		if p.TotalIPS != 0 {
			t.Errorf("%v: idle chip predicted throughput", p.VF)
		}
	}
}

func TestExperimentsOnTruncatedTraces(t *testing.T) {
	// Single-interval traces (extreme truncation) must not break the
	// error harnesses.
	c := testCampaign(t)
	short := &Campaign{
		Platform: c.Platform,
		Table:    c.Table,
		ByName:   map[string]map[arch.VFState]*trace.Trace{},
		Idle:     c.Idle,
		PGSweeps: c.PGSweeps,
		Models:   c.Models,
		GG:       c.GG,
		opts:     c.opts,
	}
	for name, traces := range c.ByName {
		short.ByName[name] = map[arch.VFState]*trace.Trace{}
		for vf, tr := range traces {
			cp := *tr
			if len(cp.Intervals) > 1 {
				cp.Intervals = cp.Intervals[:1]
			}
			short.ByName[name][vf] = &cp
			short.Runs = append(short.Runs, core.RunTrace{
				Name: name, Suite: runSuite(c, name), VF: vf, Trace: &cp,
			})
		}
	}
	if _, _, err := short.Fig2(); err != nil {
		t.Errorf("Fig2 on truncated traces: %v", err)
	}
	if _, _, err := short.Fig3(); err != nil {
		t.Errorf("Fig3 on truncated traces: %v", err)
	}
}

func runSuite(c *Campaign, name string) string {
	for _, rt := range c.Runs {
		if rt.Name == name {
			return rt.Suite
		}
	}
	return "SPE"
}
