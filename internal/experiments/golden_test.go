package experiments

import (
	"math"
	"testing"
)

// goldenCampaignWant is the fingerprint of a small fixed-seed FX campaign
// recorded from the serial (pre-worker-pool) implementation. The campaign
// derives every chip's sensor seed from the (run, VF) identity, so the
// idle transients, benchmark collection, and power-gating sweeps must
// produce bit-identical results no matter how many workers execute them
// or in which order the phases' jobs are scheduled.
const goldenCampaignWant = uint64(0x58c37d4a16639fec)

// campaignFingerprint folds the deterministic measurement artifacts of a
// campaign — idle traces, run traces, and PG sweep powers, all in a fixed
// iteration order — into one hash. Model coefficients are derived from
// these, so hashing the measurements pins the whole pipeline.
func campaignFingerprint(c *Campaign) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime
			x >>= 8
		}
	}
	mixF := func(x float64) { mix(math.Float64bits(x)) }
	for _, vf := range c.Table.States() {
		if tr := c.Idle[vf]; tr != nil {
			mix(tr.Fingerprint())
		}
	}
	for _, rt := range c.Runs {
		mix(uint64(rt.VF))
		mix(rt.Trace.Fingerprint())
	}
	for _, vf := range c.Table.States() {
		s := c.PGSweeps[vf]
		for _, w := range s.PGOff {
			mixF(float64(w))
		}
		for _, w := range s.PGOn {
			mixF(float64(w))
		}
	}
	return h
}

// TestGoldenCampaignEquivalence runs a reduced fixed-seed campaign twice
// with different worker counts and checks both against the recorded
// serial-implementation fingerprint: the parallel phases must be
// bit-deterministic and schedule-independent.
func TestGoldenCampaignEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign fingerprint is a multi-second run")
	}
	for _, workers := range []int{1, 4} {
		c, err := NewFXCampaign(Options{Scale: 0.02, MaxRunsPerSuite: 2, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got := campaignFingerprint(c); got != goldenCampaignWant {
			t.Errorf("workers=%d: campaign fingerprint %#x, want %#x", workers, got, goldenCampaignWant)
		}
	}
}
