package experiments

import (
	"fmt"

	"ppep/internal/core/pgidle"
)

// Fig4 reproduces Figure 4: chip power versus busy compute units with
// power gating disabled and enabled, at every VF state, plus the derived
// idle power decomposition (P_idle(CU), P_idle(NB), P_idle(Base)).
func (c *Campaign) Fig4() (*Result, error) {
	if len(c.PGSweeps) == 0 {
		return nil, fmt.Errorf("experiments: no power-gating sweeps in campaign")
	}
	res := &Result{
		ID:     "fig4",
		Title:  "Chip power vs busy CUs, power gating off/on",
		Header: []string{"state", "busy CUs", "PG off (W)", "PG on (W)"},
	}
	states := c.Table.States()
	for i := len(states) - 1; i >= 0; i-- {
		vf := states[i]
		sweep, ok := c.PGSweeps[vf]
		if !ok {
			continue
		}
		for k := range sweep.PGOff {
			res.AddRow(vf.String(), fmt.Sprint(k), f2(float64(sweep.PGOff[k])), f2(float64(sweep.PGOn[k])))
		}
		d, err := pgidle.Decompose(sweep)
		if err != nil {
			return nil, fmt.Errorf("experiments: decompose at %v: %w", vf, err)
		}
		res.AddRow(vf.String(), "→ decomposition",
			fmt.Sprintf("Pidle(CU)=%.2fW Pidle(NB)=%.2fW", d.PidleCU, d.PidleNB),
			fmt.Sprintf("Pidle(Base)=%.2fW", d.PidleBase))
		res.Metric("pidle_cu_"+vf.String(), float64(d.PidleCU))
		res.Metric("pidle_nb_"+vf.String(), float64(d.PidleNB))
		res.Metric("pidle_base_"+vf.String(), float64(d.PidleBase))
	}
	res.Notes = append(res.Notes,
		"paper: gaps at k busy CUs equal (4−k)·Pidle(CU); the idle gap adds Pidle(NB); Pidle(Base) is VF-independent")
	return res, nil
}
