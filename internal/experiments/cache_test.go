package experiments

import (
	"strings"
	"testing"
)

// TestCacheEquivalence runs the same reduced campaign three times: cold
// (no cache), cold into a fresh cache, and warm from that cache. All
// three must produce identical campaign fingerprints — the cache's core
// contract is bit-transparency — and the warm run must be pure decode
// (zero misses), including the lazily-collected exploration traces.
func TestCacheEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign fingerprint is a multi-second run")
	}
	// MaxRunsPerSuite 3 is the smallest suite cap that still trains at
	// Scale 0.01 (the dynamic-power fit needs enough top-voltage samples).
	opts := Options{Scale: 0.01, MaxRunsPerSuite: 3, Workers: 4}

	uncached, err := NewFXCampaign(opts)
	if err != nil {
		t.Fatal(err)
	}
	want := campaignFingerprint(uncached)
	if _, ok := uncached.CacheStats(); ok {
		t.Fatal("campaign without CacheDir reports cache stats")
	}

	opts.CacheDir = t.TempDir()
	cold, err := NewFXCampaign(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := campaignFingerprint(cold); got != want {
		t.Errorf("cold cached campaign fingerprint %#x, want uncached %#x", got, want)
	}
	if _, err := cold.exploreTraces(); err != nil {
		t.Fatal(err)
	}
	coldStats, ok := cold.CacheStats()
	if !ok || coldStats.Misses == 0 || coldStats.Hits != 0 {
		t.Fatalf("cold stats = %+v, want all misses", coldStats)
	}

	warm, err := NewFXCampaign(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := campaignFingerprint(warm); got != want {
		t.Errorf("warm campaign fingerprint %#x, want %#x", got, want)
	}
	wtr, err := warm.exploreTraces()
	if err != nil {
		t.Fatal(err)
	}
	ctr, err := cold.exploreTraces()
	if err != nil {
		t.Fatal(err)
	}
	for name, tr := range ctr {
		w, ok := wtr[name]
		if !ok || w.Fingerprint() != tr.Fingerprint() {
			t.Errorf("explore trace %q differs between cold and warm", name)
		}
	}
	warmStats, ok := warm.CacheStats()
	if !ok {
		t.Fatal("warm campaign reports no cache stats")
	}
	if warmStats.Misses != 0 || warmStats.Corrupt != 0 {
		t.Errorf("warm stats = %+v, want zero misses (pure decode)", warmStats)
	}
	if warmStats.Hits != coldStats.Misses {
		t.Errorf("warm hits %d != cold misses %d: cell keys unstable across runs",
			warmStats.Hits, coldStats.Misses)
	}
}

func TestOptionsValidation(t *testing.T) {
	cases := []struct {
		opts Options
		frag string
	}{
		{Options{Scale: -0.5}, "Scale"},
		{Options{MaxRunsPerSuite: -1}, "MaxRunsPerSuite"},
		{Options{Workers: -2}, "Workers"},
	}
	for _, tc := range cases {
		if _, err := NewFXCampaign(tc.opts); err == nil || !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("NewFXCampaign(%+v): err = %v, want mention of %s", tc.opts, err, tc.frag)
		}
		if _, err := NewPhenomCampaign(tc.opts); err == nil || !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("NewPhenomCampaign(%+v): err = %v, want mention of %s", tc.opts, err, tc.frag)
		}
	}
}

// TestSeedOfGolden pins two seeds produced by the original fmt.Fprintf
// implementation: the direct FNV mixing must keep the byte-identical
// hash input, or every golden fingerprint in the repo would drift.
func TestSeedOfGolden(t *testing.T) {
	if got := seedOf("idle", 1); got != 0x280786bab6f0d428 {
		t.Errorf("seedOf(\"idle\", 1) = %#x, want 0x280786bab6f0d428", got)
	}
	if got := seedOf("433 x2", 5); got != 0x586403ec6f43a442 {
		t.Errorf("seedOf(\"433 x2\", 5) = %#x, want 0x586403ec6f43a442", got)
	}
}

func TestSeedOfAllocFree(t *testing.T) {
	if n := testing.AllocsPerRun(100, func() {
		seedOf("462+470", 3)
	}); n != 0 {
		t.Errorf("seedOf allocates %.0f times per call, want 0", n)
	}
}
