package experiments

import (
	"fmt"
	"sort"

	"ppep/internal/core"
	"ppep/internal/stats"
	"ppep/internal/trace"
	"ppep/internal/units"
)

// Outliers reproduces the paper's outlier analysis (Section IV-B2: "we do
// see a few outliers, with a maximum error up to 49%... DC and IS from
// NPB, and dedup from PARSEC... rapid phase changes... may cause errors
// because of our performance counter multiplexing"). It ranks runs by
// their cross-validated dynamic power error and correlates the worst
// against each run's phase-change score.
func (c *Campaign) Outliers() (*Result, error) {
	folds, err := c.crossValidate(4)
	if err != nil {
		return nil, err
	}
	type row struct {
		name  string
		aae   float64
		max   float64
		phase float64
	}
	byName := map[string]*row{}
	for _, fm := range folds {
		for _, rt := range c.Runs {
			if !fm.testNames[rt.Name] || rt.VF != c.Table.Top() {
				continue
			}
			var errs []float64
			v := c.Table.Point(rt.VF).Voltage
			for _, iv := range core.SteadyIntervals(rt.Trace) {
				idleEst := fm.models.Idle.Estimate(v, units.Kelvin(iv.TempK))
				measDyn := iv.MeasPowerW - float64(idleEst)
				if measDyn <= 0.5 {
					continue
				}
				estDyn := fm.models.Dyn.EstimateRates(iv.TotalRates().PowerEvents(), v)
				errs = append(errs, stats.AbsPctErr(float64(estDyn), measDyn))
			}
			if len(errs) == 0 {
				continue
			}
			s := stats.SummarizeAbsErrors(errs)
			byName[rt.Name] = &row{
				name:  rt.Name,
				aae:   s.Mean,
				max:   s.Max,
				phase: trace.PhaseChangeScore(rt.Trace),
			}
		}
	}
	if len(byName) == 0 {
		return nil, fmt.Errorf("experiments: no runs for outlier analysis")
	}
	rows := make([]*row, 0, len(byName))
	for _, r := range byName {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].aae > rows[j].aae })

	res := &Result{
		ID:     "sec4b-outliers",
		Title:  "Dynamic power error outliers vs phase-change score (top VF)",
		Header: []string{"run", "AAE", "max err", "phase score"},
	}
	top := rows
	if len(top) > 10 {
		top = rows[:10]
	}
	for _, r := range top {
		res.AddRow(r.name, pct(r.aae), pct(r.max), f2(r.phase))
	}
	// Correlation between error and phase volatility across all runs.
	var errsAll, phases []float64
	for _, r := range rows {
		errsAll = append(errsAll, r.aae)
		phases = append(phases, r.phase)
	}
	corr := stats.Pearson(phases, errsAll)
	res.Metric("phase_error_corr", corr)
	res.Metric("worst_aae", rows[0].aae)
	res.Metric("worst_max", rows[0].max)
	res.Notes = append(res.Notes,
		"paper: max error up to 49%, concentrated in dedup, IS, and DC — rapid phase changes vs counter multiplexing")
	return res, nil
}
