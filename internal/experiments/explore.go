package experiments

import (
	"fmt"

	"ppep/internal/arch"
	"ppep/internal/core"
	"ppep/internal/dvfs"
	"ppep/internal/fxsim"
	"ppep/internal/trace"
	"ppep/internal/workload"
)

// exploreBenches are the Section V featured programs: memory-bound
// 433.milc and CPU-bound 458.sjeng.
var exploreBenches = []string{"433", "458"}

// exploreModes are the instance counts (x1..x4, one instance per CU).
var exploreModes = []int{1, 2, 3, 4}

// exploreTraces runs the Section V workloads (433/458 × x1..x4) at the
// top VF state with power gating enabled, as the paper does ("power
// gating is enabled for all of these experiments").
func (c *Campaign) exploreTraces() (map[string]*trace.Trace, error) {
	c.exploreOnce.Do(func() {
		c.exploreTr = map[string]*trace.Trace{}
		for _, num := range exploreBenches {
			for _, n := range exploreModes {
				run := workload.MultiInstance(num, n)
				cfg := c.ChipConfig()
				cfg.PowerGating = true
				cfg.SensorSeed = seedOf("explore-"+run.Name, c.Table.Top())
				scaled := scaleRun(run, c.opts.Scale)
				ro := fxsim.RunOpts{
					VF: c.Table.Top(), WarmTempK: 320,
					Placement: fxsim.PlaceScatter, MaxTimeS: 600,
				}
				tr, err := c.simulate("explore", cfg, collectDef{Run: scaled, Opts: ro},
					func() (*trace.Trace, error) {
						return fxsim.New(cfg).Collect(scaled, ro)
					})
				if err != nil {
					c.exploreErr = fmt.Errorf("experiments: explore run %s: %w", run.Name, err)
					return
				}
				c.exploreTr[run.Name] = tr
			}
		}
	})
	return c.exploreTr, c.exploreErr
}

// pgModels returns the campaign models flipped into PG-enabled mode
// (Section IV-D: the PG-aware per-core model reuses the same dynamic
// model with the decomposition-based idle attribution).
func (c *Campaign) pgModels() *core.Models {
	m := *c.Models
	m.PGEnabled = true
	return &m
}

// threadPPE is one (state → per-thread energy/delay) exploration of a run.
type threadPPE struct {
	EnergyJ map[arch.VFState]float64
	DelayS  map[arch.VFState]float64
}

// explorePPE integrates per-thread energy and delay across a run's trace
// for every VF state, using PPEP's per-core power attribution
// (Equations 3 and 7).
func (c *Campaign) explorePPE(tr *trace.Trace) (threadPPE, error) {
	m := c.pgModels()
	out := threadPPE{
		EnergyJ: map[arch.VFState]float64{},
		DelayS:  map[arch.VFState]float64{},
	}
	topo := arch.FX8320
	threads := 0
	for _, iv := range tr.Intervals {
		rep, err := m.Analyze(iv)
		if err != nil {
			return out, err
		}
		busyInChip := 0
		busyPerCU := make([]int, topo.NumCUs)
		for ci, b := range iv.Busy {
			if b {
				busyInChip++
				busyPerCU[topo.CUOf(ci)]++
			}
		}
		if busyInChip == 0 {
			continue
		}
		if busyInChip > threads {
			threads = busyInChip
		}
		for _, s := range c.Table.States() {
			proj := rep.At(s)
			d := m.PG[s]
			fTo := c.Table.Point(s).Freq
			for ci := range iv.Counters {
				if !iv.Busy[ci] {
					continue
				}
				inst := iv.Counters[ci].Get(arch.RetiredInstructions)
				if inst <= 0 || proj.PerCoreCPI[ci] <= 0 {
					continue
				}
				ips := float64(fTo) * 1e9 / float64(proj.PerCoreCPI[ci])
				timeAtS := inst / ips
				idleShare := d.PerCoreIdleW(true, topo.NumCUs, busyPerCU[topo.CUOf(ci)], busyInChip)
				out.EnergyJ[s] += float64(proj.PerCoreDynW[ci]+idleShare) * timeAtS
				out.DelayS[s] += timeAtS
			}
		}
	}
	if threads > 0 {
		for s := range out.EnergyJ {
			out.EnergyJ[s] /= float64(threads)
			out.DelayS[s] /= float64(threads)
		}
	}
	return out, nil
}

// Fig8 reproduces Figure 8: per-thread energy of 433.milc and 458.sjeng
// at every VF state with x1..x4 instances, normalized to each program's
// (x1, VF5) value.
func (c *Campaign) Fig8() (*Result, error) {
	return c.exploreTable("fig8", "Per-thread energy across VF states and instance counts",
		func(p threadPPE, s arch.VFState) float64 { return p.EnergyJ[s] },
		[]string{
			"paper obs.1: the lowest VF state minimizes energy for both programs",
			"paper obs.2: multi-instance memory-bound runs raise per-thread energy at high VF (NB contention)",
			"paper obs.3: multi-instance CPU-bound runs lower per-thread energy (shared NB power)",
		})
}

// Fig9 reproduces Figure 9: per-thread EDP on the same grid (the paper:
// the best-EDP state shifts from VF5 toward VF4 as instances are added).
func (c *Campaign) Fig9() (*Result, error) {
	return c.exploreTable("fig9", "Per-thread EDP across VF states and instance counts",
		func(p threadPPE, s arch.VFState) float64 { return p.EnergyJ[s] * p.DelayS[s] },
		[]string{"paper: best-EDP state shifts from VF5 toward VF4 with more background instances"})
}

func (c *Campaign) exploreTable(id, title string, metric func(threadPPE, arch.VFState) float64, notes []string) (*Result, error) {
	traces, err := c.exploreTraces()
	if err != nil {
		return nil, err
	}
	res := &Result{ID: id, Title: title}
	res.Header = []string{"run"}
	states := c.Table.States()
	for i := len(states) - 1; i >= 0; i-- {
		res.Header = append(res.Header, states[i].String())
	}
	for _, num := range exploreBenches {
		var base float64
		for _, n := range exploreModes {
			name := fmt.Sprintf("%s x%d", num, n)
			tr, ok := traces[name]
			if !ok {
				continue
			}
			ppe, err := c.explorePPE(tr)
			if err != nil {
				return nil, err
			}
			if n == 1 {
				base = metric(ppe, c.Table.Top())
			}
			row := []string{name}
			bestVF, bestV := arch.VFState(0), 0.0
			for i := len(states) - 1; i >= 0; i-- {
				s := states[i]
				v := metric(ppe, s)
				norm := 0.0
				if base > 0 {
					norm = v / base
				}
				row = append(row, f2(norm))
				if s == c.Table.Top() {
					res.Metric("top_"+name, norm)
				}
				if s == c.Table.Bottom() {
					res.Metric("bottom_"+name, norm)
				}
				if bestVF == 0 || v < bestV {
					bestVF, bestV = s, v
				}
			}
			res.Rows = append(res.Rows, row)
			res.Metric("best_vf_"+name, float64(bestVF))
		}
	}
	res.Notes = notes
	return res, nil
}

// Fig10 reproduces Figure 10: the NB's share of per-thread energy for the
// same grid, split with PPEP's core/NB attribution.
func (c *Campaign) Fig10() (*Result, error) {
	traces, err := c.exploreTraces()
	if err != nil {
		return nil, err
	}
	m := c.pgModels()
	res := &Result{
		ID:     "fig10",
		Title:  "NB share of per-thread energy",
		Header: []string{"run", "state", "NB ratio"},
	}
	states := c.Table.States()
	perBench := map[string][]float64{}
	for _, num := range exploreBenches {
		for _, n := range exploreModes {
			name := fmt.Sprintf("%s x%d", num, n)
			tr, ok := traces[name]
			if !ok {
				continue
			}
			agg := aggregateInterval(tr)
			rep, err := m.Analyze(agg)
			if err != nil {
				return nil, err
			}
			for i := len(states) - 1; i >= 0; i-- {
				s := states[i]
				proj := rep.At(s)
				split := m.SplitDetail(agg, proj)
				// Energy ratio per unit work equals the power ratio at
				// fixed IPS; NB energy share grows at low VF because
				// execution stretches while NB power holds.
				nbShare := 0.0
				if t := split.TotalW(); t > 0 {
					nbShare = split.NBW().Per(t)
				}
				res.AddRow(name, s.String(), pct(nbShare))
				perBench[num] = append(perBench[num], nbShare)
			}
		}
	}
	for _, num := range exploreBenches {
		vals := perBench[num]
		if len(vals) == 0 {
			continue
		}
		var sum, minv float64
		minv = vals[0]
		for _, v := range vals {
			sum += v
			if v < minv {
				minv = v
			}
		}
		res.Metric("avg_share_"+num, sum/float64(len(vals)))
		res.Metric("min_share_"+num, minv)
	}
	res.Notes = append(res.Notes,
		"paper: memory-bound ≈60% average (min 45%); CPU-bound ≈25% average (min 10%)")
	return res, nil
}

// Fig11 reproduces Figure 11: the NB DVFS what-if. For each run the best
// energy with NB scaling is compared against the best without (a), and
// the speedup achievable at similar energy versus the core-VF1/NB-high
// baseline (b). The paper's exact assumptions are applied to PPEP's
// estimates (idle −40%, dynamic −36%, leading loads +50%).
func (c *Campaign) Fig11() (*Result, error) {
	traces, err := c.exploreTraces()
	if err != nil {
		return nil, err
	}
	m := c.pgModels()
	res := &Result{
		ID:     "fig11",
		Title:  "NB DVFS what-if: energy saving and speedup",
		Header: []string{"run", "energy saving", "speedup @ ~same energy"},
	}
	var savings, speedups []float64
	for _, num := range exploreBenches {
		for _, n := range exploreModes {
			name := fmt.Sprintf("%s x%d", num, n)
			tr, ok := traces[name]
			if !ok {
				continue
			}
			agg := aggregateInterval(tr)
			rep, err := m.Analyze(agg)
			if err != nil {
				return nil, err
			}
			pts := dvfs.NBWhatIf(m, agg, rep, dvfs.PaperNBAssumptions())
			saving := dvfs.BestEnergySaving(pts)
			speedup := dvfs.BestSpeedupAtEnergy(pts, 0.05)
			res.AddRow(name, pct(saving), fmt.Sprintf("%.2f×", speedup))
			res.Metric("saving_"+name, saving)
			res.Metric("speedup_"+name, speedup)
			savings = append(savings, saving)
			speedups = append(speedups, speedup)
		}
	}
	if len(savings) > 0 {
		var s, p float64
		for i := range savings {
			s += savings[i]
			p += speedups[i]
		}
		res.AddRow("AVG", pct(s/float64(len(savings))), fmt.Sprintf("%.2f×", p/float64(len(speedups))))
		res.Metric("avg_saving", s/float64(len(savings)))
		res.Metric("avg_speedup", p/float64(len(speedups)))
	}
	res.Notes = append(res.Notes,
		"paper: average 20.4% energy saving or 1.37× speedup; milc x1..x4 = 26/23/21/20%, sjeng = 25/19/16/14%")
	return res, nil
}

// aggregateInterval folds a whole trace into one synthetic interval with
// run-average rates — the stable input for run-level what-if analysis.
func aggregateInterval(tr *trace.Trace) trace.Interval {
	if len(tr.Intervals) == 0 {
		return trace.Interval{}
	}
	first := tr.Intervals[0]
	agg := trace.Interval{
		PerCoreVF: first.PerCoreVF,
		Counters:  make([]arch.EventVec, len(first.Counters)),
		Busy:      make([]bool, len(first.Busy)),
	}
	var tempSum float64
	var powerSum float64
	for _, iv := range tr.Intervals {
		agg.DurS += iv.DurS
		tempSum += iv.TempK * iv.DurS
		powerSum += iv.MeasPowerW * iv.DurS
		for ci := range iv.Counters {
			agg.Counters[ci].Add(iv.Counters[ci])
			if iv.Busy[ci] {
				agg.Busy[ci] = true
			}
		}
	}
	agg.TimeS = tr.Intervals[len(tr.Intervals)-1].TimeS
	if agg.DurS > 0 {
		agg.TempK = tempSum / agg.DurS
		agg.MeasPowerW = powerSum / agg.DurS
	}
	return agg
}
