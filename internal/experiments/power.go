package experiments

import (
	"fmt"
	"sort"

	"ppep/internal/arch"
	"ppep/internal/core"
	"ppep/internal/core/dynpower"
	"ppep/internal/core/idlepower"
	"ppep/internal/stats"
	"ppep/internal/trace"
	"ppep/internal/units"
)

// foldModels is one cross-validation fold's trained model set plus its
// held-out test runs.
type foldModels struct {
	models    *core.Models
	testNames map[string]bool
}

// crossValidate builds the paper's 4-fold split over benchmark
// combinations: the dynamic model is retrained on each fold's training
// runs; the idle model is shared (it is benchmark-independent).
func (c *Campaign) crossValidate(k int) ([]foldModels, error) {
	names := make([]string, 0, len(c.ByName))
	for n := range c.ByName {
		names = append(names, n)
	}
	sort.Strings(names)
	idle, err := idlepower.TrainFromTraces(c.Idle, c.Table)
	if err != nil {
		return nil, err
	}
	folds := stats.KFold(len(names), k, 2014)
	var out []foldModels
	for _, fold := range folds {
		trainNames := map[string]bool{}
		for _, i := range fold.Train {
			trainNames[names[i]] = true
		}
		var runs []core.RunTrace
		for _, rt := range c.Runs {
			if trainNames[rt.Name] {
				runs = append(runs, rt)
			}
		}
		samples := core.DynSamples(runs, idle, c.Table)
		dyn, err := dynpower.Train(samples, c.Table.Point(c.Table.Top()).Voltage)
		if err != nil {
			return nil, fmt.Errorf("experiments: fold training: %w", err)
		}
		fm := foldModels{
			models:    &core.Models{Table: c.Table, Idle: idle, Dyn: dyn},
			testNames: map[string]bool{},
		}
		for _, i := range fold.Test {
			fm.testNames[names[i]] = true
		}
		out = append(out, fm)
	}
	return out, nil
}

// suiteKey buckets a run into the paper's Figure 2 labels.
var suiteOrder = []string{"SPE", "PAR", "NPB", "ALL"}

// Fig2 reproduces Figure 2: the 4-fold cross-validation error of the
// dynamic power model (a) and the chip power model (b), per suite and VF
// state. The returned pair is (fig2a, fig2b).
func (c *Campaign) Fig2() (*Result, *Result, error) {
	folds, err := c.crossValidate(4)
	if err != nil {
		return nil, nil, err
	}
	// per (suite, VF): per-run AAEs.
	dynErrs := map[string]map[arch.VFState][]float64{}
	chipErrs := map[string]map[arch.VFState][]float64{}
	add := func(m map[string]map[arch.VFState][]float64, suite string, vf arch.VFState, v float64) {
		if m[suite] == nil {
			m[suite] = map[arch.VFState][]float64{}
		}
		m[suite][vf] = append(m[suite][vf], v)
	}
	for _, fm := range folds {
		for _, rt := range c.Runs {
			if !fm.testNames[rt.Name] {
				continue
			}
			var dErrs, cErrs []float64
			v := c.Table.Point(rt.VF).Voltage
			for _, iv := range core.SteadyIntervals(rt.Trace) {
				idleEst := fm.models.Idle.Estimate(v, units.Kelvin(iv.TempK))
				measDyn := iv.MeasPowerW - float64(idleEst)
				rates := iv.TotalRates()
				estDyn := fm.models.Dyn.EstimateRates(rates.PowerEvents(), v)
				if measDyn > 0.5 { // skip idle-dominated slivers
					dErrs = append(dErrs, stats.AbsPctErr(float64(estDyn), measDyn))
				}
				cErrs = append(cErrs, stats.AbsPctErr(float64(idleEst+estDyn), iv.MeasPowerW))
			}
			if len(dErrs) > 0 {
				aae := stats.Mean(dErrs)
				add(dynErrs, rt.Suite, rt.VF, aae)
				add(dynErrs, "ALL", rt.VF, aae)
			}
			if len(cErrs) > 0 {
				aae := stats.Mean(cErrs)
				add(chipErrs, rt.Suite, rt.VF, aae)
				add(chipErrs, "ALL", rt.VF, aae)
			}
		}
	}
	a := c.errorTable("fig2a", "Dynamic power model validation error (4-fold CV)", dynErrs)
	b := c.errorTable("fig2b", "Chip power model validation error (4-fold CV)", chipErrs)
	a.Notes = append(a.Notes, "paper: 10.6% average AAE, SD 5.8%; VF5..VF1 = 8.9/8.4/9.5/12.0/14.4%")
	b.Notes = append(b.Notes, "paper: 4.6% average AAE, SD 2.8%")
	return a, b, nil
}

// errorTable renders per-(suite, VF) error summaries in Figure 2's layout.
func (c *Campaign) errorTable(id, title string, errs map[string]map[arch.VFState][]float64) *Result {
	res := &Result{
		ID:     id,
		Title:  title,
		Header: []string{"state", "suite", "avg AAE", "SD"},
	}
	states := c.Table.States()
	var all []float64
	for i := len(states) - 1; i >= 0; i-- {
		vf := states[i]
		for _, suite := range suiteOrder {
			vals := errs[suite][vf]
			if len(vals) == 0 {
				continue
			}
			s := stats.SummarizeAbsErrors(vals)
			res.AddRow(vf.String(), suite, pct(s.Mean), pct(s.SD))
			if suite == "ALL" {
				res.Metric("aae_"+vf.String(), s.Mean)
				all = append(all, vals...)
			}
		}
	}
	total := stats.SummarizeAbsErrors(all)
	res.Metric("avg_aae", total.Mean)
	res.Metric("avg_sd", total.SD)
	return res
}

// Fig3 reproduces Figure 3: power prediction across VF state pairs.
// For each pair VFi→VFj, each test run's average power at VFj is
// predicted from its VFi trace and compared with the measured average.
// Returns (fig3a dynamic, fig3b chip).
func (c *Campaign) Fig3() (*Result, *Result, error) {
	folds, err := c.crossValidate(4)
	if err != nil {
		return nil, nil, err
	}
	type pair struct{ from, to arch.VFState }
	dynErrs := map[pair][]float64{}
	chipErrs := map[pair][]float64{}

	for _, fm := range folds {
		// Iterate test runs in sorted order: the per-pair error slices
		// feed FP means, so fill order must not follow map order.
		names := make([]string, 0, len(fm.testNames))
		for name := range fm.testNames {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			traces := c.ByName[name]
			for _, from := range c.Table.States() {
				src := traces[from]
				if src == nil {
					continue
				}
				// Average predictions from every interval of the source
				// trace, as the paper compares run-average power.
				predChip := map[arch.VFState]*stats.Running{}
				predDyn := map[arch.VFState]*stats.Running{}
				for _, to := range c.Table.States() {
					predChip[to] = &stats.Running{}
					predDyn[to] = &stats.Running{}
				}
				for _, iv := range core.SteadyIntervals(src) {
					rep, err := fm.models.Analyze(iv)
					if err != nil {
						continue
					}
					for _, to := range c.Table.States() {
						proj := rep.At(to)
						predChip[to].Add(float64(proj.ChipW))
						predDyn[to].Add(float64(proj.DynW))
					}
				}
				for _, to := range c.Table.States() {
					dst := traces[to]
					if dst == nil || predChip[to].N() == 0 {
						continue
					}
					measChip := dst.AvgMeasPowerW()
					measDyn := measDynAvg(fm.models, dst, c.Table)
					p := pair{from, to}
					chipErrs[p] = append(chipErrs[p], stats.AbsPctErr(predChip[to].Mean(), measChip))
					if measDyn > 0.5 {
						dynErrs[p] = append(dynErrs[p], stats.AbsPctErr(predDyn[to].Mean(), measDyn))
					}
				}
			}
		}
	}
	mk := func(id, title string, m map[pair][]float64) *Result {
		res := &Result{
			ID:     id,
			Title:  title,
			Header: []string{"pair", "avg AAE", "SD", "runs"},
		}
		var all []float64
		states := c.Table.States()
		for i := len(states) - 1; i >= 0; i-- {
			for j := len(states) - 1; j >= 0; j-- {
				p := pair{states[i], states[j]}
				vals := m[p]
				if len(vals) == 0 {
					continue
				}
				s := stats.SummarizeAbsErrors(vals)
				res.AddRow(fmt.Sprintf("%v→%v", p.from, p.to), pct(s.Mean), pct(s.SD), fmt.Sprint(s.N))
				all = append(all, vals...)
			}
		}
		t := stats.SummarizeAbsErrors(all)
		res.Metric("avg_aae", t.Mean)
		res.Metric("avg_sd", t.SD)
		return res
	}
	a := mk("fig3a", "Dynamic power prediction error across VF states", dynErrs)
	b := mk("fig3b", "Chip power prediction error across VF states", chipErrs)
	a.Notes = append(a.Notes, "paper: 8.3% overall average, pairs 5.5–13.7%")
	b.Notes = append(b.Notes, "paper: 4.2% overall average, pairs 2.7–6.3%")
	return a, b, nil
}

// measDynAvg is a run's average measured dynamic power (measured minus
// the idle model's estimate).
func measDynAvg(m *core.Models, tr *trace.Trace, tbl arch.VFTable) float64 {
	var r stats.Running
	for _, iv := range core.SteadyIntervals(tr) {
		v := tbl.Point(iv.VF()).Voltage
		r.Add(iv.MeasPowerW - float64(m.Idle.Estimate(v, units.Kelvin(iv.TempK))))
	}
	return r.Mean()
}
