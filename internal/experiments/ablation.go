package experiments

import (
	"fmt"

	"ppep/internal/arch"
	"ppep/internal/core"
	"ppep/internal/core/cpimodel"
	"ppep/internal/core/dynpower"
	"ppep/internal/fxsim"
	"ppep/internal/stats"
	"ppep/internal/trace"
	"ppep/internal/units"
	"ppep/internal/workload"
)

// Ablation studies quantify the design choices the paper motivates but
// does not isolate: the fitted voltage exponent α, the NB proxy events
// (E8/E9), counter multiplexing, and power-sensor noise. They go beyond
// the paper's figures; EXPERIMENTS.md lists them separately.

// AblationAlpha compares chip power estimation error at the distant VF
// states with α fitted against α fixed at the theoretical 2.0 (pure V²
// scaling). The fitted exponent absorbs clock-tree and short-circuit
// behaviour that V² misses.
func (c *Campaign) AblationAlpha() (*Result, error) {
	res := &Result{
		ID:     "abl-alpha",
		Title:  "Ablation: fitted α vs fixed α=2 (chip power estimation)",
		Header: []string{"state", "fitted α AAE", "α=2 AAE"},
	}
	fitted := c.Models.Dyn
	fixed := *fitted
	fixed.Alpha = 2
	var fitAll, fixAll []float64
	for _, vf := range []arch.VFState{arch.VF1, arch.VF2, arch.VF3} {
		var fitErrs, fixErrs []float64
		v := c.Table.Point(vf).Voltage
		for _, rt := range c.Runs {
			if rt.VF != vf {
				continue
			}
			for _, iv := range core.SteadyIntervals(rt.Trace) {
				idleEst := c.Models.Idle.Estimate(v, units.Kelvin(iv.TempK))
				rates := iv.TotalRates().PowerEvents()
				fitErrs = append(fitErrs, stats.AbsPctErr(float64(idleEst+fitted.EstimateRates(rates, v)), iv.MeasPowerW))
				fixErrs = append(fixErrs, stats.AbsPctErr(float64(idleEst+fixed.EstimateRates(rates, v)), iv.MeasPowerW))
			}
		}
		if len(fitErrs) == 0 {
			continue
		}
		fs := stats.SummarizeAbsErrors(fitErrs)
		xs := stats.SummarizeAbsErrors(fixErrs)
		res.AddRow(vf.String(), pct(fs.Mean), pct(xs.Mean))
		fitAll = append(fitAll, fitErrs...)
		fixAll = append(fixAll, fixErrs...)
	}
	if len(fitAll) == 0 {
		return nil, fmt.Errorf("experiments: no low-VF runs for the α ablation")
	}
	res.Metric("fitted_aae", stats.Mean(fitAll))
	res.Metric("fixed_aae", stats.Mean(fixAll))
	res.Metric("alpha", c.Models.Dyn.Alpha)
	res.Notes = append(res.Notes,
		"the paper calibrates α from measured power per process; pure V² scaling misattributes clock and short-circuit power")
	return res, nil
}

// AblationNoNBEvents retrains the dynamic model without E8 (L2 misses)
// and E9 (dispatch stalls) — the per-core NB activity proxies — and
// compares validation error. This isolates the paper's claim that the NB
// must be modelled (its critique of Green Governors).
func (c *Campaign) AblationNoNBEvents() (*Result, error) {
	res := &Result{
		ID:     "abl-nonb",
		Title:  "Ablation: dynamic model without the NB proxy events (E8, E9)",
		Header: []string{"model", "dynamic AAE", "chip AAE"},
	}
	samples := core.DynSamples(c.Runs, c.Models.Idle, c.Table)
	blinded := make([]dynpower.Sample, len(samples))
	for i, s := range samples {
		b := s
		b.Rates[7] = 0 // E8
		b.Rates[8] = 0 // E9
		blinded[i] = b
	}
	vRef := c.Table.Point(c.Table.Top()).Voltage
	noNB, err := dynpower.Train(blinded, vRef)
	if err != nil {
		return nil, err
	}
	eval := func(m *dynpower.Model, blind bool) (float64, float64) {
		var dErrs, cErrs []float64
		for _, rt := range c.Runs {
			v := c.Table.Point(rt.VF).Voltage
			for _, iv := range core.SteadyIntervals(rt.Trace) {
				idleEst := c.Models.Idle.Estimate(v, units.Kelvin(iv.TempK))
				measDyn := iv.MeasPowerW - float64(idleEst)
				rates := iv.TotalRates().PowerEvents()
				if blind {
					rates[7], rates[8] = 0, 0
				}
				est := m.EstimateRates(rates, v)
				if measDyn > 0.5 {
					dErrs = append(dErrs, stats.AbsPctErr(float64(est), measDyn))
				}
				cErrs = append(cErrs, stats.AbsPctErr(float64(idleEst+est), iv.MeasPowerW))
			}
		}
		return stats.Mean(dErrs), stats.Mean(cErrs)
	}
	fullDyn, fullChip := eval(c.Models.Dyn, false)
	blindDyn, blindChip := eval(noNB, true)
	res.AddRow("full (9 events)", pct(fullDyn), pct(fullChip))
	res.AddRow("no NB events", pct(blindDyn), pct(blindChip))
	res.Metric("full_dyn_aae", fullDyn)
	res.Metric("nonb_dyn_aae", blindDyn)
	res.Notes = append(res.Notes,
		"E8/E9 approximate the core's NB activity share (Section IV-B1); removing them blinds the model to memory-bound power")
	return res, nil
}

// ablationRuns are the workloads for the measurement-fidelity ablations:
// the paper's multiplexing outliers plus two steady references.
var ablationRuns = []struct {
	name string
	mk   func() workload.Run
}{
	{"dedup x1", func() workload.Run {
		return workload.Run{Name: "dedup x1", Suite: "PAR",
			Members: []workload.Member{{Bench: workload.PARSECByName("dedup"), Threads: 1}}}
	}},
	{"IS x1", func() workload.Run {
		return workload.Run{Name: "IS x1", Suite: "NPB",
			Members: []workload.Member{{Bench: workload.NPBByName("IS"), Threads: 1}}}
	}},
	{"DC x1", func() workload.Run {
		return workload.Run{Name: "DC x1", Suite: "NPB",
			Members: []workload.Member{{Bench: workload.NPBByName("DC"), Threads: 1}}}
	}},
	{"456", func() workload.Run {
		return workload.Run{Name: "456", Suite: "SPE",
			Members: []workload.Member{{Bench: workload.SPECByNumber("456"), Threads: 1}}}
	}},
	{"433", func() workload.Run {
		return workload.Run{Name: "433", Suite: "SPE",
			Members: []workload.Member{{Bench: workload.SPECByNumber("433"), Threads: 1}}}
	}},
}

// AblationMux reruns the fidelity workloads with the counter multiplexer
// disabled (an oracle with twelve simultaneous counters) and compares the
// chip power estimation error against the six-counter reality — the
// multiplexing error the paper blames for its outliers.
func (c *Campaign) AblationMux() (*Result, error) {
	return c.measurementAblation("abl-mux",
		"Ablation: counter multiplexing vs 12-counter oracle",
		func(cfg *fxsim.Config) { cfg.MuxDisabled = true },
		"muxed", "oracle counters",
		"rapid phase changes (dedup, IS, DC) corrupt extrapolated counts; steady programs are unaffected")
}

// AblationSensor reruns the fidelity workloads with an ideal power sensor
// (no VRM loss, noise, or quantization); the campaign models were trained
// on the noisy sensor, so residual error against clean measurements
// isolates sensor noise from model error.
func (c *Campaign) AblationSensor() (*Result, error) {
	return c.measurementAblation("abl-sensor",
		"Ablation: noisy Hall-effect sensor vs ideal measurement",
		func(cfg *fxsim.Config) { cfg.IdealSensor = true },
		"noisy sensor", "ideal sensor",
		"the VRM/noise/quantization chain is a constant-factor-plus-noise distortion the regression largely absorbs")
}

func (c *Campaign) measurementAblation(id, title string, mut func(*fxsim.Config), baseLabel, altLabel, note string) (*Result, error) {
	res := &Result{
		ID:     id,
		Title:  title,
		Header: []string{"run", baseLabel + " AAE", altLabel + " AAE"},
	}
	var baseAll, altAll []float64
	for _, ar := range ablationRuns {
		base, err := c.ablationErrors(ar.mk(), nil)
		if err != nil {
			return nil, err
		}
		alt, err := c.ablationErrors(ar.mk(), mut)
		if err != nil {
			return nil, err
		}
		res.AddRow(ar.name, pct(stats.Mean(base)), pct(stats.Mean(alt)))
		baseAll = append(baseAll, base...)
		altAll = append(altAll, alt...)
	}
	res.Metric("base_aae", stats.Mean(baseAll))
	res.Metric("alt_aae", stats.Mean(altAll))
	res.Notes = append(res.Notes, note)
	return res, nil
}

// ablationErrors runs one workload at the top state under a modified
// measurement configuration and returns per-interval chip power
// estimation errors. True (not sensed) power is the reference, so sensor
// configurations stay comparable; a VRM factor converts the true value
// onto the sensed scale the models were trained in.
func (c *Campaign) ablationErrors(run workload.Run, mut func(*fxsim.Config)) ([]float64, error) {
	cfg := c.ChipConfig()
	cfg.SensorSeed = seedOf("abl-"+run.Name, c.Table.Top())
	if mut != nil {
		mut(&cfg)
	}
	chip := fxsim.New(cfg)
	scaled := scaleRun(run, c.opts.Scale)
	tr, err := chip.Collect(scaled, fxsim.RunOpts{
		VF: c.Table.Top(), WarmTempK: 315, Placement: fxsim.PlaceScatter, MaxTimeS: 600,
	})
	if err != nil {
		return nil, err
	}
	const vrm = 0.92 // sensed scale of the training data
	var errs []float64
	for _, iv := range core.SteadyIntervals(tr) {
		est, err := c.Models.EstimateChipW(iv)
		if err != nil {
			return nil, err
		}
		errs = append(errs, stats.AbsPctErr(float64(est), iv.TruePowerW/vrm))
	}
	if len(errs) == 0 {
		return nil, fmt.Errorf("experiments: ablation run %s produced no intervals", run.Name)
	}
	return errs, nil
}

// AblationBoost quantifies the measurement hazard that led the paper to
// disable the hardware boost states (Section II): with boost enabled,
// the chip silently runs above the software-visible VF point, so PPEP's
// estimates — which assume the nominal point — drift.
func (c *Campaign) AblationBoost() (*Result, error) {
	res := &Result{
		ID:     "abl-boost",
		Title:  "Ablation: hardware boost on vs off (chip power estimation)",
		Header: []string{"run", "boost off AAE", "boost on AAE"},
	}
	var offAll, onAll []float64
	for _, name := range []string{"458", "433"} {
		run := workload.MultiInstance(name, 1)
		off, err := c.ablationErrors(run, nil)
		if err != nil {
			return nil, err
		}
		on, err := c.ablationErrors(workload.MultiInstance(name, 1), func(cfg *fxsim.Config) {
			cfg.BoostEnabled = true
		})
		if err != nil {
			return nil, err
		}
		res.AddRow(name+" x1", pct(stats.Mean(off)), pct(stats.Mean(on)))
		offAll = append(offAll, off...)
		onAll = append(onAll, on...)
	}
	res.Metric("off_aae", stats.Mean(offAll))
	res.Metric("on_aae", stats.Mean(onAll))
	res.Notes = append(res.Notes,
		"the paper: \"unexpectedly entering a boost state would affect the power and event counts that we measure\" — hence boost is disabled")
	return res, nil
}

// EventCorrelation reproduces the event-selection rationale of Section
// IV-B1: the per-event Pearson correlation of chip-summed rates with
// measured dynamic power across the campaign at the top VF state.
func (c *Campaign) EventCorrelation() (*Result, error) {
	res := &Result{
		ID:     "sec4b-corr",
		Title:  "Event correlation with dynamic power (top VF)",
		Header: []string{"event", "name", "correlation"},
	}
	var dyn []float64
	rates := make([][]float64, arch.NumEvents)
	top := c.Table.Top()
	v := c.Table.Point(top).Voltage
	for _, rt := range c.Runs {
		if rt.VF != top {
			continue
		}
		for _, iv := range core.SteadyIntervals(rt.Trace) {
			measDyn := iv.MeasPowerW - float64(c.Models.Idle.Estimate(v, units.Kelvin(iv.TempK)))
			if measDyn <= 0.5 {
				continue
			}
			dyn = append(dyn, measDyn)
			r := iv.TotalRates()
			for e := 0; e < arch.NumEvents; e++ {
				rates[e] = append(rates[e], r[e])
			}
		}
	}
	if len(dyn) == 0 {
		return nil, fmt.Errorf("experiments: no top-VF samples for correlation")
	}
	for e := 0; e < arch.NumEvents; e++ {
		info := arch.Events[e]
		corr := stats.Pearson(rates[e], dyn)
		res.AddRow(fmt.Sprintf("E%d", e+1), info.Name, f2(corr))
		res.Metric(fmt.Sprintf("corr_e%d", e+1), corr)
	}
	res.Notes = append(res.Notes,
		"the paper selects E1–E9 as events highly correlated with dynamic power; E10–E12 serve the performance model")
	return res, nil
}

// AblationLLBandwidth tests the leading-loads model's known weakness
// (Miftakhutdinov et al., cited by the paper): CPI prediction degrades
// when memory bandwidth is saturated, because queueing delay — unlike
// device latency — is not frequency-invariant. It compares segment-
// aligned CPI prediction error for a bandwidth-saturated run (four milc
// instances) against the uncontended single instance.
func (c *Campaign) AblationLLBandwidth() (*Result, error) {
	res := &Result{
		ID:     "abl-llbw",
		Title:  "Ablation: LL-MAB CPI prediction under bandwidth saturation",
		Header: []string{"run", "CPI error VF5→VF2"},
	}
	hi, lo := c.Table.Top(), arch.VF2
	fHi := c.Table.Point(hi).Freq
	fLo := c.Table.Point(lo).Freq
	collectAt := func(run workload.Run, vf arch.VFState) (*trace.Trace, error) {
		cfg := c.ChipConfig()
		cfg.SensorSeed = seedOf("llbw-"+run.Name, vf)
		chip := fxsim.New(cfg)
		return chip.Collect(scaleRun(run, c.opts.Scale), fxsim.RunOpts{
			VF: vf, WarmTempK: 315, Placement: fxsim.PlaceScatter, MaxTimeS: 600,
		})
	}
	var errsByRun []float64
	for _, n := range []int{1, 4} {
		run := workload.MultiInstance("433", n)
		trHi, err := collectAt(run, hi)
		if err != nil {
			return nil, err
		}
		trLo, err := collectAt(run, lo)
		if err != nil {
			return nil, err
		}
		seg := segmentSize(trHi)
		errs, err := cpimodel.SegmentErrors(trHi, trLo, 0, fHi, fLo, seg)
		if err != nil {
			return nil, err
		}
		aae := stats.Mean(errs)
		res.AddRow(run.Name, pct(aae))
		res.Metric(fmt.Sprintf("aae_x%d", n), aae)
		errsByRun = append(errsByRun, aae)
	}
	res.Notes = append(res.Notes,
		"queueing delay scales with offered load, which changes with frequency — the leading-loads invariance breaks near saturation (the critique the paper acknowledges)")
	return res, nil
}

// AblationThermalFeedback quantifies the temperature term in cross-VF
// prediction. The paper predicts power at other VF states using the
// *current* temperature; but a different operating point settles at a
// different temperature, moving leakage. The extension iterates the
// prediction against a fitted steady-state thermal line; this ablation
// compares run-average cross-VF chip power error with and without it.
func (c *Campaign) AblationThermalFeedback() (*Result, error) {
	res := &Result{
		ID:     "abl-thermal",
		Title:  "Ablation: thermal feedback on cross-VF chip power prediction",
		Header: []string{"pair kind", "no feedback AAE", "with feedback AAE"},
	}
	if c.Models.Thermal == nil {
		return nil, fmt.Errorf("experiments: campaign has no fitted thermal line")
	}
	plain := *c.Models
	plain.Thermal = nil
	fb := *c.Models

	type bucket struct{ plain, fb []float64 }
	near, far := &bucket{}, &bucket{}
	top := c.Table.Top()
	bottom := c.Table.Bottom()
	for name, traces := range c.ByName {
		_ = name
		src := traces[top]
		if src == nil {
			continue
		}
		for _, to := range c.Table.States() {
			dst := traces[to]
			if dst == nil || to == top {
				continue
			}
			var pSum, fSum float64
			var n int
			for _, iv := range core.SteadyIntervals(src) {
				pr, err := plain.Analyze(iv)
				if err != nil {
					continue
				}
				fr, err := fb.Analyze(iv)
				if err != nil {
					continue
				}
				pSum += float64(pr.At(to).ChipW)
				fSum += float64(fr.At(to).ChipW)
				n++
			}
			if n == 0 {
				continue
			}
			meas := dst.AvgMeasPowerW()
			b := near
			if to == bottom || to == bottom+1 {
				b = far
			}
			b.plain = append(b.plain, stats.AbsPctErr(pSum/float64(n), meas))
			b.fb = append(b.fb, stats.AbsPctErr(fSum/float64(n), meas))
		}
	}
	if len(far.plain) == 0 {
		return nil, fmt.Errorf("experiments: no cross-VF pairs for the thermal ablation")
	}
	res.AddRow("VF5→near (VF4/VF3)", pct(stats.Mean(near.plain)), pct(stats.Mean(near.fb)))
	res.AddRow("VF5→far (VF2/VF1)", pct(stats.Mean(far.plain)), pct(stats.Mean(far.fb)))
	res.Metric("far_plain_aae", stats.Mean(far.plain))
	res.Metric("far_fb_aae", stats.Mean(far.fb))
	res.Metric("rth", float64(c.Models.Thermal.RthKPerW))
	res.Notes = append(res.Notes,
		"the paper predicts with the current temperature; the feedback line T ≈ Ambient + Rth·P is fitted from the campaign itself")
	return res, nil
}
