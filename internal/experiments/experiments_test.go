package experiments

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"ppep/internal/arch"
)

// The reduced campaign: every suite capped at 8 runs, benchmarks at 1/10
// length. Built once; all experiment tests share it.
var (
	campOnce sync.Once
	camp     *Campaign
	campErr  error
)

func testCampaign(t *testing.T) *Campaign {
	t.Helper()
	if testing.Short() {
		t.Skip("campaign too heavy for -short")
	}
	campOnce.Do(func() {
		camp, campErr = NewFXCampaign(Options{Scale: 0.08, MaxRunsPerSuite: 8})
	})
	if campErr != nil {
		t.Fatal(campErr)
	}
	return camp
}

func TestCampaignStructure(t *testing.T) {
	c := testCampaign(t)
	if len(c.Idle) != 5 {
		t.Errorf("idle traces = %d", len(c.Idle))
	}
	if len(c.Runs) != 24*5 {
		t.Errorf("run traces = %d, want 120", len(c.Runs))
	}
	if len(c.PGSweeps) != 5 {
		t.Errorf("PG sweeps = %d", len(c.PGSweeps))
	}
	if c.Models == nil || c.GG == nil {
		t.Fatal("models not trained")
	}
	if len(c.Models.PG) != 5 {
		t.Errorf("PG decompositions = %d", len(c.Models.PG))
	}
	for name, traces := range c.ByName {
		if len(traces) != 5 {
			t.Errorf("run %s has %d VF traces", name, len(traces))
		}
	}
}

func TestCampaignDeterminism(t *testing.T) {
	c := testCampaign(t)
	// Rebuilding one run with the same seed must reproduce the trace
	// exactly (parallel collection must not perturb results).
	c2, err := NewFXCampaign(Options{Scale: 0.08, MaxRunsPerSuite: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for name, traces := range c2.ByName {
		ref, ok := c.ByName[name]
		if !ok {
			continue
		}
		for vf, tr := range traces {
			want := ref[vf]
			if want == nil {
				continue
			}
			if len(tr.Intervals) != len(want.Intervals) {
				t.Fatalf("%s@%v: interval counts differ (%d vs %d)", name, vf, len(tr.Intervals), len(want.Intervals))
			}
			for i := range tr.Intervals {
				if tr.Intervals[i].MeasPowerW != want.Intervals[i].MeasPowerW {
					t.Fatalf("%s@%v interval %d: power differs", name, vf, i)
				}
			}
		}
	}
}

func TestCPIAccuracyExperiment(t *testing.T) {
	c := testCampaign(t)
	res, err := c.CPIAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["down_aae"] > 0.10 {
		t.Errorf("CPI down error %.1f%%, want <10%%", 100*res.Metrics["down_aae"])
	}
	if res.Metrics["up_aae"] > 0.10 {
		t.Errorf("CPI up error %.1f%%, want <10%%", 100*res.Metrics["up_aae"])
	}
}

func TestFig1Experiment(t *testing.T) {
	c := testCampaign(t)
	res, err := c.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["start_temp_k"] <= res.Metrics["end_temp_k"] {
		t.Error("chip did not cool during the transient")
	}
	if res.Metrics["start_power_w"] <= res.Metrics["end_power_w"] {
		t.Error("idle power did not fall with temperature")
	}
}

func TestIdleModelExperiment(t *testing.T) {
	c := testCampaign(t)
	res, err := c.IdleModelAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["avg_aae"] > 0.06 {
		t.Errorf("idle AAE %.1f%%, want <6%% (paper: 2–4%%)", 100*res.Metrics["avg_aae"])
	}
}

func TestFig2Experiment(t *testing.T) {
	c := testCampaign(t)
	a, b, err := c.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: dynamic 10.6%, chip 4.6%. The reduced campaign must stay in
	// the same regime: chip error well below dynamic error.
	if a.Metrics["avg_aae"] > 0.25 {
		t.Errorf("dynamic model AAE %.1f%%", 100*a.Metrics["avg_aae"])
	}
	if b.Metrics["avg_aae"] > 0.10 {
		t.Errorf("chip model AAE %.1f%%", 100*b.Metrics["avg_aae"])
	}
	if b.Metrics["avg_aae"] >= a.Metrics["avg_aae"] {
		t.Error("chip error should be below dynamic error (idle power anchors it)")
	}
}

func TestObservationsExperiment(t *testing.T) {
	c := testCampaign(t)
	res, err := c.Observations()
	if err != nil {
		t.Fatal(err)
	}
	// The paper measures 0.6–5% per-event differences and 1.7% for the
	// gap; our violations are injected at the same scale.
	for i := 1; i <= 8; i++ {
		key := "obs1_e" + string(rune('0'+i))
		if v, ok := res.Metrics[key]; ok && v > 0.10 {
			t.Errorf("%s = %.1f%%, implausibly large", key, 100*v)
		}
	}
	if res.Metrics["obs2_gap"] > 0.08 {
		t.Errorf("obs2 gap %.1f%%", 100*res.Metrics["obs2_gap"])
	}
}

func TestFig3Experiment(t *testing.T) {
	c := testCampaign(t)
	a, b, err := c.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics["avg_aae"] > 0.30 {
		t.Errorf("cross-VF dynamic error %.1f%%", 100*a.Metrics["avg_aae"])
	}
	if b.Metrics["avg_aae"] > 0.12 {
		t.Errorf("cross-VF chip error %.1f%%", 100*b.Metrics["avg_aae"])
	}
	if len(a.Rows) != 25 || len(b.Rows) != 25 {
		t.Errorf("expected 25 VF pairs, got %d/%d", len(a.Rows), len(b.Rows))
	}
}

func TestFig4Experiment(t *testing.T) {
	c := testCampaign(t)
	res, err := c.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	// The decomposition at the top state should be physically sensible.
	top := c.Table.Top().String()
	if res.Metrics["pidle_cu_"+top] <= 0 {
		t.Error("Pidle(CU) not positive at top state")
	}
	if res.Metrics["pidle_nb_"+top] <= 0 {
		t.Error("Pidle(NB) not positive at top state")
	}
	// Pidle(CU) falls with voltage.
	if res.Metrics["pidle_cu_VF1"] >= res.Metrics["pidle_cu_VF5"] {
		t.Error("Pidle(CU) should shrink at lower VF")
	}
}

func TestFig6Experiment(t *testing.T) {
	c := testCampaign(t)
	res, err := c.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["ppep_avg"] > 0.12 {
		t.Errorf("PPEP energy prediction %.1f%%", 100*res.Metrics["ppep_avg"])
	}
	if res.Metrics["gg_avg"] <= res.Metrics["ppep_avg"] {
		t.Errorf("Green Governors (%.1f%%) should trail PPEP (%.1f%%)",
			100*res.Metrics["gg_avg"], 100*res.Metrics["ppep_avg"])
	}
}

func TestFig7Experiment(t *testing.T) {
	c := testCampaign(t)
	res, err := c.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["speedup"] <= 1 {
		t.Errorf("capping speedup %.2f, want >1", res.Metrics["speedup"])
	}
	if res.Metrics["ppep_adherence"] <= res.Metrics["iter_adherence"] {
		t.Error("PPEP adherence should beat iterative")
	}
}

func TestFig8Experiment(t *testing.T) {
	c := testCampaign(t)
	res, err := c.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 (two programs × four modes)", len(res.Rows))
	}
	// Paper observation 1: the lowest VF states minimize per-thread
	// energy (the paper's VF1/VF2 bars are nearly tied for sjeng; we
	// accept either, and never a high state).
	for _, name := range []string{"433 x1", "458 x1", "433 x4", "458 x4"} {
		if got := res.Metrics["best_vf_"+name]; got > 2 {
			t.Errorf("%s: best energy at VF%v, want VF1/VF2", name, got)
		}
	}
	// Paper observation 2: at the top VF state, multi-programmed
	// memory-bound runs cost more per thread than a single instance
	// (NB contention); at the bottom state the sharing benefit wins.
	if res.Metrics["top_433 x4"] <= res.Metrics["top_433 x1"] {
		t.Errorf("obs2: milc x4 at VF5 (%.2f) should exceed x1 (%.2f)",
			res.Metrics["top_433 x4"], res.Metrics["top_433 x1"])
	}
	if res.Metrics["bottom_433 x4"] >= res.Metrics["bottom_433 x1"] {
		t.Errorf("obs2: milc x4 at VF1 (%.2f) should undercut x1 (%.2f)",
			res.Metrics["bottom_433 x4"], res.Metrics["bottom_433 x1"])
	}
	// Paper observation 3: CPU-bound instances share NB power, so
	// multi-instance per-thread energy is lower at every state.
	if res.Metrics["top_458 x4"] >= res.Metrics["top_458 x1"] {
		t.Errorf("obs3: sjeng x4 at VF5 (%.2f) should undercut x1 (%.2f)",
			res.Metrics["top_458 x4"], res.Metrics["top_458 x1"])
	}
}

func TestFig9Experiment(t *testing.T) {
	c := testCampaign(t)
	res, err := c.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	// EDP favours high VF states for CPU-bound work (paper: VF5/VF4);
	// memory-bound work gains little delay from frequency, so its
	// optimum sits lower.
	if got := res.Metrics["best_vf_458 x1"]; got < 3 {
		t.Errorf("458 x1: best EDP at VF%v, want VF3+", got)
	}
	if got := res.Metrics["best_vf_433 x1"]; got > res.Metrics["best_vf_458 x1"] {
		t.Errorf("memory-bound EDP optimum (VF%v) should not exceed CPU-bound (VF%v)",
			got, res.Metrics["best_vf_458 x1"])
	}
}

func TestFig10Experiment(t *testing.T) {
	c := testCampaign(t)
	res, err := c.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	milc := res.Metrics["avg_share_433"]
	sjeng := res.Metrics["avg_share_458"]
	if milc <= sjeng {
		t.Errorf("milc NB share %.2f should exceed sjeng %.2f", milc, sjeng)
	}
	if milc < 0.3 || milc > 0.95 {
		t.Errorf("milc NB share %.2f outside plausible band", milc)
	}
}

func TestFig11Experiment(t *testing.T) {
	c := testCampaign(t)
	res, err := c.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["avg_saving"] <= 0.01 {
		t.Errorf("NB DVFS saving %.1f%%, want >1%%", 100*res.Metrics["avg_saving"])
	}
	if res.Metrics["avg_speedup"] <= 1.0 {
		t.Errorf("NB DVFS speedup %.2f, want >1", res.Metrics["avg_speedup"])
	}
}

func TestAblationAlpha(t *testing.T) {
	c := testCampaign(t)
	res, err := c.AblationAlpha()
	if err != nil {
		t.Fatal(err)
	}
	// The fitted exponent must not be worse than the fixed one where it
	// matters (the distant states it was calibrated for).
	if res.Metrics["fitted_aae"] > res.Metrics["fixed_aae"]*1.05 {
		t.Errorf("fitted α AAE %.1f%% worse than fixed %.1f%%",
			100*res.Metrics["fitted_aae"], 100*res.Metrics["fixed_aae"])
	}
}

func TestAblationNoNBEvents(t *testing.T) {
	c := testCampaign(t)
	res, err := c.AblationNoNBEvents()
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["nonb_dyn_aae"] <= res.Metrics["full_dyn_aae"] {
		t.Errorf("removing NB events should hurt: full %.1f%%, blind %.1f%%",
			100*res.Metrics["full_dyn_aae"], 100*res.Metrics["nonb_dyn_aae"])
	}
}

func TestAblationMux(t *testing.T) {
	c := testCampaign(t)
	res, err := c.AblationMux()
	if err != nil {
		t.Fatal(err)
	}
	// Oracle counters must not be worse overall than multiplexed ones.
	if res.Metrics["alt_aae"] > res.Metrics["base_aae"]*1.1 {
		t.Errorf("oracle counters AAE %.1f%% worse than muxed %.1f%%",
			100*res.Metrics["alt_aae"], 100*res.Metrics["base_aae"])
	}
}

func TestAblationSensor(t *testing.T) {
	c := testCampaign(t)
	res, err := c.AblationSensor()
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["alt_aae"] <= 0 || res.Metrics["base_aae"] <= 0 {
		t.Error("sensor ablation produced empty metrics")
	}
}

func TestAblationThermalFeedback(t *testing.T) {
	c := testCampaign(t)
	res, err := c.AblationThermalFeedback()
	if err != nil {
		t.Fatal(err)
	}
	// Feedback must not hurt the far pairs (it should help or be noise).
	if res.Metrics["far_fb_aae"] > res.Metrics["far_plain_aae"]*1.15 {
		t.Errorf("thermal feedback degraded far-pair error: %.1f%% vs %.1f%%",
			100*res.Metrics["far_fb_aae"], 100*res.Metrics["far_plain_aae"])
	}
	if res.Metrics["rth"] <= 0 {
		t.Error("fitted Rth not positive")
	}
}

func TestOutliers(t *testing.T) {
	c := testCampaign(t)
	res, err := c.Outliers()
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["worst_aae"] <= 0 {
		t.Error("no outliers ranked")
	}
	if len(res.Rows) == 0 {
		t.Error("no rows")
	}
	// Phase volatility should correlate positively with model error.
	if res.Metrics["phase_error_corr"] < 0 {
		t.Errorf("phase-error correlation %.2f negative", res.Metrics["phase_error_corr"])
	}
}

func TestAblationLLBandwidth(t *testing.T) {
	c := testCampaign(t)
	res, err := c.AblationLLBandwidth()
	if err != nil {
		t.Fatal(err)
	}
	// Saturated bandwidth must hurt the leading-loads invariance.
	if res.Metrics["aae_x4"] <= res.Metrics["aae_x1"] {
		t.Errorf("x4 CPI error %.1f%% should exceed x1 %.1f%%",
			100*res.Metrics["aae_x4"], 100*res.Metrics["aae_x1"])
	}
}

func TestGovernorComparison(t *testing.T) {
	c := testCampaign(t)
	res, err := c.GovernorComparison()
	if err != nil {
		t.Fatal(err)
	}
	// The PPEP energy governor must be more efficient than ondemand and
	// static-VF5; the EDP governor must retire more work than static-VF1.
	if res.Metrics["jpi_ppep-energy"] >= res.Metrics["jpi_ondemand"] {
		t.Errorf("ppep-energy %.2f nJ/inst not below ondemand %.2f",
			res.Metrics["jpi_ppep-energy"], res.Metrics["jpi_ondemand"])
	}
	if res.Metrics["jpi_ppep-energy"] >= res.Metrics["jpi_static VF5"] {
		t.Error("ppep-energy should beat static VF5 efficiency")
	}
	if res.Metrics["ginst_ppep-edp"] <= res.Metrics["ginst_static VF1"] {
		t.Error("ppep-edp should retire more work than static VF1")
	}
}

func TestAblationBoost(t *testing.T) {
	c := testCampaign(t)
	res, err := c.AblationBoost()
	if err != nil {
		t.Fatal(err)
	}
	// Unobserved boost must degrade PPEP's estimates — the paper's
	// stated reason for disabling it.
	if res.Metrics["on_aae"] <= res.Metrics["off_aae"] {
		t.Errorf("boost on AAE %.1f%% should exceed boost off %.1f%%",
			100*res.Metrics["on_aae"], 100*res.Metrics["off_aae"])
	}
}

func TestEventCorrelation(t *testing.T) {
	c := testCampaign(t)
	res, err := c.EventCorrelation()
	if err != nil {
		t.Fatal(err)
	}
	// The headline power events must correlate positively with dynamic
	// power; uops (E1) should be among the strongest.
	if res.Metrics["corr_e1"] < 0.3 {
		t.Errorf("E1 correlation %.2f too weak", res.Metrics["corr_e1"])
	}
	for i := 1; i <= 6; i++ {
		key := fmt.Sprintf("corr_e%d", i)
		if res.Metrics[key] < 0 {
			t.Errorf("%s negative", key)
		}
	}
}

func TestAllRegistry(t *testing.T) {
	all := All()
	if len(all) != 23 {
		t.Errorf("registry size %d", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if seen[e.ID] {
			t.Errorf("duplicate experiment %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Desc == "" {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	if _, err := ByID("fig7"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown ID accepted")
	}
}

func TestResultRendering(t *testing.T) {
	r := &Result{ID: "x", Title: "T", Header: []string{"a", "b"}}
	r.AddRow("1", "2")
	r.Metric("m", 0.5)
	r.Notes = append(r.Notes, "n")
	s := r.String()
	for _, want := range []string{"== x: T ==", "a", "1", "m=0.5", "note: n"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered result missing %q:\n%s", want, s)
		}
	}
}

func TestIsSingleThreaded(t *testing.T) {
	cases := map[string]bool{
		"429":         true,
		"blacksch x1": true,
		"EP x1":       true,
		"EP x4":       false,
		"400+401":     false,
		"433 x2":      false,
	}
	for name, want := range cases {
		if got := isSingleThreaded(name); got != want {
			t.Errorf("isSingleThreaded(%q) = %v", name, got)
		}
	}
}

func TestSeedStability(t *testing.T) {
	if seedOf("a", arch.VF1) == seedOf("a", arch.VF2) {
		t.Error("seeds collide across VF")
	}
	if seedOf("a", arch.VF1) != seedOf("a", arch.VF1) {
		t.Error("seed not stable")
	}
}

func TestWriteMarkdown(t *testing.T) {
	r := &Result{ID: "x", Title: "T|itle", Header: []string{"a", "b"}}
	r.AddRow("1|2", "3")
	r.Metric("m", 0.25)
	r.Notes = append(r.Notes, "a note")
	var sb strings.Builder
	if err := WriteMarkdown(&sb, "Report", []*Result{r}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# Report", "## x — T|itle", "| a | b |", "| --- | --- |",
		"| 1\\|2 | 3 |", "`m` = 0.25", "> a note",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}
