package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteMarkdown renders a set of experiment results as a Markdown report
// (the format behind EXPERIMENTS.md's raw appendix). Results appear in
// the order given; each becomes a section with its table, headline
// metrics, and notes.
func WriteMarkdown(w io.Writer, title string, results []*Result) error {
	if _, err := fmt.Fprintf(w, "# %s\n", title); err != nil {
		return err
	}
	for _, r := range results {
		if err := writeOne(w, r); err != nil {
			return err
		}
	}
	return nil
}

func writeOne(w io.Writer, r *Result) error {
	if _, err := fmt.Fprintf(w, "\n## %s — %s\n\n", r.ID, r.Title); err != nil {
		return err
	}
	if len(r.Header) > 0 {
		if err := writeRow(w, r.Header); err != nil {
			return err
		}
		sep := make([]string, len(r.Header))
		for i := range sep {
			sep[i] = "---"
		}
		if err := writeRow(w, sep); err != nil {
			return err
		}
		for _, row := range r.Rows {
			if err := writeRow(w, row); err != nil {
				return err
			}
		}
	}
	if len(r.Metrics) > 0 {
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = fmt.Sprintf("`%s` = %.4g", k, r.Metrics[k])
		}
		if _, err := fmt.Fprintf(w, "\nHeadline: %s\n", strings.Join(parts, ", ")); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "\n> %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

func writeRow(w io.Writer, cells []string) error {
	escaped := make([]string, len(cells))
	for i, c := range cells {
		escaped[i] = strings.ReplaceAll(c, "|", "\\|")
	}
	_, err := fmt.Fprintf(w, "| %s |\n", strings.Join(escaped, " | "))
	return err
}
