// Package experiments reproduces every table and figure of the paper's
// evaluation on the simulated platform: the measurement campaign
// (152 benchmark combinations × 5 VF states, idle transients, power-gating
// sweeps), model training with 4-fold cross-validation, and one harness
// per figure producing the same rows/series the paper reports.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"ppep/internal/arch"
	"ppep/internal/core"
	"ppep/internal/core/energy"
	"ppep/internal/core/pgidle"
	"ppep/internal/fxsim"
	"ppep/internal/simcache"
	"ppep/internal/trace"
	"ppep/internal/units"
	"ppep/internal/workload"
)

// Options scales the campaign. The full campaign (Scale=1) runs every
// benchmark at its native length; smaller scales shrink instruction
// counts proportionally, preserving phase structure, for quick runs and
// benchmarks.
type Options struct {
	// Scale multiplies every benchmark's instruction count (default 1).
	Scale float64
	// MaxRunsPerSuite caps each suite's run list (0 = all). Useful for
	// smoke tests.
	MaxRunsPerSuite int
	// Workers bounds the parallel simulation fan-out (0 = GOMAXPROCS).
	Workers int
	// SkipPhenom omits the secondary-platform validation campaign.
	SkipPhenom bool
	// CacheDir, when non-empty, enables the persistent simulation-trace
	// cache: every deterministic cell (benchmark collection, idle
	// transients, PG sweep cells, exploration runs) is keyed by its full
	// identity and decoded from disk on repeat runs instead of being
	// re-simulated. Decoded traces are bit-identical to fresh simulation
	// (docs/CACHE.md). Empty keeps today's always-simulate behavior.
	CacheDir string
	// CacheMaxBytes caps the cache directory's total size; oldest
	// entries are evicted past it (0 = unbounded).
	CacheMaxBytes int64
	// ReferenceTick pins every simulated chip to fxsim's reference
	// per-tick path instead of the batched quiescent-run engine. The two
	// are bit-identical, so this changes timings, never results; it
	// exists for debugging and A/B measurement (ppep-experiments
	// -reftick).
	ReferenceTick bool
}

// validate rejects option values that would otherwise be silently
// coerced (a negative Scale used to be treated as 1 by scaleBench).
func (o Options) validate() error {
	if o.Scale < 0 {
		return fmt.Errorf("experiments: Options.Scale %v is negative (use 0 for the default full scale)", o.Scale)
	}
	if o.MaxRunsPerSuite < 0 {
		return fmt.Errorf("experiments: Options.MaxRunsPerSuite %d is negative (use 0 for all runs)", o.MaxRunsPerSuite)
	}
	if o.Workers < 0 {
		return fmt.Errorf("experiments: Options.Workers %d is negative (use 0 for GOMAXPROCS)", o.Workers)
	}
	return nil
}

// Campaign holds a full measurement + training run for one platform.
type Campaign struct {
	Platform string
	Table    arch.VFTable
	Runs     []core.RunTrace
	ByName   map[string]map[arch.VFState]*trace.Trace
	Idle     map[arch.VFState]*trace.Trace
	PGSweeps map[arch.VFState]pgidle.Sweep
	// Models are trained on the complete campaign (cross-validated
	// figures re-train per fold on subsets).
	Models *core.Models
	// GG is the Green Governors baseline trained on the same data.
	GG *energy.GreenGovernors

	opts Options

	// cache is the persistent trace store (nil without Options.CacheDir).
	cache *simcache.Store

	// Lazily-collected Section V exploration traces (PG enabled).
	exploreOnce sync.Once
	exploreTr   map[string]*trace.Trace
	exploreErr  error
}

// ChipConfig returns the campaign platform's chip config with the
// campaign-wide simulation options (Options.ReferenceTick) applied.
// Every harness that builds a chip goes through it, so one flag switches
// the whole campaign between the batched and reference tick engines.
func (c *Campaign) ChipConfig() fxsim.Config {
	cfg := fxsim.DefaultFX8320Config()
	if c.Platform == arch.PhenomII.Name {
		cfg = fxsim.DefaultPhenomIIConfig()
	}
	cfg.ReferenceTick = c.opts.ReferenceTick
	return cfg
}

// scaleBench returns a copy of b with its length scaled.
func scaleBench(b *workload.Benchmark, scale float64) *workload.Benchmark {
	if scale == 1 || scale <= 0 {
		return b
	}
	c := *b
	c.Instructions = b.Instructions * scale
	return &c
}

// scaleRun scales every member benchmark of a run.
func scaleRun(r workload.Run, scale float64) workload.Run {
	out := workload.Run{Name: r.Name, Suite: r.Suite}
	for _, m := range r.Members {
		out.Members = append(out.Members, workload.Member{
			Bench: scaleBench(m.Bench, scale), Threads: m.Threads,
		})
	}
	return out
}

// seedOf derives a stable sensor seed from a run identity. The hash
// input is the byte string "<name>@<decimal vf>" — historically produced
// by fmt.Fprintf and now mixed directly so the campaign's fan-out loops
// stay allocation-free; the seeds (and therefore every golden
// fingerprint) are pinned by TestSeedOfGolden.
func seedOf(name string, vf arch.VFState) int64 {
	const (
		offset = uint64(14695981039346656037)
		prime  = uint64(1099511628211)
	)
	h := offset
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * prime
	}
	h = (h ^ '@') * prime
	// Decimal digits of int(vf), as %d renders them.
	v := int64(vf)
	var buf [20]byte
	n := len(buf)
	neg := v < 0
	if neg {
		v = -v
	}
	for {
		n--
		buf[n] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	if neg {
		n--
		buf[n] = '-'
	}
	for ; n < len(buf); n++ {
		h = (h ^ uint64(buf[n])) * prime
	}
	return int64(h & 0x7fffffffffffffff)
}

// workers resolves the configured fan-out bound.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// forEachJob runs fn(i) for every i in [0,n) on a bounded pool:
// min(workers, n) goroutines drain an index channel, so at most
// `workers` jobs are in flight and no goroutine is created before it has
// work to do. Every campaign phase shares this shape; determinism comes
// from each job writing only its own index of a pre-sized result slice
// and deriving any randomness from the job's identity, never from
// scheduling order.
func forEachJob(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// truncate keeps at most n runs (n == 0 keeps all).
func truncate(runs []workload.Run, n int) []workload.Run {
	if n <= 0 || n >= len(runs) {
		return runs
	}
	return runs[:n]
}

// NewFXCampaign executes the primary-platform campaign: idle transients
// at every VF state, all benchmark combinations at all five states, the
// power-gating sweeps, and model training.
func NewFXCampaign(opts Options) (*Campaign, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.Scale == 0 {
		opts.Scale = 1
	}
	c := &Campaign{
		Platform: arch.FX8320.Name,
		Table:    arch.FX8320VFTable,
		ByName:   map[string]map[arch.VFState]*trace.Trace{},
		Idle:     map[arch.VFState]*trace.Trace{},
		PGSweeps: map[arch.VFState]pgidle.Sweep{},
		opts:     opts,
	}
	if err := c.openCache(); err != nil {
		return nil, err
	}
	// Idle heat/cool transients at every VF state, in parallel: each
	// transient simulates an independent chip seeded from its (name, VF)
	// identity, so results are schedule-independent.
	if err := c.collectIdle("idle", c.ChipConfig); err != nil {
		return nil, err
	}

	// Benchmark combinations at every VF state, in parallel.
	var runs []workload.Run
	runs = append(runs, truncate(workload.SPECRuns(), opts.MaxRunsPerSuite)...)
	runs = append(runs, truncate(workload.PARSECRuns(), opts.MaxRunsPerSuite)...)
	runs = append(runs, truncate(workload.NPBRuns(), opts.MaxRunsPerSuite)...)
	if err := c.collect(runs, c.ChipConfig); err != nil {
		return nil, err
	}

	// Power-gating CU sweeps (Figure 4): the whole (VF, PG, busy-CU)
	// grid is one flat job list over the shared worker pool.
	sweeps, err := c.pgSweepAll(c.Table.States())
	if err != nil {
		return nil, err
	}
	c.PGSweeps = sweeps

	if err := c.train(); err != nil {
		return nil, err
	}
	return c, nil
}

// NewPhenomCampaign executes the secondary-platform validation: PARSEC
// and NPB runs at the Phenom II's four states (Section IV-B2 validates
// "using PARSEC and NPB from VF4 to VF2").
func NewPhenomCampaign(opts Options) (*Campaign, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.Scale == 0 {
		opts.Scale = 1
	}
	c := &Campaign{
		Platform: arch.PhenomII.Name,
		Table:    arch.PhenomIIVFTable,
		ByName:   map[string]map[arch.VFState]*trace.Trace{},
		Idle:     map[arch.VFState]*trace.Trace{},
		opts:     opts,
	}
	if err := c.openCache(); err != nil {
		return nil, err
	}
	if err := c.collectIdle("phenom-idle", c.ChipConfig); err != nil {
		return nil, err
	}
	var runs []workload.Run
	for _, r := range truncate(workload.PARSECRuns(), opts.MaxRunsPerSuite) {
		if r.TotalThreads() <= arch.PhenomII.NumCores() {
			runs = append(runs, r)
		}
	}
	for _, r := range truncate(workload.NPBRuns(), opts.MaxRunsPerSuite) {
		if r.TotalThreads() <= arch.PhenomII.NumCores() {
			runs = append(runs, r)
		}
	}
	if err := c.collect(runs, c.ChipConfig); err != nil {
		return nil, err
	}
	return c, c.train()
}

// collectIdle simulates (or decodes from cache) the idle heat/cool
// transient at every VF state on the shared worker pool and fills
// c.Idle.
func (c *Campaign) collectIdle(seedName string, mkCfg func() fxsim.Config) error {
	const heatS, coolS = 40, 90
	states := c.Table.States()
	trs := make([]*trace.Trace, len(states))
	errs := make([]error, len(states))
	forEachJob(len(states), c.opts.workers(), func(i int) {
		vf := states[i]
		cfg := mkCfg()
		cfg.SensorSeed = seedOf(seedName, vf)
		tr, err := c.simulate("idle", cfg, idleDef{VF: vf, HeatS: heatS, CoolS: coolS},
			func() (*trace.Trace, error) {
				return fxsim.New(cfg).HeatCool(vf, heatS, coolS)
			})
		if err != nil {
			errs[i] = fmt.Errorf("experiments: %s transient at %v: %w", seedName, vf, err)
			return
		}
		trs[i] = tr
	})
	for i, err := range errs {
		if err != nil {
			return err
		}
		c.Idle[states[i]] = trs[i]
	}
	return nil
}

// collect simulates every (run, VF) pair with a bounded worker pool.
func (c *Campaign) collect(runs []workload.Run, mkCfg func() fxsim.Config) error {
	type job struct {
		run workload.Run
		vf  arch.VFState
	}
	var jobs []job
	for _, r := range runs {
		for _, vf := range c.Table.States() {
			jobs = append(jobs, job{r, vf})
		}
	}
	results := make([]core.RunTrace, len(jobs))
	errs := make([]error, len(jobs))
	forEachJob(len(jobs), c.opts.workers(), func(i int) {
		j := jobs[i]
		cfg := mkCfg()
		cfg.SensorSeed = seedOf(j.run.Name, j.vf)
		scaled := scaleRun(j.run, c.opts.Scale)
		ro := fxsim.RunOpts{
			VF: j.vf, WarmTempK: 315, Placement: fxsim.PlaceScatter,
			MaxTimeS: 600,
		}
		tr, err := c.simulate("collect", cfg, collectDef{Run: scaled, Opts: ro},
			func() (*trace.Trace, error) {
				return fxsim.New(cfg).Collect(scaled, ro)
			})
		if err != nil {
			errs[i] = fmt.Errorf("experiments: %s at %v: %w", j.run.Name, j.vf, err)
			return
		}
		results[i] = core.RunTrace{Name: j.run.Name, Suite: j.run.Suite, VF: j.vf, Trace: tr}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for _, rt := range results {
		c.Runs = append(c.Runs, rt)
		if c.ByName[rt.Name] == nil {
			c.ByName[rt.Name] = map[arch.VFState]*trace.Trace{}
		}
		c.ByName[rt.Name][rt.VF] = rt.Trace
	}
	return nil
}

// pgCell measures one Figure 4 sweep cell — `busy` loaded CUs with power
// gating on or off at one VF state — returning the mean measured power
// over four settled intervals. The five raw intervals (one settle + four
// measured) are what the cache stores; the mean is recomputed from them
// in interval order, so a decoded cell reproduces the bit-identical mean.
func (c *Campaign) pgCell(vf arch.VFState, pg bool, busy int) (float64, error) {
	cfg := c.ChipConfig()
	cfg.PowerGating = pg
	cfg.SensorSeed = seedOf(fmt.Sprintf("pg%v-%d", pg, busy), vf)
	tr, err := c.simulate("pg", cfg, pgDef{VF: vf, PG: pg, Busy: busy},
		func() (*trace.Trace, error) {
			return pgCellTrace(cfg, vf, busy)
		})
	if err != nil {
		return 0, err
	}
	// Interval 0 is the settle; average the four measured ones.
	var sum float64
	for _, iv := range tr.Intervals[1:] {
		sum += iv.MeasPowerW
	}
	return sum / float64(len(tr.Intervals)-1), nil
}

// pgCellTrace simulates one sweep cell, returning the settle interval
// followed by the four measurement intervals.
func pgCellTrace(cfg fxsim.Config, vf arch.VFState, busy int) (*trace.Trace, error) {
	chip := fxsim.New(cfg)
	if err := chip.SetAllPStates(vf); err != nil {
		return nil, err
	}
	chip.SetTempK(318)
	for cu := 0; cu < busy; cu++ {
		if err := chip.Bind(cu*arch.FX8320.CoresPerCU, workload.BenchA(), true); err != nil {
			return nil, err
		}
	}
	tr := &trace.Trace{Run: "pgsweep", Suite: "PG", Platform: cfg.Topology.Name}
	const intervals = 1 + 4
	for k := 0; k < intervals; k++ {
		chip.TickN(arch.DecisionIntervalMS)
		tr.Intervals = append(tr.Intervals, chip.ReadInterval())
	}
	return tr, nil
}

// pgSweepAll measures the Figure 4 power-gating sweeps for every VF
// state. Each of the 2×(NumCUs+1)×len(states) cells simulates an
// independent chip seeded from the cell's identity, so the full grid is
// one flat job list over the worker pool; cells are generated in the
// serial implementation's iteration order and reassembled by index, which
// keeps every Sweep slice bit-identical to the serial result.
func (c *Campaign) pgSweepAll(states []arch.VFState) (map[arch.VFState]pgidle.Sweep, error) {
	type cell struct {
		vf   arch.VFState
		pg   bool
		busy int
	}
	var cells []cell
	for _, vf := range states {
		for _, pg := range []bool{false, true} {
			for busy := 0; busy <= arch.FX8320.NumCUs; busy++ {
				cells = append(cells, cell{vf, pg, busy})
			}
		}
	}
	powers := make([]units.Watts, len(cells))
	errs := make([]error, len(cells))
	forEachJob(len(cells), c.opts.workers(), func(i int) {
		var w float64
		w, errs[i] = c.pgCell(cells[i].vf, cells[i].pg, cells[i].busy)
		powers[i] = units.Watts(w)
	})
	out := make(map[arch.VFState]pgidle.Sweep, len(states))
	for i, cl := range cells {
		if errs[i] != nil {
			return nil, errs[i]
		}
		s := out[cl.vf]
		if cl.pg {
			s.PGOn = append(s.PGOn, powers[i])
		} else {
			s.PGOff = append(s.PGOff, powers[i])
		}
		out[cl.vf] = s
	}
	return out, nil
}

// train fits the full-campaign models and the Green Governors baseline.
func (c *Campaign) train() error {
	ts := core.TrainingSet{
		IdleTraces: c.Idle,
		Runs:       c.Runs,
		PGSweeps:   c.PGSweeps,
	}
	m, err := core.Train(ts, c.Table)
	if err != nil {
		return fmt.Errorf("experiments: training: %w", err)
	}
	c.Models = m

	// Green Governors static table: mean idle power per VF state.
	static := map[arch.VFState]units.Watts{}
	for vf, tr := range c.Idle {
		static[vf] = units.Watts(tr.AvgMeasPowerW())
	}
	var traces []*trace.Trace
	for _, rt := range c.Runs {
		traces = append(traces, rt.Trace)
	}
	if len(traces) > 0 {
		gg, err := energy.TrainGG(static, traces, c.Table)
		if err != nil {
			return fmt.Errorf("experiments: Green Governors baseline: %w", err)
		}
		c.GG = gg
	}
	return nil
}

// SingleThreadedNames returns the 52 single-threaded run names (29 SPEC
// singles, 13 PARSEC x1, 10 NPB x1) present in the campaign — the
// Section III evaluation set.
func (c *Campaign) SingleThreadedNames() []string {
	var names []string
	for _, rt := range c.Runs {
		if rt.VF != c.Table.Top() {
			continue
		}
		tr, ok := c.ByName[rt.Name]
		if !ok || tr == nil {
			continue
		}
		if isSingleThreaded(rt.Name) {
			names = append(names, rt.Name)
		}
	}
	return names
}

func isSingleThreaded(name string) bool {
	// Single-threaded runs are SPEC singles ("429") and "x1" suffixed
	// multi-threaded runs.
	if len(name) == 3 {
		return true
	}
	n := len(name)
	return n > 3 && name[n-3:] == " x1"
}
