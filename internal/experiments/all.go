package experiments

import "fmt"

// Experiment is one reproducible table/figure.
type Experiment struct {
	ID   string
	Desc string
	Run  func(*Campaign) ([]*Result, error)
}

// one adapts a single-result harness.
func one(f func(*Campaign) (*Result, error)) func(*Campaign) ([]*Result, error) {
	return func(c *Campaign) ([]*Result, error) {
		r, err := f(c)
		if err != nil {
			return nil, err
		}
		return []*Result{r}, nil
	}
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"sec3-cpi", "LL-MAB CPI predictor accuracy (Section III)", one((*Campaign).CPIAccuracy)},
		{"fig1", "Idle power/temperature transient (Figure 1)", one((*Campaign).Fig1)},
		{"sec4a-idle", "Idle power model validation (Section IV-A)", one((*Campaign).IdleModelAccuracy)},
		{"fig2", "Power model validation, dynamic + chip (Figure 2)", func(c *Campaign) ([]*Result, error) {
			a, b, err := c.Fig2()
			if err != nil {
				return nil, err
			}
			return []*Result{a, b}, nil
		}},
		{"sec4c-obs", "Observations 1 and 2 (Section IV-C)", one((*Campaign).Observations)},
		{"fig3", "Cross-VF power prediction (Figure 3)", func(c *Campaign) ([]*Result, error) {
			a, b, err := c.Fig3()
			if err != nil {
				return nil, err
			}
			return []*Result{a, b}, nil
		}},
		{"fig4", "Power gating CU sweep and decomposition (Figure 4)", one((*Campaign).Fig4)},
		{"fig6", "Energy prediction vs Green Governors (Figure 6)", one((*Campaign).Fig6)},
		{"fig7", "One-step power capping (Figure 7)", one((*Campaign).Fig7)},
		{"fig8", "Per-thread energy exploration (Figure 8)", one((*Campaign).Fig8)},
		{"fig9", "Per-thread EDP exploration (Figure 9)", one((*Campaign).Fig9)},
		{"fig10", "NB energy share (Figure 10)", one((*Campaign).Fig10)},
		{"fig11", "NB DVFS what-if (Figure 11)", one((*Campaign).Fig11)},
		{"sec4b-corr", "Event correlation with dynamic power (Section IV-B1 rationale)", one((*Campaign).EventCorrelation)},
		{"abl-alpha", "Ablation: fitted vs fixed voltage exponent", one((*Campaign).AblationAlpha)},
		{"abl-nonb", "Ablation: dynamic model without NB proxy events", one((*Campaign).AblationNoNBEvents)},
		{"abl-mux", "Ablation: counter multiplexing vs oracle counters", one((*Campaign).AblationMux)},
		{"abl-sensor", "Ablation: noisy vs ideal power sensor", one((*Campaign).AblationSensor)},
		{"abl-boost", "Ablation: hardware boost on vs off", one((*Campaign).AblationBoost)},
		{"gov-compare", "Governor comparison (extension)", one((*Campaign).GovernorComparison)},
		{"abl-llbw", "Ablation: LL model under bandwidth saturation", one((*Campaign).AblationLLBandwidth)},
		{"sec4b-outliers", "Outlier analysis: error vs phase volatility", one((*Campaign).Outliers)},
		{"abl-thermal", "Ablation: thermal feedback on cross-VF prediction", one((*Campaign).AblationThermalFeedback)},
	}
}

// ByID returns the named experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
