package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Result is one experiment's printable output plus its headline metrics
// for EXPERIMENTS.md.
type Result struct {
	ID     string // "fig2a", "sec3-cpi", ...
	Title  string
	Header []string
	Rows   [][]string
	// Metrics holds headline numbers keyed by short names
	// ("avg_aae" → 0.046).
	Metrics map[string]float64
	Notes   []string
}

// Metric records a headline number.
func (r *Result) Metric(name string, v float64) {
	if r.Metrics == nil {
		r.Metrics = map[string]float64{}
	}
	r.Metrics[name] = v
}

// AddRow appends a formatted row.
func (r *Result) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// String renders the result as an aligned text table.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	for _, row := range r.Rows {
		writeRow(row)
	}
	if len(r.Metrics) > 0 {
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("-- headline: ")
		for i, k := range keys {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s=%.4g", k, r.Metrics[k])
		}
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "   note: %s\n", n)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// pct formats a fraction as a percentage string.
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// f2 formats a float with two decimals.
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
