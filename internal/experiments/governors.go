package experiments

import (
	"fmt"

	"ppep/internal/arch"
	"ppep/internal/dvfs"
	"ppep/internal/fxsim"
	"ppep/internal/workload"
)

// GovernorComparison is an extension experiment: it races the PPEP-based
// proactive governors against a static pin and a Linux-ondemand-style
// reactive baseline on a fixed time window, reporting energy,
// throughput, and energy per instruction. It substantiates the paper's
// premise that one-step prediction beats reactive search not just for
// capping but for routine energy/EDP management.
func (c *Campaign) GovernorComparison() (*Result, error) {
	if c.Models == nil {
		return nil, fmt.Errorf("experiments: campaign has no trained models")
	}
	res := &Result{
		ID:     "gov-compare",
		Title:  "Governor comparison (433.milc ×2 + 458.sjeng ×2, 20 s)",
		Header: []string{"governor", "energy (J)", "Ginst", "nJ/inst"},
	}

	type entry struct {
		name string
		mk   func() (fxsim.Controller, *[]dvfs.GovStep)
	}
	entries := []entry{
		{"static VF5", func() (fxsim.Controller, *[]dvfs.GovStep) {
			g := &dvfs.StaticGovernor{State: arch.VF5}
			return g, &g.History
		}},
		{"static VF1", func() (fxsim.Controller, *[]dvfs.GovStep) {
			g := &dvfs.StaticGovernor{State: arch.VF1}
			return g, &g.History
		}},
		{"ondemand", func() (fxsim.Controller, *[]dvfs.GovStep) {
			g := &dvfs.OnDemandGovernor{}
			return g, &g.History
		}},
		{"ppep-energy", func() (fxsim.Controller, *[]dvfs.GovStep) {
			g := &dvfs.PPEPEnergyGovernor{Models: c.Models}
			return g, &g.History
		}},
		{"ppep-edp", func() (fxsim.Controller, *[]dvfs.GovStep) {
			g := &dvfs.PPEPEDPGovernor{Models: c.Models}
			return g, &g.History
		}},
	}

	mix := workload.Run{Name: "govmix", Suite: "MIX", Members: []workload.Member{
		{Bench: workload.SPECByNumber("433"), Threads: 2},
		{Bench: workload.SPECByNumber("458"), Threads: 2},
	}}

	for _, e := range entries {
		ctl, hist := e.mk()
		cfg := c.ChipConfig()
		cfg.PowerGating = true
		cfg.SensorSeed = seedOf("gov-"+e.name, c.Table.Top())
		chip := fxsim.New(cfg)
		if _, err := chip.Collect(scaleRun(mix, c.opts.Scale), fxsim.RunOpts{
			VF: arch.VF5, MaxTimeS: 20, Restart: true, WarmTempK: 318,
			Controller: ctl, Placement: fxsim.PlaceScatter,
		}); err != nil {
			return nil, err
		}
		energy := dvfs.EnergyJ(*hist, 0.2)
		inst := dvfs.Instructions(*hist)
		jpi := 0.0
		if inst > 0 {
			jpi = float64(energy) / inst * 1e9
		}
		res.AddRow(e.name, f2(float64(energy)), f2(inst/1e9), f2(jpi))
		key := e.name
		res.Metric("jpi_"+key, jpi)
		res.Metric("ginst_"+key, inst/1e9)
	}
	res.Notes = append(res.Notes,
		"the PPEP energy governor should match static-VF1 efficiency while ondemand chases utilization to the top state")
	return res, nil
}
