package experiments

import (
	"ppep/internal/arch"
	"ppep/internal/fingerprint"
	"ppep/internal/fxsim"
	"ppep/internal/simcache"
	"ppep/internal/trace"
	"ppep/internal/tracecodec"
	"ppep/internal/workload"
)

// Cell definitions: each kind of simulation cell fingerprints the full
// set of inputs that determine its trace, beyond what the platform
// Config already covers. Field names participate in the hash, so these
// structs are part of the cache schema — renaming a field invalidates
// existing entries, which is the safe direction (docs/CACHE.md).

// collectDef identifies a benchmark-collection (or exploration) cell:
// the already-scaled run plus the exact run options.
type collectDef struct {
	Run  workload.Run
	Opts fxsim.RunOpts
}

// idleDef identifies one idle heat/cool transient.
type idleDef struct {
	VF           arch.VFState
	HeatS, CoolS float64
}

// pgDef identifies one power-gating sweep cell.
type pgDef struct {
	VF   arch.VFState
	PG   bool
	Busy int
}

// openCache attaches the persistent trace store configured by
// Options.CacheDir; with an empty CacheDir the campaign simulates
// everything, exactly as before the cache existed.
func (c *Campaign) openCache() error {
	if c.opts.CacheDir == "" {
		return nil
	}
	s, err := simcache.Open(c.opts.CacheDir, simcache.Options{MaxBytes: c.opts.CacheMaxBytes})
	if err != nil {
		return err
	}
	c.cache = s
	return nil
}

// simulate runs one simulation cell through the cache. The key is the
// FNV-1a fingerprint of (codec schema version, platform config — which
// includes the cell's sensor seed —, cell kind, cell definition, scale);
// the definition embeds the VF state and, for collection cells, the
// scaled run. With no cache configured, sim runs directly.
func (c *Campaign) simulate(kind string, cfg fxsim.Config, def any, sim func() (*trace.Trace, error)) (*trace.Trace, error) {
	if c.cache == nil {
		return sim()
	}
	key := fingerprint.Of(uint32(tracecodec.SchemaVersion), cfg.Fingerprint(), kind, def, c.opts.Scale)
	return c.cache.GetOrCompute(key, sim)
}

// CacheStats returns the trace-cache counters; ok is false when the
// campaign runs without a cache.
func (c *Campaign) CacheStats() (st simcache.Stats, ok bool) {
	if c.cache == nil {
		return simcache.Stats{}, false
	}
	return c.cache.Stats(), true
}
