package experiments

import (
	"fmt"
	"sort"

	"ppep/internal/arch"
	"ppep/internal/core/energy"
	"ppep/internal/stats"
	"ppep/internal/trace"
	"ppep/internal/units"
)

// Fig6 reproduces Figure 6: next-interval chip energy prediction error at
// the top VF state for every SPEC combination, comparing PPEP against the
// Green Governors baseline; plus the VF4..VF1 averages reported in the
// text (3.3/3.7/4.0/4.9%).
func (c *Campaign) Fig6() (*Result, error) {
	folds, err := c.crossValidate(4)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "fig6",
		Title:  "Next-interval energy prediction error (SPEC combos, top VF)",
		Header: []string{"combo", "PPEP AAE", "GreenGov AAE"},
	}
	top := c.Table.Top()

	type row struct {
		name     string
		ppep, gg float64
	}
	var rows []row
	var ppepAll, ggAll []float64
	perVF := map[arch.VFState][]float64{}

	for _, fm := range folds {
		models := fm.models
		for _, rt := range c.Runs {
			if !fm.testNames[rt.Name] || rt.Suite != "SPE" {
				continue
			}
			ppepEst := func(iv trace.Interval) units.Watts {
				w, err := models.EstimateChipW(iv)
				if err != nil {
					return 0
				}
				return w
			}
			errs := energy.NextIntervalErrors(rt.Trace, ppepEst)
			if len(errs) == 0 {
				continue
			}
			aae := stats.Mean(errs)
			perVF[rt.VF] = append(perVF[rt.VF], aae)
			if rt.VF != top {
				continue
			}
			ppepAll = append(ppepAll, aae)
			var ggAAE float64
			if c.GG != nil {
				ggEst := func(iv trace.Interval) units.Watts { return c.GG.EstimateChipW(iv, c.Table) }
				ggErrs := energy.NextIntervalErrors(rt.Trace, ggEst)
				ggAAE = stats.Mean(ggErrs)
				ggAll = append(ggAll, ggAAE)
			}
			rows = append(rows, row{rt.Name, aae, ggAAE})
		}
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("experiments: no SPEC runs at top VF for Fig 6")
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	for _, r := range rows {
		res.AddRow(r.name, pct(r.ppep), pct(r.gg))
	}
	res.AddRow("AVG", pct(stats.Mean(ppepAll)), pct(stats.Mean(ggAll)))
	res.Metric("ppep_avg", stats.Mean(ppepAll))
	res.Metric("gg_avg", stats.Mean(ggAll))
	// Text numbers: averages at the lower states.
	states := c.Table.States()
	for i := len(states) - 2; i >= 0; i-- {
		vf := states[i]
		if vals := perVF[vf]; len(vals) > 0 {
			res.Metric("ppep_avg_"+vf.String(), stats.Mean(vals))
		}
	}
	res.Notes = append(res.Notes,
		"paper: PPEP 3.6% vs Green Governors ≈7% at VF5; VF4..VF1 = 3.3/3.7/4.0/4.9%")
	return res, nil
}
