package units

import (
	"math"
	"testing"
)

// closeRel reports a/b agreement to within ~1 ulp-scale relative error.
// Conversions that multiply and divide by the same factor (×1e3, ×1e9)
// or add and subtract the same offset are not exactly invertible in
// binary floating point, so round-trips are checked relatively.
func closeRel(a, b float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= 1e-12*scale
}

func FuzzTemperatureRoundTrip(f *testing.F) {
	for _, seed := range []float64{0, 273.15, 300, 353.8, 1e6, -40} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, x float64) {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Skip()
		}
		k := Kelvin(x)
		if back := k.Celsius().Kelvin(); !closeRel(float64(back), x) &&
			// Catastrophic cancellation near the offset is inherent to
			// the representation, not a conversion bug: the absolute
			// error still stays within one offset ulp.
			math.Abs(float64(back)-x) > 1e-10 {
			t.Errorf("K→C→K: %v → %v", x, float64(back))
		}
		c := Celsius(x)
		if back := c.Kelvin().Celsius(); !closeRel(float64(back), x) &&
			math.Abs(float64(back)-x) > 1e-10 {
			t.Errorf("C→K→C: %v → %v", x, float64(back))
		}
	})
}

func FuzzFrequencyRoundTrip(f *testing.F) {
	for _, seed := range []float64{0.8, 1.4, 2.3, 3.5, 1e-9, 1e12} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, x float64) {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Skip()
		}
		g := GigaHertz(x)
		if back := g.MegaHertz().GigaHertz(); !closeRel(float64(back), x) {
			t.Errorf("GHz→MHz→GHz: %v → %v", x, float64(back))
		}
		m := MegaHertz(x)
		if back := m.GigaHertz().MegaHertz(); !closeRel(float64(back), x) {
			t.Errorf("MHz→GHz→MHz: %v → %v", x, float64(back))
		}
	})
}

func FuzzDurationRoundTrip(f *testing.F) {
	for _, seed := range []float64{0.02, 0.2, 1, 36, 1e-6} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, x float64) {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Skip()
		}
		s := Seconds(x)
		if back := s.Milliseconds().Seconds(); !closeRel(float64(back), x) {
			t.Errorf("s→ms→s: %v → %v", x, float64(back))
		}
	})
}

func FuzzEnergyPowerRoundTrip(f *testing.F) {
	f.Add(95.0, 0.2)
	f.Add(48.0, 0.02)
	f.Add(130.0, 1.0)
	f.Fuzz(func(t *testing.T, w, d float64) {
		if math.IsNaN(w) || math.IsInf(w, 0) || math.IsNaN(d) || d <= 0 || math.IsInf(d, 0) {
			t.Skip()
		}
		j := Watts(w).Over(Seconds(d))
		if back := j.OverTime(Seconds(d)); !closeRel(float64(back), w) {
			t.Errorf("W→J→W over %v s: %v → %v", d, w, float64(back))
		}
		// The millisecond integration path must agree with the seconds
		// path on representable durations.
		j2 := Watts(w).OverMS(Seconds(d).Milliseconds())
		if !closeRel(float64(j), float64(j2)) {
			t.Errorf("Over vs OverMS: %v vs %v", float64(j), float64(j2))
		}
	})
}

func FuzzThroughputInvert(f *testing.F) {
	f.Add(3.2e9)
	f.Add(1.0)
	f.Fuzz(func(t *testing.T, x float64) {
		if math.IsNaN(x) || x <= 0 || math.IsInf(x, 0) {
			t.Skip()
		}
		r := InstPerSec(x)
		// 1/(1/x) round-trips exactly for powers of two and to ~1 ulp
		// otherwise.
		if back := 1 / float64(r.Invert()); !closeRel(back, x) {
			t.Errorf("IPS invert: %v → %v", x, back)
		}
	})
}

func TestTemperatureOffset(t *testing.T) {
	if got := Kelvin(300).Celsius(); math.Abs(float64(got)-26.85) > 1e-9 {
		t.Errorf("300 K = %v °C, want 26.85", float64(got))
	}
	if got := Celsius(0).Kelvin(); got != KelvinOffset {
		t.Errorf("0 °C = %v K, want %v", float64(got), KelvinOffset)
	}
}

func TestScaleFreqMatchesEq1Order(t *testing.T) {
	// Eq. 1: MCPI scales linearly with frequency; the helper must keep
	// the historical (c*to)/from evaluation order bit-for-bit.
	c, to, from := 0.7, 1.4, 3.5
	want := c * to / from
	if got := CPI(c).ScaleFreq(GigaHertz(to), GigaHertz(from)); float64(got) != want {
		t.Errorf("ScaleFreq = %v, want %v", float64(got), want)
	}
}

func TestNanoJoules(t *testing.T) {
	if got := NanoJoules(2.5).Joules(); float64(got) != 2.5*1e-9 {
		t.Errorf("2.5 nJ = %v J", float64(got))
	}
}

func TestSuffix(t *testing.T) {
	cases := []struct {
		q    any
		want string
	}{
		{Watts(1), "_watts"},
		{Joules(1), "_joules"},
		{Celsius(1), "_celsius"},
		{Kelvin(1), "_kelvin"},
		{MegaHertz(1), "_mhz"},
		{GigaHertz(1), "_ghz"},
		{Volts(1), "_volts"},
		{Seconds(1), "_seconds"},
		{InstPerSec(1), "_ips"},
		{JoulesPerInst(1), "_joules_per_inst"},
		{float64(1), ""},
		{42, ""},
	}
	for _, c := range cases {
		if got := Suffix(c.q); got != c.want {
			t.Errorf("Suffix(%T) = %q, want %q", c.q, got, c.want)
		}
	}
}
