// Package units defines the physical quantity types threaded through
// the PPEP model stack (paper Eqs. 1-8): voltages, temperatures,
// frequencies, powers, energies, durations, and the per-instruction /
// per-event rates the predictor trades in.
//
// Every type is a defined type over float64, so conversions are
// representation-free: wrapping a value in a unit type (or moving it
// between packages) compiles to nothing, keeps the golden fingerprint
// tests bit-identical, and adds no allocations to the tick path. What
// the types buy is that *cross-dimension* mistakes — a volts-for-kelvin
// swap, a MHz/GHz mixup — no longer type-check, and the ppeplint
// `unitcheck` analyzer (docs/UNITS.md) polices the remaining escape
// hatches (float64 casts, cross-unit conversions).
//
// Conversion helpers follow three rules:
//
//   - Single-expression bodies so they always inline (the hotpath
//     analyzer treats them like arithmetic).
//   - The float operation order inside a helper matches the historical
//     expression it replaced, preserving bit-identical results.
//     (Multiplication operand order is free: IEEE 754 multiplication
//     is commutative.)
//   - No String methods. The numeric fmt verbs used by the experiment
//     tables ignore Stringer anyway, and a Stringer would change %v
//     output and break golden files.
//
// Dimensionless ratios (scaling factors, relative errors, fractions)
// deliberately stay plain float64 — the `Per` helpers produce them, and
// genuinely dimensionless model coefficients carry a
// `//ppep:allow unitcheck <reason>` directive instead of a fake unit.
package units

// KelvinOffset converts between the Kelvin and Celsius scales.
const KelvinOffset = 273.15

// Volts is an electrical potential (core or northbridge supply rail).
type Volts float64

// Kelvin is an absolute temperature (thermal diode, thermal model
// state).
type Kelvin float64

// Celsius is a temperature on the Celsius scale (hwmon exposition,
// Prometheus metrics).
type Celsius float64

// GigaHertz is a clock frequency in GHz (the VF-table granularity).
type GigaHertz float64

// MegaHertz is a clock frequency in MHz (P-state register and metric
// granularity).
type MegaHertz float64

// Watts is a power.
type Watts float64

// Joules is an energy.
type Joules float64

// NanoJoules is a per-event energy cost (powertruth's EventNJ table).
type NanoJoules float64

// Seconds is a duration.
type Seconds float64

// Milliseconds is a duration in ms (sampling and decision intervals).
type Milliseconds float64

// CPI is cycles per instruction (Eq. 1 state).
type CPI float64

// InstPerSec is an instruction throughput (IPS).
type InstPerSec float64

// EventsPerInst is a per-instruction event rate (Eq. 3 activity
// vector entries normalised by instructions).
type EventsPerInst float64

// JoulesPerEvent is an energy cost per countable event — the Eq. 3
// power-model weights Wi are "watts per (event/second)", i.e. joules
// per event.
type JoulesPerEvent float64

// JoulesPerInst is an energy cost per instruction (E/D-space axes).
type JoulesPerInst float64

// SecondsPerInst is a delay per instruction (E/D-space axes).
type SecondsPerInst float64

// EDP is an energy-delay product per instruction squared
// (JoulesPerInst × SecondsPerInst).
type EDP float64

// JouleSeconds is an absolute energy-delay product (Joules × Seconds).
type JouleSeconds float64

// KelvinPerWatt is a thermal resistance.
type KelvinPerWatt float64

// JoulesPerKelvin is a thermal capacitance.
type JoulesPerKelvin float64

// WattsPerKelvin is a temperature sensitivity of power — the slope
// W1(V) of the Eq. 2 idle model.
type WattsPerKelvin float64

// WattsPerGigaHertz is a frequency sensitivity of power (clock-tree
// power per GHz).
type WattsPerGigaHertz float64

// PerKelvin is an inverse temperature (exponential leakage
// sensitivity).
type PerKelvin float64

// PerVolt is an inverse voltage (exponential leakage sensitivity).
type PerVolt float64

// --- Temperature conversions ---

// Celsius converts an absolute temperature to the Celsius scale.
func (k Kelvin) Celsius() Celsius { return Celsius(float64(k) - KelvinOffset) }

// Kelvin converts a Celsius temperature to the absolute scale.
func (c Celsius) Kelvin() Kelvin { return Kelvin(float64(c) + KelvinOffset) }

// --- Frequency conversions ---

// MegaHertz converts GHz to MHz.
func (f GigaHertz) MegaHertz() MegaHertz { return MegaHertz(float64(f) * 1e3) }

// GigaHertz converts MHz to GHz.
func (f MegaHertz) GigaHertz() GigaHertz { return GigaHertz(float64(f) / 1e3) }

// CyclesPerSec returns the raw cycle rate (Hz) as a plain float64 for
// counter-vector arithmetic.
func (f GigaHertz) CyclesPerSec() float64 { return float64(f) * 1e9 }

// Per returns the dimensionless frequency ratio f/ref.
func (f GigaHertz) Per(ref GigaHertz) float64 { return float64(f) / float64(ref) }

// OverCPI converts a clock frequency and a CPI into an instruction
// throughput: f[cycles/s] / cpi[cycles/inst] = inst/s.
func (f GigaHertz) OverCPI(c CPI) InstPerSec {
	return InstPerSec(float64(f) * 1e9 / float64(c))
}

// AggregateCPI returns total cycles over total instructions for n cores
// clocked at f retiring r instructions per second in aggregate:
// n·f[cycles/s] / r[inst/s] = cycles/inst.
func (f GigaHertz) AggregateCPI(n int, r InstPerSec) CPI {
	return CPI(float64(n) * float64(f) * 1e9 / float64(r))
}

// --- Duration conversions ---

// Milliseconds converts seconds to ms.
func (s Seconds) Milliseconds() Milliseconds { return Milliseconds(float64(s) * 1e3) }

// Seconds converts ms to seconds.
func (ms Milliseconds) Seconds() Seconds { return Seconds(float64(ms) / 1e3) }

// Per returns the dimensionless duration ratio s/ref.
func (s Seconds) Per(ref Seconds) float64 { return float64(s) / float64(ref) }

// --- Electrical conversions ---

// Per returns the dimensionless voltage ratio v/ref (the base of
// Eq. 3's (V/V5)^alpha scaling).
func (v Volts) Per(ref Volts) float64 { return float64(v) / float64(ref) }

// V2F returns the CV²f dynamic-power scaling factor V²·f (volt²·GHz),
// evaluated as (V × V) × f. The capacitance coefficient it multiplies
// stays a plain float64 (the Green Governors baseline folds the
// cycles-per-GHz factor into it).
func (v Volts) V2F(f GigaHertz) float64 { return float64(v) * float64(v) * float64(f) }

// Times resolves an exponential voltage sensitivity against a voltage
// delta into the dimensionless exponent.
func (p PerVolt) Times(v Volts) float64 { return float64(p) * float64(v) }

// Times resolves an exponential temperature sensitivity against a
// temperature delta into the dimensionless exponent.
func (p PerKelvin) Times(k Kelvin) float64 { return float64(p) * float64(k) }

// --- Power / energy conversions ---

// Over integrates a power over a duration: W × s = J.
func (w Watts) Over(d Seconds) Joules { return Joules(float64(w) * float64(d)) }

// OverMS integrates a power over a millisecond duration: W × ms/1e3 = J.
func (w Watts) OverMS(d Milliseconds) Joules {
	return Joules(float64(w) * (float64(d) / 1e3))
}

// Per returns the dimensionless power ratio w/ref.
func (w Watts) Per(ref Watts) float64 { return float64(w) / float64(ref) }

// PerRate divides a power by an instruction throughput:
// (J/s) / (inst/s) = J/inst — the E/D-space energy axis.
func (w Watts) PerRate(r InstPerSec) JoulesPerInst {
	return JoulesPerInst(float64(w) / float64(r))
}

// Per returns the dimensionless energy ratio j/ref.
func (j Joules) Per(ref Joules) float64 { return float64(j) / float64(ref) }

// OverTime divides an energy by a duration back into a power.
func (j Joules) OverTime(d Seconds) Watts { return Watts(float64(j) / float64(d)) }

// Times forms an absolute energy-delay product: J × s.
func (j Joules) Times(d Seconds) JouleSeconds { return JouleSeconds(float64(j) * float64(d)) }

// Joules converts a per-event nano-joule cost to joules.
func (nj NanoJoules) Joules() Joules { return Joules(float64(nj) * 1e-9) }

// --- Thermal conversions ---

// Times resolves a thermal resistance against a power into the
// steady-state temperature rise: K/W × W = K.
func (r KelvinPerWatt) Times(w Watts) Kelvin { return Kelvin(float64(r) * float64(w)) }

// TimesHeatCap forms the RC thermal time constant: K/W × J/K = s.
func (r KelvinPerWatt) TimesHeatCap(c JoulesPerKelvin) Seconds {
	return Seconds(float64(r) * float64(c))
}

// Times resolves the Eq. 2 slope against a temperature: W/K × K = W.
func (s WattsPerKelvin) Times(k Kelvin) Watts { return Watts(float64(s) * float64(k)) }

// Times resolves a clock-tree sensitivity against a frequency:
// W/GHz × GHz = W.
func (s WattsPerGigaHertz) Times(f GigaHertz) Watts { return Watts(float64(s) * float64(f)) }

// --- Performance conversions ---

// ScaleFreq rescales a memory-bound CPI component from one clock to
// another (Eq. 1: MCPI grows linearly with frequency):
// cpi × to/from, evaluated as (cpi × to) / from to match the
// historical operation order.
func (c CPI) ScaleFreq(to, from GigaHertz) CPI {
	return CPI(float64(c) * float64(to) / float64(from))
}

// Scaled multiplies a CPI by a dimensionless factor.
func (c CPI) Scaled(r float64) CPI { return CPI(float64(c) * r) }

// Per returns the dimensionless CPI ratio c/ref.
func (c CPI) Per(ref CPI) float64 { return float64(c) / float64(ref) }

// Per returns the dimensionless throughput ratio r/ref (speedup).
func (r InstPerSec) Per(ref InstPerSec) float64 { return float64(r) / float64(ref) }

// Invert turns a throughput into a per-instruction delay.
func (r InstPerSec) Invert() SecondsPerInst { return SecondsPerInst(1 / float64(r)) }

// TimesDelay forms the per-instruction-squared energy-delay product:
// J/inst × s/inst.
func (e JoulesPerInst) TimesDelay(d SecondsPerInst) EDP {
	return EDP(float64(e) * float64(d))
}

// Per returns the dimensionless energy-per-instruction ratio e/ref.
func (e JoulesPerInst) Per(ref JoulesPerInst) float64 { return float64(e) / float64(ref) }

// Per returns the dimensionless delay ratio d/ref (the speedup of ref
// over d when d is the faster point).
func (d SecondsPerInst) Per(ref SecondsPerInst) float64 { return float64(d) / float64(ref) }

// --- Prometheus exposition ---

// Suffix returns the canonical Prometheus metric-name suffix for a
// typed quantity, or "" for plain (dimensionless) float64 values.
// internal/serve derives every gauge name through this function, so a
// metric name can never disagree with the unit of the value it exports.
func Suffix(q any) string {
	switch q.(type) {
	case Watts:
		return "_watts"
	case Joules:
		return "_joules"
	case Celsius:
		return "_celsius"
	case Kelvin:
		return "_kelvin"
	case MegaHertz:
		return "_mhz"
	case GigaHertz:
		return "_ghz"
	case Volts:
		return "_volts"
	case Seconds:
		return "_seconds"
	case InstPerSec:
		return "_ips"
	case JoulesPerInst:
		return "_joules_per_inst"
	}
	return ""
}
