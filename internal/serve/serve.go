// Package serve is the HTTP observability layer of the always-on PPEP
// service (`ppepd -serve`): it exposes the daemon's live per-VF
// performance/power/energy projections in Prometheus text format
// (/metrics), the bounded report history as JSON (/reports,
// /reports/latest), on-demand cross-VF projections (/predict?vf=N), and
// stale-interval liveness (/healthz).
//
// The deployment shape follows the paper's Section IV-E user-level
// daemon: the sampling/analyze/policy loop runs as one
// context-cancellable goroutine (daemon.Run) while this package's
// handlers only read the daemon's history ring and counters — they never
// touch the chip, so no endpoint can perturb sampling.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ppep/internal/arch"
	"ppep/internal/core"
	"ppep/internal/daemon"
	"ppep/internal/fxsim"
	"ppep/internal/units"
)

// DefaultStaleAfter is the /healthz staleness threshold when Options
// leaves it zero.
const DefaultStaleAfter = 5 * time.Second

// Options tunes the server.
type Options struct {
	// StaleAfter is how long /healthz tolerates no completed interval
	// before reporting 503 (default DefaultStaleAfter).
	StaleAfter time.Duration
	// Now replaces time.Now for staleness arithmetic (tests).
	Now func() time.Time
}

// Server renders a daemon's state over HTTP.
type Server struct {
	d    *daemon.Daemon
	opts Options

	// lastWallNanos is the wall time of the most recent completed
	// interval, maintained by Observe from the sampling goroutine.
	lastWallNanos atomic.Int64
	startWall     time.Time
}

// New wires a server onto the daemon: the daemon's OnInterval callback
// is chained through Observe so /healthz can detect a stalled loop.
func New(d *daemon.Daemon, opts Options) *Server {
	if opts.StaleAfter <= 0 {
		opts.StaleAfter = DefaultStaleAfter
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	s := &Server{d: d, opts: opts, startWall: opts.Now()}
	prev := d.OnInterval
	d.OnInterval = func(rec daemon.Record) {
		s.Observe(rec)
		if prev != nil {
			prev(rec)
		}
	}
	return s
}

// Observe stamps a completed interval against the wall clock. It is the
// daemon's OnInterval hook; exported so alternative loop drivers (tests,
// benchmarks) can call it directly.
func (s *Server) Observe(daemon.Record) {
	s.lastWallNanos.Store(s.opts.Now().UnixNano())
}

// Handler returns the route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /reports", s.handleReports)
	mux.HandleFunc("GET /reports/latest", s.handleLatest)
	mux.HandleFunc("GET /predict", s.handlePredict)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// ListenAndServe serves the handler on addr until ctx is cancelled, then
// shuts down gracefully (in-flight requests get shutdownGrace). It
// returns nil on a clean ctx-driven shutdown.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	const shutdownGrace = 3 * time.Second
	srv := &http.Server{Addr: addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err // bind failure or unexpected server death
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}

// bufPool recycles response-encode buffers across requests: the
// /metrics exposition and the JSON report snapshots are rendered into a
// pooled buffer and written out in one call, so a scrape-heavy client
// cannot make the server re-grow encode buffers on every request.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func getBuf() *bytes.Buffer {
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

// writeJSON renders v with a 200 (or the given status).
func writeJSON(w http.ResponseWriter, status int, v any) {
	b := getBuf()
	defer bufPool.Put(b)
	enc := json.NewEncoder(b)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// best-effort: the client may have gone away mid-response
	_, _ = w.Write(b.Bytes())
}

// handleReports returns the retained history, oldest first. ?n=K limits
// the response to the newest K records.
func (s *Server) handleReports(w http.ResponseWriter, r *http.Request) {
	recs := s.d.Records()
	if q := r.URL.Query().Get("n"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			http.Error(w, fmt.Sprintf("bad n %q: want a non-negative integer", q), http.StatusBadRequest)
			return
		}
		if n < len(recs) {
			recs = recs[len(recs)-n:]
		}
	}
	writeJSON(w, http.StatusOK, recs)
}

// handleLatest returns the newest record, or 404 before the first
// interval completes.
func (s *Server) handleLatest(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.d.Latest()
	if !ok {
		http.Error(w, "no interval completed yet", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// prediction is the /predict response: one VF state's projection from
// the latest interval.
type prediction struct {
	Seq       uint64          `json:"seq"`
	TimeS     float64         `json:"time_s"`
	Measured  arch.VFState    `json:"measured_vf"`
	Projected core.Projection `json:"projection"`
}

// handlePredict returns the latest report's projection at ?vf=N.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.d.Latest()
	if !ok {
		http.Error(w, "no interval completed yet", http.StatusNotFound)
		return
	}
	q := r.URL.Query().Get("vf")
	if q == "" {
		http.Error(w, "missing vf parameter (want vf=1..N)", http.StatusBadRequest)
		return
	}
	n, err := strconv.Atoi(q)
	if err != nil || n < 1 || n > len(rec.Report.PerVF) {
		http.Error(w, fmt.Sprintf("bad vf %q: want 1..%d", q, len(rec.Report.PerVF)),
			http.StatusBadRequest)
		return
	}
	writeJSON(w, http.StatusOK, prediction{
		Seq:       rec.Seq,
		TimeS:     rec.Interval.TimeS,
		Measured:  rec.Report.MeasuredVF,
		Projected: rec.Report.At(arch.VFState(n)),
	})
}

// health is the /healthz response body.
type health struct {
	Status    string  `json:"status"` // "ok", "starting", or "stale"
	Intervals uint64  `json:"intervals"`
	AgeS      float64 `json:"last_interval_age_s"`
}

// handleHealthz reports loop liveness: 200 while intervals keep
// completing within StaleAfter, 503 once they stop (a wedged or dead
// sampling goroutine), and 200 "starting" during initial model/loop
// spin-up before the first interval.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	now := s.opts.Now()
	h := health{Intervals: s.d.Counters().Intervals.Load()}
	last := s.lastWallNanos.Load()
	var since time.Duration
	if last == 0 {
		h.Status = "starting"
		since = now.Sub(s.startWall)
	} else {
		h.Status = "ok"
		since = now.Sub(time.Unix(0, last))
	}
	h.AgeS = since.Seconds()
	if since > s.opts.StaleAfter {
		h.Status = "stale"
		writeJSON(w, http.StatusServiceUnavailable, h)
		return
	}
	writeJSON(w, http.StatusOK, h)
}

// handleMetrics renders the Prometheus text exposition: the latest
// report's per-VF projections as gauges plus the daemon's operational
// counters.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	b := getBuf()
	defer bufPool.Put(b)
	rec, ok := s.d.Latest()
	if ok {
		gauge(b, "ppep_measured_power", "Sensor-measured chip power over the last interval.",
			units.Watts(rec.Interval.MeasPowerW))
		gauge(b, "ppep_diode_temp", "Socket thermal diode reading.",
			units.Kelvin(rec.Interval.TempK).Celsius())
		gauge(b, "ppep_measured_freq", "Core clock of the VF state the last interval ran at.",
			s.d.Models.Table.Point(rec.Report.MeasuredVF).Freq.MegaHertz())
		gauge(b, "ppep_measured_vf_state", "VF state the last interval ran at.",
			float64(rec.Report.MeasuredVF))
		gauge(b, "ppep_interval_seq", "Sequence number of the last completed interval.",
			float64(rec.Seq))
		perVF(b, "ppep_predicted_chip", "Predicted chip power at each VF state.",
			rec, func(p core.Projection) units.Watts { return p.ChipW })
		perVF(b, "ppep_predicted_idle", "Predicted idle power at each VF state.",
			rec, func(p core.Projection) units.Watts { return p.IdleW })
		perVF(b, "ppep_predicted", "Predicted chip-wide instructions per second at each VF state.",
			rec, func(p core.Projection) units.InstPerSec { return p.TotalIPS })
		perVF(b, "ppep_predicted_interval", "Predicted energy of one decision interval at each VF state.",
			rec, func(p core.Projection) units.Joules { return p.IntervalEnergyJ })
	}
	for _, c := range counterRows(s.d.Counters().Snapshot(), s.d.EngineStats()) {
		counter(b, c.name, c.help, c.val)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// best-effort: the client may have gone away mid-response
	_, _ = w.Write(b.Bytes())
}

// counterRow is one operational counter's exposition metadata.
type counterRow struct {
	name, help string
	val        uint64
}

// counterRows maps the daemon counter snapshot onto metric rows. The
// rows are listed in metric-name order (the Prometheus exposition is
// sorted) so no per-request sort or heap allocation is needed; the
// ordering is pinned by TestCounterRowsSorted.
func counterRows(c daemon.CounterSnapshot, eng fxsim.EngineStats) [10]counterRow {
	return [10]counterRow{
		{"ppep_analyze_errors_total", "Intervals rejected by the PPEP analysis pipeline.", c.AnalyzeErrors},
		{"ppep_hwmon_read_failures_total", "Diode reads that failed after the full retry budget.", c.HwmonFailures},
		{"ppep_hwmon_read_retries_total", "Transient thermal diode faults that were retried.", c.HwmonRetries},
		{"ppep_intervals_total", "Completed (sampled and analyzed) decision intervals.", c.Intervals},
		{"ppep_msr_read_failures_total", "MSR operations that failed after the full retry budget.", c.MSRFailures},
		{"ppep_msr_read_retries_total", "Transient MSR faults that were retried.", c.MSRRetries},
		{"ppep_policy_rejects_total", "DVFS policy decisions the chip rejected.", c.PolicyRejects},
		{"ppep_sim_fast_ticks_total", "Simulator ticks replayed by the batched quiescent-run engine.", eng.FastTicks},
		{"ppep_sim_reference_ticks_total", "Simulator ticks executed on the reference per-tick path.", eng.ReferenceTicks},
		{"ppep_skipped_intervals_total", "Intervals abandoned after exhausting the device retry budget.", c.SkippedIntervals},
	}
}

// gauge renders one gauge. The metric name is the base plus the
// canonical unit suffix of the value's type (units.Suffix), so a name
// can never disagree with the unit of the value it exports; plain
// float64 values (state numbers, sequence counters) get no suffix.
func gauge[T ~float64](b *bytes.Buffer, base, help string, v T) {
	name := base + units.Suffix(v)
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, float64(v))
}

func counter(b *bytes.Buffer, name, help string, v uint64) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

// perVF renders one gauge with a vf label per projection, with the unit
// suffix derived from the projection field's type like gauge.
func perVF[T ~float64](b *bytes.Buffer, base, help string, rec daemon.Record, f func(core.Projection) T) {
	name := base + units.Suffix(T(0))
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	for _, p := range rec.Report.PerVF {
		fmt.Fprintf(b, "%s{vf=\"%d\"} %g\n", name, int(p.VF), float64(f(p)))
	}
}
