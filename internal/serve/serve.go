// Package serve is the HTTP observability layer of the always-on PPEP
// service (`ppepd -serve`): it exposes the daemon's live per-VF
// performance/power/energy projections in Prometheus text format
// (/metrics), the bounded report history as JSON (/reports,
// /reports/latest), cross-VF projections (/predict?vf=N and
// /predict/batch), and loop liveness (/healthz).
//
// The deployment shape follows the paper's Section IV-E user-level
// daemon: the sampling/analyze/policy loop runs as one
// context-cancellable goroutine (daemon.Run) while this package's
// handlers only read published state — they never touch the chip or the
// models, so no endpoint can perturb sampling.
//
// Prediction reads are O(1) and lock-free: at every interval end the
// daemon publishes an immutable per-VF projection table
// (core.PredictionTable) and Observe pre-renders every response body —
// one JSON blob per VF state, the batch JSON, and the batch binary
// frame — into an immutable snapshot behind an atomic pointer. A
// /predict or /predict/batch request is then a pointer load and a
// buffer write: zero model work, zero encoding, and at most two heap
// allocations per request (pinned by TestPredictAllocs). The paper's
// one-observation-prices-all-states property is what makes this shape
// possible: the full cross-VF answer is a fixed-size table, so it can
// be materialized eagerly no matter how many clients ask.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ppep/internal/arch"
	"ppep/internal/core"
	"ppep/internal/daemon"
	"ppep/internal/fxsim"
	"ppep/internal/units"
)

// DefaultStaleAfter is the /healthz staleness threshold when Options
// leaves it zero.
const DefaultStaleAfter = 5 * time.Second

// DefaultStartupGrace is how long /healthz tolerates spin-up (no
// completed interval yet) before reporting 503, when Options leaves it
// zero. Model training and workload binding legitimately take far
// longer than a steady-state interval gap, so the startup budget is
// separate from — and much larger than — StaleAfter.
const DefaultStartupGrace = 60 * time.Second

// Default HTTP server timeouts (see Options). A slow or stalled client
// must never be able to pin a connection, and with them unset it could:
// net/http's zero values mean "wait forever".
const (
	DefaultReadHeaderTimeout = 5 * time.Second
	DefaultReadTimeout       = 15 * time.Second
	DefaultWriteTimeout      = 15 * time.Second
	DefaultIdleTimeout       = 2 * time.Minute
)

// Options tunes the server. Duration fields follow one convention:
// zero picks the package default, negative disables the limit.
type Options struct {
	// StaleAfter is how long /healthz tolerates no completed interval —
	// after at least one has completed — before reporting 503 (default
	// DefaultStaleAfter).
	StaleAfter time.Duration
	// StartupGrace is how long /healthz reports a healthy "starting"
	// before the first completed interval (default DefaultStartupGrace).
	// Past it the status stays "starting" but turns 503: a wedged
	// spin-up must not look healthy forever.
	StartupGrace time.Duration

	// ReadHeaderTimeout, ReadTimeout, WriteTimeout, and IdleTimeout are
	// passed to the underlying http.Server (defaults above).
	ReadHeaderTimeout time.Duration
	ReadTimeout       time.Duration
	WriteTimeout      time.Duration
	IdleTimeout       time.Duration

	// Now replaces time.Now for staleness arithmetic (tests).
	Now func() time.Time
}

// timeoutOr resolves one Options duration: zero → default, negative →
// disabled (0, net/http's "no limit").
func timeoutOr(v, def time.Duration) time.Duration {
	if v == 0 {
		return def
	}
	if v < 0 {
		return 0
	}
	return v
}

// Server renders a daemon's state over HTTP.
type Server struct {
	d    *daemon.Daemon
	opts Options

	// lastWallNanos is the wall time of the most recent completed
	// interval, maintained by Observe from the sampling goroutine.
	lastWallNanos atomic.Int64
	startWall     time.Time

	// pub is the pre-rendered response snapshot for the current
	// prediction table, swapped whole by Observe. Handlers load it once
	// and write bytes; nil until the first interval completes.
	pub atomic.Pointer[published]
}

// published pairs one prediction table with every response body
// rendered from it. All fields are immutable after construction.
type published struct {
	table *core.PredictionTable
	// perVF holds the /predict?vf=N response bodies, index VF-1.
	perVF [][]byte
	// batchJSON and batchBin are the /predict/batch bodies in both
	// negotiable encodings.
	batchJSON []byte
	batchBin  []byte
}

// New wires a server onto the daemon: the daemon's OnInterval callback
// is chained through Observe so /healthz can detect a stalled loop and
// the prediction snapshot tracks the published table.
func New(d *daemon.Daemon, opts Options) *Server {
	if opts.StaleAfter <= 0 {
		opts.StaleAfter = DefaultStaleAfter
	}
	if opts.StartupGrace <= 0 {
		opts.StartupGrace = DefaultStartupGrace
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	s := &Server{d: d, opts: opts, startWall: opts.Now()}
	prev := d.OnInterval
	d.OnInterval = func(rec daemon.Record) {
		s.Observe(rec)
		if prev != nil {
			prev(rec)
		}
	}
	return s
}

// Observe stamps a completed interval against the wall clock and
// refreshes the pre-rendered prediction snapshot from the daemon's
// published table. It is the daemon's OnInterval hook; exported so
// alternative loop drivers (tests, benchmarks) can call it directly.
// It runs on the sampling goroutine once per 200 ms interval — the
// rendering cost lives here precisely so no request ever pays it.
func (s *Server) Observe(daemon.Record) {
	s.lastWallNanos.Store(s.opts.Now().UnixNano())
	t := s.d.Predictions()
	if t == nil {
		return
	}
	if old := s.pub.Load(); old != nil && old.table == t {
		return // driver called Observe twice for one interval
	}
	p := &published{
		table:     t,
		perVF:     make([][]byte, len(t.Rows)),
		batchJSON: renderJSON(t),
		batchBin:  EncodeBatch(t),
	}
	for i := range t.Rows {
		p.perVF[i] = renderJSON(prediction{
			Seq:        t.Seq,
			TimeS:      t.TimeS,
			MeasuredVF: t.MeasuredVF,
			Projection: t.Rows[i],
		})
	}
	s.pub.Store(p)
}

// renderJSON encodes v in the package's response style (two-space
// indent, trailing newline). The encoded values are plain finite
// numbers by construction (core.PredictionTable carries no ±Inf/NaN),
// so an encode error is a programming bug — it degrades to an empty
// body rather than a panic on the sampling goroutine.
func renderJSON(v any) []byte {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil
	}
	return append(b, '\n')
}

// Handler returns the route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /reports", s.handleReports)
	mux.HandleFunc("GET /reports/latest", s.handleLatest)
	mux.HandleFunc("GET /predict", s.handlePredict)
	mux.HandleFunc("GET /predict/batch", s.handlePredictBatch)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// httpServer builds the configured http.Server for addr. Split out of
// ListenAndServe so tests can assert the timeout wiring without
// binding a socket.
func (s *Server) httpServer(addr string) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: timeoutOr(s.opts.ReadHeaderTimeout, DefaultReadHeaderTimeout),
		ReadTimeout:       timeoutOr(s.opts.ReadTimeout, DefaultReadTimeout),
		WriteTimeout:      timeoutOr(s.opts.WriteTimeout, DefaultWriteTimeout),
		IdleTimeout:       timeoutOr(s.opts.IdleTimeout, DefaultIdleTimeout),
	}
}

// ListenAndServe serves the handler on addr until ctx is cancelled, then
// shuts down gracefully (in-flight requests get shutdownGrace). It
// returns nil on a clean ctx-driven shutdown.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	return s.run(ctx, s.httpServer(addr), nil)
}

// Serve is ListenAndServe on an existing listener — callers that need
// to know the bound address (e.g. ppep-loadgen's self-contained mode
// binding 127.0.0.1:0) listen first and pass the listener in. The
// listener is closed when serving stops.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	return s.run(ctx, s.httpServer(ln.Addr().String()), ln)
}

func (s *Server) run(ctx context.Context, srv *http.Server, ln net.Listener) error {
	const shutdownGrace = 3 * time.Second
	errc := make(chan error, 1)
	go func() {
		if ln != nil {
			errc <- srv.Serve(ln)
			return
		}
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		return err // bind failure or unexpected server death
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}

// bufPool recycles response-encode buffers across requests: the
// /metrics exposition and the JSON report snapshots are rendered into a
// pooled buffer and written out in one call, so a scrape-heavy client
// cannot make the server re-grow encode buffers on every request.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func getBuf() *bytes.Buffer {
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

// writeJSON renders v with a 200 (or the given status).
func writeJSON(w http.ResponseWriter, status int, v any) {
	b := getBuf()
	defer bufPool.Put(b)
	enc := json.NewEncoder(b)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// best-effort: the client may have gone away mid-response
	_, _ = w.Write(b.Bytes())
}

// handleReports returns the retained history, oldest first. ?n=K limits
// the response to the newest K records (?n=0 is a valid empty window).
func (s *Server) handleReports(w http.ResponseWriter, r *http.Request) {
	recs := s.d.Records()
	if q, ok := queryValue(r.URL.RawQuery, "n"); ok {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			http.Error(w, fmt.Sprintf("bad n %q: want a non-negative integer", q), http.StatusBadRequest)
			return
		}
		if n < len(recs) {
			recs = recs[len(recs)-n:]
		}
	}
	writeJSON(w, http.StatusOK, recs)
}

// handleLatest returns the newest record, or 404 before the first
// interval completes.
func (s *Server) handleLatest(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.d.Latest()
	if !ok {
		http.Error(w, "no interval completed yet", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// prediction is the /predict response: one VF state's published
// projection row from the latest interval.
type prediction struct {
	Seq        uint64             `json:"seq"`
	TimeS      units.Seconds      `json:"time_s"`
	MeasuredVF arch.VFState       `json:"measured_vf"`
	Projection core.PredictionRow `json:"projection"`
}

// queryValue extracts one key's value from a raw query string without
// allocating (url.Values would build a map per request on the hot read
// path). No percent-unescaping is performed — the predict parameters
// are plain integers, and a value that needed escaping will simply
// fail integer parsing downstream. The manual byte scan (rather than
// strings.IndexByte/strings.Cut) keeps the inlining cost under the
// compiler's budget so the call disappears from handlePredict.
//
//ppep:inline
func queryValue(raw, key string) (string, bool) {
	for raw != "" {
		j := 0
		for j < len(raw) && raw[j] != '&' {
			j++
		}
		if j >= len(key) && raw[:len(key)] == key {
			if j == len(key) {
				return "", true // bare key, no '='
			}
			if raw[len(key)] == '=' {
				return raw[len(key)+1 : j], true
			}
		}
		if j < len(raw) {
			j++ // skip the '&'
		}
		raw = raw[j:]
	}
	return "", false
}

// handlePredict returns the latest published projection at ?vf=N.
// Parameter validation runs first: a malformed request is 400 whether
// or not an interval has completed yet (it used to be 404 before the
// first interval, hiding the client's bug behind the server's state).
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	q, ok := queryValue(r.URL.RawQuery, "vf")
	if !ok || q == "" {
		http.Error(w, "missing vf parameter (want vf=1..N)", http.StatusBadRequest)
		return
	}
	nStates := len(s.d.Models.Table)
	n, err := strconv.Atoi(q)
	if err != nil || n < 1 || n > nStates {
		http.Error(w, fmt.Sprintf("bad vf %q: want 1..%d", q, nStates), http.StatusBadRequest)
		return
	}
	p := s.pub.Load()
	if p == nil {
		http.Error(w, "no interval completed yet", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	// best-effort: the client may have gone away mid-response
	_, _ = w.Write(p.perVF[n-1])
}

// handlePredictBatch returns every VF state's projection in one
// response — the paper's whole point, one observation prices all
// states, as a single read. The body is pre-rendered JSON, or the
// binary frame (batchcodec.go) when the client sends
// `Accept: application/x-ppep-batch`.
func (s *Server) handlePredictBatch(w http.ResponseWriter, r *http.Request) {
	p := s.pub.Load()
	if p == nil {
		http.Error(w, "no interval completed yet", http.StatusNotFound)
		return
	}
	if strings.Contains(r.Header.Get("Accept"), BatchContentType) {
		w.Header().Set("Content-Type", BatchContentType)
		// best-effort: the client may have gone away mid-response
		_, _ = w.Write(p.batchBin)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	// best-effort: the client may have gone away mid-response
	_, _ = w.Write(p.batchJSON)
}

// health is the /healthz response body.
type health struct {
	Status    string  `json:"status"` // "ok", "starting", or "stale"
	Intervals uint64  `json:"intervals"`
	AgeS      float64 `json:"last_interval_age_s"`
}

// handleHealthz reports loop liveness. Before the first completed
// interval the status is "starting": 200 within StartupGrace (model
// spin-up is slow but healthy), 503 past it (a wedged spin-up). After
// the first interval the status is "ok" while intervals keep completing
// within StaleAfter and "stale"/503 once they stop — a loop that has
// proven it can complete intervals is held to the tighter bound.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	now := s.opts.Now()
	h := health{Intervals: s.d.Counters().Intervals.Load()}
	last := s.lastWallNanos.Load()
	if last == 0 {
		h.Status = "starting"
		since := now.Sub(s.startWall)
		h.AgeS = since.Seconds()
		status := http.StatusOK
		if since > s.opts.StartupGrace {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, h)
		return
	}
	since := now.Sub(time.Unix(0, last))
	h.AgeS = since.Seconds()
	if since > s.opts.StaleAfter {
		h.Status = "stale"
		writeJSON(w, http.StatusServiceUnavailable, h)
		return
	}
	h.Status = "ok"
	writeJSON(w, http.StatusOK, h)
}

// handleMetrics renders the Prometheus text exposition: the published
// table's per-VF projections as gauges plus the daemon's operational
// counters. Like the predict handlers it reads only the published
// pointer and atomic counters — no daemon lock.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	b := getBuf()
	defer bufPool.Put(b)
	if p := s.pub.Load(); p != nil {
		t := p.table
		gauge(b, "ppep_measured_power", "Sensor-measured chip power over the last interval.",
			t.MeasPowerW)
		gauge(b, "ppep_diode_temp", "Socket thermal diode reading.", t.TempK.Celsius())
		gauge(b, "ppep_measured_freq", "Core clock of the VF state the last interval ran at.",
			s.d.Models.Table.Point(t.MeasuredVF).Freq.MegaHertz())
		gauge(b, "ppep_measured_vf_state", "VF state the last interval ran at.",
			float64(t.MeasuredVF))
		gauge(b, "ppep_interval_seq", "Sequence number of the last completed interval.",
			float64(t.Seq))
		perVF(b, "ppep_predicted_chip", "Predicted chip power at each VF state.",
			t.Rows, func(r core.PredictionRow) units.Watts { return r.ChipW })
		perVF(b, "ppep_predicted_idle", "Predicted idle power at each VF state.",
			t.Rows, func(r core.PredictionRow) units.Watts { return r.IdleW })
		perVF(b, "ppep_predicted", "Predicted chip-wide instructions per second at each VF state.",
			t.Rows, func(r core.PredictionRow) units.InstPerSec { return r.TotalIPS })
		perVF(b, "ppep_predicted_interval", "Predicted energy of one decision interval at each VF state.",
			t.Rows, func(r core.PredictionRow) units.Joules { return r.IntervalEnergyJ })
	}
	for _, c := range counterRows(s.d.Counters().Snapshot(), s.d.EngineStats()) {
		counter(b, c.name, c.help, c.val)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// best-effort: the client may have gone away mid-response
	_, _ = w.Write(b.Bytes())
}

// counterRow is one operational counter's exposition metadata.
type counterRow struct {
	name, help string
	val        uint64
}

// counterRows maps the daemon counter snapshot onto metric rows. The
// rows are listed in metric-name order (the Prometheus exposition is
// sorted) so no per-request sort or heap allocation is needed; the
// ordering is pinned by TestCounterRowsSorted.
func counterRows(c daemon.CounterSnapshot, eng fxsim.EngineStats) [10]counterRow {
	return [10]counterRow{
		{"ppep_analyze_errors_total", "Intervals rejected by the PPEP analysis pipeline.", c.AnalyzeErrors},
		{"ppep_hwmon_read_failures_total", "Diode reads that failed after the full retry budget.", c.HwmonFailures},
		{"ppep_hwmon_read_retries_total", "Transient thermal diode faults that were retried.", c.HwmonRetries},
		{"ppep_intervals_total", "Completed (sampled and analyzed) decision intervals.", c.Intervals},
		{"ppep_msr_read_failures_total", "MSR operations that failed after the full retry budget.", c.MSRFailures},
		{"ppep_msr_read_retries_total", "Transient MSR faults that were retried.", c.MSRRetries},
		{"ppep_policy_rejects_total", "DVFS policy decisions the chip rejected.", c.PolicyRejects},
		{"ppep_sim_fast_ticks_total", "Simulator ticks replayed by the batched quiescent-run engine.", eng.FastTicks},
		{"ppep_sim_reference_ticks_total", "Simulator ticks executed on the reference per-tick path.", eng.ReferenceTicks},
		{"ppep_skipped_intervals_total", "Intervals abandoned after exhausting the device retry budget.", c.SkippedIntervals},
	}
}

// gauge renders one gauge. The metric name is the base plus the
// canonical unit suffix of the value's type (units.Suffix), so a name
// can never disagree with the unit of the value it exports; plain
// float64 values (state numbers, sequence counters) get no suffix.
func gauge[T ~float64](b *bytes.Buffer, base, help string, v T) {
	name := base + units.Suffix(v)
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, float64(v))
}

func counter(b *bytes.Buffer, name, help string, v uint64) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

// perVF renders one gauge with a vf label per published row, with the
// unit suffix derived from the row field's type like gauge.
func perVF[T ~float64](b *bytes.Buffer, base, help string, rows []core.PredictionRow, f func(core.PredictionRow) T) {
	name := base + units.Suffix(T(0))
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	for _, r := range rows {
		fmt.Fprintf(b, "%s{vf=\"%d\"} %g\n", name, int(r.VF), float64(f(r)))
	}
}
