package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"ppep/internal/daemon"
)

// nullResponseWriter is a ResponseWriter that discards the body and
// reuses one header map, so AllocsPerRun sees only the handler's own
// allocations — httptest.ResponseRecorder clones the header map per
// WriteHeader and grows a body buffer, which would drown the signal.
type nullResponseWriter struct{ h http.Header }

func (w nullResponseWriter) Header() http.Header         { return w.h }
func (w nullResponseWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w nullResponseWriter) WriteHeader(int)             {}

// TestPredictAllocs pins the read path's allocation budget: a predict
// request — through the full request mux, not just the handler — is a
// pointer load plus a write of pre-rendered bytes. The only alloc left
// is Header().Set's []string value; the ceiling of 2 leaves exactly one
// slot of headroom. If this fails, something on the hot path started
// rendering, parsing, or locking per request — fix that rather than
// raising the ceiling.
func TestPredictAllocs(t *testing.T) {
	d, err := daemon.AttachOpts(busyChip(t), models(t), nil, daemon.Options{HistoryCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(d, Options{})
	h := srv.Handler()
	if err := d.RunIntervals(2); err != nil {
		t.Fatal(err)
	}

	binReq := httptest.NewRequest(http.MethodGet, "/predict/batch", nil)
	binReq.Header.Set("Accept", BatchContentType)
	cases := []struct {
		name string
		req  *http.Request
	}{
		{"predict", httptest.NewRequest(http.MethodGet, "/predict?vf=3", nil)},
		{"batch JSON", httptest.NewRequest(http.MethodGet, "/predict/batch", nil)},
		{"batch binary", binReq},
	}
	w := nullResponseWriter{h: make(http.Header)}
	const budget = 2.0
	for _, c := range cases {
		if got := testing.AllocsPerRun(500, func() { h.ServeHTTP(w, c.req) }); got > budget {
			t.Errorf("%s: %.1f allocs/request, budget %.0f", c.name, got, budget)
		}
	}
}
