// Binary encoding for /predict/batch, in the style of
// internal/tracecodec: a versioned magic-tagged layout, floats carried
// as raw IEEE-754 bits (so a decoded table is bit-identical to the
// published one), and a bounds-checked decoder that degrades corrupt
// input to an error instead of a panic or a partial table.
//
// Layout (all integers little-endian):
//
//	magic "PPBT" | u32 BatchSchemaVersion
//	u64 seq | f64 time_s | f64 dur_s | f64 measured_power_w | f64 temp_k
//	u32 measured_vf | u32 nRows
//	per row: u32 vf | f64 ×8 (cpi ips chip_w idle_w dyn_w interval_energy_j j_per_inst edp)
//
// Clients ask for it with `Accept: application/x-ppep-batch`; anything
// else gets JSON. The binary form is ~5× smaller than the JSON and
// needs no float parsing on the client — the load-generator's preferred
// diet at tens of thousands of requests per second.
package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"ppep/internal/arch"
	"ppep/internal/core"
	"ppep/internal/units"
)

// BatchContentType is the negotiated media type of the binary encoding.
const BatchContentType = "application/x-ppep-batch"

// BatchSchemaVersion identifies the binary layout. Bump it whenever the
// frame layout or the semantics of any field change; old clients then
// see ErrBatchSchema instead of silently misreading.
const BatchSchemaVersion = 1

const batchMagic = "PPBT"

var (
	// ErrBatchSchema reports a frame written by a different schema
	// version — a mismatch, not damage.
	ErrBatchSchema = errors.New("serve: batch schema mismatch")
	// ErrBatchCorrupt reports structurally inconsistent bytes.
	ErrBatchCorrupt = errors.New("serve: corrupt batch frame")
)

const (
	batchHeaderSize = 4 + 4 + 8 + 4*8 + 4 + 4 // magic, version, seq, 4 floats, vf, nRows
	batchRowSize    = 4 + 8*8                 // vf + 8 floats
)

// EncodeBatch serializes a prediction table into a fresh byte slice.
// It runs once per published interval (not per request), so the single
// allocation is deliberate: the result is retained by the lock-free
// response snapshot for as long as readers hold it.
func EncodeBatch(t *core.PredictionTable) []byte {
	b := make([]byte, batchHeaderSize+batchRowSize*len(t.Rows))
	off := copy(b, batchMagic)
	binary.LittleEndian.PutUint32(b[off:], BatchSchemaVersion)
	off += 4
	binary.LittleEndian.PutUint64(b[off:], t.Seq)
	off += 8
	off = putBatchF64(b, off, float64(t.TimeS))
	off = putBatchF64(b, off, float64(t.DurS))
	off = putBatchF64(b, off, float64(t.MeasPowerW))
	off = putBatchF64(b, off, float64(t.TempK))
	binary.LittleEndian.PutUint32(b[off:], uint32(t.MeasuredVF))
	off += 4
	binary.LittleEndian.PutUint32(b[off:], uint32(len(t.Rows)))
	off += 4
	for i := range t.Rows {
		r := &t.Rows[i]
		binary.LittleEndian.PutUint32(b[off:], uint32(r.VF))
		off += 4
		off = putBatchF64(b, off, float64(r.CPI))
		off = putBatchF64(b, off, float64(r.TotalIPS))
		off = putBatchF64(b, off, float64(r.ChipW))
		off = putBatchF64(b, off, float64(r.IdleW))
		off = putBatchF64(b, off, float64(r.DynW))
		off = putBatchF64(b, off, float64(r.IntervalEnergyJ))
		off = putBatchF64(b, off, float64(r.JPerInst))
		off = putBatchF64(b, off, float64(r.EDP))
	}
	return b[:off]
}

// putBatchF64 writes one float as raw IEEE-754 bits and advances the
// cursor; inlined into EncodeBatch's per-row loop.
//
//ppep:inline
func putBatchF64(b []byte, off int, x float64) int {
	binary.LittleEndian.PutUint64(b[off:], math.Float64bits(x))
	return off + 8
}

// batchReader is a bounds-checked cursor over an encoded frame; every
// take flips ok to false instead of slicing past the end.
type batchReader struct {
	b   []byte
	off int
	ok  bool
}

// take yields the next n bytes, or flips ok and returns nil past the
// end; small enough that u32/u64/f64 collapse to straight-line loads.
//
//ppep:inline
func (r *batchReader) take(n int) []byte {
	if !r.ok || n < 0 || len(r.b)-r.off < n {
		r.ok = false
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

//ppep:inline
func (r *batchReader) u32() uint32 {
	if s := r.take(4); s != nil {
		return binary.LittleEndian.Uint32(s)
	}
	return 0
}

//ppep:inline
func (r *batchReader) u64() uint64 {
	if s := r.take(8); s != nil {
		return binary.LittleEndian.Uint64(s)
	}
	return 0
}

//ppep:inline
func (r *batchReader) f64() float64 { return math.Float64frombits(r.u64()) }

// DecodeBatch parses a binary /predict/batch response. The decoded
// table is bit-identical to the one the server published.
func DecodeBatch(data []byte) (*core.PredictionTable, error) {
	r := &batchReader{b: data, ok: true}
	if string(r.take(4)) != batchMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBatchCorrupt)
	}
	if v := r.u32(); v != BatchSchemaVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrBatchSchema, v, BatchSchemaVersion)
	}
	t := &core.PredictionTable{Seq: r.u64()}
	t.TimeS = units.Seconds(r.f64())
	t.DurS = units.Seconds(r.f64())
	t.MeasPowerW = units.Watts(r.f64())
	t.TempK = units.Kelvin(r.f64())
	t.MeasuredVF = arch.VFState(r.u32())
	nRows := int(r.u32())
	if !r.ok {
		return nil, fmt.Errorf("%w: truncated header", ErrBatchCorrupt)
	}
	if nRows < 0 || nRows > (len(data)-r.off)/batchRowSize {
		return nil, fmt.Errorf("%w: row count %d exceeds data", ErrBatchCorrupt, nRows)
	}
	if nRows > 0 {
		t.Rows = make([]core.PredictionRow, nRows)
	}
	for i := range t.Rows {
		row := &t.Rows[i]
		row.VF = arch.VFState(r.u32())
		row.CPI = units.CPI(r.f64())
		row.TotalIPS = units.InstPerSec(r.f64())
		row.ChipW = units.Watts(r.f64())
		row.IdleW = units.Watts(r.f64())
		row.DynW = units.Watts(r.f64())
		row.IntervalEnergyJ = units.Joules(r.f64())
		row.JPerInst = units.JoulesPerInst(r.f64())
		row.EDP = units.EDP(r.f64())
	}
	if !r.ok {
		return nil, fmt.Errorf("%w: truncated rows", ErrBatchCorrupt)
	}
	if rem := len(data) - r.off; rem != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBatchCorrupt, rem)
	}
	return t, nil
}
