package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ppep/internal/arch"
	"ppep/internal/core"
	"ppep/internal/daemon"
	"ppep/internal/fxsim"
	"ppep/internal/trace"
	"ppep/internal/workload"
)

var (
	trainOnce sync.Once
	trained   *core.Models
	trainErr  error
)

// models trains a slim but valid PPEP model set once per test binary:
// idle traces at every VF plus two benchmarks across the VF table.
func models(t *testing.T) *core.Models {
	t.Helper()
	trainOnce.Do(func() {
		ts := core.TrainingSet{IdleTraces: map[arch.VFState]*trace.Trace{}}
		for _, vf := range arch.FX8320VFTable.States() {
			chip := fxsim.New(fxsim.DefaultFX8320Config())
			tr, err := chip.HeatCool(vf, 40, 80)
			if err != nil {
				trainErr = err
				return
			}
			ts.IdleTraces[vf] = tr
		}
		for _, num := range []string{"429", "433", "458", "416"} {
			b := *workload.SPECByNumber(num)
			b.Instructions = 8e9
			for _, vf := range arch.FX8320VFTable.States() {
				chip := fxsim.New(fxsim.DefaultFX8320Config())
				r := workload.Run{Name: num, Suite: "SPE",
					Members: []workload.Member{{Bench: &b, Threads: 1}}}
				tr, err := chip.Collect(r, fxsim.RunOpts{VF: vf, WarmTempK: 315})
				if err != nil {
					trainErr = err
					return
				}
				ts.Runs = append(ts.Runs, core.RunTrace{Name: num, Suite: "SPE", VF: vf, Trace: tr})
			}
		}
		trained, trainErr = core.Train(ts, arch.FX8320VFTable)
	})
	if trainErr != nil {
		t.Fatal(trainErr)
	}
	return trained
}

// busyChip builds a chip running milc×2 endlessly so every interval has
// real activity behind the projections.
func busyChip(t *testing.T) *fxsim.Chip {
	t.Helper()
	chip := fxsim.New(fxsim.DefaultFX8320Config())
	chip.SetTempK(318)
	run := workload.MultiInstance("433", 2)
	for i := range run.Members {
		b := *run.Members[i].Bench
		b.Instructions = 1e12
		run.Members[i].Bench = &b
	}
	if _, err := chip.PlaceRun(run, fxsim.PlaceScatter, true); err != nil {
		t.Fatal(err)
	}
	return chip
}

// fakeClock is an injectable Now for staleness tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// get performs one in-process request against the server's mux.
func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, path, nil))
	return rr.Code, rr.Body.String()
}

func TestServeEndpoints(t *testing.T) {
	d, err := daemon.AttachOpts(busyChip(t), models(t), nil, daemon.Options{HistoryCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	clock := &fakeClock{t: time.Unix(1000, 0)}
	srv := New(d, Options{StaleAfter: 2 * time.Second, StartupGrace: 4 * time.Second, Now: clock.Now})
	h := srv.Handler()

	// Before the first interval: healthz reports "starting", the report
	// endpoints have nothing to say.
	if code, body := get(t, h, "/healthz"); code != http.StatusOK || !strings.Contains(body, `"starting"`) {
		t.Errorf("pre-interval healthz %d %q, want 200 starting", code, body)
	}
	if code, _ := get(t, h, "/reports/latest"); code != http.StatusNotFound {
		t.Errorf("pre-interval /reports/latest = %d, want 404", code)
	}
	if code, _ := get(t, h, "/predict?vf=3"); code != http.StatusNotFound {
		t.Errorf("pre-interval /predict = %d, want 404", code)
	}
	if code, _ := get(t, h, "/predict/batch"); code != http.StatusNotFound {
		t.Errorf("pre-interval /predict/batch = %d, want 404", code)
	}

	// Slow spin-up is healthy "starting" while within StartupGrace —
	// the old behaviour called it "stale" the moment StaleAfter passed,
	// even though no interval had ever completed.
	clock.Advance(3 * time.Second)
	if code, body := get(t, h, "/healthz"); code != http.StatusOK || !strings.Contains(body, `"starting"`) {
		t.Errorf("in-grace startup healthz %d %q, want 200 starting", code, body)
	}

	// But a spin-up that outlives the grace is unhealthy: still
	// "starting" (no interval has ever completed, so it cannot be
	// "stale"), yet 503 — a wedged startup must not look healthy forever.
	clock.Advance(3 * time.Second)
	if code, body := get(t, h, "/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, `"starting"`) {
		t.Errorf("wedged-startup healthz %d %q, want 503 starting", code, body)
	}

	if err := d.RunIntervals(5); err != nil {
		t.Fatal(err)
	}

	t.Run("healthz", func(t *testing.T) {
		code, body := get(t, h, "/healthz")
		if code != http.StatusOK || !strings.Contains(body, `"ok"`) {
			t.Fatalf("healthz %d %q, want 200 ok", code, body)
		}
		var hb struct {
			Status    string  `json:"status"`
			Intervals uint64  `json:"intervals"`
			AgeS      float64 `json:"last_interval_age_s"`
		}
		if err := json.Unmarshal([]byte(body), &hb); err != nil {
			t.Fatal(err)
		}
		if hb.Intervals != 5 {
			t.Errorf("intervals %d, want 5", hb.Intervals)
		}
		clock.Advance(3 * time.Second)
		if code, body := get(t, h, "/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, `"stale"`) {
			t.Errorf("stale healthz %d %q, want 503 stale", code, body)
		}
	})

	t.Run("reports", func(t *testing.T) {
		code, body := get(t, h, "/reports")
		if code != http.StatusOK {
			t.Fatalf("/reports = %d", code)
		}
		var recs []daemon.Record
		if err := json.Unmarshal([]byte(body), &recs); err != nil {
			t.Fatal(err)
		}
		if len(recs) != 5 {
			t.Fatalf("%d records, want 5", len(recs))
		}
		if recs[0].Seq != 1 || recs[4].Seq != 5 {
			t.Errorf("seq range %d..%d, want 1..5 oldest first", recs[0].Seq, recs[4].Seq)
		}
		if recs[4].Report == nil || len(recs[4].Report.PerVF) != len(arch.FX8320VFTable) {
			t.Error("record missing its per-VF report")
		}

		_, body = get(t, h, "/reports?n=2")
		recs = nil
		if err := json.Unmarshal([]byte(body), &recs); err != nil {
			t.Fatal(err)
		}
		if len(recs) != 2 || recs[0].Seq != 4 {
			t.Errorf("?n=2 returned %d records starting at seq %d, want newest 2", len(recs), recs[0].Seq)
		}
		if code, _ := get(t, h, "/reports?n=-1"); code != http.StatusBadRequest {
			t.Errorf("negative n accepted: %d", code)
		}
		if code, _ := get(t, h, "/reports?n=bogus"); code != http.StatusBadRequest {
			t.Errorf("non-numeric n accepted: %d", code)
		}
	})

	t.Run("latest", func(t *testing.T) {
		code, body := get(t, h, "/reports/latest")
		if code != http.StatusOK {
			t.Fatalf("/reports/latest = %d", code)
		}
		var rec daemon.Record
		if err := json.Unmarshal([]byte(body), &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Seq != 5 {
			t.Errorf("latest seq %d, want 5", rec.Seq)
		}
	})

	t.Run("predict", func(t *testing.T) {
		for _, vf := range []int{1, 3, 5} {
			code, body := get(t, h, fmt.Sprintf("/predict?vf=%d", vf))
			if code != http.StatusOK {
				t.Fatalf("/predict?vf=%d = %d", vf, code)
			}
			var p struct {
				Seq        uint64             `json:"seq"`
				Projection core.PredictionRow `json:"projection"`
			}
			if err := json.Unmarshal([]byte(body), &p); err != nil {
				t.Fatal(err)
			}
			if p.Seq != 5 {
				t.Errorf("vf=%d seq %d, want 5", vf, p.Seq)
			}
			if int(p.Projection.VF) != vf {
				t.Errorf("vf=%d returned projection for VF %d", vf, p.Projection.VF)
			}
			if p.Projection.ChipW <= 0 || p.Projection.TotalIPS <= 0 || p.Projection.EDP <= 0 {
				t.Errorf("vf=%d projection empty: %+v", vf, p.Projection)
			}
		}
		for _, bad := range []string{"/predict", "/predict?vf=0", "/predict?vf=6", "/predict?vf=abc"} {
			if code, _ := get(t, h, bad); code != http.StatusBadRequest {
				t.Errorf("%s = %d, want 400", bad, code)
			}
		}
	})

	t.Run("metrics", func(t *testing.T) {
		code, body := get(t, h, "/metrics")
		if code != http.StatusOK {
			t.Fatalf("/metrics = %d", code)
		}
		for _, want := range []string{
			"ppep_measured_power_watts ",
			"ppep_diode_temp_celsius ",
			"ppep_measured_vf_state ",
			"ppep_interval_seq 5",
			`ppep_predicted_chip_watts{vf="1"} `,
			`ppep_predicted_chip_watts{vf="5"} `,
			`ppep_predicted_idle_watts{vf="3"} `,
			`ppep_predicted_ips{vf="2"} `,
			`ppep_predicted_interval_joules{vf="4"} `,
			"ppep_intervals_total 5",
			"ppep_skipped_intervals_total 0",
			"ppep_analyze_errors_total 0",
			"ppep_msr_read_retries_total ",
			"ppep_hwmon_read_failures_total ",
			"ppep_policy_rejects_total ",
			"ppep_sim_fast_ticks_total ",
			"ppep_sim_reference_ticks_total ",
			"# TYPE ppep_intervals_total counter",
			"# TYPE ppep_predicted_chip_watts gauge",
		} {
			if !strings.Contains(body, want) {
				t.Errorf("metrics missing %q", want)
			}
		}
	})

	t.Run("methods", func(t *testing.T) {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/metrics", nil))
		if rr.Code != http.StatusMethodNotAllowed {
			t.Errorf("POST /metrics = %d, want 405", rr.Code)
		}
	})
}

// TestServeIntegration is the end-to-end service contract: a faulted
// daemon loop running under Run(ctx) stays observable over real HTTP,
// bounds its history, counts its retries, and shuts down cleanly.
func TestServeIntegration(t *testing.T) {
	d, err := daemon.AttachOpts(busyChip(t), models(t), nil, daemon.Options{
		HistoryCap: 8,
		Retry:      daemon.Retry{Attempts: 4, Sleep: func(time.Duration) {}},
	})
	if err != nil {
		t.Fatal(err)
	}
	d.InjectFaults(0.10, 0.10, 3)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv := New(d, Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	done := make(chan error, 1)
	go func() { done <- d.Run(ctx) }()

	fetch := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	deadline := time.Now().Add(60 * time.Second)
	for d.Counters().Intervals.Load() < 10 {
		if time.Now().After(deadline) {
			t.Fatal("faulted loop did not reach 10 intervals")
		}
		// The endpoints must answer while the loop is running.
		if code, _ := fetch("/healthz"); code != http.StatusOK {
			t.Fatalf("healthz %d mid-run", code)
		}
		time.Sleep(10 * time.Millisecond)
	}

	if code, body := fetch("/metrics"); code != http.StatusOK ||
		!strings.Contains(body, "ppep_intervals_total") {
		t.Errorf("mid-run metrics %d", code)
	}
	if code, _ := fetch("/reports/latest"); code != http.StatusOK {
		t.Errorf("mid-run /reports/latest %d", code)
	}

	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("loop did not stop after cancellation")
	}

	s := d.Counters().Snapshot()
	if s.MSRRetries == 0 {
		t.Error("10%% MSR fault rate produced no retries")
	}
	if len(d.Records()) > 8 {
		t.Errorf("history grew past the ring cap: %d records", len(d.Records()))
	}
}

// TestListenAndServe covers the graceful-shutdown path: a ctx-cancelled
// server returns nil, and a bind failure surfaces as an error.
func TestListenAndServe(t *testing.T) {
	d, err := daemon.AttachOpts(busyChip(t), models(t), nil, daemon.Options{HistoryCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(d, Options{})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(ctx, "127.0.0.1:0") }()
	time.Sleep(50 * time.Millisecond) // let the listener come up
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("cancelled ListenAndServe returned %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ListenAndServe did not shut down")
	}

	if err := srv.ListenAndServe(context.Background(), "256.0.0.1:1"); err == nil {
		t.Error("bogus bind address accepted")
	}
}
