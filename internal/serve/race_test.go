package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"ppep/internal/daemon"
)

// TestServeConcurrentEndpointReaders hammers the read-only endpoints
// from several goroutines while the daemon loop runs, pinning — under
// -race — that the handler path (Counters snapshot, ring snapshot,
// EngineStats) is torn-read-free against the sampling goroutine. This
// is the runtime counterpart of the atomiccheck analyzer: the invariant
// it exercises dynamically is the one atomiccheck enforces statically.
func TestServeConcurrentEndpointReaders(t *testing.T) {
	d, err := daemon.AttachOpts(busyChip(t), models(t), nil, daemon.Options{HistoryCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv := New(d, Options{})
	h := srv.Handler()

	done := make(chan error, 1)
	go func() { done <- d.Run(ctx) }()

	const (
		readers = 4
		iters   = 100
	)
	paths := []string{"/metrics", "/reports", "/reports/latest", "/healthz", "/predict?vf=3", "/predict/batch"}
	var wg sync.WaitGroup
	wg.Add(readers)
	for r := 0; r < readers; r++ {
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				path := paths[(r+i)%len(paths)]
				rr := httptest.NewRecorder()
				h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, path, nil))
				switch rr.Code {
				case http.StatusOK, http.StatusNotFound, http.StatusServiceUnavailable:
					// 404/503 are legitimate before the first interval
					// completes or while the loop reports stale.
				default:
					t.Errorf("%s returned %d mid-run", path, rr.Code)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("loop did not stop after cancellation")
	}
}

// TestPredictBatchConcurrentSwaps decodes binary batch responses while
// the daemon keeps publishing new tables, pinning — under -race — that
// the snapshot swap is torn-read-free: every response a reader decodes
// is a complete, internally consistent table (all five rows, in order,
// seq never going backwards within one reader), never a blend of two
// intervals.
func TestPredictBatchConcurrentSwaps(t *testing.T) {
	d, err := daemon.AttachOpts(busyChip(t), models(t), nil, daemon.Options{HistoryCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv := New(d, Options{})
	h := srv.Handler()

	done := make(chan error, 1)
	go func() { done <- d.Run(ctx) }()

	const (
		readers = 4
		iters   = 100
	)
	nStates := len(d.Models.Table)
	var wg sync.WaitGroup
	wg.Add(readers)
	for r := 0; r < readers; r++ {
		go func() {
			defer wg.Done()
			var lastSeq uint64
			for i := 0; i < iters; i++ {
				req := httptest.NewRequest(http.MethodGet, "/predict/batch", nil)
				req.Header.Set("Accept", BatchContentType)
				rr := httptest.NewRecorder()
				h.ServeHTTP(rr, req)
				if rr.Code == http.StatusNotFound {
					continue // before the first interval
				}
				tab, err := DecodeBatch(rr.Body.Bytes())
				if err != nil {
					t.Errorf("iter %d: %v", i, err)
					return
				}
				if len(tab.Rows) != nStates {
					t.Errorf("iter %d: %d rows, want %d", i, len(tab.Rows), nStates)
					return
				}
				for j, row := range tab.Rows {
					if int(row.VF) != j+1 {
						t.Errorf("iter %d: row %d carries VF %v — torn table", i, j, row.VF)
						return
					}
				}
				if tab.Seq < lastSeq {
					t.Errorf("iter %d: seq went backwards %d -> %d", i, lastSeq, tab.Seq)
					return
				}
				lastSeq = tab.Seq
			}
		}()
	}
	wg.Wait()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("loop did not stop after cancellation")
	}
}
