package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"ppep/internal/arch"
	"ppep/internal/core"
	"ppep/internal/daemon"
)

// TestPredictStatusCodes is the table-driven contract of the predict
// endpoints' status codes, before and after the first interval: client
// errors are 400 regardless of server state (a malformed vf used to
// turn into 404 before the first interval), and only a well-formed
// request for data that does not exist yet is 404.
func TestPredictStatusCodes(t *testing.T) {
	d, err := daemon.AttachOpts(busyChip(t), models(t), nil, daemon.Options{HistoryCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(d, Options{})
	h := srv.Handler()

	cases := []struct {
		path        string
		pre, post   int
		description string
	}{
		{"/predict?vf=3", http.StatusNotFound, http.StatusOK, "valid state"},
		{"/predict?vf=1", http.StatusNotFound, http.StatusOK, "bottom state"},
		{"/predict?vf=5", http.StatusNotFound, http.StatusOK, "top state"},
		{"/predict", http.StatusBadRequest, http.StatusBadRequest, "missing vf"},
		{"/predict?vf=", http.StatusBadRequest, http.StatusBadRequest, "empty vf"},
		{"/predict?vf=abc", http.StatusBadRequest, http.StatusBadRequest, "non-numeric vf"},
		{"/predict?vf=0", http.StatusBadRequest, http.StatusBadRequest, "below range"},
		{"/predict?vf=6", http.StatusBadRequest, http.StatusBadRequest, "above range"},
		{"/predict?vf=-2", http.StatusBadRequest, http.StatusBadRequest, "negative vf"},
		{"/predict?vf=3&extra=1", http.StatusNotFound, http.StatusOK, "extra params ignored"},
		{"/predict?extra=1&vf=3", http.StatusNotFound, http.StatusOK, "vf after other params"},
		{"/predict/batch", http.StatusNotFound, http.StatusOK, "batch"},
	}
	for _, c := range cases {
		if code, body := get(t, h, c.path); code != c.pre {
			t.Errorf("pre-interval %s (%s) = %d %q, want %d", c.path, c.description, code, body, c.pre)
		}
	}
	if err := d.RunIntervals(2); err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		if code, body := get(t, h, c.path); code != c.post {
			t.Errorf("post-interval %s (%s) = %d %q, want %d", c.path, c.description, code, body, c.post)
		}
	}
}

// batchGet performs one /predict/batch request with an Accept header.
func batchGet(t *testing.T, h http.Handler, accept string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/predict/batch", nil)
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

// TestPredictBatch pins the batch endpoint end to end: the JSON body
// carries every VF state, the binary body decodes to bit-identical
// values, and content negotiation picks the encoding off Accept.
func TestPredictBatch(t *testing.T) {
	d, err := daemon.AttachOpts(busyChip(t), models(t), nil, daemon.Options{HistoryCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(d, Options{})
	h := srv.Handler()
	if err := d.RunIntervals(3); err != nil {
		t.Fatal(err)
	}

	// JSON by default.
	rr := batchGet(t, h, "")
	if rr.Code != http.StatusOK {
		t.Fatalf("/predict/batch = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("default Content-Type %q", ct)
	}
	var viaJSON core.PredictionTable
	if err := json.Unmarshal(rr.Body.Bytes(), &viaJSON); err != nil {
		t.Fatal(err)
	}
	if viaJSON.Seq != 3 {
		t.Errorf("batch seq %d, want 3", viaJSON.Seq)
	}
	if len(viaJSON.Rows) != len(arch.FX8320VFTable) {
		t.Fatalf("batch rows %d, want %d", len(viaJSON.Rows), len(arch.FX8320VFTable))
	}
	for i, row := range viaJSON.Rows {
		if row.VF != arch.VFState(i+1) {
			t.Errorf("row %d is %v", i, row.VF)
		}
		if row.ChipW <= 0 || row.TotalIPS <= 0 || row.EDP <= 0 {
			t.Errorf("%v: empty row %+v", row.VF, row)
		}
	}

	// Binary when negotiated, including as one of several offers.
	for _, accept := range []string{BatchContentType, "application/json, " + BatchContentType} {
		rr = batchGet(t, h, accept)
		if rr.Code != http.StatusOK {
			t.Fatalf("binary batch (Accept %q) = %d", accept, rr.Code)
		}
		if ct := rr.Header().Get("Content-Type"); ct != BatchContentType {
			t.Errorf("binary Content-Type %q", ct)
		}
		viaBin, err := DecodeBatch(rr.Body.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		// Both encodings must describe the same values. Go's JSON float
		// encoding is shortest-round-trip, so even the JSON path is
		// bit-exact and DeepEqual is the right comparison.
		if !reflect.DeepEqual(viaBin, &viaJSON) {
			t.Errorf("binary and JSON batch responses diverge:\nbin  %+v\njson %+v", viaBin, &viaJSON)
		}
	}

	// Unrelated Accept values fall back to JSON.
	rr = batchGet(t, h, "text/html")
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("unrelated Accept got Content-Type %q", ct)
	}

	// The binary body is the same frame the codec produces from the
	// published table.
	if pub := d.Predictions(); pub == nil {
		t.Fatal("no published table after intervals")
	} else if got := batchGet(t, h, BatchContentType).Body.Bytes(); !reflect.DeepEqual(got, EncodeBatch(pub)) {
		t.Error("binary response is not the canonical encoding of the published table")
	}
}

// TestBatchCodecErrors pins the decoder's corruption handling: bad
// magic, wrong schema, truncations, oversized counts, and trailing
// garbage all error out (wrapping the sentinel) instead of panicking
// or returning a partial table.
func TestBatchCodecErrors(t *testing.T) {
	tab := &core.PredictionTable{
		Seq: 7, TimeS: 1.4, DurS: 0.2, MeasuredVF: arch.VF5,
		MeasPowerW: 55, TempK: 330,
		Rows: []core.PredictionRow{
			{VF: arch.VF1, CPI: 1.2, TotalIPS: 1e9, ChipW: 30, IdleW: 20, DynW: 10, IntervalEnergyJ: 6, JPerInst: 3e-8, EDP: 3e-17},
			{VF: arch.VF2, CPI: 1.3, TotalIPS: 2e9, ChipW: 40, IdleW: 25, DynW: 15, IntervalEnergyJ: 8, JPerInst: 2e-8, EDP: 1e-17},
		},
	}
	good := EncodeBatch(tab)
	if dec, err := DecodeBatch(good); err != nil {
		t.Fatal(err)
	} else if !reflect.DeepEqual(dec, tab) {
		t.Fatalf("round trip diverges: %+v", dec)
	}

	check := func(name string, data []byte, want error) {
		t.Helper()
		if _, err := DecodeBatch(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		} else if want != nil && !errorsIs(err, want) {
			t.Errorf("%s: error %v does not wrap %v", name, err, want)
		}
	}
	check("empty", nil, ErrBatchCorrupt)
	check("bad magic", append([]byte("XXXX"), good[4:]...), ErrBatchCorrupt)
	for cut := 1; cut < len(good); cut += 13 {
		check("truncated", good[:len(good)-cut], nil)
	}
	check("trailing bytes", append(append([]byte{}, good...), 0xAB), ErrBatchCorrupt)

	wrongVersion := append([]byte{}, good...)
	wrongVersion[4] = 99
	check("schema", wrongVersion, ErrBatchSchema)

	// Row count larger than the data present must be rejected before
	// any allocation sized off it.
	oversized := append([]byte{}, good...)
	oversized[batchHeaderSize-4] = 0xFF
	oversized[batchHeaderSize-3] = 0xFF
	oversized[batchHeaderSize-2] = 0xFF
	oversized[batchHeaderSize-1] = 0x7F
	check("oversized row count", oversized, ErrBatchCorrupt)
}

// errorsIs avoids importing errors alongside the test's other needs.
func errorsIs(err, target error) bool {
	for err != nil {
		if err == target {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// TestReportsEdgeCases covers the /reports query-window corners: ?n=0
// is a valid empty window, and a wrapped history ring still serves
// oldest-first with contiguous sequence numbers.
func TestReportsEdgeCases(t *testing.T) {
	const cap = 4
	d, err := daemon.AttachOpts(busyChip(t), models(t), nil, daemon.Options{HistoryCap: cap})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(d, Options{})
	h := srv.Handler()

	// ?n=0 with no history at all: an empty array, not an error.
	code, body := get(t, h, "/reports?n=0")
	if code != http.StatusOK {
		t.Fatalf("empty-history /reports?n=0 = %d", code)
	}
	var recs []daemon.Record
	if err := json.Unmarshal([]byte(body), &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("?n=0 returned %d records", len(recs))
	}

	// Wrap the ring: 2.5× capacity worth of intervals.
	if err := d.RunIntervals(cap*2 + 2); err != nil {
		t.Fatal(err)
	}
	_, body = get(t, h, "/reports")
	recs = nil
	if err := json.Unmarshal([]byte(body), &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != cap {
		t.Fatalf("wrapped ring served %d records, want %d", len(recs), cap)
	}
	wantFirst := uint64(cap + 3) // 10 intervals, newest 4 retained
	for i, rec := range recs {
		if rec.Seq != wantFirst+uint64(i) {
			t.Fatalf("record %d has seq %d, want %d (oldest-first, contiguous)", i, rec.Seq, wantFirst+uint64(i))
		}
	}

	// ?n=0 on a wrapped ring is still the empty window.
	_, body = get(t, h, "/reports?n=0")
	recs = nil
	if err := json.Unmarshal([]byte(body), &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("wrapped ?n=0 returned %d records", len(recs))
	}

	// ?n beyond the retained window returns everything retained.
	_, body = get(t, h, "/reports?n=100")
	recs = nil
	if err := json.Unmarshal([]byte(body), &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != cap {
		t.Errorf("?n=100 returned %d records, want %d", len(recs), cap)
	}
}

// TestServerTimeouts pins the http.Server hardening: defaults applied
// when Options is zero, overrides respected, negatives meaning
// "disabled" — a slow client must not be able to pin a connection
// forever by default.
func TestServerTimeouts(t *testing.T) {
	d, err := daemon.AttachOpts(busyChip(t), models(t), nil, daemon.Options{HistoryCap: 4})
	if err != nil {
		t.Fatal(err)
	}

	hs := New(d, Options{}).httpServer(":0")
	if hs.ReadHeaderTimeout != DefaultReadHeaderTimeout ||
		hs.ReadTimeout != DefaultReadTimeout ||
		hs.WriteTimeout != DefaultWriteTimeout ||
		hs.IdleTimeout != DefaultIdleTimeout {
		t.Errorf("default timeouts not applied: %+v", hs)
	}

	hs = New(d, Options{
		ReadHeaderTimeout: time.Second,
		ReadTimeout:       2 * time.Second,
		WriteTimeout:      3 * time.Second,
		IdleTimeout:       4 * time.Second,
	}).httpServer(":0")
	if hs.ReadHeaderTimeout != time.Second || hs.ReadTimeout != 2*time.Second ||
		hs.WriteTimeout != 3*time.Second || hs.IdleTimeout != 4*time.Second {
		t.Errorf("timeout overrides not applied: %+v", hs)
	}

	hs = New(d, Options{ReadTimeout: -1, WriteTimeout: -1}).httpServer(":0")
	if hs.ReadTimeout != 0 || hs.WriteTimeout != 0 {
		t.Errorf("negative (disabled) timeouts not honoured: %+v", hs)
	}
	if hs.ReadHeaderTimeout != DefaultReadHeaderTimeout {
		t.Errorf("unset field lost its default next to disabled ones: %+v", hs)
	}
}

// TestQueryValue pins the allocation-free query scanner against the
// shapes the predict handlers see.
func TestQueryValue(t *testing.T) {
	cases := []struct {
		raw, key string
		want     string
		found    bool
	}{
		{"vf=3", "vf", "3", true},
		{"vf=", "vf", "", true},
		{"vf", "vf", "", true},
		{"", "vf", "", false},
		{"n=2", "vf", "", false},
		{"a=1&vf=4&b=2", "vf", "4", true},
		{"vff=9", "vf", "", false},
		{"x=vf", "vf", "", false},
		{"vf=1&vf=2", "vf", "1", true},
	}
	for _, c := range cases {
		got, found := queryValue(c.raw, c.key)
		if got != c.want || found != c.found {
			t.Errorf("queryValue(%q, %q) = %q/%v, want %q/%v", c.raw, c.key, got, found, c.want, c.found)
		}
	}
}
